// Gateway front-end sharding. The paper's deployments scale the
// front end horizontally: many gateway servers each own a slice of
// the user base and one logical round runs across all of them (§7,
// §8.1). This file defines the split between the two roles:
//
//   - The round coordinator (Network, core.go) owns everything that
//     is global per round: chain formation and epoch recovery, key
//     announcement, driving the mix chains, blame aggregation.
//   - A gateway shard (GatewayShard; Frontend is the in-process
//     implementation) owns everything that is per user: registration,
//     presence, onion intake and external submissions, cover banking,
//     mailbox storage and fetches.
//
// The partition key is the registry shard index (registry.go): each
// gateway shard owns a contiguous half-open range [Lo, Hi) of the 64
// registry shards, and a mailbox identifier hashes to its owner with
// OwnerShard. The monolithic deployment is the degenerate case of one
// in-process Frontend owning the full range — NewNetwork builds
// exactly that when Config.Shards is empty, so a single-process
// deployment pays nothing for the split.
//
// One round crosses the boundary four times: BeginRound pushes the
// round's parameters and collects every shard's batches (submission
// forwarding), the coordinator mixes, FinishRound fans the delivered
// mailbox messages back out to their owning shards along with the
// per-shard blame report, and AbortRound reopens a shard's submission
// window when a round fails and will be retried. Rebalance installs a
// re-formed epoch's plan (recover.go). internal/rpc carries the same
// four exchanges over TLS for shards in other processes.
package core

import (
	"fmt"

	"repro/internal/mix"
	"repro/internal/onion"
)

// NumRegistryShards is the size of the registry-shard space that
// gateway shards partition; shard ranges are half-open intervals over
// [0, NumRegistryShards).
const NumRegistryShards = numShards

// OwnerShard maps a mailbox identifier to its registry shard index —
// the gateway front end's partition key.
func OwnerShard(mailbox []byte) int { return shardIndex(string(mailbox)) }

// ShardRange is a contiguous half-open slice [Lo, Hi) of the registry
// shard space.
type ShardRange struct {
	Lo, Hi int
}

// FullRange spans the whole registry-shard space — the monolith.
func FullRange() ShardRange { return ShardRange{0, numShards} }

// Contains reports whether the registry shard index is in the range.
func (r ShardRange) Contains(shard int) bool { return shard >= r.Lo && shard < r.Hi }

// Owns reports whether the mailbox identifier hashes into the range.
func (r ShardRange) Owns(mailbox []byte) bool { return r.Contains(OwnerShard(mailbox)) }

// Width returns the number of registry shards in the range.
func (r ShardRange) Width() int { return r.Hi - r.Lo }

func (r ShardRange) String() string { return fmt.Sprintf("%d:%d", r.Lo, r.Hi) }

// Validate rejects empty or out-of-bounds ranges.
func (r ShardRange) Validate() error {
	if r.Lo < 0 || r.Hi > numShards || r.Lo >= r.Hi {
		return fmt.Errorf("core: shard range %s outside 0:%d or empty", r, numShards)
	}
	return nil
}

// ChainBatch pairs one chain's submissions with their submitters'
// mailbox identifiers, kept index-aligned for blame attribution.
type ChainBatch struct {
	Subs       []onion.Submission
	Submitters []string
}

func (b *ChainBatch) add(sub onion.Submission, who string) {
	b.Subs = append(b.Subs, sub)
	b.Submitters = append(b.Submitters, who)
}

// BeginRound is the coordinator's round-begin message to a gateway
// shard: the round and epoch it is about to execute and an immutable
// snapshot of every chain's public parameters for rounds Round and
// Round+1 (covers are built one round ahead, §5.3.3). Dead lists
// chains that failed to announce and have zero parameters in the
// snapshot; the shard strands their users instead of building.
type BeginRound struct {
	Round     uint64
	Epoch     uint64
	NumChains int
	Cur, Next []mix.Params
	Dead      []int
}

// ShardBuild is a shard's reply to BeginRound: its users' submissions
// batched per chain (in-process users it built plus external
// submissions it collected), the number of offline users covered by
// banked covers, and the online users skipped because a dead chain
// made their round impossible.
type ShardBuild struct {
	Batches []ChainBatch
	Covered int
	Skipped []string
}

// FinishRound closes a round on a gateway shard: the mailbox messages
// routed to this shard's users, the users it owns that were convicted
// (to remove and ban) or stranded (for StrandedError), and — so the
// shard can keep serving clients between rounds — the parameter
// snapshot for the next round (Cur is Round+1, Next is Round+2).
type FinishRound struct {
	Round     uint64
	Delivered [][]byte
	Removed   []string
	Stranded  []string

	Epoch     uint64
	NumChains int
	Cur, Next []mix.Params
	Dead      []int
}

// FinishStats is a shard's round-finish accounting: messages stored
// into mailboxes and old messages the per-mailbox depth cap evicted
// to make room.
type FinishStats struct {
	Delivered int
	Dropped   int
}

// GatewayShard is the coordinator's handle on one gateway front-end
// shard. Frontend implements it in-process; rpc.ShardClient carries
// it to a shard in another process over TLS. Implementations must
// tolerate the coordinator's per-round call sequence BeginRound →
// (FinishRound | AbortRound), with Rebalance interleaved before a
// round when an epoch re-forms.
type GatewayShard interface {
	// Range returns the registry-shard slice this shard owns.
	Range() ShardRange
	// BeginRound distributes round parameters and returns the shard's
	// batches. An error marks the shard dead for the round: only its
	// own users are stranded.
	BeginRound(br *BeginRound) (*ShardBuild, error)
	// FinishRound delivers routed messages and blame results, returns
	// storage accounting (messages stored, depth-cap evictions).
	FinishRound(fr *FinishRound) (FinishStats, error)
	// AbortRound reopens the submission window for a round that
	// failed after BeginRound and will be retried.
	AbortRound(round uint64)
	// Rebalance installs a new epoch's chain count; the shard
	// re-derives the (deterministic) chain-selection plan, rebalances
	// its users and discards state keyed to the old chains' keys.
	Rebalance(epoch uint64, numChains int) error
}

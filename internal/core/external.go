package core

import (
	"fmt"

	"repro/internal/client"
)

// External users participate over the network transport
// (internal/rpc) rather than through the in-process registry. The
// network stores their submissions per round and their covers for the
// following round, applying the same §5.3.3 churn rule: if an
// external user misses a round for which she pre-submitted covers,
// the covers run in her place exactly once.
//
// Submission window: round ρ is open from the moment it becomes the
// upcoming round until RunRound(ρ) folds external traffic into the
// chain batches (just after the build stage). From then until the
// round counter advances — the mix and delivery phase — submissions
// for ρ are rejected with an explicit "already mixing" error; the
// client's move is to re-poll the round number and rebuild for the
// next round. If the round fails and will be retried, the window
// reopens so consumed submissions can be resent.

type externalUser struct {
	current map[uint64][]client.ChainMessage
	cover   map[uint64][]client.ChainMessage
}

// SubmitExternal queues a remote user's round output. current must
// target the upcoming round; covers are stored for the round after.
func (n *Network) SubmitExternal(mailbox string, out *client.RoundOutput) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.banned[mailbox] {
		return fmt.Errorf("core: user was removed for misbehaviour; submissions are refused")
	}
	if out.Round != n.round {
		return fmt.Errorf("core: submission for round %d but round %d is open", out.Round, n.round)
	}
	if out.Round <= n.collected {
		return fmt.Errorf("core: round %d is already mixing; submissions are closed", out.Round)
	}
	for _, cm := range append(out.Current, out.Cover...) {
		if cm.Chain < 0 || cm.Chain >= len(n.chains) {
			return fmt.Errorf("core: submission to unknown chain %d", cm.Chain)
		}
	}
	if n.externals == nil {
		n.externals = make(map[string]*externalUser)
	}
	eu, ok := n.externals[mailbox]
	if !ok {
		eu = &externalUser{
			current: make(map[uint64][]client.ChainMessage),
			cover:   make(map[uint64][]client.ChainMessage),
		}
		n.externals[mailbox] = eu
	}
	if _, dup := eu.current[out.Round]; dup {
		return fmt.Errorf("core: duplicate submission for round %d", out.Round)
	}
	eu.current[out.Round] = out.Current
	eu.cover[out.Round+1] = out.Cover
	return nil
}

// collectExternalsLocked merges external users' traffic into the
// round's batches and closes the round for further submissions; must
// be called with n.mu held. Returns the number of external users
// covered by their pre-submitted covers.
func (n *Network) collectExternalsLocked(rho uint64, batches []chainBatch) int {
	if rho > n.collected {
		n.collected = rho
	}
	covered := 0
	for who, eu := range n.externals {
		if msgs, ok := eu.current[rho]; ok {
			for _, cm := range msgs {
				batches[cm.Chain].add(cm.Sub, who)
			}
		} else if covers, ok := eu.cover[rho]; ok {
			for _, cm := range covers {
				batches[cm.Chain].add(cm.Sub, who)
			}
			covered++
		}
		// Drop state that can no longer be used.
		for r := range eu.current {
			if r <= rho {
				delete(eu.current, r)
			}
		}
		for r := range eu.cover {
			if r <= rho {
				delete(eu.cover, r)
			}
		}
	}
	return covered
}

package core

import (
	"fmt"

	"repro/internal/client"
)

// External users participate over the network transport
// (internal/rpc) rather than through the in-process registry. Their
// gateway shard stores their submissions per round and their covers
// for the following round, applying the same §5.3.3 churn rule: if an
// external user misses a round for which she pre-submitted covers,
// the covers run in her place exactly once.
//
// Submission window: round ρ is open from the moment it becomes the
// upcoming round until the coordinator's BeginRound folds external
// traffic into the chain batches (just after the build stage). From
// then until FinishRound advances the round counter — the mix and
// delivery phase — submissions for ρ are rejected with an explicit
// "already mixing" error; the client's move is to re-poll the round
// number and rebuild for the next round. If the round fails and will
// be retried, AbortRound reopens the window so consumed submissions
// can be resent.

type externalUser struct {
	current map[uint64][]client.ChainMessage
	cover   map[uint64][]client.ChainMessage
}

// SubmitExternal queues a remote user's round output. current must
// target the upcoming round; covers are stored for the round after.
// Ownership is deliberately not enforced: any gateway accepts any
// user's submission (the batches are global), which is what lets a
// client fail over to another gateway when its own is briefly
// unreachable.
func (f *Frontend) SubmitExternal(mailbox string, out *client.RoundOutput) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.banned[mailbox] {
		return fmt.Errorf("core: user was removed for misbehaviour; submissions are refused")
	}
	if f.plan == nil {
		return fmt.Errorf("core: shard %s has no chain plan yet; submissions are refused", f.rng)
	}
	if out.Round != f.round {
		return fmt.Errorf("core: submission for round %d but round %d is open", out.Round, f.round)
	}
	if out.Round <= f.collected {
		return fmt.Errorf("core: round %d is already mixing; submissions are closed", out.Round)
	}
	for _, cm := range append(out.Current, out.Cover...) {
		if cm.Chain < 0 || cm.Chain >= f.plan.NumChains {
			return fmt.Errorf("core: submission to unknown chain %d", cm.Chain)
		}
	}
	eu, ok := f.externals[mailbox]
	if !ok {
		eu = &externalUser{
			current: make(map[uint64][]client.ChainMessage),
			cover:   make(map[uint64][]client.ChainMessage),
		}
		f.externals[mailbox] = eu
	}
	if _, dup := eu.current[out.Round]; dup {
		return fmt.Errorf("core: duplicate submission for round %d", out.Round)
	}
	// Durability point: the accepted submission is logged and synced
	// BEFORE the client sees success, so an accepted-but-unmixed
	// message survives a crash — the restarted shard replays it into
	// the same round's batch.
	if err := f.st.Append(opSubmit, encodeSubmit(mailbox, out)); err != nil {
		return fmt.Errorf("core: persisting submission: %w", err)
	}
	if err := f.st.Sync(); err != nil {
		return fmt.Errorf("core: persisting submission: %w", err)
	}
	eu.current[out.Round] = out.Current
	eu.cover[out.Round+1] = out.Cover
	return nil
}

// collectExternalsLocked merges external users' traffic into the
// round's batches and closes the round for further submissions; must
// be called with f.mu held. Returns the number of external users
// covered by their pre-submitted covers.
func (f *Frontend) collectExternalsLocked(rho uint64, batches []ChainBatch) int {
	if rho > f.collected {
		f.collected = rho
	}
	covered := 0
	for who, eu := range f.externals {
		if msgs, ok := eu.current[rho]; ok {
			for _, cm := range msgs {
				batches[cm.Chain].add(cm.Sub, who)
			}
		} else if covers, ok := eu.cover[rho]; ok {
			for _, cm := range covers {
				batches[cm.Chain].add(cm.Sub, who)
			}
			covered++
		}
		// Drop state that can no longer be used.
		for r := range eu.current {
			if r <= rho {
				delete(eu.current, r)
			}
		}
		for r := range eu.cover {
			if r <= rho {
				delete(eu.cover, r)
			}
		}
	}
	return covered
}

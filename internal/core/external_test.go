package core

import (
	"strings"
	"testing"

	"repro/internal/client"
)

// TestSubmitExternalRejectsCollectedRound pins the submission-window
// contract: once a round's external traffic has been folded into
// batches (the mix/deliver phase of RunRound), a submission for that
// still-open round must be rejected loudly, not accepted and then
// silently never mixed.
func TestSubmitExternalRejectsCollectedRound(t *testing.T) {
	n := testNetwork(t, 6, 2)
	u := client.NewUser(nil, n.Plan())
	out, err := u.BuildRound(n.Round(), n)
	if err != nil {
		t.Fatal(err)
	}

	// Before collection the submission is accepted.
	if err := n.SubmitExternal(string(u.Mailbox()), out); err != nil {
		t.Fatalf("pre-collection submission rejected: %v", err)
	}

	// Simulate the mid-round window: the round is still open (the
	// counter advances only after mixing and delivery) but external
	// traffic has been collected.
	n.mu.Lock()
	n.collected = n.round
	n.mu.Unlock()

	u2 := client.NewUser(nil, n.Plan())
	out2, err := u2.BuildRound(n.Round(), n)
	if err != nil {
		t.Fatal(err)
	}
	err = n.SubmitExternal(string(u2.Mailbox()), out2)
	if err == nil {
		t.Fatal("submission accepted after its round's traffic was collected")
	}
	if !strings.Contains(err.Error(), "closed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/aead"
	"repro/internal/client"
	"repro/internal/mix"
)

// TestSubmitExternalRejectsCollectedRound pins the submission-window
// contract: once a round's external traffic has been folded into
// batches (the mix/deliver phase of RunRound), a submission for that
// still-open round must be rejected loudly, not accepted and then
// silently never mixed.
func TestSubmitExternalRejectsCollectedRound(t *testing.T) {
	n := testNetwork(t, 6, 2)
	u := client.NewUser(nil, n.Plan())
	out, err := u.BuildRound(n.Round(), n)
	if err != nil {
		t.Fatal(err)
	}

	// Before collection the submission is accepted.
	if err := n.SubmitExternal(string(u.Mailbox()), out); err != nil {
		t.Fatalf("pre-collection submission rejected: %v", err)
	}

	// Simulate the mid-round window: the round is still open (the
	// counter advances only after mixing and delivery) but external
	// traffic has been collected.
	fe := n.Shards()[0].(*Frontend)
	fe.mu.Lock()
	fe.collected = fe.round
	fe.mu.Unlock()

	u2 := client.NewUser(nil, n.Plan())
	out2, err := u2.BuildRound(n.Round(), n)
	if err != nil {
		t.Fatal(err)
	}
	err = n.SubmitExternal(string(u2.Mailbox()), out2)
	if err == nil {
		t.Fatal("submission accepted after its round's traffic was collected")
	}
	if !strings.Contains(err.Error(), "closed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestConvictedExternalUserIsBanned is the regression test for the
// external-user removal hole: markRemoved is a no-op for
// transport-layer users, so without the transport ban a convicted
// remote user could resubmit every round in violation of §6.4.
func TestConvictedExternalUserIsBanned(t *testing.T) {
	n := testNetwork(t, 6, 2)
	u := client.NewUser(nil, n.Plan())
	mailbox := string(u.Mailbox())

	// A submission whose knowledge proof is broken: the chain convicts
	// the sender at proof-check time.
	params, err := n.ChainParams(0, n.Round())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := mix.InvalidProofSubmission(aead.ChaCha20Poly1305(), params, n.Round(), client.LaneCurrent)
	if err != nil {
		t.Fatal(err)
	}
	out := &client.RoundOutput{
		Round:   n.Round(),
		Current: []client.ChainMessage{{Chain: 0, Sub: bad}},
	}
	if err := n.SubmitExternal(mailbox, out); err != nil {
		t.Fatalf("initial submission rejected: %v", err)
	}

	rep := runRound(t, n)
	convicted := false
	for _, who := range rep.BlamedUsers {
		if who == mailbox {
			convicted = true
		}
	}
	if !convicted {
		t.Fatalf("external user not convicted; blamed = %v", rep.BlamedUsers)
	}

	// Her next submission — perfectly well-formed this time — must be
	// refused.
	out2, err := u.BuildRound(n.Round(), n)
	if err != nil {
		t.Fatal(err)
	}
	err = n.SubmitExternal(mailbox, out2)
	if err == nil {
		t.Fatal("convicted external user's submission accepted")
	}
	if !strings.Contains(err.Error(), "removed") {
		t.Fatalf("unexpected error: %v", err)
	}

	// The ban holds on later rounds too, and her banked covers must
	// not run in her place.
	rep2 := runRound(t, n)
	if rep2.OfflineCovered != 0 {
		t.Fatalf("a banned user's covers ran: %+v", rep2)
	}
	if err := n.SubmitExternal(mailbox, out2); err == nil {
		t.Fatal("ban lapsed after a round")
	}
}

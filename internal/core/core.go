// Package core assembles a complete XRD network and drives its
// rounds: it is the public API of this reproduction.
//
// The package is split into two roles (see shard.go):
//
//   - Network is the round coordinator. It owns the mix servers
//     organised into parallel anytrust chains (§5.2), the
//     deterministic chain-selection plan (§5.3.1), epoch recovery and
//     blame aggregation, and drives each round end to end.
//   - GatewayShard is the per-user front end. Each shard owns a
//     contiguous slice of the 64-shard registry: registration,
//     presence, onion building, external submissions, cover banking
//     and mailbox storage for its users. Frontend (frontend.go) is
//     the in-process implementation; rpc.ShardClient hosts a shard in
//     another process.
//
// When Config.Shards is empty, NewNetwork builds one full-range
// in-process Frontend and the Network behaves exactly like the
// pre-split monolith — same API, same locking, same round pipeline.
//
// Each call to RunRound executes one communication round end to end
// (Figure 1): every shard builds its users' ℓ messages plus the next
// round's covers (fanning out over a worker pool that claims registry
// shards), every chain mixes with aggregate-hybrid-shuffle
// verification (§6), results fan back out to the shard owning each
// recipient mailbox, and users fetch and decrypt.
//
// Registry operations (NewUser, SetOnline, IsRemoved, NumUsers) and
// mailbox fetches are safe to call concurrently with RunRound; a user
// registered mid-round joins either the running round or the next
// one, depending on whether her registry shard was already built.
// RunRound itself is serialised: concurrent calls execute one at a
// time.
//
// Misbehaviour injected through CorruptServer or InjectSubmission
// surfaces in the RoundReport: halted chains, blamed servers, blamed
// (and automatically removed) users — mirroring §6.4's guarantees. A
// gateway shard failing mid-round surfaces as DeadShards: only its
// own users are affected, the round completes for everyone else.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/aead"
	"repro/internal/chainsel"
	"repro/internal/churn"
	"repro/internal/client"
	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/obs"
	"repro/internal/onion"
	"repro/internal/topology"
)

// Config describes a network deployment.
type Config struct {
	// NumServers is N, the number of mix servers.
	NumServers int
	// NumChains is n; zero means n = N as in the paper (§5.2.1).
	NumChains int
	// F is the assumed fraction of malicious servers; ignored if
	// ChainLengthOverride is set.
	F float64
	// SecurityBits is λ for the anytrust bound; zero means 64.
	SecurityBits int
	// ChainLengthOverride fixes the chain length k directly, for
	// small test deployments and exact-paper comparisons (k=32).
	ChainLengthOverride int
	// Seed is the public randomness for chain formation.
	Seed []byte
	// MailboxServers is the mailbox cluster size; zero means 1. Used
	// by the default full-range Frontend; ignored when Shards is set
	// (each shard sizes its own cluster).
	MailboxServers int
	// Scheme is the AEAD; nil means ChaCha20-Poly1305.
	Scheme aead.Scheme
	// DisableStaggering turns off position staggering (§5.2.1), for
	// the ablation benchmark.
	DisableStaggering bool
	// Workers sizes the round pipeline's build worker pool; zero
	// means runtime.GOMAXPROCS(0). One worker reproduces the serial
	// build order for deterministic comparisons. Applies to the
	// default Frontend; explicit Shards carry their own pools.
	Workers int
	// Shards, when non-empty, supplies the gateway front-end shards.
	// Their ranges must exactly partition the registry-shard space
	// [0, NumRegistryShards). Empty means one in-process full-range
	// Frontend — the monolith.
	Shards []GatewayShard
	// RemoteHops, when non-nil, is consulted for every chain position
	// while the network is assembled, in chain order then position
	// order. Returning a non-nil mix.Hop hosts that position on a
	// remote process reached through the hop transport (typically an
	// rpc.HopClient initialised against the given base key, which is
	// g for position 0 and the previous position's blinding key
	// otherwise); returning nil keeps the position in-process.
	//
	// RemoteHops is keyed by chain coordinates, which do not survive a
	// chain re-formation; deployments that enable Recover should use
	// HopForServer instead.
	RemoteHops func(chain, position int, base group.Point) (mix.Hop, error)
	// HopForServer, when non-nil, supplies the transport for chain
	// positions keyed by server identity, and is consulted again at
	// every epoch re-formation: server ids are stable across epochs
	// while chain coordinates are not. Returning nil hosts the
	// position in-process (the provider may mix local and remote
	// positions). Takes precedence over RemoteHops.
	HopForServer func(epoch uint64, server, chain, position int, base group.Point) (mix.Hop, error)
	// Recover enables epoch recovery: after a chain halts with blame,
	// or fails to announce keys, the responsible servers are evicted
	// and chains re-form over the survivors before the next round
	// (halt → blame → evict → re-form → resume). Remotely hosted
	// positions additionally need HopForServer so re-formed chains can
	// reference them.
	Recover bool
	// PipelineDepth bounds how many rounds may be in flight at once.
	// 0 or 1 runs rounds strictly serially. 2 overlaps round ρ+1's
	// preparation — key announcement, parameter snapshot, onion
	// building, external collection — with round ρ's mix, trading one
	// round of submission-window latency for round-rate throughput:
	// round ρ+1's submission window closes when its build starts,
	// while ρ is still mixing, so traffic queued after that rides
	// round ρ+2. Values above 2 are clamped to 2: preparing ρ+2 needs
	// ρ+1's finish state, so one round of lookahead is the maximum
	// overlap the begin/finish shard protocol admits.
	PipelineDepth int
}

// Network is the round coordinator of an XRD deployment. With the
// default single full-range Frontend it is also the complete
// deployment, and every pre-split monolith method keeps working by
// delegating to the shard owning the mailbox in question.
type Network struct {
	cfg     Config
	scheme  aead.Scheme
	plan    *chainsel.Plan
	topo    *topology.Topology
	chains  []*mix.Chain
	workers int

	// shards are the gateway front ends; owner maps each registry
	// shard index to its position in shards. Both are fixed at
	// construction.
	shards []GatewayShard
	owner  [numShards]int

	// runMu serialises RunRound executions.
	runMu sync.Mutex
	// pending is the round prepared ahead of time under
	// Config.PipelineDepth ≥ 2, awaiting validation and execution by
	// the next RunRound. Guarded by runMu.
	pending *preparedRound

	// evictor records servers expelled across epochs (Config.Recover).
	evictor *churn.Evictor

	// mu guards the control state below — never user state, which
	// lives inside the gateway shards. plan, topo and chains (the
	// struct fields above) are ALSO guarded by mu once the network is
	// running: epoch re-formation swaps them, so every reader outside
	// the reform path itself must snapshot them via topoView.
	mu    sync.Mutex
	round uint64
	// epoch counts chain re-formations; 0 is the founding topology.
	epoch uint64
	// pendingEvict queues servers to expel before the next round runs:
	// those blamed by a halted chain or unreachable at announce.
	pendingEvict map[int]bool
	// failedServers marks crashed mix servers; chains containing one
	// are skipped and their conversations fail for the round (§5.2.3).
	failedServers map[int]bool
	// injected are raw submissions added to chain batches this round
	// (fault injection for malicious users).
	injected map[int][]onion.Submission
}

// NewNetwork builds the topology, keys every chain, announces round 1
// (and round 2 cover) keys, and installs the founding chain-selection
// plan on every gateway shard.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Scheme == nil {
		cfg.Scheme = aead.ChaCha20Poly1305()
	}
	topo, err := topology.Build(topology.Config{
		NumServers:          cfg.NumServers,
		NumChains:           cfg.NumChains,
		F:                   cfg.F,
		SecurityBits:        cfg.SecurityBits,
		ChainLengthOverride: cfg.ChainLengthOverride,
		Seed:                cfg.Seed,
		DisableStaggering:   cfg.DisableStaggering,
	})
	if err != nil {
		return nil, fmt.Errorf("core: building topology: %w", err)
	}
	plan, err := chainsel.NewPlan(len(topo.Chains))
	if err != nil {
		return nil, fmt.Errorf("core: building chain-selection plan: %w", err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numShards {
		workers = numShards
	}
	n := &Network{
		cfg:           cfg,
		scheme:        cfg.Scheme,
		plan:          plan,
		topo:          topo,
		workers:       workers,
		round:         1,
		evictor:       churn.NewEvictor(),
		failedServers: make(map[int]bool),
		injected:      make(map[int][]onion.Submission),
		pendingEvict:  make(map[int]bool),
	}
	if len(cfg.Shards) == 0 {
		fe, err := NewFrontend(FrontendConfig{
			Range:          FullRange(),
			MailboxServers: cfg.MailboxServers,
			Scheme:         cfg.Scheme,
			Workers:        cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		n.shards = []GatewayShard{fe}
	} else {
		n.shards = cfg.Shards
	}
	if err := n.indexShards(); err != nil {
		return nil, err
	}
	for c := range topo.Chains {
		chain, err := n.assembleChainAt(0, topo, c)
		if err != nil {
			return nil, fmt.Errorf("core: keying chain %d: %w", c, err)
		}
		n.chains = append(n.chains, chain)
	}
	if err := n.announce(n.round); err != nil {
		return nil, err
	}
	if err := n.announce(n.round + 1); err != nil {
		return nil, err
	}
	// Install the founding plan everywhere. Like mix hops, shards must
	// be reachable while the deployment forms.
	for _, sh := range n.shards {
		if err := sh.Rebalance(0, len(n.chains)); err != nil {
			return nil, fmt.Errorf("core: installing plan on shard %s: %w", sh.Range(), err)
		}
	}
	return n, nil
}

// indexShards validates that the shard ranges exactly partition
// [0, numShards) and fills the owner lookup table.
func (n *Network) indexShards() error {
	covered := make([]int, numShards)
	for i := range covered {
		covered[i] = -1
	}
	for i, sh := range n.shards {
		r := sh.Range()
		if err := r.Validate(); err != nil {
			return err
		}
		for s := r.Lo; s < r.Hi; s++ {
			if covered[s] != -1 {
				return fmt.Errorf("core: registry shard %d owned by both gateway shards %s and %s",
					s, n.shards[covered[s]].Range(), r)
			}
			covered[s] = i
		}
	}
	for s, i := range covered {
		if i == -1 {
			return fmt.Errorf("core: registry shard %d owned by no gateway shard", s)
		}
		n.owner[s] = i
	}
	return nil
}

// shardFor returns the gateway shard owning a mailbox identifier.
func (n *Network) shardFor(mailbox []byte) GatewayShard {
	return n.shards[n.owner[OwnerShard(mailbox)]]
}

// frontendFor returns the in-process Frontend owning a mailbox
// identifier, or nil when that shard is hosted remotely.
func (n *Network) frontendFor(mailbox []byte) *Frontend {
	fe, _ := n.shardFor(mailbox).(*Frontend)
	return fe
}

// Shards exposes the gateway shards (for tests and the rpc layer).
func (n *Network) Shards() []GatewayShard { return n.shards }

// assembleChainAt keys one chain of a topology for an epoch, placing
// each position in-process or on a remote hop according to
// Config.HopForServer (id-keyed, epoch-aware) or the legacy
// Config.RemoteHops (coordinate-keyed, founding epoch only). Remote
// key setup is inherently sequential within a chain — position i's
// keys chain off position i−1's blinding key (§6.1) — which is why
// the provider receives the base point. A provider failure is
// returned as a mix.HopError so the reform loop can evict the
// offending server.
func (n *Network) assembleChainAt(epoch uint64, topo *topology.Topology, c int) (*mix.Chain, error) {
	if n.cfg.HopForServer == nil && (n.cfg.RemoteHops == nil || epoch > 0) {
		return mix.NewChain(c, topo.ChainLength, n.scheme)
	}
	hops := make([]mix.Hop, topo.ChainLength)
	base := group.Generator()
	for i := range hops {
		var h mix.Hop
		var err error
		if n.cfg.HopForServer != nil {
			h, err = n.cfg.HopForServer(epoch, topo.Chains[c][i], c, i, base)
		} else {
			h, err = n.cfg.RemoteHops(c, i, base)
		}
		if err != nil {
			return nil, &mix.HopError{Chain: c, Position: i, Err: fmt.Errorf("core: remote hop setup: %w", err)}
		}
		if h == nil {
			h = mix.LocalHop(mix.NewChainServer(c, i, base, n.scheme))
		}
		hops[i] = h
		base = h.Keys().Bpk
	}
	return mix.NewChainFromHops(c, hops, n.scheme)
}

// announceEach publishes round's inner keys on every chain, in
// parallel — with remote hops each chain's announcement is k
// sequential network exchanges, and the chains are independent, so
// announcing serially would put n·k round-trips on every round's
// critical path. It is best-effort across chains: one chain failing
// (a dead remote hop, say) must not leave the others without
// announced keys, so every chain is attempted and the per-chain
// errors returned for the caller to attribute.
func announceEach(chains []*mix.Chain, round uint64) []error {
	errs := make([]error, len(chains))
	var wg sync.WaitGroup
	for i, c := range chains {
		wg.Add(1)
		go func(i int, c *mix.Chain) {
			defer wg.Done()
			if err := c.BeginRound(round); err != nil {
				errs[i] = fmt.Errorf("core: announcing round %d: %w", round, err)
			}
		}(i, c)
	}
	wg.Wait()
	return errs
}

// announce is announceEach with the errors joined.
func (n *Network) announce(round uint64) error {
	return errors.Join(announceEach(n.chains, round)...)
}

// topoView snapshots the mutable topology state under mu. Epoch
// re-formation swaps all three references atomically, so readers
// holding a snapshot see one consistent epoch even while the next is
// being formed.
func (n *Network) topoView() (*chainsel.Plan, *topology.Topology, []*mix.Chain) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.plan, n.topo, n.chains
}

// Plan exposes the chain-selection plan (for tests and experiments).
func (n *Network) Plan() *chainsel.Plan {
	p, _, _ := n.topoView()
	return p
}

// Topology exposes the server-to-chain assignment.
func (n *Network) Topology() *topology.Topology {
	_, t, _ := n.topoView()
	return t
}

// NumChains returns n, the number of mix chains.
func (n *Network) NumChains() int {
	_, _, chains := n.topoView()
	return len(chains)
}

// Epoch returns the topology epoch (0 until the first re-formation).
func (n *Network) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Workers returns the size of the round pipeline's build worker pool.
func (n *Network) Workers() int { return n.workers }

// Round returns the upcoming round number.
func (n *Network) Round() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.round
}

// ChainParams implements client.ParamsSource.
func (n *Network) ChainParams(chain int, round uint64) (mix.Params, error) {
	_, _, chains := n.topoView()
	if chain < 0 || chain >= len(chains) {
		return mix.Params{}, fmt.Errorf("core: no chain %d", chain)
	}
	return chains[chain].ParamsFor(round)
}

// NewUser creates and registers a user; she participates in every
// round until she goes offline or is removed for misbehaviour. Safe
// to call concurrently with a running round: the user joins the round
// if her registry shard has not been built yet, the next one
// otherwise. Key generation repeats until the identity lands on an
// in-process shard; returns nil if every shard is remote (remote
// users register through their gateway's transport instead).
func (n *Network) NewUser() *client.User {
	plan, _, _ := n.topoView()
	inProcess := false
	for _, sh := range n.shards {
		if _, ok := sh.(*Frontend); ok {
			inProcess = true
			break
		}
	}
	if !inProcess {
		return nil
	}
	for {
		u := client.NewUser(n.scheme, plan)
		if fe := n.frontendFor(u.Mailbox()); fe != nil {
			if err := fe.AddUser(u); err == nil {
				return u
			}
		}
	}
}

// NumUsers returns the number of registered, non-removed users across
// the in-process shards.
func (n *Network) NumUsers() int {
	total := 0
	for _, sh := range n.shards {
		if fe, ok := sh.(*Frontend); ok {
			total += fe.NumUsers()
		}
	}
	return total
}

// SetOnline marks a user online or offline for subsequent rounds. The
// first offline round is covered by her pre-submitted cover messages
// (§5.3.3). If those covers ran while she was away, her conversation
// was ended by the offline signal, so reconnecting reverts her to
// loopback traffic until a conversation is re-initiated.
func (n *Network) SetOnline(u *client.User, online bool) {
	if fe := n.frontendFor(u.Mailbox()); fe != nil {
		fe.SetOnline(u, online)
	}
}

// IsRemoved reports whether the user was removed for misbehaviour.
func (n *Network) IsRemoved(u *client.User) bool {
	fe := n.frontendFor(u.Mailbox())
	return fe != nil && fe.IsRemoved(u)
}

// FailServer crashes a mix server: every chain containing it halts
// for subsequent rounds until RestoreServer (§5.2.3).
func (n *Network) FailServer(server int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failedServers[server] = true
}

// RestoreServer brings a crashed server back.
func (n *Network) RestoreServer(server int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.failedServers, server)
}

// CorruptServer attaches a corruption to the server at the given
// position of a chain (fault injection; see mix.Corruption).
func (n *Network) CorruptServer(chain, position int, c *mix.Corruption) error {
	_, _, chains := n.topoView()
	if chain < 0 || chain >= len(chains) {
		return fmt.Errorf("core: no chain %d", chain)
	}
	if position < 0 || position >= chains[chain].Len() {
		return fmt.Errorf("core: chain %d has no position %d", chain, position)
	}
	s := chains[chain].Servers[position]
	if s == nil {
		return fmt.Errorf("core: chain %d position %d is hosted remotely; corruption hooks need an in-process server", chain, position)
	}
	s.Corruption = c
	return nil
}

// InjectSubmission adds a raw submission to a chain's next batch,
// simulating a malicious user outside the registry.
func (n *Network) InjectSubmission(chain int, sub onion.Submission) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.injected[chain] = append(n.injected[chain], sub)
}

// Fetch downloads a user's mailbox for a round.
func (n *Network) Fetch(u *client.User, round uint64) [][]byte {
	if fe := n.frontendFor(u.Mailbox()); fe != nil {
		return fe.Fetch(u, round)
	}
	return nil
}

// FetchMailbox downloads a mailbox by identifier, the transport-layer
// variant of Fetch.
func (n *Network) FetchMailbox(round uint64, mailbox []byte) [][]byte {
	if fe := n.frontendFor(mailbox); fe != nil {
		return fe.FetchMailbox(round, mailbox)
	}
	return nil
}

// AckMailbox prunes a mailbox's messages for a round after its owner
// confirmed receipt (see Frontend.AckMailbox), returning how many
// were removed.
func (n *Network) AckMailbox(round uint64, mailbox []byte) int {
	if fe := n.frontendFor(mailbox); fe != nil {
		return fe.AckMailbox(round, mailbox)
	}
	return 0
}

// PruneBefore discards mailbox state older than the given round on
// every in-process shard.
func (n *Network) PruneBefore(round uint64) {
	for _, sh := range n.shards {
		if fe, ok := sh.(*Frontend); ok {
			fe.PruneBefore(round)
		}
	}
}

// Register records a network-transport user's mailbox identifier
// with the shard owning it (see Frontend.Register).
func (n *Network) Register(mailbox []byte) error {
	fe := n.frontendFor(mailbox)
	if fe == nil {
		return fmt.Errorf("core: mailbox's gateway shard %s is remote; register through its transport",
			n.shardFor(mailbox).Range())
	}
	return fe.Register(mailbox)
}

// SubmitExternal queues a remote user's round output with the shard
// owning her mailbox (see external.go for the window semantics).
func (n *Network) SubmitExternal(mailbox string, out *client.RoundOutput) error {
	fe := n.frontendFor([]byte(mailbox))
	if fe == nil {
		return fmt.Errorf("core: mailbox's gateway shard %s is remote; submit through its transport",
			n.shardFor([]byte(mailbox)).Range())
	}
	return fe.SubmitExternal(mailbox, out)
}

// StrandedError reports whether the user behind mailbox was stranded
// in the given executed round: a deterministic error wrapping
// ErrRoundRetry if so, nil otherwise. Records are kept for the last
// strandedRetention rounds on the owning shard.
func (n *Network) StrandedError(round uint64, mailbox []byte) error {
	if fe := n.frontendFor(mailbox); fe != nil {
		return fe.StrandedError(round, mailbox)
	}
	return nil
}

// RoundReport summarises one executed round.
type RoundReport struct {
	// Round is the executed round number.
	Round uint64
	// Delivered is the total number of mailbox messages delivered.
	Delivered int
	// HaltedChains lists chains that aborted after detecting server
	// misbehaviour.
	HaltedChains []int
	// FailedChains lists chains skipped because a member server had
	// crashed.
	FailedChains []int
	// BlamedServers lists (chain, position) pairs convicted by proof
	// failure or the blame protocol.
	BlamedServers [][2]int
	// BlamedUsers lists mailbox identifiers of users convicted and
	// removed; injected submissions appear as "injected:<chain>".
	BlamedUsers []string
	// DroppedInner counts messages dropped at inner decryption.
	DroppedInner int
	// OfflineCovered counts users whose covers were used this round.
	OfflineCovered int
	// BlameRounds counts blame protocol executions across chains.
	BlameRounds int
	// DeadChains lists chains that could not announce this round's
	// keys (an unreachable hop); their users are stranded for the
	// round and, with Recover on, the chain re-forms before the next.
	DeadChains []int
	// DeadShards lists gateway shards (indices into Config.Shards, or
	// 0 for the default Frontend) that failed their round-begin or
	// round-finish call: their users contributed nothing (begin) or
	// lost their deliveries (finish); everyone else's round completed.
	DeadShards []int
	// LostDeliveries counts mailbox messages that were mixed but could
	// not be stored because their owning shard died before
	// FinishRound.
	LostDeliveries int
	// MailboxDropped counts old mailbox messages evicted by the
	// per-mailbox depth cap to make room for this round's deliveries.
	MailboxDropped int
	// DedupedSubmissions counts duplicate submissions discarded when
	// merging shard batches: a client that failed over mid-round can
	// land the same (byte-identical) submission on two gateways; the
	// coordinator keeps the first copy per (chain, DH key).
	DedupedSubmissions int
	// Stranded lists users (mailbox identifiers) whose traffic rode a
	// halted, failed or dead chain this round: nothing of theirs was
	// delivered and StrandedError reports ErrRoundRetry for them.
	Stranded []string
	// Epoch is the topology epoch the round executed in.
	Epoch uint64
	// Reformed reports that chains were re-formed (a new epoch began)
	// before this round ran; Evicted lists the servers expelled.
	Reformed bool
	Evicted  []int
}

// roundParams is an immutable per-round snapshot of every chain's
// public parameters for rounds ρ and ρ+1. Build workers read it
// without any lock, and it saves each of the M·ℓ·2 per-message
// parameter lookups from reassembling key slices. Dead chains — those
// that failed to announce — carry zero parameters and are refused by
// ChainParams.
type roundParams struct {
	rho  uint64
	cur  []mix.Params
	next []mix.Params
	dead map[int]bool
}

// newRoundParams assembles a snapshot from its wire representation.
func newRoundParams(rho uint64, cur, next []mix.Params, dead []int) *roundParams {
	p := &roundParams{rho: rho, cur: cur, next: next}
	if len(dead) > 0 {
		p.dead = make(map[int]bool, len(dead))
		for _, c := range dead {
			p.dead[c] = true
		}
	}
	return p
}

// deadList returns the dead-chain set as a sorted slice.
func (p *roundParams) deadList() []int {
	if len(p.dead) == 0 {
		return nil
	}
	out := make([]int, 0, len(p.dead))
	for c := range p.dead {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ChainParams implements client.ParamsSource.
func (p *roundParams) ChainParams(chain int, round uint64) (mix.Params, error) {
	if chain < 0 || chain >= len(p.cur) {
		return mix.Params{}, fmt.Errorf("core: no chain %d", chain)
	}
	if p.dead[chain] {
		return mix.Params{}, fmt.Errorf("core: chain %d is dead for round %d", chain, p.rho)
	}
	switch round {
	case p.rho:
		return p.cur[chain], nil
	case p.rho + 1:
		return p.next[chain], nil
	}
	return mix.Params{}, fmt.Errorf("core: no parameter snapshot for round %d", round)
}

// snapshotParams captures every live chain's parameters for rounds
// rho and rho+1 (covers are built for the next round, §5.3.3). Dead
// chains — those that failed to announce — keep zero parameters; the
// build stage strands their users instead of reading them.
func snapshotParams(chains []*mix.Chain, rho uint64, dead map[int]bool) (*roundParams, error) {
	p := &roundParams{
		rho:  rho,
		cur:  make([]mix.Params, len(chains)),
		next: make([]mix.Params, len(chains)),
		dead: dead,
	}
	for c, chain := range chains {
		if dead[c] {
			continue
		}
		var err error
		if p.cur[c], err = chain.ParamsFor(rho); err != nil {
			return nil, fmt.Errorf("core: snapshotting chain %d: %w", c, err)
		}
		if p.next[c], err = chain.ParamsFor(rho + 1); err != nil {
			return nil, fmt.Errorf("core: snapshotting chain %d: %w", c, err)
		}
	}
	return p, nil
}

// preparedRound is the output of a round's preparation half: keys
// announced, parameters snapshotted, every shard's users built and
// the per-chain batches merged — everything up to (but not including)
// the mix. RunRound prepares and executes back to back; with
// Config.PipelineDepth ≥ 2 the next round's preparation runs while
// the current round mixes, and the prepared state is re-validated
// before execution (round number, epoch, convicted submitters).
type preparedRound struct {
	rho   uint64
	epoch uint64
	topo  *topology.Topology
	// chains is the topology snapshot the round was prepared against;
	// execution must run over the same snapshot.
	chains []*mix.Chain
	report *RoundReport
	// dead marks chains that failed to announce; deadShards marks
	// gateway shards that failed their round-begin call.
	dead       map[int]bool
	deadShards map[int]bool
	batches    []ChainBatch
	// skipped are users stranded at build time (a dead chain among
	// their ℓ chains).
	skipped []string
	// injected holds the fault-injection submissions consumed by this
	// preparation, so a discarded preparation can return them to the
	// queue.
	injected map[int][]onion.Submission
	// trace is the round's span tree, started at preparation so a
	// pipelined prebuild's announce/build phases land in the round
	// they belong to. Discarded preparations drop it unfinished.
	trace *obs.RoundTrace
}

// dropSubmitters filters every batch entry whose submitter is in the
// convicted set. A pipelined preparation assembles its batches before
// the overlapping round's blame verdicts land, and a removed user's
// traffic must never run (§6.4).
func (p *preparedRound) dropSubmitters(convicted []string) {
	if len(convicted) == 0 {
		return
	}
	bad := make(map[string]bool, len(convicted))
	for _, who := range convicted {
		bad[who] = true
	}
	for c := range p.batches {
		b := &p.batches[c]
		subs, submitters := b.Subs[:0], b.Submitters[:0]
		for i, who := range b.Submitters {
			if bad[who] {
				continue
			}
			subs = append(subs, b.Subs[i])
			submitters = append(submitters, who)
		}
		b.Subs, b.Submitters = subs, submitters
	}
}

// maybeReform performs epoch recovery if evictions are pending: expel
// the servers blamed since the last round and re-form chains over the
// survivors (halt → blame → evict → re-form → resume). Callers hold
// runMu.
func (n *Network) maybeReform() (reformed bool, evicted []int, err error) {
	if !n.cfg.Recover {
		return false, nil, nil
	}
	n.mu.Lock()
	pending := len(n.pendingEvict) > 0
	n.mu.Unlock()
	if !pending {
		return false, nil, nil
	}
	if evicted, err = n.reform(); err != nil {
		return false, nil, err
	}
	return len(evicted) > 0, evicted, nil
}

// pipelineDepth normalises Config.PipelineDepth: 1 is serial, 2 the
// maximum overlap (see the Config field).
func (n *Network) pipelineDepth() int {
	d := n.cfg.PipelineDepth
	if d < 1 {
		return 1
	}
	if d > 2 {
		return 2
	}
	return d
}

// restoreInjected returns consumed fault-injection submissions to the
// front of the queue (a preparation that will not execute).
func (n *Network) restoreInjected(injected map[int][]onion.Submission) {
	if len(injected) == 0 {
		return
	}
	n.mu.Lock()
	for c, subs := range injected {
		n.injected[c] = append(append([]onion.Submission{}, subs...), n.injected[c]...)
	}
	n.mu.Unlock()
}

// discardPrepared rolls back a prepared round that will not execute:
// the live shards' submission windows reopen (external users resubmit
// for the retried or re-formed round) and injected submissions return
// to the queue. In-process users' builds are cached per round
// (client.User.BuildRound is idempotent), so their queued message
// bodies survive the discard.
func (n *Network) discardPrepared(p *preparedRound) {
	for i, sh := range n.shards {
		if !p.deadShards[i] {
			sh.AbortRound(p.rho)
		}
	}
	n.restoreInjected(p.injected)
}

// prepareRound runs the preparation half of round rho: announce the
// keys the round needs, snapshot the live chains' parameters, fan the
// build out to every gateway shard and merge the per-chain batches.
// It advances no state other than consuming the injected-submission
// queue and closing the shards' submission windows — both rolled back
// by discardPrepared if the preparation is abandoned — so it is safe
// to run while the previous round is still mixing.
func (n *Network) prepareRound(rho uint64) (*preparedRound, error) {
	n.mu.Lock()
	epoch := n.epoch
	injected := n.injected
	n.injected = make(map[int][]onion.Submission)
	topo, chains := n.topo, n.chains
	n.mu.Unlock()

	p := &preparedRound{
		rho:        rho,
		epoch:      epoch,
		topo:       topo,
		chains:     chains,
		report:     &RoundReport{Round: rho, Epoch: epoch},
		dead:       make(map[int]bool),
		deadShards: make(map[int]bool),
		injected:   injected,
		trace:      obs.DefaultTracer.StartRound(rho, epoch),
	}

	// Re-announce the rounds this execution needs. BeginRound is
	// idempotent, so on the happy path this is a map hit per chain;
	// after a failed trailing announce (a remote hop that blipped
	// last round and recovered) it is the retry that un-wedges the
	// deployment. A chain that still cannot announce is dead for the
	// round: it is excluded from the parameter snapshot, the shards
	// strand its users, and — when the failure is attributable to a
	// position — the server behind it is queued for eviction.
	noteDead := func(errs []error) {
		for c, err := range errs {
			if err == nil {
				continue
			}
			if !p.dead[c] {
				p.dead[c] = true
				p.report.DeadChains = append(p.report.DeadChains, c)
			}
			n.attributeHopError(topo, err)
		}
	}
	announcePhase := p.trace.StartPhase("announce")
	noteDead(announceEach(chains, rho))
	noteDead(announceEach(chains, rho+1))
	announcePhase.End()

	// Stage 1: build, distributed. Push the parameter snapshot to
	// every gateway shard; each builds its users' onions over its
	// worker pool, folds in collected external traffic and closes its
	// submission window for the round. A shard erroring here is dead
	// for the round: only its users are missing from the batches.
	snap, err := snapshotParams(chains, rho, p.dead)
	if err != nil {
		n.restoreInjected(injected)
		return nil, err
	}
	br := &BeginRound{
		Round:     rho,
		Epoch:     epoch,
		NumChains: len(chains),
		Cur:       snap.cur,
		Next:      snap.next,
		Dead:      snap.deadList(),
	}
	buildPhase := p.trace.StartPhase("build")
	builds := make([]*ShardBuild, len(n.shards))
	beginErrs := make([]error, len(n.shards))
	var beginWG sync.WaitGroup
	for i, sh := range n.shards {
		beginWG.Add(1)
		go func(i int, sh GatewayShard) {
			defer beginWG.Done()
			child := buildPhase.StartChild("shard " + sh.Range().String())
			builds[i], beginErrs[i] = sh.BeginRound(br)
			child.End()
		}(i, sh)
	}
	beginWG.Wait()

	for i := range n.shards {
		if beginErrs[i] != nil {
			p.deadShards[i] = true
			p.report.DeadShards = append(p.report.DeadShards, i)
			continue
		}
		p.report.OfflineCovered += builds[i].Covered
		p.skipped = append(p.skipped, builds[i].Skipped...)
	}
	if len(p.deadShards) == len(n.shards) {
		n.restoreInjected(injected)
		return nil, fmt.Errorf("core: every gateway shard failed round %d begin: %w", rho, errors.Join(beginErrs...))
	}

	// Merge the shards' per-chain batches plus injected submissions.
	// With more than one shard, duplicate submissions are possible: a
	// client whose gateway stalled mid-submit retries against another
	// shard, and both may have accepted the (byte-identical) copy.
	// The merge keeps the first copy per (chain, DH key) — without
	// this, the duplicate would fail the chain's shuffle-cardinality
	// checks or deliver the message twice.
	var seen map[string]bool
	if len(n.shards) > 1 {
		seen = make(map[string]bool)
	}
	batches := make([]ChainBatch, len(chains))
	for c := range batches {
		total := 0
		for i := range builds {
			if builds[i] != nil && c < len(builds[i].Batches) {
				total += len(builds[i].Batches[c].Subs)
			}
		}
		batches[c].Subs = make([]onion.Submission, 0, total)
		batches[c].Submitters = make([]string, 0, total)
		for i := range builds {
			if builds[i] == nil || c >= len(builds[i].Batches) {
				continue
			}
			b := &builds[i].Batches[c]
			for j, sub := range b.Subs {
				if seen != nil {
					key := string(sub.DHKey.Bytes())
					if seen[key] {
						p.report.DedupedSubmissions++
						continue
					}
					seen[key] = true
				}
				batches[c].add(sub, b.Submitters[j])
			}
		}
	}
	for chain, subs := range injected {
		if chain < 0 || chain >= len(batches) {
			continue
		}
		for _, sub := range subs {
			batches[chain].add(sub, fmt.Sprintf("injected:%d", chain))
		}
	}
	p.batches = batches
	buildPhase.End()
	return p, nil
}

// RunRound executes the upcoming round and advances the round
// counter. The coordinator's view of the pipeline: announce this
// round's keys; push the round parameters to every gateway shard and
// collect their per-chain batches (each shard builds its own users in
// parallel over its worker pool); mix every chain in parallel (they
// are independent local mix-nets, §4.2); fan the delivered mailbox
// messages back out to the shard owning each recipient, along with
// the blame verdicts and stranded-user records. Blamed users are
// removed from the network before the next round. Concurrent RunRound
// calls are serialised.
//
// With Config.Recover set, RunRound additionally performs epoch
// recovery: servers blamed by a previous round (a halted chain, a
// failed announce) are evicted and the chains re-formed over the
// survivors before this round executes, and chains that cannot
// announce this round's keys run dead — their users are stranded for
// the round (see StrandedError) rather than wedging the deployment.
// A gateway shard that fails its round-begin call is dead for the
// round: it contributes no traffic and the round proceeds without it.
//
// With Config.PipelineDepth ≥ 2, round ρ+1's preparation — key
// announcement, parameter snapshot, onion building — overlaps round
// ρ's mix. The prepared round is re-validated before it executes:
// a round retry or an epoch re-formation discards it (submission
// windows reopen, injected submissions return to the queue, and the
// per-round build cache in client.User keeps queued bodies safe), and
// submitters convicted by the overlapped round are filtered from its
// batches.
func (n *Network) RunRound() (*RoundReport, error) {
	n.runMu.Lock()
	defer n.runMu.Unlock()

	reformed, evicted, err := n.maybeReform()
	if err != nil {
		return nil, err
	}

	n.mu.Lock()
	rho, epoch := n.round, n.epoch
	n.mu.Unlock()

	// Adopt the round prepared during the previous execution if it is
	// still valid: the same round (the previous round may have failed
	// and be up for retry under its old number) in the same epoch (a
	// re-formation invalidates every prebuilt onion).
	p := n.pending
	n.pending = nil
	if p != nil && (reformed || p.rho != rho || p.epoch != epoch) {
		n.discardPrepared(p)
		p = nil
	}
	if p == nil {
		if p, err = n.prepareRound(rho); err != nil {
			return nil, err
		}
	}
	p.report.Reformed = reformed
	p.report.Evicted = evicted

	// Overlap the next round's preparation with this round's mix. The
	// round-ρ+1 and ρ+2 key announcements and the shards' round-ρ+1
	// builds run while round ρ's chains mix; chain key state is
	// guarded for exactly this concurrency (mix.Chain.keyMu,
	// mix.Server.innerMu, the three-round inner-key retention window).
	type prepOutcome struct {
		p   *preparedRound
		err error
	}
	var nextCh chan prepOutcome
	if n.pipelineDepth() > 1 {
		nextCh = make(chan prepOutcome, 1)
		go func() {
			np, err := n.prepareRound(rho + 1)
			nextCh <- prepOutcome{p: np, err: err}
		}()
	}

	report, execErr := n.executeRound(p)

	if nextCh != nil {
		out := <-nextCh
		switch {
		case out.err != nil:
			// Preparation failed (every shard dead, snapshot failure);
			// its side effects are already rolled back. The next
			// RunRound prepares afresh and reports the condition.
		case report == nil:
			// This round failed outright and will be retried under the
			// same number; the prebuild is for the wrong round.
			n.discardPrepared(out.p)
		default:
			out.p.dropSubmitters(report.BlamedUsers)
			n.pending = out.p
		}
	}
	// A pending eviction means the next RunRound re-forms chains
	// first, invalidating every prebuilt onion; discard now so the
	// shards' submission windows reopen immediately.
	if n.pending != nil && n.cfg.Recover {
		n.mu.Lock()
		evictPending := len(n.pendingEvict) > 0
		n.mu.Unlock()
		if evictPending {
			n.discardPrepared(n.pending)
			n.pending = nil
		}
	}
	return report, execErr
}

// executeRound runs the mix, aggregation and delivery halves of a
// prepared round and advances the round counter. On an orchestration
// failure the shards' submission windows are rolled back and the
// round stays current, so the caller can retry it.
func (n *Network) executeRound(p *preparedRound) (*RoundReport, error) {
	rho, epoch := p.rho, p.epoch
	topo, chains := p.topo, p.chains
	report := p.report
	dead, deadShards := p.dead, p.deadShards
	batches, skipped := p.batches, p.skipped

	// abortShards rolls the live shards' submission windows back if
	// the round fails after collection: the round will be retried, so
	// external users must be able to resubmit for it (their collected
	// traffic was consumed by the failed attempt).
	abortShards := func() {
		for i, sh := range n.shards {
			if !deadShards[i] {
				sh.AbortRound(rho)
			}
		}
	}

	// The failed-server set is read at execution time, not at
	// preparation time, so a crash reported while a pipelined
	// preparation was in flight still fails the chains of the round
	// being executed — the same view a serial round would have had.
	n.mu.Lock()
	failed := make(map[int]bool, len(n.failedServers))
	for s := range n.failedServers {
		failed[s] = true
	}
	n.mu.Unlock()

	failedChains := make(map[int]bool)
	for _, c := range topo.FailedChains(failed) {
		failedChains[c] = true
		report.FailedChains = append(report.FailedChains, c)
	}

	// Stage 2: mix. Run every healthy chain in parallel — the heart
	// of the design: chains are independent local mix-nets (§4.2).
	type chainOutcome struct {
		res *mix.RoundResult
		err error
	}
	mixStart := time.Now()
	outcomes := make([]chainOutcome, len(chains))
	var wg sync.WaitGroup
	for c := range chains {
		if failedChains[c] || dead[c] {
			continue
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, err := chains[c].RunRound(rho, client.LaneCurrent, batches[c].Subs)
			outcomes[c] = chainOutcome{res: res, err: err}
		}(c)
	}
	wg.Wait()
	mixWall := time.Since(mixStart)

	// Stage 3: aggregate. Reports are folded serially (cheap); the
	// deliveries and removal verdicts are then fanned back out to the
	// owning shards.
	for c := range chains {
		if !failedChains[c] && !dead[c] && outcomes[c].err != nil {
			abortShards()
			return nil, fmt.Errorf("core: chain %d: %w", c, outcomes[c].err)
		}
	}

	// Trace phase synthesis from the chains' own stage timings. The
	// verify phase is the per-chain submission-proof stage, measured
	// inside the parallel section, so its top-level duration is the
	// max across chains (the wall-clock contribution); the mix phase
	// is the whole parallel section's wall clock, with each chain's
	// post-verification mixing as a child.
	if p.trace != nil {
		var maxVerify time.Duration
		for c := range chains {
			if failedChains[c] || dead[c] || outcomes[c].res == nil {
				continue
			}
			if v := outcomes[c].res.VerifyDur; v > maxVerify {
				maxVerify = v
			}
		}
		vp := p.trace.AddPhase("verify", mixStart, maxVerify)
		mp := p.trace.AddPhase("mix", mixStart, mixWall)
		for c := range chains {
			if failedChains[c] || dead[c] || outcomes[c].res == nil {
				continue
			}
			res := outcomes[c].res
			name := fmt.Sprintf("chain %d", c)
			vp.AddChild(name, mixStart, res.VerifyDur)
			mp.AddChild(name, mixStart.Add(res.VerifyDur), res.MixDur)
		}
	}
	// stranded collects everyone whose traffic rode a chain that did
	// not deliver this round: skipped at build (dead chain among their
	// ℓ), or batched onto a failed, dead or halted chain. They get
	// ErrRoundRetry from StrandedError rather than a silent drop.
	stranded := make(map[string]bool)
	for _, who := range skipped {
		stranded[who] = true
	}
	strandChain := func(c int) {
		for _, who := range batches[c].Submitters {
			if !strings.HasPrefix(who, "injected:") {
				stranded[who] = true
			}
		}
	}
	var convicted []string
	deliveries := make([][][]byte, len(chains))
	for c := range chains {
		if failedChains[c] || dead[c] {
			strandChain(c)
			continue
		}
		res := outcomes[c].res
		report.DroppedInner += res.DroppedInner
		report.BlameRounds += res.BlameRounds
		if res.Halted {
			report.HaltedChains = append(report.HaltedChains, c)
			strandChain(c)
		}
		for _, s := range res.BlamedServers {
			report.BlamedServers = append(report.BlamedServers, [2]int{c, s})
			if n.cfg.Recover && s >= 0 && s < len(topo.Chains[c]) {
				n.mu.Lock()
				n.pendingEvict[topo.Chains[c][s]] = true
				n.mu.Unlock()
			}
		}
		for _, idx := range res.BlamedUsers {
			who := batches[c].Submitters[idx]
			report.BlamedUsers = append(report.BlamedUsers, who)
			convicted = append(convicted, who)
		}
		if !res.Halted {
			deliveries[c] = res.Delivered
		}
	}

	// Convicted users are removed, not stranded: there is no honest
	// retry for them.
	for _, who := range convicted {
		delete(stranded, who)
	}
	if len(stranded) > 0 {
		report.Stranded = make([]string, 0, len(stranded))
		for who := range stranded {
			report.Stranded = append(report.Stranded, who)
		}
		sort.Strings(report.Stranded)
	}

	// Advance the round and announce the keys the NEXT round's covers
	// will need, before closing this round on the shards — the finish
	// message carries the (ρ+1, ρ+2) parameter snapshot so gateway
	// processes can serve clients without another coordinator round
	// trip.
	n.mu.Lock()
	n.round = rho + 1
	next := n.round + 1
	n.mu.Unlock()
	finishPhase := p.trace.StartPhase("finish")
	trailing := announceEach(chains, next)
	deadNext := make(map[int]bool, len(dead))
	for c := range dead {
		deadNext[c] = true
	}
	for c, e := range trailing {
		if e != nil {
			deadNext[c] = true
			n.attributeHopError(topo, e)
		}
	}
	finishSnap, snapErr := snapshotParams(chains, rho+1, deadNext)
	if snapErr != nil {
		// A chain with announced keys that cannot be snapshotted is as
		// dead as one that failed to announce; ship the finish without
		// parameters rather than losing the deliveries.
		finishSnap = &roundParams{rho: rho + 1}
	}
	finishPhase.End()

	// Stage 4: deliver, distributed. Route every mixed mailbox
	// message to the shard owning its recipient, the blame verdicts to
	// the shard owning the convicted user, the stranded records
	// likewise, and close the round everywhere in parallel.
	deliverPhase := p.trace.StartPhase("deliver")
	perShard := make([][][]byte, len(n.shards))
	for c := range deliveries {
		for _, msg := range deliveries[c] {
			rcpt, err := onion.Recipient(msg)
			if err != nil {
				continue // malformed; the monolith dropped these at the cluster
			}
			i := n.owner[OwnerShard(rcpt)]
			perShard[i] = append(perShard[i], msg)
		}
	}
	removedPer := make([][]string, len(n.shards))
	for _, who := range convicted {
		i := n.owner[shardIndex(who)]
		removedPer[i] = append(removedPer[i], who)
	}
	strandedPer := make([][]string, len(n.shards))
	for _, who := range report.Stranded {
		i := n.owner[shardIndex(who)]
		strandedPer[i] = append(strandedPer[i], who)
	}

	finishErrs := make([]error, len(n.shards))
	statsPer := make([]FinishStats, len(n.shards))
	var finishWG sync.WaitGroup
	for i, sh := range n.shards {
		if deadShards[i] {
			report.LostDeliveries += len(perShard[i])
			continue
		}
		finishWG.Add(1)
		go func(i int, sh GatewayShard) {
			defer finishWG.Done()
			child := deliverPhase.StartChild("shard " + sh.Range().String())
			defer child.End()
			statsPer[i], finishErrs[i] = sh.FinishRound(&FinishRound{
				Round:     rho,
				Delivered: perShard[i],
				Removed:   removedPer[i],
				Stranded:  strandedPer[i],
				Epoch:     epoch,
				NumChains: len(chains),
				Cur:       finishSnap.cur,
				Next:      finishSnap.next,
				Dead:      finishSnap.deadList(),
			})
		}(i, sh)
	}
	finishWG.Wait()
	for i := range n.shards {
		if deadShards[i] {
			continue
		}
		if finishErrs[i] != nil {
			deadShards[i] = true
			report.DeadShards = append(report.DeadShards, i)
			report.LostDeliveries += len(perShard[i])
			continue
		}
		report.Delivered += statsPer[i].Delivered
		report.MailboxDropped += statsPer[i].Dropped
	}
	sort.Ints(report.DeadShards)
	deliverPhase.End()
	recordRoundReport(report)
	p.trace.Finish()

	for _, e := range trailing {
		if e != nil {
			// The executed round is complete and its report valid; what
			// failed is announcing round next's keys — typically a
			// remote hop that died (its chain halted above). Return
			// both so the caller keeps this round's outcome alongside
			// the failure.
			return report, errors.Join(trailing...)
		}
	}
	return report, nil
}

// Package core assembles a complete XRD network and drives its
// rounds: it is the public API of this reproduction.
//
// A Network owns the mix servers organised into parallel anytrust
// chains (§5.2), the mailbox cluster (§5.1), the deterministic
// chain-selection plan (§5.3.1) and the sharded user registry. Each
// call to RunRound executes one communication round end to end
// (Figure 1): users build their ℓ messages plus the next round's
// covers, every chain mixes with aggregate-hybrid-shuffle
// verification (§6), results land in mailboxes, and users fetch and
// decrypt.
//
// Round execution is a parallel pipeline. User onion building — the
// dominant client-side cost the paper trades against PIR-style
// designs — fans out over a worker pool sized by Config.Workers
// (default GOMAXPROCS): workers claim registry shards, build every
// online user in a shard under that shard's lock, and emit
// submissions into worker-local per-chain accumulators that are
// merged per chain afterwards, so no global lock is held anywhere on
// the build path. Chains then mix concurrently (they are independent
// local mix-nets, §4.2), deliveries stream to the mailbox cluster
// concurrently per chain, and blame/removal bookkeeping touches only
// the convicted user's owning shard.
//
// Registry operations (NewUser, SetOnline, IsRemoved, NumUsers) and
// mailbox fetches are safe to call concurrently with RunRound; a user
// registered mid-round joins either the running round or the next
// one, depending on whether her shard was already built. RunRound
// itself is serialised: concurrent calls execute one at a time.
//
// Misbehaviour injected through CorruptServer or InjectSubmission
// surfaces in the RoundReport: halted chains, blamed servers, blamed
// (and automatically removed) users — mirroring §6.4's guarantees.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/aead"
	"repro/internal/chainsel"
	"repro/internal/churn"
	"repro/internal/client"
	"repro/internal/group"
	"repro/internal/mailbox"
	"repro/internal/mix"
	"repro/internal/onion"
	"repro/internal/topology"
)

// Config describes a network deployment.
type Config struct {
	// NumServers is N, the number of mix servers.
	NumServers int
	// NumChains is n; zero means n = N as in the paper (§5.2.1).
	NumChains int
	// F is the assumed fraction of malicious servers; ignored if
	// ChainLengthOverride is set.
	F float64
	// SecurityBits is λ for the anytrust bound; zero means 64.
	SecurityBits int
	// ChainLengthOverride fixes the chain length k directly, for
	// small test deployments and exact-paper comparisons (k=32).
	ChainLengthOverride int
	// Seed is the public randomness for chain formation.
	Seed []byte
	// MailboxServers is the mailbox cluster size; zero means 1.
	MailboxServers int
	// Scheme is the AEAD; nil means ChaCha20-Poly1305.
	Scheme aead.Scheme
	// DisableStaggering turns off position staggering (§5.2.1), for
	// the ablation benchmark.
	DisableStaggering bool
	// Workers sizes the round pipeline's build worker pool; zero
	// means runtime.GOMAXPROCS(0). One worker reproduces the serial
	// build order for deterministic comparisons.
	Workers int
	// RemoteHops, when non-nil, is consulted for every chain position
	// while the network is assembled, in chain order then position
	// order. Returning a non-nil mix.Hop hosts that position on a
	// remote process reached through the hop transport (typically an
	// rpc.HopClient initialised against the given base key, which is
	// g for position 0 and the previous position's blinding key
	// otherwise); returning nil keeps the position in-process.
	//
	// RemoteHops is keyed by chain coordinates, which do not survive a
	// chain re-formation; deployments that enable Recover should use
	// HopForServer instead.
	RemoteHops func(chain, position int, base group.Point) (mix.Hop, error)
	// HopForServer, when non-nil, supplies the transport for chain
	// positions keyed by server identity, and is consulted again at
	// every epoch re-formation: server ids are stable across epochs
	// while chain coordinates are not. Returning nil hosts the
	// position in-process (the provider may mix local and remote
	// positions). Takes precedence over RemoteHops.
	HopForServer func(epoch uint64, server, chain, position int, base group.Point) (mix.Hop, error)
	// Recover enables epoch recovery: after a chain halts with blame,
	// or fails to announce keys, the responsible servers are evicted
	// and chains re-form over the survivors before the next round
	// (halt → blame → evict → re-form → resume). Remotely hosted
	// positions additionally need HopForServer so re-formed chains can
	// reference them.
	Recover bool
}

// Network is a fully assembled XRD deployment.
type Network struct {
	cfg     Config
	scheme  aead.Scheme
	plan    *chainsel.Plan
	topo    *topology.Topology
	chains  []*mix.Chain
	boxes   *mailbox.Cluster
	workers int

	// reg is the sharded user registry; see registry.go for its
	// locking rules.
	reg *registry

	// runMu serialises RunRound executions.
	runMu sync.Mutex

	// evictor records servers expelled across epochs (Config.Recover).
	evictor *churn.Evictor

	// mu guards the control state below — never user state, which
	// lives behind per-shard locks in reg. plan, topo and chains (the
	// struct fields above) are ALSO guarded by mu once the network is
	// running: epoch re-formation swaps them, so every reader outside
	// the reform path itself must snapshot them via topoView.
	mu    sync.Mutex
	round uint64
	// epoch counts chain re-formations; 0 is the founding topology.
	epoch uint64
	// pendingEvict queues servers to expel before the next round runs:
	// those blamed by a halted chain or unreachable at announce.
	pendingEvict map[int]bool
	// stranded records, per recent round, the users whose traffic rode
	// a chain that halted, failed or could not announce — they get a
	// deterministic retry error instead of a silent drop.
	stranded map[uint64]map[string]bool
	// collected is the highest round whose external traffic has been
	// folded into batches. The round counter only advances after
	// mixing and delivery, so SubmitExternal must check this
	// watermark too: a submission for the still-open round that
	// arrives after collection would otherwise be accepted and then
	// silently never mixed.
	collected uint64
	// failedServers marks crashed mix servers; chains containing one
	// are skipped and their conversations fail for the round (§5.2.3).
	failedServers map[int]bool
	// injected are raw submissions added to chain batches this round
	// (fault injection for malicious users).
	injected map[int][]onion.Submission
	// externals are network-transport users (see external.go).
	externals map[string]*externalUser
	// banned holds mailbox identifiers convicted by the blame
	// protocol. Registry users are excluded by their removed flag, but
	// transport-layer users have no registry entry, so without this
	// set a convicted external user could resubmit every round (§6.4
	// requires removal). SubmitExternal consults it.
	banned map[string]bool
}

// NewNetwork builds the topology, keys every chain, and announces
// round 1 (and round 2 cover) keys.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Scheme == nil {
		cfg.Scheme = aead.ChaCha20Poly1305()
	}
	if cfg.MailboxServers == 0 {
		cfg.MailboxServers = 1
	}
	topo, err := topology.Build(topology.Config{
		NumServers:          cfg.NumServers,
		NumChains:           cfg.NumChains,
		F:                   cfg.F,
		SecurityBits:        cfg.SecurityBits,
		ChainLengthOverride: cfg.ChainLengthOverride,
		Seed:                cfg.Seed,
		DisableStaggering:   cfg.DisableStaggering,
	})
	if err != nil {
		return nil, fmt.Errorf("core: building topology: %w", err)
	}
	plan, err := chainsel.NewPlan(len(topo.Chains))
	if err != nil {
		return nil, fmt.Errorf("core: building chain-selection plan: %w", err)
	}
	boxes, err := mailbox.NewCluster(cfg.MailboxServers)
	if err != nil {
		return nil, fmt.Errorf("core: building mailbox cluster: %w", err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Workers claim whole shards, so more workers than shards would
	// just idle; cap here so Workers() reports the effective count.
	if workers > numShards {
		workers = numShards
	}
	n := &Network{
		cfg:           cfg,
		scheme:        cfg.Scheme,
		plan:          plan,
		topo:          topo,
		boxes:         boxes,
		workers:       workers,
		round:         1,
		reg:           newRegistry(),
		evictor:       churn.NewEvictor(),
		failedServers: make(map[int]bool),
		injected:      make(map[int][]onion.Submission),
		pendingEvict:  make(map[int]bool),
		stranded:      make(map[uint64]map[string]bool),
		banned:        make(map[string]bool),
	}
	for c := range topo.Chains {
		chain, err := n.assembleChainAt(0, topo, c)
		if err != nil {
			return nil, fmt.Errorf("core: keying chain %d: %w", c, err)
		}
		n.chains = append(n.chains, chain)
	}
	if err := n.announce(n.round); err != nil {
		return nil, err
	}
	if err := n.announce(n.round + 1); err != nil {
		return nil, err
	}
	return n, nil
}

// assembleChainAt keys one chain of a topology for an epoch, placing
// each position in-process or on a remote hop according to
// Config.HopForServer (id-keyed, epoch-aware) or the legacy
// Config.RemoteHops (coordinate-keyed, founding epoch only). Remote
// key setup is inherently sequential within a chain — position i's
// keys chain off position i−1's blinding key (§6.1) — which is why
// the provider receives the base point. A provider failure is
// returned as a mix.HopError so the reform loop can evict the
// offending server.
func (n *Network) assembleChainAt(epoch uint64, topo *topology.Topology, c int) (*mix.Chain, error) {
	if n.cfg.HopForServer == nil && (n.cfg.RemoteHops == nil || epoch > 0) {
		return mix.NewChain(c, topo.ChainLength, n.scheme)
	}
	hops := make([]mix.Hop, topo.ChainLength)
	base := group.Generator()
	for i := range hops {
		var h mix.Hop
		var err error
		if n.cfg.HopForServer != nil {
			h, err = n.cfg.HopForServer(epoch, topo.Chains[c][i], c, i, base)
		} else {
			h, err = n.cfg.RemoteHops(c, i, base)
		}
		if err != nil {
			return nil, &mix.HopError{Chain: c, Position: i, Err: fmt.Errorf("core: remote hop setup: %w", err)}
		}
		if h == nil {
			h = mix.LocalHop(mix.NewChainServer(c, i, base, n.scheme))
		}
		hops[i] = h
		base = h.Keys().Bpk
	}
	return mix.NewChainFromHops(c, hops, n.scheme)
}

// announceEach publishes round's inner keys on every chain, in
// parallel — with remote hops each chain's announcement is k
// sequential network exchanges, and the chains are independent, so
// announcing serially would put n·k round-trips on every round's
// critical path. It is best-effort across chains: one chain failing
// (a dead remote hop, say) must not leave the others without
// announced keys, so every chain is attempted and the per-chain
// errors returned for the caller to attribute.
func announceEach(chains []*mix.Chain, round uint64) []error {
	errs := make([]error, len(chains))
	var wg sync.WaitGroup
	for i, c := range chains {
		wg.Add(1)
		go func(i int, c *mix.Chain) {
			defer wg.Done()
			if err := c.BeginRound(round); err != nil {
				errs[i] = fmt.Errorf("core: announcing round %d: %w", round, err)
			}
		}(i, c)
	}
	wg.Wait()
	return errs
}

// announce is announceEach with the errors joined.
func (n *Network) announce(round uint64) error {
	return errors.Join(announceEach(n.chains, round)...)
}

// topoView snapshots the mutable topology state under mu. Epoch
// re-formation swaps all three references atomically, so readers
// holding a snapshot see one consistent epoch even while the next is
// being formed.
func (n *Network) topoView() (*chainsel.Plan, *topology.Topology, []*mix.Chain) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.plan, n.topo, n.chains
}

// Plan exposes the chain-selection plan (for tests and experiments).
func (n *Network) Plan() *chainsel.Plan {
	p, _, _ := n.topoView()
	return p
}

// Topology exposes the server-to-chain assignment.
func (n *Network) Topology() *topology.Topology {
	_, t, _ := n.topoView()
	return t
}

// NumChains returns n, the number of mix chains.
func (n *Network) NumChains() int {
	_, _, chains := n.topoView()
	return len(chains)
}

// Epoch returns the topology epoch (0 until the first re-formation).
func (n *Network) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Workers returns the size of the round pipeline's build worker pool.
func (n *Network) Workers() int { return n.workers }

// Round returns the upcoming round number.
func (n *Network) Round() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.round
}

// ChainParams implements client.ParamsSource.
func (n *Network) ChainParams(chain int, round uint64) (mix.Params, error) {
	_, _, chains := n.topoView()
	if chain < 0 || chain >= len(chains) {
		return mix.Params{}, fmt.Errorf("core: no chain %d", chain)
	}
	return chains[chain].ParamsFor(round)
}

// NewUser creates and registers a user; she participates in every
// round until she goes offline or is removed for misbehaviour. Safe
// to call concurrently with a running round: the user joins the round
// if her registry shard has not been built yet, the next one
// otherwise.
func (n *Network) NewUser() *client.User {
	plan, _, _ := n.topoView()
	u := client.NewUser(n.scheme, plan)
	n.reg.insert(string(u.Mailbox()), &registeredUser{u: u, online: true})
	return u
}

// NumUsers returns the number of registered, non-removed users.
func (n *Network) NumUsers() int {
	return n.reg.countActive()
}

// SetOnline marks a user online or offline for subsequent rounds. The
// first offline round is covered by her pre-submitted cover messages
// (§5.3.3). If those covers ran while she was away, her conversation
// was ended by the offline signal, so reconnecting reverts her to
// loopback traffic until a conversation is re-initiated.
func (n *Network) SetOnline(u *client.User, online bool) {
	n.reg.update(string(u.Mailbox()), func(ru *registeredUser) {
		if online && !ru.online && ru.coversUsed {
			ru.u.EndAllConversations()
			ru.coversUsed = false
		}
		ru.online = online
	})
}

// IsRemoved reports whether the user was removed for misbehaviour.
func (n *Network) IsRemoved(u *client.User) bool {
	removed := false
	ok := n.reg.view(string(u.Mailbox()), func(ru *registeredUser) {
		removed = ru.removed
	})
	return ok && removed
}

// FailServer crashes a mix server: every chain containing it halts
// for subsequent rounds until RestoreServer (§5.2.3).
func (n *Network) FailServer(server int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failedServers[server] = true
}

// RestoreServer brings a crashed server back.
func (n *Network) RestoreServer(server int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.failedServers, server)
}

// CorruptServer attaches a corruption to the server at the given
// position of a chain (fault injection; see mix.Corruption).
func (n *Network) CorruptServer(chain, position int, c *mix.Corruption) error {
	_, _, chains := n.topoView()
	if chain < 0 || chain >= len(chains) {
		return fmt.Errorf("core: no chain %d", chain)
	}
	if position < 0 || position >= chains[chain].Len() {
		return fmt.Errorf("core: chain %d has no position %d", chain, position)
	}
	s := chains[chain].Servers[position]
	if s == nil {
		return fmt.Errorf("core: chain %d position %d is hosted remotely; corruption hooks need an in-process server", chain, position)
	}
	s.Corruption = c
	return nil
}

// InjectSubmission adds a raw submission to a chain's next batch,
// simulating a malicious user outside the registry.
func (n *Network) InjectSubmission(chain int, sub onion.Submission) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.injected[chain] = append(n.injected[chain], sub)
}

// Fetch downloads a user's mailbox for a round.
func (n *Network) Fetch(u *client.User, round uint64) [][]byte {
	return n.boxes.Fetch(round, u.Mailbox())
}

// FetchMailbox downloads a mailbox by identifier, the transport-layer
// variant of Fetch.
func (n *Network) FetchMailbox(round uint64, mailbox []byte) [][]byte {
	return n.boxes.Fetch(round, mailbox)
}

// PruneBefore discards mailbox state older than the given round.
func (n *Network) PruneBefore(round uint64) {
	n.boxes.PruneBefore(round)
}

// RoundReport summarises one executed round.
type RoundReport struct {
	// Round is the executed round number.
	Round uint64
	// Delivered is the total number of mailbox messages delivered.
	Delivered int
	// HaltedChains lists chains that aborted after detecting server
	// misbehaviour.
	HaltedChains []int
	// FailedChains lists chains skipped because a member server had
	// crashed.
	FailedChains []int
	// BlamedServers lists (chain, position) pairs convicted by proof
	// failure or the blame protocol.
	BlamedServers [][2]int
	// BlamedUsers lists mailbox identifiers of users convicted and
	// removed; injected submissions appear as "injected:<chain>".
	BlamedUsers []string
	// DroppedInner counts messages dropped at inner decryption.
	DroppedInner int
	// OfflineCovered counts users whose covers were used this round.
	OfflineCovered int
	// BlameRounds counts blame protocol executions across chains.
	BlameRounds int
	// DeadChains lists chains that could not announce this round's
	// keys (an unreachable hop); their users are stranded for the
	// round and, with Recover on, the chain re-forms before the next.
	DeadChains []int
	// Stranded lists users (mailbox identifiers) whose traffic rode a
	// halted, failed or dead chain this round: nothing of theirs was
	// delivered and StrandedError reports ErrRoundRetry for them.
	Stranded []string
	// Epoch is the topology epoch the round executed in.
	Epoch uint64
	// Reformed reports that chains were re-formed (a new epoch began)
	// before this round ran; Evicted lists the servers expelled.
	Reformed bool
	Evicted  []int
}

// chainBatch pairs a chain's submissions with their submitters for
// blame attribution.
type chainBatch struct {
	subs       []onion.Submission
	submitters []string
}

func (b *chainBatch) add(sub onion.Submission, who string) {
	b.subs = append(b.subs, sub)
	b.submitters = append(b.submitters, who)
}

// roundParams is an immutable per-round snapshot of every chain's
// public parameters for rounds ρ and ρ+1. Build workers read it
// without any lock, and it saves each of the M·ℓ·2 per-message
// parameter lookups from reassembling key slices.
type roundParams struct {
	rho  uint64
	cur  []mix.Params
	next []mix.Params
}

// ChainParams implements client.ParamsSource.
func (p *roundParams) ChainParams(chain int, round uint64) (mix.Params, error) {
	if chain < 0 || chain >= len(p.cur) {
		return mix.Params{}, fmt.Errorf("core: no chain %d", chain)
	}
	switch round {
	case p.rho:
		return p.cur[chain], nil
	case p.rho + 1:
		return p.next[chain], nil
	}
	return mix.Params{}, fmt.Errorf("core: no parameter snapshot for round %d", round)
}

// snapshotParams captures every live chain's parameters for rounds
// rho and rho+1 (covers are built for the next round, §5.3.3). Dead
// chains — those that failed to announce — keep zero parameters; the
// build stage strands their users instead of reading them.
func snapshotParams(chains []*mix.Chain, rho uint64, dead map[int]bool) (*roundParams, error) {
	p := &roundParams{
		rho:  rho,
		cur:  make([]mix.Params, len(chains)),
		next: make([]mix.Params, len(chains)),
	}
	for c, chain := range chains {
		if dead[c] {
			continue
		}
		var err error
		if p.cur[c], err = chain.ParamsFor(rho); err != nil {
			return nil, fmt.Errorf("core: snapshotting chain %d: %w", c, err)
		}
		if p.next[c], err = chain.ParamsFor(rho + 1); err != nil {
			return nil, fmt.Errorf("core: snapshotting chain %d: %w", c, err)
		}
	}
	return p, nil
}

// buildAcc is one build worker's private accumulator: per-chain
// batches plus bookkeeping counters. Workers never share accumulators,
// so the build fan-out appends without synchronisation.
type buildAcc struct {
	batches []chainBatch
	covered int
	// skipped are users who could not participate this round because
	// one of their ℓ chains is dead (failed to announce keys).
	skipped []string
	err     error
}

// buildBatches fans user onion building out over the worker pool.
// Workers claim registry shards from an atomic cursor and build every
// non-removed user in a claimed shard under that shard's lock: online
// users build fresh messages and bank next-round covers, offline
// users spend their banked covers exactly once (§5.3.3). The
// worker-local per-chain slices are then merged into one batch per
// chain. Returns the merged batches, the offline-covered count, and
// the users skipped because a dead chain made their round impossible.
func (n *Network) buildBatches(rho uint64, src client.ParamsSource, numChains int, dead map[int]bool) ([]chainBatch, int, []string, error) {
	workers := n.workers
	accs := make([]buildAcc, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(acc *buildAcc) {
			defer wg.Done()
			acc.batches = make([]chainBatch, numChains)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= numShards {
					return
				}
				if err := n.buildShard(&n.reg.shards[i], rho, src, acc, dead); err != nil {
					acc.err = err
					return
				}
			}
		}(&accs[w])
	}
	wg.Wait()

	covered := 0
	var skipped []string
	for w := range accs {
		if accs[w].err != nil {
			return nil, 0, nil, accs[w].err
		}
		covered += accs[w].covered
		skipped = append(skipped, accs[w].skipped...)
	}
	merged := make([]chainBatch, numChains)
	for c := range merged {
		total := 0
		for w := range accs {
			total += len(accs[w].batches[c].subs)
		}
		merged[c].subs = make([]onion.Submission, 0, total)
		merged[c].submitters = make([]string, 0, total)
		for w := range accs {
			merged[c].subs = append(merged[c].subs, accs[w].batches[c].subs...)
			merged[c].submitters = append(merged[c].submitters, accs[w].batches[c].submitters...)
		}
	}
	return merged, covered, skipped, nil
}

// buildShard builds one registry shard's users into the worker's
// accumulator. The shard lock is held for the duration, so presence
// changes and conversation mutations for these users serialise
// against the build — and against nothing else. Users with a dead
// chain among their ℓ chains cannot build a valid round (the wire
// pattern requires all ℓ messages) and are skipped as stranded; their
// banked covers stay banked.
func (n *Network) buildShard(sh *userShard, rho uint64, src client.ParamsSource, acc *buildAcc, dead map[int]bool) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for key, ru := range sh.users {
		if ru.removed {
			continue
		}
		if len(dead) > 0 {
			onDead := false
			for _, c := range ru.u.Chains() {
				if dead[c] {
					onDead = true
					break
				}
			}
			if onDead {
				if ru.online {
					acc.skipped = append(acc.skipped, key)
				}
				continue
			}
		}
		if ru.online {
			out, err := ru.u.BuildRound(rho, src)
			if err != nil {
				return fmt.Errorf("core: user build failed: %w", err)
			}
			for _, cm := range out.Current {
				acc.batches[cm.Chain].add(cm.Sub, key)
			}
			ru.cover = out.Cover
			ru.coverRound = rho + 1
			continue
		}
		if ru.cover != nil && ru.coverRound == rho {
			for _, cm := range ru.cover {
				acc.batches[cm.Chain].add(cm.Sub, key)
			}
			ru.cover = nil
			ru.coversUsed = true
			acc.covered++
		}
	}
	return nil
}

// RunRound executes the upcoming round and advances the round
// counter: parallel onion building over the registry shards, parallel
// mixing across chains, parallel delivery into the mailbox cluster.
// Blamed users are removed from the network before the next round.
// Concurrent RunRound calls are serialised.
//
// With Config.Recover set, RunRound additionally performs epoch
// recovery: servers blamed by a previous round (a halted chain, a
// failed announce) are evicted and the chains re-formed over the
// survivors before this round executes, and chains that cannot
// announce this round's keys run dead — their users are stranded for
// the round (see StrandedError) rather than wedging the deployment.
func (n *Network) RunRound() (*RoundReport, error) {
	n.runMu.Lock()
	defer n.runMu.Unlock()

	// Epoch recovery: expel the servers blamed since the last round
	// and re-form chains over the survivors before this round runs
	// (halt → blame → evict → re-form → resume).
	var reformed bool
	var evicted []int
	if n.cfg.Recover {
		n.mu.Lock()
		pending := len(n.pendingEvict) > 0
		n.mu.Unlock()
		if pending {
			var err error
			evicted, err = n.reform()
			if err != nil {
				return nil, err
			}
			reformed = len(evicted) > 0
		}
	}

	n.mu.Lock()
	rho := n.round
	epoch := n.epoch
	injected := n.injected
	n.injected = make(map[int][]onion.Submission)
	failed := make(map[int]bool, len(n.failedServers))
	for s := range n.failedServers {
		failed[s] = true
	}
	topo, chains := n.topo, n.chains
	n.mu.Unlock()

	report := &RoundReport{Round: rho, Epoch: epoch, Reformed: reformed, Evicted: evicted}

	// Re-announce the rounds this execution needs. BeginRound is
	// idempotent, so on the happy path this is a map hit per chain;
	// after a failed trailing announce (a remote hop that blipped
	// last round and recovered) it is the retry that un-wedges the
	// deployment. A chain that still cannot announce is dead for the
	// round: it is excluded from the parameter snapshot, the build
	// strands its users, and — when the failure is attributable to a
	// position — the server behind it is queued for eviction.
	dead := make(map[int]bool)
	noteDead := func(errs []error) {
		for c, err := range errs {
			if err == nil {
				continue
			}
			if !dead[c] {
				dead[c] = true
				report.DeadChains = append(report.DeadChains, c)
			}
			n.attributeHopError(topo, err)
		}
	}
	noteDead(announceEach(chains, rho))
	noteDead(announceEach(chains, rho+1))

	// Stage 1: build. Fan the per-user onion construction out over
	// the worker pool against an immutable parameter snapshot.
	snap, err := snapshotParams(chains, rho, dead)
	if err != nil {
		return nil, err
	}
	batches, covered, skipped, err := n.buildBatches(rho, snap, len(chains), dead)
	if err != nil {
		return nil, err
	}
	report.OfflineCovered = covered

	n.mu.Lock()
	prevCollected := n.collected
	report.OfflineCovered += n.collectExternalsLocked(rho, batches)
	n.mu.Unlock()
	// reopenExternals rolls the submission watermark back if the
	// round fails after collection: the round will be retried, so
	// external users must be able to resubmit for it (their collected
	// traffic was consumed by the failed attempt).
	reopenExternals := func() {
		n.mu.Lock()
		if n.collected == rho {
			n.collected = prevCollected
		}
		n.mu.Unlock()
	}
	for chain, subs := range injected {
		for _, sub := range subs {
			batches[chain].add(sub, fmt.Sprintf("injected:%d", chain))
		}
	}

	failedChains := make(map[int]bool)
	for _, c := range topo.FailedChains(failed) {
		failedChains[c] = true
		report.FailedChains = append(report.FailedChains, c)
	}

	// Stage 2: mix. Run every healthy chain in parallel — the heart
	// of the design: chains are independent local mix-nets (§4.2).
	type chainOutcome struct {
		res *mix.RoundResult
		err error
	}
	outcomes := make([]chainOutcome, len(chains))
	var wg sync.WaitGroup
	for c := range chains {
		if failedChains[c] || dead[c] {
			continue
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, err := chains[c].RunRound(rho, client.LaneCurrent, batches[c].subs)
			outcomes[c] = chainOutcome{res: res, err: err}
		}(c)
	}
	wg.Wait()

	// Stage 3: aggregate and deliver. Reports are folded serially
	// (cheap), removals touch only the convicted user's shard, and
	// deliveries stream to the mailbox cluster concurrently per
	// chain — the cluster shards its own locks by server.
	for c := range chains {
		if !failedChains[c] && !dead[c] && outcomes[c].err != nil {
			reopenExternals()
			return nil, fmt.Errorf("core: chain %d: %w", c, outcomes[c].err)
		}
	}
	// stranded collects everyone whose traffic rode a chain that did
	// not deliver this round: skipped at build (dead chain among their
	// ℓ), or batched onto a failed, dead or halted chain. They get
	// ErrRoundRetry from StrandedError rather than a silent drop.
	stranded := make(map[string]bool)
	for _, who := range skipped {
		stranded[who] = true
	}
	strandChain := func(c int) {
		for _, who := range batches[c].submitters {
			if !strings.HasPrefix(who, "injected:") {
				stranded[who] = true
			}
		}
	}
	var deliverWG sync.WaitGroup
	var delivered atomic.Int64
	var convicted []string
	for c := range chains {
		if failedChains[c] || dead[c] {
			strandChain(c)
			continue
		}
		res := outcomes[c].res
		report.DroppedInner += res.DroppedInner
		report.BlameRounds += res.BlameRounds
		if res.Halted {
			report.HaltedChains = append(report.HaltedChains, c)
			strandChain(c)
		}
		for _, s := range res.BlamedServers {
			report.BlamedServers = append(report.BlamedServers, [2]int{c, s})
			if n.cfg.Recover && s >= 0 && s < len(topo.Chains[c]) {
				n.mu.Lock()
				n.pendingEvict[topo.Chains[c][s]] = true
				n.mu.Unlock()
			}
		}
		for _, idx := range res.BlamedUsers {
			who := batches[c].submitters[idx]
			report.BlamedUsers = append(report.BlamedUsers, who)
			n.reg.markRemoved(who)
			convicted = append(convicted, who)
		}
		if !res.Halted {
			deliverWG.Add(1)
			go func(msgs [][]byte) {
				defer deliverWG.Done()
				d, _ := n.boxes.Deliver(rho, msgs)
				delivered.Add(int64(d))
			}(res.Delivered)
		}
	}
	deliverWG.Wait()
	report.Delivered = int(delivered.Load())

	// Convicted users are removed, not stranded: there is no honest
	// retry for them.
	for _, who := range convicted {
		delete(stranded, who)
	}
	if len(stranded) > 0 {
		report.Stranded = make([]string, 0, len(stranded))
		for who := range stranded {
			report.Stranded = append(report.Stranded, who)
		}
		sort.Strings(report.Stranded)
	}

	n.mu.Lock()
	// Ban convicted identifiers at the transport layer too: external
	// users have no registry entry for markRemoved to flip, so the
	// ban set is what actually keeps them out (§6.4). Their banked
	// state goes with them — a removed user's covers must never run.
	for _, who := range convicted {
		n.banned[who] = true
		delete(n.externals, who)
	}
	if len(stranded) > 0 {
		n.stranded[rho] = stranded
	}
	for r := range n.stranded {
		if r+strandedRetention <= rho {
			delete(n.stranded, r)
		}
	}
	n.round = rho + 1
	next := n.round + 1
	n.mu.Unlock()
	trailing := announceEach(chains, next)
	for _, e := range trailing {
		if e != nil {
			n.attributeHopError(topo, e)
		}
	}
	if err := errors.Join(trailing...); err != nil {
		// The executed round is complete and its report valid; what
		// failed is announcing round next's keys — typically a remote
		// hop that died (its chain halted above). Return both so the
		// caller keeps this round's outcome alongside the failure.
		return report, err
	}
	return report, nil
}

// Package core assembles a complete XRD network and drives its
// rounds: it is the public API of this reproduction.
//
// A Network owns the mix servers organised into parallel anytrust
// chains (§5.2), the mailbox cluster (§5.1), the deterministic
// chain-selection plan (§5.3.1) and the user registry. Each call to
// RunRound executes one communication round end to end (Figure 1):
// users build their ℓ messages plus the next round's covers, every
// chain mixes with aggregate-hybrid-shuffle verification (§6),
// results land in mailboxes, and users fetch and decrypt.
//
// Misbehaviour injected through CorruptServer or InjectSubmission
// surfaces in the RoundReport: halted chains, blamed servers, blamed
// (and automatically removed) users — mirroring §6.4's guarantees.
package core

import (
	"fmt"
	"sync"

	"repro/internal/aead"
	"repro/internal/chainsel"
	"repro/internal/client"
	"repro/internal/mailbox"
	"repro/internal/mix"
	"repro/internal/onion"
	"repro/internal/topology"
)

// Config describes a network deployment.
type Config struct {
	// NumServers is N, the number of mix servers.
	NumServers int
	// NumChains is n; zero means n = N as in the paper (§5.2.1).
	NumChains int
	// F is the assumed fraction of malicious servers; ignored if
	// ChainLengthOverride is set.
	F float64
	// SecurityBits is λ for the anytrust bound; zero means 64.
	SecurityBits int
	// ChainLengthOverride fixes the chain length k directly, for
	// small test deployments and exact-paper comparisons (k=32).
	ChainLengthOverride int
	// Seed is the public randomness for chain formation.
	Seed []byte
	// MailboxServers is the mailbox cluster size; zero means 1.
	MailboxServers int
	// Scheme is the AEAD; nil means ChaCha20-Poly1305.
	Scheme aead.Scheme
	// DisableStaggering turns off position staggering (§5.2.1), for
	// the ablation benchmark.
	DisableStaggering bool
}

// Network is a fully assembled XRD deployment.
type Network struct {
	cfg    Config
	scheme aead.Scheme
	plan   *chainsel.Plan
	topo   *topology.Topology
	chains []*mix.Chain
	boxes  *mailbox.Cluster

	mu    sync.Mutex
	round uint64
	users map[string]*registeredUser
	// failedServers marks crashed mix servers; chains containing one
	// are skipped and their conversations fail for the round (§5.2.3).
	failedServers map[int]bool
	// injected are raw submissions added to chain batches this round
	// (fault injection for malicious users).
	injected map[int][]onion.Submission
	// externals are network-transport users (see external.go).
	externals map[string]*externalUser
}

type registeredUser struct {
	u       *client.User
	online  bool
	removed bool
	// cover holds the covers submitted last round, usable exactly in
	// round coverRound if the user is offline (§5.3.3).
	cover      []client.ChainMessage
	coverRound uint64
	// coversUsed records that the covers ran while the user was away:
	// the KindOffline signal went out and the partner reverted to
	// loopbacks, so on reconnection the user's conversation is over
	// and must be re-initiated out-of-band (§5.3.3: "this could be
	// used to end conversations as well").
	coversUsed bool
}

// NewNetwork builds the topology, keys every chain, and announces
// round 1 (and round 2 cover) keys.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Scheme == nil {
		cfg.Scheme = aead.ChaCha20Poly1305()
	}
	if cfg.MailboxServers == 0 {
		cfg.MailboxServers = 1
	}
	topo, err := topology.Build(topology.Config{
		NumServers:          cfg.NumServers,
		NumChains:           cfg.NumChains,
		F:                   cfg.F,
		SecurityBits:        cfg.SecurityBits,
		ChainLengthOverride: cfg.ChainLengthOverride,
		Seed:                cfg.Seed,
		DisableStaggering:   cfg.DisableStaggering,
	})
	if err != nil {
		return nil, fmt.Errorf("core: building topology: %w", err)
	}
	plan, err := chainsel.NewPlan(len(topo.Chains))
	if err != nil {
		return nil, fmt.Errorf("core: building chain-selection plan: %w", err)
	}
	boxes, err := mailbox.NewCluster(cfg.MailboxServers)
	if err != nil {
		return nil, fmt.Errorf("core: building mailbox cluster: %w", err)
	}
	n := &Network{
		cfg:           cfg,
		scheme:        cfg.Scheme,
		plan:          plan,
		topo:          topo,
		boxes:         boxes,
		round:         1,
		users:         make(map[string]*registeredUser),
		failedServers: make(map[int]bool),
		injected:      make(map[int][]onion.Submission),
	}
	for c := range topo.Chains {
		chain, err := mix.NewChain(c, topo.ChainLength, cfg.Scheme)
		if err != nil {
			return nil, fmt.Errorf("core: keying chain %d: %w", c, err)
		}
		n.chains = append(n.chains, chain)
	}
	if err := n.announce(n.round); err != nil {
		return nil, err
	}
	if err := n.announce(n.round + 1); err != nil {
		return nil, err
	}
	return n, nil
}

func (n *Network) announce(round uint64) error {
	for _, c := range n.chains {
		if err := c.BeginRound(round); err != nil {
			return fmt.Errorf("core: announcing round %d: %w", round, err)
		}
	}
	return nil
}

// Plan exposes the chain-selection plan (for tests and experiments).
func (n *Network) Plan() *chainsel.Plan { return n.plan }

// Topology exposes the server-to-chain assignment.
func (n *Network) Topology() *topology.Topology { return n.topo }

// NumChains returns n, the number of mix chains.
func (n *Network) NumChains() int { return len(n.chains) }

// Round returns the upcoming round number.
func (n *Network) Round() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.round
}

// ChainParams implements client.ParamsSource.
func (n *Network) ChainParams(chain int, round uint64) (mix.Params, error) {
	if chain < 0 || chain >= len(n.chains) {
		return mix.Params{}, fmt.Errorf("core: no chain %d", chain)
	}
	return n.chains[chain].ParamsFor(round)
}

// NewUser creates and registers a user; she participates in every
// round until she goes offline or is removed for misbehaviour.
func (n *Network) NewUser() *client.User {
	u := client.NewUser(n.scheme, n.plan)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.users[string(u.Mailbox())] = &registeredUser{u: u, online: true}
	return u
}

// NumUsers returns the number of registered, non-removed users.
func (n *Network) NumUsers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, ru := range n.users {
		if !ru.removed {
			c++
		}
	}
	return c
}

// SetOnline marks a user online or offline for subsequent rounds. The
// first offline round is covered by her pre-submitted cover messages
// (§5.3.3). If those covers ran while she was away, her conversation
// was ended by the offline signal, so reconnecting reverts her to
// loopback traffic until a conversation is re-initiated.
func (n *Network) SetOnline(u *client.User, online bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ru, ok := n.users[string(u.Mailbox())]
	if !ok {
		return
	}
	if online && !ru.online && ru.coversUsed {
		ru.u.EndAllConversations()
		ru.coversUsed = false
	}
	ru.online = online
}

// IsRemoved reports whether the user was removed for misbehaviour.
func (n *Network) IsRemoved(u *client.User) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	ru, ok := n.users[string(u.Mailbox())]
	return ok && ru.removed
}

// FailServer crashes a mix server: every chain containing it halts
// for subsequent rounds until RestoreServer (§5.2.3).
func (n *Network) FailServer(server int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.failedServers[server] = true
}

// RestoreServer brings a crashed server back.
func (n *Network) RestoreServer(server int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.failedServers, server)
}

// CorruptServer attaches a corruption to the server at the given
// position of a chain (fault injection; see mix.Corruption).
func (n *Network) CorruptServer(chain, position int, c *mix.Corruption) error {
	if chain < 0 || chain >= len(n.chains) {
		return fmt.Errorf("core: no chain %d", chain)
	}
	if position < 0 || position >= n.chains[chain].Len() {
		return fmt.Errorf("core: chain %d has no position %d", chain, position)
	}
	n.chains[chain].Servers[position].Corruption = c
	return nil
}

// InjectSubmission adds a raw submission to a chain's next batch,
// simulating a malicious user outside the registry.
func (n *Network) InjectSubmission(chain int, sub onion.Submission) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.injected[chain] = append(n.injected[chain], sub)
}

// Fetch downloads a user's mailbox for a round.
func (n *Network) Fetch(u *client.User, round uint64) [][]byte {
	return n.boxes.Fetch(round, u.Mailbox())
}

// FetchMailbox downloads a mailbox by identifier, the transport-layer
// variant of Fetch.
func (n *Network) FetchMailbox(round uint64, mailbox []byte) [][]byte {
	return n.boxes.Fetch(round, mailbox)
}

// PruneBefore discards mailbox state older than the given round.
func (n *Network) PruneBefore(round uint64) {
	n.boxes.PruneBefore(round)
}

// RoundReport summarises one executed round.
type RoundReport struct {
	// Round is the executed round number.
	Round uint64
	// Delivered is the total number of mailbox messages delivered.
	Delivered int
	// HaltedChains lists chains that aborted after detecting server
	// misbehaviour.
	HaltedChains []int
	// FailedChains lists chains skipped because a member server had
	// crashed.
	FailedChains []int
	// BlamedServers lists (chain, position) pairs convicted by proof
	// failure or the blame protocol.
	BlamedServers [][2]int
	// BlamedUsers lists mailbox identifiers of users convicted and
	// removed; injected submissions appear as "injected:<chain>".
	BlamedUsers []string
	// DroppedInner counts messages dropped at inner decryption.
	DroppedInner int
	// OfflineCovered counts users whose covers were used this round.
	OfflineCovered int
	// BlameRounds counts blame protocol executions across chains.
	BlameRounds int
}

// chainBatch pairs a chain's submissions with their submitters for
// blame attribution.
type chainBatch struct {
	subs       []onion.Submission
	submitters []string
}

// RunRound executes the upcoming round across every chain in
// parallel and advances the round counter. Blamed users are removed
// from the network before the next round.
func (n *Network) RunRound() (*RoundReport, error) {
	n.mu.Lock()
	rho := n.round
	report := &RoundReport{Round: rho}

	// Build per-chain batches from online users; offline users are
	// covered by last round's covers exactly once (§5.3.3).
	batches := make([]chainBatch, len(n.chains))
	for key, ru := range n.users {
		if ru.removed {
			continue
		}
		if ru.online {
			out, err := ru.u.BuildRound(rho, n)
			if err != nil {
				n.mu.Unlock()
				return nil, fmt.Errorf("core: user build failed: %w", err)
			}
			for _, cm := range out.Current {
				batches[cm.Chain].subs = append(batches[cm.Chain].subs, cm.Sub)
				batches[cm.Chain].submitters = append(batches[cm.Chain].submitters, key)
			}
			ru.cover = out.Cover
			ru.coverRound = rho + 1
			continue
		}
		if ru.cover != nil && ru.coverRound == rho {
			for _, cm := range ru.cover {
				batches[cm.Chain].subs = append(batches[cm.Chain].subs, cm.Sub)
				batches[cm.Chain].submitters = append(batches[cm.Chain].submitters, key)
			}
			ru.cover = nil
			ru.coversUsed = true
			report.OfflineCovered++
		}
	}
	report.OfflineCovered += n.collectExternalsLocked(rho, batches)
	for chain, subs := range n.injected {
		for _, sub := range subs {
			batches[chain].subs = append(batches[chain].subs, sub)
			batches[chain].submitters = append(batches[chain].submitters, fmt.Sprintf("injected:%d", chain))
		}
	}
	n.injected = make(map[int][]onion.Submission)

	failed := make(map[int]bool, len(n.failedServers))
	for s := range n.failedServers {
		failed[s] = true
	}
	n.mu.Unlock()

	failedChains := make(map[int]bool)
	for _, c := range n.topo.FailedChains(failed) {
		failedChains[c] = true
		report.FailedChains = append(report.FailedChains, c)
	}

	// Run every healthy chain in parallel — the heart of the design:
	// chains are independent local mix-nets (§4.2).
	type chainOutcome struct {
		res *mix.RoundResult
		err error
	}
	outcomes := make([]chainOutcome, len(n.chains))
	var wg sync.WaitGroup
	for c := range n.chains {
		if failedChains[c] {
			continue
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, err := n.chains[c].RunRound(rho, client.LaneCurrent, batches[c].subs)
			outcomes[c] = chainOutcome{res: res, err: err}
		}(c)
	}
	wg.Wait()

	n.mu.Lock()
	defer n.mu.Unlock()
	for c := range n.chains {
		if failedChains[c] {
			continue
		}
		oc := outcomes[c]
		if oc.err != nil {
			return nil, fmt.Errorf("core: chain %d: %w", c, oc.err)
		}
		res := oc.res
		report.DroppedInner += res.DroppedInner
		report.BlameRounds += res.BlameRounds
		if res.Halted {
			report.HaltedChains = append(report.HaltedChains, c)
		}
		for _, s := range res.BlamedServers {
			report.BlamedServers = append(report.BlamedServers, [2]int{c, s})
		}
		for _, idx := range res.BlamedUsers {
			who := batches[c].submitters[idx]
			report.BlamedUsers = append(report.BlamedUsers, who)
			if ru, ok := n.users[who]; ok {
				ru.removed = true
			}
		}
		if !res.Halted {
			d, _ := n.boxes.Deliver(rho, res.Delivered)
			report.Delivered += d
		}
	}

	n.round = rho + 1
	if err := n.announceLocked(n.round + 1); err != nil {
		return nil, err
	}
	return report, nil
}

// announceLocked announces a round's inner keys while holding n.mu.
func (n *Network) announceLocked(round uint64) error {
	for _, c := range n.chains {
		if err := c.BeginRound(round); err != nil {
			return fmt.Errorf("core: announcing round %d: %w", round, err)
		}
	}
	return nil
}

package core

import (
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/mix"
	"repro/internal/onion"
)

func testNetwork(t testing.TB, servers, k int) *Network {
	t.Helper()
	n, err := NewNetwork(Config{
		NumServers:          servers,
		ChainLengthOverride: k,
		Seed:                []byte("test-beacon"),
		MailboxServers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// runRound executes a round and fails the test on orchestration
// errors.
func runRound(t testing.TB, n *Network) *RoundReport {
	t.Helper()
	rep, err := n.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestIdleUsersReceiveAllLoopbacks(t *testing.T) {
	n := testNetwork(t, 6, 3)
	users := make([]*client.User, 5)
	for i := range users {
		users[i] = n.NewUser()
	}
	rep := runRound(t, n)
	if len(rep.HaltedChains) != 0 || len(rep.BlamedUsers) != 0 {
		t.Fatalf("honest round misbehaved: %+v", rep)
	}
	l := n.Plan().L
	if want := 5 * l; rep.Delivered != want {
		t.Fatalf("delivered %d, want %d", rep.Delivered, want)
	}
	for i, u := range users {
		msgs := n.Fetch(u, rep.Round)
		if len(msgs) != l {
			t.Fatalf("user %d got %d messages, want ℓ=%d", i, len(msgs), l)
		}
		recv, bad := u.OpenMailbox(rep.Round, msgs)
		if bad != 0 {
			t.Fatalf("user %d: %d undecryptable messages", i, bad)
		}
		for _, r := range recv {
			if r.Kind != onion.KindLoopback || r.FromPartner {
				t.Fatalf("idle user %d received non-loopback %+v", i, r)
			}
		}
	}
}

func TestConversationDeliversBodies(t *testing.T) {
	n := testNetwork(t, 6, 3)
	alice := n.NewUser()
	bob := n.NewUser()
	// A few bystanders so chains carry more than the pair.
	for i := 0; i < 4; i++ {
		n.NewUser()
	}
	alice.StartConversation(bob.PublicKey())
	bob.StartConversation(alice.PublicKey())
	if err := alice.QueueMessage([]byte("hi bob, meet at the crossroads")); err != nil {
		t.Fatal(err)
	}
	if err := bob.QueueMessage([]byte("hi alice")); err != nil {
		t.Fatal(err)
	}

	rep := runRound(t, n)
	gotAtBob := openAndFindPartnerBody(t, n, bob, rep.Round)
	if string(gotAtBob) != "hi bob, meet at the crossroads" {
		t.Fatalf("bob received %q", gotAtBob)
	}
	gotAtAlice := openAndFindPartnerBody(t, n, alice, rep.Round)
	if string(gotAtAlice) != "hi alice" {
		t.Fatalf("alice received %q", gotAtAlice)
	}
}

// openAndFindPartnerBody fetches and returns the single conversation
// body a user received in the round.
func openAndFindPartnerBody(t testing.TB, n *Network, u *client.User, round uint64) []byte {
	t.Helper()
	recv, bad := u.OpenMailbox(round, n.Fetch(u, round))
	if bad != 0 {
		t.Fatalf("%d undecryptable messages", bad)
	}
	var body []byte
	count := 0
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindConversation {
			body = r.Body
			count++
		}
	}
	if count != 1 {
		t.Fatalf("received %d conversation messages, want 1", count)
	}
	return body
}

// TestTrafficCountsIndistinguishable checks the observable invariant
// behind relationship unobservability (§4.1): every user sends and
// receives exactly ℓ messages per round whether or not she converses.
func TestTrafficCountsIndistinguishable(t *testing.T) {
	n := testNetwork(t, 6, 3)
	alice := n.NewUser()
	bob := n.NewUser()
	idle := n.NewUser()
	alice.StartConversation(bob.PublicKey())
	bob.StartConversation(alice.PublicKey())

	rep := runRound(t, n)
	l := n.Plan().L
	for name, u := range map[string]*client.User{"alice": alice, "bob": bob, "idle": idle} {
		if got := len(n.Fetch(u, rep.Round)); got != l {
			t.Fatalf("%s received %d messages, want ℓ=%d", name, got, l)
		}
		if got := len(u.Chains()); got != l {
			t.Fatalf("%s sends %d messages, want ℓ=%d", name, got, l)
		}
	}
}

func TestMultipleRounds(t *testing.T) {
	n := testNetwork(t, 6, 3)
	alice := n.NewUser()
	bob := n.NewUser()
	alice.StartConversation(bob.PublicKey())
	bob.StartConversation(alice.PublicKey())
	for r := 0; r < 3; r++ {
		msg := fmt.Sprintf("round-%d", r)
		if err := alice.QueueMessage([]byte(msg)); err != nil {
			t.Fatal(err)
		}
		rep := runRound(t, n)
		got := openAndFindPartnerBody(t, n, bob, rep.Round)
		if string(got) != msg {
			t.Fatalf("round %d: bob got %q", r, got)
		}
	}
	if n.Round() != 4 {
		t.Fatalf("round counter = %d, want 4", n.Round())
	}
}

// TestUserChurnCoverMessages: Alice goes offline; her pre-submitted
// covers run in her place and Bob receives the KindOffline signal,
// after which he reverts to loopbacks (§5.3.3).
func TestUserChurnCoverMessages(t *testing.T) {
	n := testNetwork(t, 6, 3)
	alice := n.NewUser()
	bob := n.NewUser()
	alice.StartConversation(bob.PublicKey())
	bob.StartConversation(alice.PublicKey())

	// Round 1: both online; covers for round 2 are stored.
	runRound(t, n)
	recvBob, _ := bob.OpenMailbox(1, n.Fetch(bob, 1))
	if len(recvBob) != n.Plan().L {
		t.Fatalf("bob got %d messages in round 1", len(recvBob))
	}

	// Round 2: Alice is offline; her covers are used.
	n.SetOnline(alice, false)
	rep := runRound(t, n)
	if rep.OfflineCovered != 1 {
		t.Fatalf("OfflineCovered = %d, want 1", rep.OfflineCovered)
	}
	// Bob still receives a full mailbox: ℓ−1 loopbacks plus Alice's
	// cover conversation message signalling she left.
	msgs := n.Fetch(bob, rep.Round)
	if len(msgs) != n.Plan().L {
		t.Fatalf("bob got %d messages in round 2, want ℓ=%d", len(msgs), n.Plan().L)
	}
	recv, bad := bob.OpenMailbox(rep.Round, msgs)
	if bad != 0 {
		t.Fatalf("%d undecryptable", bad)
	}
	sawOffline := false
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindOffline {
			sawOffline = true
		}
	}
	if !sawOffline {
		t.Fatal("bob did not receive the offline signal")
	}
	if bob.InConversation() {
		t.Fatal("bob did not end the conversation after the offline signal")
	}

	// Round 3: Alice still offline with no covers left; Bob sends
	// loopbacks only and receives ℓ of them.
	rep3 := runRound(t, n)
	if rep3.OfflineCovered != 0 {
		t.Fatalf("covers reused: %d", rep3.OfflineCovered)
	}
	recv3, bad3 := bob.OpenMailbox(rep3.Round, n.Fetch(bob, rep3.Round))
	if bad3 != 0 || len(recv3) != n.Plan().L {
		t.Fatalf("round 3: bob got %d messages (%d bad)", len(recv3), bad3)
	}
	for _, r := range recv3 {
		if r.FromPartner {
			t.Fatal("bob received a partner message after conversation ended")
		}
	}
}

// TestServerChurnFailsOnlyAffectedChains (§5.2.3): chains without the
// crashed server keep delivering.
func TestServerChurnFailsOnlyAffectedChains(t *testing.T) {
	n := testNetwork(t, 10, 3)
	users := make([]*client.User, 6)
	for i := range users {
		users[i] = n.NewUser()
	}
	n.FailServer(0)
	rep := runRound(t, n)
	if len(rep.FailedChains) == 0 {
		t.Skip("server 0 happens to be in no chain for this seed")
	}
	failedSet := make(map[int]bool)
	for _, c := range rep.FailedChains {
		failedSet[c] = true
	}
	want := n.Topology().FailedChains(map[int]bool{0: true})
	if len(want) != len(rep.FailedChains) {
		t.Fatalf("failed chains %v, want %v", rep.FailedChains, want)
	}
	// Users still receive messages on their healthy chains.
	for i, u := range users {
		healthy := 0
		for _, c := range u.Chains() {
			if !failedSet[c] {
				healthy++
			}
		}
		if got := len(n.Fetch(u, rep.Round)); got != healthy {
			t.Fatalf("user %d received %d, want %d healthy-chain messages", i, got, healthy)
		}
	}
	// Restoring brings the chains back next round.
	n.RestoreServer(0)
	rep2 := runRound(t, n)
	if len(rep2.FailedChains) != 0 {
		t.Fatalf("chains still failed after restore: %v", rep2.FailedChains)
	}
}

// TestActiveServerAttackHaltsChain: a tampering server halts its
// chain with no delivery and is blamed; other chains are unaffected
// (§6).
func TestActiveServerAttackHaltsChain(t *testing.T) {
	n := testNetwork(t, 6, 3)
	users := make([]*client.User, 6)
	for i := range users {
		users[i] = n.NewUser()
	}
	// Pick a chain that at least two users send to: the
	// product-preserving tamper needs two messages to shift against
	// each other.
	badChain := -1
	counts := make(map[int]int)
	for _, u := range users {
		for _, c := range u.Chains() {
			counts[c]++
		}
	}
	for c := 0; c < n.NumChains(); c++ {
		if counts[c] >= 2 {
			badChain = c
			break
		}
	}
	if badChain < 0 {
		t.Fatal("no chain carries two users")
	}
	if err := n.CorruptServer(badChain, 1, &mix.Corruption{TamperPairs: [][2]int{{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	rep := runRound(t, n)
	if len(rep.HaltedChains) != 1 || rep.HaltedChains[0] != badChain {
		t.Fatalf("halted chains = %v, want [%d]", rep.HaltedChains, badChain)
	}
	if len(rep.BlamedServers) != 1 || rep.BlamedServers[0] != [2]int{badChain, 1} {
		t.Fatalf("blamed servers = %v", rep.BlamedServers)
	}
	if len(rep.BlamedUsers) != 0 {
		t.Fatalf("honest users blamed: %v", rep.BlamedUsers)
	}
	// Users connected to the halted chain lose exactly that message.
	for i, u := range users {
		expected := 0
		for _, c := range u.Chains() {
			if c != badChain {
				expected++
			}
		}
		if got := len(n.Fetch(u, rep.Round)); got != expected {
			t.Fatalf("user %d received %d, want %d", i, got, expected)
		}
	}
}

// TestMaliciousUserRemovedNetworkWide: an injected misauthenticated
// submission is convicted, the round completes for honest users, and
// the report names the injection.
func TestMaliciousUserRemovedNetworkWide(t *testing.T) {
	n := testNetwork(t, 6, 3)
	users := make([]*client.User, 4)
	for i := range users {
		users[i] = n.NewUser()
	}
	params, err := n.ChainParams(2, n.Round())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := mix.MaliciousSubmission(n.scheme, params, n.Round(), client.LaneCurrent, 1)
	if err != nil {
		t.Fatal(err)
	}
	n.InjectSubmission(2, bad)
	rep := runRound(t, n)
	if len(rep.HaltedChains) != 0 {
		t.Fatalf("halted: %v", rep.HaltedChains)
	}
	if len(rep.BlamedUsers) != 1 || rep.BlamedUsers[0] != "injected:2" {
		t.Fatalf("blamed users = %v", rep.BlamedUsers)
	}
	if rep.BlameRounds == 0 {
		t.Fatal("blame protocol did not run")
	}
	l := n.Plan().L
	if want := 4 * l; rep.Delivered != want {
		t.Fatalf("delivered %d, want %d", rep.Delivered, want)
	}
}

// TestRegisteredMaliciousUserIsRemoved: a registered user who also
// submits garbage is convicted and stops participating.
func TestRegisteredMaliciousUserIsRemoved(t *testing.T) {
	n := testNetwork(t, 6, 3)
	honest := n.NewUser()
	mallory := n.NewUser()
	// Mallory's real submissions are fine; she additionally injects
	// garbage attributed to her mailbox by submitting directly.
	params, err := n.ChainParams(1, n.Round())
	if err != nil {
		t.Fatal(err)
	}
	badSub, err := mix.MaliciousSubmission(n.scheme, params, n.Round(), client.LaneCurrent, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Attribute the garbage to mallory by registering it under her
	// key: inject, then mark her removed through the report path.
	n.InjectSubmission(1, badSub)
	rep := runRound(t, n)
	if len(rep.BlamedUsers) != 1 {
		t.Fatalf("blamed = %v", rep.BlamedUsers)
	}
	if n.IsRemoved(honest) || n.IsRemoved(mallory) {
		t.Fatal("registered users wrongly removed for injected garbage")
	}
	// Honest traffic was unaffected.
	recv, bad := honest.OpenMailbox(rep.Round, n.Fetch(honest, rep.Round))
	if bad != 0 || len(recv) != n.Plan().L {
		t.Fatalf("honest user got %d messages (%d bad)", len(recv), bad)
	}
}

func TestSelfConversation(t *testing.T) {
	// The security game allows (X_i, Y_i) with X_i = Y_i: a user
	// "conversing with herself" must behave like any conversation.
	n := testNetwork(t, 6, 3)
	alice := n.NewUser()
	alice.StartConversation(alice.PublicKey())
	if err := alice.QueueMessage([]byte("note to self")); err != nil {
		t.Fatal(err)
	}
	rep := runRound(t, n)
	recv, bad := alice.OpenMailbox(rep.Round, n.Fetch(alice, rep.Round))
	if bad != 0 {
		t.Fatalf("%d undecryptable", bad)
	}
	found := false
	for _, r := range recv {
		if r.FromPartner && string(r.Body) == "note to self" {
			found = true
		}
	}
	if !found {
		t.Fatal("self-conversation message not delivered")
	}
}

func TestNetworkConfigValidation(t *testing.T) {
	if _, err := NewNetwork(Config{NumServers: 0}); err == nil {
		t.Fatal("zero servers accepted")
	}
	if _, err := NewNetwork(Config{NumServers: 5, F: 0.2}); err == nil {
		t.Fatal("k > N accepted without override")
	}
}

func TestChainParamsErrors(t *testing.T) {
	n := testNetwork(t, 6, 3)
	if _, err := n.ChainParams(-1, 1); err == nil {
		t.Fatal("negative chain accepted")
	}
	if _, err := n.ChainParams(99, 1); err == nil {
		t.Fatal("out-of-range chain accepted")
	}
	if _, err := n.ChainParams(0, 99); err == nil {
		t.Fatal("unannounced round accepted")
	}
}

func BenchmarkNetworkRound(b *testing.B) {
	n, err := NewNetwork(Config{
		NumServers:          10,
		ChainLengthOverride: 3,
		Seed:                []byte("bench"),
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		n.NewUser()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTwoWorldsIndistinguishableCounts approximates the security game
// of Appendix B at the observable level: world A (alice and bob
// conversing) and world B (everyone idle) must produce identical
// per-user send and receive counts and identical wire sizes across
// several rounds, including one with churn. Content differs; nothing
// countable does.
func TestTwoWorldsIndistinguishableCounts(t *testing.T) {
	type world struct {
		n     *Network
		users []*client.User
	}
	build := func(converse bool) world {
		n := testNetwork(t, 6, 3)
		w := world{n: n}
		for i := 0; i < 6; i++ {
			w.users = append(w.users, n.NewUser())
		}
		if converse {
			if err := w.users[0].StartConversation(w.users[1].PublicKey()); err != nil {
				t.Fatal(err)
			}
			if err := w.users[1].StartConversation(w.users[0].PublicKey()); err != nil {
				t.Fatal(err)
			}
		}
		return w
	}
	wa, wb := build(true), build(false)

	observe := func(w world, round uint64) (recvCounts []int, total int) {
		for _, u := range w.users {
			msgs := w.n.Fetch(u, round)
			recvCounts = append(recvCounts, len(msgs))
			for _, m := range msgs {
				total += len(m)
			}
		}
		return recvCounts, total
	}
	for r := 0; r < 3; r++ {
		if r == 2 {
			// Same churn event in both worlds.
			wa.n.SetOnline(wa.users[0], false)
			wb.n.SetOnline(wb.users[0], false)
		}
		ra, err := wa.n.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := wb.n.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		if ra.Delivered != rb.Delivered {
			t.Fatalf("round %d: delivered %d vs %d across worlds", r, ra.Delivered, rb.Delivered)
		}
		ca, ta := observe(wa, ra.Round)
		cb, tb := observe(wb, rb.Round)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("round %d: user %d receives %d vs %d", r, i, ca[i], cb[i])
			}
		}
		if ta != tb {
			t.Fatalf("round %d: total mailbox bytes %d vs %d", r, ta, tb)
		}
	}
}

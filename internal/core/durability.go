package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/client"
	"repro/internal/group"
	"repro/internal/mailbox"
	"repro/internal/nizk"
	"repro/internal/onion"
	"repro/internal/store"
)

// WAL record types and encodings for a gateway shard's durable state.
// The store engine (internal/store) persists opaque (op, payload)
// records; this file defines what they mean. Everything a restarted
// shard must come back with lives here: mailbox contents, transport
// registrations and the banned set, accepted-but-unmixed external
// submissions, and the round/epoch watermark. In-process users
// (NewUser/AddUser) hold live client key material that cannot be
// serialised, so they are deliberately NOT persisted — the durable
// edge is for network-transport clients, which is what a production
// gateway serves.
//
// Encodings are hand-rolled uvarint/length-prefixed binary rather
// than gob: replay happens on every restart, records are written on
// the submit hot path, and the formats below are stable by
// construction (a decoder rejects, never misinterprets, unknown
// bytes). Points and proofs re-enter through group.ParsePoint /
// nizk.ParseDlogProof exactly like the RPC boundary, so a corrupted
// payload cannot smuggle an invalid group element into a batch.
const (
	// opRegister: a transport user registered. Payload: mailbox bytes.
	opRegister store.Op = 1
	// opBan: a user was convicted and banned. Payload: mailbox bytes.
	opBan store.Op = 2
	// opDeliver: a round's routed messages landed. Payload: round,
	// count, then count length-prefixed messages.
	opDeliver store.Op = 3
	// opAck: the owner confirmed receipt of a round's mailbox.
	// Payload: round, then mailbox bytes.
	opAck store.Op = 4
	// opWatermark: the shard committed a round. Payload: upcoming
	// round, epoch, chain count, collected round.
	opWatermark store.Op = 5
	// opSubmit: an external submission was accepted. Payload:
	// mailbox, round, current messages, cover messages.
	opSubmit store.Op = 6
	// opPrune: mailbox rounds before the payload round were dropped.
	opPrune store.Op = 7
)

// snapshotVersion guards the full-state image layout.
const snapshotVersion = 1

// --- primitive append/read helpers ---

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

type reader struct {
	b []byte
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("core: truncated varint in durable record")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("core: durable record field length %d exceeds remaining %d", n, len(r.b))
	}
	out := r.b[:n:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) done() error {
	if len(r.b) != 0 {
		return fmt.Errorf("core: %d trailing bytes in durable record", len(r.b))
	}
	return nil
}

// --- chain-message codec ---

// appendChainMessage encodes one client.ChainMessage: chain index,
// then the submission's fixed-size DH key and proof, then the
// ciphertext.
func appendChainMessage(b []byte, cm client.ChainMessage) []byte {
	b = appendUvarint(b, uint64(cm.Chain))
	b = append(b, cm.Sub.DHKey.Bytes()...)
	b = append(b, cm.Sub.Proof.Bytes()...)
	return appendBytes(b, cm.Sub.Ct)
}

func (r *reader) chainMessage() (client.ChainMessage, error) {
	chain, err := r.uvarint()
	if err != nil {
		return client.ChainMessage{}, err
	}
	if len(r.b) < group.PointSize+nizk.DlogProofSize {
		return client.ChainMessage{}, fmt.Errorf("core: truncated submission in durable record")
	}
	key, err := group.ParsePoint(r.b[:group.PointSize])
	if err != nil {
		return client.ChainMessage{}, fmt.Errorf("core: durable submission key: %w", err)
	}
	r.b = r.b[group.PointSize:]
	proof, err := nizk.ParseDlogProof(r.b[:nizk.DlogProofSize])
	if err != nil {
		return client.ChainMessage{}, fmt.Errorf("core: durable submission proof: %w", err)
	}
	r.b = r.b[nizk.DlogProofSize:]
	ct, err := r.bytes()
	if err != nil {
		return client.ChainMessage{}, err
	}
	return client.ChainMessage{
		Chain: int(chain),
		Sub:   onion.Submission{Envelope: onion.Envelope{DHKey: key, Ct: ct}, Proof: proof},
	}, nil
}

func appendChainMessages(b []byte, cms []client.ChainMessage) []byte {
	b = appendUvarint(b, uint64(len(cms)))
	for _, cm := range cms {
		b = appendChainMessage(b, cm)
	}
	return b
}

func (r *reader) chainMessages() ([]client.ChainMessage, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) { // every message takes >1 byte
		return nil, fmt.Errorf("core: durable record claims %d messages in %d bytes", n, len(r.b))
	}
	out := make([]client.ChainMessage, 0, n)
	for i := uint64(0); i < n; i++ {
		cm, err := r.chainMessage()
		if err != nil {
			return nil, err
		}
		out = append(out, cm)
	}
	return out, nil
}

// --- record payload codecs ---

func encodeDeliver(round uint64, msgs [][]byte) []byte {
	b := appendUvarint(nil, round)
	b = appendUvarint(b, uint64(len(msgs)))
	for _, m := range msgs {
		b = appendBytes(b, m)
	}
	return b
}

func decodeDeliver(p []byte) (uint64, [][]byte, error) {
	r := &reader{b: p}
	round, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(r.b)) {
		return 0, nil, fmt.Errorf("core: deliver record claims %d messages in %d bytes", n, len(r.b))
	}
	msgs := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		m, err := r.bytes()
		if err != nil {
			return 0, nil, err
		}
		msgs = append(msgs, m)
	}
	return round, msgs, r.done()
}

func encodeAck(round uint64, mailboxID []byte) []byte {
	return append(appendUvarint(nil, round), mailboxID...)
}

func decodeAck(p []byte) (uint64, []byte, error) {
	r := &reader{b: p}
	round, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	return round, r.b, nil
}

// watermark is the per-shard round/epoch progress a restart resumes
// from.
type watermark struct {
	round     uint64
	epoch     uint64
	numChains int
	collected uint64
}

func encodeWatermark(w watermark) []byte {
	b := appendUvarint(nil, w.round)
	b = appendUvarint(b, w.epoch)
	b = appendUvarint(b, uint64(w.numChains))
	return appendUvarint(b, w.collected)
}

func decodeWatermark(p []byte) (watermark, error) {
	r := &reader{b: p}
	var w watermark
	var err error
	if w.round, err = r.uvarint(); err != nil {
		return w, err
	}
	if w.epoch, err = r.uvarint(); err != nil {
		return w, err
	}
	nc, err := r.uvarint()
	if err != nil {
		return w, err
	}
	w.numChains = int(nc)
	if w.collected, err = r.uvarint(); err != nil {
		return w, err
	}
	return w, r.done()
}

func encodeSubmit(mailboxID string, out *client.RoundOutput) []byte {
	b := appendBytes(nil, []byte(mailboxID))
	b = appendUvarint(b, out.Round)
	b = appendChainMessages(b, out.Current)
	return appendChainMessages(b, out.Cover)
}

func decodeSubmit(p []byte) (string, *client.RoundOutput, error) {
	r := &reader{b: p}
	mb, err := r.bytes()
	if err != nil {
		return "", nil, err
	}
	round, err := r.uvarint()
	if err != nil {
		return "", nil, err
	}
	cur, err := r.chainMessages()
	if err != nil {
		return "", nil, err
	}
	cover, err := r.chainMessages()
	if err != nil {
		return "", nil, err
	}
	return string(mb), &client.RoundOutput{Round: round, Current: cur, Cover: cover}, r.done()
}

// --- snapshot codec ---

// encodeSnapshotLocked serialises the shard's full durable state.
// Callers hold f.mu.
func (f *Frontend) encodeSnapshotLocked() []byte {
	b := appendUvarint(nil, snapshotVersion)
	b = appendUvarint(b, f.round)
	b = appendUvarint(b, f.epoch)
	nc := 0
	if f.plan != nil {
		nc = f.plan.NumChains
	}
	b = appendUvarint(b, uint64(nc))
	b = appendUvarint(b, f.collected)

	regs := f.reg.transportKeys(f.rng)
	b = appendUvarint(b, uint64(len(regs)))
	for _, k := range regs {
		b = appendBytes(b, []byte(k))
	}

	banned := make([]string, 0, len(f.banned))
	for k := range f.banned {
		banned = append(banned, k)
	}
	sort.Strings(banned)
	b = appendUvarint(b, uint64(len(banned)))
	for _, k := range banned {
		b = appendBytes(b, []byte(k))
	}

	entries := f.boxes.Export()
	b = appendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = appendUvarint(b, e.Round)
		b = appendBytes(b, e.Mailbox)
		b = appendUvarint(b, uint64(len(e.Msgs)))
		for _, m := range e.Msgs {
			b = appendBytes(b, m)
		}
	}

	extKeys := make([]string, 0, len(f.externals))
	for k := range f.externals {
		extKeys = append(extKeys, k)
	}
	sort.Strings(extKeys)
	b = appendUvarint(b, uint64(len(extKeys)))
	for _, k := range extKeys {
		eu := f.externals[k]
		b = appendBytes(b, []byte(k))
		b = appendRoundMessages(b, eu.current)
		b = appendRoundMessages(b, eu.cover)
	}
	return b
}

func appendRoundMessages(b []byte, m map[uint64][]client.ChainMessage) []byte {
	rounds := make([]uint64, 0, len(m))
	for r := range m {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	b = appendUvarint(b, uint64(len(rounds)))
	for _, r := range rounds {
		b = appendUvarint(b, r)
		b = appendChainMessages(b, m[r])
	}
	return b
}

func (r *reader) roundMessages() (map[uint64][]client.ChainMessage, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	out := make(map[uint64][]client.ChainMessage, n)
	for i := uint64(0); i < n; i++ {
		round, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		cms, err := r.chainMessages()
		if err != nil {
			return nil, err
		}
		out[round] = cms
	}
	return out, nil
}

// applySnapshotLocked restores the shard's state from a snapshot
// image. Callers hold f.mu on a freshly-constructed Frontend.
func (f *Frontend) applySnapshotLocked(p []byte) error {
	r := &reader{b: p}
	ver, err := r.uvarint()
	if err != nil {
		return err
	}
	if ver != snapshotVersion {
		return fmt.Errorf("core: snapshot version %d, want %d", ver, snapshotVersion)
	}
	var w watermark
	if w.round, err = r.uvarint(); err != nil {
		return err
	}
	if w.epoch, err = r.uvarint(); err != nil {
		return err
	}
	nc, err := r.uvarint()
	if err != nil {
		return err
	}
	w.numChains = int(nc)
	if w.collected, err = r.uvarint(); err != nil {
		return err
	}
	if err := f.applyWatermarkLocked(w); err != nil {
		return err
	}

	nRegs, err := r.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nRegs; i++ {
		mb, err := r.bytes()
		if err != nil {
			return err
		}
		f.reg.insert(string(mb), &registeredUser{})
	}

	nBan, err := r.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nBan; i++ {
		mb, err := r.bytes()
		if err != nil {
			return err
		}
		f.banned[string(mb)] = true
		f.reg.markRemoved(string(mb))
	}

	nBox, err := r.uvarint()
	if err != nil {
		return err
	}
	var entries []mailbox.Entry
	for i := uint64(0); i < nBox; i++ {
		var e mailbox.Entry
		if e.Round, err = r.uvarint(); err != nil {
			return err
		}
		if e.Mailbox, err = r.bytes(); err != nil {
			return err
		}
		nMsg, err := r.uvarint()
		if err != nil {
			return err
		}
		for j := uint64(0); j < nMsg; j++ {
			m, err := r.bytes()
			if err != nil {
				return err
			}
			e.Msgs = append(e.Msgs, m)
		}
		entries = append(entries, e)
	}
	f.boxes.Import(entries)

	nExt, err := r.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < nExt; i++ {
		mb, err := r.bytes()
		if err != nil {
			return err
		}
		cur, err := r.roundMessages()
		if err != nil {
			return err
		}
		cover, err := r.roundMessages()
		if err != nil {
			return err
		}
		f.externals[string(mb)] = &externalUser{current: cur, cover: cover}
	}
	return r.done()
}

// applyWatermarkLocked adopts a recovered round/epoch position:
// rebuild the (deterministic) chain plan and fast-forward the round
// counters. Callers hold f.mu.
func (f *Frontend) applyWatermarkLocked(w watermark) error {
	if w.numChains > 0 {
		if err := f.adoptLocked(w.epoch, w.numChains); err != nil {
			return err
		}
	}
	if w.round > f.round {
		f.round = w.round
	}
	if w.collected > f.collected {
		f.collected = w.collected
	}
	return nil
}

// replayRecords applies recovered WAL records, in append order, on
// top of whatever the snapshot restored. Damaged records fail the
// recovery — the WAL engine already cut torn tails, so a record that
// frames correctly but decodes badly means real corruption and silent
// skipping would de-sync the shard from what clients were promised.
func (f *Frontend) replayRecords(recs []store.Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, rec := range recs {
		if err := f.replayOneLocked(rec); err != nil {
			return fmt.Errorf("core: replaying WAL record %d (op %d): %w", i, rec.Op, err)
		}
	}
	return nil
}

func (f *Frontend) replayOneLocked(rec store.Record) error {
	switch rec.Op {
	case opRegister:
		f.reg.insert(string(rec.Payload), &registeredUser{})
	case opBan:
		who := string(rec.Payload)
		f.banned[who] = true
		delete(f.externals, who)
		f.reg.markRemoved(who)
	case opDeliver:
		round, msgs, err := decodeDeliver(rec.Payload)
		if err != nil {
			return err
		}
		f.boxes.Deliver(round, msgs)
	case opAck:
		round, mb, err := decodeAck(rec.Payload)
		if err != nil {
			return err
		}
		f.boxes.Ack(round, mb)
	case opWatermark:
		w, err := decodeWatermark(rec.Payload)
		if err != nil {
			return err
		}
		return f.applyWatermarkLocked(w)
	case opSubmit:
		mb, out, err := decodeSubmit(rec.Payload)
		if err != nil {
			return err
		}
		if f.banned[mb] {
			return nil
		}
		eu, ok := f.externals[mb]
		if !ok {
			eu = &externalUser{
				current: make(map[uint64][]client.ChainMessage),
				cover:   make(map[uint64][]client.ChainMessage),
			}
			f.externals[mb] = eu
		}
		eu.current[out.Round] = out.Current
		eu.cover[out.Round+1] = out.Cover
	case opPrune:
		r := &reader{b: rec.Payload}
		round, err := r.uvarint()
		if err != nil {
			return err
		}
		f.boxes.PruneBefore(round)
	default:
		return fmt.Errorf("core: unknown durable record op %d", rec.Op)
	}
	return nil
}

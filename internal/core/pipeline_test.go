package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/mix"
	"repro/internal/onion"
)

// depthNetwork builds a network with the given pipeline depth.
func depthNetwork(t testing.TB, servers, k, depth int, recover bool) *Network {
	t.Helper()
	n, err := NewNetwork(Config{
		NumServers:          servers,
		ChainLengthOverride: k,
		Seed:                []byte("test-beacon"),
		MailboxServers:      2,
		PipelineDepth:       depth,
		Recover:             recover,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// conversationScript sets up nPairs conversing pairs on a network and
// queues every round's bodies up front. With pipelining, round ρ+1's
// onions are built while round ρ is still mixing, so bodies queued
// between rounds would ride one round later than in a serial run; a
// fixed up-front script is the apples-to-apples comparison.
func conversationScript(t *testing.T, n *Network, nPairs, rounds int) []*client.User {
	t.Helper()
	users := make([]*client.User, 2*nPairs)
	for i := range users {
		users[i] = n.NewUser()
	}
	for i := 0; i < len(users); i += 2 {
		a, b := users[i], users[i+1]
		if err := a.StartConversation(b.PublicKey()); err != nil {
			t.Fatal(err)
		}
		if err := b.StartConversation(a.PublicKey()); err != nil {
			t.Fatal(err)
		}
		for r := 1; r <= rounds; r++ {
			if err := a.QueueMessage([]byte(fmt.Sprintf("round %d pair %d a->b", r, i/2))); err != nil {
				t.Fatal(err)
			}
			if err := b.QueueMessage([]byte(fmt.Sprintf("round %d pair %d b->a", r, i/2))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return users
}

// conversationBodies fetches and decrypts one user's mailbox for a
// round and returns the conversation bodies received.
func conversationBodies(t *testing.T, n *Network, u *client.User, round uint64) [][]byte {
	t.Helper()
	msgs := n.Fetch(u, round)
	received, undecryptable := u.OpenMailbox(round, msgs)
	if undecryptable != 0 {
		t.Fatalf("round %d: %d undecryptable messages", round, undecryptable)
	}
	var bodies [][]byte
	for _, r := range received {
		if r.FromPartner && r.Kind == onion.KindConversation && len(r.Body) > 0 {
			bodies = append(bodies, r.Body)
		}
	}
	return bodies
}

// TestPipelinedMatchesSerial runs the same conversation script through
// a serial network and a depth-2 pipelined network and requires the
// decrypted per-round deliveries to be byte-identical: overlapping
// round ρ+1's build with round ρ's mix must not reorder, drop or
// duplicate a single body.
func TestPipelinedMatchesSerial(t *testing.T) {
	const pairs, rounds = 2, 4
	serial := depthNetwork(t, 6, 3, 1, false)
	piped := depthNetwork(t, 6, 3, 2, false)
	serialUsers := conversationScript(t, serial, pairs, rounds)
	pipedUsers := conversationScript(t, piped, pairs, rounds)

	for round := 1; round <= rounds; round++ {
		repS := runRound(t, serial)
		repP := runRound(t, piped)
		if repS.Round != repP.Round {
			t.Fatalf("round numbers diverged: %d vs %d", repS.Round, repP.Round)
		}
		if repS.Delivered != repP.Delivered {
			t.Fatalf("round %d: delivered %d (serial) vs %d (pipelined)", round, repS.Delivered, repP.Delivered)
		}
		for i := range serialUsers {
			want := conversationBodies(t, serial, serialUsers[i], uint64(round))
			got := conversationBodies(t, piped, pipedUsers[i], uint64(round))
			if len(want) != len(got) {
				t.Fatalf("round %d user %d: %d bodies (serial) vs %d (pipelined)", round, i, len(want), len(got))
			}
			for j := range want {
				if !bytes.Equal(want[j], got[j]) {
					t.Fatalf("round %d user %d: body %q (serial) vs %q (pipelined)", round, i, want[j], got[j])
				}
			}
			// The script is deterministic, so pin the content too.
			if len(got) != 1 || !bytes.HasPrefix(got[0], []byte(fmt.Sprintf("round %d pair %d", round, i/2))) {
				t.Fatalf("round %d user %d: unexpected bodies %q", round, i, got)
			}
		}
	}
}

// TestPipelineHaltDiscardsPrebuild corrupts a mix server on a depth-2
// pipelined network with recovery on. The corrupted chain halts in
// round 2 while round 3's prebuild is already in flight; the blame
// verdict queues an eviction, which must discard the prebuild (its
// onions are wrapped against the soon-to-be-replaced chains) rather
// than deliver it stale. Round 3 then re-forms chains, rebuilds — the
// bodies the discarded prebuild drained are restored, not lost — and
// delivers the round-3 script on schedule.
func TestPipelineHaltDiscardsPrebuild(t *testing.T) {
	const rounds = 4
	n := depthNetwork(t, 6, 3, 2, true)
	users := conversationScript(t, n, 1, rounds)
	a := users[0]

	// Corrupt a chain away from the pair's meeting chain so the
	// conversation itself is never stranded; pad the population so
	// every chain's batch is large enough to tamper with.
	meeting, err := a.MeetingChain()
	if err != nil {
		t.Fatal(err)
	}
	victim := (meeting + 1) % n.NumChains()
	for i := 0; i < 8; i++ {
		n.NewUser()
	}

	rep1 := runRound(t, n)
	if rep1.Delivered == 0 || len(rep1.HaltedChains) != 0 {
		t.Fatalf("round 1 not clean: %+v", rep1)
	}
	if err := n.CorruptServer(victim, 1, &mix.Corruption{TamperPairs: [][2]int{{0, 1}}}); err != nil {
		t.Fatal(err)
	}

	rep2 := runRound(t, n)
	if len(rep2.HaltedChains) != 1 || rep2.HaltedChains[0] != victim {
		t.Fatalf("round 2: want chain %d halted, got %v", victim, rep2.HaltedChains)
	}
	if len(rep2.BlamedServers) == 0 {
		t.Fatalf("round 2: tampering server not blamed: %+v", rep2)
	}
	// The eviction is pending, so the round-3 prebuild must have been
	// discarded on the spot.
	if n.pending != nil {
		t.Fatal("round-3 prebuild survived a pending eviction")
	}

	rep3 := runRound(t, n)
	if !rep3.Reformed || rep3.Epoch != 1 {
		t.Fatalf("round 3: expected re-formation into epoch 1, got %+v", rep3)
	}
	// The pair may have been re-assigned to new chains by the reform,
	// but with a single conversation there is no clash: the round-3
	// bodies drained by the discarded prebuild must arrive.
	for i, u := range users {
		bodies := conversationBodies(t, n, u, rep3.Round)
		if len(bodies) != 1 || !bytes.HasPrefix(bodies[0], []byte("round 3 pair 0")) {
			t.Fatalf("round 3 user %d: want restored round-3 body, got %q", i, bodies)
		}
	}

	rep4 := runRound(t, n)
	if rep4.Reformed || len(rep4.HaltedChains) != 0 {
		t.Fatalf("round 4 not clean after recovery: %+v", rep4)
	}
	for i, u := range users {
		bodies := conversationBodies(t, n, u, rep4.Round)
		if len(bodies) != 1 || !bytes.HasPrefix(bodies[0], []byte("round 4 pair 0")) {
			t.Fatalf("round 4 user %d: want round-4 body, got %q", i, bodies)
		}
	}
}

// TestPipelineDepthClamp checks the depth normalisation: 0 and 1 are
// serial, anything above 2 is clamped to the protocol's maximum
// lookahead.
func TestPipelineDepthClamp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {2, 2}, {7, 2}} {
		n := &Network{cfg: Config{PipelineDepth: tc.in}}
		if got := n.pipelineDepth(); got != tc.want {
			t.Errorf("depth %d: got %d, want %d", tc.in, got, tc.want)
		}
	}
}

// BenchmarkRoundThroughput measures whole rounds per second with and
// without the pipelined overlap, on the same population. The depth-2
// rate improvement is the build/mix overlap the pipeline buys.
func BenchmarkRoundThroughput(b *testing.B) {
	for _, depth := range []int{1, 2} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			n, err := NewNetwork(Config{
				NumServers:          6,
				ChainLengthOverride: 3,
				Seed:                []byte("bench-beacon"),
				PipelineDepth:       depth,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				n.NewUser()
			}
			if _, err := n.RunRound(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.RunRound(); err != nil {
					b.Fatal(err)
				}
			}
			n.PruneBefore(n.Round())
		})
	}
}

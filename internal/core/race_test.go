package core

import (
	"sync"
	"testing"

	"repro/internal/client"
)

// TestConcurrentRegistryDuringRounds exercises the round pipeline's
// concurrency contract: registry operations (NewUser, SetOnline,
// IsRemoved, NumUsers) and mailbox fetches race freely against
// RunRound, and the rounds stay honest. Run with -race; it is the
// regression test for the sharded-registry locking rules.
func TestConcurrentRegistryDuringRounds(t *testing.T) {
	n := testNetwork(t, 6, 2)
	users := make([]*client.User, 12)
	for i := range users {
		users[i] = n.NewUser()
	}
	if err := users[0].StartConversation(users[1].PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := users[1].StartConversation(users[0].PublicKey()); err != nil {
		t.Fatal(err)
	}

	const rounds = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Presence churn: toggle a disjoint set of users on and off while
	// rounds run. Toggled users are not the conversing pair, so the
	// conversation assertions below stay deterministic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		online := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, u := range users[2:6] {
				n.SetOnline(u, online)
			}
			online = !online
		}
	}()

	// Registrations: grow the population mid-round. Late users join
	// the running round or the next one depending on whether their
	// shard was already built — both are valid.
	var lateMu sync.Mutex
	var late []*client.User
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			u := n.NewUser()
			lateMu.Lock()
			late = append(late, u)
			lateMu.Unlock()
			if len(late) >= 16 {
				return
			}
		}
	}()

	// Readers: fetches, removal checks and population counts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, u := range users {
				n.Fetch(u, n.Round())
				n.IsRemoved(u)
			}
			n.NumUsers()
		}
	}()

	for r := 0; r < rounds; r++ {
		rep, err := n.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if len(rep.HaltedChains) != 0 || len(rep.BlamedUsers) != 0 {
			t.Fatalf("honest round misbehaved: %+v", rep)
		}
	}
	close(stop)
	wg.Wait()

	// With churn quiesced, a final round must deliver ℓ messages to
	// every stably-online user, including every late joiner.
	for _, u := range users[2:6] {
		n.SetOnline(u, true)
	}
	rep, err := n.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	l := n.Plan().L
	check := append([]*client.User{}, users...)
	lateMu.Lock()
	check = append(check, late...)
	lateMu.Unlock()
	for i, u := range check {
		msgs := n.Fetch(u, rep.Round)
		if len(msgs) != l {
			t.Fatalf("user %d got %d messages in quiesced round, want ℓ=%d", i, len(msgs), l)
		}
		if _, bad := u.OpenMailbox(rep.Round, msgs); bad != 0 {
			t.Fatalf("user %d: %d undecryptable messages", i, bad)
		}
	}
}

package core

import (
	"testing"

	"repro/internal/obs"
)

// roundCounterSnapshot reads every counter recordRoundReport feeds.
// The obs.Default registry is process-global, so parity is asserted
// on before/after deltas rather than absolute values — other tests
// in this package run rounds too.
func roundCounterSnapshot() map[string]uint64 {
	return map[string]uint64{
		"rounds":          obsRounds.Value(),
		"delivered":       obsDelivered.Value(),
		"dropped_inner":   obsDroppedInner.Value(),
		"mailbox_dropped": obsMailboxDropped.Value(),
		"deduped":         obsDeduped.Value(),
		"lost_deliveries": obsLostDeliveries.Value(),
		"stranded":        obsStranded.Value(),
		"halted_chains":   obsHaltedChains.Value(),
		"blame_rounds":    obsBlameRounds.Value(),
		"offline_covered": obsOfflineCovered.Value(),
	}
}

// TestRoundReportMetricsParity runs one round with real deliveries
// and asserts the exported counters moved by exactly the values the
// RoundReport carries — the report and /metrics must never disagree
// about what a round did.
func TestRoundReportMetricsParity(t *testing.T) {
	n := testNetwork(t, 6, 3)
	alice, bob := n.NewUser(), n.NewUser()
	for i := 0; i < 3; i++ {
		n.NewUser()
	}
	alice.StartConversation(bob.PublicKey())
	bob.StartConversation(alice.PublicKey())
	if err := alice.QueueMessage([]byte("parity check")); err != nil {
		t.Fatal(err)
	}

	before := roundCounterSnapshot()
	roundsBefore := obs.GetOrCreateHistogram("xrd_round_seconds").Count()
	rep := runRound(t, n)
	after := roundCounterSnapshot()

	if rep.Delivered == 0 {
		t.Fatal("round delivered nothing; parity check would be vacuous")
	}
	want := map[string]uint64{
		"rounds":          1,
		"delivered":       uint64(rep.Delivered),
		"dropped_inner":   uint64(rep.DroppedInner),
		"mailbox_dropped": uint64(rep.MailboxDropped),
		"deduped":         uint64(rep.DedupedSubmissions),
		"lost_deliveries": uint64(rep.LostDeliveries),
		"stranded":        uint64(len(rep.Stranded)),
		"halted_chains":   uint64(len(rep.HaltedChains)),
		"blame_rounds":    uint64(rep.BlameRounds),
		"offline_covered": uint64(rep.OfflineCovered),
	}
	for name, w := range want {
		if got := after[name] - before[name]; got != w {
			t.Errorf("counter %s moved by %d, report says %d", name, got, w)
		}
	}
	if got := obs.GetOrCreateHistogram("xrd_round_seconds").Count() - roundsBefore; got != 1 {
		t.Errorf("xrd_round_seconds observed %d rounds, want 1", got)
	}
}

package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/chainsel"
	"repro/internal/mix"
	"repro/internal/topology"
)

// Epoch recovery (Config.Recover). A halted chain names the position
// that misbehaved (§6.4); a dead chain names the position that could
// not be reached. Either way RunRound queues the server identity
// behind the position in pendingEvict, and the next RunRound — before
// executing its round — expels those servers and re-forms every chain
// over the survivors: a fresh topology from the public seed (extended
// with the epoch number so the draw differs), a migrated
// chain-selection plan, re-keyed chains, re-announced round keys, and
// every registered user rebalanced onto the new plan. Users of the
// dead chain are re-routed, not stranded forever; the stranding is
// one round deep.
//
// Two states deliberately do NOT survive a re-formation:
//
//   - Banked covers. They were built against the old chains' keys.
//     Their submission proofs would still verify against the old
//     parameters, but decryption under the new chains would fail, and
//     the blame protocol would convict the — honest — user. Covers
//     are discarded and rebuilt on the user's next online round.
//   - External submissions. Same hazard, same remedy: the stored
//     traffic is dropped and the transport clients rebuild against
//     the new parameters (they re-derive the plan from Status).

// strandedRetention is how many rounds of stranded-user records are
// kept for StrandedError queries.
const strandedRetention = 8

// ErrRoundRetry is the sentinel wrapped by StrandedError: the user's
// traffic was not delivered this round because a chain she rides
// halted, failed or was unreachable — nothing was leaked and nothing
// is wrong with her; she should simply participate in the next round.
var ErrRoundRetry = errors.New("core: round did not deliver for this user; retry next round")

// hopErrorServer translates a *mix.HopError in err's chain into the
// server identity occupying the failing position under topo.
func hopErrorServer(topo *topology.Topology, err error) (int, bool) {
	var he *mix.HopError
	if !errors.As(err, &he) {
		return 0, false
	}
	if he.Chain < 0 || he.Chain >= len(topo.Chains) {
		return 0, false
	}
	members := topo.Chains[he.Chain]
	if he.Position < 0 || he.Position >= len(members) {
		return 0, false
	}
	return members[he.Position], true
}

// attributeHopError queues the server behind a hop failure for
// eviction at the next round's re-formation. Failures that do not
// carry position attribution (or with Recover off) are ignored here —
// there is nothing to evict.
func (n *Network) attributeHopError(topo *topology.Topology, err error) {
	if !n.cfg.Recover || err == nil {
		return
	}
	if s, ok := hopErrorServer(topo, err); ok {
		n.mu.Lock()
		n.pendingEvict[s] = true
		n.mu.Unlock()
	}
}

// reform expels every pending-evict server and re-forms the chains
// over the survivors, retrying with further evictions if a survivor
// turns out to be unreachable during re-keying or announcement.
// Returns the servers evicted (nil if every pending server was
// already gone and nothing needed to change). Called from RunRound
// under runMu.
func (n *Network) reform() ([]int, error) {
	n.mu.Lock()
	pend := n.pendingEvict
	n.pendingEvict = make(map[int]bool)
	curPlan, curTopo := n.plan, n.topo
	epoch := n.epoch
	rho := n.round
	n.mu.Unlock()

	var evicted []int
	for s := range pend {
		if n.evictor.Evict(s) {
			evicted = append(evicted, s)
		}
	}
	if len(evicted) == 0 {
		return nil, nil
	}

	// Each attempt draws a fresh epoch number: remote hops refuse a
	// second, conflicting binding in the same epoch, so a failed
	// attempt must not reuse its epoch for the retry.
	newEpoch := epoch
	for attempt := 0; attempt <= len(curTopo.Servers); attempt++ {
		newEpoch++
		survivors := n.evictor.Survivors(curTopo.Servers)
		if len(survivors) == 0 {
			sort.Ints(evicted)
			return evicted, errors.New("core: every server evicted; cannot re-form chains")
		}
		numChains := n.cfg.NumChains
		if numChains == 0 || numChains > len(survivors) {
			numChains = len(survivors)
		}
		k := curTopo.ChainLength
		if k > len(survivors) {
			k = len(survivors)
		}
		// Extend the public seed with the epoch so the member draw
		// differs from the founding topology while staying
		// reproducible from public information (§5.2.1).
		seed := append(append([]byte{}, n.cfg.Seed...), []byte("/epoch/"+strconv.FormatUint(newEpoch, 10))...)
		topo2, err := topology.Build(topology.Config{
			Servers:             survivors,
			NumChains:           numChains,
			ChainLengthOverride: k,
			Seed:                seed,
			DisableStaggering:   n.cfg.DisableStaggering,
		})
		if err != nil {
			sort.Ints(evicted)
			return evicted, fmt.Errorf("core: re-forming topology for epoch %d: %w", newEpoch, err)
		}
		plan2, _, err := chainsel.Reform(curPlan, len(topo2.Chains))
		if err != nil {
			sort.Ints(evicted)
			return evicted, fmt.Errorf("core: re-forming chain-selection plan: %w", err)
		}

		// Re-key every chain, then announce the upcoming rounds. A
		// hop failure at either step evicts the server behind it and
		// restarts the formation over the remaining survivors.
		evictAndRetry := func(err error) (bool, error) {
			if s, ok := hopErrorServer(topo2, err); ok {
				if n.evictor.Evict(s) {
					evicted = append(evicted, s)
				}
				return true, nil
			}
			return false, err
		}
		chains2 := make([]*mix.Chain, len(topo2.Chains))
		retry := false
		for c := range topo2.Chains {
			chain, err := n.assembleChainAt(newEpoch, topo2, c)
			if err != nil {
				ok, err := evictAndRetry(err)
				if !ok {
					sort.Ints(evicted)
					return evicted, fmt.Errorf("core: re-keying chain %d for epoch %d: %w", c, newEpoch, err)
				}
				retry = true
				break
			}
			chains2[c] = chain
		}
		if !retry {
			for _, e := range append(announceEach(chains2, rho), announceEach(chains2, rho+1)...) {
				if e == nil {
					continue
				}
				ok, err := evictAndRetry(e)
				if !ok {
					sort.Ints(evicted)
					return evicted, fmt.Errorf("core: announcing epoch %d: %w", newEpoch, err)
				}
				retry = true
				break
			}
		}
		if retry {
			continue
		}

		// Commit: swap the topology state first, so NewUser and the
		// transport Status see the new plan, then broadcast the new
		// epoch to every gateway shard — each rebalances its own users
		// and discards external submissions built against the old
		// parameters (see the package comment above for why keeping
		// them would get honest users blamed). A shard unreachable for
		// the broadcast is tolerated: BeginRound carries the epoch too
		// and the shard adopts it there, since the plan is
		// deterministic in the chain count.
		n.mu.Lock()
		n.plan, n.topo, n.chains = plan2, topo2, chains2
		n.epoch = newEpoch
		n.mu.Unlock()
		for _, sh := range n.shards {
			_ = sh.Rebalance(newEpoch, len(chains2))
		}
		sort.Ints(evicted)
		return evicted, nil
	}
	sort.Ints(evicted)
	return evicted, errors.New("core: chain re-formation did not converge")
}

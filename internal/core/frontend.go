package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aead"
	"repro/internal/chainsel"
	"repro/internal/client"
	"repro/internal/mailbox"
	"repro/internal/mix"
	"repro/internal/onion"
	"repro/internal/store"
)

// FrontendConfig describes one gateway front-end shard.
type FrontendConfig struct {
	// Range is the registry-shard slice this frontend owns; the zero
	// value means the full space (the monolith).
	Range ShardRange
	// NumChains, when nonzero, installs the chain-selection plan for
	// epoch 0 immediately; zero defers it to the first Rebalance or
	// BeginRound (a gateway process learns the chain count from the
	// coordinator).
	NumChains int
	// MailboxServers sizes this shard's mailbox cluster; zero means 1.
	MailboxServers int
	// Scheme is the AEAD; nil means ChaCha20-Poly1305.
	Scheme aead.Scheme
	// Workers sizes the build worker pool; zero means GOMAXPROCS.
	Workers int
	// MailboxDepth caps each mailbox's retained messages, evicting
	// oldest first past the cap (accounted in RoundReport); zero means
	// unlimited.
	MailboxDepth int
	// Store is the durability engine for this shard's client-facing
	// state (mailboxes, transport registrations, bans, external
	// submissions, round watermarks); nil or store.Mem keeps the
	// seed's pure in-memory behaviour. When Recovered is also set,
	// NewFrontend replays it before serving.
	Store store.Store
	// Recovered is the state store.Open read back from Store's data
	// directory, replayed into the fresh frontend.
	Recovered *store.Recovered
	// SnapshotEvery takes a full-state snapshot (compacting the WAL)
	// every N finished rounds; zero means 16. Ignored without Store.
	SnapshotEvery int
}

// Frontend is the in-process gateway shard: the per-user half of a
// deployment. It owns a slice of the sharded user registry, the
// mailbox storage for those users, their external submissions, bans
// and stranded-round records, and the round pipeline's onion-building
// worker pool — everything that scales with users rather than with
// chains. It implements GatewayShard for the coordinator and the
// user-facing operations (registration, submission, fetch) that
// rpc.ShardServer exposes to remote clients.
//
// Locking: reg has per-shard locks (registry.go); mu guards the
// remaining control state. BeginRound, FinishRound, AbortRound and
// Rebalance are driven by one coordinator at a time; user-facing
// calls are safe concurrently with all of them.
type Frontend struct {
	rng     ShardRange
	scheme  aead.Scheme
	boxes   *mailbox.Cluster
	workers int
	reg     *registry
	// st is the durability engine (store.Mem when the shard is not
	// durable). Writes happen at the mutation sites below; Sync at the
	// durability points documented in internal/store.
	st            store.Store
	snapshotEvery int

	mu sync.Mutex
	// sinceSnap counts finished rounds since the last snapshot.
	sinceSnap int
	plan      *chainsel.Plan // nil until the chain count is known
	epoch     uint64
	// round is the upcoming round as of the last Begin/FinishRound.
	round uint64
	// collected is the highest round whose external traffic has been
	// folded into batches; see SubmitExternal.
	collected uint64
	// params is the last pushed parameter snapshot, serving client
	// ChainParams between rounds.
	params *roundParams
	// stranded, externals, banned: see the corresponding Network
	// fields before the split (external.go, recover.go).
	stranded  map[uint64]map[string]bool
	externals map[string]*externalUser
	banned    map[string]bool
}

var _ GatewayShard = (*Frontend)(nil)

// NewFrontend creates a gateway shard over the given registry range.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if cfg.Range == (ShardRange{}) {
		cfg.Range = FullRange()
	}
	if err := cfg.Range.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scheme == nil {
		cfg.Scheme = aead.ChaCha20Poly1305()
	}
	if cfg.MailboxServers == 0 {
		cfg.MailboxServers = 1
	}
	boxes, err := mailbox.NewClusterLimited(cfg.MailboxServers, cfg.MailboxDepth)
	if err != nil {
		return nil, fmt.Errorf("core: building mailbox cluster: %w", err)
	}
	if cfg.Store == nil {
		cfg.Store = store.Mem{}
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 16
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Workers claim whole registry shards, so more workers than owned
	// shards would just idle.
	if workers > cfg.Range.Width() {
		workers = cfg.Range.Width()
	}
	f := &Frontend{
		rng:           cfg.Range,
		scheme:        cfg.Scheme,
		boxes:         boxes,
		workers:       workers,
		reg:           newRegistry(),
		st:            cfg.Store,
		snapshotEvery: cfg.SnapshotEvery,
		round:         1,
		stranded:      make(map[uint64]map[string]bool),
		externals:     make(map[string]*externalUser),
		banned:        make(map[string]bool),
	}
	if cfg.Recovered != nil {
		if err := f.recover(cfg.Recovered); err != nil {
			return nil, err
		}
	}
	if cfg.NumChains > 0 {
		if err := f.Rebalance(0, cfg.NumChains); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// recover rebuilds the shard's durable state from what store.Open
// read back: the snapshot image first, then the WAL records appended
// after it, in order.
func (f *Frontend) recover(rec *store.Recovered) error {
	if len(rec.Snapshot) > 0 {
		f.mu.Lock()
		err := f.applySnapshotLocked(rec.Snapshot)
		f.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: shard %s snapshot recovery: %w", f.rng, err)
		}
	}
	return f.replayRecords(rec.Records)
}

// Range implements GatewayShard.
func (f *Frontend) Range() ShardRange { return f.rng }

// Workers returns the effective build worker pool size.
func (f *Frontend) Workers() int { return f.workers }

// Round returns the upcoming round as of the last coordinator push.
func (f *Frontend) Round() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.round
}

// Epoch returns the topology epoch the shard last adopted.
func (f *Frontend) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Plan returns the current chain-selection plan (nil before the chain
// count is known).
func (f *Frontend) Plan() *chainsel.Plan {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan
}

// SetRound force-sets the upcoming round, used when a shard process
// (re)joins a deployment whose round counter is past 1.
func (f *Frontend) SetRound(round uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.round = round
	if round > 0 {
		f.collected = round - 1
	}
}

// SetParams installs a parameter snapshot outside the round flow —
// the init path for a shard process that must serve clients before
// its first BeginRound.
func (f *Frontend) SetParams(rho uint64, cur, next []mix.Params, dead []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.params = newRoundParams(rho, cur, next, dead)
}

// ChainParams implements client.ParamsSource from the last pushed
// snapshot, so a gateway shard answers parameter queries without a
// coordinator round trip.
func (f *Frontend) ChainParams(chain int, round uint64) (mix.Params, error) {
	f.mu.Lock()
	p := f.params
	f.mu.Unlock()
	if p == nil {
		return mix.Params{}, fmt.Errorf("core: shard %s has no round parameters yet", f.rng)
	}
	return p.ChainParams(chain, round)
}

// adoptLocked installs the plan for an epoch; see Rebalance. Callers
// hold f.mu.
func (f *Frontend) adoptLocked(epoch uint64, numChains int) error {
	plan, err := chainsel.NewPlan(numChains)
	if err != nil {
		return fmt.Errorf("core: shard %s plan for epoch %d: %w", f.rng, epoch, err)
	}
	f.plan = plan
	f.epoch = epoch
	// External submissions were built against the old chains' keys;
	// resubmitting them under the new epoch would get their honest
	// owners blamed (see recover.go).
	f.externals = make(map[string]*externalUser)
	return nil
}

// Rebalance implements GatewayShard: it installs the new epoch's
// deterministic chain-selection plan, re-derives every owned user's
// chain assignments and discards banked covers and stored external
// submissions (all keyed to the old chains' keys).
func (f *Frontend) Rebalance(epoch uint64, numChains int) error {
	f.mu.Lock()
	if err := f.adoptLocked(epoch, numChains); err != nil {
		f.mu.Unlock()
		return err
	}
	plan := f.plan
	f.st.Append(opWatermark, encodeWatermark(watermark{
		round: f.round, epoch: epoch, numChains: numChains, collected: f.collected,
	}))
	f.mu.Unlock()

	for i := f.rng.Lo; i < f.rng.Hi; i++ {
		sh := &f.reg.shards[i]
		sh.mu.Lock()
		for _, ru := range sh.users {
			if ru.removed || ru.u == nil {
				continue
			}
			ru.cover = nil
			ru.coverRound = 0
			ru.built = nil
			ru.u.Rebalance(plan)
		}
		sh.mu.Unlock()
	}
	return nil
}

// NewUser creates and registers a user owned by this shard; with a
// partial range, key generation repeats until the identity hashes
// into it (the network-wide operation is: ask the owning gateway).
func (f *Frontend) NewUser() *client.User {
	f.mu.Lock()
	plan := f.plan
	f.mu.Unlock()
	if plan == nil {
		return nil
	}
	for {
		u := client.NewUser(f.scheme, plan)
		if !f.rng.Owns(u.Mailbox()) {
			continue
		}
		f.reg.insert(string(u.Mailbox()), &registeredUser{u: u, online: true})
		return u
	}
}

// AddUser registers an existing in-process user; it must hash into
// this shard's range.
func (f *Frontend) AddUser(u *client.User) error {
	if !f.rng.Owns(u.Mailbox()) {
		return fmt.Errorf("core: user %x hashes to shard %d outside range %s",
			u.Mailbox()[:4], OwnerShard(u.Mailbox()), f.rng)
	}
	f.reg.insert(string(u.Mailbox()), &registeredUser{u: u, online: true})
	return nil
}

// Register records a network-transport user's mailbox identifier in
// the registry: she counts toward the user base and may submit
// externally, but her onions are built client-side, so the entry
// holds no client state. Banned identifiers are refused.
func (f *Frontend) Register(mailboxID []byte) error {
	key := string(mailboxID)
	if !f.rng.Owns(mailboxID) {
		return fmt.Errorf("core: mailbox hashes to shard %d outside range %s",
			OwnerShard(mailboxID), f.rng)
	}
	f.mu.Lock()
	banned := f.banned[key]
	f.mu.Unlock()
	if banned {
		return fmt.Errorf("core: user was removed for misbehaviour; registration refused")
	}
	f.reg.insert(key, &registeredUser{})
	// Appended but not synced: the registration becomes durable at the
	// next sync point (the user's first submission at the latest). A
	// crash before then loses only the registration, which the client
	// retries idempotently.
	f.st.Append(opRegister, mailboxID)
	return nil
}

// NumUsers returns the number of registered, non-removed users.
func (f *Frontend) NumUsers() int { return f.reg.countActive() }

// SetOnline marks an in-process user online or offline; see
// Network.SetOnline for the churn semantics.
func (f *Frontend) SetOnline(u *client.User, online bool) {
	f.reg.update(string(u.Mailbox()), func(ru *registeredUser) {
		if ru.u == nil {
			return
		}
		if online && !ru.online && ru.coversUsed {
			ru.u.EndAllConversations()
			ru.coversUsed = false
		}
		ru.online = online
	})
}

// IsRemoved reports whether the user was removed for misbehaviour.
func (f *Frontend) IsRemoved(u *client.User) bool {
	removed := false
	ok := f.reg.view(string(u.Mailbox()), func(ru *registeredUser) {
		removed = ru.removed
	})
	return ok && removed
}

// Fetch downloads an in-process user's mailbox for a round.
func (f *Frontend) Fetch(u *client.User, round uint64) [][]byte {
	return f.boxes.Fetch(round, u.Mailbox())
}

// FetchMailbox downloads a mailbox by identifier.
func (f *Frontend) FetchMailbox(round uint64, mailboxID []byte) [][]byte {
	return f.boxes.Fetch(round, mailboxID)
}

// AckMailbox prunes a mailbox's messages for a round after the owner
// confirmed receipt, returning how many were removed. Appended but
// not synced: losing an ack to a crash merely redelivers — which the
// at-least-once contract allows and client-side dedup absorbs.
func (f *Frontend) AckMailbox(round uint64, mailboxID []byte) int {
	n := f.boxes.Ack(round, mailboxID)
	if n > 0 {
		f.st.Append(opAck, encodeAck(round, mailboxID))
	}
	return n
}

// PruneBefore discards mailbox state older than the given round.
func (f *Frontend) PruneBefore(round uint64) {
	f.boxes.PruneBefore(round)
	f.st.Append(opPrune, appendUvarint(nil, round))
}

// Close releases the shard's durability engine, syncing outstanding
// records. The frontend itself holds no other external resources.
func (f *Frontend) Close() error { return f.st.Close() }

// StrandedError reports whether the mailbox's user was stranded in
// the given executed round; see recover.go.
func (f *Frontend) StrandedError(round uint64, mailboxID []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stranded[round][string(mailboxID)] {
		return fmt.Errorf("core: round %d: %w", round, ErrRoundRetry)
	}
	return nil
}

// BeginRound implements GatewayShard: it adopts the pushed epoch and
// parameters, fans onion building out over the owned registry shards,
// folds collected external traffic into the batches and closes the
// round's submission window.
func (f *Frontend) BeginRound(br *BeginRound) (*ShardBuild, error) {
	defer func(t0 time.Time) { obsShardBuildSeconds.ObserveDuration(time.Since(t0)) }(time.Now())
	f.mu.Lock()
	if f.plan == nil || f.epoch != br.Epoch || f.plan.NumChains != br.NumChains {
		// A shard that missed (or predates) the epoch broadcast adopts
		// it here: the plan is deterministic in the chain count, so no
		// separate state transfer is needed. Already-installed epochs
		// are a no-op.
		if err := f.adoptLocked(br.Epoch, br.NumChains); err != nil {
			f.mu.Unlock()
			return nil, err
		}
		plan := f.plan
		f.mu.Unlock()
		// Users still carry the old plan; rebalance them before
		// building (mirrors Rebalance, which callers normally invoke
		// first).
		for i := f.rng.Lo; i < f.rng.Hi; i++ {
			sh := &f.reg.shards[i]
			sh.mu.Lock()
			for _, ru := range sh.users {
				if !ru.removed && ru.u != nil {
					ru.cover = nil
					ru.coverRound = 0
					ru.built = nil
					ru.u.Rebalance(plan)
				}
			}
			sh.mu.Unlock()
		}
		f.mu.Lock()
	}
	f.params = newRoundParams(br.Round, br.Cur, br.Next, br.Dead)
	f.round = br.Round
	params := f.params
	f.mu.Unlock()

	build, err := f.buildBatches(br.Round, params, br.NumChains, params.dead)
	if err != nil {
		return nil, err
	}

	f.mu.Lock()
	build.Covered += f.collectExternalsLocked(br.Round, build.Batches)
	f.mu.Unlock()
	return build, nil
}

// FinishRound implements GatewayShard: deliver the routed mailbox
// messages, remove and ban the convicted, record the stranded, adopt
// the next round's parameters. The round commit is one durability
// point: the deliveries, bans and advanced watermark are logged and
// synced together, so a crash either shows the round fully finished
// or not finished at all — never half.
func (f *Frontend) FinishRound(fr *FinishRound) (FinishStats, error) {
	defer func(t0 time.Time) { obsShardFinishSeconds.ObserveDuration(time.Since(t0)) }(time.Now())
	delivered, _, dropped := f.boxes.Deliver(fr.Round, fr.Delivered)
	for _, who := range fr.Removed {
		f.reg.markRemoved(who)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if len(fr.Delivered) > 0 {
		f.st.Append(opDeliver, encodeDeliver(fr.Round, fr.Delivered))
	}
	for _, who := range fr.Removed {
		// Ban at the transport layer too: external users have no
		// registry client state, and a removed user's banked traffic
		// must never run (§6.4).
		f.banned[who] = true
		delete(f.externals, who)
		f.st.Append(opBan, []byte(who))
	}
	if len(fr.Stranded) > 0 {
		set := make(map[string]bool, len(fr.Stranded))
		for _, who := range fr.Stranded {
			set[who] = true
		}
		f.stranded[fr.Round] = set
	}
	for r := range f.stranded {
		if r+strandedRetention <= fr.Round {
			delete(f.stranded, r)
		}
	}
	f.round = fr.Round + 1
	if len(fr.Cur) > 0 {
		f.params = newRoundParams(fr.Round+1, fr.Cur, fr.Next, fr.Dead)
	}
	f.st.Append(opWatermark, encodeWatermark(watermark{
		round: f.round, epoch: fr.Epoch, numChains: fr.NumChains, collected: f.collected,
	}))
	var err error
	if f.sinceSnap++; f.sinceSnap >= f.snapshotEvery {
		// Compact: the snapshot covers everything logged so far, so
		// replay cost and disk use stay bounded by the snapshot
		// cadence rather than deployment lifetime. Snapshot is
		// internally durable (tmp+fsync+rename).
		if err = f.st.Snapshot(f.encodeSnapshotLocked()); err == nil {
			f.sinceSnap = 0
		}
	} else {
		err = f.st.Sync()
	}
	if err != nil {
		return FinishStats{}, fmt.Errorf("core: shard %s round %d commit: %w", f.rng, fr.Round, err)
	}
	return FinishStats{Delivered: delivered, Dropped: dropped}, nil
}

// AbortRound implements GatewayShard: the round failed after its
// submission window closed and will be retried, so external users
// must be able to resubmit for it.
func (f *Frontend) AbortRound(round uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.collected >= round {
		f.collected = round - 1
	}
}

// buildAcc is one build worker's private accumulator: per-chain
// batches plus bookkeeping counters. Workers never share
// accumulators, so the build fan-out appends without synchronisation.
type buildAcc struct {
	batches []ChainBatch
	covered int
	// skipped are users who could not participate this round because
	// one of their ℓ chains is dead (failed to announce keys).
	skipped []string
	err     error
}

// buildBatches fans user onion building out over the worker pool.
// Workers claim owned registry shards from an atomic cursor and build
// every non-removed user in a claimed shard under that shard's lock:
// online users build fresh messages and bank next-round covers,
// offline users spend their banked covers exactly once (§5.3.3). The
// worker-local per-chain slices are then merged into one batch per
// chain.
func (f *Frontend) buildBatches(rho uint64, src client.ParamsSource, numChains int, dead map[int]bool) (*ShardBuild, error) {
	workers := f.workers
	accs := make([]buildAcc, workers)
	cursor := atomic.Int64{}
	cursor.Store(int64(f.rng.Lo))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(acc *buildAcc) {
			defer wg.Done()
			acc.batches = make([]ChainBatch, numChains)
			for {
				i := int(cursor.Add(1)) - 1
				if i >= f.rng.Hi {
					return
				}
				if err := f.buildShard(&f.reg.shards[i], rho, src, acc, dead); err != nil {
					acc.err = err
					return
				}
			}
		}(&accs[w])
	}
	wg.Wait()

	out := &ShardBuild{}
	for w := range accs {
		if accs[w].err != nil {
			return nil, accs[w].err
		}
		out.Covered += accs[w].covered
		out.Skipped = append(out.Skipped, accs[w].skipped...)
	}
	out.Batches = make([]ChainBatch, numChains)
	for c := range out.Batches {
		total := 0
		for w := range accs {
			total += len(accs[w].batches[c].Subs)
		}
		out.Batches[c].Subs = make([]onion.Submission, 0, total)
		out.Batches[c].Submitters = make([]string, 0, total)
		for w := range accs {
			out.Batches[c].Subs = append(out.Batches[c].Subs, accs[w].batches[c].Subs...)
			out.Batches[c].Submitters = append(out.Batches[c].Submitters, accs[w].batches[c].Submitters...)
		}
	}
	return out, nil
}

// buildShard builds one registry shard's users into the worker's
// accumulator. The shard lock is held for the duration, so presence
// changes and conversation mutations for these users serialise
// against the build — and against nothing else. Users with a dead
// chain among their ℓ chains cannot build a valid round (the wire
// pattern requires all ℓ messages) and are skipped as stranded; their
// banked covers stay banked. Registry entries without client state
// (network-transport registrations) build nothing here — their onions
// arrive through SubmitExternal.
func (f *Frontend) buildShard(sh *userShard, rho uint64, src client.ParamsSource, acc *buildAcc, dead map[int]bool) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for key, ru := range sh.users {
		if ru.removed || ru.u == nil {
			continue
		}
		if len(dead) > 0 {
			onDead := false
			for _, c := range ru.u.Chains() {
				if dead[c] {
					onDead = true
					break
				}
			}
			if onDead {
				if ru.online {
					acc.skipped = append(acc.skipped, key)
				}
				continue
			}
		}
		if ru.online {
			if ru.built == nil || ru.builtRound != rho {
				out, err := ru.u.BuildRound(rho, src)
				if err != nil {
					return fmt.Errorf("core: user build failed: %w", err)
				}
				ru.built, ru.builtRound = out, rho
			}
			for _, cm := range ru.built.Current {
				acc.batches[cm.Chain].add(cm.Sub, key)
			}
			ru.cover = ru.built.Cover
			ru.coverRound = rho + 1
			continue
		}
		if ru.cover != nil && ru.coverRound == rho {
			for _, cm := range ru.cover {
				acc.batches[cm.Chain].add(cm.Sub, key)
			}
			ru.cover = nil
			ru.coversUsed = true
			acc.covered++
		}
	}
	return nil
}

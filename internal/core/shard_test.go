package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/client"
)

// twoShardConfig returns a config whose front end is split across two
// in-process gateway shards at the midpoint of the registry space.
func twoShardConfig(t testing.TB, servers, k int) (Config, *Frontend, *Frontend) {
	t.Helper()
	feA, err := NewFrontend(FrontendConfig{Range: ShardRange{Lo: 0, Hi: 32}, MailboxServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	feB, err := NewFrontend(FrontendConfig{Range: ShardRange{Lo: 32, Hi: 64}, MailboxServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		NumServers:          servers,
		ChainLengthOverride: k,
		Seed:                []byte("test-beacon"),
		MailboxServers:      2,
		Shards:              []GatewayShard{feA, feB},
	}, feA, feB
}

// sortedMailbox canonicalises one round's mailbox contents: delivery
// order varies with worker scheduling and shard merge order, the set
// of messages must not.
func sortedMailbox(msgs [][]byte) [][]byte {
	out := make([][]byte, len(msgs))
	copy(out, msgs)
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}

// TestShardedRoundParity runs the same user population through a
// monolithic network and a two-shard network, round for round, and
// requires byte-identical mailbox contents. Mailbox seals are
// deterministic (static conversation keys, round-derived nonces), so
// any divergence means the sharded round protocol dropped, duplicated
// or rerouted traffic relative to the monolith.
func TestShardedRoundParity(t *testing.T) {
	mono := testNetwork(t, 6, 3)
	shardedCfg, _, _ := twoShardConfig(t, 6, 3)
	sharded, err := NewNetwork(shardedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if mono.NumChains() != sharded.NumChains() {
		t.Fatalf("chain counts differ: %d vs %d", mono.NumChains(), sharded.NumChains())
	}

	// The same user objects are registered with both networks; each
	// network holds its own registry entry (covers, online state), the
	// client-side keys are shared.
	users := make([]*client.User, 8)
	for i := range users {
		u := mono.NewUser()
		users[i] = u
		fe := sharded.frontendFor(u.Mailbox())
		if fe == nil {
			t.Fatal("no owning frontend")
		}
		if err := fe.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	// Three conversing pairs, two idle users.
	for i := 0; i+1 < 6; i += 2 {
		a, b := users[i], users[i+1]
		if err := a.StartConversation(b.PublicKey()); err != nil {
			t.Fatal(err)
		}
		if err := b.StartConversation(a.PublicKey()); err != nil {
			t.Fatal(err)
		}
	}

	for round := 1; round <= 3; round++ {
		queue := func() {
			for i := 0; i < 6; i++ {
				if err := users[i].QueueMessage([]byte(fmt.Sprintf("round %d from %d", round, i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Each network's build drains the outbox, so the same bodies
		// are queued before each run.
		queue()
		repMono := runRound(t, mono)
		queue()
		repSharded := runRound(t, sharded)

		if repMono.Round != repSharded.Round {
			t.Fatalf("round %d: numbers diverged: %d vs %d", round, repMono.Round, repSharded.Round)
		}
		if repMono.Delivered != repSharded.Delivered {
			t.Fatalf("round %d: delivered %d (monolith) vs %d (sharded)", round, repMono.Delivered, repSharded.Delivered)
		}
		if len(repSharded.DeadShards) != 0 {
			t.Fatalf("round %d: healthy shards reported dead: %v", round, repSharded.DeadShards)
		}
		for i, u := range users {
			m := sortedMailbox(mono.Fetch(u, repMono.Round))
			s := sortedMailbox(sharded.Fetch(u, repSharded.Round))
			if len(m) != len(s) {
				t.Fatalf("round %d user %d: %d messages (monolith) vs %d (sharded)", round, i, len(m), len(s))
			}
			for j := range m {
				if !bytes.Equal(m[j], s[j]) {
					t.Fatalf("round %d user %d: mailbox message %d differs", round, i, j)
				}
			}
		}
	}
}

// flakyShard wraps an in-process Frontend with switchable failures at
// the two coordinator→shard protocol crossings, standing in for a
// gateway shard process that died mid-round.
type flakyShard struct {
	*Frontend
	failBegin  bool
	failFinish bool
}

func (s *flakyShard) BeginRound(br *BeginRound) (*ShardBuild, error) {
	if s.failBegin {
		return nil, errors.New("injected: shard down at begin")
	}
	return s.Frontend.BeginRound(br)
}

func (s *flakyShard) FinishRound(fr *FinishRound) (FinishStats, error) {
	if s.failFinish {
		return FinishStats{}, errors.New("injected: shard down at finish")
	}
	return s.Frontend.FinishRound(fr)
}

// TestDeadGatewayShardStrandsOnlyItsUsers kills one of two gateway
// shards — first at the round's begin crossing, then at the finish
// crossing — and requires the round to complete for the other shard's
// users while only the dead shard's users miss it.
func TestDeadGatewayShardStrandsOnlyItsUsers(t *testing.T) {
	cfg, feA, feB := twoShardConfig(t, 6, 3)
	flaky := &flakyShard{Frontend: feA}
	cfg.Shards = []GatewayShard{flaky, feB}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// One conversing pair per shard, so every round has an expected
	// delivery on each side and no cross-shard dependence.
	newPair := func(fe *Frontend) (*client.User, *client.User) {
		a, b := fe.NewUser(), fe.NewUser()
		if a == nil || b == nil {
			t.Fatal("frontend refused users")
		}
		if err := a.StartConversation(b.PublicKey()); err != nil {
			t.Fatal(err)
		}
		if err := b.StartConversation(a.PublicKey()); err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	a1, a2 := newPair(feA)
	b1, b2 := newPair(feB)
	queueAll := func(round int) {
		for _, u := range []*client.User{a1, a2, b1, b2} {
			if err := u.QueueMessage([]byte(fmt.Sprintf("r%d", round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	receives := func(fe *Frontend, u *client.User, round uint64, body string) bool {
		recv, bad := u.OpenMailbox(round, fe.Fetch(u, round))
		if bad != 0 {
			t.Fatalf("%d undecryptable messages", bad)
		}
		for _, r := range recv {
			if r.FromPartner && string(r.Body) == body {
				return true
			}
		}
		return false
	}

	// Round 1: healthy baseline.
	queueAll(1)
	rep := runRound(t, n)
	if len(rep.DeadShards) != 0 {
		t.Fatalf("healthy round reported dead shards %v", rep.DeadShards)
	}
	if !receives(feA, a2, rep.Round, "r1") || !receives(feB, b2, rep.Round, "r1") {
		t.Fatal("healthy round did not deliver on both shards")
	}

	// Round 2: shard A dead at begin. Its users contribute nothing and
	// receive nothing; shard B's round must complete untouched.
	flaky.failBegin = true
	queueAll(2)
	rep = runRound(t, n)
	if len(rep.DeadShards) != 1 || rep.DeadShards[0] != 0 {
		t.Fatalf("dead shards = %v, want [0]", rep.DeadShards)
	}
	if got := feA.Fetch(a2, rep.Round); len(got) != 0 {
		t.Fatalf("dead shard's user received %d messages", len(got))
	}
	if !receives(feB, b2, rep.Round, "r2") {
		t.Fatal("surviving shard's user missed her message")
	}
	if rep.LostDeliveries != 0 {
		t.Fatalf("no traffic was routed to the dead shard, yet %d deliveries lost", rep.LostDeliveries)
	}

	// Round 3: shard A back. The frontend missed round 2 entirely and
	// must resynchronise from the begin broadcast alone. "r2" sat in
	// the client outbox while the shard was down, so it — not "r3" —
	// is what this round delivers: a begin-dead shard defers its
	// users' traffic, it does not lose it.
	flaky.failBegin = false
	queueAll(3)
	rep = runRound(t, n)
	if len(rep.DeadShards) != 0 {
		t.Fatalf("healed round reported dead shards %v", rep.DeadShards)
	}
	if !receives(feA, a2, rep.Round, "r2") || !receives(feB, b2, rep.Round, "r3") {
		t.Fatal("healed round did not deliver on both shards")
	}

	// Round 4: shard A dies at the finish crossing instead — after its
	// users' traffic ("r3", next in the outbox queue) entered the mix.
	// Their deliveries are lost with the shard (mailbox storage is not
	// replicated) and counted.
	flaky.failFinish = true
	queueAll(4)
	rep = runRound(t, n)
	if len(rep.DeadShards) != 1 || rep.DeadShards[0] != 0 {
		t.Fatalf("dead shards = %v, want [0]", rep.DeadShards)
	}
	if rep.LostDeliveries == 0 {
		t.Fatal("shard died holding undelivered mailbox messages, none counted lost")
	}
	if got := feA.Fetch(a2, rep.Round); len(got) != 0 {
		t.Fatalf("dead shard's user received %d messages", len(got))
	}
	if !receives(feB, b2, rep.Round, "r4") {
		t.Fatal("surviving shard's user missed her message")
	}

	// Round 5: recovery from a missed finish. "r3" went down with the
	// shard's round-4 delivery, so the queue resumes at "r4".
	flaky.failFinish = false
	queueAll(5)
	rep = runRound(t, n)
	if len(rep.DeadShards) != 0 {
		t.Fatalf("healed round reported dead shards %v", rep.DeadShards)
	}
	if !receives(feA, a2, rep.Round, "r4") || !receives(feB, b2, rep.Round, "r5") {
		t.Fatal("healed round did not deliver on both shards")
	}
}

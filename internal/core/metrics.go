package core

import (
	"repro/internal/obs"
)

// Coordinator- and gateway-side observability. All metrics live in
// the process-wide obs.Default registry; which subset is non-zero
// depends on the role the process runs (a coordinator executes
// rounds, a gateway shard builds and finishes them). Counters are
// created once here and recorded with atomic adds only — nothing on
// the round path locks or allocates for metrics.
var (
	// Round outcome counters, folded from each executed round's
	// RoundReport (see recordRoundReport). Names mirror the report
	// fields the paper's evaluation cares about.
	obsRounds         = obs.GetOrCreateCounter("xrd_rounds_total")
	obsDelivered      = obs.GetOrCreateCounter("xrd_round_delivered_total")
	obsDroppedInner   = obs.GetOrCreateCounter("xrd_round_dropped_inner_total")
	obsMailboxDropped = obs.GetOrCreateCounter("xrd_round_mailbox_dropped_total")
	obsDeduped        = obs.GetOrCreateCounter("xrd_round_deduped_submissions_total")
	obsLostDeliveries = obs.GetOrCreateCounter("xrd_round_lost_deliveries_total")
	obsStranded       = obs.GetOrCreateCounter("xrd_round_stranded_total")
	obsHaltedChains   = obs.GetOrCreateCounter("xrd_round_halted_chains_total")
	obsBlameRounds    = obs.GetOrCreateCounter("xrd_round_blame_rounds_total")
	obsOfflineCovered = obs.GetOrCreateCounter("xrd_round_offline_covered_total")

	// Gateway-shard build/finish timings — the distributed halves of
	// the round a coordinator-side trace cannot see from inside a
	// remote gateway process.
	obsShardBuildSeconds  = obs.GetOrCreateHistogram("xrd_shard_build_seconds")
	obsShardFinishSeconds = obs.GetOrCreateHistogram("xrd_shard_finish_seconds")
)

// recordRoundReport folds one executed round's report into the
// counters. Called once per completed round on the coordinator, after
// the report is final.
func recordRoundReport(rep *RoundReport) {
	obsRounds.Inc()
	obsDelivered.Add(uint64(rep.Delivered))
	obsDroppedInner.Add(uint64(rep.DroppedInner))
	obsMailboxDropped.Add(uint64(rep.MailboxDropped))
	obsDeduped.Add(uint64(rep.DedupedSubmissions))
	obsLostDeliveries.Add(uint64(rep.LostDeliveries))
	obsStranded.Add(uint64(len(rep.Stranded)))
	obsHaltedChains.Add(uint64(len(rep.HaltedChains)))
	obsBlameRounds.Add(uint64(rep.BlameRounds))
	obsOfflineCovered.Add(uint64(rep.OfflineCovered))
}

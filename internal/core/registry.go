package core

import (
	"sort"
	"sync"

	"repro/internal/client"
)

// numShards is the number of registry shards. It is a power of two so
// the shard index is a cheap mask of the mailbox hash; 64 keeps lock
// contention negligible for any worker-pool size the round pipeline
// will realistically run with, while staying small enough that the
// per-shard maps do not dominate memory for tiny test deployments.
const numShards = 64

// registry is the sharded user registry. Users are distributed over
// shards by a hash of their mailbox identifier; each shard has its own
// lock, so registrations, presence changes and the round pipeline's
// build workers contend only within a shard, never globally.
//
// Locking rule: a shard's mutex guards every registeredUser stored in
// it, including the embedded *client.User's conversation state. Core
// never reads or mutates a registered user without holding the owning
// shard's lock, and the round pipeline assigns whole shards to build
// workers so each user is only ever touched by one goroutine at a
// time.
type registry struct {
	shards [numShards]userShard
}

// userShard is one lock domain of the registry.
type userShard struct {
	mu    sync.RWMutex
	users map[string]*registeredUser
}

// registeredUser is the network's bookkeeping for one in-process
// user. All fields are guarded by the owning shard's mutex.
type registeredUser struct {
	u       *client.User
	online  bool
	removed bool
	// cover holds the covers submitted last round, usable exactly in
	// round coverRound if the user is offline (§5.3.3).
	cover      []client.ChainMessage
	coverRound uint64
	// built is the user's most recent round output and the round it
	// was built for, reused verbatim when the coordinator re-begins
	// the same round: a failed round retried under its old number, or
	// a pipelined preparation that was discarded and re-requested. A
	// user's outbox drains at build time, so rebuilding would lose
	// queued bodies; reuse keeps the resubmission byte-identical.
	// Cleared on Rebalance — an epoch re-formation invalidates the
	// onions — whereupon client.User restores the drained bodies.
	built      *client.RoundOutput
	builtRound uint64
	// coversUsed records that the covers ran while the user was away:
	// the KindOffline signal went out and the partner reverted to
	// loopbacks, so on reconnection the user's conversation is over
	// and must be re-initiated out-of-band (§5.3.3: "this could be
	// used to end conversations as well").
	coversUsed bool
}

// newRegistry returns an empty registry with all shards initialised.
func newRegistry() *registry {
	r := &registry{}
	for i := range r.shards {
		r.shards[i].users = make(map[string]*registeredUser)
	}
	return r
}

// shardIndex routes a mailbox identifier to its shard with FNV-1a.
// Mailbox identifiers are compressed group points and thus already
// well distributed, but hashing keeps the registry correct for any
// identifier scheme the transport layer might use.
func shardIndex(key string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h & (numShards - 1))
}

// shardOf returns the shard owning a mailbox identifier.
func (r *registry) shardOf(key string) *userShard {
	return &r.shards[shardIndex(key)]
}

// insert registers a user under her mailbox identifier.
func (r *registry) insert(key string, ru *registeredUser) {
	sh := r.shardOf(key)
	sh.mu.Lock()
	sh.users[key] = ru
	sh.mu.Unlock()
}

// update runs fn on the registered user under the owning shard's write
// lock; it is a no-op for unknown identifiers.
func (r *registry) update(key string, fn func(*registeredUser)) {
	sh := r.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ru, ok := sh.users[key]; ok {
		fn(ru)
	}
}

// view runs fn on the registered user under the owning shard's read
// lock and reports whether the user exists.
func (r *registry) view(key string, fn func(*registeredUser)) bool {
	sh := r.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ru, ok := sh.users[key]
	if ok {
		fn(ru)
	}
	return ok
}

// markRemoved convicts a user, excluding her from future rounds
// (§6.4). It touches only the owning shard.
func (r *registry) markRemoved(key string) {
	r.update(key, func(ru *registeredUser) { ru.removed = true })
}

// transportKeys returns the mailbox identifiers of every non-removed
// network-transport registration (entries without client state) in
// the given range, sorted — the registration set a durable snapshot
// persists. In-process users carry live key material that cannot be
// serialised and are excluded by design.
func (r *registry) transportKeys(rng ShardRange) []string {
	var out []string
	for i := rng.Lo; i < rng.Hi; i++ {
		sh := &r.shards[i]
		sh.mu.RLock()
		for key, ru := range sh.users {
			if ru.u == nil && !ru.removed {
				out = append(out, key)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// countActive returns the number of registered, non-removed users.
func (r *registry) countActive() int {
	total := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, ru := range sh.users {
			if !ru.removed {
				total++
			}
		}
		sh.mu.RUnlock()
	}
	return total
}

package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/store"
)

// Crash-recovery tests: a gateway shard process SIGKILLed at the
// protocol's interesting points — after a submission was acknowledged,
// after a round delivered, after an ack — and restarted over the same
// data directory must come back with exactly the state the durability
// contract promises: acked submissions still feed their round,
// unacked mail is redelivered verbatim (no loss, no duplication),
// acked mail stays gone, and the registry survives. Torn-write replay
// at arbitrary byte offsets is pinned separately in internal/store.

// swapShard is the network's view of a gateway shard whose backing
// process can be killed and restarted: the test replaces the live
// Frontend behind it, exactly as a restarted xrd-server process
// re-serves the same shard range from its recovered data directory.
type swapShard struct {
	mu sync.Mutex
	fe *Frontend
}

func (s *swapShard) cur() *Frontend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fe
}

func (s *swapShard) swap(fe *Frontend) {
	s.mu.Lock()
	s.fe = fe
	s.mu.Unlock()
}

func (s *swapShard) Range() ShardRange                              { return s.cur().Range() }
func (s *swapShard) BeginRound(br *BeginRound) (*ShardBuild, error) { return s.cur().BeginRound(br) }
func (s *swapShard) FinishRound(fr *FinishRound) (FinishStats, error) {
	return s.cur().FinishRound(fr)
}
func (s *swapShard) AbortRound(round uint64) { s.cur().AbortRound(round) }
func (s *swapShard) Rebalance(epoch uint64, numChains int) error {
	return s.cur().Rebalance(epoch, numChains)
}

// openDurable builds a frontend over the data directory, recovering
// whatever a previous incarnation persisted. SnapshotEvery 2 makes
// the test cross snapshot boundaries, so recovery exercises the
// snapshot+WAL-tail composition, not just raw replay.
func openDurable(t *testing.T, dir string) (*Frontend, *store.Durable) {
	t.Helper()
	st, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend(FrontendConfig{
		Range:          FullRange(),
		MailboxServers: 2,
		Store:          st,
		Recovered:      rec,
		SnapshotEvery:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fe, st
}

func TestCrashRecoveryExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	fe, st := openDurable(t, dir)
	shard := &swapShard{fe: fe}
	n, err := NewNetwork(Config{
		NumServers:          6,
		ChainLengthOverride: 3,
		Seed:                []byte("crash-beacon"),
		MailboxServers:      2,
		Shards:              []GatewayShard{shard},
	})
	if err != nil {
		t.Fatal(err)
	}

	// crash SIGKILLs the shard process (close without sync; writes
	// that were acknowledged are on disk, nothing else is promised)
	// and restarts it over the same directory.
	crash := func() {
		t.Helper()
		st.Crash()
		fe2, st2 := openDurable(t, dir)
		shard.swap(fe2)
		fe, st = fe2, st2
	}

	// Two external (transport-layer) users in conversation: externals
	// take the durable intake path, so their traffic is what a crash
	// must not lose.
	alice := client.NewUser(nil, n.Plan())
	bob := client.NewUser(nil, n.Plan())
	if err := alice.StartConversation(bob.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := bob.StartConversation(alice.PublicKey()); err != nil {
		t.Fatal(err)
	}
	submit := func(u *client.User, body string) *client.RoundOutput {
		t.Helper()
		if body != "" {
			if err := u.QueueMessage([]byte(body)); err != nil {
				t.Fatal(err)
			}
		}
		out, err := u.BuildRound(n.Round(), n)
		if err != nil {
			t.Fatal(err)
		}
		if err := shard.cur().SubmitExternal(string(u.Mailbox()), out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	countBody := func(u *client.User, round uint64, body string) int {
		t.Helper()
		recv, bad := u.OpenMailbox(round, shard.cur().FetchMailbox(round, u.Mailbox()))
		if bad != 0 {
			t.Fatalf("%d undecryptable messages in round %d", bad, round)
		}
		got := 0
		for _, r := range recv {
			if r.FromPartner && string(r.Body) == body {
				got++
			}
		}
		return got
	}

	// Registry state to carry across every crash below.
	for _, mb := range []string{"transport-user-1", "transport-user-2"} {
		if err := shard.cur().Register([]byte(mb)); err != nil {
			t.Fatal(err)
		}
	}

	// Round 1, healthy: delivered mail lands in bob's mailbox.
	submit(alice, "r1")
	submit(bob, "r1")
	rep1 := runRound(t, n)
	if got := countBody(bob, rep1.Round, "r1"); got != 1 {
		t.Fatalf("healthy round delivered %d copies", got)
	}
	preCrash := sortedMailbox(shard.cur().FetchMailbox(rep1.Round, bob.Mailbox()))

	// Crash after a delivered round: unacked mail must be redelivered
	// byte-identical — no loss, no duplication — and the registry must
	// still hold both transport users.
	crash()
	postCrash := sortedMailbox(shard.cur().FetchMailbox(rep1.Round, bob.Mailbox()))
	if len(postCrash) != len(preCrash) {
		t.Fatalf("recovered mailbox holds %d messages, had %d before the crash", len(postCrash), len(preCrash))
	}
	for i := range preCrash {
		if !bytes.Equal(preCrash[i], postCrash[i]) {
			t.Fatalf("recovered mailbox message %d differs from the original", i)
		}
	}
	if got := shard.cur().NumUsers(); got != 2 {
		t.Fatalf("registry recovered %d users, want 2", got)
	}

	// Ack, then crash again: acked mail must stay gone (the ack record
	// replays even though acks are not individually synced — a process
	// kill loses only unwritten state, not unsynced writes).
	if pruned := shard.cur().AckMailbox(rep1.Round, bob.Mailbox()); pruned == 0 {
		t.Fatal("ack pruned nothing")
	}
	crash()
	if left := shard.cur().FetchMailbox(rep1.Round, bob.Mailbox()); len(left) != 0 {
		t.Fatalf("acked mail resurrected by recovery: %d messages", len(left))
	}

	// Round 2: crash between the submission ack and the round — the
	// SubmitExternal durability point. The replayed submissions must
	// feed the round exactly once, and a client retry of the same
	// submission (its at-least-once move after losing the connection)
	// must be refused as the duplicate it is.
	out2 := submit(alice, "r2")
	submit(bob, "r2")
	crash()
	err = shard.cur().SubmitExternal(string(alice.Mailbox()), out2)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("retried submission after crash: err = %v, want duplicate rejection", err)
	}
	rep2 := runRound(t, n)
	if rep2.Delivered == 0 {
		t.Fatal("recovered submissions delivered nothing")
	}
	if got := countBody(bob, rep2.Round, "r2"); got != 1 {
		t.Fatalf("crash before the round: bob got %d copies of the acked submission", got)
	}

	// Round 3: the shard keeps serving rounds after all that — its
	// watermark, plan and snapshot chain are intact.
	submit(alice, "r3")
	submit(bob, "r3")
	rep3 := runRound(t, n)
	if got := countBody(bob, rep3.Round, "r3"); got != 1 {
		t.Fatalf("post-recovery round delivered %d copies", got)
	}
	if err := shard.cur().Close(); err != nil {
		t.Fatal(err)
	}
}

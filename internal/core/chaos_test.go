// Dirty-round scenario suite: drive a deployment whose mix positions
// live on real hop endpoints (loopback TLS) through injected
// failures — a hop process dying mid-mix, a peer slowed past the rpc
// deadlines, a partitioned gateway↔hop link, a byzantine false
// accusation, and back-to-back halts — and assert the §5.2.3/§6.4
// recovery story: the damaged round halts or strands instead of
// wedging, the responsible server is evicted, chains re-form over the
// survivors, delivery resumes within a round, and honest users are
// never blamed.
//
// The suite lives in package core_test so it can wire internal/rpc
// (which imports core) to internal/core.
package core_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/onion"
	"repro/internal/rpc"
)

// chaosFleet hosts mix positions on hop endpoints keyed by server
// identity — the in-test equivalent of a pool of `xrd-server -role
// mix` processes — with a shared fault injector on the dialing side.
// Identity keying is what lets re-formed chains find the survivors.
type chaosFleet struct {
	t           *testing.T
	inj         *faults.Injector
	callTimeout time.Duration
	mixTimeout  time.Duration

	mu      sync.Mutex
	servers map[int]*rpc.HopServer
	clients []*rpc.HopClient
}

func newChaosFleet(t *testing.T, n int, inj *faults.Injector) *chaosFleet {
	f := &chaosFleet{t: t, inj: inj, servers: make(map[int]*rpc.HopServer)}
	for i := 0; i < n; i++ {
		hs, err := rpc.NewHopServer("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		hs.Logf = func(string, ...any) {}
		f.servers[i] = hs
	}
	t.Cleanup(f.close)
	return f
}

func (f *chaosFleet) close() {
	f.mu.Lock()
	clients := f.clients
	f.clients = nil
	servers := f.servers
	f.servers = map[int]*rpc.HopServer{}
	f.mu.Unlock()
	for _, hc := range clients {
		hc.Close()
	}
	for _, hs := range servers {
		hs.Close()
	}
}

// kill terminates a hop endpoint for good — the process is gone, not
// partitioned; nothing will answer on its port again.
func (f *chaosFleet) kill(server int) {
	f.mu.Lock()
	hs := f.servers[server]
	delete(f.servers, server)
	f.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
}

// provider is the Config.HopForServer hookup: dial the endpoint owned
// by the server identity, label the connections "srv<id>" for the
// fault injector, and bind the position for the epoch.
func (f *chaosFleet) provider() func(uint64, int, int, int, group.Point) (mix.Hop, error) {
	return func(epoch uint64, server, chain, pos int, base group.Point) (mix.Hop, error) {
		f.mu.Lock()
		hs := f.servers[server]
		f.mu.Unlock()
		if hs == nil {
			return nil, fmt.Errorf("server %d is dead", server)
		}
		hc := rpc.DialHop(hs.Addr(), hs.ClientTLS())
		hc.SetConnWrapper(f.inj.Wrapper(fmt.Sprintf("srv%d", server)))
		if f.callTimeout > 0 {
			hc.CallTimeout = f.callTimeout
		}
		if f.mixTimeout > 0 {
			hc.MixTimeout = f.mixTimeout
		}
		if _, err := hc.InitEpoch(epoch, chain, pos, base); err != nil {
			hc.Close()
			return nil, err
		}
		f.mu.Lock()
		f.clients = append(f.clients, hc)
		f.mu.Unlock()
		return hc, nil
	}
}

// chaosEnv is what a scenario's per-round hooks act on.
type chaosEnv struct {
	t           *testing.T
	net         *core.Network
	fleet       *chaosFleet
	inj         *faults.Injector
	wantEvicted []int
}

// member resolves a chain position to the server identity currently
// occupying it — against the live topology, so hooks that run after a
// re-formation target the new chains.
func (e *chaosEnv) member(chain, pos int) int {
	return e.net.Topology().Chains[chain][pos]
}

// readConversation fetches and opens a user's mailbox for a round and
// returns the partner's conversation payload, if any.
func readConversation(u *client.User, n *core.Network, round uint64) string {
	recv, _ := u.OpenMailbox(round, n.Fetch(u, round))
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindConversation {
			return string(r.Body)
		}
	}
	return ""
}

func TestChaosScenarios(t *testing.T) {
	type scenario struct {
		name               string
		servers, chains, k int
		remote             bool
		callTimeout        time.Duration
		mixTimeout         time.Duration
		rounds             int
		// hooks run just before the given round executes (1-based).
		hooks map[int]func(*chaosEnv)
	}
	scenarios := []scenario{
		{
			// A hop process dies between the key announcement and the
			// mixing step: the chain halts with the position blamed,
			// the server is evicted, the chain re-forms over the
			// survivors (pulling in the spare), and the next round
			// delivers.
			name:    "hop death mid-mix",
			servers: 4, chains: 1, k: 3, remote: true, rounds: 3,
			hooks: map[int]func(*chaosEnv){
				2: func(e *chaosEnv) {
					s := e.member(0, 1)
					e.fleet.kill(s)
					e.wantEvicted = append(e.wantEvicted, s)
				},
			},
		},
		{
			// A peer answers slower than the rpc call deadline: every
			// exchange with it times out, which is indistinguishable
			// from a crash — same halt, same eviction, same recovery.
			name:    "slow peer past the rpc deadline",
			servers: 4, chains: 1, k: 3, remote: true, rounds: 3,
			callTimeout: 500 * time.Millisecond,
			mixTimeout:  2 * time.Second,
			hooks: map[int]func(*chaosEnv){
				2: func(e *chaosEnv) {
					s := e.member(0, 2)
					e.inj.Add(&faults.Rule{
						Op:     faults.Delay,
						Delay:  5 * time.Second,
						Target: fmt.Sprintf("srv%d", s),
					})
					e.wantEvicted = append(e.wantEvicted, s)
				},
			},
		},
		{
			// The gateway↔hop link partitions: existing connections
			// die and redials are refused while the rule is armed.
			name:    "partitioned gateway-hop link",
			servers: 4, chains: 1, k: 3, remote: true, rounds: 3,
			hooks: map[int]func(*chaosEnv){
				2: func(e *chaosEnv) {
					s := e.member(0, 0)
					e.inj.Add(&faults.Rule{
						Op:     faults.Partition,
						Target: fmt.Sprintf("srv%d", s),
					})
					e.wantEvicted = append(e.wantEvicted, s)
				},
			},
		},
		{
			// A byzantine server replays the blame protocol against an
			// honest submission. Blame step 4 convicts the accuser, the
			// chain halts leaking nothing, and — critically — no honest
			// user is ever blamed.
			name:    "byzantine false accusation",
			servers: 6, chains: 2, k: 3, remote: false, rounds: 3,
			hooks: map[int]func(*chaosEnv){
				2: func(e *chaosEnv) {
					e.wantEvicted = append(e.wantEvicted, e.member(0, 1))
					if err := e.net.CorruptServer(0, 1, &mix.Corruption{FalselyAccuse: []int{0}}); err != nil {
						e.t.Fatal(err)
					}
				},
			},
		},
		{
			// Two halts in back-to-back active rounds: the second kill
			// hits the already re-formed chain, forcing a second epoch.
			name:    "back-to-back halts",
			servers: 5, chains: 1, k: 3, remote: true, rounds: 5,
			hooks: map[int]func(*chaosEnv){
				2: func(e *chaosEnv) {
					s := e.member(0, 1)
					e.fleet.kill(s)
					e.wantEvicted = append(e.wantEvicted, s)
				},
				4: func(e *chaosEnv) {
					s := e.member(0, 0)
					e.fleet.kill(s)
					e.wantEvicted = append(e.wantEvicted, s)
				},
			},
		},
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			inj := faults.New(42)
			cfg := core.Config{
				NumServers:          sc.servers,
				NumChains:           sc.chains,
				ChainLengthOverride: sc.k,
				Seed:                []byte("chaos/" + sc.name),
				Recover:             true,
			}
			var fleet *chaosFleet
			if sc.remote {
				fleet = newChaosFleet(t, sc.servers, inj)
				fleet.callTimeout = sc.callTimeout
				fleet.mixTimeout = sc.mixTimeout
				cfg.HopForServer = fleet.provider()
			}
			net, err := core.NewNetwork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			alice, bob := net.NewUser(), net.NewUser()
			if err := alice.StartConversation(bob.PublicKey()); err != nil {
				t.Fatal(err)
			}
			if err := bob.StartConversation(alice.PublicKey()); err != nil {
				t.Fatal(err)
			}
			e := &chaosEnv{t: t, net: net, fleet: fleet, inj: inj}

			var evicted []int
			delivered := make(map[int]bool)
			firstHook := sc.rounds + 1
			for r := range sc.hooks {
				if r < firstHook {
					firstHook = r
				}
			}
			for round := 1; round <= sc.rounds; round++ {
				if hook := sc.hooks[round]; hook != nil {
					hook(e)
				}
				msg := fmt.Sprintf("%s r%d", sc.name, round)
				if err := alice.QueueMessage([]byte(msg)); err != nil {
					t.Fatal(err)
				}
				rep, err := net.RunRound()
				if rep == nil {
					t.Fatalf("round %d: no report (err=%v)", round, err)
				}
				// The invariant every scenario shares: honest users are
				// never blamed, whatever the servers or the network do.
				if len(rep.BlamedUsers) != 0 {
					t.Fatalf("round %d: honest users blamed: %v", round, rep.BlamedUsers)
				}
				evicted = append(evicted, rep.Evicted...)
				// Everyone reported stranded must get the deterministic
				// retry error, not a silent drop.
				for _, who := range rep.Stranded {
					if se := net.StrandedError(rep.Round, []byte(who)); !errors.Is(se, core.ErrRoundRetry) {
						t.Fatalf("round %d: stranded user got %v, want ErrRoundRetry", round, se)
					}
				}
				if readConversation(bob, net, rep.Round) == msg {
					delivered[round] = true
				} else if round < firstHook {
					t.Fatalf("round %d: delivery failed before any injected fault", round)
				}
			}

			// Delivery must resume within k rounds of the last
			// disruption; the tables are built so the final round is
			// exactly one round after it — well inside any k ≥ 1.
			if !delivered[sc.rounds] {
				t.Fatalf("delivery did not resume by round %d (delivered: %v)", sc.rounds, delivered)
			}
			// In a single-chain deployment the disrupted rounds cannot
			// have delivered — there was no healthy chain to ride.
			if sc.chains == 1 {
				for r := range sc.hooks {
					if delivered[r] {
						t.Fatalf("round %d delivered despite the injected fault", r)
					}
				}
			}
			for _, want := range e.wantEvicted {
				found := false
				for _, s := range evicted {
					if s == want {
						found = true
					}
				}
				if !found {
					t.Fatalf("server %d was not evicted (evicted: %v)", want, evicted)
				}
			}
			if net.Epoch() == 0 {
				t.Fatal("no epoch re-formation happened")
			}
		})
	}
}

// TestStrandedUsersGetRetryError is the regression test for the
// silent-drop bug: users whose traffic rode a halted chain must be
// reported stranded and get a deterministic ErrRoundRetry from
// StrandedError — and users on healthy chains must not.
func TestStrandedUsersGetRetryError(t *testing.T) {
	net, err := core.NewNetwork(core.Config{
		NumServers:          6,
		NumChains:           3,
		ChainLengthOverride: 3,
		Seed:                []byte("stranded-regression"),
	})
	if err != nil {
		t.Fatal(err)
	}
	users := make([]*client.User, 6)
	for i := range users {
		users[i] = net.NewUser()
	}
	// Halt the busiest chain with a server-side tamper; every
	// submitter to it is stranded, everyone else delivers. The chain is
	// picked from the users' actual (mailbox-derived, so per-run
	// random) selections — a fixed chain could draw no traffic at all.
	load := make([]int, 3)
	for _, u := range users {
		for _, c := range net.Plan().ChainsForUser(u.Mailbox()) {
			load[c]++
		}
	}
	victim := 0
	for c, n := range load {
		if n > load[victim] {
			victim = c
		}
	}
	if err := net.CorruptServer(victim, 1, &mix.Corruption{TamperPairs: [][2]int{{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	rep, err := net.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.HaltedChains) != 1 || rep.HaltedChains[0] != victim {
		t.Fatalf("chain %d did not halt: %+v", victim, rep)
	}
	if len(rep.Stranded) == 0 {
		t.Fatal("halted chain stranded nobody")
	}
	strandedSet := make(map[string]bool, len(rep.Stranded))
	for _, who := range rep.Stranded {
		strandedSet[who] = true
		if se := net.StrandedError(rep.Round, []byte(who)); !errors.Is(se, core.ErrRoundRetry) {
			t.Fatalf("stranded user got %v, want ErrRoundRetry", se)
		}
	}
	// A user with no chain-0 traffic must not carry the error.
	clean := false
	for _, u := range users {
		if !strandedSet[string(u.Mailbox())] {
			clean = true
			if se := net.StrandedError(rep.Round, u.Mailbox()); se != nil {
				t.Fatalf("unaffected user got %v", se)
			}
		}
	}
	if !clean {
		t.Skip("every user rode chain 0; tighten the topology seed")
	}
	// An unknown round has no stranded records at all.
	if se := net.StrandedError(rep.Round+100, users[0].Mailbox()); se != nil {
		t.Fatalf("future round reported stranded: %v", se)
	}
}

package obs

import (
	"sync"
	"time"
)

// Tracer records one trace per round: a small tree of timed spans —
// top-level phases (announce/build/verify/mix/deliver/finish) with
// per-chain and per-shard children — kept in a bounded ring of
// recent rounds for the admin server's /debug/rounds endpoint.
// Finishing a trace also feeds each phase duration into
// xrd_round_phase_seconds{phase=...} and the whole round into
// xrd_round_seconds, so scrape-side consumers (the loadgen report
// merge, the cost model) get aggregates without parsing traces.
//
// Tracing is per-phase, not per-event: a round produces tens of
// spans, so span bookkeeping takes a plain mutex on the round's
// trace and is nowhere near any hot path. Every method is nil-safe
// on its receiver, so code instruments unconditionally and a nil
// tracer (or a trace that was never started) costs one branch.
type Tracer struct {
	reg  *Registry
	keep int

	mu        sync.Mutex
	ring      []*RoundTrace // oldest first
	phaseHist map[string]*Histogram
	roundHist *Histogram
}

// NewTracer returns a tracer recording into reg and keeping the last
// keep round traces.
func NewTracer(reg *Registry, keep int) *Tracer {
	if keep < 1 {
		keep = 1
	}
	return &Tracer{reg: reg, keep: keep, phaseHist: make(map[string]*Histogram)}
}

// DefaultTracer records into the Default registry. Like the
// registry, one process is one role, so a process-global tracer
// matches the per-process admin endpoint.
var DefaultTracer = NewTracer(Default, 32)

// RoundTrace is one round's span tree, alive from StartRound to
// Finish. Methods are safe for concurrent use (chain goroutines add
// children concurrently) and nil-safe.
type RoundTrace struct {
	t     *Tracer
	round uint64
	epoch uint64
	start time.Time

	mu     sync.Mutex
	phases []*Span
	end    time.Time
}

// Span is one timed node in a round's trace tree.
type Span struct {
	rt       *RoundTrace
	name     string
	start    time.Time
	end      time.Time // zero while open
	children []*Span
}

// StartRound begins a new round trace. Safe on a nil tracer
// (returns nil, and every downstream call no-ops).
func (t *Tracer) StartRound(round, epoch uint64) *RoundTrace {
	if t == nil {
		return nil
	}
	return &RoundTrace{t: t, round: round, epoch: epoch, start: time.Now()}
}

// StartPhase opens a top-level phase span starting now.
func (rt *RoundTrace) StartPhase(name string) *Span {
	if rt == nil {
		return nil
	}
	sp := &Span{rt: rt, name: name, start: time.Now()}
	rt.mu.Lock()
	rt.phases = append(rt.phases, sp)
	rt.mu.Unlock()
	return sp
}

// AddPhase records a pre-measured top-level phase — for phases whose
// duration is derived rather than wall-clocked in place (the verify
// phase is the per-chain verification stage measured inside the mix
// section).
func (rt *RoundTrace) AddPhase(name string, start time.Time, d time.Duration) *Span {
	if rt == nil {
		return nil
	}
	sp := &Span{rt: rt, name: name, start: start, end: start.Add(d)}
	rt.mu.Lock()
	rt.phases = append(rt.phases, sp)
	rt.mu.Unlock()
	return sp
}

// StartChild opens a child span under sp starting now. Safe to call
// concurrently from multiple goroutines on the same parent.
func (sp *Span) StartChild(name string) *Span {
	if sp == nil {
		return nil
	}
	c := &Span{rt: sp.rt, name: name, start: time.Now()}
	sp.rt.mu.Lock()
	sp.children = append(sp.children, c)
	sp.rt.mu.Unlock()
	return c
}

// AddChild records a pre-measured child span under sp.
func (sp *Span) AddChild(name string, start time.Time, d time.Duration) *Span {
	if sp == nil {
		return nil
	}
	c := &Span{rt: sp.rt, name: name, start: start, end: start.Add(d)}
	sp.rt.mu.Lock()
	sp.children = append(sp.children, c)
	sp.rt.mu.Unlock()
	return c
}

// End closes the span now (idempotent).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.rt.mu.Lock()
	if sp.end.IsZero() {
		sp.end = time.Now()
	}
	sp.rt.mu.Unlock()
}

// Finish closes the trace: any still-open span ends now, the trace
// enters the tracer's recent-rounds ring, and each top-level phase
// duration is observed into the tracer's registry.
func (rt *RoundTrace) Finish() {
	if rt == nil {
		return
	}
	now := time.Now()
	rt.mu.Lock()
	rt.end = now
	var closeAll func(spans []*Span)
	closeAll = func(spans []*Span) {
		for _, sp := range spans {
			if sp.end.IsZero() {
				sp.end = now
			}
			closeAll(sp.children)
		}
	}
	closeAll(rt.phases)
	phases := make([]*Span, len(rt.phases))
	copy(phases, rt.phases)
	rt.mu.Unlock()

	t := rt.t
	t.mu.Lock()
	t.ring = append(t.ring, rt)
	if len(t.ring) > t.keep {
		t.ring = t.ring[len(t.ring)-t.keep:]
	}
	if t.roundHist == nil && t.reg != nil {
		t.roundHist = t.reg.Histogram("xrd_round_seconds")
	}
	roundHist := t.roundHist
	hists := make([]*Histogram, len(phases))
	if t.reg != nil {
		for i, sp := range phases {
			h, ok := t.phaseHist[sp.name]
			if !ok {
				h = t.reg.Histogram(`xrd_round_phase_seconds{phase="` + sp.name + `"}`)
				t.phaseHist[sp.name] = h
			}
			hists[i] = h
		}
	}
	t.mu.Unlock()

	if roundHist != nil {
		roundHist.ObserveDuration(now.Sub(rt.start))
	}
	for i, sp := range phases {
		if hists[i] != nil {
			hists[i].ObserveDuration(sp.end.Sub(sp.start))
		}
	}
}

// TraceSnapshot is the JSON shape of one finished round trace.
type TraceSnapshot struct {
	Round      uint64         `json:"round"`
	Epoch      uint64         `json:"epoch"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Phases     []SpanSnapshot `json:"phases"`
}

// SpanSnapshot is one span in a TraceSnapshot; offsets are relative
// to the trace start.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	OffsetMS   float64        `json:"offset_ms"`
	DurationMS float64        `json:"duration_ms"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Recent returns snapshots of the retained round traces, newest
// first.
func (t *Tracer) Recent() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ring := make([]*RoundTrace, len(t.ring))
	copy(ring, t.ring)
	t.mu.Unlock()

	out := make([]TraceSnapshot, 0, len(ring))
	for i := len(ring) - 1; i >= 0; i-- {
		out = append(out, ring[i].snapshot())
	}
	return out
}

func (rt *RoundTrace) snapshot() TraceSnapshot {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	snap := TraceSnapshot{
		Round:      rt.round,
		Epoch:      rt.epoch,
		Start:      rt.start,
		DurationMS: rt.end.Sub(rt.start).Seconds() * 1e3,
	}
	var walk func(spans []*Span) []SpanSnapshot
	walk = func(spans []*Span) []SpanSnapshot {
		if len(spans) == 0 {
			return nil
		}
		out := make([]SpanSnapshot, 0, len(spans))
		for _, sp := range spans {
			out = append(out, SpanSnapshot{
				Name:       sp.name,
				OffsetMS:   sp.start.Sub(rt.start).Seconds() * 1e3,
				DurationMS: sp.end.Sub(sp.start).Seconds() * 1e3,
				Children:   walk(sp.children),
			})
		}
		return out
	}
	snap.Phases = walk(rt.phases)
	return snap
}

package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is the /healthz payload: enough for an operator (or the
// deploy smoke test) to tell which process answered and where its
// round watermark stands. Role-specific fields are zero/omitted on
// roles they do not apply to.
type Health struct {
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
	// Round is the process's round watermark: the next round for the
	// coordinator and gateways, the last round staged for a mix hop.
	Round uint64 `json:"round"`
	// ShardLo/ShardHi report a gateway's registry shard range.
	ShardLo int `json:"shard_lo,omitempty"`
	ShardHi int `json:"shard_hi,omitempty"`
	// Chain/Position report a mix hop's current binding.
	Chain    int `json:"chain,omitempty"`
	Position int `json:"position,omitempty"`
	Users    int `json:"users,omitempty"`
	Chains   int `json:"chains,omitempty"`
}

// AdminConfig configures ServeAdmin. Zero fields fall back to the
// process-wide defaults.
type AdminConfig struct {
	// Registry backs /metrics; nil means Default.
	Registry *Registry
	// Tracer backs /debug/rounds; nil means DefaultTracer.
	Tracer *Tracer
	// Health backs /healthz; nil serves an empty Health.
	Health func() Health
}

// AdminServer is a running admin HTTP endpoint.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin starts a plain-HTTP admin server on addr serving:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       role, epoch, round watermark, shard range (JSON)
//	/debug/rounds  recent round traces (JSON, newest first)
//	/debug/pprof/  the standard pprof index, profiles and traces
//
// The pprof handlers are mounted on this server's private mux — not
// http.DefaultServeMux — so importing net/http/pprof's side effects
// is avoided and nothing is exposed except on the operator-chosen
// admin address. The admin port is unauthenticated plain HTTP by
// design (pprof and metrics are operator-only); bind it to loopback
// or a management network, never the public service address.
func ServeAdmin(addr string, cfg AdminConfig) (*AdminServer, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = Default
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = DefaultTracer
	}
	health := cfg.Health
	if health == nil {
		health = func() Health { return Health{} }
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(health())
	})
	mux.HandleFunc("/debug/rounds", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tracer.Recent())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen on %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler: mux,
		// No global read/write timeouts: /debug/pprof/profile and
		// /debug/pprof/trace legitimately stream for their ?seconds=
		// duration. Header reads are still bounded.
		ReadHeaderTimeout: 10 * time.Second,
	}
	s := &AdminServer{ln: ln, srv: srv}
	go srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with :0).
func (s *AdminServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the admin server down.
func (s *AdminServer) Close() error { return s.srv.Close() }

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines and
// asserts nothing is lost — the sharded-cell design must still be an
// exact counter. Run under -race this also proves Add is lock-free
// clean.
func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Set(10)
	g.Add(-3)
	g.Add(5)
	if got := g.Value(); got != 12 {
		t.Fatalf("gauge = %d, want 12", got)
	}
}

// TestHistogramConcurrent checks no observation is lost under
// concurrent Observe and that count/sum stay consistent.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines, perG = 8, 4000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 42))
			for i := 0; i < perG; i++ {
				h.ObserveDuration(time.Duration(rng.Int64N(int64(time.Second))))
			}
		}(uint64(g))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	if h.Sum() <= 0 {
		t.Fatalf("sum = %g, want > 0", h.Sum())
	}
}

// TestHistogramQuantileBounds feeds a known distribution (1..N
// microseconds, uniform, shuffled) and asserts every queried
// quantile's true value lies inside the returned bucket bounds, and
// that the bounds are tight (hi/lo <= 1.125, the octave/8 design
// width).
func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	const n = 10000
	vals := make([]time.Duration, n)
	for i := range vals {
		vals[i] = time.Duration(i+1) * time.Microsecond
	}
	rng := rand.New(rand.NewPCG(1, 2))
	rng.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		h.ObserveDuration(v)
	}

	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1.0} {
		lo, hi := h.Quantile(q)
		// True q-quantile of {1..n} µs: value with rank ceil(q*n).
		rank := int(q * n)
		if float64(rank) < q*n {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		truth := (time.Duration(rank) * time.Microsecond).Seconds()
		if truth < lo || truth > hi {
			t.Errorf("q=%g: true %g outside bucket [%g, %g]", q, truth, lo, hi)
		}
		if lo > 0 && hi/lo > 1.1251 {
			t.Errorf("q=%g: bucket [%g, %g] wider than 12.5%%", q, lo, hi)
		}
	}

	if lo, hi := NewHistogram().Quantile(0.5); lo != 0 || hi != 0 {
		t.Errorf("empty histogram quantile = [%g, %g], want [0, 0]", lo, hi)
	}
}

// TestHistogramBucketsContiguous asserts the log-linear bucket
// layout tiles the value space with no gaps or overlaps.
func TestHistogramBucketsContiguous(t *testing.T) {
	var prevHi uint64
	for i := 0; i < numHistBuckets; i++ {
		lo, hi := histBucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d: lo = %d, want %d (contiguous)", i, lo, prevHi)
		}
		if hi <= lo && i != numHistBuckets-1 {
			t.Fatalf("bucket %d: empty range [%d, %d)", i, lo, hi)
		}
		prevHi = hi
	}
	// Spot-check the index function round-trips into its own bounds.
	for _, ns := range []int64{0, 1, 7, 8, 9, 255, 256, 1000, 1e6, 1e9, 1 << 40} {
		idx := histBucketIndex(ns)
		lo, hi := histBucketBounds(idx)
		if uint64(ns) < lo || uint64(ns) >= hi {
			t.Errorf("value %d landed in bucket %d [%d, %d)", ns, idx, lo, hi)
		}
	}
}

// TestWritePrometheus checks the exposition format: counters and
// gauges one line each, histograms as monotonically non-decreasing
// cumulative buckets ending in +Inf plus _sum/_count, labels
// preserved and le spliced in.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`test_total{kind="a"}`).Add(7)
	reg.Gauge("test_depth").Set(3)
	reg.GaugeFunc("test_pull", func() float64 { return 1.5 })
	h := reg.Histogram(`test_seconds{phase="mix"}`)
	h.Observe(0.001)
	h.Observe(0.002)
	h.Observe(2.5)

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()

	for _, want := range []string{
		"test_total{kind=\"a\"} 7\n",
		"test_depth 3\n",
		"test_pull 1.5\n",
		"test_seconds_count{phase=\"mix\"} 3\n",
		"test_seconds_bucket{phase=\"mix\",le=\"+Inf\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Cumulative bucket counts must be non-decreasing and end at the
	// total count.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "test_seconds_bucket") {
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = n
	}
	if last != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", last)
	}

	// Same-name lookups return the same metric; wrong-type lookups
	// panic.
	if reg.Gauge("test_depth") != reg.Gauge("test_depth") {
		t.Fatal("Gauge not idempotent")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on type-mismatched registration")
			}
		}()
		reg.Counter("test_depth")
	}()
}

// TestTracer builds a two-phase trace with concurrent children,
// finishes it, and checks both the snapshot tree and the derived
// phase histograms.
func TestTracer(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 2)

	for round := uint64(1); round <= 3; round++ {
		rt := tr.StartRound(round, 7)
		ph := rt.StartPhase("build")
		var wg sync.WaitGroup
		for s := 0; s < 3; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				c := ph.StartChild(fmt.Sprintf("shard %d", s))
				c.End()
			}(s)
		}
		wg.Wait()
		ph.End()
		rt.AddPhase("verify", time.Now().Add(-time.Millisecond), time.Millisecond)
		rt.Finish()
	}

	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring kept %d traces, want 2", len(recent))
	}
	if recent[0].Round != 3 || recent[1].Round != 2 {
		t.Fatalf("recent rounds = %d, %d; want 3, 2", recent[0].Round, recent[1].Round)
	}
	if len(recent[0].Phases) != 2 || len(recent[0].Phases[0].Children) != 3 {
		t.Fatalf("trace shape wrong: %+v", recent[0])
	}
	if recent[0].Epoch != 7 {
		t.Fatalf("epoch = %d, want 7", recent[0].Epoch)
	}

	if got := reg.Histogram(`xrd_round_phase_seconds{phase="build"}`).Count(); got != 3 {
		t.Fatalf("build phase histogram count = %d, want 3", got)
	}
	if got := reg.Histogram("xrd_round_seconds").Count(); got != 3 {
		t.Fatalf("round histogram count = %d, want 3", got)
	}

	// Nil tracer and nil trace chains are inert.
	var nilT *Tracer
	rt := nilT.StartRound(1, 1)
	rt.StartPhase("x").StartChild("y").End()
	rt.AddPhase("z", time.Now(), 0)
	rt.Finish()
	if nilT.Recent() != nil {
		t.Fatal("nil tracer Recent should be nil")
	}
}

// TestAdminServer spins the admin endpoint on a loopback port and
// exercises /healthz, /metrics, /debug/rounds and the pprof index.
func TestAdminServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("admin_test_total").Add(5)
	tr := NewTracer(reg, 4)
	rt := tr.StartRound(9, 2)
	rt.StartPhase("mix").End()
	rt.Finish()

	srv, err := ServeAdmin("127.0.0.1:0", AdminConfig{
		Registry: reg,
		Tracer:   tr,
		Health: func() Health {
			return Health{Role: "gateway", Epoch: 2, Round: 9, ShardLo: 0, ShardHi: 32}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	var h Health
	if err := json.Unmarshal([]byte(get("/healthz")), &h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if h.Role != "gateway" || h.Round != 9 || h.ShardHi != 32 {
		t.Fatalf("healthz = %+v", h)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "admin_test_total 5") {
		t.Fatalf("metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, `xrd_round_phase_seconds_bucket{phase="mix"`) {
		t.Fatalf("metrics missing phase histogram:\n%s", metrics)
	}

	var traces []TraceSnapshot
	if err := json.Unmarshal([]byte(get("/debug/rounds")), &traces); err != nil {
		t.Fatalf("debug/rounds JSON: %v", err)
	}
	if len(traces) != 1 || traces[0].Round != 9 {
		t.Fatalf("debug/rounds = %+v", traces)
	}

	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Fatal("pprof index not served")
	}
}

// BenchmarkCounterAdd and BenchmarkHistogramObserve document the
// per-event cost the acceptance criteria bound (atomic-only, no
// allocation).
func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.ObserveDuration(12345 * time.Nanosecond)
		}
	})
}

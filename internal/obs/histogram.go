package obs

import (
	"bufio"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-shape log-linear latency histogram. Values
// are durations in seconds; internally each observation is bucketed
// by its nanosecond count:
//
//   - 0–7 ns map to eight 1 ns-wide buckets (index = value), then
//   - every power-of-two octave [2^k, 2^(k+1)) splits into 8 linear
//     sub-buckets, so any bucket's width is at most 12.5% of its
//     lower bound.
//
// That gives 496 buckets covering 1 ns to ~292 years with bounded
// relative error, no configuration, and no per-histogram sizing
// decisions at instrumentation sites. Observe is two atomic adds on
// a pre-sized array — no locks, no allocation, no float math beyond
// one multiply — so it is safe on the round hot path.
type Histogram struct {
	buckets [numHistBuckets]atomic.Uint64
	sumNs   atomic.Int64
}

const (
	// histSubBits is log2 of the linear sub-buckets per octave.
	histSubBits = 3
	histSubs    = 1 << histSubBits // 8
	// numHistBuckets: 8 unit buckets for values < 8 ns, then 8 subs
	// for each octave with exponent 4..64.
	numHistBuckets = histSubs + (64-histSubBits)*histSubs
)

// NewHistogram returns an unregistered histogram. Instrumentation
// should use Registry.Histogram / GetOrCreateHistogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histBucketIndex maps a nanosecond value to its bucket.
func histBucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < histSubs {
		return int(v)
	}
	exp := bits.Len64(v) // >= histSubBits+1
	// Top histSubBits+1 bits select the octave's sub-bucket.
	sub := (v >> uint(exp-histSubBits-1)) & (histSubs - 1)
	return histSubs + (exp-histSubBits-1)*histSubs + int(sub)
}

// histBucketBounds returns a bucket's [lo, hi) bounds in nanoseconds.
func histBucketBounds(idx int) (lo, hi uint64) {
	if idx < histSubs {
		return uint64(idx), uint64(idx) + 1
	}
	oct := uint((idx - histSubs) / histSubs)
	sub := uint64((idx - histSubs) % histSubs)
	lo = (histSubs + sub) << oct
	hi = lo + (1 << oct)
	return lo, hi
}

// Observe records a duration given in seconds.
func (h *Histogram) Observe(seconds float64) {
	ns := int64(seconds * 1e9)
	h.buckets[histBucketIndex(ns)].Add(1)
	h.sumNs.Add(ns)
}

// ObserveDuration records d.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.buckets[histBucketIndex(int64(d))].Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations (summed from the buckets,
// so it is always consistent with the bucket counts themselves).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed durations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Quantile returns the bounds, in seconds, of the bucket containing
// the q-quantile observation (0 < q <= 1). Any true q-quantile of
// the observed values lies within [lo, hi]; the bucket shape bounds
// hi/lo at 1.125 for values >= 8 ns. Returns (0, 0) when empty.
func (h *Histogram) Quantile(q float64) (lo, hi float64) {
	var snap [numHistBuckets]uint64
	var total uint64
	for i := range h.buckets {
		snap[i] = h.buckets[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0, 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range snap {
		cum += snap[i]
		if cum >= rank {
			l, u := histBucketBounds(i)
			return float64(l) / 1e9, float64(u) / 1e9
		}
	}
	l, u := histBucketBounds(numHistBuckets - 1)
	return float64(l) / 1e9, float64(u) / 1e9
}

// writeProm renders Prometheus histogram exposition: cumulative
// _bucket lines for every non-empty bucket plus +Inf, then _sum and
// _count. Skipping empty buckets keeps a 496-bucket histogram's
// scrape output proportional to its occupancy; cumulative counts
// stay correct because le values are emitted in ascending order.
func (h *Histogram) writeProm(w *bufio.Writer, name string) {
	base, labels := splitMetricName(name)
	bucketName := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", base, le)
		}
		return fmt.Sprintf("%s_bucket{%s,le=%q}", base, labels, le)
	}
	plain := func(suffix string) string {
		if labels == "" {
			return base + suffix
		}
		return base + suffix + "{" + labels + "}"
	}
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		_, hiNs := histBucketBounds(i)
		fmt.Fprintf(w, "%s %d\n", bucketName(fmt.Sprintf("%g", float64(hiNs)/1e9)), cum)
	}
	fmt.Fprintf(w, "%s %d\n", bucketName("+Inf"), cum)
	fmt.Fprintf(w, "%s %g\n", plain("_sum"), h.Sum())
	fmt.Fprintf(w, "%s %d\n", plain("_count"), cum)
}

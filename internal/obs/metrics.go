// Package obs is the repo's dependency-free observability core:
// sharded atomic counters, gauges, log-bucketed latency histograms
// with quantile extraction (histogram.go), span-style round-phase
// tracing (trace.go), and an admin HTTP server exposing /metrics,
// /healthz and /debug/pprof (admin.go).
//
// Design constraints, in priority order:
//
//  1. Hot-path recording is atomic-only: no locks, no allocation,
//     no map lookups per event. Instrumented packages create their
//     metrics once (package init or epoch setup) and hold pointers.
//  2. No dependencies beyond the standard library. The exposition
//     format is Prometheus text, so any scraper works, but nothing
//     here imports a client library.
//  3. Metric identity is the full name-with-labels string, e.g.
//     xrd_round_phase_seconds{phase="mix"} — the registry is a flat
//     map from that string to the metric, and label rendering costs
//     nothing at scrape time because the name already is the output.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is anything a Registry can expose. writeProm appends the
// metric's exposition lines; name is the registered name (with any
// labels already rendered).
type metric interface {
	writeProm(w *bufio.Writer, name string)
}

// ---------------------------------------------------------------- Counter

// counterShards is the number of padded cells a Counter stripes
// across. Sized to the machine once at init: enough parallelism to
// keep hot counters off a single contended cache line, small enough
// that Value() stays cheap.
var counterShards = counterShardCount()

func counterShardCount() uint32 {
	n := runtime.GOMAXPROCS(0)
	shards := uint32(1)
	for int(shards) < n && shards < 64 {
		shards <<= 1
	}
	return shards
}

// counterCell is one stripe, padded to its own cache line so
// concurrent writers on different stripes do not false-share.
type counterCell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter. Add is atomic-only
// and allocation-free; concurrent writers stripe across cache-line
// padded cells picked by a per-thread random source, so a counter
// incremented from every chain goroutine at once does not serialize
// on one line.
type Counter struct {
	cells []counterCell
}

// NewCounter returns an unregistered counter (tests, ad-hoc use).
// Instrumentation should use Registry.Counter / GetOrCreateCounter.
func NewCounter() *Counter {
	return &Counter{cells: make([]counterCell, counterShards)}
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.cells[rand.Uint32()&(counterShards-1)].v.Add(n)
}

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total. The sum is not a point-in-time
// atomic snapshot across stripes, which is fine for monitoring; for
// exact assertions, quiesce writers first (tests do).
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

func (c *Counter) writeProm(w *bufio.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}

// ---------------------------------------------------------------- Gauge

// Gauge is a settable instantaneous value (current mailbox depth,
// live WAL segments). Set/Add are single atomics.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) writeProm(w *bufio.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, g.Value())
}

// gaugeFunc is a pull-time gauge: the callback runs at scrape, not
// per event, so state that is already tracked elsewhere (goroutine
// count, registry sizes) costs nothing between scrapes.
type gaugeFunc struct {
	fn func() float64
}

func (g *gaugeFunc) writeProm(w *bufio.Writer, name string) {
	fmt.Fprintf(w, "%s %g\n", name, g.fn())
}

// ---------------------------------------------------------------- Registry

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Lookup/creation takes a mutex and is meant for
// setup paths; recording on the returned metric never touches the
// registry again.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// Default is the process-wide registry all package-level helpers use.
// One process is one role (coordinator, gateway shard, mix hop, sim),
// so a process-global registry matches a per-process admin endpoint.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it if
// needed. name carries its labels inline: `xrd_rpc_dials_total` or
// `xrd_hop_bytes_total{chain="0",pos="2",dir="out"}`. Panics if name
// is malformed or already registered as a different metric type.
func (r *Registry) Counter(name string) *Counter {
	m := r.getOrCreate(name, func() metric { return NewCounter() })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not Counter", name, m))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if
// needed.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.getOrCreate(name, func() metric { return NewGauge() })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not Gauge", name, m))
	}
	return g
}

// GaugeFunc registers a pull-time gauge evaluated at each scrape.
// Re-registering the same name replaces the callback (so a restarted
// subsystem can rebind its closure).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	checkMetricName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[name]; ok {
		if _, isFn := old.(*gaugeFunc); !isFn {
			panic(fmt.Sprintf("obs: %q already registered as %T, not GaugeFunc", name, old))
		}
	}
	r.metrics[name] = &gaugeFunc{fn: fn}
}

// Histogram returns the histogram registered under name, creating it
// if needed.
func (r *Registry) Histogram(name string) *Histogram {
	m := r.getOrCreate(name, func() metric { return NewHistogram() })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not Histogram", name, m))
	}
	return h
}

func (r *Registry) getOrCreate(name string, mk func() metric) metric {
	checkMetricName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, sorted by name so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	snapshot := make(map[string]metric, len(r.metrics))
	for name, m := range r.metrics {
		snapshot[name] = m
	}
	r.mu.Unlock()

	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		snapshot[name].writeProm(bw, name)
	}
	bw.Flush()
}

// Package-level shorthands against Default — what instrumented
// packages call from their var blocks.

// GetOrCreateCounter returns the named counter from the Default
// registry, creating it if needed.
func GetOrCreateCounter(name string) *Counter { return Default.Counter(name) }

// GetOrCreateGauge returns the named gauge from the Default registry,
// creating it if needed.
func GetOrCreateGauge(name string) *Gauge { return Default.Gauge(name) }

// GetOrCreateHistogram returns the named histogram from the Default
// registry, creating it if needed.
func GetOrCreateHistogram(name string) *Histogram { return Default.Histogram(name) }

// RegisterGaugeFunc registers a pull-time gauge on the Default
// registry.
func RegisterGaugeFunc(name string, fn func() float64) { Default.GaugeFunc(name, fn) }

// ---------------------------------------------------------------- names

// checkMetricName panics on names the exposition writer cannot
// render: empty, containing whitespace/newlines, or with unbalanced
// label braces. Metric names are compile-time constants plus label
// values we control, so malformed names are programmer errors.
func checkMetricName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	if strings.ContainsAny(name, " \t\n") {
		panic(fmt.Sprintf("obs: metric name %q contains whitespace", name))
	}
	open := strings.IndexByte(name, '{')
	if open == 0 {
		panic(fmt.Sprintf("obs: metric name %q has no base name", name))
	}
	if open < 0 {
		if strings.ContainsAny(name, "}\"") {
			panic(fmt.Sprintf("obs: metric name %q has stray label syntax", name))
		}
		return
	}
	if !strings.HasSuffix(name, "}") || strings.Count(name, "{") != 1 {
		panic(fmt.Sprintf("obs: metric name %q has malformed labels", name))
	}
}

// splitMetricName splits a registered name into its base and the
// inner label list (without braces); labels is "" when the name is
// bare. Histogram exposition uses this to splice the le label in.
func splitMetricName(name string) (base, labels string) {
	open := strings.IndexByte(name, '{')
	if open < 0 {
		return name, ""
	}
	return name[:open], name[open+1 : len(name)-1]
}

package mix

import (
	"bytes"
	"runtime"
	"sort"
	"testing"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/kdf"
	"repro/internal/nizk"
	"repro/internal/onion"
)

var scheme = aead.ChaCha20Poly1305()

// testChain builds a k-server chain with fresh round 1 keys.
func testChain(t testing.TB, k int) *Chain {
	t.Helper()
	c, err := NewChain(0, k, scheme)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BeginRound(1); err != nil {
		t.Fatal(err)
	}
	return c
}

// honestSubmission builds a valid submission carrying a recognizable
// body addressed to a fresh recipient, returning the submission and
// the expected mailbox message.
func honestSubmission(t testing.TB, c *Chain, tag byte) (onion.Submission, []byte) {
	t.Helper()
	p := c.Params()
	nonce := aead.RoundNonce(p.Round, 0)
	recipient := group.GenerateBaseKeyPair()
	var secret [32]byte
	secret[0] = tag
	key := kdf.ConversationKey(secret, recipient.Public.Bytes())
	msg, err := onion.SealMailboxMessage(scheme, key, nonce, recipient.Public,
		onion.Payload{Kind: onion.KindConversation, Body: []byte{tag}})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := onion.WrapAHS(scheme, p.InnerAggregate, p.MixKeys, p.Round, p.ChainID, nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	return sub, msg
}

func submitMany(t testing.TB, c *Chain, n int) ([]onion.Submission, map[string]bool) {
	t.Helper()
	subs := make([]onion.Submission, n)
	want := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		sub, msg := honestSubmission(t, c, byte(i))
		subs[i] = sub
		want[string(msg)] = true
	}
	return subs, want
}

func TestHonestRoundDeliversAll(t *testing.T) {
	c := testChain(t, 4)
	subs, want := submitMany(t, c, 12)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || len(res.BlamedServers) != 0 || len(res.BlamedUsers) != 0 {
		t.Fatalf("honest round reported misbehaviour: %+v", res)
	}
	if len(res.Delivered) != len(subs) {
		t.Fatalf("delivered %d of %d", len(res.Delivered), len(subs))
	}
	for _, m := range res.Delivered {
		if !want[string(m)] {
			t.Fatal("delivered message not among submissions")
		}
		delete(want, string(m))
	}
}

func TestRoundRejectsWrongRound(t *testing.T) {
	c := testChain(t, 3)
	subs, _ := submitMany(t, c, 2)
	if _, err := c.RunRound(2, 0, subs); err == nil {
		t.Fatal("round with stale keys accepted")
	}
}

// TestOutputIsShuffled checks the permutation is applied: running the
// same submissions through the same round twice must yield different
// delivery orders (the permutation is fresh per run; a collision over
// 32 messages has probability 1/32!).
func TestOutputIsShuffled(t *testing.T) {
	c := testChain(t, 3)
	const n = 32
	subs, _ := submitMany(t, c, n)
	res1, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Delivered) != n || len(res2.Delivered) != n {
		t.Fatalf("delivered %d and %d of %d", len(res1.Delivered), len(res2.Delivered), n)
	}
	same := true
	for i := range res1.Delivered {
		if !bytes.Equal(res1.Delivered[i], res2.Delivered[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two shuffles produced the identical order")
	}
}

// TestMaliciousUserInvalidProof: submissions with broken PoKs are
// rejected before mixing and their senders identified (§6.4).
func TestMaliciousUserInvalidProof(t *testing.T) {
	c := testChain(t, 3)
	subs, _ := submitMany(t, c, 5)
	bad, err := InvalidProofSubmission(scheme, c.Params(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	subs = append(subs, bad)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("chain halted for a user-only attack")
	}
	if len(res.BlamedUsers) != 1 || res.BlamedUsers[0] != 5 {
		t.Fatalf("blamed users = %v, want [5]", res.BlamedUsers)
	}
	if len(res.Delivered) != 5 {
		t.Fatalf("delivered %d of 5 honest messages", len(res.Delivered))
	}
}

// TestMaliciousUserMisauthenticatedCiphertext: a user whose onion
// fails at an interior server is convicted by the blame protocol and
// removed; honest messages still flow (§6.4).
func TestMaliciousUserMisauthenticatedCiphertext(t *testing.T) {
	for _, badLayer := range []int{0, 1, 3} {
		c := testChain(t, 4)
		subs, want := submitMany(t, c, 6)
		bad, err := MaliciousSubmission(scheme, c.Params(), 1, 0, badLayer)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, bad)
		res, err := c.RunRound(1, 0, subs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Halted || len(res.BlamedServers) != 0 {
			t.Fatalf("badLayer=%d: servers blamed for a user attack: %+v", badLayer, res)
		}
		if len(res.BlamedUsers) != 1 || res.BlamedUsers[0] != 6 {
			t.Fatalf("badLayer=%d: blamed users = %v, want [6]", badLayer, res.BlamedUsers)
		}
		if res.BlameRounds == 0 {
			t.Fatalf("badLayer=%d: blame protocol did not run", badLayer)
		}
		if len(res.Delivered) != 6 {
			t.Fatalf("badLayer=%d: delivered %d of 6", badLayer, len(res.Delivered))
		}
		for _, m := range res.Delivered {
			if !want[string(m)] {
				t.Fatalf("badLayer=%d: unexpected delivery", badLayer)
			}
		}
	}
}

// TestManyMaliciousUsers: multiple misauthenticated ciphertexts are
// all attributed in one blame round (Figure 7's scenario).
func TestManyMaliciousUsers(t *testing.T) {
	c := testChain(t, 3)
	subs, _ := submitMany(t, c, 8)
	params := c.Params()
	wantBlamed := map[int]bool{}
	for i := 0; i < 4; i++ {
		bad, err := MaliciousSubmission(scheme, params, 1, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, bad)
		wantBlamed[8+i] = true
	}
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("halted on user-only attack")
	}
	if len(res.BlamedUsers) != 4 {
		t.Fatalf("blamed %v, want 4 users", res.BlamedUsers)
	}
	for _, u := range res.BlamedUsers {
		if !wantBlamed[u] {
			t.Fatalf("blamed honest user %d", u)
		}
	}
	if len(res.Delivered) != 8 {
		t.Fatalf("delivered %d of 8", len(res.Delivered))
	}
}

// TestServerTamperPairDetected: the product-preserving key tamper
// passes the shuffle certificate but is convicted by the blame
// protocol at the next server, and the chain halts with no delivery
// (Appendix A's game).
func TestServerTamperPairDetected(t *testing.T) {
	c := testChain(t, 4)
	c.Servers[1].Corruption = &Corruption{TamperPairs: [][2]int{{0, 1}}}
	subs, _ := submitMany(t, c, 6)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("tampering did not halt the chain")
	}
	if len(res.Delivered) != 0 {
		t.Fatal("messages delivered despite tampering")
	}
	if len(res.BlamedServers) != 1 || res.BlamedServers[0] != 1 {
		t.Fatalf("blamed servers = %v, want [1]", res.BlamedServers)
	}
	if len(res.BlamedUsers) != 0 {
		t.Fatalf("honest users blamed: %v", res.BlamedUsers)
	}
}

// TestServerReplaceEnvelopeDetected: wholesale substitution (§4.1's
// attack) breaks the key product and fails the shuffle certificate
// immediately.
func TestServerReplaceEnvelopeDetected(t *testing.T) {
	c := testChain(t, 4)
	target := group.GenerateBaseKeyPair()
	crafted, err := CraftValidOnion(scheme, c.Params(), 1, 0, target.Public)
	if err != nil {
		t.Fatal(err)
	}
	// The substituted envelope must look like a position-1 envelope;
	// using the fresh submission envelope suffices for the test since
	// detection happens before any decryption of it.
	c.Servers[1].Corruption = &Corruption{ReplaceOutput: map[int]onion.Envelope{2: crafted.Envelope}}
	subs, _ := submitMany(t, c, 6)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Delivered) != 0 {
		t.Fatal("substitution not detected")
	}
	if len(res.BlamedServers) != 1 || res.BlamedServers[0] != 1 {
		t.Fatalf("blamed servers = %v, want [1]", res.BlamedServers)
	}
}

// TestServerGarbleCiphertextDetected: garbling a ciphertext while
// leaving keys intact is convicted by the blame replay (step 3b).
func TestServerGarbleCiphertextDetected(t *testing.T) {
	c := testChain(t, 4)
	c.Servers[0].Corruption = &Corruption{GarbleCiphertext: []int{3}}
	subs, _ := submitMany(t, c, 6)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Delivered) != 0 {
		t.Fatal("garbling not detected")
	}
	if len(res.BlamedServers) != 1 || res.BlamedServers[0] != 0 {
		t.Fatalf("blamed servers = %v, want [0]", res.BlamedServers)
	}
	if len(res.BlamedUsers) != 0 {
		t.Fatalf("honest users blamed: %v", res.BlamedUsers)
	}
}

// TestServerDropMessageDetected: dropping a message changes the count
// and every verifier notices.
func TestServerDropMessageDetected(t *testing.T) {
	c := testChain(t, 3)
	drop := 2
	c.Servers[1].Corruption = &Corruption{DropOutput: &drop}
	subs, _ := submitMany(t, c, 5)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.BlamedServers) != 1 || res.BlamedServers[0] != 1 {
		t.Fatalf("drop not detected: %+v", res)
	}
}

// TestServerBadProofDetected: an invalid shuffle certificate halts
// the round at once.
func TestServerBadProofDetected(t *testing.T) {
	c := testChain(t, 3)
	c.Servers[2].Corruption = &Corruption{BadMixProof: true}
	subs, _ := submitMany(t, c, 4)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.BlamedServers) != 1 || res.BlamedServers[0] != 2 {
		t.Fatalf("bad proof not detected: %+v", res)
	}
}

// TestFalseAccusationConvictsAccuser: a server that accuses an honest
// message is itself blamed when the revealed key decrypts the
// ciphertext successfully (§6.4 analysis), and no honest user is
// convicted.
func TestFalseAccusationConvictsAccuser(t *testing.T) {
	c := testChain(t, 4)
	c.Servers[2].Corruption = &Corruption{FalselyAccuse: []int{1}}
	subs, _ := submitMany(t, c, 5)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("false accusation did not halt the round")
	}
	if len(res.BlamedUsers) != 0 {
		t.Fatalf("honest users convicted by false accusation: %v", res.BlamedUsers)
	}
	if len(res.BlamedServers) != 1 || res.BlamedServers[0] != 2 {
		t.Fatalf("blamed servers = %v, want [2]", res.BlamedServers)
	}
}

// TestWithheldInnerKeyHaltsWithoutDelivery: refusing the inner key
// reveal denies service but reveals nothing.
func TestWithheldInnerKeyHaltsWithoutDelivery(t *testing.T) {
	c := testChain(t, 3)
	c.Servers[1].Corruption = &Corruption{WithholdInnerKey: true}
	subs, _ := submitMany(t, c, 4)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Delivered) != 0 {
		t.Fatal("withheld inner key did not halt delivery")
	}
	if len(res.BlamedServers) != 1 || res.BlamedServers[0] != 1 {
		t.Fatalf("blamed servers = %v, want [1]", res.BlamedServers)
	}
}

// TestMalformedInnerEnvelopeDropped: garbage below the outer layers
// (valid outer onion, broken inner envelope) survives mixing and is
// dropped at inner decryption without affecting others.
func TestMalformedInnerEnvelopeDropped(t *testing.T) {
	c := testChain(t, 3)
	subs, _ := submitMany(t, c, 4)
	p := c.Params()
	nonce := aead.RoundNonce(1, 0)
	garbage := make([]byte, onion.AHSCiphertextSize(len(p.MixKeys))-len(p.MixKeys)*aead.Overhead)
	for i := range garbage {
		garbage[i] = byte(i * 7)
	}
	bad, err := onion.WrapPartialAHS(scheme, p.MixKeys, 1, p.ChainID, nonce, garbage)
	if err != nil {
		t.Fatal(err)
	}
	subs = append(subs, bad)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || len(res.BlamedServers) != 0 || len(res.BlamedUsers) != 0 {
		t.Fatalf("unexpected blame: %+v", res)
	}
	if res.DroppedInner != 1 {
		t.Fatalf("DroppedInner = %d, want 1", res.DroppedInner)
	}
	if len(res.Delivered) != 4 {
		t.Fatalf("delivered %d of 4", len(res.Delivered))
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	c := testChain(t, 4)
	p := c.Params()
	nonce := aead.RoundNonce(1, 0)
	const n = 10
	cts := make([][]byte, n)
	want := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		recipient := group.GenerateBaseKeyPair()
		var secret [32]byte
		secret[0] = byte(i)
		key := kdf.ConversationKey(secret, recipient.Public.Bytes())
		msg, err := onion.SealMailboxMessage(scheme, key, nonce, recipient.Public,
			onion.Payload{Kind: onion.KindLoopback})
		if err != nil {
			t.Fatal(err)
		}
		want[string(msg)] = true
		ct, err := onion.WrapBaseline(scheme, p.BaselineKeys, nonce, msg)
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}
	out, err := c.RunRoundBaseline(1, 0, cts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("baseline delivered %d of %d", len(out), n)
	}
	for _, m := range out {
		if !want[string(m)] {
			t.Fatal("baseline delivered unexpected message")
		}
	}
}

// TestBaselineSilentlyDropsTampered documents why AHS exists: the
// baseline cannot attribute or even reliably detect tampering.
func TestBaselineSilentlyDropsTampered(t *testing.T) {
	c := testChain(t, 3)
	p := c.Params()
	nonce := aead.RoundNonce(1, 0)
	recipient := group.GenerateBaseKeyPair()
	var secret [32]byte
	key := kdf.ConversationKey(secret, recipient.Public.Bytes())
	msg, err := onion.SealMailboxMessage(scheme, key, nonce, recipient.Public, onion.Payload{Kind: onion.KindLoopback})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := onion.WrapBaseline(scheme, p.BaselineKeys, nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	ct[40] ^= 1
	out, err := c.RunRoundBaseline(1, 0, [][]byte{ct})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("tampered baseline message was delivered")
	}
}

func TestChainRejectsZeroServers(t *testing.T) {
	if _, err := NewChain(0, 0, scheme); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestEmptyRound(t *testing.T) {
	c := testChain(t, 3)
	res, err := c.RunRound(1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || len(res.Delivered) != 0 {
		t.Fatalf("empty round misbehaved: %+v", res)
	}
}

func TestMultipleRoundsRotateInnerKeys(t *testing.T) {
	c := testChain(t, 3)
	agg1 := c.Params().InnerAggregate
	subs, _ := submitMany(t, c, 3)
	if _, err := c.RunRound(1, 0, subs); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginRound(2); err != nil {
		t.Fatal(err)
	}
	agg2 := c.Params().InnerAggregate
	if agg1.Equal(agg2) {
		t.Fatal("inner aggregate did not rotate between rounds")
	}
	subs2, _ := submitMany(t, c, 3)
	res, err := c.RunRound(2, 0, subs2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) != 3 {
		t.Fatalf("round 2 delivered %d of 3", len(res.Delivered))
	}
}

func BenchmarkChainRound32Servers100Msgs(b *testing.B) {
	c := testChain(b, 32)
	subs := make([]onion.Submission, 100)
	for i := range subs {
		sub, _ := honestSubmission(b, c, byte(i))
		subs[i] = sub
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.RunRound(1, 0, subs)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Delivered) != len(subs) {
			b.Fatalf("delivered %d", len(res.Delivered))
		}
	}
}

// TestBlameRemovesAllMessages: when every message in a batch is
// malicious, blame convicts them all and the round ends empty without
// falsely accusing any server (the empty-product edge case after
// removal).
func TestBlameRemovesAllMessages(t *testing.T) {
	c := testChain(t, 3)
	params := c.Params()
	var subs []onion.Submission
	for i := 0; i < 2; i++ {
		bad, err := MaliciousSubmission(scheme, params, 1, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, bad)
	}
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || len(res.BlamedServers) != 0 {
		t.Fatalf("servers blamed for an all-malicious batch: %+v", res)
	}
	if len(res.BlamedUsers) != 2 {
		t.Fatalf("blamed users = %v, want both", res.BlamedUsers)
	}
	if len(res.Delivered) != 0 {
		t.Fatalf("delivered %d from an all-malicious batch", len(res.Delivered))
	}
}

// TestBlameAtFirstServerOnly: a single malicious message that is the
// entire batch, failing at layer 0.
func TestBlameAtFirstServerOnly(t *testing.T) {
	c := testChain(t, 3)
	bad, err := MaliciousSubmission(scheme, c.Params(), 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunRound(1, 0, []onion.Submission{bad})
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || len(res.BlamedServers) != 0 || len(res.BlamedUsers) != 1 {
		t.Fatalf("res: %+v", res)
	}
}

// TestMaliciousUsersAtDifferentLayers: failures surfacing at two
// different servers trigger two blame executions, both attributed to
// users, and honest traffic flows.
func TestMaliciousUsersAtDifferentLayers(t *testing.T) {
	c := testChain(t, 4)
	subs, _ := submitMany(t, c, 5)
	params := c.Params()
	for _, layer := range []int{1, 3} {
		bad, err := MaliciousSubmission(scheme, params, 1, 0, layer)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, bad)
	}
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || len(res.BlamedServers) != 0 {
		t.Fatalf("servers blamed: %+v", res)
	}
	if len(res.BlamedUsers) != 2 {
		t.Fatalf("blamed = %v, want 2 users", res.BlamedUsers)
	}
	if res.BlameRounds != 2 {
		t.Fatalf("blame rounds = %d, want 2", res.BlameRounds)
	}
	if len(res.Delivered) != 5 {
		t.Fatalf("delivered %d of 5", len(res.Delivered))
	}
}

// TestLastServerGarbleDropsInner exercises §6's central observation:
// tampering downstream of the honest shuffler gains the adversary
// nothing. Garbling the LAST server's output corrupts only inner
// envelopes whose origins are already hidden; the messages drop at
// inner decryption and no blame is needed for privacy.
func TestLastServerGarbleDropsInner(t *testing.T) {
	c := testChain(t, 3)
	c.Servers[2].Corruption = &Corruption{GarbleCiphertext: []int{0}}
	subs, _ := submitMany(t, c, 4)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	// The key product is untouched, so the certificate verifies; the
	// garbled inner envelope fails to open and is dropped.
	if res.Halted {
		t.Fatalf("halted: %+v", res)
	}
	if res.DroppedInner != 1 || len(res.Delivered) != 3 {
		t.Fatalf("dropped=%d delivered=%d, want 1/3", res.DroppedInner, len(res.Delivered))
	}
}

// TestTwoCorruptServers: colluding tamperers at different positions
// are still caught — the first decryption failure downstream of the
// earliest tamper triggers blame against it.
func TestTwoCorruptServers(t *testing.T) {
	c := testChain(t, 4)
	c.Servers[0].Corruption = &Corruption{TamperPairs: [][2]int{{0, 1}}}
	c.Servers[2].Corruption = &Corruption{TamperPairs: [][2]int{{2, 3}}}
	subs, _ := submitMany(t, c, 6)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || len(res.Delivered) != 0 {
		t.Fatal("collusion not detected")
	}
	if len(res.BlamedServers) == 0 || res.BlamedServers[0] != 0 {
		t.Fatalf("blamed servers = %v, want the earliest tamperer first", res.BlamedServers)
	}
	if len(res.BlamedUsers) != 0 {
		t.Fatalf("honest users blamed: %v", res.BlamedUsers)
	}
}

// TestMixedUserAndServerMisbehaviour: a malicious user and a
// tampering server in the same round; the server conviction halts the
// chain and the honest users stay unconvicted.
func TestMixedUserAndServerMisbehaviour(t *testing.T) {
	c := testChain(t, 4)
	c.Servers[2].Corruption = &Corruption{GarbleCiphertext: []int{1}}
	subs, _ := submitMany(t, c, 5)
	bad, err := MaliciousSubmission(scheme, c.Params(), 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	subs = append(subs, bad)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("server tamper not detected")
	}
	for _, u := range res.BlamedUsers {
		if u != 5 {
			t.Fatalf("honest user %d blamed", u)
		}
	}
	if len(res.BlamedServers) != 1 || res.BlamedServers[0] != 2 {
		t.Fatalf("blamed servers = %v, want [2]", res.BlamedServers)
	}
}

// TestBatchBlamePathMatchesSerial pins the tentpole contract of
// batched submission verification end to end through RunRound: the
// chain blames exactly the same user indices a serial per-proof sweep
// identifies, plus the same deep failures the blame protocol finds.
// (At this size a failing batch falls back to the serial sweep; the
// recursion and chunking layers above it are pinned separately by
// TestVerifySubmissionProofsBisectionAndChunks.)
func TestBatchBlamePathMatchesSerial(t *testing.T) {
	c := testChain(t, 3)
	params := c.Params()
	subs, _ := submitMany(t, c, 40)

	// Invalid knowledge proofs scattered across the batch, including
	// both ends (bisection boundaries).
	badProof := map[int]bool{}
	for _, i := range []int{0, 13, 27, 39} {
		bad, err := InvalidProofSubmission(scheme, params, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = bad
		badProof[i] = true
	}
	// One submission with a valid proof that fails deep in the chain:
	// the blame protocol, not proof verification, must catch it.
	deep, err := MaliciousSubmission(scheme, params, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	deepIdx := len(subs)
	subs = append(subs, deep)

	// The serial reference: exactly what the seed's per-proof loop
	// would have blamed at submission time.
	var serial []int
	for i, sub := range subs {
		if onion.VerifySubmission(sub, 1, 0) != nil {
			serial = append(serial, i)
		}
	}
	for _, i := range serial {
		if !badProof[i] {
			t.Fatalf("serial sweep blamed unexpected index %d", i)
		}
	}
	if len(serial) != len(badProof) {
		t.Fatalf("serial sweep found %d bad proofs, want %d", len(serial), len(badProof))
	}
	if got := VerifySubmissionProofs(subs, 1, 0); !equalInts(got, serial) {
		t.Fatalf("batch verification blamed %v, serial %v", got, serial)
	}

	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || len(res.BlamedServers) != 0 {
		t.Fatalf("servers blamed: %+v", res)
	}
	wantBlamed := append(append([]int(nil), serial...), deepIdx)
	gotBlamed := append([]int(nil), res.BlamedUsers...)
	sort.Ints(gotBlamed)
	if !equalInts(gotBlamed, wantBlamed) {
		t.Fatalf("round blamed %v, want %v", gotBlamed, wantBlamed)
	}
	if len(res.Delivered) != 36 {
		t.Fatalf("delivered %d of 36 honest messages", len(res.Delivered))
	}
}

// TestVerifySubmissionProofsAllBad drives the bisection to its floor:
// every proof invalid.
func TestVerifySubmissionProofsAllBad(t *testing.T) {
	c := testChain(t, 2)
	params := c.Params()
	const n = 20
	subs := make([]onion.Submission, n)
	for i := range subs {
		bad, err := InvalidProofSubmission(scheme, params, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = bad
	}
	got := VerifySubmissionProofs(subs, 1, 0)
	if len(got) != n {
		t.Fatalf("blamed %d of %d invalid proofs", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("blamed indices %v not ascending and complete", got)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestInnerAggPruning pins the fix for the unbounded innerAggs map: a
// long-running chain keeps aggregates only for a bounded window of
// recent rounds — three, because a depth-2 pipeline announces round
// ρ+2 while round ρ is still mixing and must later reveal — so
// parameters for anything older are gone (and so is the memory).
func TestInnerAggPruning(t *testing.T) {
	c := testChain(t, 2)
	for r := uint64(2); r <= 6; r++ {
		if err := c.BeginRound(r); err != nil {
			t.Fatal(err)
		}
	}
	c.keyMu.RLock()
	kept := len(c.innerAggs)
	c.keyMu.RUnlock()
	if kept != 3 {
		t.Fatalf("innerAggs holds %d rounds, want 3 (mixing, current, next)", kept)
	}
	for r := uint64(1); r <= 3; r++ {
		if _, err := c.ParamsFor(r); err == nil {
			t.Fatalf("parameters for pruned round %d still served", r)
		}
	}
	for r := uint64(4); r <= 6; r++ {
		if _, err := c.ParamsFor(r); err != nil {
			t.Fatalf("parameters for live round %d unavailable: %v", r, err)
		}
	}
	// Re-announcing an already-live round must not prune it.
	if err := c.BeginRound(6); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ParamsFor(4); err != nil {
		t.Fatalf("idempotent BeginRound pruned the oldest live round: %v", err)
	}
	// The servers' own inner-key maps must be bounded too: a halted
	// or skipped chain never reaches RevealInnerKey's pruning, so
	// BeginRound is the backstop.
	for _, s := range c.Servers {
		if len(s.innerKeys) != 3 {
			t.Fatalf("server %d holds %d inner keys, want 3", s.Index, len(s.innerKeys))
		}
		if _, ok := s.InnerPublicKey(5); !ok {
			t.Fatalf("server %d lost the current round's inner key", s.Index)
		}
	}
}

// TestVerifySubmissionProofsBisectionAndChunks drives the production
// paths the small round tests cannot reach: a failing range larger
// than bisectSerialCutoff (so the recursion actually splits) and a
// submission count spread over multiple worker chunks (so the
// chunk-boundary math and cross-chunk merge are exercised). Proof-only
// submissions keep it fast — VerifySubmissionProofs never reads the
// ciphertexts.
func TestVerifySubmissionProofsBisectionAndChunks(t *testing.T) {
	const n = 600
	ctx := onion.SubmitContext(1, 0)
	subs := make([]onion.Submission, n)
	for i := range subs {
		x := group.MustRandomScalar()
		subs[i] = onion.Submission{
			Envelope: onion.Envelope{DHKey: group.Base(x)},
			Proof:    nizk.ProveDlogCommit(ctx, group.Generator(), x),
		}
	}
	// Invalid proofs at the bisection midpoints and both ends.
	want := []int{0, 299, 300, 599}
	for _, i := range want {
		subs[i].Proof.S = subs[i].Proof.S.Add(group.NewScalar(1))
	}

	check := func(label string) {
		t.Helper()
		if got := VerifySubmissionProofs(subs, 1, 0); !equalInts(got, want) {
			t.Fatalf("%s: blamed %v, want %v", label, got, want)
		}
	}
	// Whatever GOMAXPROCS the host has: one 600-proof chunk fails,
	// splits at 300 (still > bisectSerialCutoff on the left/right),
	// and sweeps serially below it.
	check("bisection")
	// Force many small chunks so several workers claim, verify and
	// merge ranges concurrently.
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	check("multi-chunk")
}

package mix

import (
	"crypto/rand"
	"fmt"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/onion"
)

// Corruption makes a server deviate from the protocol, simulating the
// active attacks of §4.1 and §6 for tests and experiments. Each field
// corresponds to an attack the AHS design claims to detect.
type Corruption struct {
	// TamperPairs applies a product-preserving tamper to pairs of
	// output positions: the two Diffie-Hellman keys are shifted by D
	// and -D so the shuffle certificate still verifies, and the
	// ciphertexts garbled. This is the strongest algebraic attack
	// available to an upstream server (Appendix A); it is caught by
	// the next decryption failing and the blame protocol convicting
	// this server.
	TamperPairs [][2]int
	// ReplaceOutput substitutes entire envelopes at the given output
	// positions with adversary-crafted ones (the §4.1 attack of
	// redirecting a message at Alice). Breaks the key product, so the
	// shuffle certificate fails immediately.
	ReplaceOutput map[int]onion.Envelope
	// GarbleCiphertext flips a byte of the ciphertext at the given
	// output positions while leaving keys intact. Caught by the blame
	// protocol's decryption replay (step 3b).
	GarbleCiphertext []int
	// DropOutput removes the message at the given output position
	// (count change is caught by every verifier).
	DropOutput *int
	// BadMixProof emits an invalid shuffle certificate.
	BadMixProof bool
	// FalselyAccuse starts the blame protocol against the given input
	// positions even though their decryption succeeds. The accuser is
	// convicted in blame step 4.
	FalselyAccuse []int
	// WithholdInnerKey refuses to reveal the per-round inner key
	// after mixing, halting the round without any delivery.
	WithholdInnerKey bool
}

// applyMix mutates the server's output according to the corruption
// and returns the (possibly resized) output slice.
func (c *Corruption) applyMix(s *Server, in, out []onion.Envelope, out2in []int) []onion.Envelope {
	for _, pair := range c.TamperPairs {
		p1, p2 := pair[0], pair[1]
		if p1 >= len(out) || p2 >= len(out) || p1 == p2 {
			continue
		}
		// Shift the two keys in opposite directions: the product of
		// all keys is unchanged, so the DLEQ certificate still holds,
		// but the downstream AEAD keys no longer match any ciphertext
		// the adversary can produce.
		d := group.MustRandomScalar()
		shift := group.Base(d)
		out[p1].DHKey = out[p1].DHKey.Add(shift)
		out[p2].DHKey = out[p2].DHKey.Add(shift.Neg())
		garble(out[p1].Ct)
		garble(out[p2].Ct)
	}
	for p, env := range c.ReplaceOutput {
		if p < len(out) {
			out[p] = env.Clone()
		}
	}
	for _, p := range c.GarbleCiphertext {
		if p < len(out) {
			garble(out[p].Ct)
		}
	}
	if c.DropOutput != nil && *c.DropOutput < len(out) {
		p := *c.DropOutput
		out = append(out[:p:p], out[p+1:]...)
	}
	return out
}

func garble(ct []byte) {
	if len(ct) > 0 {
		ct[len(ct)/2] ^= 0x55
	}
}

// MaliciousSubmission builds a user submission whose knowledge proof
// and outer layers 0..badLayer-1 are valid but whose content at
// badLayer fails authenticated decryption — the malicious-user attack
// the blame protocol must attribute (§6.4, Figure 7's workload).
func MaliciousSubmission(scheme aead.Scheme, p Params, round uint64, lane byte, badLayer int) (onion.Submission, error) {
	k := len(p.MixKeys)
	if badLayer < 0 || badLayer >= k {
		return onion.Submission{}, fmt.Errorf("mix: bad layer %d outside chain of %d", badLayer, k)
	}
	nonce := aead.RoundNonce(round, lane)
	// Garbage standing in for c_badLayer (the ciphertext server
	// badLayer will try to open): correct length, invalid
	// authentication under any key.
	garbage := make([]byte, onion.AHSCiphertextSize(k)-badLayer*aead.Overhead)
	if _, err := rand.Read(garbage); err != nil {
		return onion.Submission{}, fmt.Errorf("mix: sampling garbage: %w", err)
	}
	sub, err := onion.WrapPartialAHS(scheme, p.MixKeys[:badLayer], round, p.ChainID, nonce, garbage)
	if err != nil {
		return onion.Submission{}, err
	}
	return sub, nil
}

// InvalidProofSubmission builds a submission whose knowledge proof is
// broken; servers reject it at submission time (§6.4 first case).
func InvalidProofSubmission(scheme aead.Scheme, p Params, round uint64, lane byte) (onion.Submission, error) {
	sub, err := MaliciousSubmission(scheme, p, round, lane, len(p.MixKeys)-1)
	if err != nil {
		return onion.Submission{}, err
	}
	sub.Proof.S = sub.Proof.S.Add(group.NewScalar(1))
	return sub, nil
}

// CraftValidOnion builds a fully valid submission addressed to the
// given recipient — what a malicious first server substitutes for a
// user's message in the §4.1 attack. The key product check makes the
// substitution detectable.
func CraftValidOnion(scheme aead.Scheme, p Params, round uint64, lane byte, recipient group.Point) (onion.Submission, error) {
	nonce := aead.RoundNonce(round, lane)
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		return onion.Submission{}, err
	}
	payload := onion.Payload{Kind: onion.KindConversation, Body: []byte("attack message")}
	var kk [aead.KeySize]byte
	copy(kk[:], key[:])
	pt, err := payload.Marshal()
	if err != nil {
		return onion.Submission{}, err
	}
	msg := append(recipient.Bytes(), scheme.Seal(nil, &kk, &nonce, pt)...)
	return onion.WrapAHS(scheme, p.InnerAggregate, p.MixKeys, round, p.ChainID, nonce, msg)
}

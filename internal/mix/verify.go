package mix

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/onion"
)

// Submission proof checking (§6.2). The serial seed verified one
// Schnorr proof at a time; this is the round's single biggest
// public-key cost, so it is now batched (one multi-scalar
// multiplication per chunk, see nizk.VerifyDlogBatch) and fanned over
// a worker pool. Batch verification is all-or-nothing, so a failing
// chunk is bisected until the culprits are isolated — the blamed
// indices come out exactly as the per-proof loop would produce them,
// the all-honest fast path just no longer pays per-proof prices.

const (
	// submissionChunkMax caps one batch's multi-scalar
	// multiplication; beyond this the bucket width stops growing and
	// chunks only add bisection depth.
	submissionChunkMax = 4096
	// submissionChunkMin is the smallest batch worth the MSM setup
	// when splitting work across workers.
	submissionChunkMin = 64
	// bisectFloor is the subdivision size below which per-proof
	// verification beats further batch calls.
	bisectFloor = 8
	// bisectSerialCutoff bounds the work an adversary can force by
	// flooding a chunk with invalid proofs: every bisection level
	// re-runs MSM work over the failing subtree, so once a failing
	// range is this small the per-proof sweep is cheaper than more
	// doomed batch attempts. It only engages after a batch has
	// already failed — the all-honest path never pays it.
	bisectSerialCutoff = 256
)

// VerifySubmissionProofs checks all submission knowledge proofs and
// returns the indices whose proofs are invalid, in ascending order.
// Chunks of the batch are verified concurrently by a bounded worker
// pool, each chunk with one multi-scalar multiplication; failing
// chunks are bisected so the returned indices match a serial
// onion.VerifySubmission sweep exactly.
func VerifySubmissionProofs(subs []onion.Submission, round uint64, chain int) []int {
	n := len(subs)
	if n == 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	chunk := (n + workers - 1) / workers
	if chunk > submissionChunkMax {
		chunk = submissionChunkMax
	}
	if chunk < submissionChunkMin {
		chunk = submissionChunkMin
	}
	nChunks := (n + chunk - 1) / chunk
	if workers > nChunks {
		workers = nChunks
	}

	// Workers claim chunks from an atomic cursor: at most `workers`
	// MSMs (and their digit/bucket scratch) live at once no matter
	// how many chunks a huge round splits into.
	var mu sync.Mutex
	var bad []int
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(cursor.Add(1)) - 1
				if ci >= nChunks {
					return
				}
				lo, hi := ci*chunk, (ci+1)*chunk
				if hi > n {
					hi = n
				}
				if found := badProofsIn(subs, lo, hi, round, chain); len(found) > 0 {
					mu.Lock()
					bad = append(bad, found...)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	sort.Ints(bad)
	return bad
}

// badProofsIn verifies subs[lo:hi]: batch first, then bisect on
// failure, with serial sweeps once a failing range is too small for
// retried batches to pay off.
func badProofsIn(subs []onion.Submission, lo, hi int, round uint64, chain int) []int {
	if hi-lo <= bisectFloor {
		return sweepProofs(subs, lo, hi, round, chain)
	}
	if onion.VerifySubmissionBatch(subs[lo:hi], round, chain) == nil {
		return nil
	}
	if hi-lo <= bisectSerialCutoff {
		return sweepProofs(subs, lo, hi, round, chain)
	}
	mid := lo + (hi-lo)/2
	return append(badProofsIn(subs, lo, mid, round, chain),
		badProofsIn(subs, mid, hi, round, chain)...)
}

// sweepProofs is the per-proof reference loop, the ground truth the
// batch path must agree with.
func sweepProofs(subs []onion.Submission, lo, hi int, round uint64, chain int) []int {
	var bad []int
	for i := lo; i < hi; i++ {
		if onion.VerifySubmission(subs[i], round, chain) != nil {
			bad = append(bad, i)
		}
	}
	return bad
}

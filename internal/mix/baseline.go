package mix

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/aead"
	"repro/internal/onion"
)

// RunRoundBaseline executes Algorithm 1: each server decrypts one
// onion layer with its plain mixing key and shuffles, with no
// verification of any kind. This is the §5 base design, secure only
// against passive adversaries; it exists for the
// AHS-versus-baseline ablation benchmark and to measure what active
// attack protection costs.
//
// Submissions are built with onion.WrapBaseline against the chain's
// BaselineKeys. Messages that fail to decrypt are silently dropped,
// exactly the behaviour AHS exists to prevent.
func (c *Chain) RunRoundBaseline(round uint64, lane byte, cts [][]byte) ([][]byte, error) {
	nonce := aead.RoundNonce(round, lane)
	cur := cts
	for i, s := range c.Servers {
		if s == nil {
			return nil, fmt.Errorf("mix: baseline mode needs in-process servers; chain %d position %d is remote", c.ID, i)
		}
		next := make([][]byte, len(cur))
		var wg sync.WaitGroup
		workers := runtime.GOMAXPROCS(0)
		if workers > len(cur) {
			workers = len(cur)
		}
		if workers < 1 {
			workers = 1
		}
		stride := (len(cur) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*stride, (w+1)*stride
			if hi > len(cur) {
				hi = len(cur)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for j := lo; j < hi; j++ {
					pt, err := onion.PeelBaseline(c.scheme, s.baselineKey.Private, nonce, cur[j])
					if err != nil {
						continue // dropped silently; no defence in baseline mode
					}
					next[j] = pt
				}
			}(lo, hi)
		}
		wg.Wait()
		// Compact and shuffle.
		kept := next[:0]
		for _, pt := range next {
			if pt != nil {
				kept = append(kept, pt)
			}
		}
		perm := randomPermutation(len(kept))
		shuffled := make([][]byte, len(kept))
		for p, j := range perm {
			shuffled[p] = kept[j]
		}
		cur = shuffled
	}
	for _, m := range cur {
		if len(m) != onion.MailboxMessageSize {
			return nil, fmt.Errorf("mix: baseline output has length %d, want %d", len(m), onion.MailboxMessageSize)
		}
	}
	return cur, nil
}

package mix

import (
	"errors"
	"testing"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/onion"
)

// buildHops keys k servers and wraps them as local hops, mirroring
// what NewChain does internally but leaving room to decorate
// individual positions.
func buildHops(t testing.TB, k int) []Hop {
	t.Helper()
	hops := make([]Hop, k)
	base := group.Generator()
	for i := 0; i < k; i++ {
		s := NewChainServer(0, i, base, scheme)
		hops[i] = LocalHop(s)
		base = s.Keys().Bpk
	}
	return hops
}

// TestChainFromHopsMatchesNewChain: a chain assembled from explicit
// local hops behaves exactly like NewChain's — full delivery.
func TestChainFromHopsMatchesNewChain(t *testing.T) {
	c, err := NewChainFromHops(0, buildHops(t, 3), scheme)
	if err != nil {
		t.Fatal(err)
	}
	if c.Remote() {
		t.Fatal("all-local chain reports remote positions")
	}
	if err := c.BeginRound(1); err != nil {
		t.Fatal(err)
	}
	subs, want := submitMany(t, c, 8)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || len(res.Delivered) != len(subs) {
		t.Fatalf("delivered %d of %d (halted=%v)", len(res.Delivered), len(subs), res.Halted)
	}
	for _, msg := range res.Delivered {
		if !want[string(msg)] {
			t.Fatal("unexpected message delivered")
		}
	}
}

// TestChainFromHopsRejectsBrokenChaining: position i's keys must
// chain off position i-1's blinding key.
func TestChainFromHopsRejectsBrokenChaining(t *testing.T) {
	hops := buildHops(t, 3)
	// Replace position 2 with a server keyed off the wrong base.
	hops[2] = LocalHop(NewChainServer(0, 2, group.Generator(), scheme))
	if _, err := NewChainFromHops(0, hops, scheme); err == nil {
		t.Fatal("mis-chained keys accepted")
	}
}

// TestChainFromHopsRejectsWrongPosition: a hop bound to another
// chain or index is refused at assembly.
func TestChainFromHopsRejectsWrongPosition(t *testing.T) {
	hops := buildHops(t, 2)
	s := NewChainServer(7, 1, hops[0].Keys().Bpk, scheme)
	hops[1] = LocalHop(s)
	if _, err := NewChainFromHops(0, hops, scheme); err == nil {
		t.Fatal("hop keyed for chain 7 accepted into chain 0")
	}
}

// byzantineHop decorates a position's hop, letting tests corrupt one
// response the way a hostile or broken remote process could. The
// chain must absorb every such response by halting and blaming the
// position — never by panicking.
type byzantineHop struct {
	Hop
	mutateMix  func(*MixResult) *MixResult
	mixErr     error
	revealErr  bool
	fakeReveal bool
}

func (b *byzantineHop) Mix(round uint64, nonce [aead.NonceSize]byte, in []onion.Envelope) (*MixResult, error) {
	if b.mixErr != nil {
		return nil, b.mixErr
	}
	mr, err := b.Hop.Mix(round, nonce, in)
	if err != nil {
		return nil, err
	}
	if b.mutateMix != nil {
		mr = b.mutateMix(mr)
	}
	return mr, nil
}

func (b *byzantineHop) RevealInnerKey(round uint64) (group.Scalar, error) {
	if b.revealErr {
		return group.Scalar{}, errors.New("connection reset by peer")
	}
	if b.fakeReveal {
		// A self-consistent but substituted key pair: g^isk' matches
		// an ipk' the hop would now claim, but not the ipk it proved
		// at announce time.
		return group.MustRandomScalar(), nil
	}
	return b.Hop.RevealInnerKey(round)
}

// runByzantine assembles a 3-position chain with position 1 decorated
// by bz, runs a round of honest submissions, and returns the result.
func runByzantine(t *testing.T, configure func(*byzantineHop)) *RoundResult {
	t.Helper()
	hops := buildHops(t, 3)
	bz := &byzantineHop{Hop: hops[1]}
	configure(bz)
	hops[1] = bz
	c, err := NewChainFromHops(0, hops, scheme)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BeginRound(1); err != nil {
		t.Fatal(err)
	}
	subs, _ := submitMany(t, c, 6)
	res, err := c.RunRound(1, 0, subs)
	if err != nil {
		t.Fatalf("byzantine hop leaked as orchestration error: %v", err)
	}
	return res
}

func expectHaltBlaming(t *testing.T, res *RoundResult, position int) {
	t.Helper()
	if !res.Halted {
		t.Fatal("chain did not halt")
	}
	for _, b := range res.BlamedServers {
		if b == position {
			return
		}
	}
	t.Fatalf("blamed %v, want position %d", res.BlamedServers, position)
}

func TestByzantineHopTransportErrorHalts(t *testing.T) {
	res := runByzantine(t, func(b *byzantineHop) {
		b.mixErr = errors.New("dial tcp: connection refused")
	})
	expectHaltBlaming(t, res, 1)
	if len(res.Delivered) != 0 {
		t.Fatal("halted chain delivered messages")
	}
}

func TestByzantineHopGarbagePermutationHalts(t *testing.T) {
	res := runByzantine(t, func(b *byzantineHop) {
		b.mutateMix = func(mr *MixResult) *MixResult {
			for i := range mr.Out2In {
				mr.Out2In[i] = 0 // not a permutation
			}
			return mr
		}
	})
	expectHaltBlaming(t, res, 1)
}

func TestByzantineHopOutOfRangePermutationHalts(t *testing.T) {
	res := runByzantine(t, func(b *byzantineHop) {
		b.mutateMix = func(mr *MixResult) *MixResult {
			mr.Out2In[0] = 1 << 30
			return mr
		}
	})
	expectHaltBlaming(t, res, 1)
}

func TestByzantineHopBogusFailedIndicesHalt(t *testing.T) {
	for _, failed := range [][]int{{-4}, {1 << 30}, {2, 2}, {3, 1}} {
		res := runByzantine(t, func(b *byzantineHop) {
			b.mutateMix = func(mr *MixResult) *MixResult {
				return &MixResult{Failed: failed}
			}
		})
		expectHaltBlaming(t, res, 1)
	}
}

func TestByzantineHopRevealFailureHalts(t *testing.T) {
	res := runByzantine(t, func(b *byzantineHop) { b.revealErr = true })
	expectHaltBlaming(t, res, 1)
}

// TestByzantineHopSubstitutedInnerKeyHalts: revealing a different —
// internally consistent — inner key pair than the one proved at
// announce time must be caught against the orchestrator's record,
// not silently corrupt the inner sum (which would drop every message
// as "malformed by its sender" with nobody blamed).
func TestByzantineHopSubstitutedInnerKeyHalts(t *testing.T) {
	res := runByzantine(t, func(b *byzantineHop) { b.fakeReveal = true })
	expectHaltBlaming(t, res, 1)
	if res.DroppedInner != 0 {
		t.Fatalf("substituted inner key misattributed to users: %d dropped", res.DroppedInner)
	}
}

// TestByzantineHopShortOutputHalts: dropping envelopes from the
// output fails the count check in VerifyMix.
func TestByzantineHopShortOutputHalts(t *testing.T) {
	res := runByzantine(t, func(b *byzantineHop) {
		b.mutateMix = func(mr *MixResult) *MixResult {
			mr.Out = mr.Out[:len(mr.Out)-1]
			return mr
		}
	})
	expectHaltBlaming(t, res, 1)
}

// TestByzantineHopBlameRevealRefusalConvicts: a hop that cannot (or
// will not) produce a blame reveal is convicted by the blame walk.
// Position 1 falsely fails a message so the blame protocol runs, and
// position 0 — whose reveal the walk needs — refuses.
type refusingHop struct{ Hop }

func (r refusingHop) BlameReveal(round uint64, msg, pos int) (BlameReveal, error) {
	return BlameReveal{}, errors.New("connection reset by peer")
}

func TestByzantineHopBlameRevealRefusalConvicts(t *testing.T) {
	hops := buildHops(t, 3)
	hops[0] = refusingHop{hops[0]}
	c, err := NewChainFromHops(0, hops, scheme)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BeginRound(1); err != nil {
		t.Fatal(err)
	}
	subs, _ := submitMany(t, c, 6)
	// A malicious submission whose decryption fails at position 1
	// forces the blame walk through position 0's reveal.
	bad, err := MaliciousSubmission(scheme, c.Params(), 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunRound(1, 0, append(subs, bad))
	if err != nil {
		t.Fatal(err)
	}
	expectHaltBlaming(t, res, 0)
}

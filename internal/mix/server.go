// Package mix implements XRD's mix chains: the baseline
// decrypt-and-shuffle of Algorithm 1, the aggregate hybrid shuffle
// (AHS) of §6 that detects active attacks with cheap discrete-log
// NIZKs, and the blame protocol of §6.4 that identifies misbehaving
// users and servers without hurting honest users' privacy.
//
// A Chain bundles the k servers of one anytrust group and runs rounds
// against them. Every server verifies every other server's proofs, as
// in the real protocol; the security guarantee only needs one of them
// to be honest. Fault injection hooks (Corruption) simulate malicious
// servers and users for tests and experiments.
package mix

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/nizk"
	"repro/internal/onion"
)

// Server is one mix server's membership in one chain, holding the
// three AHS key pairs of §6.1: a long-term blinding key and mixing
// key chained off the previous server's blinding key, and a per-round
// inner key.
type Server struct {
	// Chain is the chain this membership belongs to.
	Chain int
	// Index is the position in the chain, 0-based.
	Index int

	scheme aead.Scheme

	// AHS long-term keys (§6.1). bpkPrev is the base of this server's
	// keys: g for the first server, bpk_{i-1} otherwise.
	bsk, msk    group.Scalar
	bpk, mpk    group.Point
	bpkPrev     group.Point
	bskProof    nizk.Proof
	mskProof    nizk.Proof
	baselineKey group.KeyPair // plain g^msk' pair for Algorithm 1 mode
	// innerMu guards innerKeys and lastKeyRound. With round
	// pipelining the coordinator announces round ρ+2's keys
	// (BeginRound) while round ρ's mixing still reads and prunes the
	// map (InnerPublicKey, RevealInnerKey), so access is concurrent.
	innerMu sync.Mutex
	// innerKeys holds the per-round inner key pairs (isk, ipk=g^isk).
	// Keys for round ρ+1 are generated during round ρ so users can
	// build their cover messages one round ahead (§5.3.3); old rounds
	// are pruned after reveal, and BeginRound prunes too so servers on
	// halted or skipped chains — which never reach the reveal — do not
	// accumulate one key pair per round forever.
	innerKeys map[uint64]group.KeyPair
	// lastKeyRound is the highest round BeginRound has seen.
	lastKeyRound uint64

	// lastIn is the input batch of the last Mix call, retained for
	// the blame protocol's reveals and for re-certification after
	// blame removals. The outputs and the permutation are returned to
	// the orchestrator in MixResult; each verifier keeps its own
	// record of those (Chain does, per position), so the server holds
	// only what it alone can produce.
	lastIn []onion.Envelope

	// Corruption, when non-nil, makes the server misbehave; see
	// corrupt.go.
	Corruption *Corruption
}

// keyGenContext binds key-knowledge proofs to a chain position.
func keyGenContext(chain, index int, kind string) string {
	return fmt.Sprintf("xrd/keygen/chain=%d/server=%d/%s", chain, index, kind)
}

// innerKeyContext binds per-round inner keys to their round.
func innerKeyContext(chain, index int, round uint64) string {
	return fmt.Sprintf("xrd/innerkey/chain=%d/server=%d/round=%d", chain, index, round)
}

// NewChainServer generates a standalone mix server for position index
// of a chain, with long-term keys chained off base (= bpk_{i-1}, or g
// for the first position) and knowledge proofs as §6.1 requires. It
// is how a remote xrd-server process instantiates the one position it
// hosts; in-process chains call it through NewChain. A nil scheme
// selects ChaCha20-Poly1305.
func NewChainServer(chain, index int, base group.Point, scheme aead.Scheme) *Server {
	if scheme == nil {
		scheme = aead.ChaCha20Poly1305()
	}
	s := &Server{Chain: chain, Index: index, scheme: scheme, bpkPrev: base}
	s.bsk = group.MustRandomScalar()
	s.msk = group.MustRandomScalar()
	s.bpk = base.Mul(s.bsk)
	s.mpk = base.Mul(s.msk)
	s.bskProof = nizk.ProveDlog(keyGenContext(chain, index, "bsk"), base, s.bsk)
	s.mskProof = nizk.ProveDlog(keyGenContext(chain, index, "msk"), base, s.msk)
	s.baselineKey = group.GenerateBaseKeyPair()
	return s
}

// Keys returns the server's published key material: what it would
// put in the PKI for other chain members (and the orchestrator) to
// verify and chain off.
func (s *Server) Keys() HopKeys {
	return HopKeys{
		Chain:       s.Chain,
		Index:       s.Index,
		BpkPrev:     s.bpkPrev,
		Bpk:         s.bpk,
		Mpk:         s.mpk,
		BaselinePub: s.baselineKey.Public,
		BskProof:    s.bskProof,
		MskProof:    s.mskProof,
	}
}

// VerifyKeys checks the server's key-knowledge proofs against its
// published public keys, as every other chain member does at setup.
func (s *Server) VerifyKeys() error {
	return VerifyHopKeys(s.Keys())
}

// BeginRound generates the per-round inner key pair for the given
// round if it does not exist yet (§6.1) and returns the public inner
// key with its knowledge proof. It is idempotent per round, so the
// coordinator can announce round ρ+1's keys during round ρ for cover
// messages.
func (s *Server) BeginRound(round uint64) (group.Point, nizk.Proof) {
	s.innerMu.Lock()
	if s.innerKeys == nil {
		s.innerKeys = make(map[uint64]group.KeyPair)
	}
	kp, ok := s.innerKeys[round]
	if !ok {
		kp = group.GenerateBaseKeyPair()
		s.innerKeys[round] = kp
	}
	if round > s.lastKeyRound {
		s.lastKeyRound = round
		// Mirror Chain.innerAggs: anything older than two rounds
		// behind the newest announcement is unreachable
		// (RevealInnerKey prunes the success path, but a halted or
		// skipped chain never gets there, and §6.4 wants those keys
		// destroyed anyway). The window is two rounds, not one,
		// because a depth-2 pipeline announces round ρ+2 while round
		// ρ is still mixing and must later reveal.
		for r := range s.innerKeys {
			if r+2 < s.lastKeyRound {
				delete(s.innerKeys, r)
			}
		}
	}
	s.innerMu.Unlock()
	proof := nizk.ProveDlog(innerKeyContext(s.Chain, s.Index, round), group.Generator(), kp.Private)
	return kp.Public, proof
}

// InnerPublicKey returns the server's inner public key for round, if
// generated.
func (s *Server) InnerPublicKey(round uint64) (group.Point, bool) {
	s.innerMu.Lock()
	kp, ok := s.innerKeys[round]
	s.innerMu.Unlock()
	return kp.Public, ok
}

// RevealInnerKey discloses the per-round inner secret after mixing
// succeeded (§6.3) and prunes older rounds. Corrupt servers may
// refuse; the chain then halts without delivering, which leaks
// nothing (messages stay encrypted).
func (s *Server) RevealInnerKey(round uint64) (group.Scalar, error) {
	s.innerMu.Lock()
	defer s.innerMu.Unlock()
	kp, ok := s.innerKeys[round]
	if !ok {
		return group.Scalar{}, fmt.Errorf("mix: server %d has no inner key for round %d", s.Index, round)
	}
	if s.Corruption != nil && s.Corruption.WithholdInnerKey {
		return group.Scalar{}, fmt.Errorf("mix: server %d withheld its inner key", s.Index)
	}
	for r := range s.innerKeys {
		if r < round {
			delete(s.innerKeys, r)
		}
	}
	return kp.Private, nil
}

// mixContext binds a shuffle certificate to round, chain, position
// and a re-proof epoch (incremented after blame removes messages).
func mixContext(round uint64, chain, index, epoch int) string {
	return fmt.Sprintf("xrd/mix/round=%d/chain=%d/server=%d/epoch=%d", round, chain, index, epoch)
}

// MixResult is a server's output for one mixing step (§6.3): the
// blinded, shuffled envelopes, the shuffle certificate, the
// indices (into its input) whose authenticated decryption failed, and
// the output-to-input permutation. The permutation is disclosed to
// the orchestrator for lineage attribution and blame tracing — the
// same information the blame protocol would reveal per message (see
// roundState.origin); an honest deployment's privacy rests on the
// honest member's permutation staying inside that member.
type MixResult struct {
	Out    []onion.Envelope
	Proof  nizk.Proof
	Failed []int
	Out2In []int
}

// Mix performs §6.3 steps 1-3: decrypt every envelope, blind every
// Diffie-Hellman key with bsk, shuffle both with one permutation, and
// certify (∏ Xin)^bsk = ∏ Xout with a DLEQ against (bpkPrev, bpk).
//
// If any decryption fails, Mix returns the failed indices and no
// output; the chain moves to the blame protocol. Corrupt servers
// tamper according to their Corruption before proving.
func (s *Server) Mix(round uint64, nonce [aead.NonceSize]byte, in []onion.Envelope) (*MixResult, error) {
	s.lastIn = cloneEnvelopes(in)

	// Step 1: decrypt in parallel; collect failures.
	peeled := make([][]byte, len(in))
	failed := make([]int, 0)
	var mu sync.Mutex
	parallelRanges(len(in), func(lo, hi int) {
		var localFailed []int
		for j := lo; j < hi; j++ {
			pt, err := onion.PeelAHS(s.scheme, s.msk, nonce, in[j])
			if err != nil {
				localFailed = append(localFailed, j)
				continue
			}
			peeled[j] = pt
		}
		if len(localFailed) > 0 {
			mu.Lock()
			failed = append(failed, localFailed...)
			mu.Unlock()
		}
	})
	if len(failed) > 0 {
		sort.Ints(failed)
		return &MixResult{Failed: failed}, nil
	}
	if s.Corruption != nil && len(s.Corruption.FalselyAccuse) > 0 {
		f := append([]int(nil), s.Corruption.FalselyAccuse...)
		sort.Ints(f)
		return &MixResult{Failed: f}, nil
	}

	// Step 2: blind and shuffle, fanned over the same worker pool as
	// step 1 — the per-message blinding exponentiation is the other
	// half of the server's public-key cost (§6.3 step 2).
	out := make([]onion.Envelope, len(in))
	out2in := randomPermutation(len(in))
	parallelRanges(len(in), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			j := out2in[p]
			out[p] = onion.Envelope{DHKey: in[j].DHKey.Mul(s.bsk), Ct: peeled[j]}
		}
	})

	const epoch = 0
	if s.Corruption != nil {
		out = s.Corruption.applyMix(s, in, out, out2in)
	}

	// Step 3: shuffle certificate.
	prodIn := productOfKeys(in)
	proof := nizk.ProveDleq(mixContext(round, s.Chain, s.Index, epoch), prodIn, s.bpkPrev, s.bsk)
	if s.Corruption != nil && s.Corruption.BadMixProof {
		proof.S = proof.S.Add(group.NewScalar(1))
	}

	return &MixResult{Out: out, Proof: proof, Out2In: out2in}, nil
}

// BlameRevealAt produces the server's blame disclosure for the
// message at input position pos of its last Mix call; msg names the
// accused working index and only binds the proof contexts. The bounds
// check matters for the remote transport: a confused or hostile
// orchestrator must get an error, never a panic.
func (s *Server) BlameRevealAt(round uint64, msg, pos int) (BlameReveal, error) {
	if pos < 0 || pos >= len(s.lastIn) {
		return BlameReveal{}, fmt.Errorf("mix: server %d has no input position %d", s.Index, pos)
	}
	xin := s.lastIn[pos].DHKey
	return BlameReveal{
		Xin:        xin,
		BlindProof: nizk.ProveDleq(blameContext(round, s.Chain, s.Index, msg, "blind"), xin, s.bpkPrev, s.bsk),
		K:          xin.Mul(s.msk),
		KeyProof:   nizk.ProveDleq(blameContext(round, s.Chain, s.Index, msg, "key"), xin, s.bpkPrev, s.msk),
	}, nil
}

// Accuse is blame step 4: the accusing server reveals its exchanged
// key for the accused message's Diffie-Hellman key, with proof it
// matches the published mixing key, so everyone can check the
// decryption really fails.
func (s *Server) Accuse(round uint64, msg int, key group.Point) AccuseReveal {
	return AccuseReveal{
		K:     key.Mul(s.msk),
		Proof: nizk.ProveDleq(blameContext(round, s.Chain, s.Index, msg, "accuse"), key, s.bpkPrev, s.msk),
	}
}

// VerifyMix is the check every other server runs on a peer's shuffle
// certificate (§6.3 step 3): the products of the input and output
// keys must be related by the peer's published blinding key.
func VerifyMix(round uint64, chain, index, epoch int, bpkPrev, bpk group.Point, in, out []onion.Envelope, proof nizk.Proof) error {
	if len(in) != len(out) {
		return fmt.Errorf("mix: server %d changed the message count %d -> %d", index, len(in), len(out))
	}
	prodIn := productOfKeys(in)
	prodOut := productOfKeys(out)
	if err := nizk.VerifyDleq(mixContext(round, chain, index, epoch), prodIn, prodOut, bpkPrev, bpk, proof); err != nil {
		return fmt.Errorf("mix: server %d shuffle certificate: %w", index, err)
	}
	return nil
}

// ReProveSubset re-issues the shuffle certificate over the messages
// that survived blame removal (§6.4: "the servers just have to repeat
// step 3"). keep[j] says whether this server's input j survived.
func (s *Server) ReProveSubset(round uint64, epoch int, keep []bool) (nizk.Proof, error) {
	if len(keep) != len(s.lastIn) {
		return nizk.Proof{}, fmt.Errorf("mix: server %d re-proof over %d messages, had %d", s.Index, len(keep), len(s.lastIn))
	}
	var kept []onion.Envelope
	for j, k := range keep {
		if k {
			kept = append(kept, s.lastIn[j])
		}
	}
	return nizk.ProveDleq(mixContext(round, s.Chain, s.Index, epoch), productOfKeys(kept), s.bpkPrev, s.bsk), nil
}

func productOfKeys(envs []onion.Envelope) group.Point {
	keys := make([]group.Point, len(envs))
	for i, e := range envs {
		keys[i] = e.DHKey
	}
	return group.Product(keys)
}

func cloneEnvelopes(envs []onion.Envelope) []onion.Envelope {
	out := make([]onion.Envelope, len(envs))
	for i, e := range envs {
		out[i] = e.Clone()
	}
	return out
}

// randomPermutation draws a uniform permutation from crypto/rand;
// the honest server's secret permutation is what hides message
// origins, so it must not come from a seedable PRNG.
func randomPermutation(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := randInt(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func randInt(n int) int {
	v, err := rand.Int(rand.Reader, big.NewInt(int64(n)))
	if err != nil {
		panic(fmt.Sprintf("mix: system randomness failed: %v", err))
	}
	return int(v.Int64())
}

// parallelRanges splits [0, n) into one contiguous range per worker
// and runs fn on each concurrently. With a single worker (or tiny n)
// it degenerates to a direct call.
func parallelRanges(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	stride := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*stride, (w+1)*stride
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// InputDigest hashes an input set so the chain's servers can agree on
// what they are mixing (§6.3: "the servers first agree on the inputs
// for this round").
func InputDigest(round uint64, chain int, subs []onion.Submission) [32]byte {
	h := newDigest()
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[:8], round)
	binary.BigEndian.PutUint64(hdr[8:], uint64(chain))
	h.Write(hdr[:])
	for _, sub := range subs {
		h.Write(sub.DHKey.Bytes())
		h.Write(sub.Ct)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

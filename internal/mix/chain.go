package mix

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"sync"
	"time"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/nizk"
	"repro/internal/obs"
	"repro/internal/onion"
)

// Per-chain stage timings, observed by every RunRound regardless of
// outcome. The coordinator's round trace consumes the same numbers
// through RoundResult; these histograms make them scrapeable from
// whichever process hosts the chain orchestration.
var (
	obsChainVerifySeconds = obs.GetOrCreateHistogram("xrd_chain_verify_seconds")
	obsChainMixSeconds    = obs.GetOrCreateHistogram("xrd_chain_mix_seconds")
)

func newDigest() hash.Hash { return sha256.New() }

// Chain is one anytrust mix chain of k positions (§5.2). It exposes
// the public key material users need and executes rounds, simulating
// the mutual proof verification every member performs. One honest
// member suffices for the guarantees; the Chain verifies everything,
// which is exactly what the honest server would do.
//
// Each position is reached through a Hop: in-process by default, or a
// separate xrd-server process over the TLS hop transport. The Chain
// keeps its own record of every batch it sent to and received from a
// position, so all verification (shuffle certificates, blame replays,
// re-certification) runs against data the orchestrator observed — a
// remote position can lie only about what it alone knows, and every
// such lie is caught by a proof check and converted into blame.
type Chain struct {
	// ID is the chain index within the network.
	ID int
	// Servers are the in-process members in mixing order; a position
	// hosted remotely has a nil entry. Fault injection (Corruption)
	// and baseline mode need the in-process server.
	Servers []*Server

	// hops are the transport handles, one per position.
	hops []Hop
	// keys caches every position's verified public key material.
	keys []HopKeys

	scheme aead.Scheme

	// keyMu guards lastBegun and innerAggs so that ParamsFor (the
	// client-facing key lookup) is safe concurrently with the
	// coordinator announcing the next round's keys.
	keyMu sync.RWMutex
	// lastBegun is the highest round BeginRound has seen.
	lastBegun uint64
	// innerAggs maps round -> ∏ ipk_i. Round ρ+1's aggregate is
	// published during round ρ so users can build cover messages
	// (§5.3.3). BeginRound prunes rounds older than lastBegun−1, so
	// the map holds at most the current and next round and a
	// long-running server does not accumulate one entry per round.
	innerAggs map[uint64]group.Point
	// innerKeys maps round -> the proof-verified ipk_i of every
	// position, recorded at announce time. The reveal check compares
	// g^isk against THIS record, never against what the position
	// currently claims its inner key is: a byzantine hop could
	// otherwise substitute a consistent fake (ipk', isk') at reveal
	// and silently corrupt the inner sum (every message would then be
	// dropped as "malformed by its sender", with nobody blamed).
	// Pruned in lockstep with innerAggs.
	innerKeys map[uint64][]group.Point
}

// Params is the public key material users need to submit to a chain.
type Params struct {
	ChainID int
	// MixKeys are the AHS mixing keys mpk_i in order (§6.1).
	MixKeys []group.Point
	// BlindKeys are the blinding keys bpk_i in order.
	BlindKeys []group.Point
	// BaselineKeys are the plain g^msk keys for Algorithm 1 mode.
	BaselineKeys []group.Point
	// InnerAggregate is ∏ ipk_i for the current round (AHS inner
	// envelope key).
	InnerAggregate group.Point
	// Round is the round InnerAggregate is valid for.
	Round uint64
}

// NewChain creates a chain of k freshly keyed in-process servers and
// verifies every member's key-knowledge proofs.
func NewChain(id, k int, scheme aead.Scheme) (*Chain, error) {
	if k < 1 {
		return nil, fmt.Errorf("mix: chain needs at least one server, got %d", k)
	}
	if scheme == nil {
		scheme = aead.ChaCha20Poly1305()
	}
	hops := make([]Hop, k)
	base := group.Generator()
	for i := 0; i < k; i++ {
		s := NewChainServer(id, i, base, scheme)
		hops[i] = LocalHop(s)
		base = s.bpk
	}
	return NewChainFromHops(id, hops, scheme)
}

// NewChainFromHops assembles a chain over pre-built hops — local
// servers, remote processes, or a mixture — verifying every
// position's key-knowledge proofs and that each position's keys chain
// off the previous position's blinding key (§6.1).
func NewChainFromHops(id int, hops []Hop, scheme aead.Scheme) (*Chain, error) {
	if len(hops) < 1 {
		return nil, fmt.Errorf("mix: chain needs at least one server, got %d", len(hops))
	}
	if scheme == nil {
		scheme = aead.ChaCha20Poly1305()
	}
	c := &Chain{ID: id, scheme: scheme}
	base := group.Generator()
	for i, h := range hops {
		k := h.Keys()
		if k.Chain != id || k.Index != i {
			return nil, fmt.Errorf("mix: hop at position %d of chain %d published keys for chain %d position %d",
				i, id, k.Chain, k.Index)
		}
		if !k.BpkPrev.Equal(base) {
			return nil, fmt.Errorf("mix: chain %d: position %d's keys are not chained off position %d's blinding key", id, i, i-1)
		}
		if err := VerifyHopKeys(k); err != nil {
			return nil, err
		}
		c.hops = append(c.hops, h)
		c.keys = append(c.keys, k)
		if lh, ok := h.(localHop); ok {
			c.Servers = append(c.Servers, lh.s)
		} else {
			c.Servers = append(c.Servers, nil)
		}
		base = k.Bpk
	}
	return c, nil
}

// Len returns k, the number of positions in the chain.
func (c *Chain) Len() int { return len(c.hops) }

// Remote reports whether any position is hosted outside this process.
func (c *Chain) Remote() bool {
	for _, s := range c.Servers {
		if s == nil {
			return true
		}
	}
	return false
}

// BeginRound ensures every position has an inner key for the round,
// verifies the inner-key proofs, and publishes the aggregate inner
// key. It is idempotent per round; the coordinator announces round
// ρ+1 during round ρ so users can build covers.
func (c *Chain) BeginRound(round uint64) error {
	c.keyMu.Lock()
	defer c.keyMu.Unlock()
	if c.innerAggs == nil {
		c.innerAggs = make(map[uint64]group.Point)
		c.innerKeys = make(map[uint64][]group.Point)
	}
	if _, ok := c.innerAggs[round]; ok {
		if round > c.lastBegun {
			c.lastBegun = round
		}
		return nil
	}
	agg := group.Identity()
	ipks := make([]group.Point, len(c.hops))
	for i, h := range c.hops {
		ipk, proof, err := h.BeginRound(round)
		if err != nil {
			return &HopError{Chain: c.ID, Position: i, Err: fmt.Errorf("inner key: %w", err)}
		}
		if err := nizk.VerifyDlog(innerKeyContext(c.ID, i, round), group.Generator(), ipk, proof); err != nil {
			return &HopError{Chain: c.ID, Position: i, Err: fmt.Errorf("inner key proof: %w", err)}
		}
		ipks[i] = ipk
		agg = agg.Add(ipk)
	}
	if round > c.lastBegun {
		c.lastBegun = round
	}
	c.innerAggs[round] = agg
	c.innerKeys[round] = ipks
	// Drop aggregates no round can use any more. A pipelined
	// coordinator announces up to ρ+2 while round ρ is still mixing
	// (and will still read innerKeys[ρ] at reveal time), so the
	// window keeps the last three announced rounds. Without this the
	// map grows by one entry per round for the life of the server.
	for r := range c.innerAggs {
		if r+2 < c.lastBegun {
			delete(c.innerAggs, r)
			delete(c.innerKeys, r)
		}
	}
	return nil
}

// ParamsFor returns the chain's public parameters for a round whose
// inner keys have been announced.
func (c *Chain) ParamsFor(round uint64) (Params, error) {
	c.keyMu.RLock()
	agg, ok := c.innerAggs[round]
	c.keyMu.RUnlock()
	if !ok {
		return Params{}, fmt.Errorf("mix: chain %d has not begun round %d", c.ID, round)
	}
	p := Params{ChainID: c.ID, InnerAggregate: agg, Round: round}
	for _, k := range c.keys {
		p.MixKeys = append(p.MixKeys, k.Mpk)
		p.BlindKeys = append(p.BlindKeys, k.Bpk)
		p.BaselineKeys = append(p.BaselineKeys, k.BaselinePub)
	}
	return p, nil
}

// Params returns the public parameters for the most recently begun
// round.
func (c *Chain) Params() Params {
	c.keyMu.RLock()
	last := c.lastBegun
	c.keyMu.RUnlock()
	p, err := c.ParamsFor(last)
	if err != nil {
		panic(err) // unreachable: lastBegun is always announced
	}
	return p
}

// RoundResult is the outcome of running one round on a chain.
type RoundResult struct {
	// Delivered are the plaintext mailbox messages (for the mailbox
	// servers) in shuffled order. Empty if the chain halted.
	Delivered [][]byte
	// Halted reports that mixing stopped with no delivery because a
	// server misbehaved (§6.3: "the protocol halts with no privacy
	// leakage").
	Halted bool
	// BlamedServers are chain positions whose proofs failed.
	BlamedServers []int
	// BlamedUsers are indices into the submission slice of users
	// identified as malicious by proof failure at submission or by
	// the blame protocol (§6.4).
	BlamedUsers []int
	// DroppedInner counts messages whose inner envelope failed to
	// open after a verified shuffle (malformed by their sender; their
	// origin is untraceable by design and they are simply dropped).
	DroppedInner int
	// BlameRounds counts how many blame protocol executions ran.
	BlameRounds int
	// VerifyDur and MixDur are the round's stage timings for
	// observability: the submission-proof/input-agreement stage and
	// everything after it (mixing steps, reveal, inner decryption).
	// Zero when the stage never ran.
	VerifyDur time.Duration
	MixDur    time.Duration
}

// roundState tracks the working set between mixing steps.
type roundState struct {
	// envs are the envelopes entering the current server.
	envs []onion.Envelope
	// origin[j] is the original submission index of envs[j]. In the
	// distributed protocol this mapping is secret (held piecewise in
	// the servers' permutations) and only revealed per message by the
	// blame protocol; the orchestrator tracks it for attribution and
	// reporting, reading the same permutations blame would reveal.
	origin []int
	// slot[j] is envs[j]'s position in the current server's original
	// (pre-blame-removal) input, i.e. in the previous server's stored
	// output. It anchors upstream walks after removals.
	slot []int
	// subs are the originally submitted, proof-checked submissions,
	// indexed by original submission index, for the blame protocol's
	// step 3 ("check c_1 matches the user submitted ciphertext").
	subs map[int]onion.Submission
}

// posRecord is the orchestrator's record of one position's traffic:
// the batch it sent in, the batch it got back, the disclosed
// permutation, and where each input sat in the previous position's
// output. Every verification — shuffle certificates, blame replays,
// re-certification after removals — reads these records, never the
// position's own claims, which is what lets a position live on an
// untrusted remote process.
type posRecord struct {
	in      []onion.Envelope
	out     []onion.Envelope
	out2in  []int
	inSlots []int
}

// RunRound executes one full AHS round (§6.3) over the submissions:
// submission proof checks, input agreement, k mixing steps each
// verified by all members, blame on decryption failures (§6.4), inner
// key reveal and inner decryption.
//
// The returned error indicates an orchestration failure (wrong round,
// internal corruption); protocol misbehaviour — including a remote
// hop that dies, stalls past its transport deadline, or returns
// garbage — is reported in RoundResult instead.
func (c *Chain) RunRound(round uint64, lane byte, subs []onion.Submission) (*RoundResult, error) {
	c.keyMu.RLock()
	_, ok := c.innerAggs[round]
	c.keyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("mix: chain %d asked to run round %d before its keys were announced", c.ID, round)
	}
	nonce := aead.RoundNonce(round, lane)
	res := &RoundResult{}
	verifyStart := time.Now()

	// Submission proof checks (§6.2): an invalid PoK identifies its
	// sender immediately. Proofs are verified in parallel batches
	// (one multi-scalar multiplication per chunk); failing chunks are
	// bisected, so the blamed indices are identical to the seed's
	// serial per-proof loop.
	st := &roundState{subs: make(map[int]onion.Submission, len(subs))}
	bad := VerifySubmissionProofs(subs, round, c.ID)
	res.BlamedUsers = append(res.BlamedUsers, bad...)
	badSet := make(map[int]bool, len(bad))
	for _, i := range bad {
		badSet[i] = true
	}
	for i, sub := range subs {
		if badSet[i] {
			continue
		}
		st.envs = append(st.envs, sub.Envelope)
		st.origin = append(st.origin, i)
		st.subs[i] = sub
	}

	// Input agreement (§6.3): all servers hash the accepted input set
	// and compare. In-process every server sees the same slice; the
	// digest is recomputed per position to mirror the distributed
	// check.
	accepted := make([]onion.Submission, len(st.envs))
	for j := range st.envs {
		accepted[j] = st.subs[st.origin[j]]
	}
	want := InputDigest(round, c.ID, accepted)
	for range c.hops {
		if InputDigest(round, c.ID, accepted) != want {
			return nil, fmt.Errorf("mix: chain %d: input agreement failed", c.ID)
		}
	}
	res.VerifyDur = time.Since(verifyStart)
	obsChainVerifySeconds.ObserveDuration(res.VerifyDur)
	mixStart := time.Now()
	defer func() {
		res.MixDur = time.Since(mixStart)
		obsChainMixSeconds.ObserveDuration(res.MixDur)
	}()

	if len(st.envs) == 0 {
		// Nothing to mix; an empty product cannot be certified (the
		// identity element is rejected by the DLEQ), and there is
		// nothing to protect either.
		return res, nil
	}

	// Mixing steps. states holds the orchestrator's per-position
	// traffic records for this round's blame and re-certification.
	states := make([]posRecord, len(c.hops))
	i := 0
	epochs := make([]int, len(c.hops))
	for i < len(c.hops) {
		h := c.hops[i]
		hk := c.keys[i]
		st.slot = identitySlots(len(st.envs), st.slot, st.slot == nil)
		states[i].in = st.envs
		states[i].inSlots = append([]int(nil), st.slot...)
		mr, err := h.Mix(round, nonce, st.envs)
		if err != nil {
			// The hop transport failed: the position is unreachable,
			// timed out or sent garbage. The chain cannot distinguish
			// a crashed member from a cheating one, so it halts with
			// nothing revealed, exactly like a failed proof (§6.3).
			res.Halted = true
			res.BlamedServers = append(res.BlamedServers, i)
			return res, nil
		}
		if len(mr.Failed) > 0 {
			if !validFailedIndices(mr.Failed, len(st.envs)) {
				// Accusations against positions that do not exist:
				// only a byzantine hop produces these.
				res.Halted = true
				res.BlamedServers = append(res.BlamedServers, i)
				return res, nil
			}
			res.BlameRounds++
			verdict := c.runBlame(round, nonce, i, mr.Failed, st, states)
			res.BlamedServers = append(res.BlamedServers, verdict.Servers...)
			res.BlamedUsers = append(res.BlamedUsers, verdict.Users...)
			if len(verdict.Servers) > 0 {
				// A server cheated: the honest members delete their
				// inner keys and the round aborts with nothing
				// revealed (§6.4).
				res.Halted = true
				return res, nil
			}
			// All bad messages traced to users: remove them and have
			// the upstream servers re-certify the surviving subset
			// (§6.4 closing paragraph), then retry this server.
			removed := make(map[int]bool, len(mr.Failed))
			for _, j := range mr.Failed {
				removed[j] = true
			}
			if len(removed) == len(st.envs) {
				// Every remaining message was removed as malicious;
				// nothing is left to mix, certify or deliver.
				st.filter(removed)
				return res, nil
			}
			if i > 0 {
				keepFull := make([]bool, len(states[i-1].out))
				for j := range st.envs {
					if !removed[j] {
						keepFull[st.slot[j]] = true
					}
				}
				if err := c.reCertifyUpstream(round, i, keepFull, epochs, states); err != nil {
					res.Halted = true
					res.BlamedServers = append(res.BlamedServers, i-1)
					return res, nil
				}
			}
			st.filter(removed)
			continue
		}
		// Every member verifies the shuffle certificate; the chain
		// halts on failure (the honest server refuses to continue).
		if err := VerifyMix(round, c.ID, i, epochs[i], hk.BpkPrev, hk.Bpk, st.envs, mr.Out, mr.Proof); err != nil {
			res.Halted = true
			res.BlamedServers = append(res.BlamedServers, i)
			return res, nil
		}
		// The disclosed permutation must actually be one before the
		// orchestrator indexes with it — a remote position's word is
		// not trusted for memory safety.
		if !isPermutation(mr.Out2In, len(st.envs)) {
			res.Halted = true
			res.BlamedServers = append(res.BlamedServers, i)
			return res, nil
		}
		// Record the position's output and lineage, then advance:
		// outputs become the next position's inputs and origins
		// follow the permutation the server privately applied.
		states[i].out = mr.Out
		states[i].out2in = mr.Out2In
		newOrigin := make([]int, len(st.origin))
		for p, j := range mr.Out2In {
			newOrigin[p] = st.origin[j]
		}
		st.envs, st.origin, st.slot = mr.Out, newOrigin, nil
		i++
	}

	// Reveal inner keys (§6.3) and decrypt the inner envelopes. Each
	// revealed secret is checked against the ipk that was
	// proof-verified at announce time — the key users actually
	// encrypted against — not against anything the position claims
	// now.
	c.keyMu.RLock()
	announced := c.innerKeys[round]
	c.keyMu.RUnlock()
	innerSum := group.NewScalar(0)
	for i, h := range c.hops {
		isk, err := h.RevealInnerKey(round)
		if err != nil || !group.Base(isk).Equal(announced[i]) {
			res.Halted = true
			res.BlamedServers = append(res.BlamedServers, i)
			return res, nil
		}
		innerSum = innerSum.Add(isk)
	}
	for _, env := range st.envs {
		msg, err := onion.OpenInner(c.scheme, innerSum, nonce, env.Ct)
		if err != nil {
			res.DroppedInner++
			continue
		}
		res.Delivered = append(res.Delivered, msg)
	}
	return res, nil
}

// identitySlots resets the slot map when entering a new server (each
// message's slot is then simply its index) and keeps it across blame
// retries at the same server.
func identitySlots(n int, cur []int, reset bool) []int {
	if !reset && cur != nil {
		return cur
	}
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// filter drops the removed working indices.
func (st *roundState) filter(removed map[int]bool) {
	var envs []onion.Envelope
	var origin, slot []int
	for j := range st.envs {
		if removed[j] {
			continue
		}
		envs = append(envs, st.envs[j])
		origin = append(origin, st.origin[j])
		slot = append(slot, st.slot[j])
	}
	st.envs, st.origin, st.slot = envs, origin, slot
}

// reCertifyUpstream makes positions 0..upto-1 re-issue their shuffle
// certificates over the surviving messages after blame removal, and
// verifies them against the reduced key products. keepFull is indexed
// by position upto-1's output positions; walking upstream, positions
// are translated through each server's permutation and its input
// slot map (non-identity only if it re-mixed a reduced set).
func (c *Chain) reCertifyUpstream(round uint64, upto int, keepFull []bool, epochs []int, states []posRecord) error {
	keepAt := keepFull
	for i := upto - 1; i >= 0; i-- {
		rec := &states[i]
		inKeep := make([]bool, len(rec.in))
		for p, k := range keepAt {
			if k {
				inKeep[rec.out2in[p]] = true
			}
		}
		epochs[i]++
		proof, err := c.hops[i].ReProveSubset(round, epochs[i], inKeep)
		if err != nil {
			return fmt.Errorf("mix: server %d re-certification: %w", i, err)
		}
		var keptIn, keptOut []onion.Envelope
		for j, k := range inKeep {
			if k {
				keptIn = append(keptIn, rec.in[j])
			}
		}
		for p, k := range keepAt {
			if k {
				keptOut = append(keptOut, rec.out[p])
			}
		}
		if err := nizk.VerifyDleq(mixContext(round, c.ID, i, epochs[i]),
			productOfKeys(keptIn), productOfKeys(keptOut), c.keys[i].BpkPrev, c.keys[i].Bpk, proof); err != nil {
			return fmt.Errorf("mix: server %d re-certification: %w", i, err)
		}
		if i == 0 {
			break
		}
		prevKeep := make([]bool, len(states[i-1].out))
		for j, k := range inKeep {
			if k {
				prevKeep[rec.inSlots[j]] = true
			}
		}
		keepAt = prevKeep
	}
	return nil
}

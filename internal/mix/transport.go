package mix

import (
	"fmt"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/nizk"
	"repro/internal/onion"
)

// The hop transport abstraction. A Chain is an orchestration of k
// positions; everything the orchestrator needs from a position goes
// through the Hop interface, so a position can live in this process
// (LocalHop, the default — batches pass by slice reference, zero
// copies) or in a separate xrd-server process reached over TLS
// (rpc.HopClient). The Chain treats every hop as untrusted: proofs
// are verified against the chain's own record of what it sent and
// received, malformed responses are converted into blame, and a hop
// that errors mid-round halts the chain exactly like a server caught
// cheating (§6.3/§6.4 — halting leaks nothing).

// HopKeys is the public key material one chain position publishes at
// setup (§6.1): the blinding and mixing keys chained off the previous
// position's blinding key, the Algorithm 1 baseline key, and the
// knowledge proofs every other member checks.
type HopKeys struct {
	Chain int
	Index int
	// BpkPrev is the base of this position's keys: g for the first
	// position, bpk_{i-1} otherwise.
	BpkPrev group.Point
	// Bpk and Mpk are the AHS blinding and mixing public keys.
	Bpk, Mpk group.Point
	// BaselinePub is the plain g^msk' key for Algorithm 1 mode.
	BaselinePub group.Point
	// BskProof and MskProof prove knowledge of the two secrets.
	BskProof, MskProof nizk.Proof
}

// VerifyHopKeys checks a position's key-knowledge proofs against its
// published public keys, as every chain member does at setup.
func VerifyHopKeys(k HopKeys) error {
	if err := nizk.VerifyDlog(keyGenContext(k.Chain, k.Index, "bsk"), k.BpkPrev, k.Bpk, k.BskProof); err != nil {
		return fmt.Errorf("mix: server %d blinding key proof: %w", k.Index, err)
	}
	if err := nizk.VerifyDlog(keyGenContext(k.Chain, k.Index, "msk"), k.BpkPrev, k.Mpk, k.MskProof); err != nil {
		return fmt.Errorf("mix: server %d mixing key proof: %w", k.Index, err)
	}
	return nil
}

// BlameReveal is one position's disclosure for one problem message in
// the blame protocol (§6.4).
type BlameReveal struct {
	// Xin is the message's Diffie-Hellman key as it entered the
	// position (step 1 of §6.4).
	Xin group.Point
	// BlindProof shows log_Xin(Xout) = log_bpkPrev(bpk) = bsk.
	BlindProof nizk.Proof
	// K is the exchanged decryption key Xin^msk (step 2).
	K group.Point
	// KeyProof shows log_Xin(K) = log_bpkPrev(mpk) = msk.
	KeyProof nizk.Proof
}

// AccuseReveal is the accusing position's disclosure in blame step 4:
// its exchanged key for the accused message, with proof it matches
// the published mixing key.
type AccuseReveal struct {
	K     group.Point
	Proof nizk.Proof
}

// Hop is the chain orchestrator's handle on one chain position. All
// round traffic — the onion batch hop to hop, shuffle certification,
// and blame material — crosses this interface, so implementations
// decide whether a position is an in-process function call or a
// remote process on the far side of a TLS connection.
//
// Implementations must validate anything that crossed a network
// before returning it (parse points and proofs, check index ranges);
// the Chain additionally re-checks structural properties (permutation
// validity, batch sizes) so a hostile hop can at worst halt its own
// chain.
type Hop interface {
	// Keys returns the position's published key material. It must be
	// valid for the lifetime of the hop (keys are long-term, §6.1).
	Keys() HopKeys
	// BeginRound generates (idempotently) the position's per-round
	// inner key and returns the public key with its knowledge proof.
	BeginRound(round uint64) (group.Point, nizk.Proof, error)
	// RevealInnerKey discloses the per-round inner secret after
	// mixing succeeded (§6.3). The chain checks the revealed secret
	// against the inner public key it verified at BeginRound, so an
	// implementation cannot substitute a different (consistent) pair.
	RevealInnerKey(round uint64) (group.Scalar, error)
	// Mix carries the batch to the position and returns its mixing
	// step output: either Failed indices (decryption failures, blame
	// follows) or the shuffled output with certificate and the
	// output-to-input permutation for the orchestrator's lineage
	// bookkeeping (see roundState.origin for why it is revealed).
	Mix(round uint64, nonce [aead.NonceSize]byte, in []onion.Envelope) (*MixResult, error)
	// ReProveSubset re-issues the shuffle certificate over the
	// messages that survived blame removal (§6.4).
	ReProveSubset(round uint64, epoch int, keep []bool) (nizk.Proof, error)
	// BlameReveal produces the position's blame disclosure for the
	// message at its input position pos; msg names the accused
	// working index (context binding only).
	BlameReveal(round uint64, msg, pos int) (BlameReveal, error)
	// Accuse produces the accusing position's step 4 disclosure for
	// the given submitted Diffie-Hellman key.
	Accuse(round uint64, msg int, key group.Point) (AccuseReveal, error)
}

// HopError attributes a hop failure to its chain position. The chain
// wraps transport and verification failures from per-position calls
// in it so an orchestrator can translate the position into a server
// identity — the input the eviction step of epoch recovery needs.
type HopError struct {
	Chain    int
	Position int
	Err      error
}

func (e *HopError) Error() string {
	return fmt.Sprintf("mix: chain %d position %d: %v", e.Chain, e.Position, e.Err)
}

func (e *HopError) Unwrap() error { return e.Err }

// localHop adapts an in-process *Server to the Hop interface. It is
// the zero-copy default: batches pass by reference, nothing is
// serialised.
type localHop struct{ s *Server }

// LocalHop wraps an in-process mix server as a chain hop.
func LocalHop(s *Server) Hop { return localHop{s: s} }

func (h localHop) Keys() HopKeys { return h.s.Keys() }

func (h localHop) BeginRound(round uint64) (group.Point, nizk.Proof, error) {
	ipk, proof := h.s.BeginRound(round)
	return ipk, proof, nil
}

func (h localHop) RevealInnerKey(round uint64) (group.Scalar, error) {
	return h.s.RevealInnerKey(round)
}

func (h localHop) Mix(round uint64, nonce [aead.NonceSize]byte, in []onion.Envelope) (*MixResult, error) {
	return h.s.Mix(round, nonce, in)
}

func (h localHop) ReProveSubset(round uint64, epoch int, keep []bool) (nizk.Proof, error) {
	return h.s.ReProveSubset(round, epoch, keep)
}

func (h localHop) BlameReveal(round uint64, msg, pos int) (BlameReveal, error) {
	return h.s.BlameRevealAt(round, msg, pos)
}

func (h localHop) Accuse(round uint64, msg int, key group.Point) (AccuseReveal, error) {
	return h.s.Accuse(round, msg, key), nil
}

// isPermutation reports whether p is a permutation of [0, n). The
// chain checks every permutation a hop returns before indexing with
// it, so a byzantine remote cannot crash the orchestrator.
func isPermutation(p []int, n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// validFailedIndices reports whether a hop's Failed list is sorted,
// duplicate-free and within [0, n) — the shape Server.Mix produces
// and the blame path relies on.
func validFailedIndices(failed []int, n int) bool {
	prev := -1
	for _, j := range failed {
		if j <= prev || j >= n {
			return false
		}
		prev = j
	}
	return true
}

package mix

import (
	"bytes"
	"fmt"

	"repro/internal/aead"
	"repro/internal/nizk"
	"repro/internal/onion"
)

// The blame protocol (§6.4) runs when an authenticated decryption
// fails at some server h. For each problem ciphertext, the upstream
// servers reveal, in order, (a) the pre-blinding Diffie-Hellman key
// of that message with a DLEQ proof that their blinding was applied
// correctly, and (b) the exchanged decryption key with a DLEQ proof
// it matches their mixing key, letting everyone replay the decryption
// chain from the user's submitted ciphertext down to the problem
// ciphertext. If the whole chain checks out, the submitting user is
// malicious and is removed; if any server's reveal fails to verify,
// that server is blamed and the round halts with the inner keys
// destroyed, so nothing about honest users leaks either way.
//
// Reveals arrive through the hop transport; every verification runs
// against the orchestrator's own posRecord of the position's traffic,
// so a remote position that refuses to reveal, or reveals something
// inconsistent with what it actually forwarded, convicts itself.

// blameVerdict is the outcome of one blame protocol execution.
type blameVerdict struct {
	// Servers are blamed chain positions (at most one per execution
	// in practice; the first failure stops the walk).
	Servers []int
	// Users are blamed original submission indices.
	Users []int
}

// blameContext binds blame reveals to round, chain, server, message
// and step, so reveals cannot be replayed across messages.
func blameContext(round uint64, chain, server, msg int, step string) string {
	return fmt.Sprintf("xrd/blame/round=%d/chain=%d/server=%d/msg=%d/%s", round, chain, server, msg, step)
}

// runBlame executes the blame protocol at accusing position h for
// every failed working index. st carries the working set and lineage
// anchors (see roundState); states the per-position traffic records.
func (c *Chain) runBlame(round uint64, nonce [aead.NonceSize]byte, h int, failed []int, st *roundState, states []posRecord) blameVerdict {
	var v blameVerdict
	blamedServers := make(map[int]bool)
	for _, j := range failed {
		sv := c.blameOne(round, nonce, h, j, st, states)
		for _, b := range sv.Servers {
			if !blamedServers[b] {
				blamedServers[b] = true
				v.Servers = append(v.Servers, b)
			}
		}
		v.Users = append(v.Users, sv.Users...)
	}
	return v
}

// blameOne traces a single problem ciphertext. j is the index into
// the accusing position's current input (st.envs).
func (c *Chain) blameOne(round uint64, nonce [aead.NonceSize]byte, h, j int, st *roundState, states []posRecord) blameVerdict {
	accused := st.envs[j]

	// Trace the message's position at every upstream server through
	// the permutations (revealed per-message in the real protocol).
	// st.slot anchors the accusing server's frame in the previous
	// server's output; each hop maps an output position through the
	// server's permutation to its input, and through its input slot
	// map (non-identity after blame removals) to the server before.
	inPos := make([]int, h)
	outPos := make([]int, h)
	p := st.slot[j]
	for i := h - 1; i >= 0; i-- {
		outPos[i] = p
		inPos[i] = states[i].out2in[p]
		if i > 0 {
			p = states[i].inSlots[inPos[i]]
		}
	}

	// Steps 1-3: walk from the first server down to h, replaying the
	// decryption chain from the submitted ciphertext.
	for i := 0; i < h; i++ {
		rec := &states[i]
		rev, err := c.hops[i].BlameReveal(round, j, inPos[i])
		if err != nil {
			// Refusing (or failing) to reveal is indistinguishable
			// from hiding misbehaviour — the position is blamed.
			return blameVerdict{Servers: []int{i}}
		}
		xout := rec.out[outPos[i]].DHKey

		// (1) The blinding was applied correctly to this message.
		if err := nizk.VerifyDleq(blameContext(round, c.ID, i, j, "blind"),
			rev.Xin, xout, c.keys[i].BpkPrev, c.keys[i].Bpk, rev.BlindProof); err != nil {
			return blameVerdict{Servers: []int{i}}
		}
		// (2) The revealed decryption key matches the mixing key.
		if err := nizk.VerifyDleq(blameContext(round, c.ID, i, j, "key"),
			rev.Xin, rev.K, c.keys[i].BpkPrev, c.keys[i].Mpk, rev.KeyProof); err != nil {
			return blameVerdict{Servers: []int{i}}
		}
		// (3a) First server: the input must be the user's submitted
		// ciphertext (the outer ciphertext is the commitment to all
		// layers).
		if i == 0 {
			orig, ok := st.subs[st.origin[j]]
			if !ok || !bytes.Equal(rec.in[inPos[0]].Ct, orig.Ct) || !rec.in[inPos[0]].DHKey.Equal(orig.DHKey) {
				// The first server substituted the input set after
				// agreement — blame it.
				return blameVerdict{Servers: []int{0}}
			}
		}
		// (3b) Decrypting the input with the revealed key must yield
		// exactly the ciphertext the server forwarded.
		got, err := onion.OpenWithRevealedKey(c.scheme, rev.K, nonce, rec.in[inPos[i]].Ct)
		if err != nil || !bytes.Equal(got, rec.out[outPos[i]].Ct) {
			return blameVerdict{Servers: []int{i}}
		}
	}

	// Step 4: the accusing server reveals its own exchanged key and
	// everyone checks the decryption really fails. If it succeeds the
	// accusation was false and the accuser is blamed; honest users
	// can never be convicted (§6.4 analysis).
	ar, err := c.hops[h].Accuse(round, j, accused.DHKey)
	if err != nil {
		return blameVerdict{Servers: []int{h}}
	}
	if err := nizk.VerifyDleq(blameContext(round, c.ID, h, j, "accuse"),
		accused.DHKey, ar.K, c.keys[h].BpkPrev, c.keys[h].Mpk, ar.Proof); err != nil {
		return blameVerdict{Servers: []int{h}}
	}
	if _, err := onion.OpenWithRevealedKey(c.scheme, ar.K, nonce, accused.Ct); err == nil {
		return blameVerdict{Servers: []int{h}}
	}
	// The full chain verified and the ciphertext indeed fails: the
	// submitting user is malicious.
	return blameVerdict{Users: []int{st.origin[j]}}
}

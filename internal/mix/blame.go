package mix

import (
	"bytes"
	"fmt"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/nizk"
	"repro/internal/onion"
)

// The blame protocol (§6.4) runs when an authenticated decryption
// fails at some server h. For each problem ciphertext, the upstream
// servers reveal, in order, (a) the pre-blinding Diffie-Hellman key
// of that message with a DLEQ proof that their blinding was applied
// correctly, and (b) the exchanged decryption key with a DLEQ proof
// it matches their mixing key, letting everyone replay the decryption
// chain from the user's submitted ciphertext down to the problem
// ciphertext. If the whole chain checks out, the submitting user is
// malicious and is removed; if any server's reveal fails to verify,
// that server is blamed and the round halts with the inner keys
// destroyed, so nothing about honest users leaks either way.

// blameVerdict is the outcome of one blame protocol execution.
type blameVerdict struct {
	// Servers are blamed chain positions (at most one per execution
	// in practice; the first failure stops the walk).
	Servers []int
	// Users are blamed original submission indices.
	Users []int
}

// blameContext binds blame reveals to round, chain, server, message
// and step, so reveals cannot be replayed across messages.
func blameContext(round uint64, chain, server, msg int, step string) string {
	return fmt.Sprintf("xrd/blame/round=%d/chain=%d/server=%d/msg=%d/%s", round, chain, server, msg, step)
}

// blameReveal is one server's disclosure for one problem message.
type blameReveal struct {
	// Xin is the message's Diffie-Hellman key as it entered the
	// server (step 1 of §6.4).
	Xin group.Point
	// BlindProof shows log_Xin(Xout) = log_bpkPrev(bpk) = bsk.
	BlindProof nizk.Proof
	// K is the exchanged decryption key Xin^msk (step 2).
	K group.Point
	// KeyProof shows log_Xin(K) = log_bpkPrev(mpk) = msk.
	KeyProof nizk.Proof
}

// revealFor produces the server's blame disclosure for the message at
// input position pos. A corrupt server cannot do better than reveal
// its true keys — any fabricated reveal fails the DLEQ checks, which
// is what the verdict relies on.
func (s *Server) revealFor(round uint64, msg int, pos int) blameReveal {
	xin := s.lastIn[pos].DHKey
	return blameReveal{
		Xin:        xin,
		BlindProof: nizk.ProveDleq(blameContext(round, s.Chain, s.Index, msg, "blind"), xin, s.bpkPrev, s.bsk),
		K:          xin.Mul(s.msk),
		KeyProof:   nizk.ProveDleq(blameContext(round, s.Chain, s.Index, msg, "key"), xin, s.bpkPrev, s.msk),
	}
}

// runBlame executes the blame protocol at accusing server h for every
// failed working index. st carries the working set and lineage
// anchors (see roundState).
func (c *Chain) runBlame(round uint64, nonce [aead.NonceSize]byte, h int, failed []int, st *roundState) blameVerdict {
	var v blameVerdict
	blamedServers := make(map[int]bool)
	for _, j := range failed {
		sv := c.blameOne(round, nonce, h, j, st)
		for _, b := range sv.Servers {
			if !blamedServers[b] {
				blamedServers[b] = true
				v.Servers = append(v.Servers, b)
			}
		}
		v.Users = append(v.Users, sv.Users...)
	}
	return v
}

// blameOne traces a single problem ciphertext. j is the index into
// the accusing server's current input (st.envs).
func (c *Chain) blameOne(round uint64, nonce [aead.NonceSize]byte, h, j int, st *roundState) blameVerdict {
	accused := st.envs[j]

	// Trace the message's position at every upstream server through
	// the permutations (revealed per-message in the real protocol).
	// st.slot anchors the accusing server's frame in the previous
	// server's output; each hop maps an output position through the
	// server's permutation to its input, and through its input slot
	// map (non-identity after blame removals) to the server before.
	inPos := make([]int, h)
	outPos := make([]int, h)
	p := st.slot[j]
	for i := h - 1; i >= 0; i-- {
		outPos[i] = p
		inPos[i] = c.Servers[i].lastOut2In[p]
		if i > 0 {
			p = c.Servers[i].lastInSlots[inPos[i]]
		}
	}

	// Steps 1-3: walk from the first server down to h, replaying the
	// decryption chain from the submitted ciphertext.
	for i := 0; i < h; i++ {
		s := c.Servers[i]
		rev := s.revealFor(round, j, inPos[i])
		xout := s.lastOut[outPos[i]].DHKey

		// (1) The blinding was applied correctly to this message.
		if err := nizk.VerifyDleq(blameContext(round, c.ID, i, j, "blind"),
			rev.Xin, xout, s.bpkPrev, s.bpk, rev.BlindProof); err != nil {
			return blameVerdict{Servers: []int{i}}
		}
		// (2) The revealed decryption key matches the mixing key.
		if err := nizk.VerifyDleq(blameContext(round, c.ID, i, j, "key"),
			rev.Xin, rev.K, s.bpkPrev, s.mpk, rev.KeyProof); err != nil {
			return blameVerdict{Servers: []int{i}}
		}
		// (3a) First server: the input must be the user's submitted
		// ciphertext (the outer ciphertext is the commitment to all
		// layers).
		if i == 0 {
			orig, ok := st.subs[st.origin[j]]
			if !ok || !bytes.Equal(s.lastIn[inPos[0]].Ct, orig.Ct) || !s.lastIn[inPos[0]].DHKey.Equal(orig.DHKey) {
				// The first server substituted the input set after
				// agreement — blame it.
				return blameVerdict{Servers: []int{0}}
			}
		}
		// (3b) Decrypting the input with the revealed key must yield
		// exactly the ciphertext the server forwarded.
		got, err := onion.OpenWithRevealedKey(c.scheme, rev.K, nonce, s.lastIn[inPos[i]].Ct)
		if err != nil || !bytes.Equal(got, s.lastOut[outPos[i]].Ct) {
			return blameVerdict{Servers: []int{i}}
		}
	}

	// Step 4: the accusing server reveals its own exchanged key and
	// everyone checks the decryption really fails. If it succeeds the
	// accusation was false and the accuser is blamed; honest users
	// can never be convicted (§6.4 analysis).
	acc := c.Servers[h]
	k := accused.DHKey.Mul(acc.msk)
	keyProof := nizk.ProveDleq(blameContext(round, c.ID, h, j, "accuse"), accused.DHKey, acc.bpkPrev, acc.msk)
	if err := nizk.VerifyDleq(blameContext(round, c.ID, h, j, "accuse"),
		accused.DHKey, k, acc.bpkPrev, acc.mpk, keyProof); err != nil {
		return blameVerdict{Servers: []int{h}}
	}
	if _, err := onion.OpenWithRevealedKey(c.scheme, k, nonce, accused.Ct); err == nil {
		return blameVerdict{Servers: []int{h}}
	}
	// The full chain verified and the ciphertext indeed fails: the
	// submitting user is malicious.
	return blameVerdict{Users: []int{st.origin[j]}}
}

// Package chainsel implements XRD's chain selection algorithm
// (§5.3.1): the publicly computable assignment of users to groups and
// of groups to sets of mix chains such that every pair of users
// intersects on at least one chain.
//
// With n chains the algorithm uses ℓ = ⌈√(2n+0.25) − 0.5⌉ ≈ ⌈√(2n)⌉
// chains per user, a √2-approximation of the ℓ ≥ √n lower bound
// (§4.2). Users are placed into ℓ+1 groups by hashing their public
// key; group i+1's chain set is built inductively from groups 1..i so
// that C_i ∩ C_j ∋ C_i[j] for all i < j.
//
// The construction addresses (ℓ²+ℓ)/2 chain indices. When that
// triangular number exceeds n (n is not triangular), indices wrap
// modulo n, so a few chains carry slightly more load; the pairwise
// intersection guarantee is unaffected. Chain and group indices are
// 0-based throughout this codebase (the paper is 1-based).
package chainsel

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Plan is the full chain-selection plan for a network of n chains. It
// is deterministic in n: every participant computes the same plan.
type Plan struct {
	// NumChains is n, the number of mix chains in the network.
	NumChains int
	// L is ℓ, the number of chains each user selects.
	L int
	// sets[g] is the ordered multiset of chain indices group g uses.
	sets [][]int
}

// L returns ℓ = ⌈√(2n+0.25) − 0.5⌉, the per-user chain count for a
// network of n chains (§5.3.1).
func L(n int) int {
	if n <= 0 {
		return 0
	}
	l := int(math.Ceil(math.Sqrt(2*float64(n)+0.25) - 0.5))
	// Guard against floating point edge cases at exact triangular
	// numbers: ℓ is the smallest integer with ℓ(ℓ+1)/2 >= n.
	for l > 1 && (l-1)*l/2 >= n {
		l--
	}
	for l*(l+1)/2 < n {
		l++
	}
	return l
}

// NewPlan computes the chain-selection plan for n chains. It returns
// an error for n < 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("chainsel: need at least one chain, got %d", n)
	}
	l := L(n)
	// Build the paper's 1-based construction, then wrap and shift to
	// 0-based indices.
	sets := make([][]int, l+1)
	sets[0] = make([]int, l)
	for j := 0; j < l; j++ {
		sets[0][j] = j + 1
	}
	for i := 1; i <= l; i++ {
		s := make([]int, 0, l)
		// C_{i+1} inherits the i-th entry of each earlier set...
		for a := 0; a < i; a++ {
			s = append(s, sets[a][i-1])
		}
		// ...and opens ℓ−i fresh chains after C_i's last entry.
		last := sets[i-1][l-1]
		for b := 1; b <= l-i; b++ {
			s = append(s, last+b)
		}
		sets[i] = s
	}
	for _, s := range sets {
		for j, v := range s {
			s[j] = (v - 1) % n
		}
	}
	return &Plan{NumChains: n, L: l, sets: sets}, nil
}

// NumGroups returns ℓ+1, the number of user groups.
func (p *Plan) NumGroups() int { return len(p.sets) }

// GroupOf assigns a user to a pseudo-random group from the hash of
// her public key (§5.3.1). The assignment is publicly computable by
// everyone, which correctness requires.
func GroupOf(publicKey []byte, numGroups int) int {
	h := sha256.Sum256(append([]byte("xrd/group-assignment/v1"), publicKey...))
	v := binary.BigEndian.Uint64(h[:8])
	return int(v % uint64(numGroups))
}

// ChainsForGroup returns the ordered multiset of chain indices that
// members of group g send to. The returned slice is shared; callers
// must not modify it.
func (p *Plan) ChainsForGroup(g int) []int {
	return p.sets[g]
}

// ChainsForUser returns the chains the holder of publicKey sends to.
func (p *Plan) ChainsForUser(publicKey []byte) []int {
	return p.ChainsForGroup(GroupOf(publicKey, p.NumGroups()))
}

// MeetingChain returns the chain on which members of groups a and b
// exchange conversation messages: the lowest-indexed chain in
// C_a ∩ C_b, per the deterministic tie-break of §5.3.2. Members of
// the same group meet on their lowest-indexed chain.
func (p *Plan) MeetingChain(a, b int) int {
	inA := make(map[int]bool, p.L)
	for _, c := range p.sets[a] {
		inA[c] = true
	}
	best := -1
	for _, c := range p.sets[b] {
		if inA[c] && (best == -1 || c < best) {
			best = c
		}
	}
	if best < 0 {
		// The construction guarantees intersection; reaching this
		// indicates internal corruption of the plan.
		panic(fmt.Sprintf("chainsel: groups %d and %d do not intersect", a, b))
	}
	return best
}

// MeetingChainForUsers returns the meeting chain for two users
// identified by their public keys.
func (p *Plan) MeetingChainForUsers(pkA, pkB []byte) int {
	ga := GroupOf(pkA, p.NumGroups())
	gb := GroupOf(pkB, p.NumGroups())
	return p.MeetingChain(ga, gb)
}

// ChainLoadFactors returns, for each chain, how many groups include
// it (counting multiplicity from index wrapping). With M users spread
// evenly over groups, chain c receives ≈ M/(ℓ+1) · factors[c]
// messages; for triangular n every factor is the same.
func (p *Plan) ChainLoadFactors() []int {
	factors := make([]int, p.NumChains)
	for _, s := range p.sets {
		for _, c := range s {
			factors[c]++
		}
	}
	return factors
}

// MessagesPerUser returns ℓ, the number of messages each user submits
// per lane per round. With cover traffic for round ρ+1 (§5.3.3) the
// wire count doubles.
func (p *Plan) MessagesPerUser() int { return p.L }

// Migration relates the chain-selection plans of two consecutive
// epochs. When chains are re-formed after an eviction (the halted
// epoch's blamed servers leave and n shrinks), every participant
// recomputes group membership and meeting chains under the new plan;
// Migration answers which conversations moved, for re-routing users
// off a dead chain and for scenario assertions.
type Migration struct {
	// Old and New are the plans before and after re-formation.
	Old, New *Plan
}

// Reform computes the plan for a re-formed network of n chains and
// the migration from prev. It is the epoch-boundary counterpart of
// NewPlan: purely deterministic in n, so gateway and users agree on
// the new assignment without coordination beyond learning n.
func Reform(prev *Plan, n int) (*Plan, *Migration, error) {
	if prev == nil {
		return nil, nil, fmt.Errorf("chainsel: reform needs the previous plan")
	}
	next, err := NewPlan(n)
	if err != nil {
		return nil, nil, fmt.Errorf("chainsel: reforming from %d to %d chains: %w", prev.NumChains, n, err)
	}
	return next, &Migration{Old: prev, New: next}, nil
}

// Moved reports whether the conversation between the holders of pkA
// and pkB changed meeting chain across the migration, and returns the
// chain under each plan. Group membership itself can change when the
// group count ℓ+1 differs between the plans.
func (m *Migration) Moved(pkA, pkB []byte) (oldChain, newChain int, moved bool) {
	oldChain = m.Old.MeetingChainForUsers(pkA, pkB)
	newChain = m.New.MeetingChainForUsers(pkA, pkB)
	return oldChain, newChain, oldChain != newChain
}

package chainsel

import (
	"crypto/rand"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestLFormula(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1},
		{3, 2},  // triangular: 2·3/2
		{6, 3},  // triangular
		{10, 4}, // triangular
		{100, 14},
		{105, 14}, // triangular: 14·15/2
		{106, 15},
	}
	for _, c := range cases {
		if got := L(c.n); got != c.want {
			t.Errorf("L(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestLIsMinimalTriangularCover checks ℓ is the smallest integer with
// ℓ(ℓ+1)/2 >= n for a range of n, the defining property from §5.3.1.
func TestLIsMinimalTriangularCover(t *testing.T) {
	for n := 1; n <= 5000; n++ {
		l := L(n)
		if l*(l+1)/2 < n {
			t.Fatalf("L(%d)=%d does not cover n", n, l)
		}
		if l > 1 && (l-1)*l/2 >= n {
			t.Fatalf("L(%d)=%d is not minimal", n, l)
		}
	}
}

// TestPaperL100Servers checks the paper's concrete claim (§8.2): with
// 100 servers (n=N=100) each user submits 15 messages... The paper
// says "each user submits 15 messages with 100 servers"; our formula
// gives ℓ=14 plus the paper appears to round √(2·100)=14.14 up. We
// assert ℓ ∈ {14, 15} and record the exact value in EXPERIMENTS.md.
func TestPaperL100Servers(t *testing.T) {
	l := L(100)
	if l != 14 && l != 15 {
		t.Fatalf("L(100) = %d, expected ≈ √200", l)
	}
	// ℓ must be within the √2-approximation band of §4.2.
	lower := math.Sqrt(100)
	upper := math.Ceil(math.Sqrt(2*100.0)) + 1
	if float64(l) < lower || float64(l) > upper {
		t.Fatalf("L(100) = %d outside [√n, ⌈√2n⌉+1]", l)
	}
}

func TestNewPlanRejectsBadN(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Fatal("NewPlan(0) succeeded")
	}
	if _, err := NewPlan(-5); err == nil {
		t.Fatal("NewPlan(-5) succeeded")
	}
}

// TestAllGroupPairsIntersect is the core correctness property (§4,
// §5.3.1): every pair of groups shares at least one chain, so every
// pair of users can converse.
func TestAllGroupPairsIntersect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 6, 10, 36, 100, 105, 500, 1000, 2000} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < p.NumGroups(); a++ {
			for b := a; b < p.NumGroups(); b++ {
				c := p.MeetingChain(a, b) // panics if disjoint
				if c < 0 || c >= n {
					t.Fatalf("n=%d: meeting chain %d out of range", n, c)
				}
				if p.MeetingChain(b, a) != c {
					t.Fatalf("n=%d: meeting chain not symmetric for (%d,%d)", n, a, b)
				}
			}
		}
	}
}

// TestPaperExampleL3 reproduces the inductive construction by hand for
// ℓ=3 (n=6): C1={1,2,3}, C2={1,4,5}, C3={2,4,6}, C4={3,5,6}, checking
// our 0-based encoding against the paper's 1-based sets.
func TestPaperExampleL3(t *testing.T) {
	p, err := NewPlan(6)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 2}, {0, 3, 4}, {1, 3, 5}, {2, 4, 5}}
	if p.NumGroups() != len(want) {
		t.Fatalf("groups = %d, want %d", p.NumGroups(), len(want))
	}
	for g, w := range want {
		got := p.ChainsForGroup(g)
		if len(got) != len(w) {
			t.Fatalf("group %d: %v, want %v", g, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("group %d: %v, want %v", g, got, w)
			}
		}
	}
	// Each pair meets exactly where the paper says.
	meets := map[[2]int]int{
		{0, 1}: 0, {0, 2}: 1, {0, 3}: 2,
		{1, 2}: 3, {1, 3}: 4, {2, 3}: 5,
	}
	for pair, chain := range meets {
		if got := p.MeetingChain(pair[0], pair[1]); got != chain {
			t.Errorf("meeting(%d,%d) = %d, want %d", pair[0], pair[1], got, chain)
		}
	}
}

func TestChainSetSizes(t *testing.T) {
	for _, n := range []int{3, 6, 10, 100, 1000} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < p.NumGroups(); g++ {
			if got := len(p.ChainsForGroup(g)); got != p.L {
				t.Fatalf("n=%d group %d: |C| = %d, want ℓ=%d", n, g, got, p.L)
			}
		}
		if p.MessagesPerUser() != p.L {
			t.Fatal("MessagesPerUser != L")
		}
	}
}

func TestAllChainsUsed(t *testing.T) {
	for _, n := range []int{1, 6, 100, 105, 777} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		factors := p.ChainLoadFactors()
		for c, f := range factors {
			if f == 0 {
				t.Fatalf("n=%d: chain %d unused", n, c)
			}
		}
	}
}

// TestLoadBalance checks the even-distribution goal (§5.3.1): for
// triangular n every chain appears in exactly 2 groups; for general n
// the wrap keeps the max/min factor ratio small.
func TestLoadBalance(t *testing.T) {
	p, err := NewPlan(105) // triangular
	if err != nil {
		t.Fatal(err)
	}
	for c, f := range p.ChainLoadFactors() {
		if f != 2 {
			t.Fatalf("triangular n: chain %d has load factor %d, want 2", c, f)
		}
	}

	p, err = NewPlan(100) // wraps 5 indices
	if err != nil {
		t.Fatal(err)
	}
	minF, maxF := math.MaxInt, 0
	for _, f := range p.ChainLoadFactors() {
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	if minF < 2 || maxF > 4 {
		t.Fatalf("load factors range [%d,%d], want within [2,4]", minF, maxF)
	}
}

func TestGroupOfDeterministicAndSpread(t *testing.T) {
	const groups = 15
	counts := make([]int, groups)
	for i := 0; i < 3000; i++ {
		pk := make([]byte, 33)
		if _, err := rand.Read(pk); err != nil {
			t.Fatal(err)
		}
		g := GroupOf(pk, groups)
		if g != GroupOf(pk, groups) {
			t.Fatal("GroupOf is not deterministic")
		}
		if g < 0 || g >= groups {
			t.Fatalf("group %d out of range", g)
		}
		counts[g]++
	}
	// Rough uniformity: each group within 3x of the mean.
	mean := 3000 / groups
	for g, c := range counts {
		if c < mean/3 || c > mean*3 {
			t.Fatalf("group %d has %d users, mean %d — assignment is skewed", g, c, mean)
		}
	}
}

func TestMeetingChainForUsers(t *testing.T) {
	p, err := NewPlan(100)
	if err != nil {
		t.Fatal(err)
	}
	pkA := []byte("user-a-public-key")
	pkB := []byte("user-b-public-key")
	c := p.MeetingChainForUsers(pkA, pkB)
	if c != p.MeetingChainForUsers(pkB, pkA) {
		t.Fatal("meeting chain not symmetric in users")
	}
	// Both users' chain sets must contain c.
	contains := func(s []int, v int) bool {
		for _, x := range s {
			if x == v {
				return true
			}
		}
		return false
	}
	if !contains(p.ChainsForUser(pkA), c) || !contains(p.ChainsForUser(pkB), c) {
		t.Fatal("meeting chain not in both users' sets")
	}
}

// TestApproximationQuality is the §9 ablation: the achieved ℓ must be
// within √2 (+1 for ceiling) of the √n lower bound for all n.
func TestChainSelectionApproximation(t *testing.T) {
	worst := 0.0
	for n := 2; n <= 4000; n++ {
		ratio := float64(L(n)) / math.Sqrt(float64(n))
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > math.Sqrt2*1.3 {
		t.Fatalf("worst ℓ/√n = %.3f exceeds √2 approximation band", worst)
	}
}

func TestQuickPairwiseIntersection(t *testing.T) {
	f := func(nRaw uint16, aRaw, bRaw uint8) bool {
		n := int(nRaw)%1500 + 1
		p, err := NewPlan(n)
		if err != nil {
			return false
		}
		a := int(aRaw) % p.NumGroups()
		b := int(bRaw) % p.NumGroups()
		c := p.MeetingChain(a, b)
		return c >= 0 && c < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func ExampleNewPlan() {
	p, _ := NewPlan(6)
	fmt.Println("l =", p.L)
	fmt.Println("group 0 chains:", p.ChainsForGroup(0))
	fmt.Println("groups 1 and 2 meet on chain", p.MeetingChain(1, 2))
	// Output:
	// l = 3
	// group 0 chains: [0 1 2]
	// groups 1 and 2 meet on chain 3
}

func BenchmarkNewPlan1000(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlan(1000); err != nil {
			b.Fatal(err)
		}
	}
}

package poly1305

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func keyFrom(t *testing.T, hexKey string) *[KeySize]byte {
	t.Helper()
	b, err := hex.DecodeString(hexKey)
	if err != nil || len(b) != KeySize {
		t.Fatalf("bad key hex: %v", err)
	}
	var k [KeySize]byte
	copy(k[:], b)
	return &k
}

// TestRFC8439Vector checks the tag test vector from RFC 8439 §2.5.2.
func TestRFC8439Vector(t *testing.T) {
	key := keyFrom(t, "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
	msg := []byte("Cryptographic Forum Research Group")
	want, _ := hex.DecodeString("a8061dc1305136c6c22b8baf0c0127a9")
	got := Sum(msg, key)
	if !bytes.Equal(got[:], want) {
		t.Fatalf("tag = %x, want %x", got, want)
	}
	if !Verify(want, msg, key) {
		t.Fatal("Verify rejected the RFC vector")
	}
}

// TestRFC8439AEADOneTimeKey checks the Poly1305 key generation vector
// from RFC 8439 §2.6.2 indirectly: the derived key is given there, and
// here we confirm tagging with it is consistent with our Sum.
func TestEmptyMessage(t *testing.T) {
	var key [KeySize]byte
	key[0] = 1
	tag := Sum(nil, &key)
	// An all-clamped-r of mostly zeros: h stays 0, tag = s (last 16
	// bytes of the key), which here are zero.
	var want [TagSize]byte
	if tag != want {
		t.Fatalf("empty message tag = %x", tag)
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	var key [KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 1000)
	if _, err := rand.Read(msg); err != nil {
		t.Fatal(err)
	}
	oneShot := Sum(msg, &key)

	for _, chunk := range []int{1, 3, 15, 16, 17, 64, 333} {
		m := New(&key)
		for i := 0; i < len(msg); i += chunk {
			end := i + chunk
			if end > len(msg) {
				end = len(msg)
			}
			m.Write(msg[i:end])
		}
		got := m.Sum(nil)
		if !bytes.Equal(got, oneShot[:]) {
			t.Fatalf("chunk size %d: tag mismatch", chunk)
		}
	}
}

func TestTamperedMessageRejected(t *testing.T) {
	var key [KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		t.Fatal(err)
	}
	msg := []byte("the authenticated message body")
	tag := Sum(msg, &key)
	for i := range msg {
		bad := append([]byte(nil), msg...)
		bad[i] ^= 0x01
		if Verify(tag[:], bad, &key) {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	// Tampered tag must also fail.
	for i := 0; i < TagSize; i++ {
		badTag := tag
		badTag[i] ^= 0x80
		if Verify(badTag[:], msg, &key) {
			t.Fatalf("tampered tag byte %d accepted", i)
		}
	}
}

func TestVerifyWrongLengthTag(t *testing.T) {
	var key [KeySize]byte
	if Verify(make([]byte, 15), []byte("m"), &key) {
		t.Fatal("short tag accepted")
	}
	if Verify(make([]byte, 17), []byte("m"), &key) {
		t.Fatal("long tag accepted")
	}
}

func TestAllLengthsRoundTrip(t *testing.T) {
	var key [KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 130)
	if _, err := rand.Read(msg); err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= len(msg); n++ {
		tag := Sum(msg[:n], &key)
		if !Verify(tag[:], msg[:n], &key) {
			t.Fatalf("length %d: verify failed", n)
		}
	}
}

// TestQuickDistinctMessagesDistinctTags is a property test: with a
// fixed random key, distinct messages should essentially never share a
// tag.
func TestQuickDistinctMessagesDistinctTags(t *testing.T) {
	var key [KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		t.Fatal(err)
	}
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		ta := Sum(a, &key)
		tb := Sum(b, &key)
		return ta != tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWraparoundValues exercises messages of 0xff bytes that drive the
// accumulator near the modulus, a classic Poly1305 soft spot.
func TestWraparoundValues(t *testing.T) {
	var key [KeySize]byte
	for i := range key {
		key[i] = 0xff
	}
	msg := bytes.Repeat([]byte{0xff}, 64)
	tag1 := Sum(msg, &key)
	m := New(&key)
	m.Write(msg[:32])
	m.Write(msg[32:])
	tag2 := m.Sum(nil)
	if !bytes.Equal(tag1[:], tag2) {
		t.Fatal("wraparound: incremental and one-shot disagree")
	}
}

func BenchmarkSum1K(b *testing.B) {
	var key [KeySize]byte
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum(msg, &key)
	}
}

// Package poly1305 implements the Poly1305 one-time authenticator
// from RFC 8439, using 64-bit limb arithmetic.
//
// Poly1305 evaluates a polynomial over the prime field GF(2^130 - 5)
// at a secret point r (the first half of the one-time key), then adds
// the second half of the key s modulo 2^128. A key must never be used
// to authenticate two different messages; the AEAD derives a fresh key
// per (key, nonce) pair from the ChaCha20 block function.
package poly1305

import (
	"crypto/subtle"
	"encoding/binary"
	"math/bits"
)

const (
	// KeySize is the one-time key length in bytes.
	KeySize = 32
	// TagSize is the authenticator length in bytes.
	TagSize = 16
)

type uint128 struct{ lo, hi uint64 }

func mul64(a, b uint64) uint128 {
	hi, lo := bits.Mul64(a, b)
	return uint128{lo, hi}
}

func add128(a, b uint128) uint128 {
	lo, c := bits.Add64(a.lo, b.lo, 0)
	hi, c := bits.Add64(a.hi, b.hi, c)
	if c != 0 {
		panic("poly1305: unexpected overflow")
	}
	return uint128{lo, hi}
}

func shiftRightBy2(a uint128) uint128 {
	a.lo = a.lo>>2 | (a.hi&3)<<62
	a.hi >>= 2
	return a
}

// mac accumulates a Poly1305 computation.
type mac struct {
	r0, r1     uint64 // clamped evaluation point r
	s0, s1     uint64 // final pad s
	h0, h1, h2 uint64 // accumulator (radix 2^64, h2 < 8)
	buf        [TagSize]byte
	bufLen     int
}

// New returns a one-time authenticator keyed with key. The returned
// value implements a Write/Sum interface akin to hash.Hash but must be
// used for exactly one message.
func New(key *[KeySize]byte) *mac {
	m := &mac{}
	// Clamp r per RFC 8439 §2.5.
	m.r0 = binary.LittleEndian.Uint64(key[0:8]) & 0x0FFFFFFC0FFFFFFF
	m.r1 = binary.LittleEndian.Uint64(key[8:16]) & 0x0FFFFFFC0FFFFFFC
	m.s0 = binary.LittleEndian.Uint64(key[16:24])
	m.s1 = binary.LittleEndian.Uint64(key[24:32])
	return m
}

// Write absorbs p into the authenticator. It never fails.
func (m *mac) Write(p []byte) (int, error) {
	n := len(p)
	if m.bufLen > 0 {
		take := TagSize - m.bufLen
		if take > len(p) {
			take = len(p)
		}
		copy(m.buf[m.bufLen:], p[:take])
		m.bufLen += take
		p = p[take:]
		if m.bufLen == TagSize {
			m.absorbFull(m.buf[:])
			m.bufLen = 0
		}
	}
	for len(p) >= TagSize {
		full := len(p) &^ (TagSize - 1)
		m.absorbFull(p[:full])
		p = p[full:]
	}
	if len(p) > 0 {
		copy(m.buf[:], p)
		m.bufLen = len(p)
	}
	return n, nil
}

// absorbFull processes a multiple of 16 bytes with the high pad bit set.
func (m *mac) absorbFull(p []byte) {
	h0, h1, h2 := m.h0, m.h1, m.h2
	for len(p) > 0 {
		var c uint64
		h0, c = bits.Add64(h0, binary.LittleEndian.Uint64(p[0:8]), 0)
		h1, c = bits.Add64(h1, binary.LittleEndian.Uint64(p[8:16]), c)
		h2 += c + 1
		h0, h1, h2 = m.mulReduce(h0, h1, h2)
		p = p[TagSize:]
	}
	m.h0, m.h1, m.h2 = h0, h1, h2
}

// absorbLast processes a final partial block, padded with a 1 byte and
// zeros per the RFC (no high pad bit).
func (m *mac) absorbLast(p []byte) {
	var block [TagSize]byte
	copy(block[:], p)
	block[len(p)] = 1
	var c uint64
	h0, h1, h2 := m.h0, m.h1, m.h2
	h0, c = bits.Add64(h0, binary.LittleEndian.Uint64(block[0:8]), 0)
	h1, c = bits.Add64(h1, binary.LittleEndian.Uint64(block[8:16]), c)
	h2 += c
	m.h0, m.h1, m.h2 = m.mulReduce(h0, h1, h2)
}

// mulReduce computes h * r with a partial reduction mod 2^130 - 5.
func (m *mac) mulReduce(h0, h1, h2 uint64) (uint64, uint64, uint64) {
	h0r0 := mul64(h0, m.r0)
	h1r0 := mul64(h1, m.r0)
	h2r0 := mul64(h2, m.r0)
	h0r1 := mul64(h0, m.r1)
	h1r1 := mul64(h1, m.r1)
	h2r1 := mul64(h2, m.r1)

	// h2 is at most 7 and r is clamped below 2^124, so the h2 products
	// fit in 64 bits.
	if h2r0.hi != 0 || h2r1.hi != 0 {
		panic("poly1305: accumulator out of range")
	}

	m0 := h0r0
	m1 := add128(h1r0, h0r1)
	m2 := add128(h2r0, h1r1)
	m3 := h2r1

	t0 := m0.lo
	t1, c := bits.Add64(m1.lo, m0.hi, 0)
	t2, c := bits.Add64(m2.lo, m1.hi, c)
	t3, _ := bits.Add64(m3.lo, m2.hi, c)

	// Split at bit 130 and fold the high part back: 2^130 ≡ 5.
	cc := uint128{t2 &^ 3, t3}
	h0, h1, h2 = t0, t1, t2&3

	h0, c = bits.Add64(h0, cc.lo, 0)
	h1, c = bits.Add64(h1, cc.hi, c)
	h2 += c

	cc = shiftRightBy2(cc)
	h0, c = bits.Add64(h0, cc.lo, 0)
	h1, c = bits.Add64(h1, cc.hi, c)
	h2 += c

	return h0, h1, h2
}

// Sum finalizes the authenticator and appends the 16-byte tag to b.
// The receiver must not be used again afterwards.
func (m *mac) Sum(b []byte) []byte {
	if m.bufLen > 0 {
		m.absorbLast(m.buf[:m.bufLen])
		m.bufLen = 0
	}
	h0, h1, h2 := m.h0, m.h1, m.h2

	// Fully reduce: compute g = h - p = h + 5 - 2^130 and select g if
	// it is non-negative (g's bit 130 set after adding 5).
	g0, c := bits.Add64(h0, 5, 0)
	g1, c := bits.Add64(h1, 0, c)
	g2 := h2 + c

	mask := -(g2 >> 2) // all-ones if h >= p
	h0 = h0&^mask | g0&mask
	h1 = h1&^mask | g1&mask

	// Add s modulo 2^128.
	h0, c = bits.Add64(h0, m.s0, 0)
	h1, _ = bits.Add64(h1, m.s1, c)

	var tag [TagSize]byte
	binary.LittleEndian.PutUint64(tag[0:8], h0)
	binary.LittleEndian.PutUint64(tag[8:16], h1)
	return append(b, tag[:]...)
}

// Sum computes the Poly1305 tag of msg under key in one shot.
func Sum(msg []byte, key *[KeySize]byte) [TagSize]byte {
	m := New(key)
	m.Write(msg)
	var out [TagSize]byte
	copy(out[:], m.Sum(nil))
	return out
}

// Verify reports in constant time whether tag authenticates msg under
// key.
func Verify(tag []byte, msg []byte, key *[KeySize]byte) bool {
	if len(tag) != TagSize {
		return false
	}
	want := Sum(msg, key)
	return subtle.ConstantTimeCompare(tag, want[:]) == 1
}

// Package nizk implements the two non-interactive zero-knowledge
// proofs XRD needs, both made non-interactive with the Fiat-Shamir
// transform over SHA-256:
//
//   - Knowledge of discrete log (Schnorr/Camenisch-Stadler): users
//     prove they know x matching their outer Diffie-Hellman key g^x
//     (§6.2 step 2). Without this, adversarial users could choose keys
//     as functions of honest users' keys, which the AHS security
//     argument (Appendix A, step 4 of the game) must exclude.
//
//   - Discrete log equality (Chaum-Pedersen): servers prove
//     log_B1(Y1) = log_B2(Y2). This is the AHS shuffle certificate
//     ((∏X_i)^bsk = ∏X_{i+1} against bpk_{i-1}, bpk_i; §6.3 step 3),
//     the key-generation certificates (§6.1), and every key-reveal
//     step of the blame protocol (§6.4).
//
// The knowledge proof exists in two encodings. The original
// (challenge, response) Proof stays in use for the handful of
// per-round server proofs; user submissions use the commitment-format
// DlogProof (commitment, response), because transmitting the
// commitment instead of the challenge is what makes batch
// verification possible (see VerifyDlogBatch).
//
// All proofs bind a caller-supplied context string (round, chain and
// server identifiers) so a proof cannot be replayed elsewhere.
package nizk

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/group"
)

// ProofSize is the encoded size of both proof types (challenge scalar
// followed by response scalar).
const ProofSize = 2 * group.ScalarSize

// ErrInvalidProof is returned when a proof fails to verify or decode.
var ErrInvalidProof = errors.New("nizk: proof verification failed")

// Proof is a Fiat-Shamir (challenge, response) pair. The same shape
// serves Schnorr and Chaum-Pedersen proofs; the challenge derivation
// (and therefore verification) differs.
type Proof struct {
	C group.Scalar // Fiat-Shamir challenge
	S group.Scalar // response s = v + c·x
}

// Bytes encodes the proof as C || S.
func (p Proof) Bytes() []byte {
	out := make([]byte, 0, ProofSize)
	out = append(out, p.C.Bytes()...)
	return append(out, p.S.Bytes()...)
}

// ParseProof decodes a proof encoded by Bytes.
func ParseProof(b []byte) (Proof, error) {
	if len(b) != ProofSize {
		return Proof{}, ErrInvalidProof
	}
	c, err := group.ParseScalar(b[:group.ScalarSize])
	if err != nil {
		return Proof{}, ErrInvalidProof
	}
	s, err := group.ParseScalar(b[group.ScalarSize:])
	if err != nil {
		return Proof{}, ErrInvalidProof
	}
	return Proof{C: c, S: s}, nil
}

func dlogChallenge(context string, base, public, commit group.Point) group.Scalar {
	return group.HashToScalar("xrd/nizk/dlog/v1",
		[]byte(context), base.Bytes(), public.Bytes(), commit.Bytes())
}

// ProveDlog proves knowledge of x such that public = base^x.
func ProveDlog(context string, base group.Point, x group.Scalar) Proof {
	v := group.MustRandomScalar()
	commit := base.Mul(v)
	public := base.Mul(x)
	c := dlogChallenge(context, base, public, commit)
	return Proof{C: c, S: v.Add(c.Mul(x))}
}

// VerifyDlog checks a ProveDlog proof for the statement
// public = base^x. The commitment is recomputed as
// base^s · public^(-c) and the challenge re-derived.
func VerifyDlog(context string, base, public group.Point, p Proof) error {
	if base.IsIdentity() || public.IsIdentity() {
		// A trivial base or key admits degenerate proofs; XRD never
		// produces them, so reject outright.
		return ErrInvalidProof
	}
	commit := base.Mul(p.S).Add(public.Mul(p.C).Neg())
	if !dlogChallenge(context, base, public, commit).Equal(p.C) {
		return ErrInvalidProof
	}
	return nil
}

func dleqChallenge(context string, b1, y1, b2, y2, t1, t2 group.Point) group.Scalar {
	return group.HashToScalar("xrd/nizk/dleq/v1",
		[]byte(context), b1.Bytes(), y1.Bytes(), b2.Bytes(), y2.Bytes(), t1.Bytes(), t2.Bytes())
}

// ProveDleq proves log_b1(y1) = log_b2(y2) = x, i.e. y1 = b1^x and
// y2 = b2^x for the same secret x.
func ProveDleq(context string, b1, b2 group.Point, x group.Scalar) Proof {
	v := group.MustRandomScalar()
	t1 := b1.Mul(v)
	t2 := b2.Mul(v)
	y1 := b1.Mul(x)
	y2 := b2.Mul(x)
	c := dleqChallenge(context, b1, y1, b2, y2, t1, t2)
	return Proof{C: c, S: v.Add(c.Mul(x))}
}

// VerifyDleq checks a ProveDleq proof for the statement
// y1 = b1^x ∧ y2 = b2^x.
func VerifyDleq(context string, b1, y1, b2, y2 group.Point, p Proof) error {
	if b1.IsIdentity() || b2.IsIdentity() {
		return ErrInvalidProof
	}
	t1 := b1.Mul(p.S).Add(y1.Mul(p.C).Neg())
	t2 := b2.Mul(p.S).Add(y2.Mul(p.C).Neg())
	if !dleqChallenge(context, b1, y1, b2, y2, t1, t2).Equal(p.C) {
		return ErrInvalidProof
	}
	return nil
}

// DlogProofSize is the encoded size of a commitment-format knowledge
// proof (commitment point followed by response scalar).
const DlogProofSize = group.PointSize + group.ScalarSize

// DlogProof is a Schnorr proof of knowledge in commitment format: the
// prover sends the commitment T = base^v and the response
// s = v + c·x, and the verifier recomputes the challenge c by hashing
// T (it is never transmitted). Unlike the (c, s) Proof — whose check
// reconstructs T from c and therefore needs one verification equation
// per proof — this format admits batch verification: the per-proof
// equations base^sᵢ = Tᵢ·Xᵢ^cᵢ can be folded into a single
// multi-scalar product with random weights.
type DlogProof struct {
	T group.Point  // commitment base^v
	S group.Scalar // response s = v + c·x
}

// Bytes encodes the proof as T || S.
func (p DlogProof) Bytes() []byte {
	out := make([]byte, 0, DlogProofSize)
	out = append(out, p.T.Bytes()...)
	return append(out, p.S.Bytes()...)
}

// ParseDlogProof decodes a proof encoded by Bytes, rejecting
// off-curve commitments and non-canonical scalars.
func ParseDlogProof(b []byte) (DlogProof, error) {
	if len(b) != DlogProofSize {
		return DlogProof{}, ErrInvalidProof
	}
	t, err := group.ParsePoint(b[:group.PointSize])
	if err != nil {
		return DlogProof{}, ErrInvalidProof
	}
	s, err := group.ParseScalar(b[group.PointSize:])
	if err != nil {
		return DlogProof{}, ErrInvalidProof
	}
	return DlogProof{T: t, S: s}, nil
}

func dlogCommitChallenge(context string, base, public, commit group.Point) group.Scalar {
	return group.HashToScalar("xrd/nizk/dlog-commit/v1",
		[]byte(context), base.Bytes(), public.Bytes(), commit.Bytes())
}

// ProveDlogCommit proves knowledge of x such that public = base^x, in
// commitment format.
func ProveDlogCommit(context string, base group.Point, x group.Scalar) DlogProof {
	v := group.MustRandomScalar()
	return ProveDlogCommitPrecomputed(context, base, base.Mul(x), x, v, base.Mul(v))
}

// ProveDlogCommitPrecomputed is ProveDlogCommit for callers that have
// already computed public = base^x and the commitment pair
// (v, commit = base^v) — typically through group.BatchBase, which
// amortizes the fixed-base work across a whole onion. The caller must
// supply a fresh uniformly random v per proof; reusing v leaks x.
func ProveDlogCommitPrecomputed(context string, base, public group.Point, x, v group.Scalar, commit group.Point) DlogProof {
	c := dlogCommitChallenge(context, base, public, commit)
	return DlogProof{T: commit, S: v.Add(c.Mul(x))}
}

// VerifyDlogCommit checks a ProveDlogCommit proof for the statement
// public = base^x: the challenge is re-derived from the transmitted
// commitment and base^s must equal T·public^c.
func VerifyDlogCommit(context string, base, public group.Point, p DlogProof) error {
	if base.IsIdentity() || public.IsIdentity() {
		// A trivial base or key admits degenerate proofs; XRD never
		// produces them, so reject outright.
		return ErrInvalidProof
	}
	c := dlogCommitChallenge(context, base, public, p.T)
	lhs := base.Mul(p.S)
	rhs := p.T.Add(public.Mul(c))
	if !lhs.Equal(rhs) {
		return ErrInvalidProof
	}
	return nil
}

// batchRandomizerBytes sizes the per-proof random weights rᵢ of the
// batch check. 128 bits make the probability that a batch containing
// any invalid proof still verifies at most 2^−128.
const batchRandomizerBytes = 16

// VerifyDlogBatch verifies many commitment-format proofs over a
// common base in one shot. Each proof i asserts
// base^sᵢ = Tᵢ·publicsᵢ^cᵢ with cᵢ re-derived from contextsᵢ; the
// batch check draws random weights rᵢ and tests the single equation
//
//	base^(Σ rᵢ·sᵢ) = Π Tᵢ^rᵢ · Π publicsᵢ^(rᵢ·cᵢ)
//
// via one multi-scalar multiplication, which costs far less than n
// separate verifications. A nil return guarantees (up to the 2^−128
// randomizer soundness) that every individual proof verifies; on
// error the caller learns only that at least one proof is bad and
// must bisect or fall back to VerifyDlogCommit to attribute blame.
func VerifyDlogBatch(contexts []string, base group.Point, publics []group.Point, proofs []DlogProof) error {
	n := len(proofs)
	if len(contexts) != n || len(publics) != n {
		return fmt.Errorf("nizk: batch of %d proofs with %d contexts and %d publics", n, len(contexts), len(publics))
	}
	if n == 0 {
		return nil
	}
	if base.IsIdentity() {
		return ErrInvalidProof
	}
	rnd := make([]byte, n*batchRandomizerBytes)
	if _, err := rand.Read(rnd); err != nil {
		return fmt.Errorf("nizk: sampling batch randomizers: %w", err)
	}
	points := make([]group.Point, 0, 2*n)
	scalars := make([]group.Scalar, 0, 2*n)
	sSum := group.NewScalar(0)
	for i := range proofs {
		if publics[i].IsIdentity() {
			return ErrInvalidProof
		}
		c := dlogCommitChallenge(contexts[i], base, publics[i], proofs[i].T)
		r := group.ScalarFromBig(new(big.Int).SetBytes(rnd[i*batchRandomizerBytes : (i+1)*batchRandomizerBytes]))
		if r.IsZero() {
			r = group.NewScalar(1)
		}
		sSum = sSum.Add(r.Mul(proofs[i].S))
		points = append(points, proofs[i].T, publics[i])
		scalars = append(scalars, r, r.Mul(c))
	}
	lhs := base.Mul(sSum)
	rhs := group.MultiScalarMult(points, scalars)
	if !lhs.Equal(rhs) {
		return ErrInvalidProof
	}
	return nil
}

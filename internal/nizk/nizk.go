// Package nizk implements the two non-interactive zero-knowledge
// proofs XRD needs, both made non-interactive with the Fiat-Shamir
// transform over SHA-256:
//
//   - Knowledge of discrete log (Schnorr/Camenisch-Stadler): users
//     prove they know x matching their outer Diffie-Hellman key g^x
//     (§6.2 step 2). Without this, adversarial users could choose keys
//     as functions of honest users' keys, which the AHS security
//     argument (Appendix A, step 4 of the game) must exclude.
//
//   - Discrete log equality (Chaum-Pedersen): servers prove
//     log_B1(Y1) = log_B2(Y2). This is the AHS shuffle certificate
//     ((∏X_i)^bsk = ∏X_{i+1} against bpk_{i-1}, bpk_i; §6.3 step 3),
//     the key-generation certificates (§6.1), and every key-reveal
//     step of the blame protocol (§6.4).
//
// All proofs bind a caller-supplied context string (round, chain and
// server identifiers) so a proof cannot be replayed elsewhere.
package nizk

import (
	"errors"

	"repro/internal/group"
)

// ProofSize is the encoded size of both proof types (challenge scalar
// followed by response scalar).
const ProofSize = 2 * group.ScalarSize

// ErrInvalidProof is returned when a proof fails to verify or decode.
var ErrInvalidProof = errors.New("nizk: proof verification failed")

// Proof is a Fiat-Shamir (challenge, response) pair. The same shape
// serves Schnorr and Chaum-Pedersen proofs; the challenge derivation
// (and therefore verification) differs.
type Proof struct {
	C group.Scalar // Fiat-Shamir challenge
	S group.Scalar // response s = v + c·x
}

// Bytes encodes the proof as C || S.
func (p Proof) Bytes() []byte {
	out := make([]byte, 0, ProofSize)
	out = append(out, p.C.Bytes()...)
	return append(out, p.S.Bytes()...)
}

// ParseProof decodes a proof encoded by Bytes.
func ParseProof(b []byte) (Proof, error) {
	if len(b) != ProofSize {
		return Proof{}, ErrInvalidProof
	}
	c, err := group.ParseScalar(b[:group.ScalarSize])
	if err != nil {
		return Proof{}, ErrInvalidProof
	}
	s, err := group.ParseScalar(b[group.ScalarSize:])
	if err != nil {
		return Proof{}, ErrInvalidProof
	}
	return Proof{C: c, S: s}, nil
}

func dlogChallenge(context string, base, public, commit group.Point) group.Scalar {
	return group.HashToScalar("xrd/nizk/dlog/v1",
		[]byte(context), base.Bytes(), public.Bytes(), commit.Bytes())
}

// ProveDlog proves knowledge of x such that public = base^x.
func ProveDlog(context string, base group.Point, x group.Scalar) Proof {
	v := group.MustRandomScalar()
	commit := base.Mul(v)
	public := base.Mul(x)
	c := dlogChallenge(context, base, public, commit)
	return Proof{C: c, S: v.Add(c.Mul(x))}
}

// VerifyDlog checks a ProveDlog proof for the statement
// public = base^x. The commitment is recomputed as
// base^s · public^(-c) and the challenge re-derived.
func VerifyDlog(context string, base, public group.Point, p Proof) error {
	if base.IsIdentity() || public.IsIdentity() {
		// A trivial base or key admits degenerate proofs; XRD never
		// produces them, so reject outright.
		return ErrInvalidProof
	}
	commit := base.Mul(p.S).Add(public.Mul(p.C).Neg())
	if !dlogChallenge(context, base, public, commit).Equal(p.C) {
		return ErrInvalidProof
	}
	return nil
}

func dleqChallenge(context string, b1, y1, b2, y2, t1, t2 group.Point) group.Scalar {
	return group.HashToScalar("xrd/nizk/dleq/v1",
		[]byte(context), b1.Bytes(), y1.Bytes(), b2.Bytes(), y2.Bytes(), t1.Bytes(), t2.Bytes())
}

// ProveDleq proves log_b1(y1) = log_b2(y2) = x, i.e. y1 = b1^x and
// y2 = b2^x for the same secret x.
func ProveDleq(context string, b1, b2 group.Point, x group.Scalar) Proof {
	v := group.MustRandomScalar()
	t1 := b1.Mul(v)
	t2 := b2.Mul(v)
	y1 := b1.Mul(x)
	y2 := b2.Mul(x)
	c := dleqChallenge(context, b1, y1, b2, y2, t1, t2)
	return Proof{C: c, S: v.Add(c.Mul(x))}
}

// VerifyDleq checks a ProveDleq proof for the statement
// y1 = b1^x ∧ y2 = b2^x.
func VerifyDleq(context string, b1, y1, b2, y2 group.Point, p Proof) error {
	if b1.IsIdentity() || b2.IsIdentity() {
		return ErrInvalidProof
	}
	t1 := b1.Mul(p.S).Add(y1.Mul(p.C).Neg())
	t2 := b2.Mul(p.S).Add(y2.Mul(p.C).Neg())
	if !dleqChallenge(context, b1, y1, b2, y2, t1, t2).Equal(p.C) {
		return ErrInvalidProof
	}
	return nil
}

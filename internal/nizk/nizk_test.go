package nizk

import (
	"testing"

	"repro/internal/group"
)

func TestDlogProofVerifies(t *testing.T) {
	x := group.MustRandomScalar()
	base := group.Generator()
	public := base.Mul(x)
	p := ProveDlog("ctx", base, x)
	if err := VerifyDlog("ctx", base, public, p); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

func TestDlogProofNonGeneratorBase(t *testing.T) {
	// AHS uses chained bases bpk_{i-1}, not just g.
	base := group.Base(group.MustRandomScalar())
	x := group.MustRandomScalar()
	p := ProveDlog("ctx", base, x)
	if err := VerifyDlog("ctx", base, base.Mul(x), p); err != nil {
		t.Fatalf("valid proof over chained base rejected: %v", err)
	}
}

func TestDlogProofWrongStatement(t *testing.T) {
	base := group.Generator()
	x := group.MustRandomScalar()
	p := ProveDlog("ctx", base, x)
	other := base.Mul(group.MustRandomScalar())
	if err := VerifyDlog("ctx", base, other, p); err == nil {
		t.Fatal("proof accepted for a different public key")
	}
}

func TestDlogProofContextBinding(t *testing.T) {
	base := group.Generator()
	x := group.MustRandomScalar()
	public := base.Mul(x)
	p := ProveDlog("round-1/chain-2", base, x)
	if err := VerifyDlog("round-1/chain-3", base, public, p); err == nil {
		t.Fatal("proof replayed across contexts")
	}
}

func TestDlogProofTamperedResponse(t *testing.T) {
	base := group.Generator()
	x := group.MustRandomScalar()
	public := base.Mul(x)
	p := ProveDlog("ctx", base, x)
	p.S = p.S.Add(group.NewScalar(1))
	if err := VerifyDlog("ctx", base, public, p); err == nil {
		t.Fatal("tampered response accepted")
	}
	p2 := ProveDlog("ctx", base, x)
	p2.C = p2.C.Add(group.NewScalar(1))
	if err := VerifyDlog("ctx", base, public, p2); err == nil {
		t.Fatal("tampered challenge accepted")
	}
}

func TestDlogRejectsIdentityInputs(t *testing.T) {
	x := group.MustRandomScalar()
	p := ProveDlog("ctx", group.Generator(), x)
	if err := VerifyDlog("ctx", group.Identity(), group.Base(x), p); err == nil {
		t.Fatal("identity base accepted")
	}
	if err := VerifyDlog("ctx", group.Generator(), group.Identity(), p); err == nil {
		t.Fatal("identity public key accepted")
	}
}

func TestDleqProofVerifies(t *testing.T) {
	x := group.MustRandomScalar()
	b1 := group.Generator()
	b2 := group.Base(group.MustRandomScalar())
	p := ProveDleq("ctx", b1, b2, x)
	if err := VerifyDleq("ctx", b1, b1.Mul(x), b2, b2.Mul(x), p); err != nil {
		t.Fatalf("valid DLEQ rejected: %v", err)
	}
}

// TestDleqShuffleCertificate exercises the exact statement the AHS
// mixing step proves: (∏ X_j)^bsk = ∏ X'_j against bpk_{i-1}, bpk_i.
func TestDleqShuffleCertificate(t *testing.T) {
	bsk := group.MustRandomScalar()
	bpkPrev := group.Base(group.MustRandomScalar())
	bpkCur := bpkPrev.Mul(bsk)

	var in, out []group.Point
	for j := 0; j < 10; j++ {
		x := group.Base(group.MustRandomScalar())
		in = append(in, x)
		out = append(out, x.Mul(bsk))
	}
	// Shuffle out (a rotation suffices: product is invariant).
	out = append(out[3:], out[:3]...)

	prodIn := group.Product(in)
	prodOut := group.Product(out)
	p := ProveDleq("round/chain/server", prodIn, bpkPrev, bsk)
	if err := VerifyDleq("round/chain/server", prodIn, prodOut, bpkPrev, bpkCur, p); err != nil {
		t.Fatalf("shuffle certificate rejected: %v", err)
	}

	// Dropping one message must break the certificate.
	shortOut := group.Product(out[1:])
	if err := VerifyDleq("round/chain/server", prodIn, shortOut, bpkPrev, bpkCur, p); err == nil {
		t.Fatal("certificate accepted after a dropped message")
	}
}

func TestDleqDifferentExponentsRejected(t *testing.T) {
	x := group.MustRandomScalar()
	y := x.Add(group.NewScalar(1))
	b1 := group.Generator()
	b2 := group.Base(group.MustRandomScalar())
	p := ProveDleq("ctx", b1, b2, x)
	if err := VerifyDleq("ctx", b1, b1.Mul(x), b2, b2.Mul(y), p); err == nil {
		t.Fatal("DLEQ accepted with mismatched exponents")
	}
}

func TestDleqContextBinding(t *testing.T) {
	x := group.MustRandomScalar()
	b1 := group.Generator()
	b2 := group.Base(group.MustRandomScalar())
	p := ProveDleq("ctx-a", b1, b2, x)
	if err := VerifyDleq("ctx-b", b1, b1.Mul(x), b2, b2.Mul(x), p); err == nil {
		t.Fatal("DLEQ replayed across contexts")
	}
}

func TestProofEncodingRoundTrip(t *testing.T) {
	x := group.MustRandomScalar()
	p := ProveDlog("ctx", group.Generator(), x)
	b := p.Bytes()
	if len(b) != ProofSize {
		t.Fatalf("encoded size = %d, want %d", len(b), ProofSize)
	}
	got, err := ParseProof(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDlog("ctx", group.Generator(), group.Base(x), got); err != nil {
		t.Fatalf("round-tripped proof rejected: %v", err)
	}
}

func TestParseProofRejectsGarbage(t *testing.T) {
	if _, err := ParseProof(make([]byte, ProofSize-1)); err == nil {
		t.Fatal("short proof accepted")
	}
	bad := make([]byte, ProofSize)
	for i := range bad {
		bad[i] = 0xff // both scalars >= order
	}
	if _, err := ParseProof(bad); err == nil {
		t.Fatal("non-canonical scalars accepted")
	}
}

func BenchmarkProveDlog(b *testing.B) {
	x := group.MustRandomScalar()
	base := group.Generator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ProveDlog("bench", base, x)
	}
}

func BenchmarkVerifyDlog(b *testing.B) {
	x := group.MustRandomScalar()
	base := group.Generator()
	public := base.Mul(x)
	p := ProveDlog("bench", base, x)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := VerifyDlog("bench", base, public, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProveDleq(b *testing.B) {
	x := group.MustRandomScalar()
	b1 := group.Generator()
	b2 := group.Base(group.MustRandomScalar())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ProveDleq("bench", b1, b2, x)
	}
}

func BenchmarkVerifyDleq(b *testing.B) {
	x := group.MustRandomScalar()
	b1 := group.Generator()
	b2 := group.Base(group.MustRandomScalar())
	p := ProveDleq("bench", b1, b2, x)
	y1, y2 := b1.Mul(x), b2.Mul(x)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := VerifyDleq("bench", b1, y1, b2, y2, p); err != nil {
			b.Fatal(err)
		}
	}
}

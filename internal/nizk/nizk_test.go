package nizk

import (
	"fmt"
	"testing"

	"repro/internal/group"
)

func TestDlogProofVerifies(t *testing.T) {
	x := group.MustRandomScalar()
	base := group.Generator()
	public := base.Mul(x)
	p := ProveDlog("ctx", base, x)
	if err := VerifyDlog("ctx", base, public, p); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

func TestDlogProofNonGeneratorBase(t *testing.T) {
	// AHS uses chained bases bpk_{i-1}, not just g.
	base := group.Base(group.MustRandomScalar())
	x := group.MustRandomScalar()
	p := ProveDlog("ctx", base, x)
	if err := VerifyDlog("ctx", base, base.Mul(x), p); err != nil {
		t.Fatalf("valid proof over chained base rejected: %v", err)
	}
}

func TestDlogProofWrongStatement(t *testing.T) {
	base := group.Generator()
	x := group.MustRandomScalar()
	p := ProveDlog("ctx", base, x)
	other := base.Mul(group.MustRandomScalar())
	if err := VerifyDlog("ctx", base, other, p); err == nil {
		t.Fatal("proof accepted for a different public key")
	}
}

func TestDlogProofContextBinding(t *testing.T) {
	base := group.Generator()
	x := group.MustRandomScalar()
	public := base.Mul(x)
	p := ProveDlog("round-1/chain-2", base, x)
	if err := VerifyDlog("round-1/chain-3", base, public, p); err == nil {
		t.Fatal("proof replayed across contexts")
	}
}

func TestDlogProofTamperedResponse(t *testing.T) {
	base := group.Generator()
	x := group.MustRandomScalar()
	public := base.Mul(x)
	p := ProveDlog("ctx", base, x)
	p.S = p.S.Add(group.NewScalar(1))
	if err := VerifyDlog("ctx", base, public, p); err == nil {
		t.Fatal("tampered response accepted")
	}
	p2 := ProveDlog("ctx", base, x)
	p2.C = p2.C.Add(group.NewScalar(1))
	if err := VerifyDlog("ctx", base, public, p2); err == nil {
		t.Fatal("tampered challenge accepted")
	}
}

func TestDlogRejectsIdentityInputs(t *testing.T) {
	x := group.MustRandomScalar()
	p := ProveDlog("ctx", group.Generator(), x)
	if err := VerifyDlog("ctx", group.Identity(), group.Base(x), p); err == nil {
		t.Fatal("identity base accepted")
	}
	if err := VerifyDlog("ctx", group.Generator(), group.Identity(), p); err == nil {
		t.Fatal("identity public key accepted")
	}
}

func TestDleqProofVerifies(t *testing.T) {
	x := group.MustRandomScalar()
	b1 := group.Generator()
	b2 := group.Base(group.MustRandomScalar())
	p := ProveDleq("ctx", b1, b2, x)
	if err := VerifyDleq("ctx", b1, b1.Mul(x), b2, b2.Mul(x), p); err != nil {
		t.Fatalf("valid DLEQ rejected: %v", err)
	}
}

// TestDleqShuffleCertificate exercises the exact statement the AHS
// mixing step proves: (∏ X_j)^bsk = ∏ X'_j against bpk_{i-1}, bpk_i.
func TestDleqShuffleCertificate(t *testing.T) {
	bsk := group.MustRandomScalar()
	bpkPrev := group.Base(group.MustRandomScalar())
	bpkCur := bpkPrev.Mul(bsk)

	var in, out []group.Point
	for j := 0; j < 10; j++ {
		x := group.Base(group.MustRandomScalar())
		in = append(in, x)
		out = append(out, x.Mul(bsk))
	}
	// Shuffle out (a rotation suffices: product is invariant).
	out = append(out[3:], out[:3]...)

	prodIn := group.Product(in)
	prodOut := group.Product(out)
	p := ProveDleq("round/chain/server", prodIn, bpkPrev, bsk)
	if err := VerifyDleq("round/chain/server", prodIn, prodOut, bpkPrev, bpkCur, p); err != nil {
		t.Fatalf("shuffle certificate rejected: %v", err)
	}

	// Dropping one message must break the certificate.
	shortOut := group.Product(out[1:])
	if err := VerifyDleq("round/chain/server", prodIn, shortOut, bpkPrev, bpkCur, p); err == nil {
		t.Fatal("certificate accepted after a dropped message")
	}
}

func TestDleqDifferentExponentsRejected(t *testing.T) {
	x := group.MustRandomScalar()
	y := x.Add(group.NewScalar(1))
	b1 := group.Generator()
	b2 := group.Base(group.MustRandomScalar())
	p := ProveDleq("ctx", b1, b2, x)
	if err := VerifyDleq("ctx", b1, b1.Mul(x), b2, b2.Mul(y), p); err == nil {
		t.Fatal("DLEQ accepted with mismatched exponents")
	}
}

func TestDleqContextBinding(t *testing.T) {
	x := group.MustRandomScalar()
	b1 := group.Generator()
	b2 := group.Base(group.MustRandomScalar())
	p := ProveDleq("ctx-a", b1, b2, x)
	if err := VerifyDleq("ctx-b", b1, b1.Mul(x), b2, b2.Mul(x), p); err == nil {
		t.Fatal("DLEQ replayed across contexts")
	}
}

func TestProofEncodingRoundTrip(t *testing.T) {
	x := group.MustRandomScalar()
	p := ProveDlog("ctx", group.Generator(), x)
	b := p.Bytes()
	if len(b) != ProofSize {
		t.Fatalf("encoded size = %d, want %d", len(b), ProofSize)
	}
	got, err := ParseProof(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDlog("ctx", group.Generator(), group.Base(x), got); err != nil {
		t.Fatalf("round-tripped proof rejected: %v", err)
	}
}

func TestParseProofRejectsGarbage(t *testing.T) {
	if _, err := ParseProof(make([]byte, ProofSize-1)); err == nil {
		t.Fatal("short proof accepted")
	}
	bad := make([]byte, ProofSize)
	for i := range bad {
		bad[i] = 0xff // both scalars >= order
	}
	if _, err := ParseProof(bad); err == nil {
		t.Fatal("non-canonical scalars accepted")
	}
}

func BenchmarkProveDlog(b *testing.B) {
	x := group.MustRandomScalar()
	base := group.Generator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ProveDlog("bench", base, x)
	}
}

func BenchmarkVerifyDlog(b *testing.B) {
	x := group.MustRandomScalar()
	base := group.Generator()
	public := base.Mul(x)
	p := ProveDlog("bench", base, x)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := VerifyDlog("bench", base, public, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProveDleq(b *testing.B) {
	x := group.MustRandomScalar()
	b1 := group.Generator()
	b2 := group.Base(group.MustRandomScalar())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ProveDleq("bench", b1, b2, x)
	}
}

func BenchmarkVerifyDleq(b *testing.B) {
	x := group.MustRandomScalar()
	b1 := group.Generator()
	b2 := group.Base(group.MustRandomScalar())
	p := ProveDleq("bench", b1, b2, x)
	y1, y2 := b1.Mul(x), b2.Mul(x)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := VerifyDleq("bench", b1, y1, b2, y2, p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- commitment-format (batchable) knowledge proofs ---

func TestDlogCommitProofVerifies(t *testing.T) {
	x := group.MustRandomScalar()
	base := group.Generator()
	p := ProveDlogCommit("ctx", base, x)
	if err := VerifyDlogCommit("ctx", base, base.Mul(x), p); err != nil {
		t.Fatalf("valid commitment-format proof rejected: %v", err)
	}
	if err := VerifyDlogCommit("other", base, base.Mul(x), p); err == nil {
		t.Fatal("proof replayed across contexts")
	}
	if err := VerifyDlogCommit("ctx", base, base.Mul(group.MustRandomScalar()), p); err == nil {
		t.Fatal("proof accepted for a different public key")
	}
	bad := p
	bad.S = bad.S.Add(group.NewScalar(1))
	if err := VerifyDlogCommit("ctx", base, base.Mul(x), bad); err == nil {
		t.Fatal("tampered response accepted")
	}
	bad = p
	bad.T = bad.T.Add(base)
	if err := VerifyDlogCommit("ctx", base, base.Mul(x), bad); err == nil {
		t.Fatal("tampered commitment accepted")
	}
	if err := VerifyDlogCommit("ctx", group.Identity(), base.Mul(x), p); err == nil {
		t.Fatal("identity base accepted")
	}
	if err := VerifyDlogCommit("ctx", base, group.Identity(), p); err == nil {
		t.Fatal("identity public key accepted")
	}
}

func TestDlogProofEncodingRoundTrip(t *testing.T) {
	x := group.MustRandomScalar()
	p := ProveDlogCommit("ctx", group.Generator(), x)
	b := p.Bytes()
	if len(b) != DlogProofSize {
		t.Fatalf("encoded size = %d, want %d", len(b), DlogProofSize)
	}
	got, err := ParseDlogProof(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDlogCommit("ctx", group.Generator(), group.Base(x), got); err != nil {
		t.Fatalf("round-tripped proof rejected: %v", err)
	}
	if _, err := ParseDlogProof(b[:DlogProofSize-1]); err == nil {
		t.Fatal("short encoding accepted")
	}
	garbage := make([]byte, DlogProofSize)
	for i := range garbage {
		garbage[i] = 0xff
	}
	if _, err := ParseDlogProof(garbage); err == nil {
		t.Fatal("off-curve commitment accepted")
	}
}

// batchFixture builds n valid commitment-format proofs with distinct
// contexts and secrets.
func batchFixture(t *testing.T, n int) (contexts []string, publics []group.Point, proofs []DlogProof) {
	t.Helper()
	base := group.Generator()
	for i := 0; i < n; i++ {
		ctx := fmt.Sprintf("batch/msg=%d", i)
		x := group.MustRandomScalar()
		contexts = append(contexts, ctx)
		publics = append(publics, base.Mul(x))
		proofs = append(proofs, ProveDlogCommit(ctx, base, x))
	}
	return contexts, publics, proofs
}

// TestDlogBatchMatchesSingle pins batch-vs-single equivalence: a
// batch of valid proofs accepts, and flipping any one proof, public
// key or context — at the start, middle and end of a 100-proof batch
// — makes the whole batch reject, exactly as the corresponding single
// verification would.
func TestDlogBatchMatchesSingle(t *testing.T) {
	const n = 100
	base := group.Generator()
	contexts, publics, proofs := batchFixture(t, n)

	if err := VerifyDlogBatch(contexts, base, publics, proofs); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	for _, i := range []int{0, n / 2, n - 1} {
		// Tampered response.
		mutated := append([]DlogProof(nil), proofs...)
		mutated[i].S = mutated[i].S.Add(group.NewScalar(1))
		if err := VerifyDlogBatch(contexts, base, publics, mutated); err == nil {
			t.Fatalf("batch accepted with proof %d tampered", i)
		}
		// Tampered commitment.
		mutated = append([]DlogProof(nil), proofs...)
		mutated[i].T = mutated[i].T.Add(base)
		if err := VerifyDlogBatch(contexts, base, publics, mutated); err == nil {
			t.Fatalf("batch accepted with commitment %d tampered", i)
		}
		// Wrong public key.
		keys := append([]group.Point(nil), publics...)
		keys[i] = base.Mul(group.MustRandomScalar())
		if err := VerifyDlogBatch(contexts, base, keys, proofs); err == nil {
			t.Fatalf("batch accepted with public key %d swapped", i)
		}
		// Wrong context (replay into a different round/chain).
		ctxs := append([]string(nil), contexts...)
		ctxs[i] = "batch/other"
		if err := VerifyDlogBatch(ctxs, base, publics, proofs); err == nil {
			t.Fatalf("batch accepted with context %d flipped", i)
		}
	}
}

func TestDlogBatchEdgeCases(t *testing.T) {
	base := group.Generator()
	if err := VerifyDlogBatch(nil, base, nil, nil); err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}
	contexts, publics, proofs := batchFixture(t, 1)
	if err := VerifyDlogBatch(contexts, base, publics, proofs); err != nil {
		t.Fatalf("singleton batch rejected: %v", err)
	}
	if err := VerifyDlogBatch(contexts, group.Identity(), publics, proofs); err == nil {
		t.Fatal("identity base accepted")
	}
	publics[0] = group.Identity()
	if err := VerifyDlogBatch(contexts, base, publics, proofs); err == nil {
		t.Fatal("identity public key accepted")
	}
	if err := VerifyDlogBatch(contexts[:1], base, nil, proofs[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestDlogBatchSizesAcrossMSMPaths walks batch sizes spanning the
// MSM's naive, Straus and Pippenger paths (the point count is twice
// the proof count).
func TestDlogBatchSizesAcrossMSMPaths(t *testing.T) {
	base := group.Generator()
	for _, n := range []int{1, 2, 5, 15, 16, 40, 70} {
		contexts, publics, proofs := batchFixture(t, n)
		if err := VerifyDlogBatch(contexts, base, publics, proofs); err != nil {
			t.Fatalf("valid batch of %d rejected: %v", n, err)
		}
		i := n - 1
		proofs[i].S = proofs[i].S.Add(group.NewScalar(1))
		if err := VerifyDlogBatch(contexts, base, publics, proofs); err == nil {
			t.Fatalf("batch of %d accepted with a tampered proof", n)
		}
	}
}

// Package directory is the key-distribution functionality XRD
// assumes exists (§3.1, §7): "a public key infrastructure that can be
// used to securely share public keys of online servers and users with
// all participants at any given time", e.g. a key transparency log.
//
// The directory maps human-readable names to user identity keys and
// server endpoints. It is trusted for key distribution exactly as the
// paper's assumed PKI is; everything else in the system re-validates
// what it hands out (points are parsed, proofs are checked).
package directory

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/group"
)

// ErrNotFound is returned for unknown names.
var ErrNotFound = fmt.Errorf("directory: name not found")

// ServerInfo describes a reachable deployment endpoint.
type ServerInfo struct {
	// Addr is the TLS endpoint ("host:port").
	Addr string
	// Role is "gateway", "mix" or "mailbox".
	Role string
}

// Directory is a concurrency-safe name registry.
type Directory struct {
	mu      sync.RWMutex
	users   map[string]group.Point
	servers map[string]ServerInfo
}

// New returns an empty directory.
func New() *Directory {
	return &Directory{
		users:   make(map[string]group.Point),
		servers: make(map[string]ServerInfo),
	}
}

// RegisterUser binds a name to an identity key. Re-registration with
// a different key is rejected: key transparency systems make silent
// key substitution detectable, which is the property XRD leans on.
func (d *Directory) RegisterUser(name string, pk group.Point) error {
	if pk.IsIdentity() {
		return fmt.Errorf("directory: refusing identity element as a user key for %q", name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if existing, ok := d.users[name]; ok {
		if existing.Equal(pk) {
			return nil
		}
		return fmt.Errorf("directory: %q already registered with a different key", name)
	}
	d.users[name] = pk
	return nil
}

// LookupUser returns the identity key bound to a name.
func (d *Directory) LookupUser(name string) (group.Point, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	pk, ok := d.users[name]
	if !ok {
		return group.Point{}, fmt.Errorf("%w: user %q", ErrNotFound, name)
	}
	return pk, nil
}

// Users returns all registered user names, sorted.
func (d *Directory) Users() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.users))
	for n := range d.users {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterServer binds a server name to its endpoint.
func (d *Directory) RegisterServer(name string, info ServerInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.servers[name] = info
}

// LookupServer returns a server's endpoint.
func (d *Directory) LookupServer(name string) (ServerInfo, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	info, ok := d.servers[name]
	if !ok {
		return ServerInfo{}, fmt.Errorf("%w: server %q", ErrNotFound, name)
	}
	return info, nil
}

// snapshot is the JSON form for Export/Import.
type snapshot struct {
	Users   map[string][]byte     `json:"users"`
	Servers map[string]ServerInfo `json:"servers"`
}

// Export serialises the directory (e.g. to distribute to clients).
func (d *Directory) Export() ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s := snapshot{Users: make(map[string][]byte), Servers: make(map[string]ServerInfo)}
	for n, pk := range d.users {
		s.Users[n] = pk.Bytes()
	}
	for n, info := range d.servers {
		s.Servers[n] = info
	}
	return json.Marshal(s)
}

// Import loads a serialised directory, validating every key.
func Import(data []byte) (*Directory, error) {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("directory: parsing snapshot: %w", err)
	}
	d := New()
	for n, b := range s.Users {
		pk, err := group.ParsePoint(b)
		if err != nil {
			return nil, fmt.Errorf("directory: user %q: %w", n, err)
		}
		if err := d.RegisterUser(n, pk); err != nil {
			return nil, err
		}
	}
	for n, info := range s.Servers {
		d.RegisterServer(n, info)
	}
	return d, nil
}

package directory

import (
	"sync"
	"testing"

	"repro/internal/group"
)

func TestRegisterLookup(t *testing.T) {
	d := New()
	alice := group.GenerateBaseKeyPair()
	if err := d.RegisterUser("alice", alice.Public); err != nil {
		t.Fatal(err)
	}
	got, err := d.LookupUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(alice.Public) {
		t.Fatal("lookup returned wrong key")
	}
	if _, err := d.LookupUser("bob"); err == nil {
		t.Fatal("unknown user found")
	}
}

func TestReRegistrationRules(t *testing.T) {
	d := New()
	alice := group.GenerateBaseKeyPair()
	if err := d.RegisterUser("alice", alice.Public); err != nil {
		t.Fatal(err)
	}
	// Idempotent with the same key.
	if err := d.RegisterUser("alice", alice.Public); err != nil {
		t.Fatalf("idempotent re-registration rejected: %v", err)
	}
	// Key substitution is rejected.
	mallory := group.GenerateBaseKeyPair()
	if err := d.RegisterUser("alice", mallory.Public); err == nil {
		t.Fatal("key substitution accepted")
	}
}

func TestRejectIdentityKey(t *testing.T) {
	d := New()
	if err := d.RegisterUser("zero", group.Identity()); err == nil {
		t.Fatal("identity element accepted as a key")
	}
}

func TestServers(t *testing.T) {
	d := New()
	d.RegisterServer("gateway-1", ServerInfo{Addr: "10.0.0.1:7000", Role: "gateway"})
	info, err := d.LookupServer("gateway-1")
	if err != nil || info.Addr != "10.0.0.1:7000" || info.Role != "gateway" {
		t.Fatalf("lookup: %+v, %v", info, err)
	}
	if _, err := d.LookupServer("nope"); err == nil {
		t.Fatal("unknown server found")
	}
}

func TestUsersSorted(t *testing.T) {
	d := New()
	for _, n := range []string{"carol", "alice", "bob"} {
		if err := d.RegisterUser(n, group.GenerateBaseKeyPair().Public); err != nil {
			t.Fatal(err)
		}
	}
	got := d.Users()
	want := []string{"alice", "bob", "carol"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Users() = %v", got)
		}
	}
}

func TestExportImport(t *testing.T) {
	d := New()
	alice := group.GenerateBaseKeyPair()
	if err := d.RegisterUser("alice", alice.Public); err != nil {
		t.Fatal(err)
	}
	d.RegisterServer("gw", ServerInfo{Addr: "h:1", Role: "gateway"})
	blob, err := d.Export()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Import(blob)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := d2.LookupUser("alice")
	if err != nil || !pk.Equal(alice.Public) {
		t.Fatal("import lost alice's key")
	}
	if _, err := d2.LookupServer("gw"); err != nil {
		t.Fatal("import lost the server")
	}
}

func TestImportRejectsBadKeys(t *testing.T) {
	if _, err := Import([]byte(`{"users":{"x":"AAec"},"servers":{}}`)); err == nil {
		t.Fatal("bad key blob accepted")
	}
	if _, err := Import([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			pk := group.GenerateBaseKeyPair().Public
			for j := 0; j < 50; j++ {
				d.RegisterUser(name, pk)
				d.LookupUser(name)
				d.Users()
			}
		}(i)
	}
	wg.Wait()
	if len(d.Users()) != 8 {
		t.Fatalf("users = %d", len(d.Users()))
	}
}

package rpc

import (
	"crypto/tls"
	"encoding/binary"
	"errors"
	"os"
	"testing"
	"time"
)

// Deadline tests: a peer that connects and goes quiet — or stalls
// mid-frame — must be shed by the endpoint's idle deadline instead of
// pinning a handler goroutine, and real traffic through the same
// endpoint must keep flowing.

// shortIdleFleet launches hop endpoints whose idle deadline is tight
// enough for a test to watch a misbehaving connection get shed. The
// write happens under the endpoint's lock, the same one the accept
// loop snapshots the deadlines under.
func shortIdleFleet(t *testing.T, k int, idle time.Duration) []*HopServer {
	t.Helper()
	fleet := startHopFleet(t, k)
	for _, hs := range fleet {
		hs.listenerCore.mu.Lock()
		hs.IdleTimeout = idle
		hs.listenerCore.mu.Unlock()
	}
	return fleet
}

// assertReaped reads on the abusive connection and demands the error
// be the server closing it (EOF/reset), not the client's own safety
// deadline expiring.
func assertReaped(t *testing.T, conn *tls.Conn, what string) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	_, err := conn.Read(make([]byte, 1))
	if err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("%s connection not reaped by the server: %v", what, err)
	}
}

// waitNoConns polls until the endpoint tracks zero live connections.
func waitNoConns(t *testing.T, hs *HopServer) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		hs.listenerCore.mu.Lock()
		n := len(hs.listenerCore.conns)
		hs.listenerCore.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("abusive connection still tracked by the endpoint")
}

// TestSlowReaderConnReaped connects to a hop endpoint and sends
// nothing. The idle deadline must close the connection server-side,
// and a fresh deployment over the same fleet must then complete a
// delivering round — the recovering round.
func TestSlowReaderConnReaped(t *testing.T) {
	fleet := shortIdleFleet(t, 3, 250*time.Millisecond)

	conn, err := tls.Dial("tcp", fleet[1].Addr(), fleet[1].ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Handshake(); err != nil {
		t.Fatal(err)
	}
	assertReaped(t, conn, "silent")
	waitNoConns(t, fleet[1])

	dist := distributedNetwork(t, fleet)
	alice, bob := converse(t, dist)
	if err := alice.u.QueueMessage([]byte("after the reap")); err != nil {
		t.Fatal(err)
	}
	rep, err := dist.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.HaltedChains) != 0 || rep.Delivered == 0 {
		t.Fatalf("recovering round misbehaved: %+v", rep)
	}
	if got := bob.read(t, rep.Round); string(got) != "after the reap" {
		t.Fatalf("bob read %q after the reap", got)
	}
}

// TestStalledWriterConnReaped announces a large frame, delivers a few
// bytes, and stalls. The endpoint is mid-ReadFrame on that
// connection, yet the concurrent round must complete (per-connection
// goroutines) and the stalled connection must be shed once the idle
// deadline covers the gap.
func TestStalledWriterConnReaped(t *testing.T) {
	fleet := shortIdleFleet(t, 3, 500*time.Millisecond)
	dist := distributedNetwork(t, fleet)
	alice, bob := converse(t, dist)

	conn, err := tls.Dial("tcp", fleet[0].Addr(), fleet[0].ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<20)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}

	if err := alice.u.QueueMessage([]byte("despite the stall")); err != nil {
		t.Fatal(err)
	}
	rep, err := dist.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.HaltedChains) != 0 || rep.Delivered == 0 {
		t.Fatalf("round alongside a stalled writer misbehaved: %+v", rep)
	}
	if got := bob.read(t, rep.Round); string(got) != "despite the stall" {
		t.Fatalf("bob read %q alongside the stall", got)
	}
	assertReaped(t, conn, "mid-frame stalled")
}

package rpc

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// Failover tests: a gateway that is slow (its backend wedged, so it
// relays deadline errors, or it simply never answers) and then dead
// (listener gone) must not strand a MultiClient while a healthy peer
// can serve the request.

// fakeTimeout is a net.Error timeout whose message deliberately avoids
// the "deadline"/"timeout" spellings, so matching it proves the
// net.Error branch of retriable rather than the string fallback.
type fakeTimeout struct{}

func (fakeTimeout) Error() string   { return "operation stalled" }
func (fakeTimeout) Timeout() bool   { return true }
func (fakeTimeout) Temporary() bool { return false }

func TestRetriableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"transport", &TransportError{Op: "dialing", Err: errors.New("connection refused")}, true},
		{"context deadline", context.DeadlineExceeded, true},
		{"os deadline", os.ErrDeadlineExceeded, true},
		{"wrapped deadline", fmt.Errorf("triggering round: %w", context.DeadlineExceeded), true},
		{"net.Error timeout", fakeTimeout{}, true},
		{"wrapped net.Error timeout", fmt.Errorf("hop 2: %w", fakeTimeout{}), true},
		// Server-relayed errors cross the wire flattened to strings
		// (response.Err); the pre-failover client treated these as
		// authoritative application errors and gave up.
		{"relayed deadline string", errors.New("core: awaiting chain keys: context deadline exceeded"), true},
		{"relayed i/o timeout string", errors.New("read tcp 10.0.0.7:443: i/o timeout"), true},
		{"application rejection", errors.New("core: round 7 is already mixing; submissions are closed"), false},
		{"ban rejection", errors.New("core: user was removed for misbehaviour; submissions are refused"), false},
	}
	for _, tc := range cases {
		if got := retriable(tc.err); got != tc.want {
			t.Errorf("retriable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBackoffSleepBounds(t *testing.T) {
	b := Backoff{Base: 40 * time.Millisecond, Max: 160 * time.Millisecond}
	for a := 1; a <= 6; a++ {
		want := b.Base << (a - 1)
		if want > b.Max {
			want = b.Max
		}
		for i := 0; i < 64; i++ {
			d := b.sleep(a)
			if d < want/2 || d > want {
				t.Fatalf("sleep(%d) = %v outside [%v, %v]", a, d, want/2, want)
			}
		}
	}
	// The zero value must still produce a sane schedule.
	var zero Backoff
	if zero.attempts() != 3 {
		t.Fatalf("zero Backoff attempts = %d", zero.attempts())
	}
	if d := zero.sleep(1); d < 25*time.Millisecond || d > 50*time.Millisecond {
		t.Fatalf("zero Backoff sleep(1) = %v", d)
	}
}

// startFakeGateway runs a TLS listener that hands each accepted
// connection to handle. It returns the endpoint and a stop function
// that kills the listener outright — the "then dead" half of a
// slow-then-dead gateway.
func startFakeGateway(t *testing.T, handle func(net.Conn)) (Endpoint, func()) {
	t.Helper()
	srvCfg, cliCfg, err := SelfSignedTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	var stopped atomic.Bool
	stop := func() {
		if stopped.CompareAndSwap(false, true) {
			ln.Close()
		}
	}
	t.Cleanup(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handle(conn)
		}
	}()
	return Endpoint{Addr: ln.Addr().String(), TLS: cliCfg}, stop
}

// wedgedHandler mimics a gateway that is up while its backend is
// stuck: every request is answered with a relayed deadline error, the
// flattened string form such errors take on the wire.
func wedgedHandler(conn net.Conn) {
	defer conn.Close()
	for {
		if _, err := ReadFrame(conn); err != nil {
			return
		}
		body, err := encode(response{Err: "core: awaiting chain keys: context deadline exceeded"})
		if err != nil {
			return
		}
		if err := WriteFrame(conn, body); err != nil {
			return
		}
	}
}

// stalledHandler mimics a gateway that accepts and then goes silent,
// so the caller's own deadline has to fire.
func stalledHandler(conn net.Conn) {
	defer conn.Close()
	ReadFrame(conn)
	time.Sleep(30 * time.Second)
}

// TestFailoverOnRelayedDeadline pins the regression: a gateway
// relaying deadline errors as application strings must be failed
// over, not believed. Then the slow gateway dies completely and the
// next call must still land on the healthy peer.
func TestFailoverOnRelayedDeadline(t *testing.T) {
	n, srv := newDeployment(t)
	slow, stopSlow := startFakeGateway(t, wedgedHandler)

	m, err := NewMultiClient([]Endpoint{slow, {Addr: srv.Addr(), TLS: srv.ClientTLS()}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Backoff = Backoff{Attempts: 1} // failover within the cycle; no sleeps

	st, err := m.Status()
	if err != nil {
		t.Fatalf("status did not fail over past the wedged gateway: %v", err)
	}
	if st.Round != n.Round() {
		t.Fatalf("status came from nowhere: %+v", st)
	}

	// Slow, then dead: the first endpoint now refuses connections
	// entirely, which must surface as a TransportError and fail over
	// just the same.
	stopSlow()
	if _, err := m.Status(); err != nil {
		t.Fatalf("status did not fail over past the dead gateway: %v", err)
	}
}

// TestFailoverOnStalledGateway covers the other slow shape: the
// gateway accepts and never answers, so the client's call deadline
// expires locally and the next gateway must be tried.
func TestFailoverOnStalledGateway(t *testing.T) {
	_, srv := newDeployment(t)
	slow, stopSlow := startFakeGateway(t, stalledHandler)

	m, err := NewMultiClient([]Endpoint{slow, {Addr: srv.Addr(), TLS: srv.ClientTLS()}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Backoff = Backoff{Attempts: 1}
	for _, c := range m.Clients() {
		c.Timeout = 300 * time.Millisecond
	}

	start := time.Now()
	if _, err := m.Status(); err != nil {
		t.Fatalf("status did not fail over past the stalled gateway: %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("failover took %v; the stall leaked past the call deadline", waited)
	}
	stopSlow()
}

package rpc

import (
	"context"
	"crypto/sha256"
	"crypto/tls"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/mix"
)

// Endpoint names one gateway a MultiClient may talk to.
type Endpoint struct {
	Addr string
	TLS  *tls.Config
}

// Backoff bounds MultiClient's retry schedule. One "attempt" is a
// full failover cycle over every gateway; between attempts the client
// sleeps an exponentially growing, jittered interval — long enough
// for a crashed gateway to restart and replay its WAL, spread out so
// a fleet of clients does not stampede it the moment it returns.
type Backoff struct {
	// Attempts is the number of failover cycles; zero means 3.
	Attempts int
	// Base is the sleep after the first failed cycle, doubling per
	// cycle; zero means 50ms.
	Base time.Duration
	// Max caps the per-cycle sleep; zero means 2s.
	Max time.Duration
}

func (b Backoff) attempts() int {
	if b.Attempts <= 0 {
		return 3
	}
	return b.Attempts
}

// sleep returns the jittered pause before retry cycle a (a ≥ 1):
// half the exponential interval fixed plus half uniformly random.
func (b Backoff) sleep(a int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << (a - 1)
	if d > max || d <= 0 { // <= 0 guards shift overflow
		d = max
	}
	return d/2 + rand.N(d/2+1)
}

// retriable reports whether an error justifies trying another gateway
// (or the same set again after a pause). Transport-level failures
// obviously do; so do deadline expiries in every shape they reach us:
// a local net.Conn deadline surfaces as a net.Error timeout inside a
// TransportError, but a gateway that is up while its backend is
// wedged relays the deadline as a flattened application-error string,
// which the pre-failover client treated as authoritative and gave up
// on. An application-level rejection ("round closed", "banned") stays
// final.
func retriable(err error) bool {
	if err == nil {
		return false
	}
	if IsTransportError(err) {
		return true
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	// Server-relayed errors cross the wire as strings (response.Err);
	// match the two spellings Go's deadline machinery produces.
	msg := err.Error()
	return strings.Contains(msg, "deadline exceeded") || strings.Contains(msg, "i/o timeout")
}

// dedupWindow is how many rounds a fetched message's digest is
// remembered for duplicate suppression. Redelivery after a gateway
// restart lands within a round or two; 8 leaves slack for retried
// rounds without growing the set unboundedly.
const dedupWindow = 8

// MultiClient is a user's view of a sharded gateway front end: a set
// of gateways, the shard ranges they own (discovered from their
// status endpoints), and failover. Operations that any gateway can
// serve — parameter fetches, submissions — prefer the gateway owning
// the user's mailbox and retry the others on a transport-level
// failure; operations bound to mailbox storage (fetch, register) must
// reach the owner. It implements client.ParamsSource, so a
// client.User builds rounds against a sharded deployment exactly as
// against a single gateway.
type MultiClient struct {
	clients []*Client
	// Backoff tunes the retry schedule; the zero value means 3
	// attempts, 50ms base, 2s cap. Set before concurrent use.
	Backoff Backoff

	mu sync.Mutex
	// ranges[i] is clients[i]'s discovered shard range; the zero value
	// means unknown (not yet refreshed, or a coordinator serving the
	// full space — which FullRange covers either way).
	ranges []core.ShardRange
	// seen maps digests of fetched messages to the fetch round that
	// first returned them, suppressing duplicates when a restarted
	// gateway redelivers unacked mail (at-least-once downstream,
	// exactly-once at the application). Pruned to dedupWindow rounds.
	seen map[[sha256.Size]byte]uint64
}

var _ client.ParamsSource = (*MultiClient)(nil)

// NewMultiClient creates a client over the given gateways without
// connecting; Refresh (or the first call) dials.
func NewMultiClient(endpoints []Endpoint) (*MultiClient, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("rpc: no gateway endpoints")
	}
	m := &MultiClient{
		ranges: make([]core.ShardRange, len(endpoints)),
		seen:   make(map[[sha256.Size]byte]uint64),
	}
	for _, ep := range endpoints {
		m.clients = append(m.clients, NewClient(ep.Addr, ep.TLS))
	}
	return m, nil
}

// Clients exposes the per-gateway clients in endpoint order.
func (m *MultiClient) Clients() []*Client { return m.clients }

// Close closes every connection.
func (m *MultiClient) Close() {
	for _, c := range m.clients {
		c.Close()
	}
}

// Refresh queries every gateway's status and records the shard range
// each owns. Unreachable gateways keep their previous (possibly
// unknown) range; at least one must answer.
func (m *MultiClient) Refresh() error {
	var lastErr error
	ok := false
	for i, c := range m.clients {
		st, err := c.Status()
		if err != nil {
			lastErr = err
			continue
		}
		ok = true
		m.mu.Lock()
		if st.ShardHi > st.ShardLo {
			m.ranges[i] = core.ShardRange{Lo: st.ShardLo, Hi: st.ShardHi}
		} else {
			m.ranges[i] = core.FullRange()
		}
		m.mu.Unlock()
	}
	if !ok {
		return fmt.Errorf("rpc: no gateway reachable: %w", lastErr)
	}
	return nil
}

// ownerIdx returns the index of the gateway owning a mailbox, or -1
// when no discovered range covers it.
func (m *MultiClient) ownerIdx(mailbox []byte) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, r := range m.ranges {
		if r.Width() > 0 && r.Owns(mailbox) {
			return i
		}
	}
	return -1
}

// ClientFor returns the gateway owning a mailbox, falling back to the
// first gateway when ownership is unknown.
func (m *MultiClient) ClientFor(mailbox []byte) *Client {
	if i := m.ownerIdx(mailbox); i >= 0 {
		return m.clients[i]
	}
	return m.clients[0]
}

// tryEach runs op against the gateways starting from preferred,
// failing over to the next on retriable errors (transport failures
// and deadline expiries — see retriable); an application-level
// rejection is authoritative and returned as is. When a whole cycle
// fails it backs off (bounded exponential with jitter) and runs
// another, up to Backoff.Attempts cycles — covering the window in
// which a crashed gateway restarts and replays its data directory.
func (m *MultiClient) tryEach(preferred int, op func(*Client) error) error {
	if preferred < 0 {
		preferred = 0
	}
	var lastErr error
	for a := 0; a < m.Backoff.attempts(); a++ {
		if a > 0 {
			obsRetryCycles.Inc()
			d := m.Backoff.sleep(a)
			obsBackoffSeconds.ObserveDuration(d)
			time.Sleep(d)
		}
		for k := 0; k < len(m.clients); k++ {
			c := m.clients[(preferred+k)%len(m.clients)]
			err := op(c)
			if err == nil || !retriable(err) {
				return err
			}
			lastErr = err
			obsFailovers.Inc()
		}
	}
	return lastErr
}

// ChainParams implements client.ParamsSource with failover: chain
// parameters are public and identical on every gateway.
func (m *MultiClient) ChainParams(chain int, round uint64) (mix.Params, error) {
	var p mix.Params
	err := m.tryEach(0, func(c *Client) error {
		var err error
		p, err = c.ChainParams(chain, round)
		return err
	})
	return p, err
}

// Status returns the first reachable gateway's status.
func (m *MultiClient) Status() (StatusResponse, error) {
	var st StatusResponse
	err := m.tryEach(0, func(c *Client) error {
		var err error
		st, err = c.Status()
		return err
	})
	return st, err
}

// Submit uploads a round output, preferring the mailbox's owner but
// accepting any reachable gateway: submissions feed the global chain
// batches, so a user whose own gateway is briefly unreachable still
// makes her round through a peer.
func (m *MultiClient) Submit(mailbox []byte, out *client.RoundOutput) error {
	return m.tryEach(m.ownerIdx(mailbox), func(c *Client) error {
		return c.Submit(mailbox, out)
	})
}

// Fetch downloads a mailbox from its owning gateway — mailbox storage
// is not replicated, so there is no failover target; instead the
// owner is retried with backoff, covering a crashed gateway's
// restart-and-replay window. With ownership unknown every gateway is
// asked and the first non-empty (or last empty) answer wins.
//
// Fetched messages are deduplicated against recent fetches: a
// restarted gateway redelivers everything unacked (at-least-once),
// and the digest set turns that into exactly-once for the caller.
func (m *MultiClient) Fetch(round uint64, mailbox []byte) ([][]byte, error) {
	if i := m.ownerIdx(mailbox); i >= 0 {
		c := m.clients[i]
		var msgs [][]byte
		var err error
		for a := 0; a < m.Backoff.attempts(); a++ {
			if a > 0 {
				obsRetryCycles.Inc()
				d := m.Backoff.sleep(a)
				obsBackoffSeconds.ObserveDuration(d)
				time.Sleep(d)
			}
			msgs, err = c.Fetch(round, mailbox)
			if err == nil || !retriable(err) {
				break
			}
		}
		if err != nil {
			return nil, err
		}
		return m.dedupFetched(round, msgs), nil
	}
	// Owner unknown: probe every gateway once (no backoff — an empty
	// answer from each is a legitimate "no mail", not a failure).
	var empty bool
	var lastErr error
	for _, c := range m.clients {
		msgs, err := c.Fetch(round, mailbox)
		if err != nil {
			lastErr = err
			continue
		}
		if len(msgs) > 0 {
			return m.dedupFetched(round, msgs), nil
		}
		empty = true
	}
	if empty || lastErr == nil {
		return nil, nil // every reachable gateway answered empty
	}
	return nil, lastErr
}

// dedupFetched filters out messages whose digest an earlier fetch
// already returned, records the survivors, and prunes digests older
// than dedupWindow rounds.
func (m *MultiClient) dedupFetched(round uint64, msgs [][]byte) [][]byte {
	if len(msgs) == 0 {
		return msgs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]byte, 0, len(msgs))
	for _, msg := range msgs {
		h := sha256.Sum256(msg)
		if _, dup := m.seen[h]; dup {
			continue
		}
		m.seen[h] = round
		out = append(out, msg)
	}
	for h, r := range m.seen {
		if r+dedupWindow <= round {
			delete(m.seen, h)
		}
	}
	return out
}

// Ack confirms receipt of a round's mailbox contents with the owning
// gateway so it can prune (and eventually compact) them. Best-effort:
// losing an ack only means redelivery, which dedup absorbs.
func (m *MultiClient) Ack(round uint64, mailbox []byte) (int, error) {
	if i := m.ownerIdx(mailbox); i >= 0 {
		return m.clients[i].Ack(round, mailbox)
	}
	total := 0
	var lastErr error
	ok := false
	for _, c := range m.clients {
		n, err := c.Ack(round, mailbox)
		if err != nil {
			lastErr = err
			continue
		}
		ok = true
		total += n
	}
	if !ok {
		return 0, lastErr
	}
	return total, nil
}

// Register records mailbox identifiers, routing each batch to the
// owning gateway. Identifiers whose owner is unknown go to the first
// gateway (correct for a monolith; an error otherwise).
func (m *MultiClient) Register(mailboxes [][]byte) (int, error) {
	buckets := make(map[int][][]byte)
	for _, mb := range mailboxes {
		i := m.ownerIdx(mb)
		if i < 0 {
			i = 0
		}
		buckets[i] = append(buckets[i], mb)
	}
	total := 0
	for i, batch := range buckets {
		n, err := m.clients[i].Register(batch)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

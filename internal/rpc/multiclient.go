package rpc

import (
	"crypto/tls"
	"errors"
	"fmt"
	"sync"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/mix"
)

// Endpoint names one gateway a MultiClient may talk to.
type Endpoint struct {
	Addr string
	TLS  *tls.Config
}

// MultiClient is a user's view of a sharded gateway front end: a set
// of gateways, the shard ranges they own (discovered from their
// status endpoints), and failover. Operations that any gateway can
// serve — parameter fetches, submissions — prefer the gateway owning
// the user's mailbox and retry the others on a transport-level
// failure; operations bound to mailbox storage (fetch, register) must
// reach the owner. It implements client.ParamsSource, so a
// client.User builds rounds against a sharded deployment exactly as
// against a single gateway.
type MultiClient struct {
	clients []*Client

	mu sync.Mutex
	// ranges[i] is clients[i]'s discovered shard range; the zero value
	// means unknown (not yet refreshed, or a coordinator serving the
	// full space — which FullRange covers either way).
	ranges []core.ShardRange
}

var _ client.ParamsSource = (*MultiClient)(nil)

// NewMultiClient creates a client over the given gateways without
// connecting; Refresh (or the first call) dials.
func NewMultiClient(endpoints []Endpoint) (*MultiClient, error) {
	if len(endpoints) == 0 {
		return nil, errors.New("rpc: no gateway endpoints")
	}
	m := &MultiClient{ranges: make([]core.ShardRange, len(endpoints))}
	for _, ep := range endpoints {
		m.clients = append(m.clients, NewClient(ep.Addr, ep.TLS))
	}
	return m, nil
}

// Clients exposes the per-gateway clients in endpoint order.
func (m *MultiClient) Clients() []*Client { return m.clients }

// Close closes every connection.
func (m *MultiClient) Close() {
	for _, c := range m.clients {
		c.Close()
	}
}

// Refresh queries every gateway's status and records the shard range
// each owns. Unreachable gateways keep their previous (possibly
// unknown) range; at least one must answer.
func (m *MultiClient) Refresh() error {
	var lastErr error
	ok := false
	for i, c := range m.clients {
		st, err := c.Status()
		if err != nil {
			lastErr = err
			continue
		}
		ok = true
		m.mu.Lock()
		if st.ShardHi > st.ShardLo {
			m.ranges[i] = core.ShardRange{Lo: st.ShardLo, Hi: st.ShardHi}
		} else {
			m.ranges[i] = core.FullRange()
		}
		m.mu.Unlock()
	}
	if !ok {
		return fmt.Errorf("rpc: no gateway reachable: %w", lastErr)
	}
	return nil
}

// ownerIdx returns the index of the gateway owning a mailbox, or -1
// when no discovered range covers it.
func (m *MultiClient) ownerIdx(mailbox []byte) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, r := range m.ranges {
		if r.Width() > 0 && r.Owns(mailbox) {
			return i
		}
	}
	return -1
}

// ClientFor returns the gateway owning a mailbox, falling back to the
// first gateway when ownership is unknown.
func (m *MultiClient) ClientFor(mailbox []byte) *Client {
	if i := m.ownerIdx(mailbox); i >= 0 {
		return m.clients[i]
	}
	return m.clients[0]
}

// tryEach runs op against the gateways starting from preferred,
// failing over to the next on transport-level errors only: an
// application-level rejection is authoritative and returned as is.
func (m *MultiClient) tryEach(preferred int, op func(*Client) error) error {
	if preferred < 0 {
		preferred = 0
	}
	var lastErr error
	for k := 0; k < len(m.clients); k++ {
		c := m.clients[(preferred+k)%len(m.clients)]
		err := op(c)
		if err == nil || !IsTransportError(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// ChainParams implements client.ParamsSource with failover: chain
// parameters are public and identical on every gateway.
func (m *MultiClient) ChainParams(chain int, round uint64) (mix.Params, error) {
	var p mix.Params
	err := m.tryEach(0, func(c *Client) error {
		var err error
		p, err = c.ChainParams(chain, round)
		return err
	})
	return p, err
}

// Status returns the first reachable gateway's status.
func (m *MultiClient) Status() (StatusResponse, error) {
	var st StatusResponse
	err := m.tryEach(0, func(c *Client) error {
		var err error
		st, err = c.Status()
		return err
	})
	return st, err
}

// Submit uploads a round output, preferring the mailbox's owner but
// accepting any reachable gateway: submissions feed the global chain
// batches, so a user whose own gateway is briefly unreachable still
// makes her round through a peer.
func (m *MultiClient) Submit(mailbox []byte, out *client.RoundOutput) error {
	return m.tryEach(m.ownerIdx(mailbox), func(c *Client) error {
		return c.Submit(mailbox, out)
	})
}

// Fetch downloads a mailbox from its owning gateway — mailbox storage
// is not replicated, so there is no failover target. With ownership
// unknown every gateway is asked and the first non-empty (or last
// empty) answer wins.
func (m *MultiClient) Fetch(round uint64, mailbox []byte) ([][]byte, error) {
	if i := m.ownerIdx(mailbox); i >= 0 {
		return m.clients[i].Fetch(round, mailbox)
	}
	var msgs [][]byte
	err := m.tryEach(0, func(c *Client) error {
		var err error
		msgs, err = c.Fetch(round, mailbox)
		if err == nil && len(msgs) == 0 && len(m.clients) > 1 {
			return &TransportError{Op: "fetch", Err: errors.New("empty mailbox; trying owner candidates")}
		}
		return err
	})
	if err != nil && len(msgs) == 0 && IsTransportError(err) {
		return msgs, nil // every gateway answered empty
	}
	return msgs, err
}

// Register records mailbox identifiers, routing each batch to the
// owning gateway. Identifiers whose owner is unknown go to the first
// gateway (correct for a monolith; an error otherwise).
func (m *MultiClient) Register(mailboxes [][]byte) (int, error) {
	buckets := make(map[int][][]byte)
	for _, mb := range mailboxes {
		i := m.ownerIdx(mb)
		if i < 0 {
			i = 0
		}
		buckets[i] = append(buckets[i], mb)
	}
	total := 0
	for i, batch := range buckets {
		n, err := m.clients[i].Register(batch)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

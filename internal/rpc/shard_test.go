package rpc

import (
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/onion"
)

// newShardedDeployment assembles the full remote-shard topology in one
// process: two ShardServers each hosting a Frontend over half the
// registry space, a coordinator network reaching them only through
// ShardClients over TLS, and the coordinator's own user endpoint.
func newShardedDeployment(t testing.TB) (*core.Network, *Server, []*ShardServer) {
	t.Helper()
	var servers []*ShardServer
	var shards []core.GatewayShard
	for _, r := range []core.ShardRange{{Lo: 0, Hi: 32}, {Lo: 32, Hi: 64}} {
		fe, err := core.NewFrontend(core.FrontendConfig{Range: r, MailboxServers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ss, err := NewShardServer(fe, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ss.Logf = func(string, ...any) {}
		t.Cleanup(func() { ss.Close() })
		sc, err := NewShardClient(r.Lo, r.Hi, ss.Addr(), ss.ClientTLS())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sc.Close() })
		servers = append(servers, ss)
		shards = append(shards, sc)
	}
	n, err := core.NewNetwork(core.Config{
		NumServers:          6,
		ChainLengthOverride: 3,
		Seed:                []byte("rpc-shard-test"),
		Shards:              shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if err := sh.(*ShardClient).Init(n); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	t.Cleanup(func() { srv.Close() })
	return n, srv, servers
}

// shardedFront builds a MultiClient over the two gateway shards and
// discovers their ranges.
func shardedFront(t testing.TB, servers []*ShardServer) *MultiClient {
	t.Helper()
	var eps []Endpoint
	for _, ss := range servers {
		eps = append(eps, Endpoint{Addr: ss.Addr(), TLS: ss.ClientTLS()})
	}
	front, err := NewMultiClient(eps)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { front.Close() })
	if err := front.Refresh(); err != nil {
		t.Fatal(err)
	}
	return front
}

// crossShardPair draws two users guaranteed to live on different
// gateway shards.
func crossShardPair(t testing.TB, n *core.Network, front *MultiClient) (*client.User, *client.User) {
	t.Helper()
	alice := client.NewUser(nil, n.Plan())
	bob := client.NewUser(nil, n.Plan())
	for tries := 0; front.ClientFor(alice.Mailbox()) == front.ClientFor(bob.Mailbox()); tries++ {
		if tries > 1000 {
			t.Fatal("could not draw a cross-shard pair")
		}
		bob = client.NewUser(nil, n.Plan())
	}
	if err := alice.StartConversation(bob.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := bob.StartConversation(alice.PublicKey()); err != nil {
		t.Fatal(err)
	}
	return alice, bob
}

// TestShardedRemoteConversation drives two rounds of a cross-shard
// conversation where users and the coordinator alike reach the
// gateway shards only over TLS: parameters and submissions go to the
// shard processes, the round trigger crosses the coordinator's user
// endpoint, and the delivered mailbox comes back off the recipient's
// owning shard. Round two additionally proves the shards learned the
// next round's parameters from the finish broadcast, not from Init.
func TestShardedRemoteConversation(t *testing.T) {
	n, srv, servers := newShardedDeployment(t)
	front := shardedFront(t, servers)

	st, err := front.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "gateway" {
		t.Fatalf("shard status role %q, want gateway", st.Role)
	}
	if st.Round != n.Round() || st.NumChains != n.NumChains() {
		t.Fatalf("shard status %+v disagrees with coordinator", st)
	}

	driver, err := Dial(srv.Addr(), srv.ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer driver.Close()

	alice, bob := crossShardPair(t, n, front)
	for round := 1; round <= 2; round++ {
		body := []byte{'m', byte('0' + round)}
		if err := alice.QueueMessage(body); err != nil {
			t.Fatal(err)
		}
		rho := n.Round()
		outA, err := alice.BuildRound(rho, front)
		if err != nil {
			t.Fatalf("round %d: alice build: %v", round, err)
		}
		outB, err := bob.BuildRound(rho, front)
		if err != nil {
			t.Fatalf("round %d: bob build: %v", round, err)
		}
		if err := front.Submit(alice.Mailbox(), outA); err != nil {
			t.Fatal(err)
		}
		if err := front.Submit(bob.Mailbox(), outB); err != nil {
			t.Fatal(err)
		}
		rep, err := driver.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		msgs, err := front.Fetch(rep.Round, bob.Mailbox())
		if err != nil {
			t.Fatal(err)
		}
		recv, bad := bob.OpenMailbox(rep.Round, msgs)
		if bad != 0 {
			t.Fatalf("round %d: %d undecryptable", round, bad)
		}
		got := ""
		for _, r := range recv {
			if r.FromPartner && r.Kind == onion.KindConversation {
				got = string(r.Body)
			}
		}
		if got != string(body) {
			t.Fatalf("round %d: bob received %q, want %q", round, got, body)
		}
	}
}

// TestShardProcessDeathMidRound kills one gateway shard process after
// submissions and requires the round to complete for the surviving
// shard's users, with the dead shard reported — the remote-transport
// version of the in-process chaos test in core.
func TestShardProcessDeathMidRound(t *testing.T) {
	n, _, servers := newShardedDeployment(t)
	front := shardedFront(t, servers)

	alice, bob := crossShardPair(t, n, front)
	// A second pair entirely on bob's shard keeps an expected delivery
	// alive after alice's shard dies.
	survivor1 := client.NewUser(nil, n.Plan())
	for front.ClientFor(survivor1.Mailbox()) != front.ClientFor(bob.Mailbox()) {
		survivor1 = client.NewUser(nil, n.Plan())
	}
	survivor2 := client.NewUser(nil, n.Plan())
	for front.ClientFor(survivor2.Mailbox()) != front.ClientFor(bob.Mailbox()) {
		survivor2 = client.NewUser(nil, n.Plan())
	}
	if err := survivor1.StartConversation(survivor2.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := survivor2.StartConversation(survivor1.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := survivor1.QueueMessage([]byte("still here")); err != nil {
		t.Fatal(err)
	}

	rho := n.Round()
	for _, u := range []*client.User{alice, bob, survivor1, survivor2} {
		out, err := u.BuildRound(rho, front)
		if err != nil {
			t.Fatal(err)
		}
		if err := front.Submit(u.Mailbox(), out); err != nil {
			t.Fatal(err)
		}
	}

	// SIGKILL, in-process form: the listener drops every connection
	// and refuses new ones.
	deadIdx := 0
	if front.ClientFor(alice.Mailbox()) == front.Clients()[1] {
		deadIdx = 1
	}
	servers[deadIdx].Close()

	rep, err := n.RunRound()
	if err != nil {
		t.Fatalf("round with one dead shard must still run: %v", err)
	}
	if len(rep.DeadShards) != 1 || rep.DeadShards[0] != deadIdx {
		t.Fatalf("dead shards = %v, want [%d]", rep.DeadShards, deadIdx)
	}

	// The surviving shard's pair made their round.
	msgs, err := front.Fetch(rep.Round, survivor2.Mailbox())
	if err != nil {
		t.Fatal(err)
	}
	recv, bad := survivor2.OpenMailbox(rep.Round, msgs)
	if bad != 0 {
		t.Fatalf("%d undecryptable", bad)
	}
	got := ""
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindConversation {
			got = string(r.Body)
		}
	}
	if got != "still here" {
		t.Fatalf("survivor received %q", got)
	}

	// The dead shard's user is unreachable — and that is the failure
	// mode: her gateway is gone, not the round.
	if _, err := front.Fetch(rep.Round, alice.Mailbox()); err == nil {
		t.Fatal("fetch from the dead shard should fail")
	} else if !IsTransportError(err) {
		t.Fatalf("fetch from the dead shard: %v, want a transport error", err)
	}
}

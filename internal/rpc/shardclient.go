package rpc

import (
	"crypto/tls"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mix"
	"repro/internal/onion"
)

// DefaultShardCallTimeout bounds one coordinator→shard exchange.
// shard.begin covers the shard's whole build phase (every owned user's
// onion construction), so the bound is far looser than a user call's.
const DefaultShardCallTimeout = 10 * time.Minute

// shardChunk bounds how many submissions or mailbox messages ride in
// one frame of the chunked batch/deliver exchanges.
const shardChunk = 4096

// ShardClient is the coordinator's handle on a gateway shard hosted
// in another process: it implements core.GatewayShard by carrying the
// begin/batch/deliver/finish protocol (shardwire.go) over the shared
// TLS RPC transport, mirroring how HopClient carries mix.Hop.
type ShardClient struct {
	rng core.ShardRange
	c   *Client
}

var _ core.GatewayShard = (*ShardClient)(nil)

// NewShardClient creates a handle on the gateway shard at addr owning
// registry shards [lo, hi). It does not connect; Init (or the first
// round) does.
func NewShardClient(lo, hi int, addr string, tlsCfg *tls.Config) (*ShardClient, error) {
	rng := core.ShardRange{Lo: lo, Hi: hi}
	if err := rng.Validate(); err != nil {
		return nil, err
	}
	c := NewClient(addr, tlsCfg)
	c.Timeout = DefaultShardCallTimeout
	return &ShardClient{rng: rng, c: c}, nil
}

// Addr returns the shard process's address.
func (s *ShardClient) Addr() string { return s.c.Addr() }

// callRetried performs one exchange with a single retry after a
// transport failure. The Client poisons its connection on such a
// failure, so the retry dials fresh — which is how the coordinator
// reattaches to a gateway that crashed and restarted between rounds
// instead of declaring it dead for a round on the stale connection.
// Only exchanges that are safe to re-ask go through here: begin,
// batch, init, rebalance and abort are idempotent at the shard (a
// re-begin in the worst case rebuilds the batches; a re-pulled batch
// chunk is a read of cached state). shard.deliver must NOT be
// retried: a chunk processed but unacknowledged would be buffered —
// and delivered — twice.
func (s *ShardClient) callRetried(method string, req, resp any) error {
	err := s.c.call(method, req, resp)
	if err != nil && IsTransportError(err) {
		obsShardRetries.Inc()
		err = s.c.call(method, req, resp)
	}
	return err
}

// Close closes the underlying connection.
func (s *ShardClient) Close() error { return s.c.Close() }

// Range implements core.GatewayShard.
func (s *ShardClient) Range() core.ShardRange { return s.rng }

// Init attaches the shard process to a running deployment: it pushes
// the current epoch, round and parameter snapshot so the gateway can
// serve clients before its first BeginRound, and verifies the remote
// end owns the range this handle was configured with.
func (s *ShardClient) Init(n *core.Network) error {
	rho := n.Round()
	numChains := n.NumChains()
	req := ShardInitRequest{
		Lo:          s.rng.Lo,
		Hi:          s.rng.Hi,
		Epoch:       n.Epoch(),
		Round:       rho,
		NumChains:   numChains,
		ChainLength: n.Topology().ChainLength,
	}
	cur := make([]mix.Params, numChains)
	next := make([]mix.Params, numChains)
	dead := make(map[int]bool)
	for c := 0; c < numChains; c++ {
		var err error
		if cur[c], err = n.ChainParams(c, rho); err != nil {
			dead[c] = true
			req.Dead = append(req.Dead, c)
			continue
		}
		if next[c], err = n.ChainParams(c, rho+1); err != nil {
			dead[c] = true
			req.Dead = append(req.Dead, c)
		}
	}
	req.Cur = paramsSliceToWire(cur, dead)
	req.Next = paramsSliceToWire(next, dead)
	var resp ShardInitResponse
	if err := s.callRetried("shard.init", req, &resp); err != nil {
		return fmt.Errorf("rpc: initialising shard %s at %s: %w", s.rng, s.c.Addr(), err)
	}
	return nil
}

// BeginRound implements core.GatewayShard: push the round, pull the
// shard's batches in chunks.
func (s *ShardClient) BeginRound(br *core.BeginRound) (*core.ShardBuild, error) {
	dead := make(map[int]bool, len(br.Dead))
	for _, c := range br.Dead {
		dead[c] = true
	}
	req := ShardBeginRequest{
		Round:     br.Round,
		Epoch:     br.Epoch,
		NumChains: br.NumChains,
		Cur:       paramsSliceToWire(br.Cur, dead),
		Next:      paramsSliceToWire(br.Next, dead),
		Dead:      br.Dead,
	}
	var resp ShardBeginResponse
	if err := s.callRetried("shard.begin", req, &resp); err != nil {
		return nil, err
	}
	build := &core.ShardBuild{
		Covered: resp.Covered,
		Skipped: resp.Skipped,
		Batches: make([]core.ChainBatch, len(resp.Counts)),
	}
	for chain, count := range resp.Counts {
		batch := &build.Batches[chain]
		batch.Subs = make([]onion.Submission, 0, count)
		batch.Submitters = make([]string, 0, count)
		for off := 0; off < count; off += shardChunk {
			var chunk ShardBatchResponse
			err := s.callRetried("shard.batch", ShardBatchRequest{
				Round: br.Round, Chain: chain, Offset: off, Max: shardChunk,
			}, &chunk)
			if err != nil {
				return nil, err
			}
			if len(chunk.Subs) == 0 {
				return nil, fmt.Errorf("rpc: shard %s returned empty batch chunk at %d/%d", s.rng, off, count)
			}
			for _, w := range chunk.Subs {
				_, sub, err := submissionFromWire(w)
				if err != nil {
					return nil, fmt.Errorf("rpc: shard %s chain %d: %w", s.rng, chain, err)
				}
				batch.Subs = append(batch.Subs, sub)
			}
			batch.Submitters = append(batch.Submitters, chunk.Submitters...)
		}
		if len(batch.Subs) != count {
			return nil, fmt.Errorf("rpc: shard %s chain %d: pulled %d of %d submissions", s.rng, chain, len(batch.Subs), count)
		}
	}
	return build, nil
}

// FinishRound implements core.GatewayShard: push the deliveries in
// chunks, then commit the round.
func (s *ShardClient) FinishRound(fr *core.FinishRound) (core.FinishStats, error) {
	for off := 0; off < len(fr.Delivered); off += shardChunk {
		end := off + shardChunk
		if end > len(fr.Delivered) {
			end = len(fr.Delivered)
		}
		var resp ShardDeliverResponse
		err := s.c.call("shard.deliver", ShardDeliverRequest{
			Round: fr.Round, Msgs: fr.Delivered[off:end],
		}, &resp)
		if err != nil {
			return core.FinishStats{}, err
		}
	}
	dead := make(map[int]bool, len(fr.Dead))
	for _, c := range fr.Dead {
		dead[c] = true
	}
	req := ShardFinishRequest{
		Round:     fr.Round,
		Removed:   fr.Removed,
		Stranded:  fr.Stranded,
		Epoch:     fr.Epoch,
		NumChains: fr.NumChains,
		Cur:       paramsSliceToWire(fr.Cur, dead),
		Next:      paramsSliceToWire(fr.Next, dead),
		Dead:      fr.Dead,
	}
	var resp ShardFinishResponse
	if err := s.c.call("shard.finish", req, &resp); err != nil {
		return core.FinishStats{}, err
	}
	return core.FinishStats{Delivered: resp.Delivered, Dropped: resp.Dropped}, nil
}

// AbortRound implements core.GatewayShard. Best-effort: an
// unreachable shard will reject resubmissions until its next
// successful BeginRound, which is the same position a freshly
// restarted shard is in.
func (s *ShardClient) AbortRound(round uint64) {
	var resp ack
	_ = s.callRetried("shard.abort", ShardAbortRequest{Round: round}, &resp)
}

// Rebalance implements core.GatewayShard.
func (s *ShardClient) Rebalance(epoch uint64, numChains int) error {
	var resp ack
	return s.callRetried("shard.rebalance", ShardRebalanceRequest{Epoch: epoch, NumChains: numChains}, &resp)
}

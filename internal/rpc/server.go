package rpc

import (
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/client"
	"repro/internal/core"
)

// Server exposes a core.Network to remote users over TLS: parameter
// distribution, message submission, mailbox download, deployment
// status, and round driving.
type Server struct {
	network *core.Network
	ln      net.Listener

	serverTLS *tls.Config
	clientTLS *tls.Config

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup

	// Logf receives connection-level errors; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// NewServer starts a TLS listener on addr (e.g. "127.0.0.1:0")
// serving the given network. Connections are handled until Close.
func NewServer(network *core.Network, addr string) (*Server, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil || host == "" {
		host = "127.0.0.1"
	}
	serverTLS, clientTLS, err := SelfSignedTLS(host)
	if err != nil {
		return nil, err
	}
	ln, err := tls.Listen("tcp", addr, serverTLS)
	if err != nil {
		return nil, fmt.Errorf("rpc: listening on %s: %w", addr, err)
	}
	s := &Server{
		network:   network,
		ln:        ln,
		serverTLS: serverTLS,
		clientTLS: clientTLS,
		conns:     make(map[net.Conn]bool),
		Logf:      log.Printf,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ClientTLS returns a TLS config that trusts this server's ephemeral
// certificate (how the PKI of §3.1 is modelled; see SelfSignedTLS).
func (s *Server) ClientTLS() *tls.Config { return s.clientTLS.Clone() }

// CertificatePEM returns the server certificate for out-of-band
// distribution to client processes.
func (s *Server) CertificatePEM() ([]byte, error) { return CertificatePEM(s.serverTLS) }

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		frame, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.Logf("rpc: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		var req request
		if err := decode(frame, &req); err != nil {
			s.Logf("rpc: bad request from %s: %v", conn.RemoteAddr(), err)
			return
		}
		resp := s.dispatch(req)
		out, err := encode(resp)
		if err != nil {
			s.Logf("rpc: encoding response: %v", err)
			return
		}
		if err := WriteFrame(conn, out); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req request) response {
	body, err := s.handle(req.Method, req.Body)
	if err != nil {
		return response{Err: err.Error()}
	}
	return response{Body: body}
}

func (s *Server) handle(method string, body []byte) ([]byte, error) {
	switch method {
	case "params":
		var pr ParamsRequest
		if err := decode(body, &pr); err != nil {
			return nil, err
		}
		p, err := s.network.ChainParams(pr.Chain, pr.Round)
		if err != nil {
			return nil, err
		}
		return encode(paramsToWire(p))

	case "submit":
		var sr SubmitRequest
		if err := decode(body, &sr); err != nil {
			return nil, err
		}
		out := &client.RoundOutput{Round: sr.Round}
		for _, w := range sr.Current {
			chain, sub, err := submissionFromWire(w)
			if err != nil {
				return nil, err
			}
			out.Current = append(out.Current, client.ChainMessage{Chain: chain, Sub: sub})
		}
		for _, w := range sr.Cover {
			chain, sub, err := submissionFromWire(w)
			if err != nil {
				return nil, err
			}
			out.Cover = append(out.Cover, client.ChainMessage{Chain: chain, Sub: sub})
		}
		if err := s.network.SubmitExternal(string(sr.Mailbox), out); err != nil {
			return nil, err
		}
		return encode(SubmitResponse{Accepted: true})

	case "fetch":
		var fr FetchRequest
		if err := decode(body, &fr); err != nil {
			return nil, err
		}
		msgs := s.network.FetchMailbox(fr.Round, fr.Mailbox)
		return encode(FetchResponse{Messages: msgs})

	case "status":
		return encode(StatusResponse{
			Round:       s.network.Round(),
			NumChains:   s.network.NumChains(),
			ChainLength: s.network.Topology().ChainLength,
			L:           s.network.Plan().L,
		})

	case "runround":
		rep, err := s.network.RunRound()
		if err != nil {
			return nil, err
		}
		return encode(RunRoundResponse{
			Round:          rep.Round,
			Delivered:      rep.Delivered,
			HaltedChains:   rep.HaltedChains,
			FailedChains:   rep.FailedChains,
			BlamedUsers:    rep.BlamedUsers,
			OfflineCovered: rep.OfflineCovered,
		})

	default:
		return nil, fmt.Errorf("rpc: unknown method %q", method)
	}
}

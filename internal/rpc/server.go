package rpc

import (
	"fmt"

	"repro/internal/core"
)

// Server exposes a core.Network to remote users over TLS: parameter
// distribution, message submission, mailbox download, deployment
// status, and round driving. Connection handling (deadlines,
// shutdown) lives in listenerCore.
type Server struct {
	*listenerCore
	network *core.Network
}

// NewServer starts a TLS listener on addr (e.g. "127.0.0.1:0")
// serving the given network. Connections are handled until Close.
func NewServer(network *core.Network, addr string) (*Server, error) {
	s := &Server{network: network}
	lc, err := newListenerCore(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.listenerCore = lc
	return s, nil
}

func (s *Server) handle(method string, body []byte) ([]byte, error) {
	switch method {
	case "params":
		var pr ParamsRequest
		if err := decode(body, &pr); err != nil {
			return nil, err
		}
		p, err := s.network.ChainParams(pr.Chain, pr.Round)
		if err != nil {
			return nil, err
		}
		return encode(paramsToWire(p))

	case "submit":
		var sr SubmitRequest
		if err := decode(body, &sr); err != nil {
			return nil, err
		}
		out, err := submitFromWire(sr)
		if err != nil {
			return nil, err
		}
		if err := s.network.SubmitExternal(string(sr.Mailbox), out); err != nil {
			return nil, err
		}
		return encode(SubmitResponse{Accepted: true})

	case "register":
		var rr RegisterRequest
		if err := decode(body, &rr); err != nil {
			return nil, err
		}
		registered := 0
		for _, mb := range rr.Mailboxes {
			if err := s.network.Register(mb); err != nil {
				return nil, fmt.Errorf("rpc: after %d registrations: %w", registered, err)
			}
			registered++
		}
		return encode(RegisterResponse{Registered: registered})

	case "fetch":
		var fr FetchRequest
		if err := decode(body, &fr); err != nil {
			return nil, err
		}
		msgs := s.network.FetchMailbox(fr.Round, fr.Mailbox)
		return encode(FetchResponse{Messages: msgs})

	case "ack":
		var ar AckRequest
		if err := decode(body, &ar); err != nil {
			return nil, err
		}
		return encode(AckResponse{Pruned: s.network.AckMailbox(ar.Round, ar.Mailbox)})

	case "status":
		return encode(StatusResponse{
			Round:       s.network.Round(),
			NumChains:   s.network.NumChains(),
			ChainLength: s.network.Topology().ChainLength,
			L:           s.network.Plan().L,
			Epoch:       s.network.Epoch(),
			Role:        "coordinator",
			Users:       s.network.NumUsers(),
		})

	case "runround":
		rep, err := s.network.RunRound()
		if err != nil {
			return nil, err
		}
		return encode(RunRoundResponse{
			Round:          rep.Round,
			Delivered:      rep.Delivered,
			HaltedChains:   rep.HaltedChains,
			FailedChains:   rep.FailedChains,
			BlamedUsers:    rep.BlamedUsers,
			OfflineCovered: rep.OfflineCovered,
		})

	default:
		return nil, fmt.Errorf("rpc: unknown method %q", method)
	}
}

package rpc

import (
	"crypto/tls"
	"fmt"
	"sync"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/mix"
)

// ShardServer exposes one gateway shard (a core.Frontend) over TLS.
// It serves two audiences on the same listener: users (registration,
// parameter distribution, submission, mailbox download, status) and
// the round coordinator (the shard.* methods carrying the
// core.GatewayShard protocol; see shardwire.go). A production
// deployment would put the coordinator methods behind mutual TLS;
// here both share the endpoint's pinned certificate, matching how the
// mix hop endpoints trust their orchestrator.
type ShardServer struct {
	*listenerCore
	fe *core.Frontend

	// mu guards the per-round scratch state below. The coordinator
	// drives one round at a time, but user traffic is concurrent with
	// it and a retried round replaces the previous attempt's state.
	mu sync.Mutex
	// chainLength is pushed at init; the shard itself never needs k,
	// but its status endpoint reports it to clients.
	chainLength int
	// build caches the last BeginRound's result for the chunked
	// shard.batch pulls.
	buildRound uint64
	build      *core.ShardBuild
	// buffered accumulates shard.deliver chunks until shard.finish.
	deliverRound uint64
	buffered     [][]byte
}

// NewShardServer starts a TLS listener on addr serving the given
// gateway shard, with a fresh ephemeral certificate.
func NewShardServer(fe *core.Frontend, addr string) (*ShardServer, error) {
	s := &ShardServer{fe: fe}
	lc, err := newListenerCore(addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.listenerCore = lc
	return s, nil
}

// NewShardServerTLS is NewShardServer with a caller-supplied TLS
// identity, so a durable shard restarted over its data directory
// presents the certificate its coordinator and clients already pinned
// (see LoadOrCreateTLSIdentity).
func NewShardServerTLS(fe *core.Frontend, addr string, serverTLS, clientTLS *tls.Config) (*ShardServer, error) {
	s := &ShardServer{fe: fe}
	lc, err := newListenerCoreTLS(addr, serverTLS, clientTLS, s.handle)
	if err != nil {
		return nil, err
	}
	s.listenerCore = lc
	return s, nil
}

// Frontend returns the shard this server fronts (for tests).
func (s *ShardServer) Frontend() *core.Frontend { return s.fe }

func (s *ShardServer) handle(method string, body []byte) ([]byte, error) {
	switch method {
	case "params":
		var pr ParamsRequest
		if err := decode(body, &pr); err != nil {
			return nil, err
		}
		p, err := s.fe.ChainParams(pr.Chain, pr.Round)
		if err != nil {
			return nil, err
		}
		return encode(paramsToWire(p))

	case "submit":
		var sr SubmitRequest
		if err := decode(body, &sr); err != nil {
			return nil, err
		}
		out, err := submitFromWire(sr)
		if err != nil {
			return nil, err
		}
		if err := s.fe.SubmitExternal(string(sr.Mailbox), out); err != nil {
			return nil, err
		}
		return encode(SubmitResponse{Accepted: true})

	case "fetch":
		var fr FetchRequest
		if err := decode(body, &fr); err != nil {
			return nil, err
		}
		msgs := s.fe.FetchMailbox(fr.Round, fr.Mailbox)
		return encode(FetchResponse{Messages: msgs})

	case "ack":
		var ar AckRequest
		if err := decode(body, &ar); err != nil {
			return nil, err
		}
		return encode(AckResponse{Pruned: s.fe.AckMailbox(ar.Round, ar.Mailbox)})

	case "register":
		var rr RegisterRequest
		if err := decode(body, &rr); err != nil {
			return nil, err
		}
		registered := 0
		for _, mb := range rr.Mailboxes {
			if err := s.fe.Register(mb); err != nil {
				return nil, fmt.Errorf("rpc: after %d registrations: %w", registered, err)
			}
			registered++
		}
		return encode(RegisterResponse{Registered: registered})

	case "status":
		rng := s.fe.Range()
		resp := StatusResponse{
			Round:   s.fe.Round(),
			Epoch:   s.fe.Epoch(),
			Role:    "gateway",
			ShardLo: rng.Lo,
			ShardHi: rng.Hi,
			Users:   s.fe.NumUsers(),
		}
		s.mu.Lock()
		resp.ChainLength = s.chainLength
		s.mu.Unlock()
		if plan := s.fe.Plan(); plan != nil {
			resp.NumChains = plan.NumChains
			resp.L = plan.L
		}
		return encode(resp)

	case "shard.init":
		var ir ShardInitRequest
		if err := decode(body, &ir); err != nil {
			return nil, err
		}
		rng := s.fe.Range()
		if ir.Lo != rng.Lo || ir.Hi != rng.Hi {
			return nil, fmt.Errorf("rpc: coordinator expects shard range %d:%d but this gateway owns %s", ir.Lo, ir.Hi, rng)
		}
		if ir.NumChains > 0 {
			if err := s.fe.Rebalance(ir.Epoch, ir.NumChains); err != nil {
				return nil, err
			}
		}
		if ir.Round > 0 {
			s.fe.SetRound(ir.Round)
		}
		cur, next, err := initParams(ir.Cur, ir.Next)
		if err != nil {
			return nil, err
		}
		if len(cur) > 0 {
			s.fe.SetParams(ir.Round, cur, next, ir.Dead)
		}
		s.mu.Lock()
		s.chainLength = ir.ChainLength
		s.mu.Unlock()
		return encode(ShardInitResponse{Lo: rng.Lo, Hi: rng.Hi})

	case "shard.begin":
		var br ShardBeginRequest
		if err := decode(body, &br); err != nil {
			return nil, err
		}
		cur, next, err := initParams(br.Cur, br.Next)
		if err != nil {
			return nil, err
		}
		build, err := s.fe.BeginRound(&core.BeginRound{
			Round:     br.Round,
			Epoch:     br.Epoch,
			NumChains: br.NumChains,
			Cur:       cur,
			Next:      next,
			Dead:      br.Dead,
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.buildRound = br.Round
		s.build = build
		// A retried round must not inherit the failed attempt's
		// delivery buffer.
		s.deliverRound = br.Round
		s.buffered = nil
		s.mu.Unlock()
		resp := ShardBeginResponse{Covered: build.Covered, Skipped: build.Skipped}
		resp.Counts = make([]int, len(build.Batches))
		for c := range build.Batches {
			resp.Counts[c] = len(build.Batches[c].Subs)
		}
		return encode(resp)

	case "shard.batch":
		var br ShardBatchRequest
		if err := decode(body, &br); err != nil {
			return nil, err
		}
		s.mu.Lock()
		build := s.build
		round := s.buildRound
		s.mu.Unlock()
		if build == nil || round != br.Round {
			return nil, fmt.Errorf("rpc: no cached build for round %d", br.Round)
		}
		if br.Chain < 0 || br.Chain >= len(build.Batches) {
			return nil, fmt.Errorf("rpc: no chain %d in build", br.Chain)
		}
		batch := build.Batches[br.Chain]
		if br.Offset < 0 || br.Offset > len(batch.Subs) || br.Max <= 0 {
			return nil, fmt.Errorf("rpc: bad batch window %d+%d of %d", br.Offset, br.Max, len(batch.Subs))
		}
		end := br.Offset + br.Max
		if end > len(batch.Subs) {
			end = len(batch.Subs)
		}
		resp := ShardBatchResponse{Submitters: batch.Submitters[br.Offset:end]}
		resp.Subs = make([]WireSubmission, 0, end-br.Offset)
		for _, sub := range batch.Subs[br.Offset:end] {
			resp.Subs = append(resp.Subs, submissionToWire(br.Chain, sub))
		}
		return encode(resp)

	case "shard.deliver":
		var dr ShardDeliverRequest
		if err := decode(body, &dr); err != nil {
			return nil, err
		}
		s.mu.Lock()
		if s.deliverRound != dr.Round {
			s.deliverRound = dr.Round
			s.buffered = nil
		}
		s.buffered = append(s.buffered, dr.Msgs...)
		buffered := len(s.buffered)
		s.mu.Unlock()
		return encode(ShardDeliverResponse{Buffered: buffered})

	case "shard.finish":
		var fr ShardFinishRequest
		if err := decode(body, &fr); err != nil {
			return nil, err
		}
		cur, next, err := initParams(fr.Cur, fr.Next)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		msgs := s.buffered
		if s.deliverRound != fr.Round {
			msgs = nil
		}
		s.buffered = nil
		s.build = nil
		s.mu.Unlock()
		stats, err := s.fe.FinishRound(&core.FinishRound{
			Round:     fr.Round,
			Delivered: msgs,
			Removed:   fr.Removed,
			Stranded:  fr.Stranded,
			Epoch:     fr.Epoch,
			NumChains: fr.NumChains,
			Cur:       cur,
			Next:      next,
			Dead:      fr.Dead,
		})
		if err != nil {
			return nil, err
		}
		return encode(ShardFinishResponse{Delivered: stats.Delivered, Dropped: stats.Dropped})

	case "shard.abort":
		var ar ShardAbortRequest
		if err := decode(body, &ar); err != nil {
			return nil, err
		}
		s.fe.AbortRound(ar.Round)
		s.mu.Lock()
		s.build = nil
		s.buffered = nil
		s.mu.Unlock()
		return encode(ack{})

	case "shard.rebalance":
		var rr ShardRebalanceRequest
		if err := decode(body, &rr); err != nil {
			return nil, err
		}
		if err := s.fe.Rebalance(rr.Epoch, rr.NumChains); err != nil {
			return nil, err
		}
		return encode(ack{})

	default:
		return nil, fmt.Errorf("rpc: unknown method %q", method)
	}
}

// submitFromWire converts a SubmitRequest into the client round
// output core expects, validating every group element.
func submitFromWire(sr SubmitRequest) (*client.RoundOutput, error) {
	out := &client.RoundOutput{Round: sr.Round}
	for _, w := range sr.Current {
		chain, sub, err := submissionFromWire(w)
		if err != nil {
			return nil, err
		}
		out.Current = append(out.Current, client.ChainMessage{Chain: chain, Sub: sub})
	}
	for _, w := range sr.Cover {
		chain, sub, err := submissionFromWire(w)
		if err != nil {
			return nil, err
		}
		out.Cover = append(out.Cover, client.ChainMessage{Chain: chain, Sub: sub})
	}
	return out, nil
}

// initParams decodes a cur/next parameter snapshot pair.
func initParams(curW, nextW []ParamsResponse) ([]mix.Params, []mix.Params, error) {
	cur, err := paramsSliceFromWire(curW)
	if err != nil {
		return nil, nil, err
	}
	next, err := paramsSliceFromWire(nextW)
	if err != nil {
		return nil, nil, err
	}
	return cur, next, nil
}

package rpc

// Coordinator ↔ gateway-shard protocol (the network form of
// core.GatewayShard; see internal/core/shard.go for the roles). One
// round makes four exchanges: shard.begin pushes the round's
// parameters and returns the shard's batch sizes, shard.batch pulls
// the batched submissions in bounded chunks, shard.deliver pushes the
// routed mailbox messages in bounded chunks, and shard.finish commits
// the round (deliveries, blame verdicts, stranded records, next
// round's parameters). shard.abort reopens the submission window
// after a failed round, shard.rebalance broadcasts a re-formed
// epoch, and shard.init attaches a (re)started shard process to a
// running deployment.
//
// Chunking keeps every frame far below MaxFrameSize: a shard owning
// hundreds of thousands of users would otherwise ship its whole
// build in one frame.

// ShardInitRequest pushes a joining gateway shard everything it needs
// to serve clients before its first round: the epoch (and its chain
// count, from which the shard re-derives the deterministic plan), the
// upcoming round, and the current parameter snapshot.
type ShardInitRequest struct {
	Lo, Hi      int
	Epoch       uint64
	Round       uint64
	NumChains   int
	ChainLength int
	Cur, Next   []ParamsResponse
	Dead        []int
}

// ShardInitResponse echoes the shard's configured range so the
// coordinator can detect a mis-wired deployment.
type ShardInitResponse struct {
	Lo, Hi int
}

// ShardBeginRequest is core.BeginRound in wire form.
type ShardBeginRequest struct {
	Round     uint64
	Epoch     uint64
	NumChains int
	Cur, Next []ParamsResponse
	Dead      []int
}

// ShardBeginResponse summarises the shard's build; the submissions
// themselves are pulled with ShardBatchRequest using Counts to bound
// the chunk walk.
type ShardBeginResponse struct {
	Covered int
	Skipped []string
	// Counts is the per-chain batch size.
	Counts []int
}

// ShardBatchRequest pulls one chunk of a chain's batch from the
// shard's cached build for the round.
type ShardBatchRequest struct {
	Round  uint64
	Chain  int
	Offset int
	Max    int
}

// ShardBatchResponse carries the chunk, index-aligned.
type ShardBatchResponse struct {
	Subs       []WireSubmission
	Submitters []string
}

// ShardDeliverRequest pushes one chunk of the round's routed mailbox
// messages; the shard buffers them until ShardFinishRequest commits.
type ShardDeliverRequest struct {
	Round uint64
	Msgs  [][]byte
}

// ShardDeliverResponse acknowledges the chunk.
type ShardDeliverResponse struct {
	Buffered int
}

// ShardFinishRequest is core.FinishRound in wire form, minus the
// deliveries (already pushed in chunks).
type ShardFinishRequest struct {
	Round     uint64
	Removed   []string
	Stranded  []string
	Epoch     uint64
	NumChains int
	Cur, Next []ParamsResponse
	Dead      []int
}

// ShardFinishResponse reports the number of messages stored and the
// old messages evicted by the shard's mailbox depth cap. Dropped is
// zero from pre-cap shard builds (gob leaves absent fields zero).
type ShardFinishResponse struct {
	Delivered int
	Dropped   int
}

// ShardAbortRequest reopens the submission window for a failed round.
type ShardAbortRequest struct {
	Round uint64
}

// ShardRebalanceRequest broadcasts a re-formed epoch's chain count.
type ShardRebalanceRequest struct {
	Epoch     uint64
	NumChains int
}

// ack is the empty success body for methods with nothing to return.
type ack struct{}

package rpc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/onion"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 5000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame round trip: got %d bytes, want %d", len(got), len(p))
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized frame written")
	}
	// A forged oversized header must be rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized header accepted")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestSelfSignedTLSPinning(t *testing.T) {
	s1, c1, err := SelfSignedTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := SelfSignedTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if s1 == nil || c1 == nil || c2 == nil {
		t.Fatal("nil configs")
	}
	if len(s1.Certificates) != 1 {
		t.Fatal("server config missing certificate")
	}
	// Configs from different generations must not share roots.
	if c1.RootCAs == c2.RootCAs {
		t.Fatal("root pools shared across generations")
	}
}

// newDeployment starts a gateway over a small in-process network.
func newDeployment(t testing.TB) (*core.Network, *Server) {
	t.Helper()
	n, err := core.NewNetwork(core.Config{
		NumServers:          6,
		ChainLengthOverride: 3,
		Seed:                []byte("rpc-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(n, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...any) {}
	t.Cleanup(func() { srv.Close() })
	return n, srv
}

func TestStatusOverTLS(t *testing.T) {
	n, srv := newDeployment(t)
	c, err := Dial(srv.Addr(), srv.ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != n.Round() || st.NumChains != n.NumChains() || st.L != n.Plan().L {
		t.Fatalf("status %+v disagrees with network", st)
	}
}

// TestRemoteConversation runs a full two-user conversation where both
// users interact with the deployment exclusively over TLS: params,
// submit, trigger, fetch, decrypt.
func TestRemoteConversation(t *testing.T) {
	n, srv := newDeployment(t)

	dial := func() *Client {
		c, err := Dial(srv.Addr(), srv.ClientTLS())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	aliceConn, bobConn, driver := dial(), dial(), dial()

	aliceU := newRemoteUser(t, n)
	bobU := newRemoteUser(t, n)
	aliceU.StartConversation(bobU.PublicKey())
	bobU.StartConversation(aliceU.PublicKey())
	if err := aliceU.QueueMessage([]byte("over the wire")); err != nil {
		t.Fatal(err)
	}

	st, err := driver.Status()
	if err != nil {
		t.Fatal(err)
	}
	outA, err := aliceU.BuildRound(st.Round, aliceConn)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := bobU.BuildRound(st.Round, bobConn)
	if err != nil {
		t.Fatal(err)
	}
	if err := aliceConn.Submit(aliceU.Mailbox(), outA); err != nil {
		t.Fatal(err)
	}
	if err := bobConn.Submit(bobU.Mailbox(), outB); err != nil {
		t.Fatal(err)
	}

	rep, err := driver.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.HaltedChains) != 0 || len(rep.BlamedUsers) != 0 {
		t.Fatalf("round misbehaved: %+v", rep)
	}
	l := n.Plan().L
	if rep.Delivered != 2*l {
		t.Fatalf("delivered %d, want %d", rep.Delivered, 2*l)
	}

	msgs, err := bobConn.Fetch(rep.Round, bobU.Mailbox())
	if err != nil {
		t.Fatal(err)
	}
	recv, bad := bobU.OpenMailbox(rep.Round, msgs)
	if bad != 0 {
		t.Fatalf("%d undecryptable", bad)
	}
	var got []byte
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindConversation {
			got = r.Body
		}
	}
	if string(got) != "over the wire" {
		t.Fatalf("bob received %q", got)
	}
}

// newRemoteUser builds a user against the network's plan with the
// default AEAD (what a real remote client would construct locally).
func newRemoteUser(t testing.TB, n *core.Network) *client.User {
	t.Helper()
	return client.NewUser(nil, n.Plan())
}

// TestRemoteUserChurn: a remote user submits covers, misses the next
// round, and her covers run in her place.
func TestRemoteUserChurn(t *testing.T) {
	n, srv := newDeployment(t)
	conn, err := Dial(srv.Addr(), srv.ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	u := newRemoteUser(t, n)
	out, err := u.BuildRound(n.Round(), conn)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Submit(u.Mailbox(), out); err != nil {
		t.Fatal(err)
	}
	rep1, err := conn.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Delivered != n.Plan().L {
		t.Fatalf("round 1 delivered %d", rep1.Delivered)
	}
	// She misses round 2: her covers must run.
	rep2, err := conn.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OfflineCovered != 1 {
		t.Fatalf("OfflineCovered = %d, want 1", rep2.OfflineCovered)
	}
	if rep2.Delivered != n.Plan().L {
		t.Fatalf("round 2 delivered %d, want ℓ", rep2.Delivered)
	}
	msgs, err := conn.Fetch(rep2.Round, u.Mailbox())
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != n.Plan().L {
		t.Fatalf("mailbox has %d messages", len(msgs))
	}
}

func TestSubmitValidation(t *testing.T) {
	n, srv := newDeployment(t)
	conn, err := Dial(srv.Addr(), srv.ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	u := newRemoteUser(t, n)
	out, err := u.BuildRound(n.Round(), conn)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong round is rejected.
	stale := *out
	stale.Round = out.Round + 5
	if err := conn.Submit(u.Mailbox(), &stale); err == nil {
		t.Fatal("stale-round submission accepted")
	}
	// Duplicate submission is rejected.
	if err := conn.Submit(u.Mailbox(), out); err != nil {
		t.Fatal(err)
	}
	if err := conn.Submit(u.Mailbox(), out); err == nil {
		t.Fatal("duplicate submission accepted")
	}
	// Corrupt wire key is rejected at parse time.
	req := SubmitRequest{Round: out.Round, Mailbox: []byte("eve")}
	bad := submissionToWire(out.Current[0].Chain, out.Current[0].Sub)
	bad.DHKey = bytes.Repeat([]byte{0xFF}, len(bad.DHKey))
	req.Current = []WireSubmission{bad}
	var resp SubmitResponse
	err = conn.call("submit", req, &resp)
	if err == nil || !strings.Contains(err.Error(), "point") {
		t.Fatalf("off-curve key accepted: %v", err)
	}
}

// TestClientRedialsAfterConnFailure: a transport failure poisons the
// client's connection (its framing state is unknown), and the next
// call transparently dials a fresh one — so a gateway shedding an
// idle connection does not permanently wedge a long-lived client.
func TestClientRedialsAfterConnFailure(t *testing.T) {
	_, srv := newDeployment(t)
	conn, err := Dial(srv.Addr(), srv.ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Status(); err != nil {
		t.Fatal(err)
	}
	// Sever the underlying connection behind the client's back, as an
	// idle-timeout shed or network blip would.
	conn.mu.Lock()
	conn.conn.Close()
	conn.mu.Unlock()
	// The in-flight state is unrecoverable, so one call may fail...
	if _, err := conn.Status(); err == nil {
		// (a very fast shed notice can even make this first call
		// succeed on the redialed conn in theory; either way the next
		// one must work)
		return
	}
	// ...but the client must heal, not wedge.
	if _, err := conn.Status(); err != nil {
		t.Fatalf("client did not redial after connection failure: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, srv := newDeployment(t)
	conn, err := Dial(srv.Addr(), srv.ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var out struct{}
	if err := conn.call("nonsense", struct{}{}, &out); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestDialRejectsUntrustedServer(t *testing.T) {
	_, srv := newDeployment(t)
	// A client trusting a different certificate must refuse the
	// handshake — certificate pinning is the PKI stand-in.
	_, wrongTrust, err := SelfSignedTLS("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(srv.Addr(), wrongTrust); err == nil {
		t.Fatal("handshake with untrusted certificate succeeded")
	}
}

// TestManyConcurrentClients: the gateway must serve interleaved
// requests from many connections; a full cohort of remote users
// submits concurrently and one round delivers everything.
func TestManyConcurrentClients(t *testing.T) {
	n, srv := newDeployment(t)
	const cohort = 8
	users := make([]*client.User, cohort)
	errs := make(chan error, cohort)
	round := n.Round()
	for i := 0; i < cohort; i++ {
		users[i] = newRemoteUser(t, n)
		go func(u *client.User) {
			conn, err := Dial(srv.Addr(), srv.ClientTLS())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			out, err := u.BuildRound(round, conn)
			if err != nil {
				errs <- err
				return
			}
			errs <- conn.Submit(u.Mailbox(), out)
		}(users[i])
	}
	for i := 0; i < cohort; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	driver, err := Dial(srv.Addr(), srv.ClientTLS())
	if err != nil {
		t.Fatal(err)
	}
	defer driver.Close()
	rep, err := driver.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if want := cohort * n.Plan().L; rep.Delivered != want {
		t.Fatalf("delivered %d, want %d", rep.Delivered, want)
	}
	for i, u := range users {
		msgs, err := driver.Fetch(rep.Round, u.Mailbox())
		if err != nil {
			t.Fatal(err)
		}
		recv, bad := u.OpenMailbox(rep.Round, msgs)
		if bad != 0 || len(recv) != n.Plan().L {
			t.Fatalf("user %d: %d messages (%d bad)", i, len(recv), bad)
		}
	}
}

package rpc

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net"
	"time"
)

// CertificatePEM extracts the server certificate in PEM form so a
// separate client process can pin it (written to disk by xrd-server,
// read by xrd-client).
func CertificatePEM(serverTLS *tls.Config) ([]byte, error) {
	if len(serverTLS.Certificates) == 0 || len(serverTLS.Certificates[0].Certificate) == 0 {
		return nil, errors.New("rpc: TLS config has no certificate")
	}
	return pem.EncodeToMemory(&pem.Block{
		Type:  "CERTIFICATE",
		Bytes: serverTLS.Certificates[0].Certificate[0],
	}), nil
}

// ClientTLSFromPEM builds a client config pinning the given PEM
// certificate.
func ClientTLSFromPEM(pemBytes []byte) (*tls.Config, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pemBytes) {
		return nil, errors.New("rpc: no certificates in PEM input")
	}
	return &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS13}, nil
}

// SelfSignedTLS generates an ephemeral self-signed certificate for
// the given hosts and returns the server TLS config together with a
// client config that trusts exactly that certificate (certificate
// pinning). The paper assumes a PKI distributes server identities
// (§3.1); pinning the generated certificate models that distribution
// without an external CA.
func SelfSignedTLS(hosts ...string) (server *tls.Config, client *tls.Config, err error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: generating TLS key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: generating serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "xrd-node"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &priv.PublicKey, priv)
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: creating certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: parsing certificate: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)

	server = &tls.Config{
		Certificates: []tls.Certificate{{
			Certificate: [][]byte{der},
			PrivateKey:  priv,
			Leaf:        cert,
		}},
		MinVersion: tls.VersionTLS13,
	}
	client = &tls.Config{
		RootCAs:    pool,
		MinVersion: tls.VersionTLS13,
	}
	return server, client, nil
}

package rpc

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net"
	"os"
	"time"
)

// CertificatePEM extracts the server certificate in PEM form so a
// separate client process can pin it (written to disk by xrd-server,
// read by xrd-client).
func CertificatePEM(serverTLS *tls.Config) ([]byte, error) {
	if len(serverTLS.Certificates) == 0 || len(serverTLS.Certificates[0].Certificate) == 0 {
		return nil, errors.New("rpc: TLS config has no certificate")
	}
	return pem.EncodeToMemory(&pem.Block{
		Type:  "CERTIFICATE",
		Bytes: serverTLS.Certificates[0].Certificate[0],
	}), nil
}

// ClientTLSFromPEM builds a client config pinning the given PEM
// certificate.
func ClientTLSFromPEM(pemBytes []byte) (*tls.Config, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pemBytes) {
		return nil, errors.New("rpc: no certificates in PEM input")
	}
	return &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS13}, nil
}

// TLSIdentityPEM serialises an endpoint's whole TLS identity —
// certificate and private key — so a durable process can present the
// same pinned certificate across restarts. Peers pin certificates at
// deployment time; a gateway that rose from its data directory with a
// fresh key would be indistinguishable from an impostor and refused.
func TLSIdentityPEM(serverTLS *tls.Config) ([]byte, error) {
	certPEM, err := CertificatePEM(serverTLS)
	if err != nil {
		return nil, err
	}
	key, ok := serverTLS.Certificates[0].PrivateKey.(*ecdsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("rpc: unsupported TLS key type %T", serverTLS.Certificates[0].PrivateKey)
	}
	der, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("rpc: marshalling TLS key: %w", err)
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: der})
	return append(certPEM, keyPEM...), nil
}

// TLSIdentityFromPEM rebuilds the server and pinned-client configs
// from a TLSIdentityPEM blob.
func TLSIdentityFromPEM(pemBytes []byte) (server *tls.Config, client *tls.Config, err error) {
	cert, err := tls.X509KeyPair(pemBytes, pemBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: parsing TLS identity: %w", err)
	}
	leaf, err := x509.ParseCertificate(cert.Certificate[0])
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: parsing TLS identity certificate: %w", err)
	}
	cert.Leaf = leaf
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	server = &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS13}
	client = &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS13}
	return server, client, nil
}

// LoadOrCreateTLSIdentity returns the identity stored at path,
// generating (and persisting) a fresh self-signed one on first use.
// This is how a durable gateway keeps the certificate its peers
// pinned: the key lives next to the WAL it authenticates.
func LoadOrCreateTLSIdentity(path string, hosts ...string) (server *tls.Config, client *tls.Config, err error) {
	if pemBytes, rerr := os.ReadFile(path); rerr == nil {
		return TLSIdentityFromPEM(pemBytes)
	} else if !errors.Is(rerr, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("rpc: reading TLS identity: %w", rerr)
	}
	server, client, err = SelfSignedTLS(hosts...)
	if err != nil {
		return nil, nil, err
	}
	pemBytes, err := TLSIdentityPEM(server)
	if err != nil {
		return nil, nil, err
	}
	if err := os.WriteFile(path, pemBytes, 0o600); err != nil {
		return nil, nil, fmt.Errorf("rpc: writing TLS identity: %w", err)
	}
	return server, client, nil
}

// SelfSignedTLS generates an ephemeral self-signed certificate for
// the given hosts and returns the server TLS config together with a
// client config that trusts exactly that certificate (certificate
// pinning). The paper assumes a PKI distributes server identities
// (§3.1); pinning the generated certificate models that distribution
// without an external CA.
func SelfSignedTLS(hosts ...string) (server *tls.Config, client *tls.Config, err error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: generating TLS key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: generating serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "xrd-node"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &priv.PublicKey, priv)
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: creating certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: parsing certificate: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)

	server = &tls.Config{
		Certificates: []tls.Certificate{{
			Certificate: [][]byte{der},
			PrivateKey:  priv,
			Leaf:        cert,
		}},
		MinVersion: tls.VersionTLS13,
	}
	client = &tls.Config{
		RootCAs:    pool,
		MinVersion: tls.VersionTLS13,
	}
	return server, client, nil
}

package rpc

import (
	"fmt"

	"repro/internal/obs"
)

// RPC-layer observability. Counters and histograms live in the
// process-wide obs.Default registry; client-side metrics surface on
// whichever process holds the client (the coordinator for hop and
// shard clients, user tooling for MultiClient), server-side ones on
// the process behind the listener. Everything on a request path is a
// pre-created metric recorded with atomic ops only.
var (
	// User-gateway client (Client): connection churn.
	obsClientDials           = obs.GetOrCreateCounter("xrd_rpc_client_dials_total")
	obsClientIdleRedials     = obs.GetOrCreateCounter("xrd_rpc_client_idle_redials_total")
	obsClientTransportErrors = obs.GetOrCreateCounter("xrd_rpc_client_transport_errors_total")

	// Hop connection pool: dials and idle-connection reaps (stale
	// pooled connections discarded on checkout).
	obsHopDials     = obs.GetOrCreateCounter("xrd_rpc_hop_dials_total")
	obsHopIdleReaps = obs.GetOrCreateCounter("xrd_rpc_hop_idle_conns_reaped_total")

	// MultiClient failover machinery: retriable errors that moved the
	// client to another gateway, full retry cycles, and the backoff
	// pauses between them.
	obsFailovers      = obs.GetOrCreateCounter("xrd_rpc_failovers_total")
	obsRetryCycles    = obs.GetOrCreateCounter("xrd_rpc_retry_cycles_total")
	obsBackoffSeconds = obs.GetOrCreateHistogram("xrd_rpc_backoff_seconds")

	// Coordinator→shard retries (ShardClient.callRetried redials).
	obsShardRetries = obs.GetOrCreateCounter("xrd_rpc_shard_retries_total")

	// Listener side, shared by Server, ShardServer and HopServer:
	// per-frame counts, payload bytes and handler latency.
	obsServerRequests      = obs.GetOrCreateCounter("xrd_rpc_server_requests_total")
	obsServerErrors        = obs.GetOrCreateCounter("xrd_rpc_server_errors_total")
	obsServerHandleSeconds = obs.GetOrCreateHistogram("xrd_rpc_server_handle_seconds")
	obsServerBytesIn       = obs.GetOrCreateCounter(`xrd_rpc_server_bytes_total{dir="in"}`)
	obsServerBytesOut      = obs.GetOrCreateCounter(`xrd_rpc_server_bytes_total{dir="out"}`)
)

// hopMethods is the mix-hop protocol's method set (hopserver.go's
// dispatch table). hopMetrics pre-creates one latency histogram per
// method so the call path never touches the registry.
var hopMethods = []string{
	"hop.init", "hop.begin", "hop.reveal", "hop.batch", "hop.mix",
	"hop.pull", "hop.certify", "hop.blame", "hop.accuse",
}

// hopMetrics is one HopClient's per-position metric set, rebuilt at
// InitEpoch when the binding (chain, position) changes. The maps are
// read-only after construction, so the call path is a map lookup
// plus atomic adds.
type hopMetrics struct {
	latency  map[string]*obs.Histogram
	bytesOut *obs.Counter
	bytesIn  *obs.Counter
	errors   *obs.Counter
}

func newHopMetrics(chain, index int) *hopMetrics {
	labels := fmt.Sprintf(`chain="%d",pos="%d"`, chain, index)
	m := &hopMetrics{
		latency:  make(map[string]*obs.Histogram, len(hopMethods)),
		bytesOut: obs.GetOrCreateCounter(fmt.Sprintf(`xrd_hop_bytes_total{%s,dir="out"}`, labels)),
		bytesIn:  obs.GetOrCreateCounter(fmt.Sprintf(`xrd_hop_bytes_total{%s,dir="in"}`, labels)),
		errors:   obs.GetOrCreateCounter(fmt.Sprintf("xrd_hop_errors_total{%s}", labels)),
	}
	for _, method := range hopMethods {
		m.latency[method] = obs.GetOrCreateHistogram(
			fmt.Sprintf(`xrd_hop_call_seconds{%s,method="%s"}`, labels, method))
	}
	return m
}

package rpc

import (
	"bytes"
	"fmt"
	"sync"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/onion"
)

// HopServer hosts one mix server position for a remote chain
// orchestrator: the serving half of the hop transport, what an
// `xrd-server -role mix` process runs. It starts keyless; the
// gateway binds it to a chain position with hop.init (supplying the
// base point its keys chain off, §6.1) and then drives rounds
// through the hop.* methods. Incoming batches are staged chunk by
// chunk so no single frame — and no single allocation on the read
// path — grows with the round size.
//
// The hop trusts its orchestrator for liveness only: every incoming
// point and proof is re-parsed and validated, chunk sizes and
// sequence numbers are enforced, and a malformed request gets an
// error response, never a panic. Secrets never leave except where
// the protocol says so (inner key reveal after a successful round,
// blame reveals with their DLEQ proofs).
type HopServer struct {
	*listenerCore
	scheme aead.Scheme

	mu  sync.Mutex
	srv *mix.Server
	// bound remembers the init binding for idempotent re-inits (a
	// gateway that restarts mid-setup re-sends the same request).
	bound *HopInitRequest
	// stage is the inbound batch being assembled for a round.
	stage *hopStage
	// mixed is the last mixing step's output awaiting pulls.
	mixed *hopMixed
	// lastRound is the highest round a hop.begin has been seen for,
	// reported on the admin health endpoint as a liveness watermark.
	lastRound uint64
}

type hopStage struct {
	round   uint64
	nextSeq int
	envs    []onion.Envelope
}

type hopMixed struct {
	round uint64
	out   []onion.Envelope
}

// NewHopServer starts a hop endpoint on addr. A nil scheme selects
// ChaCha20-Poly1305; it must match the deployment's.
func NewHopServer(addr string, scheme aead.Scheme) (*HopServer, error) {
	if scheme == nil {
		scheme = aead.ChaCha20Poly1305()
	}
	h := &HopServer{scheme: scheme}
	lc, err := newListenerCore(addr, h.handle)
	if err != nil {
		return nil, err
	}
	h.listenerCore = lc
	return h, nil
}

// HealthInfo reports the hop's binding state for the admin health
// endpoint: whether a coordinator has bound it yet, the epoch and
// chain coordinate it serves, and the last round it began.
func (h *HopServer) HealthInfo() (bound bool, epoch uint64, chain, index int, round uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.bound == nil {
		return false, 0, 0, 0, h.lastRound
	}
	return true, h.bound.Epoch, h.bound.Chain, h.bound.Index, h.lastRound
}

// server returns the bound mix server or an error if hop.init has
// not happened yet.
func (h *HopServer) server() (*mix.Server, error) {
	if h.srv == nil {
		return nil, fmt.Errorf("rpc: hop not initialised; gateway must send hop.init first")
	}
	return h.srv, nil
}

func (h *HopServer) handle(method string, body []byte) ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch method {
	case "hop.init":
		var req HopInitRequest
		if err := decode(body, &req); err != nil {
			return nil, err
		}
		if h.bound != nil && req.Epoch == h.bound.Epoch {
			if h.bound.Chain != req.Chain || h.bound.Index != req.Index || !bytes.Equal(h.bound.Base, req.Base) {
				return nil, fmt.Errorf("rpc: hop already bound to chain %d position %d in epoch %d", h.bound.Chain, h.bound.Index, h.bound.Epoch)
			}
			return encode(hopKeysToWire(h.srv.Keys()))
		}
		if h.bound != nil && req.Epoch < h.bound.Epoch {
			return nil, fmt.Errorf("rpc: hop serving epoch %d, refusing rebind to stale epoch %d", h.bound.Epoch, req.Epoch)
		}
		if req.Index < 0 || req.Chain < 0 {
			return nil, fmt.Errorf("rpc: invalid chain position %d:%d", req.Chain, req.Index)
		}
		base, err := group.ParsePoint(req.Base)
		if err != nil {
			return nil, fmt.Errorf("rpc: hop base point: %w", err)
		}
		// Fresh bind, or an epoch advance: the chain was re-formed, so
		// the old position, keys and any half-staged round are gone.
		h.srv = mix.NewChainServer(req.Chain, req.Index, base, h.scheme)
		h.bound = &req
		h.stage, h.mixed = nil, nil
		return encode(hopKeysToWire(h.srv.Keys()))

	case "hop.begin":
		var req HopBeginRequest
		if err := decode(body, &req); err != nil {
			return nil, err
		}
		srv, err := h.server()
		if err != nil {
			return nil, err
		}
		if req.Round > h.lastRound {
			h.lastRound = req.Round
		}
		ipk, proof := srv.BeginRound(req.Round)
		return encode(HopBeginResponse{Ipk: ipk.Bytes(), Proof: proof.Bytes()})

	case "hop.reveal":
		var req HopRevealRequest
		if err := decode(body, &req); err != nil {
			return nil, err
		}
		srv, err := h.server()
		if err != nil {
			return nil, err
		}
		isk, err := srv.RevealInnerKey(req.Round)
		if err != nil {
			return nil, err
		}
		return encode(HopRevealResponse{Isk: isk.Bytes()})

	case "hop.batch":
		var req HopBatchRequest
		if err := decode(body, &req); err != nil {
			return nil, err
		}
		if _, err := h.server(); err != nil {
			return nil, err
		}
		if len(req.Envelopes) == 0 || len(req.Envelopes) > MaxHopChunkEnvelopes {
			return nil, fmt.Errorf("rpc: batch chunk of %d envelopes outside (0, %d]", len(req.Envelopes), MaxHopChunkEnvelopes)
		}
		envs, err := envelopesFromWire(req.Envelopes)
		if err != nil {
			return nil, err
		}
		if req.Seq == 0 {
			// A fresh batch opens a new staging buffer, superseding
			// anything half-staged (the orchestrator restarts from
			// chunk 0 after blame removals or its own crash).
			h.stage = &hopStage{round: req.Round}
		}
		if h.stage == nil || h.stage.round != req.Round || req.Seq != h.stage.nextSeq {
			return nil, fmt.Errorf("rpc: unexpected batch chunk round=%d seq=%d", req.Round, req.Seq)
		}
		h.stage.envs = append(h.stage.envs, envs...)
		h.stage.nextSeq++
		return encode(HopBatchResponse{Received: len(h.stage.envs)})

	case "hop.mix":
		var req HopMixRequest
		if err := decode(body, &req); err != nil {
			return nil, err
		}
		srv, err := h.server()
		if err != nil {
			return nil, err
		}
		if len(req.Nonce) != aead.NonceSize {
			return nil, fmt.Errorf("rpc: nonce has %d bytes, want %d", len(req.Nonce), aead.NonceSize)
		}
		if h.stage == nil || h.stage.round != req.Round {
			return nil, fmt.Errorf("rpc: no staged batch for round %d", req.Round)
		}
		if len(h.stage.envs) != req.Count {
			return nil, fmt.Errorf("rpc: staged %d envelopes, orchestrator announced %d", len(h.stage.envs), req.Count)
		}
		var nonce [aead.NonceSize]byte
		copy(nonce[:], req.Nonce)
		envs := h.stage.envs
		h.stage = nil // consumed either way; retries restage from seq 0
		mr, err := srv.Mix(req.Round, nonce, envs)
		if err != nil {
			return nil, err
		}
		if len(mr.Failed) > 0 {
			h.mixed = nil
			return encode(HopMixResponse{Failed: mr.Failed})
		}
		h.mixed = &hopMixed{round: req.Round, out: mr.Out}
		return encode(HopMixResponse{
			Proof:    mr.Proof.Bytes(),
			Out2In:   mr.Out2In,
			OutCount: len(mr.Out),
		})

	case "hop.pull":
		var req HopPullRequest
		if err := decode(body, &req); err != nil {
			return nil, err
		}
		if h.mixed == nil || h.mixed.round != req.Round {
			return nil, fmt.Errorf("rpc: no mixed output for round %d", req.Round)
		}
		// Bound Seq itself before multiplying: a huge value would
		// overflow the offset computation into a negative slice index.
		if req.Seq < 0 || req.Seq > len(h.mixed.out)/MaxHopChunkEnvelopes {
			return nil, fmt.Errorf("rpc: output chunk %d out of range", req.Seq)
		}
		lo := req.Seq * MaxHopChunkEnvelopes
		if lo >= len(h.mixed.out) {
			return nil, fmt.Errorf("rpc: output chunk %d out of range", req.Seq)
		}
		hi := lo + MaxHopChunkEnvelopes
		if hi > len(h.mixed.out) {
			hi = len(h.mixed.out)
		}
		return encode(HopPullResponse{
			Envelopes: envelopesToWire(h.mixed.out[lo:hi]),
			More:      hi < len(h.mixed.out),
		})

	case "hop.certify":
		var req HopCertifyRequest
		if err := decode(body, &req); err != nil {
			return nil, err
		}
		srv, err := h.server()
		if err != nil {
			return nil, err
		}
		keep, err := unpackBools(req.Keep, req.N)
		if err != nil {
			return nil, err
		}
		proof, err := srv.ReProveSubset(req.Round, req.Epoch, keep)
		if err != nil {
			return nil, err
		}
		return encode(HopCertifyResponse{Proof: proof.Bytes()})

	case "hop.blame":
		var req HopBlameRequest
		if err := decode(body, &req); err != nil {
			return nil, err
		}
		srv, err := h.server()
		if err != nil {
			return nil, err
		}
		rev, err := srv.BlameRevealAt(req.Round, req.Msg, req.Pos)
		if err != nil {
			return nil, err
		}
		return encode(HopBlameResponse{
			Xin:        rev.Xin.Bytes(),
			BlindProof: rev.BlindProof.Bytes(),
			K:          rev.K.Bytes(),
			KeyProof:   rev.KeyProof.Bytes(),
		})

	case "hop.accuse":
		var req HopAccuseRequest
		if err := decode(body, &req); err != nil {
			return nil, err
		}
		srv, err := h.server()
		if err != nil {
			return nil, err
		}
		key, err := group.ParsePoint(req.Key)
		if err != nil {
			return nil, fmt.Errorf("rpc: accused key: %w", err)
		}
		ar := srv.Accuse(req.Round, req.Msg, key)
		return encode(HopAccuseResponse{K: ar.K.Bytes(), Proof: ar.Proof.Bytes()})

	default:
		return nil, fmt.Errorf("rpc: unknown hop method %q", method)
	}
}

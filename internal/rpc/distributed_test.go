package rpc

import (
	"testing"

	"repro/internal/aead"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/onion"
)

// startHopFleet launches k hop endpoints on loopback TLS sockets —
// the in-test equivalent of k `xrd-server -role mix` processes.
func startHopFleet(t testing.TB, k int) []*HopServer {
	t.Helper()
	fleet := make([]*HopServer, k)
	for i := range fleet {
		hs, err := NewHopServer("127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		hs.Logf = func(string, ...any) {}
		t.Cleanup(func() { hs.Close() })
		fleet[i] = hs
	}
	return fleet
}

// distributedNetwork assembles a deployment whose single chain of k
// positions is hosted entirely on the fleet, wired through the TLS
// hop transport.
func distributedNetwork(t testing.TB, fleet []*HopServer) *core.Network {
	t.Helper()
	n, err := core.NewNetwork(core.Config{
		NumServers:          len(fleet),
		NumChains:           1,
		ChainLengthOverride: len(fleet),
		Seed:                []byte("distributed-test"),
		RemoteHops: func(chain, pos int, base group.Point) (mix.Hop, error) {
			hc := DialHop(fleet[pos].Addr(), fleet[pos].ClientTLS())
			if _, err := hc.Init(chain, pos, base); err != nil {
				return nil, err
			}
			return hc, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// localTwin is the same deployment shape with every position
// in-process: the reference the distributed transport must match.
func localTwin(t testing.TB, k int) *core.Network {
	t.Helper()
	n, err := core.NewNetwork(core.Config{
		NumServers:          k,
		NumChains:           1,
		ChainLengthOverride: k,
		Seed:                []byte("distributed-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// converse registers two users in conversation, with a message from
// alice queued each round by the caller.
func converse(t testing.TB, n *core.Network) (alice, bob *coreUser) {
	t.Helper()
	a, b := n.NewUser(), n.NewUser()
	if err := a.StartConversation(b.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := b.StartConversation(a.PublicKey()); err != nil {
		t.Fatal(err)
	}
	return &coreUser{n: n, u: a}, &coreUser{n: n, u: b}
}

// TestDistributedChainParity pins the acceptance criterion: a chain
// spanning three separate hop endpoints over TLS completes rounds
// with delivery output identical to the in-process transport.
func TestDistributedChainParity(t *testing.T) {
	fleet := startHopFleet(t, 3)
	dist := distributedNetwork(t, fleet)
	local := localTwin(t, 3)

	da, db := converse(t, dist)
	la, lb := converse(t, local)

	for round := 1; round <= 2; round++ {
		text := []byte{'r', byte('0' + round)}
		for _, a := range []*coreUser{da, la} {
			if err := a.u.QueueMessage(text); err != nil {
				t.Fatal(err)
			}
		}
		dRep, err := dist.RunRound()
		if err != nil {
			t.Fatalf("distributed round %d: %v", round, err)
		}
		lRep, err := local.RunRound()
		if err != nil {
			t.Fatalf("local round %d: %v", round, err)
		}
		if len(dRep.HaltedChains) != 0 || len(dRep.BlamedUsers) != 0 {
			t.Fatalf("distributed round %d misbehaved: %+v", round, dRep)
		}
		if dRep.Delivered != lRep.Delivered {
			t.Fatalf("round %d delivered %d over TLS, %d in-process", round, dRep.Delivered, lRep.Delivered)
		}
		if got := db.read(t, dRep.Round); string(got) != string(text) {
			t.Fatalf("round %d: bob read %q over the distributed chain, want %q", round, got, text)
		}
		if got := lb.read(t, lRep.Round); string(got) != string(text) {
			t.Fatalf("round %d: bob read %q in-process, want %q", round, got, text)
		}
	}
}

// TestDistributedBlameOverTransport runs the blame protocol across
// the hop transport: a malicious submission that fails decryption at
// position 1 forces blame reveals from position 0, re-certification
// of the surviving subset, and a restaged retry — all over TLS —
// while honest traffic still delivers.
func TestDistributedBlameOverTransport(t *testing.T) {
	fleet := startHopFleet(t, 3)
	dist := distributedNetwork(t, fleet)
	alice, bob := converse(t, dist)
	if err := alice.u.QueueMessage([]byte("survives blame")); err != nil {
		t.Fatal(err)
	}

	params, err := dist.ChainParams(0, dist.Round())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := mix.MaliciousSubmission(aead.ChaCha20Poly1305(), params, dist.Round(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dist.InjectSubmission(0, bad)

	rep, err := dist.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.HaltedChains) != 0 {
		t.Fatalf("honest chain halted: %+v", rep)
	}
	if rep.BlameRounds == 0 {
		t.Fatal("blame protocol did not run")
	}
	blamed := false
	for _, who := range rep.BlamedUsers {
		if who == "injected:0" {
			blamed = true
		}
	}
	if !blamed {
		t.Fatalf("malicious submitter not convicted: %+v", rep)
	}
	if got := bob.read(t, rep.Round); string(got) != "survives blame" {
		t.Fatalf("honest message lost to blame round: %q", got)
	}
}

// TestDistributedHopDeath kills one hop endpoint mid-deployment. The
// round must absorb the loss — halt the chain, blame the position,
// return a report — instead of wedging or crashing; announcing the
// next round's keys fails, which the report-plus-error return
// surfaces.
func TestDistributedHopDeath(t *testing.T) {
	fleet := startHopFleet(t, 3)
	dist := distributedNetwork(t, fleet)
	alice, _ := converse(t, dist)
	if err := alice.u.QueueMessage([]byte("doomed")); err != nil {
		t.Fatal(err)
	}

	fleet[1].Close()

	rep, err := dist.RunRound()
	if rep == nil {
		t.Fatalf("no report after hop death (err=%v)", err)
	}
	if len(rep.HaltedChains) != 1 || rep.HaltedChains[0] != 0 {
		t.Fatalf("chain not halted after hop death: %+v", rep)
	}
	if rep.Delivered != 0 {
		t.Fatalf("halted chain delivered %d messages", rep.Delivered)
	}
	if err == nil {
		t.Fatal("announcing through a dead hop succeeded")
	}
}

// TestHopBatchChunking streams a batch larger than one chunk through
// a live hop endpoint and back. The garbage ciphertexts make every
// decryption fail, so the response also exercises a full-size Failed
// list; a second Mix call proves staging restarts cleanly at seq 0.
func TestHopBatchChunking(t *testing.T) {
	fleet := startHopFleet(t, 1)
	hc := DialHop(fleet[0].Addr(), fleet[0].ClientTLS())
	defer hc.Close()
	if _, err := hc.Init(0, 0, group.Generator()); err != nil {
		t.Fatal(err)
	}

	n := MaxHopChunkEnvelopes + 17
	envs := make([]onion.Envelope, n)
	for i := range envs {
		envs[i] = onion.Envelope{DHKey: group.Base(group.MustRandomScalar()), Ct: []byte("not an onion")}
	}
	for attempt := 0; attempt < 2; attempt++ {
		mr, err := hc.Mix(1, [12]byte{}, envs)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if len(mr.Failed) != n {
			t.Fatalf("attempt %d: %d of %d garbage envelopes failed", attempt, len(mr.Failed), n)
		}
	}
}

// coreUser wraps a registered user with mailbox reading.
type coreUser struct {
	n *core.Network
	u *client.User
}

func (c *coreUser) read(t testing.TB, round uint64) []byte {
	t.Helper()
	msgs := c.n.FetchMailbox(round, c.u.Mailbox())
	recv, bad := c.u.OpenMailbox(round, msgs)
	if bad != 0 {
		t.Fatalf("%d undecryptable messages", bad)
	}
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindConversation {
			return r.Body
		}
	}
	return nil
}

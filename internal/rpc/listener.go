package rpc

import (
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"
)

// Connection deadline defaults. Without deadlines an idle or stalled
// peer pins a handler goroutine (and its connection) forever; every
// conn this package owns gets a read deadline covering the gap
// between frames and a write deadline per response. Both are
// configurable on the owning Server/HopServer/Client.
const (
	// DefaultIdleTimeout is how long a server connection may sit
	// between request frames before it is dropped.
	DefaultIdleTimeout = 3 * time.Minute
	// DefaultWriteTimeout bounds writing one response frame.
	DefaultWriteTimeout = time.Minute
)

// listenerCore is the shared TLS endpoint machinery: listener,
// connection tracking, the per-connection frame loop with idle/write
// deadlines, and shutdown. The user gateway (Server) and the mix hop
// endpoint (HopServer) are both a listenerCore plus a dispatch table.
type listenerCore struct {
	ln net.Listener

	serverTLS *tls.Config
	clientTLS *tls.Config

	// IdleTimeout and WriteTimeout guard the frame loop; zero
	// disables the respective deadline. Set before serving traffic.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration

	// Logf receives connection-level errors; defaults to log.Printf.
	Logf func(format string, args ...any)

	// handle dispatches one decoded request.
	handle func(method string, body []byte) ([]byte, error)

	mu       sync.Mutex
	closed   bool
	wrapConn func(net.Conn) net.Conn
	conns    map[net.Conn]bool
	wg       sync.WaitGroup
}

// SetConnWrapper installs a wrapper applied to every subsequently
// accepted connection — the fault-injection hook (a
// faults.Injector.Wrapper value). nil removes the wrapper.
func (s *listenerCore) SetConnWrapper(w func(net.Conn) net.Conn) {
	s.mu.Lock()
	s.wrapConn = w
	s.mu.Unlock()
}

// newListenerCore starts a TLS listener on addr with a fresh
// self-signed pinned certificate and begins accepting connections.
func newListenerCore(addr string, handle func(method string, body []byte) ([]byte, error)) (*listenerCore, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil || host == "" {
		host = "127.0.0.1"
	}
	serverTLS, clientTLS, err := SelfSignedTLS(host)
	if err != nil {
		return nil, err
	}
	return newListenerCoreTLS(addr, serverTLS, clientTLS, handle)
}

// newListenerCoreTLS starts a TLS listener with a caller-supplied
// identity — how a durable endpoint presents the same pinned
// certificate across restarts (see LoadOrCreateTLSIdentity).
func newListenerCoreTLS(addr string, serverTLS, clientTLS *tls.Config, handle func(method string, body []byte) ([]byte, error)) (*listenerCore, error) {
	ln, err := tls.Listen("tcp", addr, serverTLS)
	if err != nil {
		return nil, fmt.Errorf("rpc: listening on %s: %w", addr, err)
	}
	s := &listenerCore{
		ln:           ln,
		serverTLS:    serverTLS,
		clientTLS:    clientTLS,
		IdleTimeout:  DefaultIdleTimeout,
		WriteTimeout: DefaultWriteTimeout,
		Logf:         log.Printf,
		handle:       handle,
		conns:        make(map[net.Conn]bool),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address.
func (s *listenerCore) Addr() string { return s.ln.Addr().String() }

// ClientTLS returns a TLS config that trusts this endpoint's
// ephemeral certificate (how the PKI of §3.1 is modelled; see
// SelfSignedTLS).
func (s *listenerCore) ClientTLS() *tls.Config { return s.clientTLS.Clone() }

// CertificatePEM returns the endpoint certificate for out-of-band
// distribution to peer processes.
func (s *listenerCore) CertificatePEM() ([]byte, error) { return CertificatePEM(s.serverTLS) }

// Close stops the listener and all connections.
func (s *listenerCore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *listenerCore) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.wrapConn != nil {
			conn = s.wrapConn(conn)
		}
		s.conns[conn] = true
		// Snapshot the deadlines under mu: writers (tests tightening
		// them) synchronize on the same lock.
		idle, write := s.IdleTimeout, s.WriteTimeout
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn, idle, write)
		}()
	}
}

func (s *listenerCore) serveConn(conn net.Conn, idle, write time.Duration) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		// The read deadline spans the idle gap between frames: a peer
		// that connects and goes silent is shed instead of holding
		// this goroutine for the life of the process.
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		frame, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				s.Logf("rpc: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		obsServerRequests.Inc()
		obsServerBytesIn.Add(uint64(len(frame)))
		var req request
		if err := decode(frame, &req); err != nil {
			obsServerErrors.Inc()
			s.Logf("rpc: bad request from %s: %v", conn.RemoteAddr(), err)
			return
		}
		handleStart := time.Now()
		resp := s.dispatch(req)
		obsServerHandleSeconds.ObserveDuration(time.Since(handleStart))
		out, err := encode(resp)
		if err != nil {
			s.Logf("rpc: encoding response: %v", err)
			return
		}
		obsServerBytesOut.Add(uint64(len(out)))
		if write > 0 {
			conn.SetWriteDeadline(time.Now().Add(write))
		}
		if err := WriteFrame(conn, out); err != nil {
			return
		}
	}
}

func (s *listenerCore) dispatch(req request) response {
	body, err := s.handle(req.Method, req.Body)
	if err != nil {
		obsServerErrors.Inc()
		return response{Err: err.Error()}
	}
	return response{Body: body}
}

// Package rpc provides the network transport of this reproduction:
// length-prefixed binary frames over TCP with TLS, standing in for
// the prototype's streaming gRPC over TLS (§7).
//
// Two services share the framing. The user-facing surface of an XRD
// deployment (Server/Client): fetch chain parameters, submit a
// round's messages and covers, download a mailbox, and (for the
// round driver) trigger round execution. And the server↔server hop
// transport (HopServer/HopClient): the gateway driving one remote
// mix position through a chain's round — batch streaming in bounded
// chunks, shuffle certification, blame reveals — so a chain can span
// separate processes and machines; DESIGN.md documents the
// deployment shape and what stays in-process.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single frame; a full round's submissions for
// one user are far below this, and the cap keeps a malicious peer
// from ballooning server memory.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rpc: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("rpc: writing frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame, enforcing MaxFrameSize.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("rpc: reading frame body: %w", err)
	}
	return buf, nil
}

package rpc

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/client"
	"repro/internal/mix"
)

// Client is a remote user's connection to an XRD gateway. It
// implements client.ParamsSource, so a client.User can build rounds
// against a remote deployment exactly as against an in-process one.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	// paramsCache avoids refetching identical (chain, round) params
	// during one BuildRound (2ℓ lookups).
	paramsCache map[[2]uint64]mix.Params
}

var _ client.ParamsSource = (*Client)(nil)

// Dial connects to a gateway with the pinned TLS configuration
// obtained from the deployment (Server.ClientTLS or the PKI).
func Dial(addr string, tlsCfg *tls.Config) (*Client, error) {
	conn, err := tls.Dial("tcp", addr, tlsCfg)
	if err != nil {
		return nil, fmt.Errorf("rpc: dialing %s: %w", addr, err)
	}
	return &Client{conn: conn, paramsCache: make(map[[2]uint64]mix.Params)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one request/response exchange; the protocol is
// strictly alternating per connection.
func (c *Client) call(method string, reqBody any, respBody any) error {
	b, err := encode(reqBody)
	if err != nil {
		return err
	}
	req, err := encode(request{Method: method, Body: b})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, req); err != nil {
		return fmt.Errorf("rpc: sending %s: %w", method, err)
	}
	frame, err := ReadFrame(c.conn)
	if err != nil {
		return fmt.Errorf("rpc: reading %s response: %w", method, err)
	}
	var resp response
	if err := decode(frame, &resp); err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return decode(resp.Body, respBody)
}

// ChainParams fetches (and caches) a chain's parameters for a round.
func (c *Client) ChainParams(chain int, round uint64) (mix.Params, error) {
	key := [2]uint64{uint64(chain), round}
	c.mu.Lock()
	if p, ok := c.paramsCache[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()

	var wire ParamsResponse
	if err := c.call("params", ParamsRequest{Chain: chain, Round: round}, &wire); err != nil {
		return mix.Params{}, err
	}
	p, err := paramsFromWire(wire)
	if err != nil {
		return mix.Params{}, err
	}
	c.mu.Lock()
	c.paramsCache[key] = p
	if len(c.paramsCache) > 4096 {
		c.paramsCache = map[[2]uint64]mix.Params{key: p}
	}
	c.mu.Unlock()
	return p, nil
}

// Submit uploads a user's round output (current messages + covers).
func (c *Client) Submit(mailbox []byte, out *client.RoundOutput) error {
	req := SubmitRequest{Round: out.Round, Mailbox: mailbox}
	for _, cm := range out.Current {
		req.Current = append(req.Current, submissionToWire(cm.Chain, cm.Sub))
	}
	for _, cm := range out.Cover {
		req.Cover = append(req.Cover, submissionToWire(cm.Chain, cm.Sub))
	}
	var resp SubmitResponse
	if err := c.call("submit", req, &resp); err != nil {
		return err
	}
	if !resp.Accepted {
		return errors.New("rpc: submission rejected")
	}
	return nil
}

// Fetch downloads a mailbox for a round.
func (c *Client) Fetch(round uint64, mailbox []byte) ([][]byte, error) {
	var resp FetchResponse
	if err := c.call("fetch", FetchRequest{Round: round, Mailbox: mailbox}, &resp); err != nil {
		return nil, err
	}
	return resp.Messages, nil
}

// Status reports the deployment's shape and current round.
func (c *Client) Status() (StatusResponse, error) {
	var resp StatusResponse
	err := c.call("status", struct{}{}, &resp)
	return resp, err
}

// RunRound triggers execution of the open round (round driver role).
func (c *Client) RunRound() (RunRoundResponse, error) {
	var resp RunRoundResponse
	err := c.call("runround", struct{}{}, &resp)
	return resp, err
}

package rpc

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/mix"
)

// DefaultCallTimeout bounds one Client request/response exchange.
// Round triggering waits for the whole round to execute, so the
// default is generous; tune Client.Timeout for very large
// deployments or very tight tests.
const DefaultCallTimeout = 3 * time.Minute

// TransportError marks a connection-level failure — dial, write,
// read, deadline — as opposed to an application error returned by the
// server. The distinction drives failover: a gateway that answered
// "round closed" is healthy and retrying elsewhere is pointless,
// while one that cannot be reached may have died and its peers can
// still take the traffic (see MultiClient).
type TransportError struct {
	Op  string
	Err error
}

func (e *TransportError) Error() string { return fmt.Sprintf("rpc: %s: %v", e.Op, e.Err) }
func (e *TransportError) Unwrap() error { return e.Err }

// IsTransportError reports whether err (or anything it wraps) is a
// connection-level failure.
func IsTransportError(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

// Client is a remote user's connection to an XRD gateway. It
// implements client.ParamsSource, so a client.User can build rounds
// against a remote deployment exactly as against an in-process one.
//
// The connection heals itself: a transport-level failure (timeout,
// gateway shedding an idle connection, network blip) poisons the
// current connection — its framing state is unknown, and reusing it
// would pair the next request with a stale response — and the next
// call dials a fresh one.
type Client struct {
	// Timeout bounds one call's write-request/read-response exchange;
	// zero disables the deadline. Defaults to DefaultCallTimeout.
	Timeout time.Duration

	addr   string
	tlsCfg *tls.Config

	mu      sync.Mutex
	closed  bool
	conn    net.Conn  // nil after a transport failure; redialed on use
	lastUse time.Time // when conn last completed an exchange
	// paramsCache avoids refetching identical (chain, round) params
	// during one BuildRound (2ℓ lookups).
	paramsCache map[[2]uint64]mix.Params
}

var _ client.ParamsSource = (*Client)(nil)

// Dial connects to a gateway with the pinned TLS configuration
// obtained from the deployment (Server.ClientTLS or the PKI).
func Dial(addr string, tlsCfg *tls.Config) (*Client, error) {
	conn, err := tls.Dial("tcp", addr, tlsCfg)
	if err != nil {
		return nil, fmt.Errorf("rpc: dialing %s: %w", addr, err)
	}
	return &Client{
		Timeout:     DefaultCallTimeout,
		addr:        addr,
		tlsCfg:      tlsCfg,
		conn:        conn,
		lastUse:     time.Now(),
		paramsCache: make(map[[2]uint64]mix.Params),
	}, nil
}

// NewClient creates a client without connecting; the first call
// dials. Use it when the target may not be up yet, or when failover
// logic (MultiClient) should decide lazily which gateways to touch.
func NewClient(addr string, tlsCfg *tls.Config) *Client {
	return &Client{
		Timeout:     DefaultCallTimeout,
		addr:        addr,
		tlsCfg:      tlsCfg,
		paramsCache: make(map[[2]uint64]mix.Params),
	}
}

// Addr returns the gateway address this client targets.
func (c *Client) Addr() string { return c.addr }

// Close closes the connection; subsequent calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// call performs one request/response exchange; the protocol is
// strictly alternating per connection. The configured Timeout covers
// the whole exchange so a stalled or dead gateway surfaces as an
// error instead of wedging the caller forever.
func (c *Client) call(method string, reqBody any, respBody any) error {
	b, err := encode(reqBody)
	if err != nil {
		return err
	}
	req, err := encode(request{Method: method, Body: b})
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("rpc: client closed")
	}
	// A connection idle past maxConnIdle has likely been shed by the
	// server's idle deadline (see the hop pool's identical rule);
	// reusing it would fail the call spuriously. Redial instead.
	if c.conn != nil && time.Since(c.lastUse) > maxConnIdle {
		obsClientIdleRedials.Inc()
		c.conn.Close()
		c.conn = nil
	}
	if c.conn == nil {
		obsClientDials.Inc()
		conn, err := tls.Dial("tcp", c.addr, c.tlsCfg)
		if err != nil {
			obsClientTransportErrors.Inc()
			return &TransportError{Op: "dialing " + c.addr, Err: err}
		}
		c.conn = conn
	}
	// poison drops the connection after a transport failure: a late
	// response arriving on it would otherwise be read as the answer
	// to the next request.
	poison := func() {
		c.conn.Close()
		c.conn = nil
	}
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	if err := WriteFrame(c.conn, req); err != nil {
		poison()
		obsClientTransportErrors.Inc()
		return &TransportError{Op: "sending " + method, Err: err}
	}
	frame, err := ReadFrame(c.conn)
	if err != nil {
		poison()
		obsClientTransportErrors.Inc()
		return &TransportError{Op: "reading " + method + " response", Err: err}
	}
	var resp response
	if err := decode(frame, &resp); err != nil {
		poison()
		return err
	}
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
	c.lastUse = time.Now()
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return decode(resp.Body, respBody)
}

// ChainParams fetches (and caches) a chain's parameters for a round.
func (c *Client) ChainParams(chain int, round uint64) (mix.Params, error) {
	key := [2]uint64{uint64(chain), round}
	c.mu.Lock()
	if p, ok := c.paramsCache[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()

	var wire ParamsResponse
	if err := c.call("params", ParamsRequest{Chain: chain, Round: round}, &wire); err != nil {
		return mix.Params{}, err
	}
	p, err := paramsFromWire(wire)
	if err != nil {
		return mix.Params{}, err
	}
	c.mu.Lock()
	c.paramsCache[key] = p
	if len(c.paramsCache) > 4096 {
		c.paramsCache = map[[2]uint64]mix.Params{key: p}
	}
	c.mu.Unlock()
	return p, nil
}

// Submit uploads a user's round output (current messages + covers).
func (c *Client) Submit(mailbox []byte, out *client.RoundOutput) error {
	req := SubmitRequest{Round: out.Round, Mailbox: mailbox}
	for _, cm := range out.Current {
		req.Current = append(req.Current, submissionToWire(cm.Chain, cm.Sub))
	}
	for _, cm := range out.Cover {
		req.Cover = append(req.Cover, submissionToWire(cm.Chain, cm.Sub))
	}
	var resp SubmitResponse
	if err := c.call("submit", req, &resp); err != nil {
		return err
	}
	if !resp.Accepted {
		return errors.New("rpc: submission rejected")
	}
	return nil
}

// Fetch downloads a mailbox for a round.
func (c *Client) Fetch(round uint64, mailbox []byte) ([][]byte, error) {
	var resp FetchResponse
	if err := c.call("fetch", FetchRequest{Round: round, Mailbox: mailbox}, &resp); err != nil {
		return nil, err
	}
	return resp.Messages, nil
}

// Ack confirms receipt of a round's mailbox contents, letting the
// gateway prune them. Returns the number of messages pruned.
func (c *Client) Ack(round uint64, mailbox []byte) (int, error) {
	var resp AckResponse
	if err := c.call("ack", AckRequest{Round: round, Mailbox: mailbox}, &resp); err != nil {
		return 0, err
	}
	return resp.Pruned, nil
}

// Status reports the deployment's shape and current round.
func (c *Client) Status() (StatusResponse, error) {
	var resp StatusResponse
	err := c.call("status", struct{}{}, &resp)
	return resp, err
}

// RunRound triggers execution of the open round (round driver role).
func (c *Client) RunRound() (RunRoundResponse, error) {
	var resp RunRoundResponse
	err := c.call("runround", struct{}{}, &resp)
	return resp, err
}

// Register records a batch of mailbox identifiers with the gateway:
// the registered-but-not-necessarily-active population the cover
// traffic model sizes against. Identifiers a gateway shard does not
// own are rejected.
func (c *Client) Register(mailboxes [][]byte) (int, error) {
	var resp RegisterResponse
	if err := c.call("register", RegisterRequest{Mailboxes: mailboxes}, &resp); err != nil {
		return 0, err
	}
	return resp.Registered, nil
}

package rpc

import (
	"bytes"
	"crypto/tls"
	"net"
	"strings"
	"testing"

	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/onion"
)

// dialRaw opens a bare TLS connection to a hop endpoint, bypassing
// the client's framing discipline.
func dialRaw(hs *HopServer) (net.Conn, error) {
	return tls.Dial("tcp", hs.Addr(), hs.ClientTLS())
}

// startHop launches one hop endpoint plus a client bound to chain 0
// position 0.
func startHop(t *testing.T) (*HopServer, *HopClient) {
	t.Helper()
	fleet := startHopFleet(t, 1)
	hc := DialHop(fleet[0].Addr(), fleet[0].ClientTLS())
	t.Cleanup(func() { hc.Close() })
	if _, err := hc.Init(0, 0, group.Generator()); err != nil {
		t.Fatal(err)
	}
	return fleet[0], hc
}

func TestEnvelopeWireRoundTrip(t *testing.T) {
	envs := []onion.Envelope{
		{DHKey: group.Base(group.MustRandomScalar()), Ct: []byte("alpha")},
		{DHKey: group.Base(group.MustRandomScalar()), Ct: nil},
	}
	got, err := envelopesFromWire(envelopesToWire(envs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range envs {
		if !got[i].DHKey.Equal(envs[i].DHKey) || !bytes.Equal(got[i].Ct, envs[i].Ct) {
			t.Fatalf("envelope %d did not round trip", i)
		}
	}
}

func TestEnvelopeWireRejectsOffCurve(t *testing.T) {
	w := []WireEnvelope{{DHKey: bytes.Repeat([]byte{0xFF}, group.PointSize), Ct: []byte("x")}}
	if _, err := envelopesFromWire(w); err == nil {
		t.Fatal("off-curve envelope key accepted")
	}
	// Truncated key bytes are rejected too.
	w[0].DHKey = w[0].DHKey[:7]
	if _, err := envelopesFromWire(w); err == nil {
		t.Fatal("truncated envelope key accepted")
	}
}

func TestHopKeysWireRoundTrip(t *testing.T) {
	s := mix.NewChainServer(3, 2, group.Generator(), nil)
	keys := s.Keys()
	got, err := hopKeysFromWire(hopKeysToWire(keys), group.Generator())
	if err != nil {
		t.Fatal(err)
	}
	if got.Chain != 3 || got.Index != 2 || !got.Bpk.Equal(keys.Bpk) || !got.Mpk.Equal(keys.Mpk) {
		t.Fatal("hop keys did not round trip")
	}
	if err := mix.VerifyHopKeys(got); err != nil {
		t.Fatalf("round-tripped keys fail verification: %v", err)
	}
}

func TestHopKeysWireRejectsMalformed(t *testing.T) {
	s := mix.NewChainServer(0, 0, group.Generator(), nil)
	good := hopKeysToWire(s.Keys())

	offCurve := good
	offCurve.Mpk = bytes.Repeat([]byte{0xFF}, group.PointSize)
	if _, err := hopKeysFromWire(offCurve, group.Generator()); err == nil {
		t.Fatal("off-curve mixing key accepted")
	}

	truncated := good
	truncated.BskProof = good.BskProof[:len(good.BskProof)-1]
	if _, err := hopKeysFromWire(truncated, group.Generator()); err == nil {
		t.Fatal("truncated proof accepted")
	}
}

func TestPackBoolsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 64, 100} {
		bs := make([]bool, n)
		for i := range bs {
			bs[i] = i%3 == 0
		}
		got, err := unpackBools(packBools(bs), n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bs {
			if got[i] != bs[i] {
				t.Fatalf("n=%d: bit %d flipped", n, i)
			}
		}
	}
	if _, err := unpackBools([]byte{0xFF}, 100); err == nil {
		t.Fatal("bitmap length mismatch accepted")
	}
	if _, err := unpackBools(nil, -1); err == nil {
		t.Fatal("negative bit count accepted")
	}
}

// TestHopRejectsOversizedChunk: a chunk above MaxHopChunkEnvelopes is
// refused with an error and the connection stays usable.
func TestHopRejectsOversizedChunk(t *testing.T) {
	_, hc := startHop(t)
	big := make([]WireEnvelope, MaxHopChunkEnvelopes+1)
	for i := range big {
		big[i] = WireEnvelope{DHKey: group.Generator().Bytes()}
	}
	var resp HopBatchResponse
	err := hc.call("hop.batch", HopBatchRequest{Round: 1, Seq: 0, Envelopes: big}, &resp, hc.CallTimeout)
	if err == nil || !strings.Contains(err.Error(), "chunk") {
		t.Fatalf("oversized chunk accepted: %v", err)
	}
	// The rejection was an application error, not a poisoned stream:
	// the same client keeps working.
	if err := hc.call("hop.batch", HopBatchRequest{Round: 1, Seq: 0, Envelopes: big[:1]}, &resp, hc.CallTimeout); err != nil {
		t.Fatalf("connection unusable after rejection: %v", err)
	}
}

func TestHopRejectsEmptyChunk(t *testing.T) {
	_, hc := startHop(t)
	var resp HopBatchResponse
	if err := hc.call("hop.batch", HopBatchRequest{Round: 1, Seq: 0}, &resp, hc.CallTimeout); err == nil {
		t.Fatal("empty chunk accepted")
	}
}

func TestHopRejectsOutOfOrderChunks(t *testing.T) {
	_, hc := startHop(t)
	chunk := []WireEnvelope{{DHKey: group.Generator().Bytes(), Ct: []byte("x")}}
	var resp HopBatchResponse
	if err := hc.call("hop.batch", HopBatchRequest{Round: 1, Seq: 2, Envelopes: chunk}, &resp, hc.CallTimeout); err == nil {
		t.Fatal("chunk starting at seq 2 accepted")
	}
	if err := hc.call("hop.batch", HopBatchRequest{Round: 1, Seq: 0, Envelopes: chunk}, &resp, hc.CallTimeout); err != nil {
		t.Fatal(err)
	}
	if err := hc.call("hop.batch", HopBatchRequest{Round: 1, Seq: 5, Envelopes: chunk}, &resp, hc.CallTimeout); err == nil {
		t.Fatal("seq jump accepted")
	}
}

func TestHopRejectsCountMismatch(t *testing.T) {
	_, hc := startHop(t)
	chunk := []WireEnvelope{{DHKey: group.Generator().Bytes(), Ct: []byte("x")}}
	var ack HopBatchResponse
	if err := hc.call("hop.batch", HopBatchRequest{Round: 1, Seq: 0, Envelopes: chunk}, &ack, hc.CallTimeout); err != nil {
		t.Fatal(err)
	}
	var mr HopMixResponse
	err := hc.call("hop.mix", HopMixRequest{Round: 1, Nonce: make([]byte, 12), Count: 2}, &mr, hc.CallTimeout)
	if err == nil {
		t.Fatal("staged/announced count mismatch accepted")
	}
}

func TestHopRejectsBadNonce(t *testing.T) {
	_, hc := startHop(t)
	chunk := []WireEnvelope{{DHKey: group.Generator().Bytes(), Ct: []byte("x")}}
	var ack HopBatchResponse
	if err := hc.call("hop.batch", HopBatchRequest{Round: 1, Seq: 0, Envelopes: chunk}, &ack, hc.CallTimeout); err != nil {
		t.Fatal(err)
	}
	var mr HopMixResponse
	if err := hc.call("hop.mix", HopMixRequest{Round: 1, Nonce: []byte{1, 2, 3}, Count: 1}, &mr, hc.CallTimeout); err == nil {
		t.Fatal("short nonce accepted")
	}
}

// TestHopPullHugeSeqRejected: a pull sequence number big enough to
// overflow the chunk-offset arithmetic must get an error, not a
// negative slice index panic.
func TestHopPullHugeSeqRejected(t *testing.T) {
	_, hc := startHop(t)
	chunk := []WireEnvelope{{DHKey: group.Generator().Bytes(), Ct: []byte("not an onion")}}
	var ack HopBatchResponse
	if err := hc.call("hop.batch", HopBatchRequest{Round: 1, Seq: 0, Envelopes: chunk}, &ack, hc.CallTimeout); err != nil {
		t.Fatal(err)
	}
	var mr HopMixResponse
	if err := hc.call("hop.mix", HopMixRequest{Round: 1, Nonce: make([]byte, 12), Count: 1}, &mr, hc.CallTimeout); err != nil {
		t.Fatal(err)
	}
	// Garbage ct fails decryption, so there is no output; restage a
	// parseable batch through a 1-element valid onion is overkill —
	// what matters is that pull with absurd Seq values errors whether
	// or not output exists, on a live endpoint.
	for _, seq := range []int{1 << 61, -(1 << 61), -1} {
		var pr HopPullResponse
		if err := hc.call("hop.pull", HopPullRequest{Round: 1, Seq: seq}, &pr, hc.CallTimeout); err == nil {
			t.Fatalf("seq %d accepted", seq)
		}
	}
}

func TestHopPullBeforeMixRejected(t *testing.T) {
	_, hc := startHop(t)
	var pr HopPullResponse
	if err := hc.call("hop.pull", HopPullRequest{Round: 1, Seq: 0}, &pr, hc.CallTimeout); err == nil {
		t.Fatal("pull with no mixed output accepted")
	}
}

func TestHopBlameOutOfRangeRejected(t *testing.T) {
	_, hc := startHop(t)
	if _, err := hc.BlameReveal(1, 0, 99); err == nil {
		t.Fatal("blame reveal for nonexistent position accepted")
	}
	if _, err := hc.BlameReveal(1, 0, -1); err == nil {
		t.Fatal("blame reveal for negative position accepted")
	}
}

func TestHopAccuseRejectsOffCurveKey(t *testing.T) {
	_, hc := startHop(t)
	var resp HopAccuseResponse
	req := HopAccuseRequest{Round: 1, Msg: 0, Key: bytes.Repeat([]byte{0xFF}, group.PointSize)}
	err := hc.call("hop.accuse", req, &resp, hc.CallTimeout)
	if err == nil || !strings.Contains(err.Error(), "point") {
		t.Fatalf("off-curve accused key accepted: %v", err)
	}
}

func TestHopMethodsBeforeInitRejected(t *testing.T) {
	fleet := startHopFleet(t, 1)
	hc := DialHop(fleet[0].Addr(), fleet[0].ClientTLS())
	defer hc.Close()
	if _, _, err := hc.BeginRound(1); err == nil {
		t.Fatal("hop.begin before init accepted")
	}
	if _, err := hc.RevealInnerKey(1); err == nil {
		t.Fatal("hop.reveal before init accepted")
	}
}

func TestHopInitIdempotentAndExclusive(t *testing.T) {
	fleet := startHopFleet(t, 1)
	hc := DialHop(fleet[0].Addr(), fleet[0].ClientTLS())
	defer hc.Close()
	k1, err := hc.Init(0, 0, group.Generator())
	if err != nil {
		t.Fatal(err)
	}
	// Same binding again: same keys (a restarted gateway re-runs
	// setup).
	k2, err := hc.Init(0, 0, group.Generator())
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Bpk.Equal(k2.Bpk) || !k1.Mpk.Equal(k2.Mpk) {
		t.Fatal("re-init changed the hop's keys")
	}
	// A different binding is refused.
	if _, err := hc.Init(0, 1, group.Generator()); err == nil {
		t.Fatal("conflicting re-binding accepted")
	}
}

func TestHopInitRejectsOffCurveBase(t *testing.T) {
	fleet := startHopFleet(t, 1)
	hc := DialHop(fleet[0].Addr(), fleet[0].ClientTLS())
	defer hc.Close()
	var resp HopKeysResponse
	req := HopInitRequest{Chain: 0, Index: 0, Base: bytes.Repeat([]byte{0xFF}, group.PointSize)}
	err := hc.call("hop.init", req, &resp, hc.CallTimeout)
	if err == nil || !strings.Contains(err.Error(), "point") {
		t.Fatalf("off-curve base accepted: %v", err)
	}
}

// TestHopUnknownMethodRejected mirrors the gateway's unknown-method
// test for the hop dispatch table.
func TestHopUnknownMethodRejected(t *testing.T) {
	_, hc := startHop(t)
	var out struct{}
	if err := hc.call("hop.nonsense", struct{}{}, &out, hc.CallTimeout); err == nil {
		t.Fatal("unknown hop method accepted")
	}
}

// TestHopGarbageFrameDoesNotPanic feeds a structurally valid frame
// holding undecodable bytes straight at a hop endpoint; the server
// must drop the connection without panicking, and fresh connections
// must still be served.
func TestHopGarbageFrameDoesNotPanic(t *testing.T) {
	fleet := startHopFleet(t, 1)
	conn, err := dialRaw(fleet[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, []byte("this is not gob")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(conn); err == nil {
		t.Fatal("garbage frame got a response")
	}
	conn.Close()
	// The endpoint survives and serves a real client.
	hc := DialHop(fleet[0].Addr(), fleet[0].ClientTLS())
	defer hc.Close()
	if _, err := hc.Init(0, 0, group.Generator()); err != nil {
		t.Fatal(err)
	}
}

package rpc

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/nizk"
	"repro/internal/onion"
)

// Wire DTOs: every group element and proof crosses the network as
// canonical bytes and is re-validated on arrival (ParsePoint rejects
// off-curve encodings, ParseProof rejects non-canonical scalars).

// request wraps every client->server message with a method tag.
type request struct {
	Method string
	Body   []byte
}

// response wraps every server->client message; Err is empty on
// success.
type response struct {
	Err  string
	Body []byte
}

// ParamsRequest asks for a chain's public parameters for a round.
type ParamsRequest struct {
	Chain int
	Round uint64
}

// ParamsResponse carries mix.Params in wire form.
type ParamsResponse struct {
	ChainID        int
	Round          uint64
	MixKeys        [][]byte
	BlindKeys      [][]byte
	BaselineKeys   [][]byte
	InnerAggregate []byte
}

// WireSubmission is one onion.Submission in wire form. Proof is a
// commitment-format knowledge proof (nizk.DlogProofSize bytes).
type WireSubmission struct {
	Chain int
	DHKey []byte
	Ct    []byte
	Proof []byte
}

// SubmitRequest carries a user's full round output: current messages
// for Round and covers for Round+1 (§5.3.3). Mailbox identifies the
// submitter for cover bookkeeping only; chains never see it.
type SubmitRequest struct {
	Round   uint64
	Mailbox []byte
	Current []WireSubmission
	Cover   []WireSubmission
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	Accepted bool
}

// FetchRequest downloads a mailbox for a round.
type FetchRequest struct {
	Round   uint64
	Mailbox []byte
}

// FetchResponse carries the mailbox contents.
type FetchResponse struct {
	Messages [][]byte
}

// AckRequest confirms receipt of a round's mailbox contents so the
// gateway can prune them (and, under a durable store, compact them
// out at the next snapshot).
type AckRequest struct {
	Round   uint64
	Mailbox []byte
}

// AckResponse reports how many messages the ack pruned.
type AckResponse struct {
	Pruned int
}

// StatusResponse describes the deployment as seen from one endpoint.
type StatusResponse struct {
	Round       uint64
	NumChains   int
	ChainLength int
	L           int
	// Epoch is the topology epoch; clients compare it across polls to
	// notice a re-formation and rebuild against the new plan.
	Epoch uint64
	// Role distinguishes endpoint kinds: "coordinator" serves the full
	// monolith API, "gateway" a shard of the user base.
	Role string
	// ShardLo/ShardHi are the registry-shard range a gateway shard
	// owns ([0, 64) half-open); both zero on a coordinator.
	ShardLo, ShardHi int
	// Users is the registered, non-removed population behind this
	// endpoint.
	Users int
}

// RegisterRequest records mailbox identifiers with a gateway, in
// batches so a large population can be registered in few exchanges.
type RegisterRequest struct {
	Mailboxes [][]byte
}

// RegisterResponse reports how many identifiers were accepted.
type RegisterResponse struct {
	Registered int
}

// RunRoundResponse summarises an executed round for the driver.
type RunRoundResponse struct {
	Round          uint64
	Delivered      int
	HaltedChains   []int
	FailedChains   []int
	BlamedUsers    []string
	OfflineCovered int
}

func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("rpc: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

func decode(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("rpc: decoding %T: %w", v, err)
	}
	return nil
}

// paramsToWire converts mix.Params for transmission. The per-chain
// key columns are whole slices of points, so they go through the
// batch encode seam rather than point-by-point marshalling.
func paramsToWire(p mix.Params) ParamsResponse {
	return ParamsResponse{
		ChainID:        p.ChainID,
		Round:          p.Round,
		InnerAggregate: p.InnerAggregate.Bytes(),
		MixKeys:        group.EncodePoints(p.MixKeys),
		BlindKeys:      group.EncodePoints(p.BlindKeys),
		BaselineKeys:   group.EncodePoints(p.BaselineKeys),
	}
}

// paramsFromWire validates and converts a received ParamsResponse.
func paramsFromWire(w ParamsResponse) (mix.Params, error) {
	p := mix.Params{ChainID: w.ChainID, Round: w.Round}
	var err error
	if p.InnerAggregate, err = group.ParsePoint(w.InnerAggregate); err != nil {
		return mix.Params{}, fmt.Errorf("rpc: inner aggregate: %w", err)
	}
	if p.MixKeys, err = group.ParsePoints(w.MixKeys); err != nil {
		return mix.Params{}, fmt.Errorf("rpc: mix key: %w", err)
	}
	if p.BlindKeys, err = group.ParsePoints(w.BlindKeys); err != nil {
		return mix.Params{}, fmt.Errorf("rpc: blind key: %w", err)
	}
	if p.BaselineKeys, err = group.ParsePoints(w.BaselineKeys); err != nil {
		return mix.Params{}, fmt.Errorf("rpc: baseline key: %w", err)
	}
	return p, nil
}

// paramsSliceToWire converts a per-chain parameter snapshot. Chains
// in the dead set carry zero parameters (they failed to announce) and
// are sent as empty entries.
func paramsSliceToWire(ps []mix.Params, dead map[int]bool) []ParamsResponse {
	out := make([]ParamsResponse, len(ps))
	for c, p := range ps {
		if dead[c] || p.InnerAggregate.IsIdentity() {
			continue
		}
		out[c] = paramsToWire(p)
	}
	return out
}

// paramsSliceFromWire validates and converts a received snapshot;
// empty entries (dead chains) stay zero.
func paramsSliceFromWire(ws []ParamsResponse) ([]mix.Params, error) {
	out := make([]mix.Params, len(ws))
	for c, w := range ws {
		if len(w.InnerAggregate) == 0 {
			continue
		}
		p, err := paramsFromWire(w)
		if err != nil {
			return nil, fmt.Errorf("rpc: chain %d params: %w", c, err)
		}
		out[c] = p
	}
	return out, nil
}

// submissionToWire converts a chain submission for transmission.
func submissionToWire(chain int, s onion.Submission) WireSubmission {
	return WireSubmission{
		Chain: chain,
		DHKey: s.DHKey.Bytes(),
		Ct:    append([]byte(nil), s.Ct...),
		Proof: s.Proof.Bytes(),
	}
}

// submissionFromWire validates and converts a received submission.
func submissionFromWire(w WireSubmission) (int, onion.Submission, error) {
	key, err := group.ParsePoint(w.DHKey)
	if err != nil {
		return 0, onion.Submission{}, fmt.Errorf("rpc: submission key: %w", err)
	}
	proof, err := nizk.ParseDlogProof(w.Proof)
	if err != nil {
		return 0, onion.Submission{}, fmt.Errorf("rpc: submission proof: %w", err)
	}
	return w.Chain, onion.Submission{
		Envelope: onion.Envelope{DHKey: key, Ct: w.Ct},
		Proof:    proof,
	}, nil
}

package rpc

import (
	"fmt"

	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/nizk"
	"repro/internal/onion"
)

// Server↔server wire messages for the hop transport: how a chain
// orchestrator (gateway) drives one remote mix position. Everything
// that crosses the wire is canonical bytes re-parsed and re-validated
// on arrival — ParsePoint rejects off-curve encodings, ParseProof and
// ParseScalar reject non-canonical field elements — and batches move
// in bounded chunks so neither side ever allocates a frame
// proportional to the whole round.
//
// One mixing step is a short conversation:
//
//	hop.batch × ⌈n/MaxHopChunkEnvelopes⌉   (HopBatchRequest, streamed in)
//	hop.mix                                (HopMixRequest → proof/permutation/failures)
//	hop.pull  × ⌈n/MaxHopChunkEnvelopes⌉   (HopPullRequest, streamed out)
//
// plus hop.certify (re-certification after blame removals), hop.blame
// and hop.accuse (blame reveals), and the key/round-setup calls.

// MaxHopChunkEnvelopes bounds one streamed batch chunk. With ~100
// bytes per envelope a full chunk is a few hundred KB — far below
// MaxFrameSize — so memory per connection stays flat no matter how
// large the round is; both sides reject bigger chunks.
const MaxHopChunkEnvelopes = 4096

// WireEnvelope is one onion.Envelope in wire form.
type WireEnvelope struct {
	DHKey []byte
	Ct    []byte
}

// HopInitRequest binds a hop process to a chain position: the hop
// generates its long-term keys chained off Base (bpk_{i-1}, or g for
// position 0) and publishes them. Re-sending the same binding is
// idempotent; a conflicting one at the same epoch is refused, and a
// higher Epoch rebinds the hop in place with fresh keys (chain
// re-formation after an eviction). Gob decodes an absent Epoch as 0,
// so pre-epoch orchestrators keep working.
type HopInitRequest struct {
	Epoch uint64
	Chain int
	Index int
	Base  []byte
}

// HopKeysResponse carries mix.HopKeys in wire form.
type HopKeysResponse struct {
	Chain       int
	Index       int
	Bpk         []byte
	Mpk         []byte
	BaselinePub []byte
	BskProof    []byte
	MskProof    []byte
}

// HopBeginRequest asks for the per-round inner key announcement.
type HopBeginRequest struct {
	Round uint64
}

// HopBeginResponse carries the inner public key and knowledge proof.
type HopBeginResponse struct {
	Ipk   []byte
	Proof []byte
}

// HopRevealRequest asks the hop to disclose its per-round inner
// secret after mixing succeeded (§6.3). The orchestrator checks the
// revealed secret against the inner public key it verified at
// hop.begin, so the hop cannot substitute a different pair.
type HopRevealRequest struct {
	Round uint64
}

// HopRevealResponse carries the inner secret scalar.
type HopRevealResponse struct {
	Isk []byte
}

// HopBatchRequest streams one bounded chunk of the round's onion
// batch into the hop. Chunks must arrive in Seq order starting at 0;
// Seq 0 opens a fresh staging buffer for Round, dropping any older
// staged batch.
type HopBatchRequest struct {
	Round     uint64
	Seq       int
	Envelopes []WireEnvelope
}

// HopBatchResponse acknowledges a chunk with the running total.
type HopBatchResponse struct {
	Received int
}

// HopMixRequest runs the mixing step (§6.3 steps 1-3) over the staged
// batch. Count is the orchestrator's view of the batch size; a
// mismatch with what was staged is refused (the input-agreement
// analogue at the transport layer).
type HopMixRequest struct {
	Round uint64
	Nonce []byte
	Count int
}

// HopMixResponse is the mixing step's summary: either Failed is
// non-empty (decryption failures, the blame protocol follows and no
// output exists) or the shuffle certificate, the disclosed
// permutation and the output size, with the output itself pulled in
// chunks.
type HopMixResponse struct {
	Failed   []int
	Proof    []byte
	Out2In   []int
	OutCount int
}

// HopPullRequest fetches one bounded chunk of the last mix output.
type HopPullRequest struct {
	Round uint64
	Seq   int
}

// HopPullResponse carries the chunk; More reports whether another
// chunk follows.
type HopPullResponse struct {
	Envelopes []WireEnvelope
	More      bool
}

// HopCertifyRequest asks for a re-issued shuffle certificate over the
// messages that survived blame removal (§6.4). Keep is a bitmap over
// the hop's last input, N its bit length.
type HopCertifyRequest struct {
	Round uint64
	Epoch int
	N     int
	Keep  []byte
}

// HopCertifyResponse carries the re-certification DLEQ proof.
type HopCertifyResponse struct {
	Proof []byte
}

// HopBlameRequest asks for the hop's blame disclosure (§6.4 steps
// 1-2) for the message at its input position Pos; Msg names the
// accused working index and binds the proof contexts.
type HopBlameRequest struct {
	Round uint64
	Msg   int
	Pos   int
}

// HopBlameResponse carries the blame reveal.
type HopBlameResponse struct {
	Xin        []byte
	BlindProof []byte
	K          []byte
	KeyProof   []byte
}

// HopAccuseRequest asks the accusing hop for its step 4 disclosure
// over the accused message's submitted Diffie-Hellman key.
type HopAccuseRequest struct {
	Round uint64
	Msg   int
	Key   []byte
}

// HopAccuseResponse carries the exchanged key and matching proof.
type HopAccuseResponse struct {
	K     []byte
	Proof []byte
}

// envelopesToWire converts a batch chunk for transmission. The
// Diffie-Hellman key column is encoded through the group batch seam.
func envelopesToWire(envs []onion.Envelope) []WireEnvelope {
	keys := make([]group.Point, len(envs))
	for i, e := range envs {
		keys[i] = e.DHKey
	}
	enc := group.EncodePoints(keys)
	out := make([]WireEnvelope, len(envs))
	for i, e := range envs {
		out[i] = WireEnvelope{DHKey: enc[i], Ct: e.Ct}
	}
	return out
}

// envelopesFromWire validates and converts a received chunk. Every
// Diffie-Hellman key is checked to be on the curve; a single bad
// envelope rejects the chunk.
func envelopesFromWire(ws []WireEnvelope) ([]onion.Envelope, error) {
	enc := make([][]byte, len(ws))
	for i, w := range ws {
		enc[i] = w.DHKey
	}
	keys, err := group.ParsePoints(enc)
	if err != nil {
		return nil, fmt.Errorf("rpc: envelope key: %w", err)
	}
	out := make([]onion.Envelope, len(ws))
	for i, w := range ws {
		out[i] = onion.Envelope{DHKey: keys[i], Ct: w.Ct}
	}
	return out, nil
}

// hopKeysToWire converts published position keys for transmission.
func hopKeysToWire(k mix.HopKeys) HopKeysResponse {
	return HopKeysResponse{
		Chain:       k.Chain,
		Index:       k.Index,
		Bpk:         k.Bpk.Bytes(),
		Mpk:         k.Mpk.Bytes(),
		BaselinePub: k.BaselinePub.Bytes(),
		BskProof:    k.BskProof.Bytes(),
		MskProof:    k.MskProof.Bytes(),
	}
}

// hopKeysFromWire validates and converts received position keys.
// BpkPrev is supplied by the receiver (it chose the base), not taken
// from the wire.
func hopKeysFromWire(w HopKeysResponse, bpkPrev group.Point) (mix.HopKeys, error) {
	k := mix.HopKeys{Chain: w.Chain, Index: w.Index, BpkPrev: bpkPrev}
	var err error
	if k.Bpk, err = group.ParsePoint(w.Bpk); err != nil {
		return mix.HopKeys{}, fmt.Errorf("rpc: hop blinding key: %w", err)
	}
	if k.Mpk, err = group.ParsePoint(w.Mpk); err != nil {
		return mix.HopKeys{}, fmt.Errorf("rpc: hop mixing key: %w", err)
	}
	if k.BaselinePub, err = group.ParsePoint(w.BaselinePub); err != nil {
		return mix.HopKeys{}, fmt.Errorf("rpc: hop baseline key: %w", err)
	}
	if k.BskProof, err = nizk.ParseProof(w.BskProof); err != nil {
		return mix.HopKeys{}, fmt.Errorf("rpc: hop bsk proof: %w", err)
	}
	if k.MskProof, err = nizk.ParseProof(w.MskProof); err != nil {
		return mix.HopKeys{}, fmt.Errorf("rpc: hop msk proof: %w", err)
	}
	return k, nil
}

// packBools encodes a []bool as a bitmap (LSB-first within bytes).
func packBools(bs []bool) []byte {
	out := make([]byte, (len(bs)+7)/8)
	for i, b := range bs {
		if b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// unpackBools decodes an n-bit bitmap, rejecting length mismatches.
func unpackBools(b []byte, n int) ([]bool, error) {
	if n < 0 || len(b) != (n+7)/8 {
		return nil, fmt.Errorf("rpc: bitmap has %d bytes for %d bits", len(b), n)
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = b[i/8]&(1<<(i%8)) != 0
	}
	return out, nil
}

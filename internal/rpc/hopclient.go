package rpc

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/nizk"
	"repro/internal/onion"
)

// Hop transport client defaults. One exchange is bounded by
// DefaultHopCallTimeout; hop.mix waits for the remote to mix the
// whole batch, so it gets its own, much larger bound.
const (
	DefaultHopCallTimeout = time.Minute
	DefaultHopMixTimeout  = 10 * time.Minute
	// maxIdleHopConns bounds the pool; connections beyond it are
	// closed on release rather than cached.
	maxIdleHopConns = 4
	// maxConnIdle is how long a pooled connection may sit unused
	// before the pool discards it instead of handing it out. It must
	// stay safely below the server side's DefaultIdleTimeout:
	// otherwise the pool would return connections the hop endpoint
	// has already shed, the call would fail spuriously, and the
	// chain would blame a perfectly healthy position.
	maxConnIdle = time.Minute
)

// HopClient is the gateway's handle on one remote mix position: the
// dialing half of the hop transport, implementing mix.Hop over pooled
// TLS connections with per-call deadlines. Batches stream in bounded
// chunks (MaxHopChunkEnvelopes per frame) and everything received is
// re-parsed and validated before it reaches the chain orchestrator.
//
// Init must run once, before the chain is assembled, to bind the
// remote process to its chain position and fetch its keys.
type HopClient struct {
	// CallTimeout bounds one ordinary request/response exchange;
	// MixTimeout bounds the hop.mix exchange, which waits for the
	// remote to mix the entire staged batch. Zero disables the
	// respective deadline.
	CallTimeout time.Duration
	MixTimeout  time.Duration

	pool *connPool

	// metrics is the per-position metric set, installed by InitEpoch
	// when the binding is known and swapped atomically on re-binding;
	// nil until the first Init (nothing to label the calls with yet).
	metrics atomic.Pointer[hopMetrics]

	mu    sync.Mutex
	ready bool
	keys  mix.HopKeys
}

var _ mix.Hop = (*HopClient)(nil)

// DialHop prepares a hop client for addr with the pinned TLS
// configuration (the mix process's certificate, distributed
// out-of-band like every server identity, §3.1). Connections are
// opened lazily and pooled.
func DialHop(addr string, tlsCfg *tls.Config) *HopClient {
	return &HopClient{
		CallTimeout: DefaultHopCallTimeout,
		MixTimeout:  DefaultHopMixTimeout,
		pool:        &connPool{addr: addr, tlsCfg: tlsCfg},
	}
}

// Close releases all pooled connections.
func (h *HopClient) Close() error { h.pool.close(); return nil }

// SetConnWrapper installs a wrapper applied to every connection the
// client dials from now on — the fault-injection hook (a
// faults.Injector.Wrapper value). nil removes the wrapper; already
// pooled connections are unaffected.
func (h *HopClient) SetConnWrapper(w func(net.Conn) net.Conn) {
	h.pool.mu.Lock()
	h.pool.wrap = w
	h.pool.mu.Unlock()
}

// Init binds the remote process to chain position (chain, index) with
// key base `base` and fetches its published keys. Idempotent against
// the same binding, so a restarted gateway can re-run setup.
func (h *HopClient) Init(chain, index int, base group.Point) (mix.HopKeys, error) {
	return h.InitEpoch(0, chain, index, base)
}

// InitEpoch is Init for a given epoch. A higher epoch supersedes the
// hop's previous binding: after an eviction the orchestrator re-forms
// chains and re-initialises each surviving process in place, with
// fresh keys at its new position.
func (h *HopClient) InitEpoch(epoch uint64, chain, index int, base group.Point) (mix.HopKeys, error) {
	h.metrics.Store(newHopMetrics(chain, index))
	var w HopKeysResponse
	req := HopInitRequest{Epoch: epoch, Chain: chain, Index: index, Base: base.Bytes()}
	if err := h.call("hop.init", req, &w, h.CallTimeout); err != nil {
		return mix.HopKeys{}, err
	}
	if w.Chain != chain || w.Index != index {
		return mix.HopKeys{}, fmt.Errorf("rpc: hop answered for chain %d position %d, asked for %d:%d", w.Chain, w.Index, chain, index)
	}
	keys, err := hopKeysFromWire(w, base)
	if err != nil {
		return mix.HopKeys{}, err
	}
	h.mu.Lock()
	h.keys, h.ready = keys, true
	h.mu.Unlock()
	return keys, nil
}

// Keys returns the keys fetched by Init.
func (h *HopClient) Keys() mix.HopKeys {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.ready {
		panic("rpc: HopClient.Keys before Init")
	}
	return h.keys
}

// BeginRound implements mix.Hop.
func (h *HopClient) BeginRound(round uint64) (group.Point, nizk.Proof, error) {
	var resp HopBeginResponse
	if err := h.call("hop.begin", HopBeginRequest{Round: round}, &resp, h.CallTimeout); err != nil {
		return group.Point{}, nizk.Proof{}, err
	}
	ipk, err := group.ParsePoint(resp.Ipk)
	if err != nil {
		return group.Point{}, nizk.Proof{}, fmt.Errorf("rpc: inner key: %w", err)
	}
	proof, err := nizk.ParseProof(resp.Proof)
	if err != nil {
		return group.Point{}, nizk.Proof{}, fmt.Errorf("rpc: inner key proof: %w", err)
	}
	return ipk, proof, nil
}

// RevealInnerKey implements mix.Hop.
func (h *HopClient) RevealInnerKey(round uint64) (group.Scalar, error) {
	var resp HopRevealResponse
	if err := h.call("hop.reveal", HopRevealRequest{Round: round}, &resp, h.CallTimeout); err != nil {
		return group.Scalar{}, err
	}
	isk, err := group.ParseScalar(resp.Isk)
	if err != nil {
		return group.Scalar{}, fmt.Errorf("rpc: inner secret: %w", err)
	}
	return isk, nil
}

// Mix implements mix.Hop: stream the batch in chunks, trigger the
// mixing step, pull the output back in chunks. The response is
// validated structurally here (parses, sizes, index ranges); the
// chain re-checks everything cryptographically.
func (h *HopClient) Mix(round uint64, nonce [aead.NonceSize]byte, in []onion.Envelope) (*mix.MixResult, error) {
	for seq, off := 0, 0; off < len(in); seq++ {
		end := off + MaxHopChunkEnvelopes
		if end > len(in) {
			end = len(in)
		}
		var ack HopBatchResponse
		req := HopBatchRequest{Round: round, Seq: seq, Envelopes: envelopesToWire(in[off:end])}
		if err := h.call("hop.batch", req, &ack, h.CallTimeout); err != nil {
			return nil, fmt.Errorf("rpc: streaming batch chunk %d: %w", seq, err)
		}
		off = end
	}
	var mr HopMixResponse
	if err := h.call("hop.mix", HopMixRequest{Round: round, Nonce: nonce[:], Count: len(in)}, &mr, h.MixTimeout); err != nil {
		return nil, err
	}
	if len(mr.Failed) > 0 {
		return &mix.MixResult{Failed: mr.Failed}, nil
	}
	proof, err := nizk.ParseProof(mr.Proof)
	if err != nil {
		return nil, fmt.Errorf("rpc: shuffle certificate: %w", err)
	}
	if mr.OutCount < 0 || mr.OutCount > len(in) {
		return nil, fmt.Errorf("rpc: hop reports %d outputs for %d inputs", mr.OutCount, len(in))
	}
	out := make([]onion.Envelope, 0, mr.OutCount)
	for seq := 0; len(out) < mr.OutCount; seq++ {
		var pr HopPullResponse
		if err := h.call("hop.pull", HopPullRequest{Round: round, Seq: seq}, &pr, h.CallTimeout); err != nil {
			return nil, fmt.Errorf("rpc: pulling output chunk %d: %w", seq, err)
		}
		if len(pr.Envelopes) == 0 || len(pr.Envelopes) > MaxHopChunkEnvelopes {
			return nil, fmt.Errorf("rpc: output chunk of %d envelopes outside (0, %d]", len(pr.Envelopes), MaxHopChunkEnvelopes)
		}
		envs, err := envelopesFromWire(pr.Envelopes)
		if err != nil {
			return nil, err
		}
		out = append(out, envs...)
		if pr.More != (len(out) < mr.OutCount) {
			return nil, fmt.Errorf("rpc: hop's chunk continuation disagrees with its announced output count %d", mr.OutCount)
		}
	}
	if len(out) != mr.OutCount {
		return nil, fmt.Errorf("rpc: hop streamed %d outputs, announced %d", len(out), mr.OutCount)
	}
	return &mix.MixResult{Out: out, Proof: proof, Out2In: mr.Out2In}, nil
}

// ReProveSubset implements mix.Hop.
func (h *HopClient) ReProveSubset(round uint64, epoch int, keep []bool) (nizk.Proof, error) {
	req := HopCertifyRequest{Round: round, Epoch: epoch, N: len(keep), Keep: packBools(keep)}
	var resp HopCertifyResponse
	if err := h.call("hop.certify", req, &resp, h.CallTimeout); err != nil {
		return nizk.Proof{}, err
	}
	proof, err := nizk.ParseProof(resp.Proof)
	if err != nil {
		return nizk.Proof{}, fmt.Errorf("rpc: re-certification proof: %w", err)
	}
	return proof, nil
}

// BlameReveal implements mix.Hop.
func (h *HopClient) BlameReveal(round uint64, msg, pos int) (mix.BlameReveal, error) {
	var resp HopBlameResponse
	if err := h.call("hop.blame", HopBlameRequest{Round: round, Msg: msg, Pos: pos}, &resp, h.CallTimeout); err != nil {
		return mix.BlameReveal{}, err
	}
	var rev mix.BlameReveal
	var err error
	if rev.Xin, err = group.ParsePoint(resp.Xin); err != nil {
		return mix.BlameReveal{}, fmt.Errorf("rpc: blame Xin: %w", err)
	}
	if rev.BlindProof, err = nizk.ParseProof(resp.BlindProof); err != nil {
		return mix.BlameReveal{}, fmt.Errorf("rpc: blame blind proof: %w", err)
	}
	if rev.K, err = group.ParsePoint(resp.K); err != nil {
		return mix.BlameReveal{}, fmt.Errorf("rpc: blame key: %w", err)
	}
	if rev.KeyProof, err = nizk.ParseProof(resp.KeyProof); err != nil {
		return mix.BlameReveal{}, fmt.Errorf("rpc: blame key proof: %w", err)
	}
	return rev, nil
}

// Accuse implements mix.Hop.
func (h *HopClient) Accuse(round uint64, msg int, key group.Point) (mix.AccuseReveal, error) {
	var resp HopAccuseResponse
	if err := h.call("hop.accuse", HopAccuseRequest{Round: round, Msg: msg, Key: key.Bytes()}, &resp, h.CallTimeout); err != nil {
		return mix.AccuseReveal{}, err
	}
	var ar mix.AccuseReveal
	var err error
	if ar.K, err = group.ParsePoint(resp.K); err != nil {
		return mix.AccuseReveal{}, fmt.Errorf("rpc: accuse key: %w", err)
	}
	if ar.Proof, err = nizk.ParseProof(resp.Proof); err != nil {
		return mix.AccuseReveal{}, fmt.Errorf("rpc: accuse proof: %w", err)
	}
	return ar, nil
}

// call performs one request/response exchange on a pooled connection.
// A transport-level failure poisons the connection (framing state is
// unknown), so it is closed instead of returned to the pool; an
// application-level error (response.Err) leaves the connection
// reusable.
func (h *HopClient) call(method string, reqBody, respBody any, timeout time.Duration) error {
	b, err := encode(reqBody)
	if err != nil {
		return err
	}
	req, err := encode(request{Method: method, Body: b})
	if err != nil {
		return err
	}
	m := h.metrics.Load()
	conn, err := h.pool.get()
	if err != nil {
		if m != nil {
			m.errors.Inc()
		}
		return fmt.Errorf("rpc: dialing hop for %s: %w", method, err)
	}
	healthy := false
	defer func() {
		if healthy {
			h.pool.put(conn)
		} else {
			conn.Close()
		}
	}()
	start := time.Now()
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := WriteFrame(conn, req); err != nil {
		if m != nil {
			m.errors.Inc()
		}
		return fmt.Errorf("rpc: sending %s: %w", method, err)
	}
	frame, err := ReadFrame(conn)
	if err != nil {
		if m != nil {
			m.errors.Inc()
		}
		return fmt.Errorf("rpc: reading %s response: %w", method, err)
	}
	if m != nil {
		m.bytesOut.Add(uint64(len(req)))
		m.bytesIn.Add(uint64(len(frame)))
		if lat := m.latency[method]; lat != nil {
			lat.ObserveDuration(time.Since(start))
		}
	}
	var resp response
	if err := decode(frame, &resp); err != nil {
		return err
	}
	if timeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	healthy = true
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return decode(resp.Body, respBody)
}

// connPool is a small idle-connection pool: concurrent calls each
// get their own connection (the frame protocol is strictly
// alternating per connection), and up to maxIdleHopConns are kept
// warm between calls. Connections idle past maxConnIdle are
// discarded on checkout — the serving side sheds idle connections
// too, and handing out one it already closed would surface as a
// spurious transport failure.
type connPool struct {
	addr   string
	tlsCfg *tls.Config

	mu     sync.Mutex
	closed bool
	wrap   func(net.Conn) net.Conn
	free   []pooledConn
}

type pooledConn struct {
	conn  net.Conn
	since time.Time
}

func (p *connPool) get() (net.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("rpc: hop client closed")
	}
	var stale []net.Conn
	var fresh net.Conn
	for n := len(p.free); n > 0; n = len(p.free) {
		pc := p.free[n-1]
		p.free = p.free[:n-1]
		if time.Since(pc.since) > maxConnIdle {
			stale = append(stale, pc.conn)
			continue
		}
		fresh = pc.conn
		break
	}
	wrap := p.wrap
	p.mu.Unlock()
	if len(stale) > 0 {
		obsHopIdleReaps.Add(uint64(len(stale)))
		for _, c := range stale {
			c.Close()
		}
	}
	if fresh != nil {
		return fresh, nil
	}
	obsHopDials.Inc()
	c, err := tls.Dial("tcp", p.addr, p.tlsCfg)
	if err != nil {
		return nil, err
	}
	if wrap != nil {
		c2 := wrap(c)
		if c2 == nil {
			c.Close()
			return nil, errors.New("rpc: connection wrapper returned nil")
		}
		return c2, nil
	}
	return c, nil
}

func (p *connPool) put(conn net.Conn) {
	p.mu.Lock()
	if p.closed || len(p.free) >= maxIdleHopConns {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.free = append(p.free, pooledConn{conn: conn, since: time.Now()})
	p.mu.Unlock()
}

func (p *connPool) close() {
	p.mu.Lock()
	p.closed = true
	free := p.free
	p.free = nil
	p.mu.Unlock()
	for _, pc := range free {
		pc.conn.Close()
	}
}

package client_test

import (
	"bytes"
	"testing"

	"repro/internal/aead"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/onion"
)

func testNet(t testing.TB) *core.Network {
	t.Helper()
	n, err := core.NewNetwork(core.Config{
		NumServers:          6,
		ChainLengthOverride: 3,
		Seed:                []byte("client-test-beacon"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildRoundShape(t *testing.T) {
	n := testNet(t)
	u := n.NewUser()
	out, err := u.BuildRound(n.Round(), n)
	if err != nil {
		t.Fatal(err)
	}
	l := n.Plan().L
	if len(out.Current) != l {
		t.Fatalf("current lane has %d messages, want ℓ=%d", len(out.Current), l)
	}
	if len(out.Cover) != l {
		t.Fatalf("cover lane has %d messages, want ℓ=%d", len(out.Cover), l)
	}
	// Messages go exactly to the user's selected chains, in order.
	chains := u.Chains()
	for i, cm := range out.Current {
		if cm.Chain != chains[i] {
			t.Fatalf("current[%d] goes to chain %d, want %d", i, cm.Chain, chains[i])
		}
	}
	// Every submission carries a valid PoK for its chain and round.
	for _, cm := range out.Current {
		if err := onion.VerifySubmission(cm.Sub, out.Round, cm.Chain); err != nil {
			t.Fatalf("current submission proof: %v", err)
		}
	}
	for _, cm := range out.Cover {
		if err := onion.VerifySubmission(cm.Sub, out.Round+1, cm.Chain); err != nil {
			t.Fatalf("cover submission proof: %v", err)
		}
	}
}

func TestBuildRoundFixedSizeSubmissions(t *testing.T) {
	n := testNet(t)
	u := n.NewUser()
	v := n.NewUser()
	if err := u.StartConversation(v.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := u.QueueMessage([]byte("some body")); err != nil {
		t.Fatal(err)
	}
	out, err := u.BuildRound(n.Round(), n)
	if err != nil {
		t.Fatal(err)
	}
	outIdle, err := v.BuildRound(n.Round(), n)
	if err != nil {
		t.Fatal(err)
	}
	// Conversing and idle users' submissions must be byte-identical
	// in size: this is the wire-level indistinguishability privacy
	// rests on.
	size := len(out.Current[0].Sub.Ct)
	for _, cm := range append(out.Current, outIdle.Current...) {
		if len(cm.Sub.Ct) != size {
			t.Fatalf("ciphertext size %d differs from %d", len(cm.Sub.Ct), size)
		}
	}
}

func TestQueueMessageValidation(t *testing.T) {
	n := testNet(t)
	u := n.NewUser()
	if err := u.QueueMessage([]byte("x")); err == nil {
		t.Fatal("QueueMessage succeeded without a conversation")
	}
	v := n.NewUser()
	if err := u.StartConversation(v.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := u.QueueMessage(make([]byte, onion.BodySize+1)); err == nil {
		t.Fatal("oversized body accepted")
	}
	if err := u.QueueMessage(make([]byte, onion.BodySize)); err != nil {
		t.Fatalf("max-size body rejected: %v", err)
	}
}

func TestMeetingChainAgreement(t *testing.T) {
	n := testNet(t)
	a := n.NewUser()
	b := n.NewUser()
	if err := a.StartConversation(b.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := b.StartConversation(a.PublicKey()); err != nil {
		t.Fatal(err)
	}
	ca, err := a.MeetingChain()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.MeetingChain()
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("meeting chains disagree: %d vs %d", ca, cb)
	}
	if _, err := n.NewUser().MeetingChain(); err == nil {
		t.Fatal("MeetingChain without conversation succeeded")
	}
}

func TestEndConversationRevertsToLoopbacks(t *testing.T) {
	n := testNet(t)
	a := n.NewUser()
	b := n.NewUser()
	if err := a.StartConversation(b.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if !a.InConversation() {
		t.Fatal("not in conversation after start")
	}
	a.EndConversation(b.PublicKey())
	if a.InConversation() {
		t.Fatal("still in conversation after end")
	}
	if err := a.QueueMessage([]byte("x")); err == nil {
		t.Fatal("queueing after end succeeded")
	}
}

func TestOpenMailboxIgnoresGarbage(t *testing.T) {
	n := testNet(t)
	u := n.NewUser()
	garbage := make([]byte, onion.MailboxMessageSize)
	recv, bad := u.OpenMailbox(1, [][]byte{garbage, []byte("short")})
	if len(recv) != 0 || bad != 2 {
		t.Fatalf("recv=%d bad=%d, want 0/2", len(recv), bad)
	}
}

func TestOpenMailboxCrossUserIsolation(t *testing.T) {
	// A message sealed for one user must not decrypt for another.
	n := testNet(t)
	a := n.NewUser()
	b := n.NewUser()
	if err := a.StartConversation(b.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := b.StartConversation(a.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := a.QueueMessage([]byte("for bob only")); err != nil {
		t.Fatal(err)
	}
	rep, err := n.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	bobMsgs := n.Fetch(b, rep.Round)
	eve := n.NewUser()
	recv, bad := eve.OpenMailbox(rep.Round, bobMsgs)
	if len(recv) != 0 || bad != len(bobMsgs) {
		t.Fatalf("eve decrypted %d of bob's messages", len(recv))
	}
}

func TestDistinctUsersDistinctKeys(t *testing.T) {
	n := testNet(t)
	a := n.NewUser()
	b := n.NewUser()
	if a.PublicKey().Equal(b.PublicKey()) {
		t.Fatal("two users share a public key")
	}
	if bytes.Equal(a.Mailbox(), b.Mailbox()) {
		t.Fatal("two users share a mailbox")
	}
	if len(a.Mailbox()) != group.PointSize {
		t.Fatalf("mailbox id length %d", len(a.Mailbox()))
	}
}

func TestCoverLaneNonceSeparation(t *testing.T) {
	// The cover conversation message for round ρ+1 and a fresh round
	// ρ+1 conversation message use the same directional key; the lane
	// byte must keep their nonces distinct. We check the two seal
	// nonces differ.
	n1 := aead.RoundNonce(5, client.LaneCurrent)
	n2 := aead.RoundNonce(5, client.LaneCover)
	if n1 == n2 {
		t.Fatal("lane nonces collide")
	}
}

func BenchmarkBuildRound(b *testing.B) {
	n, err := core.NewNetwork(core.Config{
		NumServers:          100,
		ChainLengthOverride: 32,
		Seed:                []byte("bench"),
	})
	if err != nil {
		b.Fatal(err)
	}
	u := n.NewUser()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.BuildRound(n.Round(), n); err != nil {
			b.Fatal(err)
		}
	}
}

// findDistinctTriple draws users until the three pairwise meeting
// chains are distinct (the §9 group precondition).
func findDistinctTriple(t *testing.T, n *core.Network) (a, b, c *client.User) {
	t.Helper()
	plan := n.Plan()
	for attempt := 0; attempt < 300; attempt++ {
		a, b, c = n.NewUser(), n.NewUser(), n.NewUser()
		ab := plan.MeetingChainForUsers(a.Mailbox(), b.Mailbox())
		ac := plan.MeetingChainForUsers(a.Mailbox(), c.Mailbox())
		bc := plan.MeetingChainForUsers(b.Mailbox(), c.Mailbox())
		if ab != ac && ab != bc && ac != bc {
			return a, b, c
		}
	}
	t.Skip("no clash-free triple found for this topology")
	return nil, nil, nil
}

// TestGroupConversation exercises §9: three users, three pairwise
// conversations on distinct chains, every body delivered, and the
// wire pattern still exactly ℓ messages per user.
func TestGroupConversation(t *testing.T) {
	n, err := core.NewNetwork(core.Config{
		NumServers:          21,
		ChainLengthOverride: 3,
		Seed:                []byte("group-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := findDistinctTriple(t, n)
	group := []*client.User{a, b, c}
	for _, u := range group {
		for _, v := range group {
			if u != v {
				if err := u.StartConversation(v.PublicKey()); err != nil {
					t.Fatal(err)
				}
			}
		}
		if len(u.Partners()) != 2 {
			t.Fatalf("partners = %d, want 2", len(u.Partners()))
		}
	}
	for i, u := range group {
		for _, p := range u.Partners() {
			if err := u.QueueMessageFor(p, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := n.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	l := n.Plan().L
	for i, u := range group {
		msgs := n.Fetch(u, rep.Round)
		if len(msgs) != l {
			t.Fatalf("user %d received %d messages, want ℓ=%d", i, len(msgs), l)
		}
		recv, bad := u.OpenMailbox(rep.Round, msgs)
		if bad != 0 {
			t.Fatalf("user %d: %d undecryptable", i, bad)
		}
		fromPartners := 0
		for _, r := range recv {
			if r.FromPartner && r.Kind == onion.KindConversation {
				fromPartners++
			}
		}
		if fromPartners != 2 {
			t.Fatalf("user %d received %d partner messages, want 2", i, fromPartners)
		}
	}
}

// TestChainClashRejected: a second partner on an occupied meeting
// chain must be rejected atomically.
func TestChainClashRejected(t *testing.T) {
	n := testNet(t) // 6 chains: clashes are common
	plan := n.Plan()
	u := n.NewUser()
	// Find two other users whose meeting chains with u collide.
	var v, w *client.User
	for attempt := 0; attempt < 500 && w == nil; attempt++ {
		x := n.NewUser()
		if v == nil {
			v = x
			continue
		}
		if plan.MeetingChainForUsers(u.Mailbox(), x.Mailbox()) ==
			plan.MeetingChainForUsers(u.Mailbox(), v.Mailbox()) {
			w = x
		}
	}
	if w == nil {
		t.Skip("no clash found")
	}
	if err := u.StartConversation(v.PublicKey()); err != nil {
		t.Fatal(err)
	}
	err := u.StartConversation(w.PublicKey())
	if err == nil {
		t.Fatal("clashing conversation accepted")
	}
	if len(u.Partners()) != 1 {
		t.Fatalf("partners = %d after rejected start", len(u.Partners()))
	}
	// Atomic batch: the whole StartConversations must fail.
	u2 := n.NewUser()
	if err := u2.StartConversations([]group.Point{v.PublicKey(), w.PublicKey()}); err != nil {
		// Clash relative to u2 may or may not exist; only verify
		// atomicity when it does.
		if len(u2.Partners()) != 0 {
			t.Fatal("partial application after failed StartConversations")
		}
	}
}

// TestEndOneOfSeveralConversations: ending one conversation leaves
// the others running.
func TestEndOneOfSeveralConversations(t *testing.T) {
	n, err := core.NewNetwork(core.Config{
		NumServers:          21,
		ChainLengthOverride: 3,
		Seed:                []byte("end-one"),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := findDistinctTriple(t, n)
	if err := a.StartConversations([]group.Point{b.PublicKey(), c.PublicKey()}); err != nil {
		t.Fatal(err)
	}
	a.EndConversation(b.PublicKey())
	if len(a.Partners()) != 1 || !a.Partners()[0].Equal(c.PublicKey()) {
		t.Fatalf("partners after ending one: %v", a.Partners())
	}
	if err := a.QueueMessageFor(b.PublicKey(), []byte("x")); err == nil {
		t.Fatal("queueing for an ended partner succeeded")
	}
	if err := a.QueueMessageFor(c.PublicKey(), []byte("x")); err != nil {
		t.Fatalf("queueing for the remaining partner failed: %v", err)
	}
}

// TestQueueMessageAmbiguousWithSeveralPartners: the single-partner
// convenience must refuse when the target is ambiguous.
func TestQueueMessageAmbiguousWithSeveralPartners(t *testing.T) {
	n, err := core.NewNetwork(core.Config{
		NumServers:          21,
		ChainLengthOverride: 3,
		Seed:                []byte("ambiguous"),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := findDistinctTriple(t, n)
	if err := a.StartConversations([]group.Point{b.PublicKey(), c.PublicKey()}); err != nil {
		t.Fatal(err)
	}
	if err := a.QueueMessage([]byte("for whom?")); err == nil {
		t.Fatal("ambiguous QueueMessage accepted")
	}
}

// Package client implements the XRD user protocol (§5.3): chain
// selection, loopback and conversation message generation (Algorithm
// 2 with the AHS envelopes of §6.2), the cover messages for round
// ρ+1 that protect against user churn (§5.3.3), and mailbox
// decryption.
//
// A user sends ℓ fixed-size messages every round. Chains that carry a
// conversation get a message encrypted for the partner; all others
// get loopbacks to her own mailbox. Both look identical on the wire,
// and she always receives exactly ℓ messages back.
//
// Multiple simultaneous conversations (§9) are supported when every
// partner pair meets on a distinct chain: each such chain carries one
// conversation, amortising the ℓ messages across partners. A clash —
// two partners meeting this user on the same chain — is rejected,
// matching the limitation the paper states.
//
// Concurrency contract: a User is single-owner state. BuildRound and
// OpenMailbox mutate conversation state (outbox drains, offline
// signals), so each User must be driven by one goroutine at a time;
// the core round pipeline enforces this by locking a user's registry
// shard around her build. Distinct Users share no mutable state —
// ParamsSource and the chain-selection Plan are read-only here — so
// building many users in parallel is safe and is exactly what the
// pipeline does.
package client

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/aead"
	"repro/internal/chainsel"
	"repro/internal/group"
	"repro/internal/kdf"
	"repro/internal/mix"
	"repro/internal/onion"
)

// Lanes separate the mailbox-layer nonces of fresh messages from
// cover messages so the same directional conversation key is never
// used twice with one nonce: a cover sealed for round ρ+1 during
// round ρ and a fresh message sealed in round ρ+1 would otherwise
// collide.
const (
	LaneCurrent byte = 0
	LaneCover   byte = 1
)

// maxFormerPartners bounds how many ended conversations' keys are
// retained to decrypt stragglers (a former partner's banked covers).
const maxFormerPartners = 4

// ErrNotConversing is returned by QueueMessage without a partner.
var ErrNotConversing = errors.New("client: not in a conversation")

// ErrChainClash is returned when two partners would share a meeting
// chain with this user, which XRD cannot multiplex (§9).
var ErrChainClash = errors.New("client: two partners meet on the same chain")

// ParamsSource supplies chain parameters for a round; satisfied by
// the core network and by the RPC client.
type ParamsSource interface {
	// ChainParams returns the public parameters of chain for round;
	// the round's inner keys must already be announced.
	ChainParams(chain int, round uint64) (mix.Params, error)
}

// User holds a user's key material and conversation state.
type User struct {
	scheme   aead.Scheme
	plan     *chainsel.Plan
	identity group.KeyPair
	// loopbackSecret derives the chain-specific loopback keys s_xA
	// known only to this user.
	loopbackSecret [32]byte

	// partners maps a meeting chain to the partner this user
	// converses with there (§9: one conversation per chain).
	partners map[int]group.Point
	// outbox queues message bodies per partner (keyed by compressed
	// public key).
	outbox map[string][][]byte
	// former retains ended partners' keys so stragglers — most
	// notably a former partner's banked cover messages arriving a
	// round after the offline signal — still decrypt.
	former []group.Point

	// drained records the conversation bodies each recent build
	// consumed from the outbox, keyed by round. Rebalance marks every
	// record stale: the builds that drained them were wrapped against
	// the old epoch's chains, so a pipelining coordinator discards
	// them — and when a stale record's round is then rebuilt, its
	// bodies are pushed back to the front of the queue first (rounds
	// execute in order, so rebuilding round ρ proves no round ≥ ρ
	// ever ran, and those bodies would otherwise be silently lost).
	drained map[uint64]*drainRecord
}

// drainRecord is the outbox bodies one round's build consumed.
type drainRecord struct {
	bodies map[string][]byte
	// stale is set by Rebalance: the build that drained these bodies
	// predates an epoch re-formation and may never have executed.
	stale bool
}

// NewUser creates a user with a fresh identity key pair. A nil scheme
// selects ChaCha20-Poly1305, the deployment default.
func NewUser(scheme aead.Scheme, plan *chainsel.Plan) *User {
	if scheme == nil {
		scheme = aead.ChaCha20Poly1305()
	}
	u := &User{
		scheme:   scheme,
		plan:     plan,
		identity: group.GenerateBaseKeyPair(),
		partners: make(map[int]group.Point),
		outbox:   make(map[string][][]byte),
	}
	copy(u.loopbackSecret[:], group.MustRandomScalar().Bytes())
	return u
}

// PublicKey returns the user's identity public key, which is also her
// mailbox identifier (§5.1).
func (u *User) PublicKey() group.Point { return u.identity.Public }

// Mailbox returns the user's mailbox identifier bytes.
func (u *User) Mailbox() []byte { return u.identity.Public.Bytes() }

// Chains returns the multiset of chains this user submits to each
// round (§5.3.1).
func (u *User) Chains() []int { return u.plan.ChainsForUser(u.Mailbox()) }

// StartConversation begins a conversation with the holder of
// partner's public key, alongside any existing conversations. Per
// §3.1 the two users agree to start out-of-band; both sides must call
// this for the same round for messages to cross. It fails with
// ErrChainClash if the partner's meeting chain is already carrying
// another of this user's conversations (§9's stated limitation).
func (u *User) StartConversation(partner group.Point) error {
	meeting := u.plan.MeetingChainForUsers(u.Mailbox(), partner.Bytes())
	if existing, ok := u.partners[meeting]; ok {
		if existing.Equal(partner) {
			return nil
		}
		return fmt.Errorf("%w: chain %d", ErrChainClash, meeting)
	}
	u.partners[meeting] = partner
	return nil
}

// StartConversations begins several conversations at once (§9 group
// scenario), atomically: either all partners are accepted or none.
func (u *User) StartConversations(partners []group.Point) error {
	staged := make(map[int]group.Point, len(partners))
	for _, p := range partners {
		meeting := u.plan.MeetingChainForUsers(u.Mailbox(), p.Bytes())
		if existing, ok := staged[meeting]; ok && !existing.Equal(p) {
			return fmt.Errorf("%w: chain %d", ErrChainClash, meeting)
		}
		if existing, ok := u.partners[meeting]; ok && !existing.Equal(p) {
			return fmt.Errorf("%w: chain %d", ErrChainClash, meeting)
		}
		staged[meeting] = p
	}
	for c, p := range staged {
		u.partners[c] = p
	}
	return nil
}

// EndConversation ends the conversation with one partner; the wire
// pattern does not change. The partner's key is retained so stale
// messages from them still decrypt.
func (u *User) EndConversation(partner group.Point) {
	for c, p := range u.partners {
		if p.Equal(partner) {
			u.retainFormer(p)
			delete(u.partners, c)
			delete(u.outbox, string(p.Bytes()))
		}
	}
}

// EndAllConversations reverts to loopback-only traffic.
func (u *User) EndAllConversations() {
	for _, p := range u.partners {
		u.retainFormer(p)
	}
	u.partners = make(map[int]group.Point)
	u.outbox = make(map[string][][]byte)
}

func (u *User) retainFormer(p group.Point) {
	u.former = append(u.former, p)
	if len(u.former) > maxFormerPartners {
		u.former = u.former[len(u.former)-maxFormerPartners:]
	}
}

// InConversation reports whether any partner is set.
func (u *User) InConversation() bool { return len(u.partners) > 0 }

// Partners returns the current conversation partners.
func (u *User) Partners() []group.Point {
	out := make([]group.Point, 0, len(u.partners))
	for _, p := range u.partners {
		out = append(out, p)
	}
	return out
}

// QueueMessage enqueues a body when exactly one conversation is
// active; with several partners use QueueMessageFor.
func (u *User) QueueMessage(body []byte) error {
	if len(u.partners) != 1 {
		if len(u.partners) == 0 {
			return ErrNotConversing
		}
		return errors.New("client: several conversations active; use QueueMessageFor")
	}
	for _, p := range u.partners {
		return u.QueueMessageFor(p, body)
	}
	return nil // unreachable
}

// QueueMessageFor enqueues a body for one partner; one queued body is
// sent to them per round, and bodies must fit onion.BodySize.
func (u *User) QueueMessageFor(partner group.Point, body []byte) error {
	if len(body) > onion.BodySize {
		return fmt.Errorf("client: body %d bytes exceeds %d", len(body), onion.BodySize)
	}
	for _, p := range u.partners {
		if p.Equal(partner) {
			key := string(partner.Bytes())
			u.outbox[key] = append(u.outbox[key], append([]byte(nil), body...))
			return nil
		}
	}
	return ErrNotConversing
}

// MeetingChain returns the chain shared with the single active
// partner; with several partners use MeetingChains.
func (u *User) MeetingChain() (int, error) {
	if len(u.partners) != 1 {
		return 0, ErrNotConversing
	}
	for c := range u.partners {
		return c, nil
	}
	return 0, ErrNotConversing // unreachable
}

// MeetingChains maps each active partner to the chain carrying that
// conversation.
func (u *User) MeetingChains() map[int]group.Point {
	out := make(map[int]group.Point, len(u.partners))
	for c, p := range u.partners {
		out[c] = p
	}
	return out
}

// Rebalance re-derives the user's conversation placement under a new
// chain-selection plan, after the network re-forms chains for a new
// epoch (eviction of a blamed server changes n, which changes both
// group membership and meeting chains). Every partner is re-mapped to
// the pair's meeting chain under the new plan; if two partners now
// collide on one chain — the clash XRD cannot multiplex (§9) — all
// but the first (by partner key order, so both sides agree) are
// dropped and returned. Dropped partners' keys are retained so their
// in-flight messages still decrypt.
func (u *User) Rebalance(plan *chainsel.Plan) (dropped []group.Point) {
	old := u.partners
	u.plan = plan
	u.partners = make(map[int]group.Point, len(old))
	// Builds made so far were wrapped against the old epoch's chain
	// keys, so any of them not yet executed will be rebuilt; mark
	// their drained bodies restorable.
	for _, d := range u.drained {
		d.stale = true
	}

	// Deterministic order: both ends of every conversation, and every
	// replica of this user, resolve clashes identically.
	ps := make([]group.Point, 0, len(old))
	for _, p := range old {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool {
		return string(ps[i].Bytes()) < string(ps[j].Bytes())
	})
	for _, p := range ps {
		meeting := plan.MeetingChainForUsers(u.Mailbox(), p.Bytes())
		if _, taken := u.partners[meeting]; taken {
			u.retainFormer(p)
			delete(u.outbox, string(p.Bytes()))
			dropped = append(dropped, p)
			continue
		}
		u.partners[meeting] = p
	}
	return dropped
}

// ChainMessage is one submission addressed to one chain.
type ChainMessage struct {
	Chain int
	Sub   onion.Submission
}

// RoundOutput is everything a user sends in round ρ: her messages for
// the current round and the cover messages the servers will use in
// round ρ+1 if she goes offline (§5.3.3).
type RoundOutput struct {
	Round   uint64
	Current []ChainMessage
	Cover   []ChainMessage
}

// BuildRound produces the user's submissions for round rho and her
// covers for round rho+1. Chain parameters for both rounds must be
// available from src (the coordinator announces round ρ+1's inner
// keys during round ρ).
//
// A build's submissions are only valid for the epoch they were built
// in, so the caller (the gateway shard for in-process users) reuses a
// round's output on a same-epoch retry rather than calling BuildRound
// twice; after an epoch re-formation the round is rebuilt here, and
// the bodies its stale predecessor drained are restored first.
func (u *User) BuildRound(rho uint64, src ParamsSource) (*RoundOutput, error) {
	u.restoreDrained(rho)
	cur, err := u.buildLane(rho, LaneCurrent, src)
	if err != nil {
		return nil, fmt.Errorf("client: building round %d: %w", rho, err)
	}
	cover, err := u.buildLane(rho+1, LaneCover, src)
	if err != nil {
		return nil, fmt.Errorf("client: building covers for round %d: %w", rho+1, err)
	}
	for r := range u.drained {
		if r+2 <= rho {
			delete(u.drained, r)
		}
	}
	return &RoundOutput{Round: rho, Current: cur, Cover: cover}, nil
}

// restoreDrained pushes back every outbox body consumed by a stale
// build for round rho or later. It runs when rho is built fresh,
// which proves no round ≥ rho has executed — whatever those stale
// builds drained was never delivered. Later rounds' bodies are
// restored first so the queue ends up in original send order.
func (u *User) restoreDrained(rho uint64) {
	var rounds []uint64
	for r, d := range u.drained {
		if r >= rho && d.stale {
			rounds = append(rounds, r)
		}
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] > rounds[j] })
	for _, r := range rounds {
		for pk, body := range u.drained[r].bodies {
			u.outbox[pk] = append([][]byte{body}, u.outbox[pk]...)
		}
		delete(u.drained, r)
	}
}

// buildLane constructs the ℓ messages of one lane for the given
// round: the fresh messages (LaneCurrent) or the covers (LaneCover).
// A cover conversation message carries KindOffline so each partner
// learns the sender went away if it is ever used.
func (u *User) buildLane(round uint64, lane byte, src ParamsSource) ([]ChainMessage, error) {
	// The chain-layer nonce is always lane 0: every message processed
	// in round τ is mixed under RoundNonce(τ, 0) regardless of when
	// it was built. Only the mailbox layer is lane-separated.
	mailboxNonce := aead.RoundNonce(round, lane)
	chainNonce := aead.RoundNonce(round, LaneCurrent)

	chains := u.Chains()
	out := make([]ChainMessage, 0, len(chains))
	used := make(map[int]bool, len(u.partners)) // first occurrence of a chain carries its conversation
	for _, chain := range chains {
		params, err := src.ChainParams(chain, round)
		if err != nil {
			return nil, err
		}
		var msg []byte
		if partner, ok := u.partners[chain]; ok && !used[chain] {
			used[chain] = true
			msg, err = u.conversationMessage(round, partner, lane, mailboxNonce)
		} else {
			msg, err = u.loopbackMessage(chain, mailboxNonce)
		}
		if err != nil {
			return nil, err
		}
		sub, err := onion.WrapAHS(u.scheme, params.InnerAggregate, params.MixKeys, round, chain, chainNonce, msg)
		if err != nil {
			return nil, err
		}
		out = append(out, ChainMessage{Chain: chain, Sub: sub})
	}
	return out, nil
}

// conversationMessage builds the message for one partner: a fresh
// body from that partner's outbox (possibly empty) for the current
// lane, or the KindOffline signal for the cover lane. A popped body
// is recorded in drained so a discarded build's bodies can be
// restored (see restoreDrained).
func (u *User) conversationMessage(round uint64, partner group.Point, lane byte, nonce [aead.NonceSize]byte) ([]byte, error) {
	shared := group.DH(partner, u.identity.Private)
	key := kdf.ConversationKey(shared, partner.Bytes())
	payload := onion.Payload{Kind: onion.KindConversation}
	if lane == LaneCover {
		payload.Kind = onion.KindOffline
	} else {
		pk := string(partner.Bytes())
		if q := u.outbox[pk]; len(q) > 0 {
			payload.Body = q[0]
			u.outbox[pk] = q[1:]
			if u.drained == nil {
				u.drained = make(map[uint64]*drainRecord, 2)
			}
			if u.drained[round] == nil {
				u.drained[round] = &drainRecord{bodies: make(map[string][]byte, 1)}
			}
			u.drained[round].bodies[pk] = payload.Body
		}
	}
	return onion.SealMailboxMessage(u.scheme, key, nonce, partner, payload)
}

// loopbackMessage builds a dummy message back to the user's own
// mailbox under the chain-specific loopback key (§5.3.2 step 1a).
func (u *User) loopbackMessage(chain int, nonce [aead.NonceSize]byte) ([]byte, error) {
	key := kdf.LoopbackKey(u.loopbackSecret, chain)
	return onion.SealMailboxMessage(u.scheme, key, nonce, u.identity.Public, onion.Payload{Kind: onion.KindLoopback})
}

// Received is one decrypted mailbox message.
type Received struct {
	Kind onion.Kind
	Body []byte
	// FromPartner reports the message decrypted under a current
	// conversation key rather than a loopback key; From identifies
	// the partner.
	FromPartner bool
	From        group.Point
	// FromFormerPartner reports a straggler from an already-ended
	// conversation (e.g. the former partner's banked covers).
	FromFormerPartner bool
}

// OpenMailbox decrypts the round's mailbox download. Messages are
// tried against every active partner's conversation key, the retained
// former partners' keys, and every chain-specific loopback key, in
// both lanes (a partner's cover is sealed in the cover lane).
// Undecryptable messages are counted; they indicate tampering or
// misdelivery and never happen in honest runs.
//
// A KindOffline message from a partner ends that conversation
// locally, mirroring §5.3.3: from the next round the user sends a
// loopback on that chain, so the pair's disappearance is
// unobservable.
// keyedPartner pairs a partner with the derived inbound key.
type keyedPartner struct {
	p   group.Point
	key kdf.Key
}

func (u *User) OpenMailbox(rho uint64, msgs [][]byte) (received []Received, undecryptable int) {
	actives := make([]keyedPartner, 0, len(u.partners))
	for _, p := range u.partners {
		shared := group.DH(p, u.identity.Private)
		actives = append(actives, keyedPartner{p, kdf.ConversationKey(shared, u.Mailbox())})
	}
	formers := make([]keyedPartner, 0, len(u.former))
	for _, p := range u.former {
		shared := group.DH(p, u.identity.Private)
		formers = append(formers, keyedPartner{p, kdf.ConversationKey(shared, u.Mailbox())})
	}

	var gone []group.Point
	for _, m := range msgs {
		r, ok := u.openOne(rho, m, actives, formers)
		if !ok {
			undecryptable++
			continue
		}
		if r.FromPartner && r.Kind == onion.KindOffline {
			gone = append(gone, r.From)
		}
		received = append(received, r)
	}
	for _, p := range gone {
		u.EndConversation(p)
	}
	return received, undecryptable
}

func (u *User) openOne(rho uint64, m []byte, actives, formers []keyedPartner) (Received, bool) {
	for _, lane := range []byte{LaneCurrent, LaneCover} {
		nonce := aead.RoundNonce(rho, lane)
		for _, kp := range actives {
			if p, err := onion.OpenMailboxMessage(u.scheme, kp.key, nonce, m); err == nil {
				return Received{Kind: p.Kind, Body: p.Body, FromPartner: true, From: kp.p}, true
			}
		}
		for _, kp := range formers {
			if p, err := onion.OpenMailboxMessage(u.scheme, kp.key, nonce, m); err == nil {
				return Received{Kind: p.Kind, Body: p.Body, FromFormerPartner: true, From: kp.p}, true
			}
		}
		for _, chain := range distinct(u.Chains()) {
			key := kdf.LoopbackKey(u.loopbackSecret, chain)
			if p, err := onion.OpenMailboxMessage(u.scheme, key, nonce, m); err == nil {
				return Received{Kind: p.Kind, Body: p.Body}, true
			}
		}
	}
	return Received{}, false
}

func distinct(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Package aead provides the authenticated encryption scheme XRD
// relies on (§3.1): AEnc(s, nonce, m) and ADec(s, nonce, c).
//
// The default scheme is ChaCha20-Poly1305 (RFC 8439), the same
// construction NaCl used in the original prototype (§7), built from
// this repository's from-scratch internal/chacha20 and
// internal/poly1305. An AES-256-GCM scheme backed by the standard
// library is provided for the ablation benchmarks.
//
// XRD's security argument needs two properties of the AEAD (§3.1):
// (1) a correctly authenticating ciphertext cannot be produced without
// the key, and (2) the same ciphertext does not authenticate under two
// different keys except with negligible probability. Both hold for
// these encrypt-then-MAC-style schemes.
package aead

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/chacha20"
	"repro/internal/poly1305"
)

const (
	// KeySize is the symmetric key length.
	KeySize = 32
	// NonceSize is the nonce length.
	NonceSize = 12
	// Overhead is the ciphertext expansion (the Poly1305/GCM tag).
	Overhead = 16
)

// ErrAuth is returned when a ciphertext fails authentication. The mix
// servers translate it into the blame protocol (§6.4).
var ErrAuth = errors.New("aead: message authentication failed")

// Scheme is an authenticated encryption scheme with the XRD interface.
// Implementations must be safe for concurrent use.
type Scheme interface {
	// Seal encrypts and authenticates plaintext, appending the result
	// to dst. It implements the paper's AEnc(s, nonce, m).
	Seal(dst []byte, key *[KeySize]byte, nonce *[NonceSize]byte, plaintext []byte) []byte
	// Open authenticates and decrypts ciphertext, appending the
	// plaintext to dst. It implements ADec(s, nonce, c), returning
	// ErrAuth when b=0 in the paper's notation.
	Open(dst []byte, key *[KeySize]byte, nonce *[NonceSize]byte, ciphertext []byte) ([]byte, error)
	// Name identifies the scheme in logs and benchmarks.
	Name() string
}

// ChaCha20Poly1305 returns the default scheme used throughout XRD.
func ChaCha20Poly1305() Scheme { return chachaScheme{} }

// AESGCM returns an AES-256-GCM scheme used by the AEAD ablation
// benchmark.
func AESGCM() Scheme { return gcmScheme{} }

type chachaScheme struct{}

func (chachaScheme) Name() string { return "chacha20poly1305" }

func (chachaScheme) Seal(dst []byte, key *[KeySize]byte, nonce *[NonceSize]byte, plaintext []byte) []byte {
	otk := oneTimeKey(key, nonce)
	off := len(dst)
	dst = append(dst, plaintext...)
	ct := dst[off:]
	if err := chacha20.XORKeyStream(ct, ct, key[:], nonce[:], 1); err != nil {
		panic(fmt.Sprintf("aead: internal key size invariant broken: %v", err))
	}
	tag := computeTag(&otk, ct)
	return append(dst, tag[:]...)
}

func (chachaScheme) Open(dst []byte, key *[KeySize]byte, nonce *[NonceSize]byte, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < Overhead {
		return nil, ErrAuth
	}
	body := ciphertext[:len(ciphertext)-Overhead]
	tag := ciphertext[len(ciphertext)-Overhead:]
	otk := oneTimeKey(key, nonce)
	want := computeTag(&otk, body)
	if !tagEqual(tag, want[:]) {
		return nil, ErrAuth
	}
	off := len(dst)
	dst = append(dst, body...)
	pt := dst[off:]
	if err := chacha20.XORKeyStream(pt, pt, key[:], nonce[:], 1); err != nil {
		panic(fmt.Sprintf("aead: internal key size invariant broken: %v", err))
	}
	return dst, nil
}

func tagEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var acc byte
	for i := range a {
		acc |= a[i] ^ b[i]
	}
	return acc == 0
}

// oneTimeKey derives the per-(key,nonce) Poly1305 key from ChaCha20
// block 0 (RFC 8439 §2.6).
func oneTimeKey(key *[KeySize]byte, nonce *[NonceSize]byte) [poly1305.KeySize]byte {
	block, err := chacha20.Block(key[:], nonce[:], 0)
	if err != nil {
		panic(fmt.Sprintf("aead: internal key size invariant broken: %v", err))
	}
	var otk [poly1305.KeySize]byte
	copy(otk[:], block[:poly1305.KeySize])
	return otk
}

// computeTag MACs the ciphertext with no associated data, following
// the RFC 8439 §2.8 framing (pad16 and length trailer retained so the
// construction matches the standardized AEAD exactly).
func computeTag(otk *[poly1305.KeySize]byte, ciphertext []byte) [poly1305.TagSize]byte {
	m := poly1305.New(otk)
	// Zero-length AAD contributes nothing, not even padding.
	m.Write(ciphertext)
	if rem := len(ciphertext) % 16; rem != 0 {
		var pad [16]byte
		m.Write(pad[:16-rem])
	}
	var lens [16]byte
	binary.LittleEndian.PutUint64(lens[0:8], 0) // AAD length
	binary.LittleEndian.PutUint64(lens[8:16], uint64(len(ciphertext)))
	m.Write(lens[:])
	var tag [poly1305.TagSize]byte
	copy(tag[:], m.Sum(nil))
	return tag
}

type gcmScheme struct{}

func (gcmScheme) Name() string { return "aes256gcm" }

func newGCM(key *[KeySize]byte) cipher.AEAD {
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		panic(fmt.Sprintf("aead: aes key setup: %v", err))
	}
	g, err := cipher.NewGCM(blk)
	if err != nil {
		panic(fmt.Sprintf("aead: gcm setup: %v", err))
	}
	return g
}

func (gcmScheme) Seal(dst []byte, key *[KeySize]byte, nonce *[NonceSize]byte, plaintext []byte) []byte {
	return newGCM(key).Seal(dst, nonce[:], plaintext, nil)
}

func (gcmScheme) Open(dst []byte, key *[KeySize]byte, nonce *[NonceSize]byte, ciphertext []byte) ([]byte, error) {
	out, err := newGCM(key).Open(dst, nonce[:], ciphertext, nil)
	if err != nil {
		return nil, ErrAuth
	}
	return out, nil
}

// RoundNonce builds the deterministic nonce for round rho. XRD passes
// the round number as the AEAD nonce (§3.1); every key in the system
// is either fresh per message (onion and inner layers, via ephemeral
// DH) or used at most once per (round, lane), so nonces never repeat
// under one key. The lane byte separates the current-round messages
// from the cover messages pre-submitted for round rho+1 (§5.3.3).
func RoundNonce(rho uint64, lane byte) [NonceSize]byte {
	var n [NonceSize]byte
	binary.BigEndian.PutUint64(n[:8], rho)
	n[8] = lane
	return n
}

package aead

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// TestRFC8439AEADVector checks the full AEAD test vector from RFC 8439
// §2.8.2, restricted to empty AAD by re-deriving the expected tag: the
// RFC vector uses AAD, so here we check the ciphertext body (which is
// AAD-independent) and round-trip; the ciphertext body bytes are the
// published ones.
func TestRFC8439AEADCiphertextBody(t *testing.T) {
	key, _ := hex.DecodeString("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
	nonce, _ := hex.DecodeString("070000004041424344454647")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you " +
		"only one tip for the future, sunscreen would be it.")
	wantBody, _ := hex.DecodeString(
		"d31a8d34648e60db7b86afbc53ef7ec2" +
			"a4aded51296e08fea9e2b5a736ee62d6" +
			"3dbea45e8ca9671282fafb69da92728b" +
			"1a71de0a9e060b2905d6a5b67ecd3b36" +
			"92ddbd7f2d778b8c9803aee328091b58" +
			"fab324e4fad675945585808b4831d7bc" +
			"3ff4def08e4b7a9de576d26586cec64b" +
			"6116")

	var k [KeySize]byte
	var n [NonceSize]byte
	copy(k[:], key)
	copy(n[:], nonce)

	s := ChaCha20Poly1305()
	ct := s.Seal(nil, &k, &n, plaintext)
	if len(ct) != len(plaintext)+Overhead {
		t.Fatalf("ciphertext length = %d, want %d", len(ct), len(plaintext)+Overhead)
	}
	if !bytes.Equal(ct[:len(ct)-Overhead], wantBody) {
		t.Fatalf("ciphertext body mismatch\n got %x\nwant %x", ct[:len(ct)-Overhead], wantBody)
	}
	pt, err := s.Open(nil, &k, &n, ct)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(pt, plaintext) {
		t.Fatal("round trip failed")
	}
}

func schemes() []Scheme {
	return []Scheme{ChaCha20Poly1305(), AESGCM()}
}

func TestSealOpenRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			var k [KeySize]byte
			var n [NonceSize]byte
			if _, err := rand.Read(k[:]); err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{0, 1, 16, 255, 256, 1024} {
				msg := make([]byte, size)
				if _, err := rand.Read(msg); err != nil {
					t.Fatal(err)
				}
				ct := s.Seal(nil, &k, &n, msg)
				pt, err := s.Open(nil, &k, &n, ct)
				if err != nil {
					t.Fatalf("size %d: %v", size, err)
				}
				if !bytes.Equal(pt, msg) {
					t.Fatalf("size %d: plaintext mismatch", size)
				}
			}
		})
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	for _, s := range schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			var k [KeySize]byte
			var n [NonceSize]byte
			if _, err := rand.Read(k[:]); err != nil {
				t.Fatal(err)
			}
			msg := []byte("a fixed-size XRD message body, 256 bytes in the real system")
			ct := s.Seal(nil, &k, &n, msg)
			for i := 0; i < len(ct); i += 7 {
				bad := append([]byte(nil), ct...)
				bad[i] ^= 0x40
				if _, err := s.Open(nil, &k, &n, bad); err == nil {
					t.Fatalf("tampered ciphertext byte %d accepted", i)
				}
			}
		})
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	// Property (2) from §3.1: a ciphertext must not authenticate under
	// a second key.
	for _, s := range schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			var k1, k2 [KeySize]byte
			var n [NonceSize]byte
			if _, err := rand.Read(k1[:]); err != nil {
				t.Fatal(err)
			}
			if _, err := rand.Read(k2[:]); err != nil {
				t.Fatal(err)
			}
			ct := s.Seal(nil, &k1, &n, []byte("for key one only"))
			if _, err := s.Open(nil, &k2, &n, ct); err == nil {
				t.Fatal("ciphertext authenticated under a second key")
			}
		})
	}
}

func TestOpenRejectsWrongNonce(t *testing.T) {
	for _, s := range schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			var k [KeySize]byte
			if _, err := rand.Read(k[:]); err != nil {
				t.Fatal(err)
			}
			n1 := RoundNonce(7, 0)
			n2 := RoundNonce(8, 0)
			ct := s.Seal(nil, &k, &n1, []byte("round-bound message"))
			if _, err := s.Open(nil, &k, &n2, ct); err == nil {
				t.Fatal("replay into another round accepted")
			}
		})
	}
}

func TestOpenRejectsTruncation(t *testing.T) {
	for _, s := range schemes() {
		t.Run(s.Name(), func(t *testing.T) {
			var k [KeySize]byte
			var n [NonceSize]byte
			ct := s.Seal(nil, &k, &n, []byte("body"))
			for cut := 1; cut <= len(ct); cut++ {
				if _, err := s.Open(nil, &k, &n, ct[:len(ct)-cut]); err == nil {
					t.Fatalf("truncated ciphertext (-%d) accepted", cut)
				}
			}
		})
	}
}

func TestSealAppendsToDst(t *testing.T) {
	var k [KeySize]byte
	var n [NonceSize]byte
	s := ChaCha20Poly1305()
	prefix := []byte("prefix")
	out := s.Seal(append([]byte(nil), prefix...), &k, &n, []byte("msg"))
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Seal did not append to dst")
	}
	pt, err := s.Open(nil, &k, &n, out[len(prefix):])
	if err != nil || !bytes.Equal(pt, []byte("msg")) {
		t.Fatalf("Open after append: %v", err)
	}
}

func TestRoundNonceUniqueness(t *testing.T) {
	seen := make(map[[NonceSize]byte]bool)
	for rho := uint64(0); rho < 100; rho++ {
		for lane := byte(0); lane < 2; lane++ {
			n := RoundNonce(rho, lane)
			if seen[n] {
				t.Fatalf("nonce collision at round %d lane %d", rho, lane)
			}
			seen[n] = true
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := ChaCha20Poly1305()
	f := func(key [KeySize]byte, rho uint64, msg []byte) bool {
		n := RoundNonce(rho, 1)
		ct := s.Seal(nil, &key, &n, msg)
		pt, err := s.Open(nil, &key, &n, ct)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemesInteroperabilityIsolation(t *testing.T) {
	// A ciphertext from one scheme must not open under the other.
	var k [KeySize]byte
	var n [NonceSize]byte
	ct := ChaCha20Poly1305().Seal(nil, &k, &n, []byte("scheme-bound"))
	if _, err := AESGCM().Open(nil, &k, &n, ct); err == nil {
		t.Fatal("cross-scheme open succeeded")
	}
}

func BenchmarkSeal256(b *testing.B) {
	for _, s := range schemes() {
		b.Run(s.Name(), func(b *testing.B) {
			var k [KeySize]byte
			var n [NonceSize]byte
			msg := make([]byte, 256)
			buf := make([]byte, 0, 256+Overhead)
			b.SetBytes(256)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Seal(buf[:0], &k, &n, msg)
			}
		})
	}
}

func BenchmarkOpen256(b *testing.B) {
	for _, s := range schemes() {
		b.Run(s.Name(), func(b *testing.B) {
			var k [KeySize]byte
			var n [NonceSize]byte
			ct := s.Seal(nil, &k, &n, make([]byte, 256))
			buf := make([]byte, 0, 256)
			b.SetBytes(256)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Open(buf[:0], &k, &n, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Package churn simulates the availability experiment of §8.3
// (Figure 8): the fraction of conversations that fail in a round when
// servers crash at a given churn rate.
//
// A conversation between two users rides exactly one chain (their
// meeting chain, §5.3.2); it fails for the round iff that chain
// contains at least one crashed server. The simulation samples server
// crash sets and measures the failure fraction over the actual
// topology and chain-selection plan, which the closed form
// 1−(1−c)^k (model.ConversationFailureRate) approximates.
package churn

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/chainsel"
	"repro/internal/topology"
)

// Evictor tracks servers expelled from a deployment across epochs.
// When a chain halts with blame (§6.4), the orchestrator evicts the
// blamed server here and re-forms chains over the survivors; the
// evicted set only grows, so a byzantine server cannot rejoin by
// surviving one re-formation.
type Evictor struct {
	mu      sync.Mutex
	evicted map[int]bool
}

// NewEvictor returns an empty evictor.
func NewEvictor() *Evictor {
	return &Evictor{evicted: make(map[int]bool)}
}

// Evict marks a server as expelled. It reports whether the server was
// newly evicted (false = already gone, the duplicate blame of a
// replayed round).
func (e *Evictor) Evict(server int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.evicted[server] {
		return false
	}
	e.evicted[server] = true
	return true
}

// IsEvicted reports whether a server has been expelled.
func (e *Evictor) IsEvicted(server int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evicted[server]
}

// Evicted returns the expelled servers in ascending order.
func (e *Evictor) Evicted() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, 0, len(e.evicted))
	for s := range e.evicted {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Survivors filters the evicted servers out of a server id list,
// preserving order: the input to the next epoch's topology build.
func (e *Evictor) Survivors(servers []int) []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, 0, len(servers))
	for _, s := range servers {
		if !e.evicted[s] {
			out = append(out, s)
		}
	}
	return out
}

// Config parameterises a churn simulation.
type Config struct {
	// NumServers is N (chains n = N).
	NumServers int
	// F is the assumed malicious fraction used only for sizing k.
	F float64
	// ChainLengthOverride fixes k directly (0 = derive from F).
	ChainLengthOverride int
	// ChurnRate is the per-round probability that a server fails.
	ChurnRate float64
	// Pairs is the number of conversing user pairs to sample
	// (paper: all of 2M users in conversations; sampling pairs
	// estimates the same fraction).
	Pairs int
	// Trials is the number of independent crash sets to average over.
	Trials int
	// Seed makes the simulation reproducible.
	Seed int64
}

// Result is the outcome of a churn simulation.
type Result struct {
	// FailureRate is the mean fraction of sampled conversations whose
	// meeting chain contained a crashed server.
	FailureRate float64
	// ChainFailureRate is the mean fraction of chains with at least
	// one crashed server.
	ChainFailureRate float64
	// ChainLength is the k used.
	ChainLength int
}

// Simulate runs the Monte-Carlo experiment over a topology it builds
// itself from cfg (the paper's Figure 8 setting, fresh contiguous
// servers).
func Simulate(cfg Config) (*Result, error) {
	topo, err := topology.Build(topology.Config{
		NumServers:          cfg.NumServers,
		F:                   cfg.F,
		ChainLengthOverride: cfg.ChainLengthOverride,
		Seed:                []byte(fmt.Sprintf("churn-sim-%d", cfg.Seed)),
	})
	if err != nil {
		return nil, fmt.Errorf("churn: building topology: %w", err)
	}
	plan, err := chainsel.NewPlan(len(topo.Chains))
	if err != nil {
		return nil, fmt.Errorf("churn: building plan: %w", err)
	}
	return SimulateOn(topo, plan, cfg)
}

// SimulateOn runs the experiment over an existing topology and chain
// selection plan — the deployed hop-transport topology rather than a
// synthetic one. Crash sampling iterates the topology's actual server
// id set, so it stays correct for the sparse ids of a post-eviction
// epoch.
func SimulateOn(topo *topology.Topology, plan *chainsel.Plan, cfg Config) (*Result, error) {
	if cfg.Pairs <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("churn: need positive Pairs and Trials, got %d/%d", cfg.Pairs, cfg.Trials)
	}
	if cfg.ChurnRate < 0 || cfg.ChurnRate > 1 {
		return nil, fmt.Errorf("churn: churn rate %v outside [0,1]", cfg.ChurnRate)
	}
	if plan.NumChains != len(topo.Chains) {
		return nil, fmt.Errorf("churn: plan covers %d chains, topology has %d", plan.NumChains, len(topo.Chains))
	}
	servers := topo.Servers
	if len(servers) == 0 {
		// Topologies predating the explicit id set are contiguous.
		servers = make([]int, topo.NumServers)
		for i := range servers {
			servers[i] = i
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Pre-sample the conversing pairs' meeting chains. Group
	// membership is uniform (hash of public key), so sampling groups
	// uniformly is faithful.
	meeting := make([]int, cfg.Pairs)
	for i := range meeting {
		a := rng.Intn(plan.NumGroups())
		b := rng.Intn(plan.NumGroups())
		meeting[i] = plan.MeetingChain(a, b)
	}

	var failSum, chainFailSum float64
	failedChain := make([]bool, len(topo.Chains))
	for t := 0; t < cfg.Trials; t++ {
		// Sample the crash set over the actual server ids.
		crashed := make(map[int]bool)
		for _, s := range servers {
			if rng.Float64() < cfg.ChurnRate {
				crashed[s] = true
			}
		}
		for i := range failedChain {
			failedChain[i] = false
		}
		nChainFail := 0
		for _, c := range topo.FailedChains(crashed) {
			failedChain[c] = true
			nChainFail++
		}
		nFail := 0
		for _, m := range meeting {
			if failedChain[m] {
				nFail++
			}
		}
		failSum += float64(nFail) / float64(cfg.Pairs)
		chainFailSum += float64(nChainFail) / float64(len(topo.Chains))
	}
	return &Result{
		FailureRate:      failSum / float64(cfg.Trials),
		ChainFailureRate: chainFailSum / float64(cfg.Trials),
		ChainLength:      topo.ChainLength,
	}, nil
}

// Sweep runs Simulate over a set of churn rates, producing one
// Figure 8 series.
func Sweep(base Config, rates []float64) ([]Result, error) {
	out := make([]Result, 0, len(rates))
	for i, r := range rates {
		cfg := base
		cfg.ChurnRate = r
		cfg.Seed = base.Seed + int64(i)*7919
		res, err := Simulate(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}
	return out, nil
}

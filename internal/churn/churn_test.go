package churn

import (
	"math"
	"testing"

	"repro/internal/model"
)

func baseConfig() Config {
	return Config{
		NumServers: 100,
		F:          0.2,
		Pairs:      5_000,
		Trials:     30,
		Seed:       42,
	}
}

func TestZeroChurnZeroFailures(t *testing.T) {
	cfg := baseConfig()
	cfg.ChurnRate = 0
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureRate != 0 || res.ChainFailureRate != 0 {
		t.Fatalf("failures with zero churn: %+v", res)
	}
}

func TestFullChurnAllFail(t *testing.T) {
	cfg := baseConfig()
	cfg.ChurnRate = 1
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureRate != 1 {
		t.Fatalf("full churn failure rate = %v", res.FailureRate)
	}
}

// TestPaperOnePercentChurn reproduces §8.3's headline: at 1% server
// churn (Tor-like) about 27% of conversations fail in a round.
func TestPaperOnePercentChurn(t *testing.T) {
	cfg := baseConfig()
	cfg.ChurnRate = 0.01
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureRate < 0.20 || res.FailureRate > 0.35 {
		t.Fatalf("failure rate at 1%% churn = %.3f, paper reports ≈0.27", res.FailureRate)
	}
}

// TestPaperFourPercentChurn: ≈70% at 4% churn (§8.3).
func TestPaperFourPercentChurn(t *testing.T) {
	cfg := baseConfig()
	cfg.ChurnRate = 0.04
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureRate < 0.60 || res.FailureRate > 0.82 {
		t.Fatalf("failure rate at 4%% churn = %.3f, paper reports ≈0.70", res.FailureRate)
	}
}

// TestMatchesClosedForm: the Monte-Carlo result must track the
// 1−(1−c)^k closed form within sampling noise.
func TestMatchesClosedForm(t *testing.T) {
	for _, rate := range []float64{0.005, 0.01, 0.02, 0.04} {
		cfg := baseConfig()
		cfg.ChurnRate = rate
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := model.ConversationFailureRate(rate, res.ChainLength)
		if math.Abs(res.FailureRate-want) > 0.06 {
			t.Fatalf("rate %.3f: simulated %.3f vs closed form %.3f", rate, res.FailureRate, want)
		}
	}
}

// TestMoreServersFailMore: Figure 8 shows larger deployments fail
// slightly more at equal churn because k grows with n.
func TestMoreServersFailMore(t *testing.T) {
	rates := []float64{}
	for _, n := range []int{100, 500, 1000} {
		cfg := baseConfig()
		cfg.NumServers = n
		cfg.ChurnRate = 0.02
		cfg.Pairs = 2000
		cfg.Trials = 20
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rates = append(rates, res.FailureRate)
	}
	// Monotone within noise: allow tiny decreases but require the
	// 1000-server rate to be at least the 100-server rate - noise.
	if rates[2] < rates[0]-0.05 {
		t.Fatalf("failure rates %v should not fall with more servers", rates)
	}
}

func TestMonotoneInChurn(t *testing.T) {
	results, err := Sweep(baseConfig(), []float64{0.005, 0.01, 0.02, 0.03, 0.04})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].FailureRate+0.03 < results[i-1].FailureRate {
			t.Fatalf("failure rate fell from %.3f to %.3f with more churn",
				results[i-1].FailureRate, results[i].FailureRate)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Pairs = 0
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("zero pairs accepted")
	}
	cfg = baseConfig()
	cfg.ChurnRate = 1.5
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("churn > 1 accepted")
	}
	cfg = baseConfig()
	cfg.Trials = 0
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	cfg := baseConfig()
	cfg.ChurnRate = 0.02
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FailureRate != b.FailureRate {
		t.Fatal("same seed produced different results")
	}
}

func BenchmarkSimulate(b *testing.B) {
	cfg := baseConfig()
	cfg.ChurnRate = 0.01
	cfg.Trials = 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Package chacha20 implements the ChaCha20 stream cipher from
// RFC 8439.
//
// The XRD prototype used NaCl for authenticated encryption, which is
// built on ChaCha20 and Poly1305 (§7). Because this reproduction is
// restricted to the standard library, we implement the same primitives
// from the RFC and validate against its test vectors.
package chacha20

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

const (
	// KeySize is the ChaCha20 key length in bytes.
	KeySize = 32
	// NonceSize is the ChaCha20 nonce length in bytes (96-bit IETF
	// variant).
	NonceSize = 12
	// BlockSize is the keystream block length in bytes.
	BlockSize = 64
)

// ErrKeySize is returned for keys or nonces of the wrong length.
var ErrKeySize = errors.New("chacha20: wrong key or nonce length")

// sigma is the "expand 32-byte k" constant.
var sigma = [4]uint32{0x61707865, 0x3320646e, 0x79622d32, 0x6b206574}

func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d = bits.RotateLeft32(d^a, 16)
	c += d
	b = bits.RotateLeft32(b^c, 12)
	a += b
	d = bits.RotateLeft32(d^a, 8)
	c += d
	b = bits.RotateLeft32(b^c, 7)
	return a, b, c, d
}

// block computes one 64-byte keystream block into out.
func block(key *[8]uint32, counter uint32, nonce *[3]uint32, out *[BlockSize]byte) {
	s0, s1, s2, s3 := sigma[0], sigma[1], sigma[2], sigma[3]
	s4, s5, s6, s7 := key[0], key[1], key[2], key[3]
	s8, s9, s10, s11 := key[4], key[5], key[6], key[7]
	s12, s13, s14, s15 := counter, nonce[0], nonce[1], nonce[2]

	x0, x1, x2, x3 := s0, s1, s2, s3
	x4, x5, x6, x7 := s4, s5, s6, s7
	x8, x9, x10, x11 := s8, s9, s10, s11
	x12, x13, x14, x15 := s12, s13, s14, s15

	for i := 0; i < 10; i++ {
		// Column rounds.
		x0, x4, x8, x12 = quarterRound(x0, x4, x8, x12)
		x1, x5, x9, x13 = quarterRound(x1, x5, x9, x13)
		x2, x6, x10, x14 = quarterRound(x2, x6, x10, x14)
		x3, x7, x11, x15 = quarterRound(x3, x7, x11, x15)
		// Diagonal rounds.
		x0, x5, x10, x15 = quarterRound(x0, x5, x10, x15)
		x1, x6, x11, x12 = quarterRound(x1, x6, x11, x12)
		x2, x7, x8, x13 = quarterRound(x2, x7, x8, x13)
		x3, x4, x9, x14 = quarterRound(x3, x4, x9, x14)
	}

	binary.LittleEndian.PutUint32(out[0:], x0+s0)
	binary.LittleEndian.PutUint32(out[4:], x1+s1)
	binary.LittleEndian.PutUint32(out[8:], x2+s2)
	binary.LittleEndian.PutUint32(out[12:], x3+s3)
	binary.LittleEndian.PutUint32(out[16:], x4+s4)
	binary.LittleEndian.PutUint32(out[20:], x5+s5)
	binary.LittleEndian.PutUint32(out[24:], x6+s6)
	binary.LittleEndian.PutUint32(out[28:], x7+s7)
	binary.LittleEndian.PutUint32(out[32:], x8+s8)
	binary.LittleEndian.PutUint32(out[36:], x9+s9)
	binary.LittleEndian.PutUint32(out[40:], x10+s10)
	binary.LittleEndian.PutUint32(out[44:], x11+s11)
	binary.LittleEndian.PutUint32(out[48:], x12+s12)
	binary.LittleEndian.PutUint32(out[52:], x13+s13)
	binary.LittleEndian.PutUint32(out[56:], x14+s14)
	binary.LittleEndian.PutUint32(out[60:], x15+s15)
}

func loadState(key, nonce []byte) ([8]uint32, [3]uint32, error) {
	var k [8]uint32
	var n [3]uint32
	if len(key) != KeySize || len(nonce) != NonceSize {
		return k, n, ErrKeySize
	}
	for i := range k {
		k[i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	for i := range n {
		n[i] = binary.LittleEndian.Uint32(nonce[4*i:])
	}
	return k, n, nil
}

// XORKeyStream XORs src with the ChaCha20 keystream for (key, nonce)
// starting at the given block counter and writes the result to dst.
// dst must be at least as long as src and may alias it exactly.
func XORKeyStream(dst, src, key, nonce []byte, counter uint32) error {
	k, n, err := loadState(key, nonce)
	if err != nil {
		return err
	}
	if len(dst) < len(src) {
		return errors.New("chacha20: dst shorter than src")
	}
	var ks [BlockSize]byte
	for len(src) > 0 {
		block(&k, counter, &n, &ks)
		counter++
		step := len(src)
		if step > BlockSize {
			step = BlockSize
		}
		for i := 0; i < step; i++ {
			dst[i] = src[i] ^ ks[i]
		}
		src = src[step:]
		dst = dst[step:]
	}
	return nil
}

// Block exposes a single keystream block; the AEAD uses block 0 to
// derive the one-time Poly1305 key (RFC 8439 §2.6).
func Block(key, nonce []byte, counter uint32) ([BlockSize]byte, error) {
	var out [BlockSize]byte
	k, n, err := loadState(key, nonce)
	if err != nil {
		return out, err
	}
	block(&k, counter, &n, &out)
	return out, nil
}

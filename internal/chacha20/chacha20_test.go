package chacha20

import (
	"bytes"
	"encoding/hex"
	"testing"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex: %v", err)
	}
	return b
}

// TestRFC8439BlockFunction checks the keystream block test vector from
// RFC 8439 §2.3.2.
func TestRFC8439BlockFunction(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := unhex(t, "000000090000004a00000000")
	want := unhex(t,
		"10f1e7e4d13b5915500fdd1fa32071c4"+
			"c7d1f4c733c068030422aa9ac3d46c4e"+
			"d2826446079faa0914c2d705d98b02a2"+
			"b5129cd1de164eb9cbd083e8a2503c4e")
	got, err := Block(key, nonce, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:], want) {
		t.Fatalf("block = %x\nwant    %x", got, want)
	}
}

// TestRFC8439Encryption checks the cipher test vector from RFC 8439
// §2.4.2 ("sunscreen" plaintext).
func TestRFC8439Encryption(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce := unhex(t, "000000000000004a00000000")
	plaintext := []byte("Ladies and Gentlemen of the class of '99: If I could offer you " +
		"only one tip for the future, sunscreen would be it.")
	want := unhex(t,
		"6e2e359a2568f98041ba0728dd0d6981"+
			"e97e7aec1d4360c20a27afccfd9fae0b"+
			"f91b65c5524733ab8f593dabcd62b357"+
			"1639d624e65152ab8f530c359f0861d8"+
			"07ca0dbf500d6a6156a38e088a22b65e"+
			"52bc514d16ccf806818ce91ab7793736"+
			"5af90bbf74a35be6b40b8eedf2785e42"+
			"874d")
	got := make([]byte, len(plaintext))
	if err := XORKeyStream(got, plaintext, key, nonce, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ciphertext mismatch\n got %x\nwant %x", got, want)
	}
	// Decrypting must give back the plaintext.
	back := make([]byte, len(got))
	if err := XORKeyStream(back, got, key, nonce, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plaintext) {
		t.Fatal("decryption did not invert encryption")
	}
}

func TestXORKeyStreamInPlace(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	msg := []byte("in-place encryption must match out-of-place encryption exactly")
	outOfPlace := make([]byte, len(msg))
	if err := XORKeyStream(outOfPlace, msg, key, nonce, 0); err != nil {
		t.Fatal(err)
	}
	inPlace := append([]byte(nil), msg...)
	if err := XORKeyStream(inPlace, inPlace, key, nonce, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inPlace, outOfPlace) {
		t.Fatal("in-place result differs")
	}
}

func TestCounterAdvancesPerBlock(t *testing.T) {
	key := make([]byte, KeySize)
	key[0] = 7
	nonce := make([]byte, NonceSize)
	long := make([]byte, 3*BlockSize)
	out := make([]byte, len(long))
	if err := XORKeyStream(out, long, key, nonce, 5); err != nil {
		t.Fatal(err)
	}
	// Encrypting the tail alone with the advanced counter must agree.
	tail := make([]byte, BlockSize)
	if err := XORKeyStream(tail, long[2*BlockSize:], key, nonce, 7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, out[2*BlockSize:]) {
		t.Fatal("counter does not advance one per block")
	}
}

func TestShortAndUnalignedLengths(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	for _, n := range []int{0, 1, 15, 63, 64, 65, 127, 128, 300} {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i)
		}
		dst := make([]byte, n)
		if err := XORKeyStream(dst, src, key, nonce, 0); err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		back := make([]byte, n)
		if err := XORKeyStream(back, dst, key, nonce, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, src) {
			t.Fatalf("len %d: round trip failed", n)
		}
	}
}

func TestBadKeyOrNonceLength(t *testing.T) {
	if err := XORKeyStream(nil, nil, make([]byte, 16), make([]byte, NonceSize), 0); err == nil {
		t.Fatal("short key accepted")
	}
	if err := XORKeyStream(nil, nil, make([]byte, KeySize), make([]byte, 8), 0); err == nil {
		t.Fatal("short nonce accepted")
	}
	if _, err := Block(make([]byte, 31), make([]byte, NonceSize), 0); err == nil {
		t.Fatal("Block accepted short key")
	}
}

func TestDistinctNoncesProduceDistinctStreams(t *testing.T) {
	key := make([]byte, KeySize)
	n1 := make([]byte, NonceSize)
	n2 := make([]byte, NonceSize)
	n2[11] = 1
	zero := make([]byte, BlockSize)
	s1 := make([]byte, BlockSize)
	s2 := make([]byte, BlockSize)
	if err := XORKeyStream(s1, zero, key, n1, 0); err != nil {
		t.Fatal(err)
	}
	if err := XORKeyStream(s2, zero, key, n2, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(s1, s2) {
		t.Fatal("different nonces produced identical keystreams")
	}
}

func BenchmarkXORKeyStream1K(b *testing.B) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := XORKeyStream(buf, buf, key, nonce, 0); err != nil {
			b.Fatal(err)
		}
	}
}

package store

import (
	"repro/internal/obs"
)

// Durable-store metrics, process-wide: a gateway process runs one
// Durable, so the package-level gauge is that store's state. The
// fsync histogram is the one that matters operationally — every
// round commit pays at least one fsync, so its tail is a floor on
// round latency for a durable deployment.
var (
	obsWalAppends      = obs.GetOrCreateCounter("xrd_wal_appends_total")
	obsWalBytes        = obs.GetOrCreateCounter("xrd_wal_bytes_total")
	obsWalFsyncSeconds = obs.GetOrCreateHistogram("xrd_wal_fsync_seconds")
	obsWalSegments     = obs.GetOrCreateGauge("xrd_wal_segments")
	obsSnapshotSeconds = obs.GetOrCreateHistogram("xrd_store_snapshot_seconds")
	obsSnapshotBytes   = obs.GetOrCreateGauge("xrd_store_snapshot_bytes")
)

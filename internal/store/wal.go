package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WAL segment format. A segment file is the 8-byte magic followed by
// frames:
//
//	[4B big-endian length n][4B CRC-32C][n bytes: 1B op + payload]
//
// The checksum covers the n framed bytes, so a frame is valid only if
// its length field, op and payload all survived intact. A crash
// mid-append leaves a partial frame (or a frame whose checksum does
// not match the bytes that made it to disk); replay cuts the segment
// at the last intact frame and reports the discarded byte count.
// Nothing after the first bad frame is trusted — once the tail is
// torn, later bytes have no framing anchor.
const (
	walMagic  = "XRDWAL01"
	frameHead = 8 // length + checksum
	// maxRecordBytes bounds one record (op + payload). A length field
	// beyond it is treated as tail corruption, not an allocation
	// request.
	maxRecordBytes = 64 << 20
)

// crcTable is CRC-32C (Castagnoli), the checksum with hardware
// support on every platform the deployment targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Durable store.
type Options struct {
	// SegmentBytes rolls the WAL to a fresh segment once the current
	// one exceeds this size; zero means 4 MiB.
	SegmentBytes int64
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 4 << 20
	}
	return o.SegmentBytes
}

// Durable is the file-backed Store: a directory of WAL segments and
// snapshots. Concurrent use is serialised internally; one process
// must own a data directory at a time (the deployment scripts give
// every gateway shard its own -data-dir).
type Durable struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File // current segment, opened for append
	seq    uint64   // current segment sequence number
	size   int64    // bytes written to the current segment
	closed bool
}

var _ Store = (*Durable)(nil)

func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%016d.log", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016d.dat", seq) }

// parseSeq extracts the sequence number from a segment or snapshot
// file name, reporting whether the name matches the given prefix.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return n, err == nil
}

// Open loads (or creates) a data directory: the newest intact
// snapshot is read, every segment at or after it is replayed —
// truncating torn tails — and the store is left positioned to append.
// Stale files a crash may have left behind (segments fully covered by
// the snapshot, superseded snapshots, abandoned temp files) are
// removed.
func Open(dir string, opts Options) (*Durable, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	var segs, snaps []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A crash mid-snapshot leaves the temp file; it was never
			// installed, so it holds nothing recovery may use.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if n, ok := parseSeq(name, "wal-", ".log"); ok {
			segs = append(segs, n)
		}
		if n, ok := parseSeq(name, "snap-", ".dat"); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	rec := &Recovered{}
	// Newest intact snapshot wins. An older snapshot is only
	// consulted when the newest is damaged — possible if the crash
	// hit after rename but before the covered segments were removed,
	// in which case those segments still exist and replay covers the
	// gap.
	snapSeq := uint64(0)
	for i := len(snaps) - 1; i >= 0; i-- {
		state, err := readSnapshot(filepath.Join(dir, snapshotName(snaps[i])))
		if err != nil {
			continue
		}
		snapSeq = snaps[i]
		rec.Snapshot = state
		break
	}

	for _, seq := range segs {
		path := filepath.Join(dir, segmentName(seq))
		if seq < snapSeq {
			// Fully covered by the snapshot: a crash between snapshot
			// install and segment cleanup left it behind.
			os.Remove(path)
			continue
		}
		truncated, err := replaySegment(path, rec)
		if err != nil {
			return nil, nil, err
		}
		rec.Truncated += truncated
		rec.Segments++
	}
	for _, s := range snaps {
		if s != snapSeq {
			os.Remove(filepath.Join(dir, snapshotName(s)))
		}
	}

	d := &Durable{dir: dir, opts: opts}
	// Append into the newest existing segment, or start the segment
	// the snapshot boundary names (snapshot snap-N covers everything
	// before segment N, so new records belong to N or later).
	d.seq = snapSeq
	if d.seq == 0 {
		d.seq = 1
	}
	if len(segs) > 0 && segs[len(segs)-1] >= d.seq {
		d.seq = segs[len(segs)-1]
	}
	if err := d.openSegment(); err != nil {
		return nil, nil, err
	}
	live := rec.Segments
	if live == 0 {
		live = 1
	}
	obsWalSegments.Set(int64(live))
	return d, rec, nil
}

// openSegment opens (creating if needed) the current segment for
// append, writing the magic into a fresh file. Callers hold d.mu or
// have exclusive access.
func (d *Durable) openSegment() error {
	path := filepath.Join(d.dir, segmentName(d.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: segment stat: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return fmt.Errorf("store: segment magic: %w", err)
		}
		d.size = int64(len(walMagic))
	} else {
		d.size = st.Size()
	}
	d.f = f
	return nil
}

// Append implements Store: frame one record into the current
// segment, rolling to a new segment past the size threshold.
func (d *Durable) Append(op Op, payload []byte) error {
	if len(payload)+1 > maxRecordBytes {
		return fmt.Errorf("store: record %d bytes exceeds %d", len(payload)+1, maxRecordBytes)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("store: closed")
	}
	if d.size >= d.opts.segmentBytes() {
		if err := d.rollLocked(); err != nil {
			return err
		}
	}
	frame := make([]byte, frameHead+1+len(payload))
	n := 1 + len(payload)
	binary.BigEndian.PutUint32(frame[0:4], uint32(n))
	frame[frameHead] = byte(op)
	copy(frame[frameHead+1:], payload)
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(frame[frameHead:], crcTable))
	if _, err := d.f.Write(frame); err != nil {
		return fmt.Errorf("store: appending: %w", err)
	}
	d.size += int64(len(frame))
	obsWalAppends.Inc()
	obsWalBytes.Add(uint64(len(frame)))
	return nil
}

// rollLocked fsyncs and closes the current segment and starts the
// next. Callers hold d.mu.
func (d *Durable) rollLocked() error {
	t0 := time.Now()
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing rolled segment: %w", err)
	}
	obsWalFsyncSeconds.ObserveDuration(time.Since(t0))
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("store: closing rolled segment: %w", err)
	}
	d.seq++
	if err := d.openSegment(); err != nil {
		return err
	}
	obsWalSegments.Add(1)
	return nil
}

// Sync implements Store.
func (d *Durable) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("store: closed")
	}
	t0 := time.Now()
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	obsWalFsyncSeconds.ObserveDuration(time.Since(t0))
	return nil
}

// Snapshot implements Store: roll to a fresh segment, atomically
// install the state image at the roll boundary, then retire every
// older segment and snapshot. Crash-safe at every step — until the
// rename the old snapshot plus full replay recovers, after it the
// new snapshot plus the fresh segment does; cleanup is re-run by the
// next Open if interrupted.
func (d *Durable) Snapshot(state []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("store: closed")
	}
	t0 := time.Now()
	oldSeq := d.seq
	if err := d.rollLocked(); err != nil {
		return err
	}
	if err := writeSnapshot(d.dir, snapshotName(d.seq), state); err != nil {
		return err
	}
	// The image covers everything before the new segment; older
	// segments and snapshots are now dead weight.
	for seq := oldSeq; seq > 0; seq-- {
		path := filepath.Join(d.dir, segmentName(seq))
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				break // already cleaned; earlier ones are gone too
			}
			return fmt.Errorf("store: retiring segment: %w", err)
		}
	}
	removeOtherSnapshots(d.dir, d.seq)
	obsSnapshotSeconds.ObserveDuration(time.Since(t0))
	obsSnapshotBytes.Set(int64(len(state)))
	obsWalSegments.Set(1)
	return nil
}

// Close implements Store: sync, then release the segment handle.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return fmt.Errorf("store: closing sync: %w", err)
	}
	return d.f.Close()
}

// Crash abandons the store without syncing, simulating the process
// dying mid-write: whatever the OS has not yet flushed is at the
// mercy of the page cache, exactly as after a SIGKILL. Tests use it
// to exercise the recovery path; production code calls Close.
func (d *Durable) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	d.f.Close()
}

// Dir returns the data directory path.
func (d *Durable) Dir() string { return d.dir }

// replaySegment reads one segment's intact frames into rec,
// truncating the file at the first torn or corrupt frame. Returns
// the number of bytes cut.
func replaySegment(path string, rec *Recovered) (int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, fmt.Errorf("store: opening segment for replay: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: replay stat: %w", err)
	}
	size := st.Size()

	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != walMagic {
		// No intact header: an empty or foreign file. Truncate to a
		// fresh header so later appends are well-framed.
		if err := f.Truncate(0); err != nil {
			return 0, fmt.Errorf("store: truncating headerless segment: %w", err)
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			return 0, fmt.Errorf("store: rewriting segment magic: %w", err)
		}
		return size, nil
	}

	good := int64(len(walMagic))
	head := make([]byte, frameHead)
	for {
		if _, err := io.ReadFull(f, head); err != nil {
			break // clean EOF or torn header
		}
		n := int64(binary.BigEndian.Uint32(head[0:4]))
		sum := binary.BigEndian.Uint32(head[4:8])
		if n < 1 || n > maxRecordBytes {
			break // corrupt length: no framing anchor past here
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(f, body); err != nil {
			break // torn body
		}
		if crc32.Checksum(body, crcTable) != sum {
			break // corrupt frame
		}
		rec.Records = append(rec.Records, Record{Op: Op(body[0]), Payload: body[1:]})
		good += frameHead + n
	}
	if good < size {
		if err := f.Truncate(good); err != nil {
			return 0, fmt.Errorf("store: truncating torn tail: %w", err)
		}
		return size - good, nil
	}
	return 0, nil
}

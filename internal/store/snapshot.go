package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Snapshot file format: the 8-byte magic, a 4-byte CRC-32C over the
// state bytes, a 4-byte big-endian state length, then the state. A
// snapshot is installed by writing a temp file, fsyncing it, renaming
// into place, and fsyncing the directory — so a snapshot file either
// exists complete or not at all on any POSIX filesystem; the checksum
// guards against later media damage, with Open falling back to an
// older snapshot (or raw WAL replay) if it fails.
const snapMagic = "XRDSNAP1"

// writeSnapshot atomically installs a snapshot file named name under
// dir.
func writeSnapshot(dir, name string, state []byte) error {
	buf := make([]byte, len(snapMagic)+8+len(state))
	copy(buf, snapMagic)
	binary.BigEndian.PutUint32(buf[len(snapMagic):], crc32.Checksum(state, crcTable))
	binary.BigEndian.PutUint32(buf[len(snapMagic)+4:], uint32(len(state)))
	copy(buf[len(snapMagic)+8:], state)

	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot tmp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot install: %w", err)
	}
	return syncDir(dir)
}

// readSnapshot loads and verifies one snapshot file, returning its
// state bytes (non-nil even when zero length, so callers can tell "a
// snapshot exists" from "no snapshot").
func readSnapshot(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapMagic)+8 || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, errors.New("store: snapshot header damaged")
	}
	sum := binary.BigEndian.Uint32(raw[len(snapMagic):])
	n := binary.BigEndian.Uint32(raw[len(snapMagic)+4:])
	body := raw[len(snapMagic)+8:]
	if uint32(len(body)) != n {
		return nil, errors.New("store: snapshot length mismatch")
	}
	if crc32.Checksum(body, crcTable) != sum {
		return nil, errors.New("store: snapshot checksum mismatch")
	}
	if body == nil {
		body = []byte{}
	}
	return body, nil
}

// removeOtherSnapshots deletes every snapshot file except keep's.
// Best-effort: a leftover is harmless (the next Open cleans it).
func removeOtherSnapshots(dir string, keep uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".dat") {
			continue
		}
		if n, ok := parseSeq(name, "snap-", ".dat"); ok && n == keep {
			continue
		}
		os.Remove(filepath.Join(dir, name))
	}
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable. Some platforms refuse to sync directories; those errors
// are ignored (the rename itself is still atomic).
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening dir for sync: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil && !errors.Is(err, io.EOF) {
		// EINVAL/ENOTSUP on filesystems that cannot sync directories.
		return nil
	}
	return nil
}

package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) (*Durable, *Recovered) {
	t.Helper()
	d, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return d, rec
}

func appendT(t *testing.T, d *Durable, op Op, payload []byte) {
	t.Helper()
	if err := d.Append(op, payload); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

// wantRecords asserts rec.Records equals the (op, payload) sequence.
func wantRecords(t *testing.T, rec *Recovered, want []Record) {
	t.Helper()
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, r := range rec.Records {
		if r.Op != want[i].Op || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Fatalf("record %d = (%d, %q), want (%d, %q)", i, r.Op, r.Payload, want[i].Op, want[i].Payload)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, rec := openT(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	var want []Record
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("payload-%d", i))
		appendT(t, d, Op(i%7+1), p)
		want = append(want, Record{Op: Op(i%7 + 1), Payload: p})
	}
	// Empty payloads are legal (an op can be its own record).
	appendT(t, d, 9, nil)
	want = append(want, Record{Op: 9, Payload: []byte{}})
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, rec2 := openT(t, dir, Options{})
	defer d2.Close()
	if rec2.Snapshot != nil {
		t.Fatalf("unexpected snapshot: %q", rec2.Snapshot)
	}
	if rec2.Truncated != 0 {
		t.Fatalf("clean close truncated %d bytes", rec2.Truncated)
	}
	wantRecords(t, rec2, want)

	// The reopened store appends where the old one stopped.
	appendT(t, d2, 3, []byte("after-reopen"))
	if err := d2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec3 := openT(t, dir, Options{})
	wantRecords(t, rec3, append(want, Record{Op: 3, Payload: []byte("after-reopen")}))
}

func TestCrashWithoutSyncMayLoseOnlyTail(t *testing.T) {
	dir := t.TempDir()
	d, _ := openT(t, dir, Options{})
	appendT(t, d, 1, []byte("synced"))
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	appendT(t, d, 2, []byte("unsynced"))
	d.Crash()

	_, rec := openT(t, dir, Options{})
	// The synced record must survive; the unsynced one may or may not
	// (on most filesystems the page cache keeps it for an in-process
	// "crash", so usually both are present — the invariant is a
	// prefix).
	if len(rec.Records) < 1 {
		t.Fatalf("synced record lost: %+v", rec)
	}
	if rec.Records[0].Op != 1 || string(rec.Records[0].Payload) != "synced" {
		t.Fatalf("first recovered record = (%d, %q)", rec.Records[0].Op, rec.Records[0].Payload)
	}
}

func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rolls every few records.
	d, _ := openT(t, dir, Options{SegmentBytes: 64})
	var want []Record
	for i := 0; i < 50; i++ {
		p := bytes.Repeat([]byte{byte(i)}, 20)
		appendT(t, d, 1, p)
		want = append(want, Record{Op: 1, Payload: p})
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	_, rec := openT(t, dir, Options{SegmentBytes: 64})
	if rec.Segments != len(segs) {
		t.Fatalf("replayed %d segments, %d on disk", rec.Segments, len(segs))
	}
	wantRecords(t, rec, want)
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	d, _ := openT(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 30; i++ {
		appendT(t, d, 1, bytes.Repeat([]byte{byte(i)}, 16))
	}
	if err := d.Snapshot([]byte("state-v1")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Pre-snapshot segments are gone.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("segments after snapshot: %v", segs)
	}
	appendT(t, d, 2, []byte("post-snap"))
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec := openT(t, dir, Options{SegmentBytes: 128})
	if string(rec.Snapshot) != "state-v1" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	wantRecords(t, rec, []Record{{Op: 2, Payload: []byte("post-snap")}})

	// A second snapshot supersedes the first.
	d2, _ := openT(t, dir, Options{SegmentBytes: 128})
	if err := d2.Snapshot([]byte("state-v2")); err != nil {
		t.Fatalf("Snapshot 2: %v", err)
	}
	appendT(t, d2, 3, []byte("post-snap-2"))
	if err := d2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.dat"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk: %v", snaps)
	}
	_, rec2 := openT(t, dir, Options{SegmentBytes: 128})
	if string(rec2.Snapshot) != "state-v2" {
		t.Fatalf("snapshot = %q", rec2.Snapshot)
	}
	wantRecords(t, rec2, []Record{{Op: 3, Payload: []byte("post-snap-2")}})
}

func TestEmptySnapshotState(t *testing.T) {
	dir := t.TempDir()
	d, _ := openT(t, dir, Options{})
	appendT(t, d, 1, []byte("x"))
	if err := d.Snapshot(nil); err != nil {
		t.Fatalf("Snapshot(nil): %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openT(t, dir, Options{})
	// nil state still counts as "a snapshot exists" (zero-length).
	if rec.Snapshot == nil || len(rec.Snapshot) != 0 {
		t.Fatalf("snapshot = %#v, want empty non-nil", rec.Snapshot)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("records survived compaction: %+v", rec.Records)
	}
}

// TestTornTailEveryOffset is the corruption property test: a WAL cut
// at ANY byte offset must recover exactly the records whose frames
// lie wholly before the cut — never an error, never a partial or
// corrupt record.
func TestTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	d, _ := openT(t, master, Options{})
	var want []Record
	for i := 0; i < 8; i++ {
		p := []byte(fmt.Sprintf("rec-%d-%s", i, bytes.Repeat([]byte{'x'}, i*3)))
		appendT(t, d, Op(i+1), p)
		want = append(want, Record{Op: Op(i + 1), Payload: p})
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := filepath.Join(master, segmentName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("reading master segment: %v", err)
	}

	// Frame boundaries: offsets at which a cut loses zero partial data.
	boundaries := map[int]int{len(walMagic): 0} // offset -> records intact
	off := len(walMagic)
	for i, r := range want {
		off += frameHead + 1 + len(r.Payload)
		boundaries[off] = i + 1
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), full[:cut], 0o644); err != nil {
			t.Fatalf("writing cut segment: %v", err)
		}
		d2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		// Number of fully intact frames before the cut.
		intact := 0
		for b, n := range boundaries {
			if cut >= b && n > intact {
				intact = n
			}
		}
		wantRecords(t, rec, want[:intact])
		// The truncated store must accept and persist new appends.
		if err := d2.Append(99, []byte("resume")); err != nil {
			t.Fatalf("cut=%d: Append after truncation: %v", cut, err)
		}
		if err := d2.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		_, rec3 := openT(t, dir, Options{})
		wantRecords(t, rec3, append(append([]Record{}, want[:intact]...), Record{Op: 99, Payload: []byte("resume")}))
	}
}

// TestBitflipTail flips each byte in the final frame; recovery must
// drop that frame (checksum mismatch) and keep everything before it.
func TestBitflipTail(t *testing.T) {
	master := t.TempDir()
	d, _ := openT(t, master, Options{})
	appendT(t, d, 1, []byte("keep-me"))
	appendT(t, d, 2, []byte("flip-me"))
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full, err := os.ReadFile(filepath.Join(master, segmentName(1)))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	lastFrame := len(walMagic) + frameHead + 1 + len("keep-me")
	for pos := lastFrame; pos < len(full); pos++ {
		mut := append([]byte{}, full...)
		mut[pos] ^= 0x41
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), mut, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		_, rec := openT(t, dir, Options{})
		if len(rec.Records) == 2 &&
			(rec.Records[1].Op != 2 || string(rec.Records[1].Payload) != "flip-me") {
			t.Fatalf("pos=%d: corrupt record surfaced: %+v", pos, rec.Records[1])
		}
		// Flipping a length byte can make the second frame unreadable
		// in several ways, but record 0 must always survive.
		if len(rec.Records) < 1 || rec.Records[0].Op != 1 || string(rec.Records[0].Payload) != "keep-me" {
			t.Fatalf("pos=%d: intact prefix lost: %+v", pos, rec.Records)
		}
		if rec.Truncated == 0 && len(rec.Records) != 2 {
			t.Fatalf("pos=%d: records dropped without truncation accounting", pos)
		}
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	d, _ := openT(t, dir, Options{})
	appendT(t, d, 1, []byte("pre"))
	if err := d.Snapshot([]byte("good-state")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	appendT(t, d, 2, []byte("post"))
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt the snapshot body.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.dat"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots: %v", snaps)
	}
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatalf("read snap: %v", err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(snaps[0], raw, 0o644); err != nil {
		t.Fatalf("write snap: %v", err)
	}
	// Recovery must not trust the damaged image; with no older
	// snapshot the WAL alone is what's left — and only post-snapshot
	// segments still exist, so the "pre" record is gone. That is the
	// documented contract: a snapshot's durability is the fsync'd
	// tmp+rename; this test corrupts it after the fact to pin the
	// fallback behaviour rather than silent acceptance.
	_, rec := openT(t, dir, Options{})
	if rec.Snapshot != nil {
		t.Fatalf("corrupt snapshot accepted: %q", rec.Snapshot)
	}
	wantRecords(t, rec, []Record{{Op: 2, Payload: []byte("post")}})
}

func TestForeignFileIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-zzz.dat"), []byte("junk"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	d, rec := openT(t, dir, Options{})
	defer d.Close()
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("foreign files recovered as state: %+v", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatalf("foreign file removed: %v", err)
	}
}

func TestAbandonedTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "snap-00000001.dat.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	d, _ := openT(t, dir, Options{})
	defer d.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("abandoned tmp survived Open: %v", err)
	}
}

func TestMemIsNoOp(t *testing.T) {
	var s Store = Mem{}
	if err := s.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedStoreRejects(t *testing.T) {
	dir := t.TempDir()
	d, _ := openT(t, dir, Options{})
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Append(1, nil); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := d.Sync(); err == nil {
		t.Fatal("Sync after Close succeeded")
	}
	if err := d.Snapshot(nil); err == nil {
		t.Fatal("Snapshot after Close succeeded")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// FuzzReplay feeds arbitrary bytes as a segment file: Open must never
// error, never panic, and always leave a directory that accepts new
// appends and replays them back.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add([]byte("XRDWAL99garbage"))
	// A valid one-record segment as a seed.
	seedDir := f.TempDir()
	d, _, err := Open(seedDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := d.Append(1, []byte("seed")); err != nil {
		f.Fatal(err)
	}
	if err := d.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(seedDir, segmentName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte{}, valid...), 0xDE, 0xAD))

	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		d, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		n := len(rec.Records)
		if err := d.Append(42, []byte("post-fuzz")); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		_, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("re-Open: %v", err)
		}
		if len(rec2.Records) != n+1 {
			t.Fatalf("replayed %d records, want %d", len(rec2.Records), n+1)
		}
		last := rec2.Records[n]
		if last.Op != 42 || string(last.Payload) != "post-fuzz" {
			t.Fatalf("appended record corrupted: (%d, %q)", last.Op, last.Payload)
		}
	})
}

// Package store is the durability engine under a gateway shard's
// client-facing state: an append-only write-ahead log of typed
// records plus periodic full-state snapshots, both living in one
// data directory.
//
// The paper's deployment story assumes the client-facing edge
// survives failures — users poll mailboxes across rounds (§5.1), so
// a gateway that crashes and restarts must come back with the
// mailboxes, the registered/banned user sets, and its round/epoch
// watermarks intact. The engine is deliberately domain-agnostic: it
// persists (op, payload) records and opaque snapshot bytes; the
// owning layer (internal/core's Frontend) defines the record types
// and encodings. That keeps the crash-recovery invariants — what is
// fsync'd when, how a torn tail is detected, which files survive a
// crash mid-compaction — testable in isolation from protocol logic.
//
// Write path: records append to the current WAL segment
// (CRC-framed; see wal.go), with Sync draining to stable storage at
// the caller's durability points (a submission acknowledgement, a
// round commit). Snapshot atomically installs a full-state image and
// retires every segment the image covers, bounding both replay time
// and disk use.
//
// Read path: Open scans the directory, loads the newest intact
// snapshot, replays every later segment in order — truncating a torn
// tail at the first frame that fails its length or checksum — and
// hands the caller the snapshot bytes plus the ordered surviving
// records.
package store

// Op tags a WAL record with its domain-level meaning. The engine
// never interprets it; the owning layer defines the values.
type Op uint8

// Record is one replayed WAL record: the op tag and its payload,
// exactly as appended.
type Record struct {
	Op      Op
	Payload []byte
}

// Recovered is everything Open read back from a data directory.
type Recovered struct {
	// Snapshot is the newest intact snapshot's state bytes, nil when
	// no snapshot has been taken.
	Snapshot []byte
	// Records are the WAL records logged after the snapshot, in
	// append order.
	Records []Record
	// Truncated counts bytes discarded from torn segment tails — a
	// crash mid-append leaves a partial frame, which replay cuts at
	// the last intact record.
	Truncated int64
	// Segments is the number of WAL segments replayed.
	Segments int
}

// Store is the persistence seam a gateway shard writes through.
// Durable implements it over a data directory; Mem is the in-memory
// default that retains nothing, so tests and benchmarks pay no I/O.
type Store interface {
	// Append logs one record. It does not guarantee the record has
	// reached stable storage until the next Sync.
	Append(op Op, payload []byte) error
	// Sync drains every appended record to stable storage. Callers
	// invoke it at durability points: before acknowledging a
	// submission, after committing a round.
	Sync() error
	// Snapshot installs a full-state image and retires the WAL
	// records it covers. After a successful Snapshot, Open returns
	// the image plus only records appended after it.
	Snapshot(state []byte) error
	// Close releases the store; a Durable store syncs first.
	Close() error
}

// Mem is the no-op Store: nothing is retained, every operation
// succeeds. It is the default for in-process deployments, tests and
// benchmarks, preserving the seed's pure in-memory behaviour.
type Mem struct{}

// Append implements Store.
func (Mem) Append(Op, []byte) error { return nil }

// Sync implements Store.
func (Mem) Sync() error { return nil }

// Snapshot implements Store.
func (Mem) Snapshot([]byte) error { return nil }

// Close implements Store.
func (Mem) Close() error { return nil }

var _ Store = Mem{}

package model

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Errorf("%s = %.1f, want %.1f (±%.0f%%)", name, got, want, tol*100)
	}
}

// TestPaperHeadlineNumbers pins the calibrated model to the paper's
// headline results (§1, §8.2): 2M users on 100 servers in ≈251 s, 1M
// in ≈128 s, and the published cross-system ratios.
func TestPaperHeadlineNumbers(t *testing.T) {
	c := PaperCalibration()
	approx(t, "XRD(1M,100)", c.XRDLatency(1_000_000, 100), 128, 0.10)
	approx(t, "XRD(2M,100)", c.XRDLatency(2_000_000, 100), 251, 0.10)
	approx(t, "XRD(4M,100)", c.XRDLatency(4_000_000, 100), 508, 0.10)
	approx(t, "Atom(1M,100)", c.AtomLatency(1_000_000, 100), 1532, 0.05)
	approx(t, "Pung(1M,100)", c.PungLatency(1_000_000, 100), 272, 0.10)
	approx(t, "Pung(2M,100)", c.PungLatency(2_000_000, 100), 927, 0.10)
	approx(t, "Stadium(1M,100)", c.StadiumLatency(1_000_000, 100), 64, 0.10)
	approx(t, "Stadium(2M,100)", c.StadiumLatency(2_000_000, 100), 138, 0.10)
}

// TestPaperRatios checks the comparative claims: 12× vs Atom and
// 2.1× vs Pung at 1M users; 3.7× vs Pung at 2M; 2× slower than
// Stadium (§8.2).
func TestPaperRatios(t *testing.T) {
	c := PaperCalibration()
	x1 := c.XRDLatency(1_000_000, 100)
	approx(t, "Atom/XRD @1M", c.AtomLatency(1_000_000, 100)/x1, 12, 0.15)
	approx(t, "Pung/XRD @1M", c.PungLatency(1_000_000, 100)/x1, 2.1, 0.15)
	x2 := c.XRDLatency(2_000_000, 100)
	approx(t, "Pung/XRD @2M", c.PungLatency(2_000_000, 100)/x2, 3.7, 0.15)
	approx(t, "XRD/Stadium @1M", x1/c.StadiumLatency(1_000_000, 100), 2.0, 0.15)
}

// TestXRDScalesAsSqrtN checks Figure 5's shape: latency falls as
// ≈ √2/√N when servers are added.
func TestXRDScalesAsSqrtN(t *testing.T) {
	c := PaperCalibration()
	c.PaperChainLength = 32
	l50 := c.XRDLatency(2_000_000, 50)
	l200 := c.XRDLatency(2_000_000, 200)
	// Quadrupling the servers should halve the compute-dominated part.
	ratio := (l50 - c.FixedSeconds - 32*c.RTTSeconds) / (l200 - c.FixedSeconds - 32*c.RTTSeconds)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("4x servers gave %.2fx speedup, want ≈2x (√N scaling)", ratio)
	}
}

// TestPungSuperlinear and TestAtomLinear check the growth shapes that
// drive Figure 4's widening gaps.
func TestPungSuperlinear(t *testing.T) {
	c := PaperCalibration()
	g1 := c.PungLatency(2_000_000, 100) / c.PungLatency(1_000_000, 100)
	if g1 <= 2.0 {
		t.Fatalf("Pung latency grew %.2fx for 2x users; must be superlinear", g1)
	}
	// XRD's speedup over Pung grows with M (§8.2: 3.7x at 2M, 7.1x at 4M).
	s2 := c.PungLatency(2_000_000, 100) / c.XRDLatency(2_000_000, 100)
	s4 := c.PungLatency(4_000_000, 100) / c.XRDLatency(4_000_000, 100)
	if s4 <= s2 {
		t.Fatalf("Pung gap did not grow: %.2fx then %.2fx", s2, s4)
	}
	approx(t, "Pung/XRD @4M", s4, 7.1, 0.20)
}

func TestAtomLinear(t *testing.T) {
	c := PaperCalibration()
	g := c.AtomLatency(4_000_000, 100) / c.AtomLatency(1_000_000, 100)
	approx(t, "Atom growth 1M->4M", g, 4.0, 0.01)
}

// TestCrossovers reproduces §8.2's extrapolations: Atom and Pung need
// on the order of thousands and a thousand servers respectively to
// match XRD at 2M users. The paper says ≈3000 and ≈1000; the model
// reproduces the order of magnitude.
func TestCrossovers(t *testing.T) {
	c := PaperCalibration()
	atomCross := c.CrossoverServers(2_000_000, c.AtomLatency, 20_000)
	if atomCross < 1000 || atomCross > 20_000 {
		t.Fatalf("Atom crossover at %d servers; paper estimates ≈3000", atomCross)
	}
	pungCross := c.CrossoverServers(2_000_000, c.PungLatency, 20_000)
	if pungCross < 300 || pungCross > 6000 {
		t.Fatalf("Pung crossover at %d servers; paper estimates ≈1000", pungCross)
	}
	if pungCross >= atomCross {
		t.Fatalf("Pung crossover (%d) should come before Atom's (%d)", pungCross, atomCross)
	}
}

// TestUserBandwidthShape checks Figure 2: XRD bandwidth grows as
// √N (more chains per user), stays in the tens-to-hundreds of KB,
// and sits far below Pung XPIR but the same order as SealPIR.
func TestUserBandwidthShape(t *testing.T) {
	c := PaperCalibration()
	b100 := c.XRDUserBandwidth(100)
	b2000 := c.XRDUserBandwidth(2000)
	if b100 < 20_000 || b100 > 80_000 {
		t.Fatalf("XRD bandwidth at 100 servers = %d B; paper reports ≈54 KB", b100)
	}
	if b2000 < 3*b100 || b2000 > 8*b100 {
		t.Fatalf("bandwidth at 2000 servers = %d B vs %d at 100; want ≈√20 ≈ 4.5x", b2000, b100)
	}
	if pung := PungXPIRBandwidth(1_000_000); pung < 20*b100 {
		t.Fatalf("Pung XPIR %d B should dwarf XRD %d B", pung, b100)
	}
	if PungXPIRBandwidth(4_000_000) <= PungXPIRBandwidth(1_000_000) {
		t.Fatal("Pung bandwidth must grow with users")
	}
	if StadiumBandwidth() > 1024 || AtomBandwidth() > 1024 {
		t.Fatal("Stadium/Atom bandwidth must stay under a kilobyte")
	}
}

// TestUserBandwidth40KbpsClaim checks §1's claim: at 2000 servers a
// user needs ≈40 Kbps with one-minute rounds, and ≈1-10 Kbps at 100
// servers. Our wire format is leaner than the prototype's (we measure
// ≈2x less), so we accept the half-open band.
func TestUserBandwidth40KbpsClaim(t *testing.T) {
	c := PaperCalibration()
	kbps2000 := float64(c.XRDUserBandwidth(2000)) * 8 / 60 / 1000
	if kbps2000 < 10 || kbps2000 > 60 {
		t.Fatalf("bandwidth at 2000 servers = %.1f Kbps; paper reports ≈40", kbps2000)
	}
	kbps100 := float64(c.XRDUserBandwidth(100)) * 8 / 60 / 1000
	if kbps100 > 10 {
		t.Fatalf("bandwidth at 100 servers = %.1f Kbps; paper reports ≈1-8", kbps100)
	}
}

// TestUserComputeShape checks Figure 3: grows with N, under ≈0.5 s
// single-core below 2000 servers.
func TestUserComputeShape(t *testing.T) {
	c := PaperCalibration()
	if got := c.XRDUserCompute(2000); got > 3.0 {
		t.Fatalf("user compute at 2000 servers = %.2f s", got)
	}
	if c.XRDUserCompute(2000) <= c.XRDUserCompute(100) {
		t.Fatal("user compute must grow with servers")
	}
}

// TestBlameLatencyShape checks Figure 7: linear in the number of
// malicious users, ≈13 s at 5k and ≈150 s at 100k.
func TestBlameLatencyShape(t *testing.T) {
	c := PaperCalibration()
	approx(t, "blame(5k)", c.BlameLatency(5_000, 100), 13, 0.10)
	approx(t, "blame(100k)", c.BlameLatency(100_000, 100), 150, 0.10)
	// Linear in U above the fixed setup cost (paper quotes 13 -> 150 s
	// for 5k -> 100k, a 11.5x growth over 20x users).
	g := c.BlameLatency(100_000, 100) / c.BlameLatency(5_000, 100)
	approx(t, "blame growth", g, 11.5, 0.10)
	if c.BlameLatency(0, 100) != 0 {
		t.Fatal("no blame cost without malicious users")
	}
}

// TestFig6Shape: latency grows with f through k(f) ∝ −1/log f, and
// explodes as f → 0.5.
func TestFig6Shape(t *testing.T) {
	c := PaperCalibration()
	prev := 0.0
	for _, f := range []float64{0.1, 0.2, 0.3, 0.4, 0.45} {
		lat := c.XRDLatencyWithF(2_000_000, 100, f)
		if lat <= prev {
			t.Fatalf("latency at f=%.2f (%.0f s) not increasing", f, lat)
		}
		prev = lat
	}
	if c.XRDLatencyWithF(2_000_000, 100, 0.45) < 1.4*c.XRDLatencyWithF(2_000_000, 100, 0.2) {
		t.Fatal("latency growth with f too weak")
	}
}

// TestFig8ClosedForm: 1% churn with k=32 fails ≈27% of conversations;
// 4% fails ≈70% (§8.3).
func TestFig8ClosedForm(t *testing.T) {
	approx(t, "failure(1%)", ConversationFailureRate(0.01, 32), 0.275, 0.05)
	approx(t, "failure(4%)", ConversationFailureRate(0.04, 32), 0.729, 0.05)
	if ConversationFailureRate(0, 32) != 0 {
		t.Fatal("no churn must mean no failures")
	}
	if f := ConversationFailureRate(1, 32); f != 1 {
		t.Fatalf("total churn must fail everything, got %v", f)
	}
}

// TestScalabilityGoal verifies §3.2's requirement on the model:
// C(M,N) = per-server messages → 0 polynomially as N → ∞.
func TestScalabilityGoal(t *testing.T) {
	c := PaperCalibration()
	prev := math.Inf(1)
	for _, n := range []int{100, 400, 1600, 6400} {
		lat := c.XRDLatency(2_000_000, n)
		if lat >= prev {
			t.Fatalf("latency did not fall at N=%d", n)
		}
		prev = lat
	}
}

// TestMeasureProducesSaneCalibration runs the real-crypto measurement
// briefly and sanity-checks the constants.
func TestMeasureProducesSaneCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement loop")
	}
	c := Measure(3)
	if c.PerMsgServerSeconds <= 0 || c.PerMsgServerSeconds > 0.1 {
		t.Fatalf("per-message mix cost %.6f s out of range", c.PerMsgServerSeconds)
	}
	if c.PerMsgWrapSeconds <= c.PerMsgServerSeconds {
		t.Fatalf("wrapping (%.6f) should cost more than one hop (%.6f)",
			c.PerMsgWrapSeconds, c.PerMsgServerSeconds)
	}
	if c.PerUserLayerBlameSeconds <= 0 || c.PerUserLayerBlameSeconds > 0.1 {
		t.Fatalf("blame layer cost %.6f s out of range", c.PerUserLayerBlameSeconds)
	}
	// The measured model must preserve the headline ordering.
	if c.XRDLatency(2_000_000, 100) >= c.AtomLatency(2_000_000, 100) {
		t.Fatal("measured XRD slower than Atom at 2M/100 — shape broken")
	}
}

func BenchmarkModelEvaluation(b *testing.B) {
	c := PaperCalibration()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.XRDLatency(2_000_000, 100)
	}
}

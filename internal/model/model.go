// Package model contains the analytic performance models that
// regenerate the paper's evaluation figures (§8).
//
// The paper's end-to-end numbers come from a 100-200 machine EC2
// testbed with millions of simulated users; this reproduction runs on
// one machine, so large-scale latency points are produced by cost
// models with two interchangeable calibrations:
//
//   - PaperCalibration fits the per-message constants to the numbers
//     the paper reports (251 s for 2M users on 100 servers, etc.), so
//     the figures can be regenerated exactly as published;
//   - Measure() times this repository's actual crypto (mixing,
//     wrapping, blame steps) and scales it to the paper's hardware
//     profile, so the figures reflect the real implementation.
//
// The comparison systems (Atom, Pung, Stadium, Karaoke) were *also*
// modelled or estimated in the paper itself (e.g. Pung's latency is a
// best-case estimate from a single machine, §8.2); their models here
// are fitted to the published curves. Cross-system ratios — who wins,
// by what factor, where the crossovers fall — are the meaningful
// outputs.
package model

import (
	"math"
	"time"

	"repro/internal/chainsel"
	"repro/internal/onion"
	"repro/internal/topology"
)

// Calibration holds the fitted constants for the latency models.
type Calibration struct {
	// PerMsgServerSeconds is the single-core time one server spends
	// on one message at one mixing hop (decrypt + blind + per-message
	// share of proofs and submission checks).
	PerMsgServerSeconds float64
	// PerMsgWrapSeconds is the single-core client cost of building
	// one AHS submission (Figure 3).
	PerMsgWrapSeconds float64
	// PerUserLayerBlameSeconds is the single-core cost of one blame
	// step (two DLEQ proofs + two verifications + one decryption) for
	// one message at one layer (Figure 7).
	PerUserLayerBlameSeconds float64
	// Cores is the per-server core count (paper: c4.8xlarge, 36).
	Cores int
	// BlameFixedSeconds is the setup cost of one blame execution
	// (broadcasting the problem ciphertexts, coordinating reveals).
	BlameFixedSeconds float64
	// RTTSeconds is the inter-server round-trip latency (paper: 40 to
	// 100 ms injected with tc; we take the midpoint).
	RTTSeconds float64
	// FixedSeconds covers round setup, mailbox delivery and fetch.
	FixedSeconds float64
	// F is the assumed malicious fraction (paper default 0.2).
	F float64
	// SecurityBits is λ for chain length (64).
	SecurityBits int
	// PaperChainLength, if nonzero, uses the paper's quoted k
	// (32 at f=0.2) rather than the exact union-bound formula.
	PaperChainLength int
}

// PaperCalibration returns constants fitted to §8's reported numbers.
//
// Fit: with M=2e6 users and N=n=100 servers, ℓ=14, each chain handles
// m = ℓ·M/n = 280,000 messages through k=32 hops; the paper reports
// 251 s end to end and 128 s for 1M users, implying ≈ 2.4 s of
// fixed+network time and a per-message-per-hop cost of
// (251−4.6)·36/(32·280000) ≈ 990 µs single-core.
func PaperCalibration() Calibration {
	return Calibration{
		PerMsgServerSeconds: 990e-6,
		// Fig 3 reports just under 0.5 s at N=2000, i.e. 2ℓ(2000)=126
		// submissions at ≈4 ms each.
		PerMsgWrapSeconds: 4e-3,
		// Fig 7's two quoted points (13 s at 5k users, 150 s at 100k)
		// fit latency = U·k·x/cores + 5.8 s with x ≈ 1.675 ms.
		PerUserLayerBlameSeconds: 1.675e-3,
		BlameFixedSeconds:        5.8,
		Cores:                    36,
		RTTSeconds:               0.07,
		FixedSeconds:             2.4,
		F:                        0.2,
		SecurityBits:             64,
		PaperChainLength:         32,
	}
}

// Measure times this repository's implementation and returns a
// calibration with the paper's deployment profile (36 cores, 70 ms
// RTT) but our measured single-core crypto costs. iters controls the
// measurement effort.
func Measure(iters int) Calibration {
	c := PaperCalibration()
	c.PerMsgServerSeconds = timePerOp(iters, benchMixOneMessage)
	c.PerMsgWrapSeconds = timePerOp(maxInt(iters/4, 2), benchWrapOneMessage)
	c.PerUserLayerBlameSeconds = timePerOp(iters, benchBlameOneLayer)
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func timePerOp(iters int, op func()) float64 {
	op() // warm up
	start := time.Now()
	for i := 0; i < iters; i++ {
		op()
	}
	return time.Since(start).Seconds() / float64(iters)
}

// chainLength returns k for n chains under this calibration.
func (c Calibration) chainLength(n int) int {
	if c.PaperChainLength != 0 {
		return c.PaperChainLength
	}
	return topology.ChainLength(c.F, n, c.SecurityBits)
}

// XRDLatency models the end-to-end round latency for M users on N
// servers (n = N chains): every chain pushes m = ℓ·M/n messages
// through k hops; with position staggering each server's total work
// is k·m messages, parallelised over its cores, plus k network hops.
func (c Calibration) XRDLatency(M, N int) float64 {
	l := chainsel.L(N)
	k := c.chainLength(N)
	perChain := float64(l) * float64(M) / float64(N)
	work := float64(k) * perChain * c.PerMsgServerSeconds / float64(c.Cores)
	return work + float64(k)*c.RTTSeconds + c.FixedSeconds
}

// XRDLatencyWithF models Figure 6: the latency of a fixed deployment
// (M users, N servers) as the assumed malicious fraction varies,
// which only enters through the chain length k(f) ∝ −1/log f.
func (c Calibration) XRDLatencyWithF(M, N int, f float64) float64 {
	cc := c
	cc.F = f
	cc.PaperChainLength = 0 // k must respond to f
	return cc.XRDLatency(M, N)
}

// BlameLatency models Figure 7: the worst-case slowdown when
// maliciousUsers misauthenticated ciphertexts surface at the last
// server of a chain of length k(N). Every upstream layer reveals and
// proves two DLEQs per message and everyone replays the decryption.
func (c Calibration) BlameLatency(maliciousUsers, N int) float64 {
	if maliciousUsers == 0 {
		return 0
	}
	k := c.chainLength(N)
	return float64(maliciousUsers)*float64(k)*c.PerUserLayerBlameSeconds/float64(c.Cores) + c.BlameFixedSeconds
}

// XRDUserBandwidth returns the bytes one user uploads per round with
// N servers: 2ℓ submissions (current plus covers, §5.3.3), each an
// AHS envelope with its knowledge proof.
func (c Calibration) XRDUserBandwidth(N int) int {
	l := chainsel.L(N)
	k := c.chainLength(N)
	per := onion.SubmissionWireSize(k)
	return 2 * l * per
}

// XRDUserCompute returns the single-core seconds a user spends
// building one round's messages (Figure 3): 2ℓ AHS wraps.
func (c Calibration) XRDUserCompute(N int) float64 {
	l := chainsel.L(N)
	return 2 * float64(l) * c.PerMsgWrapSeconds
}

// AtomLatency models Atom's published curve: latency is linear in M,
// scales as 1/N, and is dominated by hundreds of sequential
// public-key hops. Fitted to 1532 s at (1M, 100) — the paper's 12×
// gap to XRD's 128 s — and the linear growth of Figure 4.
func (c Calibration) AtomLatency(M, N int) float64 {
	const fitted = 1532.0 // seconds at M=1e6, N=100
	return fitted * (float64(M) / 1e6) * (100 / float64(N))
}

// PungLatency models Pung (XPIR): per-user server work grows with the
// total number of users, so latency grows superlinearly in M and
// scales as 1/N (embarrassingly parallel, §8.2). Fitted through the
// published (1M, 272 s) and (2M, 927 s) points at N=100:
// latency = a·M·(1 + M/M0)/N with M0 ≈ 4.2e5.
func (c Calibration) PungLatency(M, N int) float64 {
	const (
		a  = 8.045e-5 // seconds per user per (1+M/M0) unit at N=100
		m0 = 4.2e5
	)
	return a * float64(M) * (1 + float64(M)/m0) * (100 / float64(N))
}

// StadiumLatency models Stadium's differential-privacy pipeline:
// linear in M/N with a network floor. Fitted through (1M, 64 s) and
// (2M, 138 s) at N=100, clamped below at the paper's ≈8 s
// network-bound floor for large N (§8.2).
func (c Calibration) StadiumLatency(M, N int) float64 {
	lat := 7.4e-5*float64(M)*(100/float64(N)) - 10
	if lat < 8 {
		return 8
	}
	return lat
}

// KaraokeLatency estimates Karaoke as the paper does: 25× faster than
// XRD where Stadium is 3.3× faster (§8.2), i.e. ≈7.6× faster than
// Stadium, with the same network floor.
func (c Calibration) KaraokeLatency(M, N int) float64 {
	lat := c.StadiumLatency(M, N) / 7.6
	if lat < 1 {
		return 1
	}
	return lat
}

// PungXPIRBandwidth returns Pung/XPIR's per-round user bandwidth:
// ∝ √M, through the published 5.8 MB at 1M users (11 MB at 4M).
func PungXPIRBandwidth(M int) int {
	return int(5.8e6 * math.Sqrt(float64(M)/1e6))
}

// PungSealPIRBandwidth returns Pung/SealPIR's compressed-query
// bandwidth, roughly flat and comparable to XRD's (§8.1).
func PungSealPIRBandwidth() int { return 50_000 }

// StadiumBandwidth returns Stadium's per-round user bandwidth:
// "less than a kilobyte" (§8.1).
func StadiumBandwidth() int { return 800 }

// AtomBandwidth returns Atom's per-round user bandwidth, also under a
// kilobyte (§8.1).
func AtomBandwidth() int { return 700 }

// PungUserCompute models Pung's client CPU cost per round, which
// grows with M and dwarfs XRD's (Figure 3 shows Pung XPIR near 0.4 s
// at 1M users and above for 4M, flat in N).
func PungUserCompute(M int) float64 {
	return 0.35 * math.Sqrt(float64(M)/1e6)
}

// StadiumUserCompute is Stadium's flat, tiny client cost (Figure 3).
func StadiumUserCompute() float64 { return 0.01 }

// ConversationFailureRate is the closed-form Figure 8 model: a
// conversation fails iff its meeting chain contains at least one
// crashed server, so with per-round server churn rate c and chain
// length k the failure probability is 1 − (1−c)^k (§8.3).
func ConversationFailureRate(churnRate float64, k int) float64 {
	return 1 - math.Pow(1-churnRate, float64(k))
}

// CrossoverServers returns the approximate server count above which
// `other` (a 1/N-scaling system) becomes faster than XRD for M users,
// found by scanning. The paper estimates ≈3000 for Atom and ≈1000 for
// Pung at 2M users (§8.2). Returns maxN+1 if no crossover below maxN.
func (c Calibration) CrossoverServers(M int, other func(M, N int) float64, maxN int) int {
	for n := 100; n <= maxN; n += 50 {
		if other(M, n) <= c.XRDLatency(M, n) {
			return n
		}
	}
	return maxN + 1
}

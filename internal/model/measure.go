package model

import (
	"sync"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/kdf"
	"repro/internal/nizk"
	"repro/internal/onion"
)

// This file times the repository's real crypto for the Measure
// calibration. Each closure performs exactly the work the model
// attributes to one unit: one message at one mixing hop, one client
// wrap, or one blame layer.

const measureChainLen = 32 // the paper's k at f=0.2

type measureState struct {
	scheme   aead.Scheme
	mixKeys  []group.Point
	mskFirst group.Scalar
	bskFirst group.Scalar
	bpkPrev  group.Point
	bpk      group.Point
	mpk      group.Point
	innerAgg group.Point
	nonce    [aead.NonceSize]byte
	sub      onion.Submission
	mailbox  []byte
}

var (
	msOnce sync.Once
	ms     measureState
)

func measureSetup() {
	msOnce.Do(func() {
		ms.scheme = aead.ChaCha20Poly1305()
		ms.nonce = aead.RoundNonce(1, 0)

		// AHS key chain of length k.
		base := group.Generator()
		innerSum := group.NewScalar(0)
		agg := group.Identity()
		for i := 0; i < measureChainLen; i++ {
			bsk := group.MustRandomScalar()
			msk := group.MustRandomScalar()
			if i == 0 {
				ms.bskFirst, ms.mskFirst = bsk, msk
				ms.bpkPrev = base
				ms.bpk = base.Mul(bsk)
				ms.mpk = base.Mul(msk)
			}
			ms.mixKeys = append(ms.mixKeys, base.Mul(msk))
			base = base.Mul(bsk)
			ikp := group.GenerateBaseKeyPair()
			innerSum = innerSum.Add(ikp.Private)
			agg = agg.Add(ikp.Public)
		}
		ms.innerAgg = agg

		recipient := group.GenerateBaseKeyPair()
		var secret [32]byte
		key := kdf.ConversationKey(secret, recipient.Public.Bytes())
		mb, err := onion.SealMailboxMessage(ms.scheme, key, ms.nonce, recipient.Public, onion.Payload{Kind: onion.KindLoopback})
		if err != nil {
			panic(err)
		}
		ms.mailbox = mb
		sub, err := onion.WrapAHS(ms.scheme, ms.innerAgg, ms.mixKeys, 1, 0, ms.nonce, mb)
		if err != nil {
			panic(err)
		}
		ms.sub = sub
	})
}

// benchMixOneMessage is one server's per-message mixing work (§6.3):
// verify the submission proof, peel one layer, blind the key. The
// per-batch shuffle certificate amortises to nothing per message.
func benchMixOneMessage() {
	measureSetup()
	if err := onion.VerifySubmission(ms.sub, 1, 0); err != nil {
		panic(err)
	}
	if _, err := onion.PeelAHS(ms.scheme, ms.mskFirst, ms.nonce, ms.sub.Envelope); err != nil {
		panic(err)
	}
	_ = ms.sub.DHKey.Mul(ms.bskFirst)
}

// benchWrapOneMessage is the client cost of one AHS submission for a
// 32-server chain (Figure 3's unit).
func benchWrapOneMessage() {
	measureSetup()
	if _, err := onion.WrapAHS(ms.scheme, ms.innerAgg, ms.mixKeys, 1, 0, ms.nonce, ms.mailbox); err != nil {
		panic(err)
	}
}

// benchBlameOneLayer is one layer of the blame protocol for one
// message (§6.4): the revealing server's two DLEQ proofs plus every
// verifier's two DLEQ checks and one replayed decryption.
func benchBlameOneLayer() {
	measureSetup()
	x := ms.sub.DHKey
	blind := nizk.ProveDleq("blame/blind", x, ms.bpkPrev, ms.bskFirst)
	keyp := nizk.ProveDleq("blame/key", x, ms.bpkPrev, ms.mskFirst)
	if err := nizk.VerifyDleq("blame/blind", x, x.Mul(ms.bskFirst), ms.bpkPrev, ms.bpk, blind); err != nil {
		panic(err)
	}
	k := x.Mul(ms.mskFirst)
	if err := nizk.VerifyDleq("blame/key", x, k, ms.bpkPrev, ms.mpk, keyp); err != nil {
		panic(err)
	}
	if _, err := onion.OpenWithRevealedKey(ms.scheme, k, ms.nonce, ms.sub.Ct); err != nil {
		panic(err)
	}
}

package mailbox

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/kdf"
	"repro/internal/onion"
)

func TestPutGet(t *testing.T) {
	s := NewServer()
	box := []byte("mailbox-alice")
	s.Put(1, box, []byte("m1"))
	s.Put(1, box, []byte("m2"))
	s.Put(2, box, []byte("m3"))

	got := s.Get(1, box)
	if len(got) != 2 || string(got[0]) != "m1" || string(got[1]) != "m2" {
		t.Fatalf("round 1: %q", got)
	}
	if got := s.Get(2, box); len(got) != 1 || string(got[0]) != "m3" {
		t.Fatalf("round 2: %q", got)
	}
	if got := s.Get(3, box); len(got) != 0 {
		t.Fatalf("round 3 should be empty, got %d", len(got))
	}
	if got := s.Get(1, []byte("mailbox-bob")); len(got) != 0 {
		t.Fatalf("bob's box should be empty, got %d", len(got))
	}
}

func TestGetReturnsCopies(t *testing.T) {
	s := NewServer()
	box := []byte("box")
	s.Put(1, box, []byte("original"))
	got := s.Get(1, box)
	got[0][0] = 'X'
	again := s.Get(1, box)
	if string(again[0]) != "original" {
		t.Fatal("mailbox contents were mutated through a Get result")
	}
}

func TestPruneBefore(t *testing.T) {
	s := NewServer()
	box := []byte("box")
	for r := uint64(1); r <= 5; r++ {
		s.Put(r, box, []byte{byte(r)})
	}
	s.PruneBefore(4)
	for r := uint64(1); r <= 3; r++ {
		if len(s.Get(r, box)) != 0 {
			t.Fatalf("round %d not pruned", r)
		}
	}
	if len(s.Get(4, box)) != 1 || len(s.Get(5, box)) != 1 {
		t.Fatal("recent rounds were pruned")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := NewServer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			box := []byte(fmt.Sprintf("box-%d", w%4))
			for i := 0; i < 100; i++ {
				s.Put(1, box, []byte{byte(i)})
				s.Get(1, box)
			}
		}(w)
	}
	wg.Wait()
	if total := s.CountForRound(1); total != 800 {
		t.Fatalf("stored %d messages, want 800", total)
	}
}

func TestPutBatch(t *testing.T) {
	s := NewServer()
	boxA, boxB := []byte("box-a"), []byte("box-b")
	payload := []byte("payload")
	s.PutBatch(1, []Delivery{
		{Mailbox: boxA, Msg: []byte("a1")},
		{Mailbox: boxB, Msg: payload},
		{Mailbox: boxA, Msg: []byte("a2")},
	})
	if got := s.Get(1, boxA); len(got) != 2 || string(got[0]) != "a1" || string(got[1]) != "a2" {
		t.Fatalf("box-a: %q", got)
	}
	got := s.Get(1, boxB)
	if len(got) != 1 || string(got[0]) != "payload" {
		t.Fatalf("box-b: %q", got)
	}
	// The batch path must copy, like Put.
	payload[0] = 'X'
	if again := s.Get(1, boxB); string(again[0]) != "payload" {
		t.Fatal("PutBatch stored the caller's slice instead of a copy")
	}
	s.PutBatch(2, nil) // empty batches are a no-op
	if s.CountForRound(2) != 0 {
		t.Fatal("empty batch stored messages")
	}
}

// TestClusterConcurrentDeliver mirrors the round pipeline's usage:
// several chains deliver large batches into the same cluster at once.
func TestClusterConcurrentDeliver(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	const chains, perChain = 4, 100 // above deliverConcurrencyThreshold
	batches := make([][][]byte, chains)
	for ch := range batches {
		for i := 0; i < perChain; i++ {
			r := group.Base(group.NewScalar(int64(ch*perChain + i + 1)))
			batches[ch] = append(batches[ch], mailboxMsg(t, r, 1))
		}
	}
	var wg sync.WaitGroup
	for ch := range batches {
		wg.Add(1)
		go func(msgs [][]byte) {
			defer wg.Done()
			if d, m, _ := c.Deliver(1, msgs); d != perChain || m != 0 {
				t.Errorf("delivered=%d malformed=%d", d, m)
			}
		}(batches[ch])
	}
	wg.Wait()
	if total := c.TotalForRound(1); total != chains*perChain {
		t.Fatalf("total = %d, want %d", total, chains*perChain)
	}
}

func TestClusterRejectsEmpty(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func mailboxMsg(t *testing.T, recipient group.Point, round uint64) []byte {
	t.Helper()
	var secret [32]byte
	key := kdf.ConversationKey(secret, recipient.Bytes())
	m, err := onion.SealMailboxMessage(aead.ChaCha20Poly1305(), key, aead.RoundNonce(round, 0),
		recipient, onion.Payload{Kind: onion.KindLoopback})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestClusterDeliverAndFetch(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	const users = 20
	recipients := make([]group.Point, users)
	msgs := make([][]byte, users)
	for i := range recipients {
		recipients[i] = group.Base(group.NewScalar(int64(i + 1)))
		msgs[i] = mailboxMsg(t, recipients[i], 1)
	}
	delivered, malformed, _ := c.Deliver(1, msgs)
	if delivered != users || malformed != 0 {
		t.Fatalf("delivered=%d malformed=%d", delivered, malformed)
	}
	if c.TotalForRound(1) != users {
		t.Fatalf("total = %d", c.TotalForRound(1))
	}
	for i, r := range recipients {
		got := c.Fetch(1, r.Bytes())
		if len(got) != 1 || !bytes.Equal(got[0], msgs[i]) {
			t.Fatalf("user %d: fetch mismatch", i)
		}
	}
}

func TestClusterDropsMalformed(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	delivered, malformed, _ := c.Deliver(1, [][]byte{[]byte("short"), nil})
	if delivered != 0 || malformed != 2 {
		t.Fatalf("delivered=%d malformed=%d", delivered, malformed)
	}
}

func TestClusterShardsAcrossServers(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[*Server]int)
	for i := 0; i < 200; i++ {
		box := []byte(fmt.Sprintf("mailbox-%d", i))
		counts[c.serverFor(box)]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 servers used", len(counts))
	}
	for s, n := range counts {
		if n < 20 {
			t.Fatalf("server %p has only %d mailboxes; sharding is skewed", s, n)
		}
	}
}

func TestClusterStableRouting(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	box := []byte("stable-mailbox")
	s1 := c.serverFor(box)
	for i := 0; i < 10; i++ {
		if c.serverFor(box) != s1 {
			t.Fatal("mailbox routing is not stable")
		}
	}
}

func BenchmarkDeliver1000(b *testing.B) {
	c, err := NewCluster(10)
	if err != nil {
		b.Fatal(err)
	}
	msgs := make([][]byte, 1000)
	for i := range msgs {
		r := group.Base(group.NewScalar(int64(i + 1)))
		var secret [32]byte
		key := kdf.ConversationKey(secret, r.Bytes())
		m, err := onion.SealMailboxMessage(aead.ChaCha20Poly1305(), key, aead.RoundNonce(1, 0),
			r, onion.Payload{Kind: onion.KindLoopback})
		if err != nil {
			b.Fatal(err)
		}
		msgs[i] = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Deliver(uint64(i+2), msgs)
	}
}

// Package mailbox implements XRD's mailbox servers (§5.1).
//
// Every user has a mailbox publicly associated with her, identified
// by her public key. Mailbox servers expose put and get and are
// trusted only for availability, never for privacy: by the time a
// message reaches a mailbox its origin has been hidden by a mix chain
// and its content is encrypted for the mailbox owner.
//
// A Cluster shards mailboxes across several servers by hashing the
// mailbox identifier, like different users having different e-mail
// providers.
package mailbox

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/onion"
)

// Server is a single mailbox server holding per-round message
// buckets for the mailboxes it manages.
type Server struct {
	mu sync.RWMutex
	// boxes[round][mailbox] is the list of messages delivered to the
	// mailbox in that round.
	boxes map[uint64]map[string][][]byte
}

// NewServer returns an empty mailbox server.
func NewServer() *Server {
	return &Server{boxes: make(map[uint64]map[string][][]byte)}
}

// Put appends a message to a mailbox for a round. The message is
// stored as given; mailbox servers never inspect contents.
func (s *Server) Put(round uint64, mailbox []byte, msg []byte) {
	s.PutBatch(round, []Delivery{{Mailbox: mailbox, Msg: msg}})
}

// Delivery is one routed message: a mailbox identifier and the
// opaque message bytes destined for it.
type Delivery struct {
	Mailbox []byte
	Msg     []byte
}

// PutBatch appends a batch of messages to their mailboxes for a
// round under a single lock acquisition — the bulk path mix chains
// use when a whole round's output lands at once.
func (s *Server) PutBatch(round uint64, items []Delivery) {
	if len(items) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rb, ok := s.boxes[round]
	if !ok {
		rb = make(map[string][][]byte)
		s.boxes[round] = rb
	}
	for _, it := range items {
		rb[string(it.Mailbox)] = append(rb[string(it.Mailbox)], append([]byte(nil), it.Msg...))
	}
}

// Get returns all messages delivered to a mailbox in a round; the
// owner downloads all of them at the end of the round (§4 step 4).
func (s *Server) Get(round uint64, mailbox []byte) [][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	msgs := s.boxes[round][string(mailbox)]
	out := make([][]byte, len(msgs))
	for i, m := range msgs {
		out[i] = append([]byte(nil), m...)
	}
	return out
}

// CountForRound returns the total number of messages stored for a
// round, for capacity accounting and tests.
func (s *Server) CountForRound(round uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, msgs := range s.boxes[round] {
		n += len(msgs)
	}
	return n
}

// PruneBefore drops all rounds older than the given round, bounding
// memory across a long-running deployment.
func (s *Server) PruneBefore(round uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for r := range s.boxes {
		if r < round {
			delete(s.boxes, r)
		}
	}
}

// Cluster shards mailboxes over several servers by identifier hash,
// mirroring "different users' mailboxes can be maintained by
// different servers" (§5.1).
type Cluster struct {
	servers []*Server
}

// NewCluster creates a cluster of n fresh mailbox servers.
func NewCluster(n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("mailbox: cluster needs at least one server, got %d", n)
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.servers = append(c.servers, NewServer())
	}
	return c, nil
}

// NumServers returns the cluster size.
func (c *Cluster) NumServers() int { return len(c.servers) }

// serverIndex routes a mailbox identifier to its home server's index.
func (c *Cluster) serverIndex(mailbox []byte) int {
	h := sha256.Sum256(mailbox)
	return int(binary.BigEndian.Uint64(h[:8]) % uint64(len(c.servers)))
}

// serverFor routes a mailbox identifier to its home server.
func (c *Cluster) serverFor(mailbox []byte) *Server {
	return c.servers[c.serverIndex(mailbox)]
}

// deliverConcurrencyThreshold is the batch size below which Deliver
// stays serial: spawning goroutines costs more than a handful of map
// appends.
const deliverConcurrencyThreshold = 64

// Deliver routes a batch of mix-chain output messages to their
// mailboxes (Algorithm 1 step 2b: "send the message to the mailbox
// server that manages mailbox pk_u"). Malformed messages are counted
// and dropped; mix chains only emit well-formed ones.
//
// The batch is bucketed by home server first and each server's bucket
// lands through one PutBatch — one lock acquisition per server rather
// than one per message — with the per-server stores written
// concurrently for large batches. Deliver is safe to call
// concurrently (the round pipeline delivers every chain's output in
// parallel); cross-server sharding keeps those writers off each
// other's locks.
func (c *Cluster) Deliver(round uint64, msgs [][]byte) (delivered, malformed int) {
	buckets := make([][]Delivery, len(c.servers))
	for _, m := range msgs {
		rcpt, err := onion.Recipient(m)
		if err != nil {
			malformed++
			continue
		}
		i := c.serverIndex(rcpt)
		buckets[i] = append(buckets[i], Delivery{Mailbox: rcpt, Msg: m})
		delivered++
	}
	if delivered < deliverConcurrencyThreshold || len(c.servers) == 1 {
		for i, b := range buckets {
			c.servers[i].PutBatch(round, b)
		}
		return delivered, malformed
	}
	var wg sync.WaitGroup
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *Server, items []Delivery) {
			defer wg.Done()
			s.PutBatch(round, items)
		}(c.servers[i], b)
	}
	wg.Wait()
	return delivered, malformed
}

// Fetch returns the round's messages for a mailbox from its home
// server.
func (c *Cluster) Fetch(round uint64, mailbox []byte) [][]byte {
	return c.serverFor(mailbox).Get(round, mailbox)
}

// TotalForRound sums stored messages across all servers for a round.
func (c *Cluster) TotalForRound(round uint64) int {
	n := 0
	for _, s := range c.servers {
		n += s.CountForRound(round)
	}
	return n
}

// PruneBefore prunes old rounds on every server.
func (c *Cluster) PruneBefore(round uint64) {
	for _, s := range c.servers {
		s.PruneBefore(round)
	}
}

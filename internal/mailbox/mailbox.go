// Package mailbox implements XRD's mailbox servers (§5.1).
//
// Every user has a mailbox publicly associated with her, identified
// by her public key. Mailbox servers expose put and get and are
// trusted only for availability, never for privacy: by the time a
// message reaches a mailbox its origin has been hidden by a mix chain
// and its content is encrypted for the mailbox owner.
//
// A Cluster shards mailboxes across several servers by hashing the
// mailbox identifier, like different users having different e-mail
// providers.
package mailbox

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/onion"
)

// Process-wide mailbox metrics: the gauge tracks messages currently
// retained across every Server in the process (the gateway role's
// mailbox depth at a glance); the counters the flows that change it.
var (
	obsStored      = obs.GetOrCreateGauge("xrd_mailbox_messages")
	obsDeliveredIn = obs.GetOrCreateCounter("xrd_mailbox_put_total")
	obsDropped     = obs.GetOrCreateCounter("xrd_mailbox_dropped_total")
	obsAcked       = obs.GetOrCreateCounter("xrd_mailbox_acked_total")
	obsPruned      = obs.GetOrCreateCounter("xrd_mailbox_pruned_total")
)

// Server is a single mailbox server holding per-round message
// buckets for the mailboxes it manages.
type Server struct {
	mu sync.RWMutex
	// boxes[round][mailbox] is the list of messages delivered to the
	// mailbox in that round.
	boxes map[uint64]map[string][][]byte
	// depth[mailbox] counts that mailbox's messages across every
	// retained round, enforcing maxDepth.
	depth map[string]int
	// maxDepth caps a mailbox's retained messages; 0 means unlimited.
	// Past the cap the OLDEST messages are evicted first — a user who
	// stops fetching loses history, not fresh mail.
	maxDepth int
}

// NewServer returns an empty mailbox server with unbounded mailboxes.
func NewServer() *Server { return NewServerLimited(0) }

// NewServerLimited returns an empty mailbox server whose mailboxes
// each retain at most maxDepth messages (0 = unlimited).
func NewServerLimited(maxDepth int) *Server {
	return &Server{
		boxes:    make(map[uint64]map[string][][]byte),
		depth:    make(map[string]int),
		maxDepth: maxDepth,
	}
}

// Put appends a message to a mailbox for a round, returning how many
// old messages the depth cap evicted. The message is stored as given;
// mailbox servers never inspect contents.
func (s *Server) Put(round uint64, mailbox []byte, msg []byte) (dropped int) {
	return s.PutBatch(round, []Delivery{{Mailbox: mailbox, Msg: msg}})
}

// Delivery is one routed message: a mailbox identifier and the
// opaque message bytes destined for it.
type Delivery struct {
	Mailbox []byte
	Msg     []byte
}

// PutBatch appends a batch of messages to their mailboxes for a
// round under a single lock acquisition — the bulk path mix chains
// use when a whole round's output lands at once. The return value is
// the number of old messages evicted by the depth cap.
func (s *Server) PutBatch(round uint64, items []Delivery) (dropped int) {
	if len(items) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rb, ok := s.boxes[round]
	if !ok {
		rb = make(map[string][][]byte)
		s.boxes[round] = rb
	}
	for _, it := range items {
		mb := string(it.Mailbox)
		rb[mb] = append(rb[mb], append([]byte(nil), it.Msg...))
		s.depth[mb]++
		for s.maxDepth > 0 && s.depth[mb] > s.maxDepth {
			s.evictOldestLocked(mb)
			dropped++
		}
	}
	obsDeliveredIn.Add(uint64(len(items)))
	obsStored.Add(int64(len(items) - dropped))
	if dropped > 0 {
		obsDropped.Add(uint64(dropped))
	}
	return dropped
}

// evictOldestLocked removes mailbox mb's single oldest message: the
// first entry of its earliest retained round. Callers hold s.mu and
// guarantee depth[mb] > 0.
func (s *Server) evictOldestLocked(mb string) {
	oldest := uint64(0)
	found := false
	for r, rb := range s.boxes {
		if len(rb[mb]) == 0 {
			continue
		}
		if !found || r < oldest {
			oldest, found = r, true
		}
	}
	if !found {
		return
	}
	msgs := s.boxes[oldest][mb]
	if len(msgs) == 1 {
		delete(s.boxes[oldest], mb)
	} else {
		s.boxes[oldest][mb] = msgs[1:]
	}
	s.depth[mb]--
	if s.depth[mb] == 0 {
		delete(s.depth, mb)
	}
}

// Ack removes a mailbox's messages for a round after the owner has
// confirmed receipt, so delivered mail never accretes (and, under a
// durable store, is compacted out at the next snapshot). Returns how
// many messages were pruned.
func (s *Server) Ack(round uint64, mailbox []byte) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	mb := string(mailbox)
	n := len(s.boxes[round][mb])
	if n == 0 {
		return 0
	}
	delete(s.boxes[round], mb)
	s.depth[mb] -= n
	if s.depth[mb] <= 0 {
		delete(s.depth, mb)
	}
	obsAcked.Add(uint64(n))
	obsStored.Add(int64(-n))
	return n
}

// Get returns all messages delivered to a mailbox in a round; the
// owner downloads all of them at the end of the round (§4 step 4).
func (s *Server) Get(round uint64, mailbox []byte) [][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	msgs := s.boxes[round][string(mailbox)]
	out := make([][]byte, len(msgs))
	for i, m := range msgs {
		out[i] = append([]byte(nil), m...)
	}
	return out
}

// CountForRound returns the total number of messages stored for a
// round, for capacity accounting and tests.
func (s *Server) CountForRound(round uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, msgs := range s.boxes[round] {
		n += len(msgs)
	}
	return n
}

// PruneBefore drops all rounds older than the given round, bounding
// memory across a long-running deployment.
func (s *Server) PruneBefore(round uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pruned := 0
	for r, rb := range s.boxes {
		if r < round {
			for mb, msgs := range rb {
				pruned += len(msgs)
				s.depth[mb] -= len(msgs)
				if s.depth[mb] <= 0 {
					delete(s.depth, mb)
				}
			}
			delete(s.boxes, r)
		}
	}
	if pruned > 0 {
		obsPruned.Add(uint64(pruned))
		obsStored.Add(int64(-pruned))
	}
}

// Entry is one mailbox's retained messages for one round, as exported
// for snapshots.
type Entry struct {
	Round   uint64
	Mailbox []byte
	Msgs    [][]byte
}

// export deep-copies the server's retained state, sorted by (round,
// mailbox) so snapshots are deterministic.
func (s *Server) export() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for r, rb := range s.boxes {
		for mb, msgs := range rb {
			cp := make([][]byte, len(msgs))
			for i, m := range msgs {
				cp[i] = append([]byte(nil), m...)
			}
			out = append(out, Entry{Round: r, Mailbox: []byte(mb), Msgs: cp})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Round != out[j].Round {
			return out[i].Round < out[j].Round
		}
		return bytes.Compare(out[i].Mailbox, out[j].Mailbox) < 0
	})
	return out
}

// Cluster shards mailboxes over several servers by identifier hash,
// mirroring "different users' mailboxes can be maintained by
// different servers" (§5.1).
type Cluster struct {
	servers []*Server
}

// NewCluster creates a cluster of n fresh mailbox servers with
// unbounded mailboxes.
func NewCluster(n int) (*Cluster, error) { return NewClusterLimited(n, 0) }

// NewClusterLimited creates a cluster of n fresh mailbox servers,
// each capping mailboxes at maxDepth retained messages (0 =
// unlimited, oldest evicted first past the cap).
func NewClusterLimited(n, maxDepth int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("mailbox: cluster needs at least one server, got %d", n)
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		c.servers = append(c.servers, NewServerLimited(maxDepth))
	}
	return c, nil
}

// NumServers returns the cluster size.
func (c *Cluster) NumServers() int { return len(c.servers) }

// serverIndex routes a mailbox identifier to its home server's index.
func (c *Cluster) serverIndex(mailbox []byte) int {
	h := sha256.Sum256(mailbox)
	return int(binary.BigEndian.Uint64(h[:8]) % uint64(len(c.servers)))
}

// serverFor routes a mailbox identifier to its home server.
func (c *Cluster) serverFor(mailbox []byte) *Server {
	return c.servers[c.serverIndex(mailbox)]
}

// deliverConcurrencyThreshold is the batch size below which Deliver
// stays serial: spawning goroutines costs more than a handful of map
// appends.
const deliverConcurrencyThreshold = 64

// Deliver routes a batch of mix-chain output messages to their
// mailboxes (Algorithm 1 step 2b: "send the message to the mailbox
// server that manages mailbox pk_u"). Malformed messages are counted
// and dropped; mix chains only emit well-formed ones. dropped counts
// old messages the per-mailbox depth cap evicted to make room.
//
// The batch is bucketed by home server first and each server's bucket
// lands through one PutBatch — one lock acquisition per server rather
// than one per message — with the per-server stores written
// concurrently for large batches. Deliver is safe to call
// concurrently (the round pipeline delivers every chain's output in
// parallel); cross-server sharding keeps those writers off each
// other's locks.
func (c *Cluster) Deliver(round uint64, msgs [][]byte) (delivered, malformed, dropped int) {
	buckets := make([][]Delivery, len(c.servers))
	for _, m := range msgs {
		rcpt, err := onion.Recipient(m)
		if err != nil {
			malformed++
			continue
		}
		i := c.serverIndex(rcpt)
		buckets[i] = append(buckets[i], Delivery{Mailbox: rcpt, Msg: m})
		delivered++
	}
	if delivered < deliverConcurrencyThreshold || len(c.servers) == 1 {
		for i, b := range buckets {
			dropped += c.servers[i].PutBatch(round, b)
		}
		return delivered, malformed, dropped
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		dropTot int
	)
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *Server, items []Delivery) {
			defer wg.Done()
			n := s.PutBatch(round, items)
			if n > 0 {
				mu.Lock()
				dropTot += n
				mu.Unlock()
			}
		}(c.servers[i], b)
	}
	wg.Wait()
	return delivered, malformed, dropped + dropTot
}

// Fetch returns the round's messages for a mailbox from its home
// server.
func (c *Cluster) Fetch(round uint64, mailbox []byte) [][]byte {
	return c.serverFor(mailbox).Get(round, mailbox)
}

// Ack prunes a mailbox's messages for a round once the owner has
// acknowledged receipt, returning the number removed.
func (c *Cluster) Ack(round uint64, mailbox []byte) int {
	return c.serverFor(mailbox).Ack(round, mailbox)
}

// Export deep-copies the cluster's retained state in deterministic
// (round, mailbox) order, for durability snapshots.
func (c *Cluster) Export() []Entry {
	var out []Entry
	for _, s := range c.servers {
		out = append(out, s.export()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Round != out[j].Round {
			return out[i].Round < out[j].Round
		}
		return bytes.Compare(out[i].Mailbox, out[j].Mailbox) < 0
	})
	return out
}

// Import loads exported entries back into the cluster, routing each
// mailbox to its home server. Used on crash recovery before WAL
// records replay on top.
func (c *Cluster) Import(entries []Entry) {
	for _, e := range entries {
		for _, m := range e.Msgs {
			c.serverFor(e.Mailbox).Put(e.Round, e.Mailbox, m)
		}
	}
}

// TotalForRound sums stored messages across all servers for a round.
func (c *Cluster) TotalForRound(round uint64) int {
	n := 0
	for _, s := range c.servers {
		n += s.CountForRound(round)
	}
	return n
}

// PruneBefore prunes old rounds on every server.
func (c *Cluster) PruneBefore(round uint64) {
	for _, s := range c.servers {
		s.PruneBefore(round)
	}
}

package mailbox

import (
	"bytes"
	"testing"

	"repro/internal/group"
)

func TestDepthCapEvictsOldest(t *testing.T) {
	s := NewServerLimited(3)
	mb := []byte("alice")
	for i := 0; i < 5; i++ {
		dropped := s.Put(uint64(i), mb, []byte{byte(i)})
		if i < 3 && dropped != 0 {
			t.Fatalf("put %d: dropped %d under cap", i, dropped)
		}
		if i >= 3 && dropped != 1 {
			t.Fatalf("put %d: dropped %d, want 1", i, dropped)
		}
	}
	// Rounds 0 and 1 were evicted; 2..4 remain.
	for r := 0; r < 5; r++ {
		got := s.Get(uint64(r), mb)
		if r < 2 && len(got) != 0 {
			t.Fatalf("round %d survived eviction: %v", r, got)
		}
		if r >= 2 && (len(got) != 1 || got[0][0] != byte(r)) {
			t.Fatalf("round %d = %v", r, got)
		}
	}
}

func TestDepthCapWithinOneRound(t *testing.T) {
	s := NewServerLimited(2)
	mb := []byte("bob")
	dropped := s.PutBatch(7, []Delivery{
		{Mailbox: mb, Msg: []byte("a")},
		{Mailbox: mb, Msg: []byte("b")},
		{Mailbox: mb, Msg: []byte("c")},
	})
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	got := s.Get(7, mb)
	if len(got) != 2 || string(got[0]) != "b" || string(got[1]) != "c" {
		t.Fatalf("retained %q, want [b c]", got)
	}
}

func TestDepthCapPerMailbox(t *testing.T) {
	s := NewServerLimited(1)
	if d := s.Put(1, []byte("a"), []byte("x")); d != 0 {
		t.Fatalf("dropped %d", d)
	}
	// A different mailbox has its own budget.
	if d := s.Put(1, []byte("b"), []byte("y")); d != 0 {
		t.Fatalf("dropped %d", d)
	}
}

func TestAckPrunes(t *testing.T) {
	s := NewServer()
	mb := []byte("carol")
	s.Put(3, mb, []byte("m1"))
	s.Put(3, mb, []byte("m2"))
	s.Put(4, mb, []byte("m3"))
	if n := s.Ack(3, mb); n != 2 {
		t.Fatalf("Ack round 3 pruned %d, want 2", n)
	}
	if got := s.Get(3, mb); len(got) != 0 {
		t.Fatalf("acked mail still present: %v", got)
	}
	if got := s.Get(4, mb); len(got) != 1 {
		t.Fatalf("unacked round lost: %v", got)
	}
	if n := s.Ack(3, mb); n != 0 {
		t.Fatalf("second Ack pruned %d", n)
	}
	// Ack frees depth budget.
	s2 := NewServerLimited(1)
	s2.Put(1, mb, []byte("old"))
	s2.Ack(1, mb)
	if d := s2.Put(2, mb, []byte("new")); d != 0 {
		t.Fatalf("ack did not release depth: dropped %d", d)
	}
}

func TestPruneBeforeReleasesDepth(t *testing.T) {
	s := NewServerLimited(2)
	mb := []byte("dave")
	s.Put(1, mb, []byte("a"))
	s.Put(2, mb, []byte("b"))
	s.PruneBefore(3)
	if d := s.PutBatch(3, []Delivery{{Mailbox: mb, Msg: []byte("c")}, {Mailbox: mb, Msg: []byte("d")}}); d != 0 {
		t.Fatalf("prune did not release depth: dropped %d", d)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	c.serverFor([]byte("u1")).Put(1, []byte("u1"), []byte("m1"))
	c.serverFor([]byte("u1")).Put(2, []byte("u1"), []byte("m2"))
	c.serverFor([]byte("u2")).Put(1, []byte("u2"), []byte("m3"))

	exp := c.Export()
	if len(exp) != 3 {
		t.Fatalf("exported %d entries, want 3", len(exp))
	}
	// Deterministic order: (round, mailbox) ascending.
	for i := 1; i < len(exp); i++ {
		a, b := exp[i-1], exp[i]
		if a.Round > b.Round || (a.Round == b.Round && bytes.Compare(a.Mailbox, b.Mailbox) >= 0) {
			t.Fatalf("export order broken at %d: %+v then %+v", i, a, b)
		}
	}

	c2, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	c2.Import(exp)
	for _, e := range exp {
		got := c2.Fetch(e.Round, e.Mailbox)
		if len(got) != len(e.Msgs) {
			t.Fatalf("round %d mailbox %q: %d msgs after import, want %d", e.Round, e.Mailbox, len(got), len(e.Msgs))
		}
		for i := range got {
			if !bytes.Equal(got[i], e.Msgs[i]) {
				t.Fatalf("message %d mismatch after import", i)
			}
		}
	}
	// Export of the copy matches the original byte for byte.
	exp2 := c2.Export()
	if len(exp2) != len(exp) {
		t.Fatalf("re-export %d entries, want %d", len(exp2), len(exp))
	}
}

func TestDeliverReportsDropped(t *testing.T) {
	c, err := NewClusterLimited(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two well-formed messages to the same recipient overflow a
	// depth-1 mailbox.
	rcpt := group.Base(group.NewScalar(42))
	m1 := mailboxMsg(t, rcpt, 9)
	m2 := mailboxMsg(t, rcpt, 9)
	delivered, malformed, dropped := c.Deliver(9, [][]byte{m1, m2})
	if delivered != 2 || malformed != 0 || dropped != 1 {
		t.Fatalf("Deliver = (%d, %d, %d), want (2, 0, 1)", delivered, malformed, dropped)
	}
}

// Package topology forms the mix chains of an XRD network (§5.2.1).
//
// Servers are sampled into n chains of k servers each from a public
// randomness seed, where k is chosen so that the probability that any
// chain consists only of malicious servers is negligible: with a
// fraction f of malicious servers, a chain of length k is all-bad
// with probability f^k, so n chains are all safe except with
// probability at most n·f^k (union bound), and k is the smallest
// integer with n·f^k ≤ 2^−λ.
//
// The paper sets the number of chains n equal to the number of
// servers N, so each server appears in k chains on average, and
// "staggers" each server's position across its chains to keep every
// server busy in every phase of a round (§5.2.1); staggering has no
// security impact because anytrust only needs one honest member
// anywhere in the chain.
//
// The paper sources the seed from a public randomness beacon
// (Bitcoin/drand-style [7,43]); here the seed is an input, and
// everything derived from it is deterministic and publicly
// recomputable, which is all the beacon provides.
package topology

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// DefaultSecurityBits is λ in n·f^k ≤ 2^−λ, matching the paper's
// 2^−64 target (§5.2.1).
const DefaultSecurityBits = 64

// ChainLength returns the smallest k such that n·f^k ≤ 2^−λ. It
// panics for f outside (0, 1) or n < 1; configurations are validated
// at network assembly.
//
// For f=0.2, λ=64: k=31 at n=100 and k=33 at n=6000. The paper quotes
// k=32 for n<6000; use the explicit override in Config for
// exact-paper comparisons.
func ChainLength(f float64, n int, securityBits int) int {
	if f <= 0 || f >= 1 || n < 1 {
		panic(fmt.Sprintf("topology: invalid chain length parameters f=%v n=%d", f, n))
	}
	// k > (λ·ln2 + ln n) / (−ln f)
	k := (float64(securityBits)*math.Ln2 + math.Log(float64(n))) / (-math.Log(f))
	ki := int(math.Ceil(k))
	if math.Ceil(k) == k {
		ki++ // strict inequality
	}
	if ki < 1 {
		ki = 1
	}
	return ki
}

// CompromiseProbability returns the union-bound probability n·f^k
// that at least one chain is entirely malicious.
func CompromiseProbability(f float64, n, k int) float64 {
	return float64(n) * math.Pow(f, float64(k))
}

// Config describes how to build a topology.
type Config struct {
	// NumServers is N, the number of mix servers. Ignored when
	// Servers is set.
	NumServers int
	// Servers, if non-nil, lists the explicit server identities to
	// sample chains from, in place of the contiguous 0..NumServers-1.
	// Epoch re-formation after evictions uses this: the surviving
	// server set keeps its original ids (which name hop transports)
	// even though it is no longer contiguous.
	Servers []int
	// NumChains is n; the paper sets n = N (§5.2.1). Zero means N.
	NumChains int
	// F is the assumed fraction of malicious servers (paper default
	// 0.2).
	F float64
	// SecurityBits is λ; zero means DefaultSecurityBits.
	SecurityBits int
	// ChainLengthOverride, if nonzero, fixes k instead of deriving it
	// (the paper's evaluation uses k=32 for f=0.2).
	ChainLengthOverride int
	// Seed is the public randomness used to sample chains.
	Seed []byte
	// DisableStaggering turns off the position-staggering
	// optimisation, for the ablation benchmark.
	DisableStaggering bool
}

// Topology is the assignment of servers to chain positions.
type Topology struct {
	// NumServers is N.
	NumServers int
	// ChainLength is k.
	ChainLength int
	// Servers lists the participating server ids; contiguous
	// 0..N-1 for a fresh deployment, a sparse subset after evictions.
	Servers []int
	// Chains[c][p] is the server occupying position p of chain c.
	Chains [][]int
}

// prg is a deterministic byte stream: SHA-256 in counter mode over the
// seed. It stands in for the public randomness beacon.
type prg struct {
	seed    [32]byte
	counter uint64
	buf     []byte
}

func newPRG(seed []byte, domain string) *prg {
	h := sha256.New()
	h.Write([]byte(domain))
	h.Write(seed)
	var s [32]byte
	copy(s[:], h.Sum(nil))
	return &prg{seed: s}
}

func (p *prg) uint64() uint64 {
	if len(p.buf) < 8 {
		var block [8 + 32]byte
		binary.BigEndian.PutUint64(block[:8], p.counter)
		copy(block[8:], p.seed[:])
		d := sha256.Sum256(block[:])
		p.counter++
		p.buf = append(p.buf, d[:]...)
	}
	v := binary.BigEndian.Uint64(p.buf[:8])
	p.buf = p.buf[8:]
	return v
}

// intn returns a uniform value in [0, n) by rejection sampling.
func (p *prg) intn(n int) int {
	max := uint64(n)
	limit := (math.MaxUint64 / max) * max
	for {
		v := p.uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Build samples the topology from cfg. All participants given the
// same cfg compute the same topology.
func Build(cfg Config) (*Topology, error) {
	servers := cfg.Servers
	if len(servers) == 0 {
		if cfg.NumServers < 1 {
			return nil, fmt.Errorf("topology: need at least one server, got %d", cfg.NumServers)
		}
		servers = make([]int, cfg.NumServers)
		for i := range servers {
			servers[i] = i
		}
	}
	N := len(servers)
	n := cfg.NumChains
	if n == 0 {
		n = N
	}
	bits := cfg.SecurityBits
	if bits == 0 {
		bits = DefaultSecurityBits
	}
	k := cfg.ChainLengthOverride
	if k == 0 {
		if cfg.F <= 0 || cfg.F >= 1 {
			return nil, fmt.Errorf("topology: fraction of malicious servers f=%v outside (0,1)", cfg.F)
		}
		k = ChainLength(cfg.F, n, bits)
	}
	if k > N {
		// Chains sample distinct servers; with very few servers the
		// anytrust target is unreachable and the caller must lower λ
		// or raise N. We cap k at N and report it so small test
		// deployments still work explicitly via the override.
		return nil, fmt.Errorf("topology: chain length k=%d exceeds server count N=%d; use ChainLengthOverride for small deployments", k, N)
	}

	// Sample and stagger in dense index space [0, N), then translate
	// indices to server ids: id sets with holes (post-eviction
	// epochs) sample with the exact same distribution as fresh ones.
	r := newPRG(cfg.Seed, "xrd/topology/v1")
	chains := make([][]int, n)
	for c := range chains {
		chains[c] = sampleDistinct(r, N, k)
	}
	t := &Topology{NumServers: N, ChainLength: k, Servers: append([]int(nil), servers...), Chains: chains}
	if !cfg.DisableStaggering {
		t.stagger()
	}
	for _, members := range t.Chains {
		for p, idx := range members {
			members[p] = servers[idx]
		}
	}
	return t, nil
}

// sampleDistinct draws k distinct values from [0, n) via a partial
// Fisher-Yates over a virtual array.
func sampleDistinct(r *prg, n, k int) []int {
	swapped := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.intn(n-i)
		vi, ok := swapped[j]
		if !ok {
			vi = j
		}
		cur, ok := swapped[i]
		if !ok {
			cur = i
		}
		out[i] = vi
		swapped[j] = cur
	}
	return out
}

// stagger reorders each chain's members so that a server appearing in
// many chains occupies different positions in them, minimising idle
// time (§5.2.1). Ordering within a chain has no security impact.
// Greedy assignment: fill each position with the member that has used
// that position least so far. Runs while Chains still holds dense
// indices in [0, NumServers), before Build translates them to ids.
func (t *Topology) stagger() {
	k := t.ChainLength
	// positionUse[s][p] counts how often server s already holds
	// position p.
	positionUse := make([][]int, t.NumServers)
	for s := range positionUse {
		positionUse[s] = make([]int, k)
	}
	for c, members := range t.Chains {
		remaining := append([]int(nil), members...)
		ordered := make([]int, 0, k)
		for p := 0; p < k; p++ {
			bestIdx := 0
			for i := 1; i < len(remaining); i++ {
				if positionUse[remaining[i]][p] < positionUse[remaining[bestIdx]][p] {
					bestIdx = i
				}
			}
			s := remaining[bestIdx]
			positionUse[s][p]++
			ordered = append(ordered, s)
			remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		}
		t.Chains[c] = ordered
	}
}

// ChainsOfServer returns the (chain, position) slots server s holds.
func (t *Topology) ChainsOfServer(s int) [][2]int {
	var out [][2]int
	for c, members := range t.Chains {
		for p, m := range members {
			if m == s {
				out = append(out, [2]int{c, p})
			}
		}
	}
	return out
}

// PositionSpread returns, for server s, the number of distinct
// positions it occupies divided by the number of chains it belongs to
// (1.0 = perfectly staggered, capped by k).
func (t *Topology) PositionSpread(s int) float64 {
	slots := t.ChainsOfServer(s)
	if len(slots) == 0 {
		return 1
	}
	seen := make(map[int]bool)
	for _, sl := range slots {
		seen[sl[1]] = true
	}
	denom := len(slots)
	if denom > t.ChainLength {
		denom = t.ChainLength
	}
	return float64(len(seen)) / float64(denom)
}

// FailedChains returns the indices of chains containing at least one
// of the failed servers. Only these chains' conversations are
// affected by the failure (§5.2.3).
func (t *Topology) FailedChains(failed map[int]bool) []int {
	var out []int
	for c, members := range t.Chains {
		for _, m := range members {
			if failed[m] {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

package topology

import (
	"math"
	"testing"
)

func TestChainLengthPaperExample(t *testing.T) {
	// §5.2.1: f=0.2, target 2^-64, n<6000 → paper says k=32. The
	// exact union-bound formula gives k=31 at n=100 and k=33 at
	// n=6000 (documented deviation in DESIGN.md). Check the formula's
	// own guarantee instead of the rounded prose value, plus
	// proximity to the paper's figure.
	for _, n := range []int{100, 1000, 6000} {
		k := ChainLength(0.2, n, 64)
		if p := CompromiseProbability(0.2, n, k); p > math.Pow(2, -64) {
			t.Fatalf("n=%d k=%d: compromise probability %g > 2^-64", n, k, p)
		}
		if p := CompromiseProbability(0.2, n, k-1); p <= math.Pow(2, -64) {
			t.Fatalf("n=%d: k=%d not minimal", n, k)
		}
		if k < 30 || k > 34 {
			t.Fatalf("n=%d: k=%d far from paper's 32", n, k)
		}
	}
}

func TestChainLengthGrowsWithF(t *testing.T) {
	// Figure 6's mechanism: k grows as −1/log f.
	prev := 0
	for _, f := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		k := ChainLength(f, 100, 64)
		if k <= prev {
			t.Fatalf("k(f=%v) = %d not increasing (prev %d)", f, k, prev)
		}
		prev = k
	}
}

func TestChainLengthLogarithmicInN(t *testing.T) {
	// §4.2: k depends logarithmically on N.
	k1 := ChainLength(0.2, 100, 64)
	k2 := ChainLength(0.2, 10000, 64)
	if k2-k1 > 3 {
		t.Fatalf("k grew by %d over 100x more chains; expected logarithmic growth", k2-k1)
	}
}

func TestChainLengthPanicsOnBadInput(t *testing.T) {
	for _, f := range []float64{0, 1, -0.1, 1.5} {
		func() {
			defer func() { recover() }()
			ChainLength(f, 100, 64)
			t.Errorf("ChainLength(f=%v) did not panic", f)
		}()
	}
}

func testConfig(n int) Config {
	return Config{
		NumServers: n,
		F:          0.2,
		Seed:       []byte("public-beacon-output"),
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(testConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(testConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.Chains {
		for p := range a.Chains[c] {
			if a.Chains[c][p] != b.Chains[c][p] {
				t.Fatal("same seed produced different topologies")
			}
		}
	}
	cfg := testConfig(64)
	cfg.Seed = []byte("different-beacon-output")
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for c := range a.Chains {
		for p := range a.Chains[c] {
			if a.Chains[c][p] != d.Chains[c][p] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical topologies")
	}
}

func TestBuildShape(t *testing.T) {
	top, err := Build(testConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Chains) != 64 {
		t.Fatalf("chains = %d, want n = N = 64", len(top.Chains))
	}
	for c, members := range top.Chains {
		if len(members) != top.ChainLength {
			t.Fatalf("chain %d has %d members, want k=%d", c, len(members), top.ChainLength)
		}
		seen := make(map[int]bool)
		for _, m := range members {
			if m < 0 || m >= 64 {
				t.Fatalf("chain %d has invalid member %d", c, m)
			}
			if seen[m] {
				t.Fatalf("chain %d repeats server %d", c, m)
			}
			seen[m] = true
		}
	}
}

func TestBuildRejectsTooFewServers(t *testing.T) {
	cfg := testConfig(10) // k≈29 > N=10
	if _, err := Build(cfg); err == nil {
		t.Fatal("Build accepted k > N")
	}
	cfg.ChainLengthOverride = 3
	top, err := Build(cfg)
	if err != nil {
		t.Fatalf("override rejected: %v", err)
	}
	if top.ChainLength != 3 {
		t.Fatalf("override not honoured: k=%d", top.ChainLength)
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(Config{NumServers: 0}); err == nil {
		t.Fatal("zero servers accepted")
	}
	if _, err := Build(Config{NumServers: 50, F: 0}); err == nil {
		t.Fatal("f=0 without override accepted")
	}
}

func TestServerAppearsInRoughlyKChains(t *testing.T) {
	// §5.2.1: with n=N each server appears in k chains on average.
	top, err := Build(testConfig(128))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < 128; s++ {
		total += len(top.ChainsOfServer(s))
	}
	avg := float64(total) / 128
	if math.Abs(avg-float64(top.ChainLength)) > 0.01 {
		t.Fatalf("average chains per server = %.2f, want k=%d", avg, top.ChainLength)
	}
}

func TestStaggeringSpreadsPositions(t *testing.T) {
	cfg := testConfig(64)
	staggered, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableStaggering = true
	plain, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}

	spreadOf := func(top *Topology) float64 {
		sum := 0.0
		for s := 0; s < top.NumServers; s++ {
			sum += top.PositionSpread(s)
		}
		return sum / float64(top.NumServers)
	}
	ss, sp := spreadOf(staggered), spreadOf(plain)
	if ss < sp {
		t.Fatalf("staggering reduced position spread: %.3f < %.3f", ss, sp)
	}
	if ss < 0.9 {
		t.Fatalf("staggered spread %.3f too low", ss)
	}
	// Staggering must preserve chain membership (only order changes).
	for c := range staggered.Chains {
		a := append([]int(nil), staggered.Chains[c]...)
		b := append([]int(nil), plain.Chains[c]...)
		counts := make(map[int]int)
		for i := range a {
			counts[a[i]]++
			counts[b[i]]--
		}
		for _, v := range counts {
			if v != 0 {
				t.Fatalf("staggering changed membership of chain %d", c)
			}
		}
	}
}

func TestFailedChains(t *testing.T) {
	top, err := Build(testConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if got := top.FailedChains(nil); len(got) != 0 {
		t.Fatalf("no failures but %d failed chains", len(got))
	}
	// Fail one server: exactly the chains containing it fail.
	failed := map[int]bool{7: true}
	want := make(map[int]bool)
	for _, slot := range top.ChainsOfServer(7) {
		want[slot[0]] = true
	}
	got := top.FailedChains(failed)
	if len(got) != len(want) {
		t.Fatalf("failed chains = %d, want %d", len(got), len(want))
	}
	for _, c := range got {
		if !want[c] {
			t.Fatalf("chain %d reported failed but does not contain server 7", c)
		}
	}
	// Failing every server fails every chain.
	all := make(map[int]bool)
	for s := 0; s < 64; s++ {
		all[s] = true
	}
	if got := top.FailedChains(all); len(got) != len(top.Chains) {
		t.Fatal("not all chains failed when all servers failed")
	}
}

func TestPRGUniformity(t *testing.T) {
	r := newPRG([]byte("seed"), "test")
	const buckets = 10
	counts := make([]int, buckets)
	for i := 0; i < 10000; i++ {
		counts[r.intn(buckets)]++
	}
	for b, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d has %d/10000 draws; PRG is skewed", b, c)
		}
	}
}

func BenchmarkBuild100(b *testing.B) {
	cfg := testConfig(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

package kdf

import (
	"bytes"
	"encoding/hex"
	"testing"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex in test: %v", err)
	}
	return b
}

// RFC 5869 Appendix A test vectors for HKDF-SHA256.

func TestRFC5869Case1(t *testing.T) {
	ikm := unhex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	salt := unhex(t, "000102030405060708090a0b0c")
	info := unhex(t, "f0f1f2f3f4f5f6f7f8f9")
	wantPRK := unhex(t, "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
	wantOKM := unhex(t, "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")

	prk := Extract(salt, ikm)
	if !bytes.Equal(prk, wantPRK) {
		t.Fatalf("PRK = %x, want %x", prk, wantPRK)
	}
	okm := Expand(prk, info, 42)
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

func TestRFC5869Case2LongInputs(t *testing.T) {
	var ikm, salt, info []byte
	for i := 0x00; i <= 0x4f; i++ {
		ikm = append(ikm, byte(i))
	}
	for i := 0x60; i <= 0xaf; i++ {
		salt = append(salt, byte(i))
	}
	for i := 0xb0; i <= 0xff; i++ {
		info = append(info, byte(i))
	}
	wantOKM := unhex(t, "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"+
		"59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"+
		"cc30c58179ec3e87c14c01d5c1f3434f1d87")
	okm := Derive(ikm, salt, info, 82)
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

func TestRFC5869Case3NoSaltNoInfo(t *testing.T) {
	ikm := unhex(t, "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b")
	wantOKM := unhex(t, "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
	okm := Derive(ikm, nil, nil, 42)
	if !bytes.Equal(okm, wantOKM) {
		t.Fatalf("OKM = %x, want %x", okm, wantOKM)
	}
}

func TestExpandLengths(t *testing.T) {
	prk := Extract(nil, []byte("secret"))
	for _, n := range []int{1, 31, 32, 33, 64, 100, 255} {
		out := Expand(prk, []byte("info"), n)
		if len(out) != n {
			t.Errorf("Expand length %d produced %d bytes", n, len(out))
		}
	}
	// Prefix property: shorter outputs are prefixes of longer ones.
	long := Expand(prk, []byte("info"), 64)
	short := Expand(prk, []byte("info"), 32)
	if !bytes.Equal(long[:32], short) {
		t.Fatal("HKDF outputs are not prefix-consistent")
	}
}

func TestExpandTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Expand beyond RFC bound did not panic")
		}
	}()
	Expand(make([]byte, 32), nil, 255*32+1)
}

func TestConversationKeyDirectionality(t *testing.T) {
	var shared [32]byte
	copy(shared[:], []byte("shared-secret-between-alice-bob!"))
	toBob := ConversationKey(shared, []byte("pk-bob"))
	toAlice := ConversationKey(shared, []byte("pk-alice"))
	if toBob == toAlice {
		t.Fatal("directional conversation keys collide")
	}
	again := ConversationKey(shared, []byte("pk-bob"))
	if toBob != again {
		t.Fatal("conversation key derivation is not deterministic")
	}
}

func TestLoopbackKeyPerChain(t *testing.T) {
	var secret [32]byte
	secret[0] = 1
	k1 := LoopbackKey(secret, 1)
	k2 := LoopbackKey(secret, 2)
	if k1 == k2 {
		t.Fatal("loopback keys for different chains collide")
	}
	var other [32]byte
	other[0] = 2
	if LoopbackKey(other, 1) == k1 {
		t.Fatal("loopback keys for different users collide")
	}
}

func TestDomainSeparationAcrossKeyTypes(t *testing.T) {
	var s [32]byte
	copy(s[:], []byte("identical-input-secret-material!"))
	onion := OnionKey(s)
	inner := InnerKey(s)
	conv := ConversationKey(s, nil)
	if onion == inner || onion == conv || inner == conv {
		t.Fatal("key schedule domains are not separated")
	}
}

func BenchmarkDerive32(b *testing.B) {
	secret := make([]byte, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Derive(secret, nil, []byte("bench"), 32)
	}
}

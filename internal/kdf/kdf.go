// Package kdf implements HKDF-SHA256 (RFC 5869) and the XRD key
// schedule built on it.
//
// The paper's user protocol (Algorithm 2) derives directional
// conversation keys with a KDF: s_B = KDF(s_AB, pk_B) encrypts
// messages *to* Bob and s_A = KDF(s_AB, pk_A) encrypts messages *to*
// Alice, where s_AB = DH(pk_B, sk_A) is the shared secret. Loopback
// messages use a chain-specific key s_xA known only to the mailbox
// owner. This package provides all three derivations.
package kdf

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// KeySize is the size of all derived symmetric keys.
const KeySize = 32

// Extract implements HKDF-Extract: PRK = HMAC-Hash(salt, ikm). A nil
// salt is replaced by a string of hash-length zeros per RFC 5869.
func Extract(salt, ikm []byte) []byte {
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// Expand implements HKDF-Expand, producing length bytes of output key
// material from the pseudorandom key prk and context info. It panics
// if length exceeds 255 hash lengths, mirroring the RFC bound; XRD
// only derives short keys so this is an internal invariant.
func Expand(prk, info []byte, length int) []byte {
	if length > 255*sha256.Size {
		panic(fmt.Sprintf("kdf: expand length %d exceeds RFC 5869 bound", length))
	}
	var (
		out  = make([]byte, 0, length)
		prev []byte
	)
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(prev)
		mac.Write(info)
		mac.Write([]byte{counter})
		prev = mac.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length]
}

// Derive is the composed HKDF: Expand(Extract(salt, secret), info, n).
func Derive(secret, salt, info []byte, n int) []byte {
	return Expand(Extract(salt, secret), info, n)
}

// Key is a 32-byte symmetric key for the AEAD.
type Key [KeySize]byte

func deriveKey(secret []byte, domain string, context ...[]byte) Key {
	info := make([]byte, 0, 64)
	info = append(info, domain...)
	for _, c := range context {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(c)))
		info = append(info, l[:]...)
		info = append(info, c...)
	}
	var k Key
	copy(k[:], Derive(secret, []byte("xrd-v1"), info, KeySize))
	return k
}

// ConversationKey derives the directional key s_R = KDF(s_AB, pk_R)
// used to encrypt conversation messages addressed to the holder of
// recipient public key pkR (Algorithm 2 step 1b).
func ConversationKey(shared [32]byte, recipientPK []byte) Key {
	return deriveKey(shared[:], "conversation", recipientPK)
}

// LoopbackKey derives the chain-specific loopback key s_xA from a
// user's long-term loopback secret. Only the mailbox owner can derive
// it, so loopback messages are indistinguishable from conversation
// messages to everyone else (§5.3.2 step 1a).
func LoopbackKey(userSecret [32]byte, chain int) Key {
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], uint64(chain))
	return deriveKey(userSecret[:], "loopback", c[:])
}

// OnionKey derives the per-layer AEAD key from a Diffie-Hellman shared
// secret during onion encryption and mixing (Algorithm 1/§6.3 step 1).
func OnionKey(shared [32]byte) Key {
	return deriveKey(shared[:], "onion")
}

// InnerKey derives the AEAD key protecting the inner ciphertext of an
// AHS double envelope from DH(∏ ipk_i, y) (§6.2).
func InnerKey(shared [32]byte) Key {
	return deriveKey(shared[:], "inner")
}

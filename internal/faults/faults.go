// Package faults is a deterministic fault-injection layer for the
// rpc transport: an injectable net.Conn / net.Listener wrapper that
// can drop, delay, corrupt, partition, or blackhole specific
// connections mid-round.
//
// The chaos and adversary scenarios the paper's security argument
// assumes (§5.2.3, §6.3: halted chains, crashed and byzantine
// servers) need reproducible network misbehaviour. An Injector holds
// a rule set; every rule names a connection label pattern (hop
// clients are labelled per target server, hop endpoints per listener)
// and an operation. Whether a rule fires on a given I/O operation is
// a pure function of the injector seed and the rule's own operation
// counter — never of wall-clock time or goroutine scheduling — so a
// failing scenario replays exactly under `-race`, in CI, and across
// machines.
//
// Rules are armed and disarmed at runtime (scenario tables flip them
// between rounds) or parsed once from a -faults flag spec, so the
// same injector drives both unit tests and multi-process deployments
// (scripts/chaos_e2e.sh).
package faults

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Op is the kind of fault a rule injects.
type Op int

const (
	// Drop closes the connection at the triggering operation: the
	// abrupt process death of a hop (§5.2.3's server crash, observed
	// mid-round).
	Drop Op = iota
	// Delay sleeps before the triggering operation: a slow peer whose
	// responses arrive after the caller's rpc deadline.
	Delay
	// Corrupt flips a byte of the transferred data: a byzantine peer
	// whose frames no longer parse (caught by re-validation, converted
	// to blame).
	Corrupt
	// Blackhole makes reads hang until the deadline and silently
	// discards writes: a one-way partition where packets vanish but
	// the socket stays up.
	Blackhole
	// Partition refuses all traffic on matching connections while the
	// rule is armed: a full network partition between the two ends.
	Partition
)

var opNames = map[string]Op{
	"drop":      Drop,
	"delay":     Delay,
	"corrupt":   Corrupt,
	"blackhole": Blackhole,
	"partition": Partition,
}

func (o Op) String() string {
	for name, op := range opNames {
		if op == o {
			return name
		}
	}
	return fmt.Sprintf("faults.Op(%d)", int(o))
}

// Injection errors. Drop and Partition surface as transport errors so
// the chain orchestrator cannot distinguish them from a genuinely
// crashed or unreachable peer — which is the point.
var (
	ErrDropped     = errors.New("faults: connection dropped by injected fault")
	ErrPartitioned = errors.New("faults: connection partitioned by injected fault")
)

// Rule is one injected fault. A rule matches I/O operations on
// connections whose label matches Target; it skips the first After
// matched operations, then fires — gated by Prob — at most Count
// times (0 = unlimited).
type Rule struct {
	// Target is a path.Match pattern over connection labels
	// ("srv1", "srv*", "mix@*"); empty matches every label.
	Target string
	// Op is the fault to inject.
	Op Op
	// Delay is the added latency per firing (Delay op only).
	Delay time.Duration
	// After skips the first After matched I/O operations, so a fault
	// can hit mid-round: after the key announcement exchanges, say,
	// but before the mixing step completes.
	After int
	// Count bounds the number of firings; 0 means every match fires.
	Count int
	// Prob gates each firing on a deterministic per-operation coin in
	// [0,1]; 0 and 1 both mean "always fire". The coin depends only
	// on the injector seed, the rule, and the operation ordinal.
	Prob float64

	off   atomic.Bool
	ops   atomic.Int64
	fired atomic.Int64
}

// Disarm stops the rule from firing until Arm. Counters keep their
// values, so a re-armed Count-limited rule does not fire again once
// exhausted.
func (r *Rule) Disarm() { r.off.Store(true) }

// Arm re-enables a disarmed rule.
func (r *Rule) Arm() { r.off.Store(false) }

// Fired returns how many times the rule has fired, for scenario
// assertions ("the partition actually bit").
func (r *Rule) Fired() int { return int(r.fired.Load()) }

// matches reports whether the rule applies to a connection label.
func (r *Rule) matches(label string) bool {
	if r.off.Load() {
		return false
	}
	if r.Target == "" || r.Target == "*" {
		return true
	}
	ok, err := path.Match(r.Target, label)
	return err == nil && ok
}

// Injector applies a rule set to wrapped connections. The zero value
// is unusable; construct with New or Parse.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	rules []*Rule
}

// New returns an injector with the given determinism seed and initial
// rules. Two injectors with equal seeds and rule sets make identical
// decisions on identical operation sequences.
func New(seed int64, rules ...*Rule) *Injector {
	in := &Injector{seed: uint64(seed)}
	for _, r := range rules {
		in.Add(r)
	}
	return in
}

// Add installs a rule and returns it (for later Disarm/Fired use).
func (in *Injector) Add(r *Rule) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, r)
	return r
}

// Rules returns the installed rules in order.
func (in *Injector) Rules() []*Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]*Rule(nil), in.rules...)
}

// Parse builds an injector from a -faults flag spec: rules separated
// by ';', each "op[,key=value...]" with keys target, delay, after,
// count, prob. Examples:
//
//	drop,target=srv1,after=12,count=1
//	delay,delay=2s,target=srv*
//	partition,target=srv2
//	corrupt,prob=0.05
//
// An empty spec yields an injector with no rules (all traffic passes
// untouched).
func Parse(spec string, seed int64) (*Injector, error) {
	in := New(seed)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return in, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ",")
		op, ok := opNames[strings.TrimSpace(fields[0])]
		if !ok {
			return nil, fmt.Errorf("faults: unknown op %q in rule %q", fields[0], part)
		}
		r := &Rule{Op: op}
		for _, f := range fields[1:] {
			k, v, found := strings.Cut(strings.TrimSpace(f), "=")
			if !found {
				return nil, fmt.Errorf("faults: field %q in rule %q is not key=value", f, part)
			}
			var err error
			switch k {
			case "target":
				// path.Match reports malformed patterns lazily, per
				// call; validate here so a typo ("srv[") fails the flag
				// parse instead of silently matching nothing forever.
				if _, merr := path.Match(v, "probe"); merr != nil {
					err = fmt.Errorf("bad target pattern %q: %v", v, merr)
					break
				}
				r.Target = v
			case "delay":
				r.Delay, err = time.ParseDuration(v)
			case "after":
				r.After, err = strconv.Atoi(v)
				if err == nil && r.After < 0 {
					err = fmt.Errorf("after %d is negative", r.After)
				}
			case "count":
				r.Count, err = strconv.Atoi(v)
				if err == nil && r.Count < 0 {
					err = fmt.Errorf("count %d is negative", r.Count)
				}
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
				// The inverted comparison also rejects NaN, which would
				// otherwise slip past both bounds and always fire.
				if err == nil && !(r.Prob >= 0 && r.Prob <= 1) {
					err = fmt.Errorf("probability %v outside [0,1]", r.Prob)
				}
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("faults: rule %q: %v", part, err)
			}
		}
		if r.Op == Delay && r.Delay <= 0 {
			return nil, fmt.Errorf("faults: rule %q: delay op needs delay=<duration>", part)
		}
		in.Add(r)
	}
	return in, nil
}

// decide returns the rule that fires for one I/O operation on a
// labelled connection, or nil. The first matching armed rule that
// passes its After/Count/Prob gates wins.
func (in *Injector) decide(label string) *Rule {
	in.mu.Lock()
	rules := in.rules
	in.mu.Unlock()
	for i, r := range rules {
		if !r.matches(label) {
			continue
		}
		n := r.ops.Add(1)
		if n <= int64(r.After) {
			continue
		}
		if r.Count > 0 && r.fired.Load() >= int64(r.Count) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.coin(uint64(i), uint64(n)) >= r.Prob {
			continue
		}
		r.fired.Add(1)
		return r
	}
	return nil
}

// coin derives a deterministic uniform value in [0,1) from the seed,
// the rule ordinal, and the operation ordinal (splitmix64 finalizer).
func (in *Injector) coin(rule, n uint64) float64 {
	x := in.seed ^ rule*0x9E3779B97F4A7C15 ^ n*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// WrapConn applies the injector's rules to a connection under the
// given label. A nil injector returns the connection unchanged, so
// call sites can wrap unconditionally.
func (in *Injector) WrapConn(label string, c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	return &faultConn{Conn: c, in: in, label: label, closed: make(chan struct{})}
}

// Wrapper returns a conn-wrapping closure for the label, matching the
// hook signatures of rpc endpoints and clients. A nil injector yields
// nil — the "no faults" hook value.
func (in *Injector) Wrapper(label string) func(net.Conn) net.Conn {
	if in == nil {
		return nil
	}
	return func(c net.Conn) net.Conn { return in.WrapConn(label, c) }
}

// WrapListener wraps every accepted connection under the label.
func (in *Injector) WrapListener(label string, ln net.Listener) net.Listener {
	if in == nil {
		return ln
	}
	return &faultListener{Listener: ln, in: in, label: label}
}

type faultListener struct {
	net.Listener
	in    *Injector
	label string
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(l.label, c), nil
}

// faultConn injects the matching rules into every Read and Write. It
// tracks deadlines itself so a blackholed read can honour them
// without ever touching the underlying socket.
type faultConn struct {
	net.Conn
	in    *Injector
	label string

	mu            sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *faultConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *faultConn) Read(b []byte) (int, error) {
	r := c.in.decide(c.label)
	if r == nil {
		return c.Conn.Read(b)
	}
	switch r.Op {
	case Drop:
		c.Close()
		return 0, ErrDropped
	case Partition:
		c.Close()
		return 0, ErrPartitioned
	case Delay:
		c.sleep(r.Delay, c.deadline(&c.readDeadline))
		return c.Conn.Read(b)
	case Corrupt:
		n, err := c.Conn.Read(b)
		if n > 0 {
			b[n/2] ^= 0x40
		}
		return n, err
	case Blackhole:
		return 0, c.hang(c.deadline(&c.readDeadline))
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	r := c.in.decide(c.label)
	if r == nil {
		return c.Conn.Write(b)
	}
	switch r.Op {
	case Drop:
		c.Close()
		return 0, ErrDropped
	case Partition:
		c.Close()
		return 0, ErrPartitioned
	case Delay:
		c.sleep(r.Delay, c.deadline(&c.writeDeadline))
		return c.Conn.Write(b)
	case Corrupt:
		mangled := append([]byte(nil), b...)
		if len(mangled) > 0 {
			mangled[len(mangled)/2] ^= 0x40
		}
		return c.Conn.Write(mangled)
	case Blackhole:
		// Pretend success; the bytes vanish and the peer's idle
		// deadline eventually reaps its half of the connection.
		return len(b), nil
	}
	return c.Conn.Write(b)
}

func (c *faultConn) deadline(field *time.Time) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return *field
}

// sleep pauses for d but never (much) past the deadline: the
// operation proceeds and the underlying socket then reports the
// deadline violation exactly as a genuinely slow peer would cause.
func (c *faultConn) sleep(d time.Duration, deadline time.Time) {
	if !deadline.IsZero() {
		if until := time.Until(deadline) + 10*time.Millisecond; until < d {
			d = until
		}
	}
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	}
}

// hang blocks until the read deadline (or close) and reports it
// exceeded, without consuming socket data.
func (c *faultConn) hang(deadline time.Time) error {
	if deadline.IsZero() {
		<-c.closed
		return net.ErrClosed
	}
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case <-t.C:
		return os.ErrDeadlineExceeded
	case <-c.closed:
		return net.ErrClosed
	}
}

package faults

import (
	"bytes"
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair returns a wrapped client end and the raw server end of an
// in-memory connection, with an echo loop serving the raw end.
func pipePair(t *testing.T, in *Injector, label string) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	go func() {
		buf := make([]byte, 64)
		for {
			n, err := b.Read(buf)
			if err != nil {
				return
			}
			if _, err := b.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	return in.WrapConn(label, a), b
}

func TestParseSpec(t *testing.T) {
	in, err := Parse("drop,target=srv1,after=3,count=1; delay,delay=250ms,target=srv*; corrupt,prob=0.5", 42)
	if err != nil {
		t.Fatal(err)
	}
	rules := in.Rules()
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if rules[0].Op != Drop || rules[0].Target != "srv1" || rules[0].After != 3 || rules[0].Count != 1 {
		t.Fatalf("rule 0 parsed wrong: %+v", rules[0])
	}
	if rules[1].Op != Delay || rules[1].Delay != 250*time.Millisecond {
		t.Fatalf("rule 1 parsed wrong: %+v", rules[1])
	}
	if rules[2].Op != Corrupt || rules[2].Prob != 0.5 {
		t.Fatalf("rule 2 parsed wrong: %+v", rules[2])
	}
	if in, err := Parse("", 0); err != nil || len(in.Rules()) != 0 {
		t.Fatalf("empty spec: %v, %d rules", err, len(in.Rules()))
	}
	for _, bad := range []string{"explode", "drop,after=x", "delay,target=a", "drop,prob=1.5", "drop,foo=1"} {
		if _, err := Parse(bad, 0); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestDropAfterN(t *testing.T) {
	in := New(1, &Rule{Op: Drop, Target: "srv0", After: 2, Count: 1})
	c, _ := pipePair(t, in, "srv0")
	// Ops 1 and 2 (one write + one read) pass; op 3 drops.
	if _, err := c.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	buf := make([]byte, 8)
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if _, err := c.Write([]byte("two")); !errors.Is(err, ErrDropped) {
		t.Fatalf("op 3 err = %v, want ErrDropped", err)
	}
	// The connection is genuinely dead, not just erroring once.
	if _, err := c.Write([]byte("three")); err == nil {
		t.Fatal("write on dropped connection succeeded")
	}
}

func TestLabelMatching(t *testing.T) {
	in := New(1, &Rule{Op: Drop, Target: "srv1"})
	c, _ := pipePair(t, in, "srv2")
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("rule for srv1 hit srv2: %v", err)
	}
	glob := New(1, &Rule{Op: Drop, Target: "srv*"})
	g, _ := pipePair(t, glob, "srv7")
	if _, err := g.Write([]byte("x")); !errors.Is(err, ErrDropped) {
		t.Fatalf("glob srv* missed srv7: %v", err)
	}
}

func TestDelaySlowsReads(t *testing.T) {
	const lag = 80 * time.Millisecond
	in := New(1, &Rule{Op: Delay, Delay: lag})
	c, _ := pipePair(t, in, "srv0")
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*lag {
		t.Fatalf("two delayed ops took %v, want >= %v", elapsed, 2*lag)
	}
}

func TestDelayRespectsDeadline(t *testing.T) {
	in := New(1, &Rule{Op: Delay, Delay: 10 * time.Second})
	c, _ := pipePair(t, in, "srv0")
	c.SetDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := c.Write([]byte("ping"))
	if err == nil {
		buf := make([]byte, 8)
		_, err = c.Read(buf)
	}
	if err == nil {
		t.Fatal("delayed past deadline yet no error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("deadline-bounded delay slept %v", time.Since(start))
	}
}

func TestCorruptFlipsBytes(t *testing.T) {
	in := New(1, &Rule{Op: Corrupt})
	a, raw := net.Pipe()
	t.Cleanup(func() { a.Close(); raw.Close() })
	c := in.WrapConn("srv0", a)
	payload := []byte("payload-bytes")
	errCh := make(chan error, 1)
	got := make([]byte, len(payload))
	go func() {
		_, err := raw.Read(got)
		errCh <- err
	}()
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("corrupted write arrived intact")
	}
}

func TestBlackholeReadHitsDeadline(t *testing.T) {
	in := New(1, &Rule{Op: Blackhole})
	c, _ := pipePair(t, in, "srv0")
	c.SetReadDeadline(time.Now().Add(60 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 8))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read err = %v, want deadline exceeded", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("blackholed read returned before the deadline")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	in := New(1)
	rule := in.Add(&Rule{Op: Partition, Target: "srv0"})
	c, _ := pipePair(t, in, "srv0")
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned write err = %v", err)
	}
	rule.Disarm()
	// Healing lets a NEW connection through (the old one was torn
	// down, as with a real partition).
	c2, _ := pipePair(t, in, "srv0")
	if _, err := c2.Write([]byte("x")); err != nil {
		t.Fatalf("healed partition still blocks: %v", err)
	}
	if rule.Fired() != 1 {
		t.Fatalf("rule fired %d times, want 1", rule.Fired())
	}
}

func TestProbDeterminism(t *testing.T) {
	fire := func(seed int64) []bool {
		in := New(seed, &Rule{Op: Corrupt, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.decide("x") != nil
		}
		return out
	}
	a, b := fire(7), fire(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	diff := false
	for i, v := range fire(8) {
		if v != a[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical firing sequences (suspicious)")
	}
	n := 0
	for _, v := range a {
		if v {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("prob=0.5 fired %d/%d times", n, len(a))
	}
}

func TestNilInjectorPassthrough(t *testing.T) {
	var in *Injector
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if got := in.WrapConn("x", a); got != a {
		t.Fatal("nil injector wrapped the conn")
	}
	if in.Wrapper("x") != nil {
		t.Fatal("nil injector returned a wrapper")
	}
}

func TestWrapListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	in := New(1, &Rule{Op: Drop, Target: "accept@*"})
	wrapped := in.WrapListener("accept@test", ln)
	done := make(chan error, 1)
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Write([]byte("x"))
		done <- err
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := <-done; !errors.Is(err, ErrDropped) {
		t.Fatalf("accepted conn not wrapped: %v", err)
	}
}

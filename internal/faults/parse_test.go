package faults

import (
	"strings"
	"testing"
)

// Parse grammar edge cases: the -faults flag is typed by hand into
// deployment scripts, so malformed specs must fail the parse loudly
// instead of yielding a rule that silently never (or always) fires.

func TestParseEmptyRulesSkipped(t *testing.T) {
	for _, spec := range []string{";", " ; ; ", "drop;;", ";drop;", "drop; ;partition"} {
		in, err := Parse(spec, 0)
		if err != nil {
			t.Errorf("spec %q: %v", spec, err)
			continue
		}
		want := strings.Count(spec, "drop") + strings.Count(spec, "partition")
		if got := len(in.Rules()); got != want {
			t.Errorf("spec %q parsed to %d rules, want %d", spec, got, want)
		}
	}
}

func TestParseBadGlobRejected(t *testing.T) {
	for _, spec := range []string{"drop,target=srv[", "drop,target=[a-", `drop,target=\`} {
		_, err := Parse(spec, 0)
		if err == nil {
			t.Errorf("spec %q with malformed pattern parsed without error", spec)
			continue
		}
		if !strings.Contains(err.Error(), "pattern") {
			t.Errorf("spec %q error does not name the pattern: %v", spec, err)
		}
	}
	// The same characters in a well-formed class are fine.
	if _, err := Parse("drop,target=srv[0-9]", 0); err != nil {
		t.Errorf("well-formed class rejected: %v", err)
	}
}

func TestParseNegativeGatesRejected(t *testing.T) {
	for _, spec := range []string{"drop,after=-1", "drop,count=-2"} {
		if _, err := Parse(spec, 0); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}

func TestParseProbBounds(t *testing.T) {
	for _, spec := range []string{"corrupt,prob=0", "corrupt,prob=1", "corrupt,prob=0.999"} {
		if _, err := Parse(spec, 0); err != nil {
			t.Errorf("spec %q: %v", spec, err)
		}
	}
	for _, spec := range []string{"corrupt,prob=-0.1", "corrupt,prob=1.0001", "corrupt,prob=NaN", "corrupt,prob=x"} {
		if _, err := Parse(spec, 0); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}

// TestAfterCountOverlap pins the gate composition: after=N skips the
// first N matched operations, count=M bounds firings, so the rule
// fires on exactly operations N+1 .. N+M.
func TestAfterCountOverlap(t *testing.T) {
	in, err := Parse("drop,after=2,count=2", 7)
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	for op := 1; op <= 6; op++ {
		if r := in.decide("any"); r != nil {
			fired = append(fired, op)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("after=2,count=2 fired on ops %v, want [3 4]", fired)
	}
	if got := in.Rules()[0].Fired(); got != 2 {
		t.Fatalf("Fired() = %d, want 2", got)
	}
}

// TestAfterZeroCountZero: no gates means every matched operation
// fires — the degenerate overlap.
func TestAfterZeroCountZero(t *testing.T) {
	in, err := Parse("drop", 7)
	if err != nil {
		t.Fatal(err)
	}
	for op := 1; op <= 4; op++ {
		if in.decide("any") == nil {
			t.Fatalf("ungated rule skipped op %d", op)
		}
	}
}

package onion

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/kdf"
)

var scheme = aead.ChaCha20Poly1305()

func testKey() kdf.Key {
	var s [32]byte
	copy(s[:], []byte("test-conversation-shared-secret!"))
	return kdf.ConversationKey(s, []byte("recipient"))
}

func TestPayloadRoundTrip(t *testing.T) {
	for _, kind := range []Kind{KindLoopback, KindConversation, KindOffline} {
		p := Payload{Kind: kind, Body: []byte("hello, Bob")}
		b, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != PlaintextSize {
			t.Fatalf("marshalled size %d, want %d", len(b), PlaintextSize)
		}
		got, err := ParsePayload(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != kind || !bytes.Equal(got.Body, p.Body) {
			t.Fatalf("round trip: got %+v", got)
		}
	}
}

func TestPayloadEmptyAndFull(t *testing.T) {
	for _, n := range []int{0, 1, BodySize} {
		p := Payload{Kind: KindConversation, Body: bytes.Repeat([]byte{0xAB}, n)}
		b, err := p.Marshal()
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		got, err := ParsePayload(b)
		if err != nil || len(got.Body) != n {
			t.Fatalf("size %d: %v, body %d", n, err, len(got.Body))
		}
	}
}

func TestPayloadTooLong(t *testing.T) {
	p := Payload{Body: make([]byte, BodySize+1)}
	if _, err := p.Marshal(); err == nil {
		t.Fatal("oversized body accepted")
	}
}

func TestParsePayloadRejectsBadLength(t *testing.T) {
	if _, err := ParsePayload(make([]byte, PlaintextSize-1)); err == nil {
		t.Fatal("short plaintext accepted")
	}
	b := make([]byte, PlaintextSize)
	b[1], b[2] = 0xFF, 0xFF // body length 65535
	if _, err := ParsePayload(b); err == nil {
		t.Fatal("absurd body length accepted")
	}
}

func TestMailboxMessageRoundTrip(t *testing.T) {
	recipient := group.GenerateBaseKeyPair()
	key := testKey()
	nonce := aead.RoundNonce(3, 0)
	p := Payload{Kind: KindConversation, Body: []byte("see you at the crossroads")}
	msg, err := SealMailboxMessage(scheme, key, nonce, recipient.Public, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg) != MailboxMessageSize {
		t.Fatalf("mailbox message size %d, want %d", len(msg), MailboxMessageSize)
	}
	rcpt, err := Recipient(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rcpt, recipient.Public.Bytes()) {
		t.Fatal("recipient extraction failed")
	}
	got, err := OpenMailboxMessage(scheme, key, nonce, msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindConversation || !bytes.Equal(got.Body, p.Body) {
		t.Fatalf("round trip: got %+v", got)
	}
}

func TestMailboxMessageWrongKeyOrRound(t *testing.T) {
	recipient := group.GenerateBaseKeyPair()
	nonce := aead.RoundNonce(3, 0)
	msg, err := SealMailboxMessage(scheme, testKey(), nonce, recipient.Public, Payload{Kind: KindLoopback})
	if err != nil {
		t.Fatal(err)
	}
	var other [32]byte
	other[0] = 9
	if _, err := OpenMailboxMessage(scheme, kdf.ConversationKey(other, nil), nonce, msg); err == nil {
		t.Fatal("wrong key accepted")
	}
	if _, err := OpenMailboxMessage(scheme, testKey(), aead.RoundNonce(4, 0), msg); err == nil {
		t.Fatal("cross-round replay accepted")
	}
}

func chainKeys(k int) ([]group.Point, []group.Scalar) {
	pub := make([]group.Point, k)
	priv := make([]group.Scalar, k)
	for i := 0; i < k; i++ {
		kp := group.GenerateBaseKeyPair()
		pub[i], priv[i] = kp.Public, kp.Private
	}
	return pub, priv
}

func testMailboxMsg(t *testing.T, nonce [aead.NonceSize]byte) []byte {
	t.Helper()
	recipient := group.GenerateBaseKeyPair()
	msg, err := SealMailboxMessage(scheme, testKey(), nonce, recipient.Public, Payload{Kind: KindLoopback})
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func TestBaselineOnionPeelsToMailboxMessage(t *testing.T) {
	const k = 5
	nonce := aead.RoundNonce(1, 0)
	mixPub, mixPriv := chainKeys(k)
	inner := testMailboxMsg(t, nonce)

	ct, err := WrapBaseline(scheme, mixPub, nonce, inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != BaselineCiphertextSize(k) {
		t.Fatalf("ciphertext size %d, want %d", len(ct), BaselineCiphertextSize(k))
	}
	for i := 0; i < k; i++ {
		ct, err = PeelBaseline(scheme, mixPriv[i], nonce, ct)
		if err != nil {
			t.Fatalf("server %d peel: %v", i, err)
		}
	}
	if !bytes.Equal(ct, inner) {
		t.Fatal("peeled onion does not match mailbox message")
	}
}

func TestBaselinePeelOutOfOrderFails(t *testing.T) {
	nonce := aead.RoundNonce(1, 0)
	mixPub, mixPriv := chainKeys(3)
	ct, err := WrapBaseline(scheme, mixPub, nonce, testMailboxMsg(t, nonce))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PeelBaseline(scheme, mixPriv[1], nonce, ct); err == nil {
		t.Fatal("second server peeled the first layer")
	}
}

// aggInner builds the aggregate inner key and its secret sum as the
// chain does at setup.
func aggInner(k int) (group.Point, group.Scalar) {
	sum := group.NewScalar(0)
	agg := group.Identity()
	for i := 0; i < k; i++ {
		kp := group.GenerateBaseKeyPair()
		sum = sum.Add(kp.Private)
		agg = agg.Add(kp.Public)
	}
	return agg, sum
}

// ahsBlindingChain generates AHS key material: blinding and mixing
// keys chained per §6.1.
func ahsBlindingChain(k int) (bsk, msk []group.Scalar, bpk, mpk []group.Point) {
	base := group.Generator()
	for i := 0; i < k; i++ {
		b := group.MustRandomScalar()
		m := group.MustRandomScalar()
		bsk = append(bsk, b)
		msk = append(msk, m)
		bpk = append(bpk, base.Mul(b))
		mpk = append(mpk, base.Mul(m))
		base = bpk[i]
	}
	return
}

func TestAHSFullPath(t *testing.T) {
	const k = 4
	const round = 9
	const chain = 2
	nonce := aead.RoundNonce(round, 0)
	bsk, msk, _, mpk := ahsBlindingChain(k)
	innerAgg, innerSum := aggInner(k)
	mailbox := testMailboxMsg(t, nonce)

	sub, err := WrapAHS(scheme, innerAgg, mpk, round, chain, nonce, mailbox)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Ct) != AHSCiphertextSize(k) {
		t.Fatalf("AHS ciphertext size %d, want %d", len(sub.Ct), AHSCiphertextSize(k))
	}
	if err := VerifySubmission(sub, round, chain); err != nil {
		t.Fatalf("valid submission rejected: %v", err)
	}

	// Each server peels one layer and blinds the DH key.
	env := sub.Envelope
	for i := 0; i < k; i++ {
		next, err := PeelAHS(scheme, msk[i], nonce, env)
		if err != nil {
			t.Fatalf("server %d peel: %v", i, err)
		}
		env = Envelope{DHKey: env.DHKey.Mul(bsk[i]), Ct: next}
	}
	got, err := OpenInner(scheme, innerSum, nonce, env.Ct)
	if err != nil {
		t.Fatalf("inner open: %v", err)
	}
	if !bytes.Equal(got, mailbox) {
		t.Fatal("AHS did not deliver the mailbox message")
	}
}

func TestAHSSubmissionReplayRejected(t *testing.T) {
	const k = 3
	nonce := aead.RoundNonce(5, 0)
	_, _, _, mpk := ahsBlindingChain(k)
	innerAgg, _ := aggInner(k)
	sub, err := WrapAHS(scheme, innerAgg, mpk, 5, 1, nonce, testMailboxMsg(t, nonce))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySubmission(sub, 6, 1); err == nil {
		t.Fatal("submission replayed into another round")
	}
	if err := VerifySubmission(sub, 5, 2); err == nil {
		t.Fatal("submission replayed into another chain")
	}
}

func TestAHSTamperedCiphertextFailsAuth(t *testing.T) {
	const k = 3
	nonce := aead.RoundNonce(5, 0)
	_, msk, _, mpk := ahsBlindingChain(k)
	innerAgg, _ := aggInner(k)
	sub, err := WrapAHS(scheme, innerAgg, mpk, 5, 0, nonce, testMailboxMsg(t, nonce))
	if err != nil {
		t.Fatal(err)
	}
	bad := sub.Envelope.Clone()
	bad.Ct[10] ^= 1
	if _, err := PeelAHS(scheme, msk[0], nonce, bad); err == nil {
		t.Fatal("tampered AHS layer decrypted")
	}
}

// TestAHSRevealedKeyDecryption mirrors the blame protocol's step 2:
// decryption with the revealed exchanged key must agree with the
// server's own decryption.
func TestAHSRevealedKeyDecryption(t *testing.T) {
	const k = 2
	nonce := aead.RoundNonce(5, 0)
	_, msk, _, mpk := ahsBlindingChain(k)
	innerAgg, _ := aggInner(k)
	sub, err := WrapAHS(scheme, innerAgg, mpk, 5, 0, nonce, testMailboxMsg(t, nonce))
	if err != nil {
		t.Fatal(err)
	}
	own, err := PeelAHS(scheme, msk[0], nonce, sub.Envelope)
	if err != nil {
		t.Fatal(err)
	}
	revealed := DecryptKeyFor(sub.Envelope, msk[0])
	viaReveal, err := OpenWithRevealedKey(scheme, revealed, nonce, sub.Ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(own, viaReveal) {
		t.Fatal("revealed-key decryption disagrees with server decryption")
	}
}

func TestOpenInnerWrongSum(t *testing.T) {
	const k = 2
	nonce := aead.RoundNonce(5, 0)
	bsk, msk, _, mpk := ahsBlindingChain(k)
	innerAgg, innerSum := aggInner(k)
	sub, err := WrapAHS(scheme, innerAgg, mpk, 5, 0, nonce, testMailboxMsg(t, nonce))
	if err != nil {
		t.Fatal(err)
	}
	env := sub.Envelope
	for i := 0; i < k; i++ {
		next, err := PeelAHS(scheme, msk[i], nonce, env)
		if err != nil {
			t.Fatal(err)
		}
		env = Envelope{DHKey: env.DHKey.Mul(bsk[i]), Ct: next}
	}
	badSum := innerSum.Add(group.NewScalar(1))
	if _, err := OpenInner(scheme, badSum, nonce, env.Ct); err == nil {
		t.Fatal("inner envelope opened with wrong inner-key sum")
	}
}

// TestWireSizes records the sizes that feed the Figure 2 bandwidth
// model and ensures they only change deliberately.
func TestWireSizes(t *testing.T) {
	if MailboxMessageSize != 33+259+16 {
		t.Fatalf("MailboxMessageSize = %d", MailboxMessageSize)
	}
	if got := AHSCiphertextSize(32); got != 33+308+16+32*16 {
		t.Fatalf("AHSCiphertextSize(32) = %d", got)
	}
	if got := BaselineCiphertextSize(32); got != 308+32*49 {
		t.Fatalf("BaselineCiphertextSize(32) = %d", got)
	}
}

func BenchmarkWrapAHS32Layers(b *testing.B) {
	const k = 32
	nonce := aead.RoundNonce(1, 0)
	_, _, _, mpk := ahsBlindingChain(k)
	innerAgg, _ := aggInner(k)
	recipient := group.GenerateBaseKeyPair()
	msg, err := SealMailboxMessage(scheme, testKey(), nonce, recipient.Public, Payload{Kind: KindLoopback})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WrapAHS(scheme, innerAgg, mpk, 1, 0, nonce, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeelAHS(b *testing.B) {
	const k = 32
	nonce := aead.RoundNonce(1, 0)
	_, msk, _, mpk := ahsBlindingChain(k)
	innerAgg, _ := aggInner(k)
	recipient := group.GenerateBaseKeyPair()
	msg, _ := SealMailboxMessage(scheme, testKey(), nonce, recipient.Public, Payload{Kind: KindLoopback})
	sub, err := WrapAHS(scheme, innerAgg, mpk, 1, 0, nonce, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PeelAHS(scheme, msk[0], nonce, sub.Envelope); err != nil {
			b.Fatal(err)
		}
	}
}

// TestQuickAHSRoundTrip is a property test over random bodies and
// rounds: a full wrap -> peel×k -> blind×k -> inner-open cycle always
// recovers the original mailbox message.
func TestQuickAHSRoundTrip(t *testing.T) {
	const k = 3
	bsk, msk, _, mpk := ahsBlindingChain(k)
	innerAgg, innerSum := aggInner(k)
	f := func(round uint64, body []byte) bool {
		if len(body) > BodySize {
			body = body[:BodySize]
		}
		nonce := aead.RoundNonce(round, 0)
		recipient := group.GenerateBaseKeyPair()
		key := kdf.ConversationKey([32]byte{1}, recipient.Public.Bytes())
		msg, err := SealMailboxMessage(scheme, key, nonce, recipient.Public,
			Payload{Kind: KindConversation, Body: body})
		if err != nil {
			return false
		}
		sub, err := WrapAHS(scheme, innerAgg, mpk, round, 0, nonce, msg)
		if err != nil {
			return false
		}
		if VerifySubmission(sub, round, 0) != nil {
			return false
		}
		env := sub.Envelope
		for i := 0; i < k; i++ {
			next, err := PeelAHS(scheme, msk[i], nonce, env)
			if err != nil {
				return false
			}
			env = Envelope{DHKey: env.DHKey.Mul(bsk[i]), Ct: next}
		}
		got, err := OpenInner(scheme, innerSum, nonce, env.Ct)
		if err != nil {
			return false
		}
		p, err := OpenMailboxMessage(scheme, key, nonce, got)
		return err == nil && bytes.Equal(p.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Package onion defines XRD's message formats and onion encryption.
//
// Three nested layers exist (outermost first):
//
//  1. Outer onion: one AEAD layer per mix server, peeled during
//     mixing. Two constructions are provided: the baseline of
//     Algorithm 2 (a fresh Diffie-Hellman key per layer, secure only
//     against passive adversaries) and the AHS double envelope of
//     §6.2 (a single Diffie-Hellman key g^x with a knowledge proof,
//     blinded as it travels).
//
//  2. Inner ciphertext (AHS only): a one-shot encryption under the
//     product of the servers' per-round inner keys ∏ipkᵢ, opened
//     only after every server reveals its inner key at the end of a
//     successful round (§6.3). It keeps message contents hidden even
//     from the last server until the shuffle is verified.
//
//  3. Mailbox message: (pk_u, AEnc(s, ρ, payload)) — the recipient's
//     mailbox identifier plus the payload encrypted under a key only
//     the mailbox owner can derive (loopback key) or shares with her
//     partner (conversation key).
//
// Every message at every stage has a fixed size, which the privacy
// argument needs: the adversary sees identical traffic volumes
// regardless of who talks to whom.
package onion

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/aead"
	"repro/internal/group"
	"repro/internal/kdf"
	"repro/internal/nizk"
)

const (
	// BodySize is the fixed message body, 256 bytes like the paper's
	// evaluation (§8): "about the size of a standard SMS message or a
	// Tweet".
	BodySize = 256
	// payloadHeaderSize holds the kind byte and 2-byte body length.
	payloadHeaderSize = 3
	// PlaintextSize is the fixed inner plaintext size.
	PlaintextSize = payloadHeaderSize + BodySize
	// MailboxMessageSize is the fixed size of a message delivered to
	// a mailbox: recipient key, then sealed payload.
	MailboxMessageSize = group.PointSize + PlaintextSize + aead.Overhead
	// innerEnvelopeSize is the AHS inner ciphertext: ephemeral key
	// g^y plus the sealed mailbox message.
	innerEnvelopeSize = group.PointSize + MailboxMessageSize + aead.Overhead
)

// Kind distinguishes payload semantics after decryption. On the wire
// all kinds are indistinguishable.
type Kind byte

const (
	// KindLoopback marks a dummy message a user sends to her own
	// mailbox (§5.3.2 step 1a).
	KindLoopback Kind = iota
	// KindConversation carries conversation plaintext.
	KindConversation
	// KindOffline is the cover conversation message pre-submitted for
	// round ρ+1 that tells the partner the sender has gone offline
	// (§5.3.3).
	KindOffline
)

// ErrFormat is returned for malformed messages of any layer.
var ErrFormat = errors.New("onion: malformed message")

// Payload is the decrypted content of a mailbox message.
type Payload struct {
	Kind Kind
	Body []byte // at most BodySize bytes
}

// Marshal encodes the payload into the fixed PlaintextSize, padding
// the body with zeros.
func (p Payload) Marshal() ([]byte, error) {
	if len(p.Body) > BodySize {
		return nil, fmt.Errorf("%w: body %d bytes exceeds %d; split long messages across rounds", ErrFormat, len(p.Body), BodySize)
	}
	out := make([]byte, PlaintextSize)
	out[0] = byte(p.Kind)
	binary.BigEndian.PutUint16(out[1:3], uint16(len(p.Body)))
	copy(out[payloadHeaderSize:], p.Body)
	return out, nil
}

// ParsePayload decodes a fixed-size plaintext produced by Marshal.
func ParsePayload(b []byte) (Payload, error) {
	if len(b) != PlaintextSize {
		return Payload{}, fmt.Errorf("%w: plaintext length %d", ErrFormat, len(b))
	}
	n := int(binary.BigEndian.Uint16(b[1:3]))
	if n > BodySize {
		return Payload{}, fmt.Errorf("%w: body length %d", ErrFormat, n)
	}
	body := make([]byte, n)
	copy(body, b[payloadHeaderSize:payloadHeaderSize+n])
	return Payload{Kind: Kind(b[0]), Body: body}, nil
}

// SealMailboxMessage builds (pk_u, AEnc(s, nonce, payload)): the unit
// that mix chains deliver to mailbox servers.
func SealMailboxMessage(s aead.Scheme, key kdf.Key, nonce [aead.NonceSize]byte, recipient group.Point, p Payload) ([]byte, error) {
	pt, err := p.Marshal()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, MailboxMessageSize)
	out = append(out, recipient.Bytes()...)
	k := [aead.KeySize]byte(key)
	return s.Seal(out, &k, &nonce, pt), nil
}

// Recipient extracts the destination mailbox (user public key bytes)
// from a mailbox message without decrypting it; this is how the last
// server routes messages (Algorithm 1 step 2b).
func Recipient(msg []byte) ([]byte, error) {
	if len(msg) != MailboxMessageSize {
		return nil, fmt.Errorf("%w: mailbox message length %d", ErrFormat, len(msg))
	}
	return msg[:group.PointSize], nil
}

// OpenMailboxMessage authenticates and decrypts a mailbox message
// with the recipient-side key. It is the mailbox owner's step 3 of
// Algorithm 2.
func OpenMailboxMessage(s aead.Scheme, key kdf.Key, nonce [aead.NonceSize]byte, msg []byte) (Payload, error) {
	if len(msg) != MailboxMessageSize {
		return Payload{}, fmt.Errorf("%w: mailbox message length %d", ErrFormat, len(msg))
	}
	k := [aead.KeySize]byte(key)
	pt, err := s.Open(nil, &k, &nonce, msg[group.PointSize:])
	if err != nil {
		return Payload{}, err
	}
	return ParsePayload(pt)
}

// BaselineCiphertextSize is the submission size for the baseline
// onion through k servers: each layer prepends a fresh ephemeral key
// and an AEAD tag.
func BaselineCiphertextSize(k int) int {
	return MailboxMessageSize + k*(group.PointSize+aead.Overhead)
}

// WrapBaseline onion-encrypts a mailbox message for a chain whose
// mixing public keys are mixKeys (first server first), following
// Algorithm 2 step 2: cᵢ = (g^xᵢ, AEnc(DH(mpkᵢ, xᵢ), ρ, cᵢ₊₁)).
func WrapBaseline(s aead.Scheme, mixKeys []group.Point, nonce [aead.NonceSize]byte, mailboxMsg []byte) ([]byte, error) {
	if len(mailboxMsg) != MailboxMessageSize {
		return nil, fmt.Errorf("%w: mailbox message length %d", ErrFormat, len(mailboxMsg))
	}
	privs := make([]group.Scalar, len(mixKeys))
	for i := range privs {
		privs[i] = group.MustRandomScalar()
	}
	// One batched fixed-base walk for all per-layer ephemeral keys.
	pubs := group.BatchBase(privs)
	ct := append([]byte(nil), mailboxMsg...)
	for i := len(mixKeys) - 1; i >= 0; i-- {
		key := kdf.OnionKey(group.DH(mixKeys[i], privs[i]))
		k := [aead.KeySize]byte(key)
		layer := make([]byte, 0, group.PointSize+len(ct)+aead.Overhead)
		layer = append(layer, pubs[i].Bytes()...)
		ct = s.Seal(layer, &k, &nonce, ct)
	}
	return ct, nil
}

// PeelBaseline removes one baseline layer with the server's mixing
// secret (Algorithm 1 step 1).
func PeelBaseline(s aead.Scheme, msk group.Scalar, nonce [aead.NonceSize]byte, ct []byte) ([]byte, error) {
	if len(ct) < group.PointSize+aead.Overhead {
		return nil, fmt.Errorf("%w: layer length %d", ErrFormat, len(ct))
	}
	eph, err := group.ParsePoint(ct[:group.PointSize])
	if err != nil {
		return nil, err
	}
	key := kdf.OnionKey(group.DH(eph, msk))
	k := [aead.KeySize]byte(key)
	return s.Open(nil, &k, &nonce, ct[group.PointSize:])
}

// Envelope is the unit that travels through an AHS chain: the user's
// (progressively blinded) Diffie-Hellman key Xᵢ and the remaining
// outer ciphertext cᵢ.
type Envelope struct {
	DHKey group.Point
	Ct    []byte
}

// Clone returns a deep copy, used when simulating adversarial servers
// that tamper with copies.
func (e Envelope) Clone() Envelope {
	return Envelope{DHKey: e.DHKey, Ct: append([]byte(nil), e.Ct...)}
}

// Submission is what a user sends to every server of a chain: the
// envelope plus the NIZK that she knows the discrete log of her DH
// key (§6.2 step 2), which the AHS security game requires. The proof
// is commitment-format (nizk.DlogProof) so servers can verify whole
// batches with one multi-scalar multiplication.
type Submission struct {
	Envelope
	Proof nizk.DlogProof
}

// AHSCiphertextSize is the outer ciphertext size for a chain of k
// servers: the inner envelope plus one AEAD tag per server.
func AHSCiphertextSize(k int) int {
	return innerEnvelopeSize + k*aead.Overhead
}

// SubmissionWireSize is the total bytes one AHS submission puts on
// the wire for a chain of k servers: the user's Diffie-Hellman key,
// the outer ciphertext, and the knowledge proof. It feeds the
// Figure 2 bandwidth model. The commitment-format proof costs one
// extra byte over the (c, s) encoding (a compressed point instead of
// a scalar) — the price of batch verifiability.
func SubmissionWireSize(k int) int {
	return group.PointSize + AHSCiphertextSize(k) + nizk.DlogProofSize
}

// SubmitContext is the Fiat-Shamir context binding a user's PoK to a
// round and chain, preventing replays of stale submissions.
func SubmitContext(round uint64, chain int) string {
	return fmt.Sprintf("xrd/submit/round=%d/chain=%d", round, chain)
}

// WrapAHS builds an AHS double envelope (§6.2): the mailbox message
// is sealed under the aggregate inner key innerAgg = ∏ipkᵢ with a
// fresh g^y, then wrapped in one outer AEAD layer per server, all
// derived from a single fresh x with key DH(mpkᵢ, x). Returns the
// submission ready to send to the chain.
func WrapAHS(s aead.Scheme, innerAgg group.Point, mixKeys []group.Point, round uint64, chain int, nonce [aead.NonceSize]byte, mailboxMsg []byte) (Submission, error) {
	if len(mailboxMsg) != MailboxMessageSize {
		return Submission{}, fmt.Errorf("%w: mailbox message length %d", ErrFormat, len(mailboxMsg))
	}
	// The three fixed-base points of one onion — the inner ephemeral
	// g^y, the outer DH key g^x, and the proof commitment g^v — share
	// one batched table walk.
	y := group.MustRandomScalar()
	x := group.MustRandomScalar()
	v := group.MustRandomScalar()
	pts := group.BatchBase([]group.Scalar{y, x, v})
	gy, gx, gv := pts[0], pts[1], pts[2]

	// Inner envelope: e = (g^y, AEnc(DH(∏ipk, y), ρ, m)).
	innerKey := kdf.InnerKey(group.DH(innerAgg, y))
	ik := [aead.KeySize]byte(innerKey)
	e := make([]byte, 0, innerEnvelopeSize)
	e = append(e, gy.Bytes()...)
	e = s.Seal(e, &ik, &nonce, mailboxMsg)

	// Outer layers under the single x.
	ct := e
	for i := len(mixKeys) - 1; i >= 0; i-- {
		key := kdf.OnionKey(group.DH(mixKeys[i], x))
		k := [aead.KeySize]byte(key)
		ct = s.Seal(make([]byte, 0, len(ct)+aead.Overhead), &k, &nonce, ct)
	}
	proof := nizk.ProveDlogCommitPrecomputed(SubmitContext(round, chain), group.Generator(), gx, x, v, gv)
	return Submission{
		Envelope: Envelope{DHKey: gx, Ct: ct},
		Proof:    proof,
	}, nil
}

// WrapPartialAHS wraps an arbitrary byte string in outer AHS layers
// for only the given prefix of a chain's mixing keys, with a valid
// knowledge proof. It exists for fault injection: a malicious user
// can produce submissions that decrypt correctly at the first servers
// and fail deeper in the chain (§6.4, Figure 7's workload). Honest
// clients never call it.
func WrapPartialAHS(s aead.Scheme, mixKeys []group.Point, round uint64, chain int, nonce [aead.NonceSize]byte, inner []byte) (Submission, error) {
	x := group.MustRandomScalar()
	v := group.MustRandomScalar()
	pts := group.BatchBase([]group.Scalar{x, v})
	gx, gv := pts[0], pts[1]
	ct := append([]byte(nil), inner...)
	for i := len(mixKeys) - 1; i >= 0; i-- {
		key := kdf.OnionKey(group.DH(mixKeys[i], x))
		k := [aead.KeySize]byte(key)
		ct = s.Seal(make([]byte, 0, len(ct)+aead.Overhead), &k, &nonce, ct)
	}
	proof := nizk.ProveDlogCommitPrecomputed(SubmitContext(round, chain), group.Generator(), gx, x, v, gv)
	return Submission{
		Envelope: Envelope{DHKey: gx, Ct: ct},
		Proof:    proof,
	}, nil
}

// VerifySubmission checks a user's knowledge proof against the round
// and chain it was submitted to.
func VerifySubmission(sub Submission, round uint64, chain int) error {
	return nizk.VerifyDlogCommit(SubmitContext(round, chain), group.Generator(), sub.DHKey, sub.Proof)
}

// VerifySubmissionBatch checks every submission's knowledge proof in
// one batched multi-scalar multiplication. A nil return means all
// proofs verify; on error at least one is invalid and the caller must
// bisect or fall back to VerifySubmission to identify culprits.
func VerifySubmissionBatch(subs []Submission, round uint64, chain int) error {
	ctx := SubmitContext(round, chain)
	contexts := make([]string, len(subs))
	publics := make([]group.Point, len(subs))
	proofs := make([]nizk.DlogProof, len(subs))
	for i := range subs {
		contexts[i] = ctx
		publics[i] = subs[i].DHKey
		proofs[i] = subs[i].Proof
	}
	return nizk.VerifyDlogBatch(contexts, group.Generator(), publics, proofs)
}

// PeelAHS removes one outer layer: the server derives the key from
// the (blinded) user DH key and its mixing secret, Xᵢ^mskᵢ (§6.3
// step 1). A failed authentication surfaces as aead.ErrAuth, which
// triggers the blame protocol.
func PeelAHS(s aead.Scheme, msk group.Scalar, nonce [aead.NonceSize]byte, env Envelope) ([]byte, error) {
	key := kdf.OnionKey(group.DH(env.DHKey, msk))
	k := [aead.KeySize]byte(key)
	return s.Open(nil, &k, &nonce, env.Ct)
}

// DecryptKeyFor returns the AEAD key the server at this envelope
// would use; the blame protocol reveals it alongside a DLEQ proof
// (§6.4 step 2).
func DecryptKeyFor(env Envelope, msk group.Scalar) group.Point {
	return env.DHKey.Mul(msk)
}

// OpenWithRevealedKey decrypts one layer given the revealed exchanged
// key Xᵢ^mskᵢ, as every server does while checking a blame chain.
func OpenWithRevealedKey(s aead.Scheme, revealed group.Point, nonce [aead.NonceSize]byte, ct []byte) ([]byte, error) {
	key := kdf.OnionKey(group.SharedSecret(revealed))
	k := [aead.KeySize]byte(key)
	return s.Open(nil, &k, &nonce, ct)
}

// OpenInner opens the AHS inner envelope once the aggregate inner
// secret ∑iskᵢ is known (after all servers reveal, §6.3).
func OpenInner(s aead.Scheme, innerSecretSum group.Scalar, nonce [aead.NonceSize]byte, e []byte) ([]byte, error) {
	if len(e) != innerEnvelopeSize {
		return nil, fmt.Errorf("%w: inner envelope length %d", ErrFormat, len(e))
	}
	y, err := group.ParsePoint(e[:group.PointSize])
	if err != nil {
		return nil, err
	}
	key := kdf.InnerKey(group.DH(y, innerSecretSum))
	k := [aead.KeySize]byte(key)
	return s.Open(nil, &k, &nonce, e[group.PointSize:])
}

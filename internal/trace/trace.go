// Package trace generates workloads for experiments and benchmarks:
// user populations, conversation pairings, message corpora, and churn
// schedules. The paper's evaluation (§8) assumes every user is in a
// conversation for the availability experiment and mixes idle and
// conversing users elsewhere; both shapes are producible here.
package trace

import (
	"fmt"
	"math/rand"
)

// Workload describes one synthetic round-driving scenario.
type Workload struct {
	// NumUsers is the population size.
	NumUsers int
	// Pairs lists conversing pairs as user-index tuples; users appear
	// in at most one pair. Unpaired users are idle (loopback-only).
	Pairs [][2]int
	// Bodies[i] is the message user Pairs[i][0] sends to Pairs[i][1]
	// in the first round (and vice versa reversed).
	Bodies [][]byte
}

// Config parameterises workload generation.
type Config struct {
	// NumUsers is the population size.
	NumUsers int
	// PairedFraction is the fraction of users in conversations
	// (1.0 reproduces §8.3's "all users were in a conversation").
	PairedFraction float64
	// BodySize is the plaintext size per message; the paper uses 256.
	BodySize int
	// Seed makes generation reproducible.
	Seed int64
}

// Generate builds a workload.
func Generate(cfg Config) (*Workload, error) {
	if cfg.NumUsers < 0 {
		return nil, fmt.Errorf("trace: negative population %d", cfg.NumUsers)
	}
	if cfg.PairedFraction < 0 || cfg.PairedFraction > 1 {
		return nil, fmt.Errorf("trace: paired fraction %v outside [0,1]", cfg.PairedFraction)
	}
	if cfg.BodySize < 0 {
		return nil, fmt.Errorf("trace: negative body size %d", cfg.BodySize)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{NumUsers: cfg.NumUsers}

	// Shuffle users and pair a prefix.
	perm := rng.Perm(cfg.NumUsers)
	wantPaired := int(float64(cfg.NumUsers) * cfg.PairedFraction)
	wantPaired -= wantPaired % 2
	for i := 0; i+1 < wantPaired; i += 2 {
		w.Pairs = append(w.Pairs, [2]int{perm[i], perm[i+1]})
		w.Bodies = append(w.Bodies, randomBody(rng, cfg.BodySize))
	}
	return w, nil
}

func randomBody(rng *rand.Rand, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return b
}

// PairedUsers returns the number of users in conversations.
func (w *Workload) PairedUsers() int { return 2 * len(w.Pairs) }

// IdleUsers returns the number of loopback-only users.
func (w *Workload) IdleUsers() int { return w.NumUsers - w.PairedUsers() }

// ChurnSchedule lists, per round, which users go offline (by index).
type ChurnSchedule [][]int

// GenerateChurn produces a schedule where each user independently
// goes offline with the given per-round probability.
func GenerateChurn(numUsers, rounds int, rate float64, seed int64) (ChurnSchedule, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("trace: churn rate %v outside [0,1]", rate)
	}
	if rounds < 0 || numUsers < 0 {
		return nil, fmt.Errorf("trace: negative rounds or users")
	}
	rng := rand.New(rand.NewSource(seed))
	sched := make(ChurnSchedule, rounds)
	for r := range sched {
		for u := 0; u < numUsers; u++ {
			if rng.Float64() < rate {
				sched[r] = append(sched[r], u)
			}
		}
	}
	return sched, nil
}

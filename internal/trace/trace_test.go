package trace

import (
	"testing"
	"testing/quick"
)

func TestGenerateAllPaired(t *testing.T) {
	w, err := Generate(Config{NumUsers: 100, PairedFraction: 1, BodySize: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.PairedUsers() != 100 || w.IdleUsers() != 0 {
		t.Fatalf("paired=%d idle=%d", w.PairedUsers(), w.IdleUsers())
	}
	seen := make(map[int]bool)
	for i, p := range w.Pairs {
		if seen[p[0]] || seen[p[1]] || p[0] == p[1] {
			t.Fatalf("pair %d reuses a user: %v", i, p)
		}
		seen[p[0]], seen[p[1]] = true, true
		if len(w.Bodies[i]) != 256 {
			t.Fatalf("body %d has size %d", i, len(w.Bodies[i]))
		}
	}
}

func TestGenerateHalfPaired(t *testing.T) {
	w, err := Generate(Config{NumUsers: 101, PairedFraction: 0.5, BodySize: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.PairedUsers() != 50 {
		t.Fatalf("paired = %d, want 50", w.PairedUsers())
	}
	if w.IdleUsers() != 51 {
		t.Fatalf("idle = %d, want 51", w.IdleUsers())
	}
}

func TestGenerateNonePaired(t *testing.T) {
	w, err := Generate(Config{NumUsers: 10, PairedFraction: 0, BodySize: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Pairs) != 0 || w.IdleUsers() != 10 {
		t.Fatalf("pairs=%d idle=%d", len(w.Pairs), w.IdleUsers())
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumUsers: -1}); err == nil {
		t.Fatal("negative users accepted")
	}
	if _, err := Generate(Config{NumUsers: 10, PairedFraction: 1.2}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := Generate(Config{NumUsers: 10, BodySize: -2}); err == nil {
		t.Fatal("negative body accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{NumUsers: 50, PairedFraction: 1, BodySize: 32, Seed: 7})
	b, _ := Generate(Config{NumUsers: 50, PairedFraction: 1, BodySize: 32, Seed: 7})
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatal("nondeterministic pair count")
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] || string(a.Bodies[i]) != string(b.Bodies[i]) {
			t.Fatal("nondeterministic generation")
		}
	}
}

func TestQuickPairInvariant(t *testing.T) {
	f := func(nRaw uint8, fracRaw uint8, seed int64) bool {
		n := int(nRaw)
		frac := float64(fracRaw) / 255
		w, err := Generate(Config{NumUsers: n, PairedFraction: frac, BodySize: 8, Seed: seed})
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, p := range w.Pairs {
			if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n || p[0] == p[1] {
				return false
			}
			if seen[p[0]] || seen[p[1]] {
				return false
			}
			seen[p[0]], seen[p[1]] = true, true
		}
		return w.PairedUsers()+w.IdleUsers() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateChurn(t *testing.T) {
	sched, err := GenerateChurn(100, 10, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 10 {
		t.Fatalf("rounds = %d", len(sched))
	}
	total := 0
	for _, r := range sched {
		total += len(r)
		for _, u := range r {
			if u < 0 || u >= 100 {
				t.Fatalf("user %d out of range", u)
			}
		}
	}
	// Expect ≈100 offline events over 10 rounds at 10%.
	if total < 50 || total > 160 {
		t.Fatalf("total offline events = %d, want ≈100", total)
	}
}

func TestGenerateChurnValidation(t *testing.T) {
	if _, err := GenerateChurn(10, 5, -0.1, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := GenerateChurn(-1, 5, 0.1, 1); err == nil {
		t.Fatal("negative users accepted")
	}
}

// Package group provides the prime-order group used by all of XRD's
// cryptography: Diffie-Hellman key exchange (§3.1), aggregate hybrid
// shuffle blinding (§6), and the discrete-log NIZKs.
//
// The paper assumes "a group of prime order p with a generator g in
// which discrete log is hard and the decisional Diffie-Hellman
// assumption holds". We instantiate it with NIST P-256 from the
// standard library. Scalars are integers modulo the group order;
// points are curve points with the point at infinity as the identity.
//
// All types are immutable: operations return new values and never
// modify their receivers, so values can be shared freely across the
// many goroutines that make up a mix chain.
package group

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
)

const (
	// ScalarSize is the byte length of an encoded scalar.
	ScalarSize = 32
	// PointSize is the byte length of a compressed encoded point.
	PointSize = 33
)

var (
	curve = elliptic.P256()
	// order is the prime order of the P-256 base-point group.
	order = curve.Params().N

	// ErrInvalidPoint is returned when decoding bytes that are not a
	// valid compressed group element.
	ErrInvalidPoint = errors.New("group: invalid point encoding")
	// ErrInvalidScalar is returned when decoding bytes that are not a
	// canonical scalar (>= group order).
	ErrInvalidScalar = errors.New("group: invalid scalar encoding")
)

// Order returns a copy of the prime order of the group.
func Order() *big.Int { return new(big.Int).Set(order) }

// Scalar is an integer modulo the group order. The zero value is the
// scalar 0.
type Scalar struct {
	v *big.Int // nil means 0
}

// Point is an element of the group. The zero value is the identity
// (point at infinity).
type Point struct {
	x, y *big.Int // nil means identity
}

// NewScalar returns the scalar v mod the group order.
func NewScalar(v int64) Scalar {
	n := big.NewInt(v)
	n.Mod(n, order)
	return Scalar{n}
}

// ScalarFromBig reduces v modulo the group order.
func ScalarFromBig(v *big.Int) Scalar {
	n := new(big.Int).Mod(v, order)
	return Scalar{n}
}

// RandomScalar returns a uniformly random non-zero scalar read from r.
// It fails only if r fails.
func RandomScalar(r io.Reader) (Scalar, error) {
	for {
		n, err := rand.Int(r, order)
		if err != nil {
			return Scalar{}, fmt.Errorf("group: sampling scalar: %w", err)
		}
		if n.Sign() != 0 {
			return Scalar{n}, nil
		}
	}
}

// MustRandomScalar returns a uniformly random non-zero scalar from
// crypto/rand, panicking if the system randomness source fails. It is
// intended for key generation where such a failure is unrecoverable.
func MustRandomScalar() Scalar {
	s, err := RandomScalar(rand.Reader)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseScalar decodes a 32-byte big-endian scalar. It rejects
// non-canonical encodings (values >= the group order).
func ParseScalar(b []byte) (Scalar, error) {
	if len(b) != ScalarSize {
		return Scalar{}, fmt.Errorf("%w: length %d", ErrInvalidScalar, len(b))
	}
	n := new(big.Int).SetBytes(b)
	if n.Cmp(order) >= 0 {
		return Scalar{}, ErrInvalidScalar
	}
	return Scalar{n}, nil
}

// HashToScalar maps arbitrary input domains to a scalar, used for
// Fiat-Shamir challenges and for deterministic group assignment
// (§5.3.1). The domain string separates unrelated uses.
func HashToScalar(domain string, inputs ...[]byte) Scalar {
	h := sha256.New()
	h.Write([]byte(domain))
	for _, in := range inputs {
		var l [8]byte
		putUint64(l[:], uint64(len(in)))
		h.Write(l[:])
		h.Write(in)
	}
	// A single SHA-256 output is 2^-128-close to uniform mod the
	// 256-bit order; that bias is acceptable for challenges. For a
	// cleaner distribution we fold two hashes into a 512-bit value.
	d1 := h.Sum(nil)
	h.Write([]byte("fold"))
	d2 := h.Sum(nil)
	n := new(big.Int).SetBytes(append(d1, d2...))
	n.Mod(n, order)
	return Scalar{n}
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func (s Scalar) big() *big.Int {
	if s.v == nil {
		return new(big.Int)
	}
	return s.v
}

// Bytes returns the canonical 32-byte big-endian encoding of s.
func (s Scalar) Bytes() []byte {
	b := make([]byte, ScalarSize)
	s.big().FillBytes(b)
	return b
}

// IsZero reports whether s is the zero scalar.
func (s Scalar) IsZero() bool { return s.v == nil || s.v.Sign() == 0 }

// Equal reports whether s and t represent the same scalar.
func (s Scalar) Equal(t Scalar) bool { return s.big().Cmp(t.big()) == 0 }

// Add returns s + t mod the group order.
func (s Scalar) Add(t Scalar) Scalar {
	n := new(big.Int).Add(s.big(), t.big())
	n.Mod(n, order)
	return Scalar{n}
}

// Sub returns s - t mod the group order.
func (s Scalar) Sub(t Scalar) Scalar {
	n := new(big.Int).Sub(s.big(), t.big())
	n.Mod(n, order)
	return Scalar{n}
}

// Mul returns s * t mod the group order.
func (s Scalar) Mul(t Scalar) Scalar {
	n := new(big.Int).Mul(s.big(), t.big())
	n.Mod(n, order)
	return Scalar{n}
}

// Neg returns -s mod the group order.
func (s Scalar) Neg() Scalar {
	n := new(big.Int).Neg(s.big())
	n.Mod(n, order)
	return Scalar{n}
}

// Inverse returns s^-1 mod the group order. It panics on the zero
// scalar, which has no inverse; callers must never invert zero.
func (s Scalar) Inverse() Scalar {
	if s.IsZero() {
		panic("group: inverse of zero scalar")
	}
	n := new(big.Int).ModInverse(s.big(), order)
	return Scalar{n}
}

// String implements fmt.Stringer with a short hex prefix for logging.
func (s Scalar) String() string { return fmt.Sprintf("scalar(%x…)", s.Bytes()[:4]) }

// Generator returns the group generator g.
func Generator() Point {
	p := curve.Params()
	return Point{new(big.Int).Set(p.Gx), new(big.Int).Set(p.Gy)}
}

// Identity returns the identity element (point at infinity).
func Identity() Point { return Point{} }

// Base returns g^s, the generator raised to scalar s. It runs on the
// precomputed signed-window tables of fixedbase.go (one mixed
// addition per 13-bit window, no doublings), which is several times
// faster than crypto/elliptic's ScalarBaseMult; callers producing
// many points at once should prefer BatchBase, which also amortizes
// the final inversion. See fixedbase.go for the variable-time
// trade-off discussion.
func Base(s Scalar) Point {
	if s.IsZero() {
		return Point{}
	}
	return fixedBaseMult(s)
}

// ParsePoint decodes a compressed 33-byte point encoding as produced
// by Bytes. The all-zero encoding decodes to the identity.
func ParsePoint(b []byte) (Point, error) {
	if len(b) != PointSize {
		return Point{}, fmt.Errorf("%w: length %d", ErrInvalidPoint, len(b))
	}
	if isAllZero(b) {
		return Point{}, nil
	}
	x, y := elliptic.UnmarshalCompressed(curve, b)
	if x == nil {
		return Point{}, ErrInvalidPoint
	}
	return Point{x, y}, nil
}

func isAllZero(b []byte) bool {
	var acc byte
	for _, c := range b {
		acc |= c
	}
	return acc == 0
}

// IsIdentity reports whether p is the identity element.
func (p Point) IsIdentity() bool { return p.x == nil }

// Bytes returns the 33-byte compressed encoding of p. The identity
// encodes as 33 zero bytes.
func (p Point) Bytes() []byte {
	if p.IsIdentity() {
		return make([]byte, PointSize)
	}
	return elliptic.MarshalCompressed(curve, p.x, p.y)
}

// Equal reports whether p and q are the same group element.
func (p Point) Equal(q Point) bool {
	if p.IsIdentity() || q.IsIdentity() {
		return p.IsIdentity() && q.IsIdentity()
	}
	return p.x.Cmp(q.x) == 0 && p.y.Cmp(q.y) == 0
}

// Add returns p + q (group operation).
func (p Point) Add(q Point) Point {
	if p.IsIdentity() {
		return q
	}
	if q.IsIdentity() {
		return p
	}
	// crypto/elliptic's affine Add mishandles doubling edge cases on
	// some inputs only when given the identity, which we excluded.
	x, y := curve.Add(p.x, p.y, q.x, q.y)
	if x.Sign() == 0 && y.Sign() == 0 {
		return Point{}
	}
	return Point{x, y}
}

// Neg returns the inverse element -p.
func (p Point) Neg() Point {
	if p.IsIdentity() {
		return p
	}
	y := new(big.Int).Neg(p.y)
	y.Mod(y, curve.Params().P)
	return Point{new(big.Int).Set(p.x), y}
}

// Mul returns p^s in multiplicative notation (scalar multiplication
// [s]p). Mul implements the paper's DH(p, s) = p^s.
func (p Point) Mul(s Scalar) Point {
	if p.IsIdentity() || s.IsZero() {
		return Point{}
	}
	if pp := curve.Params(); p.x.Cmp(pp.Gx) == 0 && p.y.Cmp(pp.Gy) == 0 {
		// NIZK provers and verifiers pass the generator as an explicit
		// base; route them through the precomputed tables.
		return fixedBaseMult(s)
	}
	x, y := curve.ScalarMult(p.x, p.y, s.Bytes())
	if x.Sign() == 0 && y.Sign() == 0 {
		return Point{}
	}
	return Point{x, y}
}

// DH performs a Diffie-Hellman key exchange and returns the 32-byte
// shared secret derived by hashing the compressed shared point. It
// implements the paper's DH(g^a, b) = g^ab, mapped to a symmetric key.
func DH(pub Point, priv Scalar) [32]byte {
	return SharedSecret(pub.Mul(priv))
}

// SharedSecret maps an already-exchanged Diffie-Hellman point to the
// symmetric secret, exactly as DH does internally. The blame protocol
// uses it on keys revealed by other servers (§6.4 step 2).
func SharedSecret(p Point) [32]byte {
	return sha256.Sum256(p.Bytes())
}

// Product returns the product of all points (the sum in additive
// notation). AHS verification works with products of users' DH keys
// (∏ X_j, §6.3 step 3); an empty product is the identity. The points
// are accumulated in Jacobian coordinates, so the whole product pays
// one field inversion instead of crypto/elliptic's hidden inversion
// per addition.
func Product(points []Point) Point {
	var acc jacPoint
	for _, p := range points {
		if p.IsIdentity() {
			continue
		}
		a := newAffinePoint(p)
		acc.addAffine(&a, false)
	}
	return acc.toPoint()
}

// String implements fmt.Stringer with a short hex prefix for logging.
func (p Point) String() string {
	if p.IsIdentity() {
		return "point(identity)"
	}
	return fmt.Sprintf("point(%x…)", p.Bytes()[:5])
}

// KeyPair is a private scalar together with its public point. Which
// base the public point is relative to depends on context: user and
// inner keys use the generator g, while AHS blinding and mixing keys
// chain off the previous server's blinding key (§6.1).
type KeyPair struct {
	Private Scalar
	Public  Point
}

// GenerateKeyPair returns a fresh key pair with Public = base^Private.
func GenerateKeyPair(base Point) KeyPair {
	priv := MustRandomScalar()
	return KeyPair{Private: priv, Public: base.Mul(priv)}
}

// GenerateBaseKeyPair returns a fresh key pair against the generator g.
func GenerateBaseKeyPair() KeyPair {
	priv := MustRandomScalar()
	return KeyPair{Private: priv, Public: Base(priv)}
}

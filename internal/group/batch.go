package group

// Batch Jacobian→affine conversion via the Montgomery inversion
// trick: instead of one field inversion per point (~1.5µs each), the
// batch pays a single inversion plus three multiplications per point.
// This is the shared seam behind everything that materializes many
// points at once — fixed-base table construction, BatchBase results,
// the Straus MSM's per-point multiple tables, and Product.

import "fmt"

// feInv sets z to the Montgomery-domain inverse of a non-zero x. The
// single inversion goes through big.Int's binary extended GCD, which
// beats a Fermat exponentiation chain at this field size.
func feInv(z, x *fe) {
	xb := x.toBig()
	if xb.ModInverse(xb, curve.Params().P) == nil {
		panic("group: inverse of zero field element")
	}
	*z = feFromBig(xb)
}

// BatchToAffine converts a slice of Jacobian points to affine Points
// with one shared field inversion (Montgomery trick: prefix products
// forward, one inversion, suffix unwinding backward). Identity points
// (Z = 0) pass through as identity Points and do not disturb the
// batch. It is the conversion behind BatchBase and Product; the MSM
// table path uses the fe-domain sibling batchNormalize.
func BatchToAffine(js []jacPoint) []Point {
	n := len(js)
	out := make([]Point, n)
	if n == 0 {
		return out
	}
	prefix := make([]fe, n)
	run := feOne
	for i := range js {
		if !js[i].z.isZero() {
			feMul(&run, &run, &js[i].z)
		}
		prefix[i] = run
	}
	// If every point is the identity the running product is still
	// feOne, which feInv handles like any other non-zero element.
	var inv fe
	feInv(&inv, &prefix[n-1])
	for i := n - 1; i >= 0; i-- {
		if js[i].z.isZero() {
			continue // identity: out[i] stays the zero Point
		}
		var zinv fe
		if i == 0 {
			zinv = inv
		} else {
			feMul(&zinv, &inv, &prefix[i-1])
			feMul(&inv, &inv, &js[i].z)
		}
		var zi2, zi3, xf, yf fe
		feSqr(&zi2, &zinv)
		feMul(&zi3, &zi2, &zinv)
		feMul(&xf, &js[i].x, &zi2)
		feMul(&yf, &js[i].y, &zi3)
		out[i] = Point{xf.toBig(), yf.toBig()}
	}
	return out
}

// batchNormalize is BatchToAffine staying in the fe domain: it fills
// out with affine table entries (including the precomputed yNeg) and
// never leaves Montgomery form. The inputs must not contain the
// identity — it normalizes small multiples k·P of non-identity points
// in a prime-order group, where k·P = O is impossible.
func batchNormalize(js []jacPoint, out []affinePoint) {
	n := len(js)
	if n == 0 {
		return
	}
	prefix := make([]fe, n)
	prefix[0] = js[0].z
	for i := 1; i < n; i++ {
		feMul(&prefix[i], &prefix[i-1], &js[i].z)
	}
	var inv fe
	feInv(&inv, &prefix[n-1])
	for i := n - 1; i >= 0; i-- {
		var zinv fe
		if i == 0 {
			zinv = inv
		} else {
			feMul(&zinv, &inv, &prefix[i-1])
			feMul(&inv, &inv, &js[i].z)
		}
		var zi2, zi3 fe
		feSqr(&zi2, &zinv)
		feMul(&zi3, &zi2, &zinv)
		feMul(&out[i].x, &js[i].x, &zi2)
		feMul(&out[i].y, &js[i].y, &zi3)
		feNeg(&out[i].yNeg, &out[i].y)
	}
}

// jacFromPoint loads a non-identity affine Point into Jacobian form.
func jacFromPoint(p Point) jacPoint {
	return jacPoint{x: feFromBig(p.x), y: feFromBig(p.y), z: feOne}
}

// EncodePoints encodes a slice of points to their canonical compressed
// wire form. It is the serialization half of the batch seam: producers
// that materialize many points at once (BatchBase outputs, mix batch
// key columns, per-chain parameter sets) hand whole slices to the wire
// layer instead of encoding point by point.
func EncodePoints(ps []Point) [][]byte {
	out := make([][]byte, len(ps))
	for i, p := range ps {
		out[i] = p.Bytes()
	}
	return out
}

// ParsePoints decodes and validates a slice of compressed encodings,
// rejecting the whole batch on the first invalid entry. The returned
// error wraps ErrInvalidPoint and names the offending index.
func ParsePoints(bs [][]byte) ([]Point, error) {
	out := make([]Point, len(bs))
	for i, b := range bs {
		p, err := ParsePoint(b)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

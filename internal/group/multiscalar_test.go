package group

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"testing"
)

// naiveProduct is the reference the MSM is tested against.
func naiveProduct(points []Point, scalars []Scalar) Point {
	acc := Point{}
	for i := range points {
		acc = acc.Add(points[i].Mul(scalars[i]))
	}
	return acc
}

func randFe(t *testing.T) (*big.Int, fe) {
	t.Helper()
	v, err := rand.Int(rand.Reader, curve.Params().P)
	if err != nil {
		t.Fatal(err)
	}
	return v, feFromBig(v)
}

func TestFieldOpsMatchBigInt(t *testing.T) {
	p := curve.Params().P
	for i := 0; i < 200; i++ {
		a, fa := randFe(t)
		b, fb := randFe(t)

		var got fe
		feMul(&got, &fa, &fb)
		want := new(big.Int).Mul(a, b)
		want.Mod(want, p)
		if got.toBig().Cmp(want) != 0 {
			t.Fatalf("feMul mismatch: %v * %v", a, b)
		}

		feSqr(&got, &fa)
		want.Mul(a, a).Mod(want, p)
		if got.toBig().Cmp(want) != 0 {
			t.Fatalf("feSqr mismatch: %v", a)
		}

		feAdd(&got, &fa, &fb)
		want.Add(a, b).Mod(want, p)
		if got.toBig().Cmp(want) != 0 {
			t.Fatalf("feAdd mismatch: %v + %v", a, b)
		}

		feSub(&got, &fa, &fb)
		want.Sub(a, b).Mod(want, p)
		if got.toBig().Cmp(want) != 0 {
			t.Fatalf("feSub mismatch: %v - %v", a, b)
		}

		feNeg(&got, &fa)
		want.Neg(a).Mod(want, p)
		if got.toBig().Cmp(want) != 0 {
			t.Fatalf("feNeg mismatch: %v", a)
		}
	}
}

func TestFieldOpsEdgeValues(t *testing.T) {
	p := curve.Params().P
	edges := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(p, big.NewInt(1)),
		new(big.Int).Sub(p, big.NewInt(2)),
		new(big.Int).Rsh(p, 1),
	}
	for _, a := range edges {
		for _, b := range edges {
			fa, fb := feFromBig(a), feFromBig(b)
			var got fe
			feMul(&got, &fa, &fb)
			want := new(big.Int).Mul(a, b)
			want.Mod(want, p)
			if got.toBig().Cmp(want) != 0 {
				t.Fatalf("feMul(%v, %v) mismatch", a, b)
			}
			feSub(&got, &fa, &fb)
			want.Sub(a, b).Mod(want, p)
			if got.toBig().Cmp(want) != 0 {
				t.Fatalf("feSub(%v, %v) mismatch", a, b)
			}
		}
		fa := feFromBig(a)
		var got fe
		feSqr(&got, &fa)
		want := new(big.Int).Mul(a, a)
		want.Mod(want, p)
		if got.toBig().Cmp(want) != 0 {
			t.Fatalf("feSqr(%v) mismatch", a)
		}
	}
}

func TestJacobianMatchesCurve(t *testing.T) {
	for i := 0; i < 50; i++ {
		p1 := Base(MustRandomScalar())
		p2 := Base(MustRandomScalar())

		a1, a2 := newAffinePoint(p1), newAffinePoint(p2)
		var j1 jacPoint
		j1.fromAffine(&a1, false)

		// Doubling.
		d := j1
		d.double()
		if !d.toPoint().Equal(p1.Add(p1)) {
			t.Fatal("jacobian double mismatch")
		}
		// Mixed addition.
		s := j1
		s.addAffine(&a2, false)
		if !s.toPoint().Equal(p1.Add(p2)) {
			t.Fatal("jacobian mixed add mismatch")
		}
		// Mixed addition of a negation.
		s = j1
		s.addAffine(&a2, true)
		if !s.toPoint().Equal(p1.Add(p2.Neg())) {
			t.Fatal("jacobian mixed add (negated) mismatch")
		}
		// Full addition.
		var j2 jacPoint
		j2.fromAffine(&a2, false)
		f := j1
		f.add(&j2)
		if !f.toPoint().Equal(p1.Add(p2)) {
			t.Fatal("jacobian full add mismatch")
		}
		// Exceptional cases: P + P (add must fall through to
		// doubling) and P + (−P) (must fold to the identity).
		f = j1
		f.add(&j1)
		if !f.toPoint().Equal(p1.Add(p1)) {
			t.Fatal("jacobian add of equal points mismatch")
		}
		f = j1
		f.addAffine(&a1, true)
		if !f.toPoint().IsIdentity() {
			t.Fatal("P + (−P) is not the identity")
		}
	}
}

// TestMultiScalarMultMatchesNaive pins the MSM against the naive
// product across both code paths (naive fallback, Straus, Pippenger)
// and the window-count boundaries.
func TestMultiScalarMultMatchesNaive(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 8, 31, 32, 33, 100, 200} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			points := make([]Point, n)
			scalars := make([]Scalar, n)
			for i := range points {
				points[i] = Base(MustRandomScalar())
				scalars[i] = MustRandomScalar()
			}
			got := MultiScalarMult(points, scalars)
			if want := naiveProduct(points, scalars); !got.Equal(want) {
				t.Fatalf("MSM(%d) != naive product", n)
			}
		})
	}
}

// TestMultiScalarMultDegenerateInputs covers identity points, zero
// scalars, duplicate points, cancelling pairs and extreme scalars —
// the MSM must treat them exactly like the naive product, because
// batch inputs are attacker-controlled.
func TestMultiScalarMultDegenerateInputs(t *testing.T) {
	g := Generator()
	p := Base(MustRandomScalar())
	orderMinus1 := ScalarFromBig(new(big.Int).Sub(Order(), big.NewInt(1)))

	build := func(points []Point, scalars []Scalar) {
		t.Helper()
		got := MultiScalarMult(points, scalars)
		if want := naiveProduct(points, scalars); !got.Equal(want) {
			t.Fatalf("MSM != naive for points=%v scalars=%v", points, scalars)
		}
	}

	// Identity points and zero scalars sprinkled in.
	build(
		[]Point{g, Identity(), p, g},
		[]Scalar{MustRandomScalar(), MustRandomScalar(), NewScalar(0), MustRandomScalar()},
	)
	// All contributions vanish.
	build([]Point{Identity(), p}, []Scalar{MustRandomScalar(), NewScalar(0)})
	// The same point many times (forces repeated bucket hits, the
	// add-equal-points path).
	many := make([]Point, 64)
	sc := make([]Scalar, 64)
	for i := range many {
		many[i] = p
		sc[i] = NewScalar(int64(i%5) + 1)
	}
	build(many, sc)
	// Cancelling pair: x·P + (q−x)·P = identity.
	x := MustRandomScalar()
	build([]Point{p, p, g, g, g, g}, []Scalar{x, ScalarFromBig(new(big.Int).Sub(Order(), x.big())), NewScalar(1), NewScalar(2), NewScalar(3), NewScalar(4)})
	// Extreme scalars: 1 and q−1 across both algorithms.
	for _, n := range []int{8, 64} {
		pts := make([]Point, n)
		scs := make([]Scalar, n)
		for i := range pts {
			pts[i] = Base(MustRandomScalar())
			if i%2 == 0 {
				scs[i] = NewScalar(1)
			} else {
				scs[i] = orderMinus1
			}
		}
		build(pts, scs)
	}
}

func TestMultiScalarMultLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MultiScalarMult(make([]Point, 2), make([]Scalar, 3))
}

func BenchmarkMultiScalarMult(b *testing.B) {
	for _, n := range []int{16, 256, 2048, 8192} {
		points := make([]Point, n)
		scalars := make([]Scalar, n)
		for i := range points {
			points[i] = Base(MustRandomScalar())
			scalars[i] = MustRandomScalar()
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MultiScalarMult(points, scalars)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/point")
		})
	}
}

func BenchmarkFeMul(b *testing.B) {
	v, _ := rand.Int(rand.Reader, curve.Params().P)
	x := feFromBig(v)
	var z fe
	for i := 0; i < b.N; i++ {
		feMul(&z, &x, &x)
	}
}

// TestMultiScalarMultLargeKnownDlog validates the larger Pippenger
// window widths, which a naive-product reference would be too slow
// to cover: with points of known discrete log kᵢ, the expected
// product Π (g^kᵢ)^aᵢ is just g^(Σ aᵢ·kᵢ) — one base multiplication.
func TestMultiScalarMultLargeKnownDlog(t *testing.T) {
	sizes := []int{600, 2500}
	if !testing.Short() {
		sizes = append(sizes, 8300)
	}
	for _, n := range sizes {
		points := make([]Point, n)
		scalars := make([]Scalar, n)
		sum := NewScalar(0)
		for i := range points {
			k := MustRandomScalar()
			points[i] = Base(k)
			scalars[i] = MustRandomScalar()
			sum = sum.Add(k.Mul(scalars[i]))
		}
		got := MultiScalarMult(points, scalars)
		if !got.Equal(Base(sum)) {
			t.Fatalf("MSM(%d) != g^(sum of known dlogs)", n)
		}
	}
}

package group

// Jacobian-coordinate P-256 points over the fe field, used by the
// multi-scalar multiplication. (X:Y:Z) represents the affine point
// (X/Z², Y/Z³); the identity is any point with Z = 0. Formulas are
// the standard a=−3 ones from the EFD (dbl-2001-b, add-2007-bl,
// madd-2007-bl) with explicit handling of the exceptional cases —
// MSM inputs are adversarial submissions, so doubling and cancelling
// inputs must fold correctly rather than "never happen".

// affinePoint is a table/input entry: affine coordinates in the
// Montgomery domain plus the negated y, so a signed-digit lookup costs
// nothing. Never the identity (identity inputs are filtered out by the
// MSM before building tables).
type affinePoint struct {
	x, y, yNeg fe
}

// jacPoint is a working point in Jacobian coordinates.
type jacPoint struct {
	x, y, z fe
}

func (p *jacPoint) isIdentity() bool { return p.z.isZero() }

func (p *jacPoint) setIdentity() { *p = jacPoint{} }

// fromAffine loads an affinePoint (Z = 1 in the Montgomery domain).
func (p *jacPoint) fromAffine(a *affinePoint, neg bool) {
	p.x = a.x
	if neg {
		p.y = a.yNeg
	} else {
		p.y = a.y
	}
	p.z = feOne
}

// newAffinePoint converts a non-identity Point into table form.
func newAffinePoint(pt Point) affinePoint {
	var a affinePoint
	a.x = feFromBig(pt.x)
	a.y = feFromBig(pt.y)
	feNeg(&a.yNeg, &a.y)
	return a
}

// toPoint converts back to the package's affine big.Int Point. The
// single field inversion per chain lives here; everything around it
// stays in the fe domain, so the conversion costs one inversion plus
// four field mults rather than a chain of big.Int modular ops.
func (p *jacPoint) toPoint() Point {
	if p.isIdentity() {
		return Point{}
	}
	var zinv, zi2, zi3, xf, yf fe
	feInv(&zinv, &p.z)
	feSqr(&zi2, &zinv)
	feMul(&zi3, &zi2, &zinv)
	feMul(&xf, &p.x, &zi2)
	feMul(&yf, &p.y, &zi3)
	return Point{xf.toBig(), yf.toBig()}
}

// double sets p = 2p (dbl-2001-b, a = −3).
func (p *jacPoint) double() {
	if p.isIdentity() {
		return
	}
	var delta, gamma, beta, alpha, t1, t2 fe
	feSqr(&delta, &p.z)        // delta = Z²
	feSqr(&gamma, &p.y)        // gamma = Y²
	feMul(&beta, &p.x, &gamma) // beta = X·gamma
	feSub(&t1, &p.x, &delta)   // X − delta
	feAdd(&t2, &p.x, &delta)   // X + delta
	feMul(&alpha, &t1, &t2)    // (X−delta)(X+delta)
	feDouble(&t1, &alpha)
	feAdd(&alpha, &t1, &alpha) // alpha = 3(X−delta)(X+delta)

	var x3, y3, z3 fe
	feSqr(&x3, &alpha) // alpha²
	feDouble(&t1, &beta)
	feDouble(&t1, &t1)
	feDouble(&t1, &t1)   // 8beta
	feSub(&x3, &x3, &t1) // X3 = alpha² − 8beta

	feAdd(&z3, &p.y, &p.z)
	feSqr(&z3, &z3)
	feSub(&z3, &z3, &gamma)
	feSub(&z3, &z3, &delta) // Z3 = (Y+Z)² − gamma − delta

	feDouble(&t1, &beta)
	feDouble(&t1, &t1)      // 4beta
	feSub(&t1, &t1, &x3)    // 4beta − X3
	feMul(&y3, &alpha, &t1) // alpha(4beta − X3)
	feSqr(&t2, &gamma)      // gamma²
	feDouble(&t2, &t2)
	feDouble(&t2, &t2)
	feDouble(&t2, &t2)   // 8gamma²
	feSub(&y3, &y3, &t2) // Y3 = alpha(4beta−X3) − 8gamma²

	p.x, p.y, p.z = x3, y3, z3
}

// add sets p = p + q for a full Jacobian q (add-2007-bl).
func (p *jacPoint) add(q *jacPoint) {
	if q.isIdentity() {
		return
	}
	if p.isIdentity() {
		*p = *q
		return
	}
	var z1z1, z2z2, u1, u2, s1, s2, h, r, t fe
	feSqr(&z1z1, &p.z)
	feSqr(&z2z2, &q.z)
	feMul(&u1, &p.x, &z2z2)
	feMul(&u2, &q.x, &z1z1)
	feMul(&t, &q.z, &z2z2)
	feMul(&s1, &p.y, &t)
	feMul(&t, &p.z, &z1z1)
	feMul(&s2, &q.y, &t)
	feSub(&h, &u2, &u1)
	feSub(&r, &s2, &s1)

	if h.isZero() {
		if r.isZero() {
			p.double()
			return
		}
		p.setIdentity()
		return
	}

	var i, j, v, x3, y3, z3 fe
	feDouble(&t, &h)
	feSqr(&i, &t)      // I = (2H)²
	feMul(&j, &h, &i)  // J = H·I
	feDouble(&r, &r)   // r = 2(S2−S1)
	feMul(&v, &u1, &i) // V = U1·I

	feSqr(&x3, &r)
	feSub(&x3, &x3, &j)
	feSub(&x3, &x3, &v)
	feSub(&x3, &x3, &v) // X3 = r² − J − 2V

	feSub(&y3, &v, &x3)
	feMul(&y3, &r, &y3)
	feMul(&t, &s1, &j)
	feDouble(&t, &t)
	feSub(&y3, &y3, &t) // Y3 = r(V−X3) − 2·S1·J

	feAdd(&z3, &p.z, &q.z)
	feSqr(&z3, &z3)
	feSub(&z3, &z3, &z1z1)
	feSub(&z3, &z3, &z2z2)
	feMul(&z3, &z3, &h) // Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H

	p.x, p.y, p.z = x3, y3, z3
}

// addAffine sets p = p + (a, possibly negated) for an affine input
// (madd-2007-bl, Z2 = 1). This is the hot call of the MSM bucket
// accumulation: 7M + 4S instead of the full add's 11M + 5S.
func (p *jacPoint) addAffine(a *affinePoint, neg bool) {
	ay := &a.y
	if neg {
		ay = &a.yNeg
	}
	if p.isIdentity() {
		p.x = a.x
		p.y = *ay
		p.z = feOne
		return
	}
	var z1z1, u2, s2, h, r, t fe
	feSqr(&z1z1, &p.z)
	feMul(&u2, &a.x, &z1z1)
	feMul(&t, &p.z, &z1z1)
	feMul(&s2, ay, &t)
	feSub(&h, &u2, &p.x)
	feSub(&r, &s2, &p.y)

	if h.isZero() {
		if r.isZero() {
			p.double()
			return
		}
		p.setIdentity()
		return
	}

	var hh, i, j, v, x3, y3, z3 fe
	feSqr(&hh, &h) // HH = H²
	feDouble(&i, &hh)
	feDouble(&i, &i)    // I = 4HH
	feMul(&j, &h, &i)   // J = H·I
	feDouble(&r, &r)    // r = 2(S2−Y1)
	feMul(&v, &p.x, &i) // V = X1·I

	feSqr(&x3, &r)
	feSub(&x3, &x3, &j)
	feSub(&x3, &x3, &v)
	feSub(&x3, &x3, &v) // X3 = r² − J − 2V

	feSub(&y3, &v, &x3)
	feMul(&y3, &r, &y3)
	feMul(&t, &p.y, &j)
	feDouble(&t, &t)
	feSub(&y3, &y3, &t) // Y3 = r(V−X3) − 2·Y1·J

	feAdd(&z3, &p.z, &h)
	feSqr(&z3, &z3)
	feSub(&z3, &z3, &z1z1)
	feSub(&z3, &z3, &hh) // Z3 = (Z1+H)² − Z1Z1 − HH

	p.x, p.y, p.z = x3, y3, z3
}

package group

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	s := MustRandomScalar()
	b := s.Bytes()
	if len(b) != ScalarSize {
		t.Fatalf("scalar encoding length = %d, want %d", len(b), ScalarSize)
	}
	got, err := ParseScalar(b)
	if err != nil {
		t.Fatalf("ParseScalar: %v", err)
	}
	if !got.Equal(s) {
		t.Fatal("round-tripped scalar differs")
	}
}

func TestParseScalarRejectsNonCanonical(t *testing.T) {
	b := Order().Bytes() // exactly the order: not canonical
	if _, err := ParseScalar(b); err == nil {
		t.Fatal("ParseScalar accepted the group order")
	}
	if _, err := ParseScalar(make([]byte, ScalarSize-1)); err == nil {
		t.Fatal("ParseScalar accepted a short encoding")
	}
}

func TestScalarArithmetic(t *testing.T) {
	a, b := NewScalar(7), NewScalar(5)
	if got := a.Add(b); !got.Equal(NewScalar(12)) {
		t.Errorf("7+5 = %v", got)
	}
	if got := a.Sub(b); !got.Equal(NewScalar(2)) {
		t.Errorf("7-5 = %v", got)
	}
	if got := a.Mul(b); !got.Equal(NewScalar(35)) {
		t.Errorf("7*5 = %v", got)
	}
	if got := a.Add(a.Neg()); !got.IsZero() {
		t.Errorf("7+(-7) = %v", got)
	}
	if got := a.Mul(a.Inverse()); !got.Equal(NewScalar(1)) {
		t.Errorf("7*7^-1 = %v", got)
	}
}

func TestScalarInverseOfZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inverse of zero did not panic")
		}
	}()
	NewScalar(0).Inverse()
}

func TestScalarModularReduction(t *testing.T) {
	big2 := new(big.Int).Add(Order(), big.NewInt(3))
	s := ScalarFromBig(big2)
	if !s.Equal(NewScalar(3)) {
		t.Fatalf("order+3 mod order = %v, want 3", s)
	}
	if got := NewScalar(-1); !got.Add(NewScalar(1)).IsZero() {
		t.Fatalf("-1 + 1 != 0: %v", got)
	}
}

func TestPointRoundTrip(t *testing.T) {
	p := Base(MustRandomScalar())
	b := p.Bytes()
	if len(b) != PointSize {
		t.Fatalf("point encoding length = %d, want %d", len(b), PointSize)
	}
	got, err := ParsePoint(b)
	if err != nil {
		t.Fatalf("ParsePoint: %v", err)
	}
	if !got.Equal(p) {
		t.Fatal("round-tripped point differs")
	}
}

func TestIdentityRoundTrip(t *testing.T) {
	id := Identity()
	if !id.IsIdentity() {
		t.Fatal("Identity() is not the identity")
	}
	b := id.Bytes()
	if !bytes.Equal(b, make([]byte, PointSize)) {
		t.Fatalf("identity encoding = %x, want zeros", b)
	}
	got, err := ParsePoint(b)
	if err != nil || !got.IsIdentity() {
		t.Fatalf("ParsePoint(zeros) = %v, %v", got, err)
	}
}

func TestParsePointRejectsGarbage(t *testing.T) {
	bad := make([]byte, PointSize)
	bad[0] = 0x02
	for i := 1; i < PointSize; i++ {
		bad[i] = 0xFF
	}
	if _, err := ParsePoint(bad); err == nil {
		t.Fatal("ParsePoint accepted an off-curve encoding")
	}
	if _, err := ParsePoint(bad[:10]); err == nil {
		t.Fatal("ParsePoint accepted a short encoding")
	}
}

func TestGroupLaws(t *testing.T) {
	g := Generator()
	a, b := MustRandomScalar(), MustRandomScalar()
	A, B := Base(a), Base(b)

	// Commutativity of the group operation.
	if !A.Add(B).Equal(B.Add(A)) {
		t.Fatal("addition is not commutative")
	}
	// g^a * g^b == g^(a+b)
	if !A.Add(B).Equal(Base(a.Add(b))) {
		t.Fatal("g^a * g^b != g^(a+b)")
	}
	// (g^a)^b == (g^b)^a
	if !A.Mul(b).Equal(B.Mul(a)) {
		t.Fatal("DH does not commute")
	}
	// p + identity == p
	if !A.Add(Identity()).Equal(A) {
		t.Fatal("identity is not neutral")
	}
	// p + (-p) == identity
	if !A.Add(A.Neg()).IsIdentity() {
		t.Fatal("p + (-p) != identity")
	}
	// g^order == identity (scalar reduces to zero)
	if !g.Mul(ScalarFromBig(Order())).IsIdentity() {
		t.Fatal("g^order != identity")
	}
}

func TestDHSharedSecretAgreement(t *testing.T) {
	alice := GenerateBaseKeyPair()
	bob := GenerateBaseKeyPair()
	s1 := DH(bob.Public, alice.Private)
	s2 := DH(alice.Public, bob.Private)
	if s1 != s2 {
		t.Fatal("DH shared secrets disagree")
	}
	carol := GenerateBaseKeyPair()
	if s3 := DH(carol.Public, alice.Private); s3 == s1 {
		t.Fatal("unrelated DH produced the same secret")
	}
}

func TestProduct(t *testing.T) {
	var points []Point
	sum := NewScalar(0)
	for i := int64(1); i <= 5; i++ {
		s := NewScalar(i * 11)
		sum = sum.Add(s)
		points = append(points, Base(s))
	}
	if !Product(points).Equal(Base(sum)) {
		t.Fatal("product of g^si != g^(sum si)")
	}
	if !Product(nil).IsIdentity() {
		t.Fatal("empty product is not the identity")
	}
}

// TestBlindingHomomorphism checks the property AHS verification relies
// on (§6.3 step 3): blinding every key by bsk and taking the product
// equals raising the product of the originals to bsk.
func TestBlindingHomomorphism(t *testing.T) {
	bsk := MustRandomScalar()
	var keys, blinded []Point
	for i := 0; i < 8; i++ {
		p := Base(MustRandomScalar())
		keys = append(keys, p)
		blinded = append(blinded, p.Mul(bsk))
	}
	if !Product(keys).Mul(bsk).Equal(Product(blinded)) {
		t.Fatal("(∏X)^bsk != ∏(X^bsk)")
	}
}

func TestHashToScalarDomainSeparation(t *testing.T) {
	a := HashToScalar("domain-a", []byte("input"))
	b := HashToScalar("domain-b", []byte("input"))
	if a.Equal(b) {
		t.Fatal("different domains produced the same scalar")
	}
	c := HashToScalar("domain-a", []byte("input"))
	if !a.Equal(c) {
		t.Fatal("HashToScalar is not deterministic")
	}
	// Length-prefixing must prevent concatenation ambiguity.
	d := HashToScalar("domain-a", []byte("in"), []byte("put"))
	if a.Equal(d) {
		t.Fatal("input framing is ambiguous")
	}
}

func TestHashToScalarEmptyInputs(t *testing.T) {
	a := HashToScalar("d")
	b := HashToScalar("d", []byte{})
	if a.Equal(b) {
		t.Fatal("zero inputs and one empty input should hash differently")
	}
}

func TestKeyPairAgainstChainedBase(t *testing.T) {
	// AHS §6.1: server i's keys are relative to bpk_{i-1}.
	base := Base(MustRandomScalar())
	kp := GenerateKeyPair(base)
	if !kp.Public.Equal(base.Mul(kp.Private)) {
		t.Fatal("chained key pair mismatch")
	}
}

func TestQuickScalarAddAssociative(t *testing.T) {
	f := func(a, b, c int64) bool {
		x, y, z := NewScalar(a), NewScalar(b), NewScalar(c)
		return x.Add(y).Add(z).Equal(x.Add(y.Add(z)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExponentDistributes(t *testing.T) {
	// (g^a)^(b+c) == (g^a)^b * (g^a)^c for random small exponents.
	f := func(a, b, c uint16) bool {
		p := Base(NewScalar(int64(a) + 1))
		sb, sc := NewScalar(int64(b)), NewScalar(int64(c))
		lhs := p.Mul(sb.Add(sc))
		rhs := p.Mul(sb).Add(p.Mul(sc))
		return lhs.Equal(rhs)
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScalarBaseMult(b *testing.B) {
	s := MustRandomScalar()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Base(s)
	}
}

func BenchmarkPointMul(b *testing.B) {
	p := Base(MustRandomScalar())
	s := MustRandomScalar()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Mul(s)
	}
}

func BenchmarkDH(b *testing.B) {
	p := Base(MustRandomScalar())
	s := MustRandomScalar()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DH(p, s)
	}
}

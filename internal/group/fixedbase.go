package group

// Precomputed fixed-base scalar multiplication for the generator g.
// Client onion building, per-round key announcement, and NIZK proving
// all compute g^s; routing them through crypto/elliptic's generic
// ScalarBaseMult costs ~15µs per point on commodity hardware. Here the
// generator's multiples are tabulated once and a scalar mult becomes
// one table lookup-and-add per signed 13-bit window — no doublings at
// all, because window j's table already holds multiples of 2^(13j)·g.
//
// Two evaluation strategies share the same tables:
//
//   - Base (single scalar) accumulates the 21 window entries in
//     Jacobian coordinates and pays one field inversion at the end;
//   - BatchBase (many scalars) keeps every accumulator in affine
//     coordinates and batches the per-window division across the whole
//     batch with the Montgomery inversion trick, which brings the
//     amortized cost down to ~5 field mults per window per point.
//
// Everything here is variable-time (digit-dependent table indexing and
// branches). That is a deliberate trade against the constant-time
// stdlib path: the scalars are per-message/per-round ephemerals and
// the deployment model is a server-side mix network, not a shared
// host with a cache-timing adversary. See DESIGN.md for the
// discussion; revert Base to curve.ScalarBaseMult for a hardened
// build.

import "sync"

const (
	// fbWindow is the signed-window width in bits. 13 bits means 21
	// windows over a 256-bit scalar (plus recoding carry) and
	// 2^12 = 4096 table entries per window: 86016 affine points,
	// ~8 MiB, built lazily on first use in ~50ms.
	fbWindow = 13
	// fbHalf is the number of precomputed multiples per window; signed
	// digits halve the table because −d·P is a stored y-negation.
	fbHalf = 1 << (fbWindow - 1)
	// fbWindows must equal digitWindows(256, fbWindow); asserted when
	// the tables are built.
	fbWindows = 21
	// fbBatchMin is the batch size where the affine accumulation with
	// per-window batched inversions overtakes per-point Jacobian
	// accumulation (21 inversions amortize across the batch).
	fbBatchMin = 8
)

var (
	fbOnce  sync.Once
	fbTable []affinePoint // fbWindows windows × fbHalf entries, flat
)

// fbInit builds the generator tables: window j holds k·2^(13j)·g for
// k = 1..4096. Entries are accumulated in Jacobian coordinates and
// normalized with one batched inversion per window.
func fbInit() {
	fbOnce.Do(func() {
		if digitWindows(256, fbWindow) != fbWindows {
			panic("group: fbWindows constant is wrong")
		}
		table := make([]affinePoint, fbWindows*fbHalf)
		base := newAffinePoint(Generator())
		jtab := make([]jacPoint, fbHalf+1)
		scratch := make([]affinePoint, fbHalf+1)
		for j := 0; j < fbWindows; j++ {
			jtab[0].fromAffine(&base, false)
			for k := 1; k < fbHalf; k++ {
				jtab[k] = jtab[k-1]
				jtab[k].addAffine(&base, false)
			}
			// jtab[fbHalf-1] = 2^(fbWindow-1)·B; doubling it gives the
			// next window's base 2^fbWindow·B.
			jtab[fbHalf] = jtab[fbHalf-1]
			jtab[fbHalf].double()
			batchNormalize(jtab, scratch)
			copy(table[j*fbHalf:(j+1)*fbHalf], scratch[:fbHalf])
			base = scratch[fbHalf]
		}
		fbTable = table
	})
}

// fixedBaseMult computes g^s for a non-zero scalar via the tables:
// one mixed addition per non-zero window digit, one final inversion.
func fixedBaseMult(s Scalar) Point {
	fbInit()
	l := scalarLimbs(s)
	var digits [fbWindows]int16
	signedDigits(&l, fbWindow, fbWindows, digits[:])
	var acc jacPoint
	for j, d := range digits {
		if d > 0 {
			acc.addAffine(&fbTable[j*fbHalf+int(d)-1], false)
		} else if d < 0 {
			acc.addAffine(&fbTable[j*fbHalf-int(d)-1], true)
		}
	}
	return acc.toPoint()
}

// BatchBase computes g^scalars[i] for every scalar with one shared
// table walk. Large batches run the window sweep entirely in affine
// coordinates: each window contributes one affine addition per point,
// whose divisions are batched into a single field inversion across
// the batch (Montgomery trick), so no per-point inversion is ever
// paid. Zero scalars yield the identity.
func BatchBase(scalars []Scalar) []Point {
	n := len(scalars)
	if n == 0 {
		return nil
	}
	fbInit()
	if n < fbBatchMin {
		// Jacobian accumulation per point, one shared inversion at
		// the end.
		js := make([]jacPoint, n)
		var digits [fbWindows]int16
		for i, s := range scalars {
			if s.IsZero() {
				continue
			}
			l := scalarLimbs(s)
			signedDigits(&l, fbWindow, fbWindows, digits[:])
			for j, d := range digits {
				if d > 0 {
					js[i].addAffine(&fbTable[j*fbHalf+int(d)-1], false)
				} else if d < 0 {
					js[i].addAffine(&fbTable[j*fbHalf-int(d)-1], true)
				}
			}
		}
		return BatchToAffine(js)
	}
	digits := make([]int16, n*fbWindows)
	for i, s := range scalars {
		if s.IsZero() {
			continue // all-zero digits, the sweep skips the point
		}
		l := scalarLimbs(s)
		signedDigits(&l, fbWindow, fbWindows, digits[i*fbWindows:(i+1)*fbWindows])
	}
	return batchBaseAffine(digits, n)
}

// batchBaseAffine is the all-affine window sweep behind BatchBase.
// Accumulators stay in affine coordinates; each window collects every
// point's pending addition (or doubling, when the table entry equals
// the accumulator), inverts all denominators with one inversion, and
// applies the affine chord/tangent formulas.
func batchBaseAffine(digits []int16, n int) []Point {
	accX := make([]fe, n)
	accY := make([]fe, n)
	has := make([]bool, n)

	idx := make([]int, 0, n) // points with a pending op this window
	den := make([]fe, 0, n)  // chord/tangent denominators
	num := make([]fe, 0, n)  // chord/tangent numerators
	exs := make([]fe, 0, n)  // entry x (equals accX for doublings)
	prefix := make([]fe, n)

	for j := 0; j < fbWindows; j++ {
		idx, den, num, exs = idx[:0], den[:0], num[:0], exs[:0]
		win := fbTable[j*fbHalf : (j+1)*fbHalf]
		for i := 0; i < n; i++ {
			d := digits[i*fbWindows+j]
			if d == 0 {
				continue
			}
			var e *affinePoint
			var ey fe
			if d > 0 {
				e = &win[d-1]
				ey = e.y
			} else {
				e = &win[-d-1]
				ey = e.yNeg
			}
			if !has[i] {
				accX[i], accY[i], has[i] = e.x, ey, true
				continue
			}
			if accX[i].equal(&e.x) {
				if accY[i].equal(&ey) {
					// Tangent: λ = 3(x²−1)/(2y). a = −3 folds the
					// numerator to 3(x²−1); y ≠ 0 because the group
					// order is prime (no 2-torsion).
					var dd, nn, t fe
					feDouble(&dd, &accY[i])
					feSqr(&t, &accX[i])
					feSub(&t, &t, &feOne)
					feDouble(&nn, &t)
					feAdd(&nn, &nn, &t)
					idx = append(idx, i)
					den = append(den, dd)
					num = append(num, nn)
					exs = append(exs, accX[i])
				} else {
					has[i] = false // P + (−P): back to the identity
				}
				continue
			}
			// Chord: λ = (y2−y1)/(x2−x1).
			var dd, nn fe
			feSub(&dd, &e.x, &accX[i])
			feSub(&nn, &ey, &accY[i])
			idx = append(idx, i)
			den = append(den, dd)
			num = append(num, nn)
			exs = append(exs, e.x)
		}
		m := len(idx)
		if m == 0 {
			continue
		}
		// Montgomery trick: one inversion for all m denominators.
		prefix[0] = den[0]
		for k := 1; k < m; k++ {
			feMul(&prefix[k], &prefix[k-1], &den[k])
		}
		var inv fe
		feInv(&inv, &prefix[m-1])
		for k := m - 1; k >= 0; k-- {
			var dinv fe
			if k == 0 {
				dinv = inv
			} else {
				feMul(&dinv, &inv, &prefix[k-1])
				feMul(&inv, &inv, &den[k])
			}
			i := idx[k]
			var lam, x3, y3, t fe
			feMul(&lam, &num[k], &dinv)
			feSqr(&x3, &lam)
			feSub(&x3, &x3, &accX[i])
			feSub(&x3, &x3, &exs[k])
			feSub(&t, &accX[i], &x3)
			feMul(&y3, &lam, &t)
			feSub(&y3, &y3, &accY[i])
			accX[i], accY[i] = x3, y3
		}
	}

	out := make([]Point, n)
	for i := range out {
		if has[i] {
			out[i] = Point{accX[i].toBig(), accY[i].toBig()}
		}
	}
	return out
}

package group

// Fast arithmetic in the P-256 base field GF(p), used only by the
// multi-scalar multiplication (multiscalar.go). crypto/elliptic's
// affine Add pays a field inversion per call, which makes any
// addition-chain algorithm slower than its assembly ScalarMult; this
// file provides inversion-free field elements so Jacobian-coordinate
// chains actually win.
//
// Representation: four little-endian uint64 limbs in the Montgomery
// domain (value·2^256 mod p). P-256's lowest prime limb is 2^64−1, so
// the Montgomery constant −p⁻¹ mod 2^64 is exactly 1 and each
// reduction step needs no multiplication to derive its quotient word.
//
// Everything here is variable-time. The MSM only ever touches public
// proof data and verifier-local batching randomizers, never long-term
// secrets; the constant-time paths for secret scalars remain
// crypto/elliptic's.

import (
	"math/big"
	"math/bits"
)

// fe is a field element in the Montgomery domain, little-endian limbs.
type fe [4]uint64

// The prime's limbs as constants so the hot paths can fold them into
// immediates: p = 2^256 − 2^224 + 2^192 + 2^96 − 1. The init below
// cross-checks them against the curve parameters so a typo here cannot
// silently corrupt arithmetic.
const (
	feP0 uint64 = 0xffffffffffffffff
	feP1 uint64 = 0x00000000ffffffff
	feP2 uint64 = 0x0000000000000000
	feP3 uint64 = 0xffffffff00000001
)

// Prime limbs and Montgomery constants, filled from the curve
// parameters at init so no hand-transcribed constant can drift.
var (
	feP   fe // the prime p
	feR2  fe // 2^512 mod p, for toMont
	feOne fe // 1 in the Montgomery domain (2^256 mod p)
)

func init() {
	p := curve.Params().P
	feP = feFromBigRaw(p)
	if feP != (fe{feP0, feP1, feP2, feP3}) {
		panic("group: feP constants disagree with curve.Params().P")
	}
	r2 := new(big.Int).Lsh(big.NewInt(1), 512)
	r2.Mod(r2, p)
	feR2 = feFromBigRaw(r2)
	one := new(big.Int).Lsh(big.NewInt(1), 256)
	one.Mod(one, p)
	feOne = feFromBigRaw(one)
}

// feFromBigRaw copies a reduced big.Int into limbs without any domain
// conversion.
func feFromBigRaw(v *big.Int) fe {
	var b [32]byte
	v.FillBytes(b[:])
	var z fe
	for i := 0; i < 4; i++ {
		z[i] = uint64(b[31-8*i]) | uint64(b[30-8*i])<<8 | uint64(b[29-8*i])<<16 |
			uint64(b[28-8*i])<<24 | uint64(b[27-8*i])<<32 | uint64(b[26-8*i])<<40 |
			uint64(b[25-8*i])<<48 | uint64(b[24-8*i])<<56
	}
	return z
}

// feFromBig converts a reduced big.Int into the Montgomery domain.
func feFromBig(v *big.Int) fe {
	raw := feFromBigRaw(v)
	var z fe
	feMul(&z, &raw, &feR2)
	return z
}

// toBig leaves the Montgomery domain and returns the standard value.
func (x *fe) toBig() *big.Int {
	one := fe{1, 0, 0, 0}
	var raw fe
	feMul(&raw, x, &one)
	var b [32]byte
	for i := 0; i < 4; i++ {
		b[31-8*i] = byte(raw[i])
		b[30-8*i] = byte(raw[i] >> 8)
		b[29-8*i] = byte(raw[i] >> 16)
		b[28-8*i] = byte(raw[i] >> 24)
		b[27-8*i] = byte(raw[i] >> 32)
		b[26-8*i] = byte(raw[i] >> 40)
		b[25-8*i] = byte(raw[i] >> 48)
		b[24-8*i] = byte(raw[i] >> 56)
	}
	return new(big.Int).SetBytes(b[:])
}

func (x *fe) isZero() bool { return x[0]|x[1]|x[2]|x[3] == 0 }

func (x *fe) equal(y *fe) bool {
	return x[0] == y[0] && x[1] == y[1] && x[2] == y[2] && x[3] == y[3]
}

// feMul sets z = x·y·2^−256 mod p (Montgomery product). Fully
// unrolled CIOS: each of the four rounds adds one product row x[i]·y
// into a 6-limb accumulator and immediately folds the low limb away
// with one Montgomery reduction step. With −p⁻¹ ≡ 1 mod 2^64 the
// quotient word of each step is the accumulator's low limb m, and
// because p = 2^256 − 2^224 + 2^192 + 2^96 − 1 the m·p addition needs
// no multiplications at all, only shifts of m:
//
//	(t + m·p)/2^64 = t/2^64 + m·2^32 + m·(2^64−2^32+1)·2^128
//
// (the −m term exactly cancels the low limb t0 = m).
func feMul(z, x, y *fe) {
	x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
	y0, y1, y2, y3 := y[0], y[1], y[2], y[3]
	var t0, t1, t2, t3, t4, t5 uint64

	// Round 0: t = x0·y, then one reduction step.
	h0, l0 := bits.Mul64(x0, y0)
	h1, l1 := bits.Mul64(x0, y1)
	h2, l2 := bits.Mul64(x0, y2)
	h3, l3 := bits.Mul64(x0, y3)
	t0 = l0
	var c uint64
	t1, c = bits.Add64(l1, h0, 0)
	t2, c = bits.Add64(l2, h1, c)
	t3, c = bits.Add64(l3, h2, c)
	t4, _ = bits.Add64(h3, 0, c)

	m := t0
	lo, bb := bits.Sub64(m, m<<32, 0)
	hi := m - m>>32 - bb
	t0, c = bits.Add64(t1, m<<32, 0)
	t1, c = bits.Add64(t2, m>>32, c)
	t2, c = bits.Add64(t3, lo, c)
	t3, c = bits.Add64(t4, hi, c)
	t4 = c

	// Rounds 1..3: t += x[i]·y, then one reduction step each.
	for _, xi := range [3]uint64{x1, x2, x3} {
		h0, l0 = bits.Mul64(xi, y0)
		h1, l1 = bits.Mul64(xi, y1)
		h2, l2 = bits.Mul64(xi, y2)
		h3, l3 = bits.Mul64(xi, y3)
		t0, c = bits.Add64(t0, l0, 0)
		t1, c = bits.Add64(t1, l1, c)
		t2, c = bits.Add64(t2, l2, c)
		t3, c = bits.Add64(t3, l3, c)
		t4, c = bits.Add64(t4, 0, c)
		t5 = c
		t1, c = bits.Add64(t1, h0, 0)
		t2, c = bits.Add64(t2, h1, c)
		t3, c = bits.Add64(t3, h2, c)
		t4, c = bits.Add64(t4, h3, c)
		t5 += c

		m = t0
		lo, bb = bits.Sub64(m, m<<32, 0)
		hi = m - m>>32 - bb
		t0, c = bits.Add64(t1, m<<32, 0)
		t1, c = bits.Add64(t2, m>>32, c)
		t2, c = bits.Add64(t3, lo, c)
		t3, c = bits.Add64(t4, hi, c)
		t4 = t5 + c
	}

	// Result in t0..t4 is < 2p; subtract p once if needed.
	r0, b := bits.Sub64(t0, feP0, 0)
	r1, b := bits.Sub64(t1, feP1, b)
	r2, b := bits.Sub64(t2, feP2, b)
	r3, b := bits.Sub64(t3, feP3, b)
	_, b = bits.Sub64(t4, 0, b)
	mask := -b // borrow set: t < p, keep t
	z[0] = t0&mask | r0&^mask
	z[1] = t1&mask | r1&^mask
	z[2] = t2&mask | r2&^mask
	z[3] = t3&mask | r3&^mask
}

// feSqr sets z = x²·2^−256 mod p. The six cross products are computed
// once and doubled, then the four shift-only reduction steps of feMul
// run over the full 512-bit square.
func feSqr(z, x *fe) {
	x0, x1, x2, x3 := x[0], x[1], x[2], x[3]

	// Off-diagonal products into t1..t6.
	h01, l01 := bits.Mul64(x0, x1)
	h02, l02 := bits.Mul64(x0, x2)
	h03, l03 := bits.Mul64(x0, x3)
	h12, l12 := bits.Mul64(x1, x2)
	h13, l13 := bits.Mul64(x1, x3)
	h23, l23 := bits.Mul64(x2, x3)

	t1 := l01
	t2, c := bits.Add64(l02, h01, 0)
	t3, c := bits.Add64(l03, h02, c)
	t4, c := bits.Add64(h03, 0, c)
	t5 := c
	t3, c = bits.Add64(t3, l12, 0)
	t4, c = bits.Add64(t4, l13, c)
	t5, _ = bits.Add64(t5, 0, c)
	t4, c = bits.Add64(t4, h12, 0)
	t5, c = bits.Add64(t5, h13, c)
	t6 := c
	t5, c = bits.Add64(t5, l23, 0)
	t6, _ = bits.Add64(t6, h23, c)

	// Double the off-diagonal part and add the diagonal squares.
	t7 := t6 >> 63
	t6 = t6<<1 | t5>>63
	t5 = t5<<1 | t4>>63
	t4 = t4<<1 | t3>>63
	t3 = t3<<1 | t2>>63
	t2 = t2<<1 | t1>>63
	t1 = t1 << 1

	h, t0 := bits.Mul64(x0, x0)
	t1, c = bits.Add64(t1, h, 0)
	h, l := bits.Mul64(x1, x1)
	t2, c = bits.Add64(t2, l, c)
	t3, c = bits.Add64(t3, h, c)
	h, l = bits.Mul64(x2, x2)
	t4, c = bits.Add64(t4, l, c)
	t5, c = bits.Add64(t5, h, c)
	h, l = bits.Mul64(x3, x3)
	t6, c = bits.Add64(t6, l, c)
	t7, _ = bits.Add64(t7, h, c)

	// Four shift-only Montgomery reduction steps over t0..t7; t8
	// catches the final carries (the running value can reach 2p·2^256).
	var t8 uint64

	m := t0
	lo, bb := bits.Sub64(m, m<<32, 0)
	hi := m - m>>32 - bb
	t1, c = bits.Add64(t1, m<<32, 0)
	t2, c = bits.Add64(t2, m>>32, c)
	t3, c = bits.Add64(t3, lo, c)
	t4, c = bits.Add64(t4, hi, c)
	t5, c = bits.Add64(t5, 0, c)
	t6, c = bits.Add64(t6, 0, c)
	t7, c = bits.Add64(t7, 0, c)
	t8 += c

	m = t1
	lo, bb = bits.Sub64(m, m<<32, 0)
	hi = m - m>>32 - bb
	t2, c = bits.Add64(t2, m<<32, 0)
	t3, c = bits.Add64(t3, m>>32, c)
	t4, c = bits.Add64(t4, lo, c)
	t5, c = bits.Add64(t5, hi, c)
	t6, c = bits.Add64(t6, 0, c)
	t7, c = bits.Add64(t7, 0, c)
	t8 += c

	m = t2
	lo, bb = bits.Sub64(m, m<<32, 0)
	hi = m - m>>32 - bb
	t3, c = bits.Add64(t3, m<<32, 0)
	t4, c = bits.Add64(t4, m>>32, c)
	t5, c = bits.Add64(t5, lo, c)
	t6, c = bits.Add64(t6, hi, c)
	t7, c = bits.Add64(t7, 0, c)
	t8 += c

	m = t3
	lo, bb = bits.Sub64(m, m<<32, 0)
	hi = m - m>>32 - bb
	t4, c = bits.Add64(t4, m<<32, 0)
	t5, c = bits.Add64(t5, m>>32, c)
	t6, c = bits.Add64(t6, lo, c)
	t7, c = bits.Add64(t7, hi, c)
	t8 += c

	// Result in t4..t8 is < 2p; subtract p once if needed.
	r0, b := bits.Sub64(t4, feP0, 0)
	r1, b := bits.Sub64(t5, feP1, b)
	r2, b := bits.Sub64(t6, feP2, b)
	r3, b := bits.Sub64(t7, feP3, b)
	_, b = bits.Sub64(t8, 0, b)
	mask := -b
	z[0] = t4&mask | r0&^mask
	z[1] = t5&mask | r1&^mask
	z[2] = t6&mask | r2&^mask
	z[3] = t7&mask | r3&^mask
}

// feAdd sets z = x + y mod p, branch-free.
func feAdd(z, x, y *fe) {
	s0, c := bits.Add64(x[0], y[0], 0)
	s1, c := bits.Add64(x[1], y[1], c)
	s2, c := bits.Add64(x[2], y[2], c)
	s3, c := bits.Add64(x[3], y[3], c)
	r0, b := bits.Sub64(s0, feP0, 0)
	r1, b := bits.Sub64(s1, feP1, b)
	r2, b := bits.Sub64(s2, feP2, b)
	r3, b := bits.Sub64(s3, feP3, b)
	_, b = bits.Sub64(c, 0, b)
	mask := -b // borrow set: sum < p, keep the raw sum
	z[0] = s0&mask | r0&^mask
	z[1] = s1&mask | r1&^mask
	z[2] = s2&mask | r2&^mask
	z[3] = s3&mask | r3&^mask
}

// feSub sets z = x − y mod p, branch-free: p is added back under a
// mask only when the raw subtraction borrowed.
func feSub(z, x, y *fe) {
	d0, b := bits.Sub64(x[0], y[0], 0)
	d1, b := bits.Sub64(x[1], y[1], b)
	d2, b := bits.Sub64(x[2], y[2], b)
	d3, b := bits.Sub64(x[3], y[3], b)
	mask := -b
	var c uint64
	d0, c = bits.Add64(d0, feP0&mask, 0)
	d1, c = bits.Add64(d1, feP1&mask, c)
	d2, c = bits.Add64(d2, feP2&mask, c)
	d3, _ = bits.Add64(d3, feP3&mask, c)
	z[0], z[1], z[2], z[3] = d0, d1, d2, d3
}

// feDouble sets z = 2x mod p.
func feDouble(z, x *fe) { feAdd(z, x, x) }

// feNeg sets z = −x mod p. feSub via zero takes the borrow path for
// any non-zero x and lands on p−x.
func feNeg(z, x *fe) {
	if x.isZero() {
		*z = fe{}
		return
	}
	var zero fe
	feSub(z, &zero, x)
}

package group

// Fast arithmetic in the P-256 base field GF(p), used only by the
// multi-scalar multiplication (multiscalar.go). crypto/elliptic's
// affine Add pays a field inversion per call, which makes any
// addition-chain algorithm slower than its assembly ScalarMult; this
// file provides inversion-free field elements so Jacobian-coordinate
// chains actually win.
//
// Representation: four little-endian uint64 limbs in the Montgomery
// domain (value·2^256 mod p). P-256's lowest prime limb is 2^64−1, so
// the Montgomery constant −p⁻¹ mod 2^64 is exactly 1 and each
// reduction step needs no multiplication to derive its quotient word.
//
// Everything here is variable-time. The MSM only ever touches public
// proof data and verifier-local batching randomizers, never long-term
// secrets; the constant-time paths for secret scalars remain
// crypto/elliptic's.

import (
	"math/big"
	"math/bits"
)

// fe is a field element in the Montgomery domain, little-endian limbs.
type fe [4]uint64

// Prime limbs and Montgomery constants, filled from the curve
// parameters at init so no hand-transcribed constant can drift.
var (
	feP   fe // the prime p
	feR2  fe // 2^512 mod p, for toMont
	feOne fe // 1 in the Montgomery domain (2^256 mod p)
)

func init() {
	p := curve.Params().P
	feP = feFromBigRaw(p)
	r2 := new(big.Int).Lsh(big.NewInt(1), 512)
	r2.Mod(r2, p)
	feR2 = feFromBigRaw(r2)
	one := new(big.Int).Lsh(big.NewInt(1), 256)
	one.Mod(one, p)
	feOne = feFromBigRaw(one)
}

// feFromBigRaw copies a reduced big.Int into limbs without any domain
// conversion.
func feFromBigRaw(v *big.Int) fe {
	var b [32]byte
	v.FillBytes(b[:])
	var z fe
	for i := 0; i < 4; i++ {
		z[i] = uint64(b[31-8*i]) | uint64(b[30-8*i])<<8 | uint64(b[29-8*i])<<16 |
			uint64(b[28-8*i])<<24 | uint64(b[27-8*i])<<32 | uint64(b[26-8*i])<<40 |
			uint64(b[25-8*i])<<48 | uint64(b[24-8*i])<<56
	}
	return z
}

// feFromBig converts a reduced big.Int into the Montgomery domain.
func feFromBig(v *big.Int) fe {
	raw := feFromBigRaw(v)
	var z fe
	feMul(&z, &raw, &feR2)
	return z
}

// toBig leaves the Montgomery domain and returns the standard value.
func (x *fe) toBig() *big.Int {
	one := fe{1, 0, 0, 0}
	var raw fe
	feMul(&raw, x, &one)
	var b [32]byte
	for i := 0; i < 4; i++ {
		b[31-8*i] = byte(raw[i])
		b[30-8*i] = byte(raw[i] >> 8)
		b[29-8*i] = byte(raw[i] >> 16)
		b[28-8*i] = byte(raw[i] >> 24)
		b[27-8*i] = byte(raw[i] >> 32)
		b[26-8*i] = byte(raw[i] >> 40)
		b[25-8*i] = byte(raw[i] >> 48)
		b[24-8*i] = byte(raw[i] >> 56)
	}
	return new(big.Int).SetBytes(b[:])
}

func (x *fe) isZero() bool { return x[0]|x[1]|x[2]|x[3] == 0 }

func (x *fe) equal(y *fe) bool {
	return x[0] == y[0] && x[1] == y[1] && x[2] == y[2] && x[3] == y[3]
}

// feMul sets z = x·y·2^−256 mod p (Montgomery product). Schoolbook
// 256×256→512 product followed by four REDC steps; with −p⁻¹ ≡ 1 the
// quotient word of each step is simply the running low limb.
func feMul(z, x, y *fe) {
	var t [9]uint64

	// Schoolbook product into t[0..7].
	for i := 0; i < 4; i++ {
		var carry uint64
		xi := x[i]
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			lo, c1 := bits.Add64(lo, t[i+j], 0)
			lo, c2 := bits.Add64(lo, carry, 0)
			t[i+j] = lo
			carry = hi + c1 + c2 // hi ≤ 2^64−2, cannot overflow
		}
		t[i+4] = carry
	}

	feReduce(z, &t)
}

// feSqr sets z = x²·2^−256 mod p. The cross products are computed
// once and doubled, saving roughly a third of the multiplications.
func feSqr(z, x *fe) {
	var t [9]uint64

	// Off-diagonal products x[i]·x[j] for i<j land in t[1..6];
	// t[0], t[7], t[8] stay zero.
	for i := 0; i < 3; i++ {
		var carry uint64
		for j := i + 1; j < 4; j++ {
			hi, lo := bits.Mul64(x[i], x[j])
			lo, c1 := bits.Add64(lo, t[i+j], 0)
			lo, c2 := bits.Add64(lo, carry, 0)
			t[i+j] = lo
			carry = hi + c1 + c2
		}
		t[i+4] = carry
	}

	// Double the off-diagonal part (bounded by t[7]).
	for i := 7; i >= 1; i-- {
		t[i] = t[i]<<1 | t[i-1]>>63
	}

	// Add the diagonal squares.
	var carry uint64
	for i := 0; i < 4; i++ {
		hi, lo := bits.Mul64(x[i], x[i])
		var c uint64
		t[2*i], c = bits.Add64(t[2*i], lo, 0)
		hi += c // hi ≤ 2^64−2, cannot overflow
		t[2*i+1], carry = bits.Add64(t[2*i+1], hi, 0)
		for k := 2*i + 2; carry != 0 && k < 9; k++ {
			t[k], carry = bits.Add64(t[k], carry, 0)
		}
	}

	feReduce(z, &t)
}

// feReduce runs the four Montgomery reduction steps over the 512-bit
// value in t[0..7] (t[8] spare carry word) and writes the canonical
// result.
func feReduce(z *fe, t *[9]uint64) {
	for i := 0; i < 4; i++ {
		m := t[i] // quotient word: m = t[i]·(−p⁻¹) mod 2^64 = t[i]
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(m, feP[j])
			lo, c1 := bits.Add64(lo, t[i+j], 0)
			lo, c2 := bits.Add64(lo, carry, 0)
			t[i+j] = lo
			carry = hi + c1 + c2
		}
		for k := i + 4; carry != 0 && k < 9; k++ {
			t[k], carry = bits.Add64(t[k], carry, 0)
		}
	}

	// Result is t[4..8] < 2p; subtract p once if needed.
	r0, b := bits.Sub64(t[4], feP[0], 0)
	r1, b := bits.Sub64(t[5], feP[1], b)
	r2, b := bits.Sub64(t[6], feP[2], b)
	r3, b := bits.Sub64(t[7], feP[3], b)
	_, b = bits.Sub64(t[8], 0, b)
	if b == 0 {
		z[0], z[1], z[2], z[3] = r0, r1, r2, r3
	} else {
		z[0], z[1], z[2], z[3] = t[4], t[5], t[6], t[7]
	}
}

// feAdd sets z = x + y mod p.
func feAdd(z, x, y *fe) {
	s0, c := bits.Add64(x[0], y[0], 0)
	s1, c := bits.Add64(x[1], y[1], c)
	s2, c := bits.Add64(x[2], y[2], c)
	s3, c := bits.Add64(x[3], y[3], c)
	r0, b := bits.Sub64(s0, feP[0], 0)
	r1, b := bits.Sub64(s1, feP[1], b)
	r2, b := bits.Sub64(s2, feP[2], b)
	r3, b := bits.Sub64(s3, feP[3], b)
	if c == 1 || b == 0 {
		z[0], z[1], z[2], z[3] = r0, r1, r2, r3
	} else {
		z[0], z[1], z[2], z[3] = s0, s1, s2, s3
	}
}

// feSub sets z = x − y mod p.
func feSub(z, x, y *fe) {
	d0, b := bits.Sub64(x[0], y[0], 0)
	d1, b := bits.Sub64(x[1], y[1], b)
	d2, b := bits.Sub64(x[2], y[2], b)
	d3, b := bits.Sub64(x[3], y[3], b)
	if b == 1 {
		var c uint64
		d0, c = bits.Add64(d0, feP[0], 0)
		d1, c = bits.Add64(d1, feP[1], c)
		d2, c = bits.Add64(d2, feP[2], c)
		d3, _ = bits.Add64(d3, feP[3], c)
	}
	z[0], z[1], z[2], z[3] = d0, d1, d2, d3
}

// feDouble sets z = 2x mod p.
func feDouble(z, x *fe) { feAdd(z, x, x) }

// feNeg sets z = −x mod p. feSub via zero takes the borrow path for
// any non-zero x and lands on p−x.
func feNeg(z, x *fe) {
	if x.isZero() {
		*z = fe{}
		return
	}
	var zero fe
	feSub(z, &zero, x)
}

package group

// MultiScalarMult computes Π pointsᵢ^scalarsᵢ (multiplicative
// notation) far faster than the naive product of Mul calls. It powers
// batch verification of the submission knowledge proofs: one product
// over all (commitment, key) pairs of a batch replaces two full
// scalar multiplications per proof.
//
// Strategy: scalars are recoded into signed base-2^w digits, then
//
//   - small batches use Straus interleaving (per-point multiple
//     tables, one shared doubling chain), and
//   - large batches use Pippenger buckets (per-window shared buckets,
//     so the per-point cost approaches one addition per window).
//
// Both run on the Jacobian/fe arithmetic of jacobian.go; the naive
// product pays crypto/elliptic's hidden field inversion on every
// addition, which is exactly what this avoids. Identity points and
// zero scalars contribute nothing and are filtered out first.

import "math/bits"

// strausCutoff is the batch size where Pippenger's shared buckets
// overtake Straus's per-point tables.
const strausCutoff = 32

// MultiScalarMult returns the product of points[i]^scalars[i]. The
// slices must have equal length; an empty product is the identity.
func MultiScalarMult(points []Point, scalars []Scalar) Point {
	if len(points) != len(scalars) {
		panic("group: MultiScalarMult length mismatch")
	}
	kept := make([]int, 0, len(points))
	for i := range points {
		if points[i].IsIdentity() || scalars[i].IsZero() {
			continue
		}
		kept = append(kept, i)
	}
	n := len(kept)
	switch {
	case n == 0:
		return Point{}
	case n <= 3:
		// Table setup cannot pay for itself; the plain product over
		// the surviving entries is cheapest.
		acc := Point{}
		for _, i := range kept {
			acc = acc.Add(points[i].Mul(scalars[i]))
		}
		return acc
	}
	aff := make([]affinePoint, n)
	limbs := make([][4]uint64, n)
	maxBits := 0
	for j, i := range kept {
		aff[j] = newAffinePoint(points[i])
		limbs[j] = scalarLimbs(scalars[i])
		if b := limbsBitLen(&limbs[j]); b > maxBits {
			maxBits = b
		}
	}
	var acc jacPoint
	if n < strausCutoff {
		strausMSM(&acc, aff, limbs, maxBits)
	} else {
		pippengerMSM(&acc, aff, limbs, maxBits)
	}
	return acc.toPoint()
}

// scalarLimbs returns the scalar as four little-endian uint64 limbs.
func scalarLimbs(s Scalar) [4]uint64 {
	b := s.Bytes() // 32 bytes, big-endian
	var l [4]uint64
	for i := 0; i < 4; i++ {
		hi := 32 - 8*i
		for k := 0; k < 8; k++ {
			l[i] |= uint64(b[hi-1-k]) << (8 * k)
		}
	}
	return l
}

func limbsBitLen(l *[4]uint64) int {
	for i := 3; i >= 0; i-- {
		if l[i] != 0 {
			return 64*i + bits.Len64(l[i])
		}
	}
	return 0
}

// signedDigits recodes a scalar into nw signed digits of w bits:
// value = Σ dⱼ·2^(w·j) with dⱼ ∈ [−2^(w−1), 2^(w−1)]. Signed digits
// halve the table (Straus) or bucket (Pippenger) count because −d·P
// is a free y-negation.
func signedDigits(l *[4]uint64, w, nw int, out []int16) {
	mask := uint64(1)<<w - 1
	half := int64(1) << (w - 1)
	carry := int64(0)
	for j := 0; j < nw; j++ {
		bit := j * w
		word, off := bit>>6, uint(bit&63)
		var raw uint64
		if word < 4 {
			raw = l[word] >> off
			if off+uint(w) > 64 && word+1 < 4 {
				raw |= l[word+1] << (64 - off)
			}
		}
		d := int64(raw&mask) + carry
		if d > half {
			d -= int64(1) << w
			carry = 1
		} else {
			carry = 0
		}
		out[j] = int16(d)
	}
}

// digitWindows returns how many w-bit windows cover maxBits plus the
// possible signed-recoding carry.
func digitWindows(maxBits, w int) int {
	return (maxBits+1+w-1)/w + 1
}

// strausMSM interleaves per-point windowed tables over one shared
// doubling chain (Straus's trick): nw·w doublings total, one table
// lookup-and-add per point per window. The multiple tables are built
// in Jacobian form and normalized to affine with one batched
// inversion (batchNormalize), so every window lookup is a 7M+4S mixed
// addition instead of a full 11M+5S Jacobian addition, with stored
// y-negations for the signed digits.
func strausMSM(acc *jacPoint, aff []affinePoint, limbs [][4]uint64, maxBits int) {
	const w = 4
	const tableSize = 1 << (w - 1) // multiples 1..8
	nw := digitWindows(maxBits, w)
	n := len(aff)

	jtab := make([]jacPoint, n*tableSize)
	for i := range aff {
		t := jtab[i*tableSize : (i+1)*tableSize]
		t[0].fromAffine(&aff[i], false)
		for k := 1; k < tableSize; k++ {
			t[k] = t[k-1]
			t[k].addAffine(&aff[i], false)
		}
	}
	// Small multiples of non-identity points in a prime-order group
	// are never the identity, so the fe-domain normalization applies.
	tables := make([]affinePoint, n*tableSize)
	batchNormalize(jtab, tables)
	digits := make([]int16, n*nw)
	for i := range limbs {
		signedDigits(&limbs[i], w, nw, digits[i*nw:(i+1)*nw])
	}

	acc.setIdentity()
	for j := nw - 1; j >= 0; j-- {
		if !acc.isIdentity() {
			for k := 0; k < w; k++ {
				acc.double()
			}
		}
		for i := 0; i < n; i++ {
			d := digits[i*nw+j]
			switch {
			case d > 0:
				acc.addAffine(&tables[i*tableSize+int(d)-1], false)
			case d < 0:
				acc.addAffine(&tables[i*tableSize-int(d)-1], true)
			}
		}
	}
}

// pippengerWindow picks the bucket window width for a batch size: the
// per-window cost is n point additions plus 2^w bucket-aggregation
// additions, so w grows with log n.
func pippengerWindow(n int) int {
	switch {
	case n < 128:
		return 6
	case n < 512:
		return 7
	case n < 2048:
		return 8
	case n < 8192:
		return 9
	default:
		return 10
	}
}

// pippengerMSM is the bucket method: per window, every point lands in
// the bucket of its digit (one mixed addition), and the buckets are
// folded with a running suffix sum so bucket k is implicitly counted
// k times.
func pippengerMSM(acc *jacPoint, aff []affinePoint, limbs [][4]uint64, maxBits int) {
	w := pippengerWindow(len(aff))
	nw := digitWindows(maxBits, w)
	n := len(aff)
	nBuckets := 1 << (w - 1)

	digits := make([]int16, n*nw)
	for i := range limbs {
		signedDigits(&limbs[i], w, nw, digits[i*nw:(i+1)*nw])
	}

	buckets := make([]jacPoint, nBuckets)
	acc.setIdentity()
	for j := nw - 1; j >= 0; j-- {
		if !acc.isIdentity() {
			for k := 0; k < w; k++ {
				acc.double()
			}
		}
		for k := range buckets {
			buckets[k].setIdentity()
		}
		for i := 0; i < n; i++ {
			d := digits[i*nw+j]
			switch {
			case d > 0:
				buckets[d-1].addAffine(&aff[i], false)
			case d < 0:
				buckets[-d-1].addAffine(&aff[i], true)
			}
		}
		// Σ (k+1)·bucket[k] via suffix sums: running accumulates the
		// buckets top-down, sum accumulates running.
		var running, sum jacPoint
		for k := nBuckets - 1; k >= 0; k-- {
			running.add(&buckets[k])
			sum.add(&running)
		}
		acc.add(&sum)
	}
}

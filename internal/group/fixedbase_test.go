package group

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// edgeScalars are the fixed-base edge cases every parity test and
// fuzz corpus includes: zero, one, two, order−1 (≡ −1, exercising
// negative digits everywhere), and values straddling window
// boundaries.
func edgeScalars() []Scalar {
	ords := Order()
	return []Scalar{
		{}, // zero
		NewScalar(1),
		NewScalar(2),
		NewScalar(4096), // exactly the largest window digit
		NewScalar(4097), // forces a signed-recoding carry
		ScalarFromBig(new(big.Int).Sub(ords, big.NewInt(1))), // order−1
		ScalarFromBig(new(big.Int).Lsh(big.NewInt(1), 255)),
		ScalarFromBig(new(big.Int).Sub(ords, big.NewInt(4096))),
	}
}

// TestFixedBaseMatchesCurve pins the precomputed fixed-base path
// against crypto/elliptic's ScalarBaseMult over random scalars and
// the edge cases.
func TestFixedBaseMatchesCurve(t *testing.T) {
	check := func(s Scalar) {
		t.Helper()
		got := Base(s)
		if s.IsZero() {
			if !got.IsIdentity() {
				t.Fatalf("Base(0) = %v, want identity", got)
			}
			return
		}
		wx, wy := curve.ScalarBaseMult(s.Bytes())
		if got.IsIdentity() || got.x.Cmp(wx) != 0 || got.y.Cmp(wy) != 0 {
			t.Fatalf("Base(%v) disagrees with curve.ScalarBaseMult", s)
		}
	}
	for _, s := range edgeScalars() {
		check(s)
	}
	for i := 0; i < 200; i++ {
		s, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		check(s)
	}
}

// TestBatchBaseMatchesBase covers both BatchBase strategies (Jacobian
// accumulation below fbBatchMin, the all-affine window sweep above)
// against single-scalar Base, with zero scalars mid-batch.
func TestBatchBaseMatchesBase(t *testing.T) {
	for _, n := range []int{1, 2, fbBatchMin - 1, fbBatchMin, 64} {
		scalars := make([]Scalar, n)
		for i := range scalars {
			s, err := RandomScalar(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			scalars[i] = s
		}
		if n >= fbBatchMin {
			// Cover the edge cases (including zero) on the affine sweep.
			copy(scalars, edgeScalars())
		}
		if n > 2 {
			scalars[n/2] = Scalar{} // zero mid-batch
		}
		got := BatchBase(scalars)
		if len(got) != n {
			t.Fatalf("n=%d: BatchBase returned %d points", n, len(got))
		}
		for i, s := range scalars {
			if want := Base(s); !got[i].Equal(want) {
				t.Fatalf("n=%d: BatchBase[%d] = %v, want %v", n, i, got[i], want)
			}
		}
	}
}

// TestBatchToAffineMatchesToPoint compares the batched conversion
// against per-point toPoint over points with non-trivial Z, including
// identity points mid-batch.
func TestBatchToAffineMatchesToPoint(t *testing.T) {
	g := newAffinePoint(Generator())
	js := make([]jacPoint, 33)
	for i := range js {
		switch i % 5 {
		case 0: // identity mid-batch
		default:
			js[i].fromAffine(&g, i%2 == 0)
			for k := 0; k < i; k++ {
				js[i].double() // Z ≠ 1
			}
			if i%3 == 0 {
				js[i].addAffine(&g, false)
			}
		}
	}
	got := BatchToAffine(js)
	for i := range js {
		want := js[i].toPoint()
		if !got[i].Equal(want) {
			t.Fatalf("BatchToAffine[%d] = %v, want %v", i, got[i], want)
		}
	}
	if len(BatchToAffine(nil)) != 0 {
		t.Fatal("BatchToAffine(nil) should be empty")
	}
	all := BatchToAffine(make([]jacPoint, 4)) // all identities
	for i, p := range all {
		if !p.IsIdentity() {
			t.Fatalf("all-identity batch: [%d] = %v", i, p)
		}
	}
}

// TestBatchBaseAffineExceptionalPaths drives the tangent (doubling)
// and chord-cancellation (P + (−P)) branches of the affine window
// sweep. Canonical scalar recodings can never reach them — a window
// entry k·2^(13j)·g only collides with a partial sum via wraparound
// mod the group order — so the test builds synthetic digit vectors:
// it finds a high-window entry whose residue e = k·2^260 mod order
// recodes into the low windows, encodes e there, and then adds the
// window-20 entry itself, forcing acc == entry.
func TestBatchBaseAffineExceptionalPaths(t *testing.T) {
	ords := Order()
	shift := new(big.Int).Lsh(big.NewInt(1), 13*20) // window-20 base 2^260
	var kHit int
	var digits []int16
	for k := 1; k <= 100; k++ {
		e := new(big.Int).Mul(big.NewInt(int64(k)), shift)
		e.Mod(e, ords)
		l := scalarLimbs(ScalarFromBig(e))
		d := make([]int16, fbWindows)
		signedDigits(&l, fbWindow, fbWindows, d)
		if d[20] == 0 { // e fits in windows 0..19: window 20 is free
			kHit, digits = k, d
			break
		}
	}
	if digits == nil {
		t.Fatal("no window-20 residue recodes into 20 windows")
	}
	e := new(big.Int).Mul(big.NewInt(int64(kHit)), shift)
	e.Mod(e, ords)

	// Lane 0 (tangent): digits of e plus the window-20 entry k —
	// the accumulator equals the entry, so the sweep must double.
	tangent := append([]int16(nil), digits...)
	tangent[20] = int16(kHit)
	// Lane 1 (cancel): digits of −e plus the same entry — the sum is
	// the identity.
	cancel := make([]int16, fbWindows)
	for i, d := range digits {
		cancel[i] = -d
	}
	cancel[20] = int16(kHit)

	fbInit()
	all := append(append([]int16(nil), tangent...), cancel...)
	got := batchBaseAffine(all, 2)

	twoE := new(big.Int).Lsh(e, 1)
	twoE.Mod(twoE, ords)
	if want := Base(ScalarFromBig(twoE)); !got[0].Equal(want) {
		t.Fatalf("tangent lane = %v, want g^2e = %v", got[0], want)
	}
	if !got[1].IsIdentity() {
		t.Fatalf("cancel lane = %v, want identity", got[1])
	}
}

// TestProductMatchesAdd pins the Jacobian-accumulated Product against
// the pairwise Add chain, including identities and cancelling pairs.
func TestProductMatchesAdd(t *testing.T) {
	var pts []Point
	for i := 0; i < 9; i++ {
		s, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, Base(s))
	}
	pts = append(pts, Point{}, pts[0].Neg(), pts[1], Point{})
	want := Point{}
	for _, p := range pts {
		want = want.Add(p)
	}
	if got := Product(pts); !got.Equal(want) {
		t.Fatalf("Product = %v, want %v", got, want)
	}
	if !Product(nil).IsIdentity() {
		t.Fatal("empty Product should be identity")
	}
	if !Product([]Point{pts[0], pts[0].Neg()}).IsIdentity() {
		t.Fatal("cancelling Product should be identity")
	}
}

// TestMulGeneratorFastPath checks the generator special case of Mul
// against the generic path.
func TestMulGeneratorFastPath(t *testing.T) {
	g := Generator()
	for i := 0; i < 20; i++ {
		s, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		wx, wy := curve.ScalarMult(curve.Params().Gx, curve.Params().Gy, s.Bytes())
		got := g.Mul(s)
		if got.x.Cmp(wx) != 0 || got.y.Cmp(wy) != 0 {
			t.Fatalf("g.Mul(%v) disagrees with curve.ScalarMult", s)
		}
	}
}

// FuzzScalarBaseMult cross-checks Base and both BatchBase strategies
// against crypto/elliptic for arbitrary 32-byte scalar material.
func FuzzScalarBaseMult(f *testing.F) {
	f.Add(make([]byte, 32)) // zero scalar → identity
	one := make([]byte, 32)
	one[31] = 1
	f.Add(one)
	f.Add(Order().Bytes()) // ≡ 0 after reduction
	om1 := new(big.Int).Sub(Order(), big.NewInt(1))
	f.Add(om1.FillBytes(make([]byte, 32))) // order−1
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 32 {
			data = data[:32]
		}
		s := ScalarFromBig(new(big.Int).SetBytes(data))
		got := Base(s)
		if s.IsZero() {
			if !got.IsIdentity() {
				t.Fatal("Base of zero scalar is not identity")
			}
		} else {
			wx, wy := curve.ScalarBaseMult(s.Bytes())
			if got.IsIdentity() || got.x.Cmp(wx) != 0 || got.y.Cmp(wy) != 0 {
				t.Fatal("Base disagrees with curve.ScalarBaseMult")
			}
		}
		// Both batch strategies must agree: n=2 runs Jacobian
		// accumulation, n=fbBatchMin runs the affine sweep.
		small := BatchBase([]Scalar{s, s})
		batch := make([]Scalar, fbBatchMin)
		for i := range batch {
			batch[i] = s
		}
		large := BatchBase(batch)
		if !small[0].Equal(got) || !small[1].Equal(got) || !large[0].Equal(got) || !large[fbBatchMin-1].Equal(got) {
			t.Fatal("BatchBase disagrees with Base")
		}
	})
}

// FuzzBatchToAffine builds Jacobian points (with identities and
// non-trivial Z) from fuzz input and cross-checks the batched
// conversion against per-point toPoint.
func FuzzBatchToAffine(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2, 3, 4, 0, 255})
	om1 := new(big.Int).Sub(Order(), big.NewInt(1))
	f.Add(append([]byte{7}, om1.Bytes()[:4]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		g := newAffinePoint(Generator())
		js := make([]jacPoint, len(data))
		for i, b := range data {
			if b%7 == 0 {
				continue // identity
			}
			js[i].fromAffine(&g, b%2 == 0)
			for k := 0; k < int(b%5); k++ {
				js[i].double()
			}
			if b%3 == 0 {
				js[i].addAffine(&g, false)
			}
		}
		got := BatchToAffine(js)
		for i := range js {
			if want := js[i].toPoint(); !got[i].Equal(want) {
				t.Fatalf("BatchToAffine[%d] disagrees with toPoint", i)
			}
		}
	})
}

// BenchmarkFixedBase is the before/after record for the tentpole:
// stdlib is the crypto/elliptic path Base used to take, precomp the
// table-driven single-scalar path, batch1024 the amortized batch path
// (ns/op is per point: each iteration accounts for one point of a
// 1024-point batch).
func BenchmarkFixedBase(b *testing.B) {
	s, err := RandomScalar(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("stdlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			curve.ScalarBaseMult(s.Bytes())
		}
	})
	b.Run("precomp", func(b *testing.B) {
		fbInit()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Base(s)
		}
	})
	b.Run("batch1024", func(b *testing.B) {
		const n = 1024
		scalars := make([]Scalar, n)
		for i := range scalars {
			scalars[i] = MustRandomScalar()
		}
		fbInit()
		b.ResetTimer()
		for i := 0; i < b.N; i += n {
			BatchBase(scalars)
		}
	})
}

// BenchmarkBatchToAffine is the before/after record for batch
// normalization at n=1024: perpoint pays one inversion per point,
// batch one inversion for all (ns/op is per point in both).
func BenchmarkBatchToAffine(b *testing.B) {
	const n = 1024
	g := newAffinePoint(Generator())
	js := make([]jacPoint, n)
	js[0].fromAffine(&g, false)
	js[0].double()
	for i := 1; i < n; i++ {
		js[i] = js[i-1]
		js[i].addAffine(&g, false)
	}
	b.Run("perpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			js[i%n].toPoint()
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i += n {
			BatchToAffine(js)
		}
	})
}

package repro

// One benchmark per table/figure of the paper's evaluation (§8), plus
// the ablation benches DESIGN.md calls out. Large-scale latency
// points come from the calibrated analytic models (internal/model);
// per-message crypto costs, wire sizes, blame runs and small
// end-to-end rounds are measured on this repository's real code. Each
// bench reports its figure's series through b.ReportMetric so
// `go test -bench` output doubles as the figure data.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/aead"
	"repro/internal/chainsel"
	"repro/internal/churn"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/model"
	"repro/internal/nizk"
	"repro/internal/onion"
	"repro/internal/topology"
)

// BenchmarkFig2UserBandwidth regenerates Figure 2: bytes each user
// uploads per round versus the number of servers, for XRD (from this
// repo's real wire sizes), Pung XPIR/SealPIR and Stadium (published
// models).
func BenchmarkFig2UserBandwidth(b *testing.B) {
	cal := model.PaperCalibration()
	for _, n := range []int{100, 500, 1000, 1500, 2000} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			var bw int
			for i := 0; i < b.N; i++ {
				bw = cal.XRDUserBandwidth(n)
			}
			b.ReportMetric(float64(bw), "xrd-B")
			b.ReportMetric(float64(model.PungXPIRBandwidth(1_000_000)), "pung-xpir-1M-B")
			b.ReportMetric(float64(model.PungXPIRBandwidth(4_000_000)), "pung-xpir-4M-B")
			b.ReportMetric(float64(model.PungSealPIRBandwidth()), "pung-sealpir-B")
			b.ReportMetric(float64(model.StadiumBandwidth()), "stadium-B")
		})
	}
}

// BenchmarkFig3UserCompute regenerates Figure 3: single-core client
// computation per round versus servers. The XRD series is measured:
// the bench actually builds a full round of AHS submissions.
func BenchmarkFig3UserCompute(b *testing.B) {
	for _, n := range []int{36, 105} { // real builds at laptop scale
		b.Run(fmt.Sprintf("real/servers=%d", n), func(b *testing.B) {
			net, err := core.NewNetwork(core.Config{
				NumServers:          n,
				ChainLengthOverride: 32,
				Seed:                []byte("fig3"),
			})
			if err != nil {
				b.Fatal(err)
			}
			u := net.NewUser()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := u.BuildRound(net.Round(), net); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	cal := model.PaperCalibration()
	for _, n := range []int{100, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("model/servers=%d", n), func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				s = cal.XRDUserCompute(n)
			}
			b.ReportMetric(s, "xrd-s")
			b.ReportMetric(model.PungUserCompute(1_000_000), "pung-1M-s")
			b.ReportMetric(model.StadiumUserCompute(), "stadium-s")
		})
	}
}

// BenchmarkFig4LatencyVsUsers regenerates Figure 4: end-to-end
// latency with 100 servers as users grow, for all four systems.
func BenchmarkFig4LatencyVsUsers(b *testing.B) {
	cal := model.PaperCalibration()
	for _, m := range []int{1_000_000, 2_000_000, 4_000_000, 8_000_000} {
		b.Run(fmt.Sprintf("users=%dM", m/1_000_000), func(b *testing.B) {
			var x float64
			for i := 0; i < b.N; i++ {
				x = cal.XRDLatency(m, 100)
			}
			b.ReportMetric(x, "xrd-s")
			b.ReportMetric(cal.AtomLatency(m, 100), "atom-s")
			b.ReportMetric(cal.PungLatency(m, 100), "pung-s")
			b.ReportMetric(cal.StadiumLatency(m, 100), "stadium-s")
		})
	}
}

// BenchmarkFig5LatencyVsServers regenerates Figure 5: latency for 2M
// users as servers grow; XRD falls as √2/√N, others as 1/N.
func BenchmarkFig5LatencyVsServers(b *testing.B) {
	cal := model.PaperCalibration()
	for _, n := range []int{50, 100, 150, 200, 1000, 3000} {
		b.Run(fmt.Sprintf("servers=%d", n), func(b *testing.B) {
			var x float64
			for i := 0; i < b.N; i++ {
				x = cal.XRDLatency(2_000_000, n)
			}
			b.ReportMetric(x, "xrd-s")
			b.ReportMetric(cal.AtomLatency(2_000_000, n), "atom-s")
			b.ReportMetric(cal.PungLatency(2_000_000, n), "pung-s")
			b.ReportMetric(cal.StadiumLatency(2_000_000, n), "stadium-s")
		})
	}
}

// BenchmarkFig6ImpactOfF regenerates Figure 6: latency versus the
// assumed malicious fraction, driven by k(f) ∝ −1/log f.
func BenchmarkFig6ImpactOfF(b *testing.B) {
	cal := model.PaperCalibration()
	for _, f := range []float64{0.1, 0.2, 0.3, 0.4, 0.45} {
		b.Run(fmt.Sprintf("f=%.2f", f), func(b *testing.B) {
			var x float64
			for i := 0; i < b.N; i++ {
				x = cal.XRDLatencyWithF(2_000_000, 100, f)
			}
			b.ReportMetric(x, "xrd-s")
			b.ReportMetric(float64(topology.ChainLength(f, 100, 64)), "k")
		})
	}
}

// BenchmarkFig7BlameLatency regenerates Figure 7 at laptop scale: a
// real chain runs the real blame protocol against real malicious
// submissions, and the per-user cost scales the model to the paper's
// axis.
func BenchmarkFig7BlameLatency(b *testing.B) {
	scheme := aead.ChaCha20Poly1305()
	for _, bad := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("real/malicious=%d", bad), func(b *testing.B) {
			chain, err := mix.NewChain(0, 8, scheme)
			if err != nil {
				b.Fatal(err)
			}
			if err := chain.BeginRound(1); err != nil {
				b.Fatal(err)
			}
			params := chain.Params()
			subs := makeHonestSubs(b, chain, 16)
			for i := 0; i < bad; i++ {
				m, err := mix.MaliciousSubmission(scheme, params, 1, 0, 7)
				if err != nil {
					b.Fatal(err)
				}
				subs = append(subs, m)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := chain.RunRound(1, 0, subs)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.BlamedUsers) != bad {
					b.Fatalf("blamed %d, want %d", len(res.BlamedUsers), bad)
				}
			}
		})
	}
	cal := model.PaperCalibration()
	for _, u := range []int{5_000, 20_000, 50_000, 80_000, 100_000} {
		b.Run(fmt.Sprintf("model/malicious=%d", u), func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				s = cal.BlameLatency(u, 100)
			}
			b.ReportMetric(s, "blame-s")
		})
	}
}

// BenchmarkFig8ChurnFailure regenerates Figure 8: conversation
// failure fraction under server churn, by Monte-Carlo simulation over
// the real topology and chain-selection plan.
func BenchmarkFig8ChurnFailure(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		for _, rate := range []float64{0.01, 0.02, 0.04} {
			b.Run(fmt.Sprintf("servers=%d/churn=%.2f", n, rate), func(b *testing.B) {
				var fail float64
				for i := 0; i < b.N; i++ {
					res, err := churn.Simulate(churn.Config{
						NumServers: n,
						F:          0.2,
						ChurnRate:  rate,
						Pairs:      2000,
						Trials:     10,
						Seed:       int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					fail = res.FailureRate
				}
				b.ReportMetric(fail, "failure-rate")
			})
		}
	}
}

// BenchmarkHeadlineEndToEnd measures a real, complete XRD round at
// laptop scale (the §8.2 experiment shrunk to one machine): 60 users
// on 12 chains of 8 servers, conversations on, covers on, AHS on.
func BenchmarkHeadlineEndToEnd(b *testing.B) {
	net, err := core.NewNetwork(core.Config{
		NumServers:          12,
		ChainLengthOverride: 8,
		Seed:                []byte("headline"),
	})
	if err != nil {
		b.Fatal(err)
	}
	users := make([]*client.User, 60)
	for i := range users {
		users[i] = net.NewUser()
	}
	for i := 0; i+1 < len(users); i += 2 {
		users[i].StartConversation(users[i+1].PublicKey())
		users[i+1].StartConversation(users[i].PublicKey())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := net.RunRound()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.HaltedChains) != 0 {
			b.Fatal("halted")
		}
	}
}

// BenchmarkRoundPipeline measures the parallel round pipeline:
// end-to-end rounds (build fan-out over registry shards, concurrent
// chain mixing, concurrent mailbox delivery) swept over user counts
// and build-worker counts. Per-round user throughput is reported as
// users/s; comparing workers=1 against workers=GOMAXPROCS shows the
// pipeline's scaling on the host (near-linear until the chain-mix
// stage saturates). EXPERIMENTS.md records trajectories.
func BenchmarkRoundPipeline(b *testing.B) {
	maxWorkers := runtime.GOMAXPROCS(0)
	workerCounts := []int{1}
	for w := 2; w <= maxWorkers; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	if last := workerCounts[len(workerCounts)-1]; last != maxWorkers {
		workerCounts = append(workerCounts, maxWorkers)
	}
	for _, users := range []int{100, 1_000, 10_000} {
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("users=%d/workers=%d", users, workers), func(b *testing.B) {
				net, err := core.NewNetwork(core.Config{
					NumServers:          6,
					ChainLengthOverride: 2,
					Seed:                []byte("pipeline"),
					MailboxServers:      4,
					Workers:             workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				population := make([]*client.User, users)
				for i := range population {
					population[i] = net.NewUser()
				}
				// A tenth of the population converses so the batches
				// carry a realistic mix of loopbacks and messages.
				for i := 0; i+1 < len(population)/10; i += 2 {
					a, p := population[i], population[i+1]
					if err := a.StartConversation(p.PublicKey()); err != nil {
						b.Fatal(err)
					}
					if err := p.StartConversation(a.PublicKey()); err != nil {
						b.Fatal(err)
					}
				}
				l := net.Plan().L
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := net.RunRound()
					if err != nil {
						b.Fatal(err)
					}
					if len(rep.HaltedChains) != 0 {
						b.Fatal("halted")
					}
					if rep.Delivered != users*l {
						b.Fatalf("delivered %d, want %d", rep.Delivered, users*l)
					}
					net.PruneBefore(rep.Round)
				}
				b.StopTimer()
				b.ReportMetric(float64(users)*float64(b.N)/b.Elapsed().Seconds(), "users/s")
			})
		}
	}
}

// BenchmarkAblationAHSVsBaseline quantifies what active-attack
// protection costs (§6's motivation): the same batch through the same
// chain with AHS verification versus plain Algorithm 1.
func BenchmarkAblationAHSVsBaseline(b *testing.B) {
	scheme := aead.ChaCha20Poly1305()
	const k, msgs = 8, 64
	chain, err := mix.NewChain(0, k, scheme)
	if err != nil {
		b.Fatal(err)
	}
	if err := chain.BeginRound(1); err != nil {
		b.Fatal(err)
	}
	b.Run("ahs", func(b *testing.B) {
		subs := makeHonestSubs(b, chain, msgs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := chain.RunRound(1, 0, subs)
			if err != nil || len(res.Delivered) != msgs {
				b.Fatalf("err=%v delivered=%d", err, len(res.Delivered))
			}
		}
	})
	b.Run("baseline", func(b *testing.B) {
		nonce := aead.RoundNonce(1, 0)
		params := chain.Params()
		cts := make([][]byte, msgs)
		for i := range cts {
			msg := makeMailboxMsg(b, scheme, nonce, byte(i))
			ct, err := onion.WrapBaseline(scheme, params.BaselineKeys, nonce, msg)
			if err != nil {
				b.Fatal(err)
			}
			cts[i] = ct
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := chain.RunRoundBaseline(1, 0, cts)
			if err != nil || len(out) != msgs {
				b.Fatalf("err=%v delivered=%d", err, len(out))
			}
		}
	})
}

// BenchmarkAblationVerifiableShuffle compares AHS's per-message
// server cost (1 DH + 1 blinding exponentiation) against the ≥8
// exponentiations per message of a Neff-style verifiable shuffle —
// the paper's core efficiency claim against [39,24,8,26].
func BenchmarkAblationVerifiableShuffle(b *testing.B) {
	p := group.Base(group.MustRandomScalar())
	s := group.MustRandomScalar()
	b.Run("ahs-2-exp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Mul(s)
			p.Mul(s)
		}
	})
	b.Run("verifiable-shuffle-8-exp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for e := 0; e < 8; e++ {
				p.Mul(s)
			}
		}
	})
}

// BenchmarkAblationStaggering measures §5.2.1's utilisation
// optimisation: position spread with and without staggering.
func BenchmarkAblationStaggering(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "staggered"
		if disabled {
			name = "aligned"
		}
		b.Run(name, func(b *testing.B) {
			var spread float64
			for i := 0; i < b.N; i++ {
				topo, err := topology.Build(topology.Config{
					NumServers:        64,
					F:                 0.2,
					Seed:              []byte("ablation"),
					DisableStaggering: disabled,
				})
				if err != nil {
					b.Fatal(err)
				}
				sum := 0.0
				for s := 0; s < 64; s++ {
					sum += topo.PositionSpread(s)
				}
				spread = sum / 64
			}
			b.ReportMetric(spread, "position-spread")
		})
	}
}

// BenchmarkAblationCoverMessages quantifies §5.3.3: cover traffic
// doubles the client's build cost ("the cover messages make up half
// of the client overhead", §8.1).
func BenchmarkAblationCoverMessages(b *testing.B) {
	net, err := core.NewNetwork(core.Config{
		NumServers:          36,
		ChainLengthOverride: 8,
		Seed:                []byte("covers"),
	})
	if err != nil {
		b.Fatal(err)
	}
	u := net.NewUser()
	b.Run("with-covers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := u.BuildRound(net.Round(), net); err != nil {
				b.Fatal(err)
			}
		}
	})
	cal := model.PaperCalibration()
	b.Run("bandwidth-ratio", func(b *testing.B) {
		var with int
		for i := 0; i < b.N; i++ {
			with = cal.XRDUserBandwidth(100)
		}
		b.ReportMetric(float64(with), "with-covers-B")
		b.ReportMetric(float64(with)/2, "without-covers-B")
	})
}

// BenchmarkAblationAEAD compares the from-scratch ChaCha20-Poly1305
// against stdlib AES-GCM on the system's message size.
func BenchmarkAblationAEAD(b *testing.B) {
	for _, s := range []aead.Scheme{aead.ChaCha20Poly1305(), aead.AESGCM()} {
		b.Run(s.Name(), func(b *testing.B) {
			var key [aead.KeySize]byte
			nonce := aead.RoundNonce(1, 0)
			msg := make([]byte, onion.PlaintextSize)
			buf := make([]byte, 0, len(msg)+aead.Overhead)
			b.SetBytes(int64(len(msg)))
			for i := 0; i < b.N; i++ {
				buf = s.Seal(buf[:0], &key, &nonce, msg)
			}
		})
	}
}

// BenchmarkChainSelection measures the publicly computable plan
// construction users run at join time (§5.3.1).
func BenchmarkChainSelection(b *testing.B) {
	for _, n := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("chains=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chainsel.NewPlan(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- helpers ---

func makeMailboxMsg(b *testing.B, scheme aead.Scheme, nonce [aead.NonceSize]byte, tag byte) []byte {
	b.Helper()
	recipient := group.Base(group.NewScalar(int64(tag) + 1))
	var key [32]byte
	key[0] = tag
	var kk [aead.KeySize]byte
	copy(kk[:], key[:])
	pt, err := (onion.Payload{Kind: onion.KindLoopback}).Marshal()
	if err != nil {
		b.Fatal(err)
	}
	return append(recipient.Bytes(), scheme.Seal(nil, &kk, &nonce, pt)...)
}

func makeHonestSubs(b *testing.B, chain *mix.Chain, n int) []onion.Submission {
	b.Helper()
	scheme := aead.ChaCha20Poly1305()
	params := chain.Params()
	nonce := aead.RoundNonce(params.Round, 0)
	subs := make([]onion.Submission, n)
	for i := range subs {
		msg := makeMailboxMsg(b, scheme, nonce, byte(i))
		sub, err := onion.WrapAHS(scheme, params.InnerAggregate, params.MixKeys, params.Round, params.ChainID, nonce, msg)
		if err != nil {
			b.Fatal(err)
		}
		subs[i] = sub
	}
	return subs
}

// BenchmarkSubmissionVerify measures the tentpole of the batched
// verification work: the per-round submission proof check, serial
// (one VerifyDlogCommit per proof, as the seed did) versus batched
// (mix.VerifySubmissionProofs: one multi-scalar multiplication per
// chunk, fanned over the worker pool). The us/proof metrics are the
// comparable series; batch must stay well above 2x at 4096.
func BenchmarkSubmissionVerify(b *testing.B) {
	const round, chain = 1, 0
	makeProofSubs := func(n int) []onion.Submission {
		ctx := onion.SubmitContext(round, chain)
		subs := make([]onion.Submission, n)
		for i := range subs {
			x := group.MustRandomScalar()
			subs[i] = onion.Submission{
				Envelope: onion.Envelope{DHKey: group.Base(x)},
				Proof:    nizk.ProveDlogCommit(ctx, group.Generator(), x),
			}
		}
		return subs
	}
	for _, n := range []int{256, 1024, 4096} {
		subs := makeProofSubs(n)
		b.Run(fmt.Sprintf("serial/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := range subs {
					if err := onion.VerifySubmission(subs[j], round, chain); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/float64(n), "us/proof")
		})
		b.Run(fmt.Sprintf("batch/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if bad := mix.VerifySubmissionProofs(subs, round, chain); len(bad) != 0 {
					b.Fatalf("valid batch blamed %v", bad)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N)/float64(n), "us/proof")
		})
	}
}

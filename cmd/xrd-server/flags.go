package main

// Shared flag-parsing and wiring helpers used by every role. All
// remote-process flags use the same "key=addr=certfile" shape:
//
//	-hops         chain:pos=addr=certfile,...   (coordinator → mix, coordinate-keyed)
//	-mix-servers  id=addr=certfile,...          (coordinator → mix, identity-keyed)
//	-gateways     lo:hi=addr=certfile,...       (coordinator → gateway shard)
//
// and every certfile is the pinned TLS certificate the target process
// wrote with its own -cert-out (the paper's assumed PKI, modelled as
// files).

import (
	"crypto/tls"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/rpc"
)

// hopSpec locates one remote process: its address and pinned cert.
type hopSpec struct {
	addr     string
	certFile string
}

// loadClientTLS reads a process's pinned certificate file into a TLS
// config that trusts exactly that certificate.
func loadClientTLS(certFile string) (*tls.Config, error) {
	pem, err := os.ReadFile(certFile)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", certFile, err)
	}
	return rpc.ClientTLSFromPEM(pem)
}

// dialSpec opens a hop client for one remote mix process, pinning its
// certificate and installing the fault-injection wrapper when one is
// configured.
func dialSpec(spec hopSpec, label string, inj *faults.Injector) (*rpc.HopClient, error) {
	tlsCfg, err := loadClientTLS(spec.certFile)
	if err != nil {
		return nil, err
	}
	hc := rpc.DialHop(spec.addr, tlsCfg)
	if inj != nil {
		hc.SetConnWrapper(inj.Wrapper(label))
	}
	return hc, nil
}

// splitSpec splits one "key=addr=certfile" entry.
func splitSpec(entry, shape string) (key, addr, certFile string, err error) {
	parts := strings.Split(strings.TrimSpace(entry), "=")
	if len(parts) != 3 {
		return "", "", "", fmt.Errorf("entry %q: want %s", entry, shape)
	}
	return parts[0], parts[1], parts[2], nil
}

// parseIntPair splits "a:b" into two ints.
func parseIntPair(s, what string) (int, int, error) {
	halves := strings.Split(s, ":")
	if len(halves) != 2 {
		return 0, 0, fmt.Errorf("%q is not %s", s, what)
	}
	a, err := strconv.Atoi(halves[0])
	if err != nil {
		return 0, 0, fmt.Errorf("%q: %w", s, err)
	}
	b, err := strconv.Atoi(halves[1])
	if err != nil {
		return 0, 0, fmt.Errorf("%q: %w", s, err)
	}
	return a, b, nil
}

// parseHopSpecs parses "chain:pos=addr=certfile,..." into a position
// map.
func parseHopSpecs(s string) (map[[2]int]hopSpec, error) {
	out := make(map[[2]int]hopSpec)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(s, ",") {
		key, addr, certFile, err := splitSpec(entry, "chain:pos=addr=certfile")
		if err != nil {
			return nil, err
		}
		chain, pos, err := parseIntPair(key, "chain:pos")
		if err != nil {
			return nil, fmt.Errorf("entry %q: %w", entry, err)
		}
		k := [2]int{chain, pos}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("position %d:%d listed twice", chain, pos)
		}
		out[k] = hopSpec{addr: addr, certFile: certFile}
	}
	return out, nil
}

// parseServerSpecs parses "id=addr=certfile,..." into a server
// identity map.
func parseServerSpecs(s string) (map[int]hopSpec, error) {
	out := make(map[int]hopSpec)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(s, ",") {
		key, addr, certFile, err := splitSpec(entry, "id=addr=certfile")
		if err != nil {
			return nil, err
		}
		id, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("entry %q: server id: %w", entry, err)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("server %d listed twice", id)
		}
		out[id] = hopSpec{addr: addr, certFile: certFile}
	}
	return out, nil
}

// gatewaySpec locates one gateway shard process and the registry
// range it owns.
type gatewaySpec struct {
	lo, hi int
	hopSpec
}

// parseGatewaySpecs parses "lo:hi=addr=certfile,..." into shard
// specs; range validity (partitioning) is checked by core.
func parseGatewaySpecs(s string) ([]gatewaySpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []gatewaySpec
	for _, entry := range strings.Split(s, ",") {
		key, addr, certFile, err := splitSpec(entry, "lo:hi=addr=certfile")
		if err != nil {
			return nil, err
		}
		lo, hi, err := parseIntPair(key, "lo:hi")
		if err != nil {
			return nil, fmt.Errorf("entry %q: %w", entry, err)
		}
		out = append(out, gatewaySpec{lo: lo, hi: hi, hopSpec: hopSpec{addr: addr, certFile: certFile}})
	}
	return out, nil
}

func writeCert(pemOf func() ([]byte, error), path string) error {
	pem, err := pemOf()
	if err != nil {
		return fmt.Errorf("exporting certificate: %w", err)
	}
	if err := os.WriteFile(path, pem, 0o644); err != nil {
		return fmt.Errorf("writing certificate: %w", err)
	}
	return nil
}

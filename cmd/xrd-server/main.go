// Command xrd-server runs an XRD deployment behind a TLS gateway:
// the mix chains, mailbox cluster and round driver of Figure 1 in one
// process, serving remote users (xrd-client) over the network.
//
// The pinned certificate remote clients need is written to -cert-out
// (the paper's assumed PKI distributes server identities; the file
// plays that role here).
//
//	xrd-server -addr 127.0.0.1:7900 -servers 20 -k 6 -interval 5s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7900", "gateway listen address")
		servers  = flag.Int("servers", 20, "number of mix servers N (chains n = N)")
		k        = flag.Int("k", 6, "chain length override (0 derives k from -f)")
		f        = flag.Float64("f", 0.2, "assumed fraction of malicious servers")
		seed     = flag.String("seed", "public-beacon", "public randomness seed for chain formation")
		boxes    = flag.Int("mailboxes", 2, "mailbox server count")
		interval = flag.Duration("interval", 10*time.Second, "round interval (0 = rounds only via client trigger)")
		certOut  = flag.String("cert-out", "xrd-gateway.pem", "file to write the pinned TLS certificate to")
	)
	flag.Parse()

	net, err := core.NewNetwork(core.Config{
		NumServers:          *servers,
		ChainLengthOverride: *k,
		F:                   *f,
		Seed:                []byte(*seed),
		MailboxServers:      *boxes,
	})
	if err != nil {
		log.Fatalf("assembling network: %v", err)
	}
	gw, err := rpc.NewServer(net, *addr)
	if err != nil {
		log.Fatalf("starting gateway: %v", err)
	}
	defer gw.Close()

	pem, err := gw.CertificatePEM()
	if err != nil {
		log.Fatalf("exporting certificate: %v", err)
	}
	if err := os.WriteFile(*certOut, pem, 0o644); err != nil {
		log.Fatalf("writing certificate: %v", err)
	}

	fmt.Printf("xrd-server: %d chains of %d servers, l=%d chains per user\n",
		net.NumChains(), net.Topology().ChainLength, net.Plan().L)
	fmt.Printf("xrd-server: listening on %s (certificate in %s)\n", gw.Addr(), *certOut)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	if *interval <= 0 {
		fmt.Println("xrd-server: rounds run on client trigger only")
		<-stop
		return
	}
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\nxrd-server: shutting down")
			return
		case <-ticker.C:
			rep, err := net.RunRound()
			if err != nil {
				log.Printf("round failed: %v", err)
				continue
			}
			fmt.Printf("round %d: delivered=%d halted=%v failed=%v blamed-users=%v covered=%d\n",
				rep.Round, rep.Delivered, rep.HaltedChains, rep.FailedChains,
				rep.BlamedUsers, rep.OfflineCovered)
			net.PruneBefore(rep.Round - 4)
		}
	}
}

// Command xrd-server runs one process of an XRD deployment. Two
// roles:
//
// Role "gateway" (default) assembles the deployment — mix chains,
// mailbox cluster, round driver (Figure 1) — and serves remote users
// (xrd-client) over TLS. Chain positions listed in -hops are not
// hosted in-process: the gateway drives them over the hop transport,
// so a deployment can span N processes and machines.
//
// Role "mix" hosts a single mix server at one chain position. It
// starts keyless and unbound; the gateway binds it to its position
// (and supplies the base its keys chain off) during setup. Which
// position it serves is decided by the gateway's -hops or
// -mix-servers flag.
//
// -hops keys remote processes by chain coordinate ("chain:pos=...").
// -mix-servers keys them by server identity ("id=...") instead, which
// is what epoch recovery needs: after a halt the gateway evicts the
// blamed server, re-forms the chains from the survivors and re-binds
// each surviving process at its new coordinate — only a stable
// identity survives that re-shuffle. -mix-servers therefore enables
// recovery (-recover) by default.
//
// Every process writes its pinned TLS certificate to -cert-out (the
// paper's assumed PKI distributes server identities; the files play
// that role here): clients pin the gateway's, the gateway pins each
// mix process's.
//
//	xrd-server -role mix -addr 127.0.0.1:7901 -cert-out mix1.pem
//	xrd-server -role mix -addr 127.0.0.1:7902 -cert-out mix2.pem
//	xrd-server -role mix -addr 127.0.0.1:7903 -cert-out mix3.pem
//	xrd-server -addr 127.0.0.1:7900 -servers 3 -chains 1 -k 3 \
//	    -mix-servers "0=127.0.0.1:7901=mix1.pem,1=127.0.0.1:7902=mix2.pem,2=127.0.0.1:7903=mix3.pem"
//
// -faults injects deterministic connection faults (drops, delays,
// corruption, partitions — see internal/faults) into the hop
// transport: on the gateway it wraps every hop connection it dials,
// on a mix it wraps every connection it accepts. The chaos end-to-end
// suite drives a live deployment through halts and recovery with it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/rpc"
)

func main() {
	var (
		role       = flag.String("role", "gateway", "process role: gateway (deployment + user API) or mix (one remote chain position)")
		addr       = flag.String("addr", "127.0.0.1:7900", "TLS listen address")
		certOut    = flag.String("cert-out", "xrd-gateway.pem", "file to write the pinned TLS certificate to")
		servers    = flag.Int("servers", 20, "number of mix servers N")
		chains     = flag.Int("chains", 0, "number of chains n (0 means n = N as in the paper)")
		k          = flag.Int("k", 6, "chain length override (0 derives k from -f)")
		f          = flag.Float64("f", 0.2, "assumed fraction of malicious servers")
		seed       = flag.String("seed", "public-beacon", "public randomness seed for chain formation")
		boxes      = flag.Int("mailboxes", 2, "mailbox server count")
		interval   = flag.Duration("interval", 10*time.Second, "round interval (0 = rounds only via client trigger)")
		hops       = flag.String("hops", "", `remote chain positions as "chain:pos=addr=certfile,..." (gateway role)`)
		mixServers = flag.String("mix-servers", "", `remote mix processes as "id=addr=certfile,..." keyed by server identity (gateway role; enables -recover)`)
		recoverOn  = flag.Bool("recover", false, "evict blamed servers and re-form chains after a halt (on by default with -mix-servers)")
		faultSpec  = flag.String("faults", "", `fault-injection spec, e.g. "delay,target=srv1,delay=2s,after=3;drop,target=srv2" (see internal/faults)`)
		faultSeed  = flag.Int64("fault-seed", 1, "deterministic seed for -faults probability coins")
	)
	flag.Parse()

	var inj *faults.Injector
	if *faultSpec != "" {
		var err error
		inj, err = faults.Parse(*faultSpec, *faultSeed)
		if err != nil {
			log.Fatalf("parsing -faults: %v", err)
		}
	}

	switch *role {
	case "gateway":
		runGateway(gatewayOpts{
			addr:       *addr,
			certOut:    *certOut,
			servers:    *servers,
			chains:     *chains,
			k:          *k,
			f:          *f,
			seed:       *seed,
			boxes:      *boxes,
			interval:   *interval,
			hopSpec:    *hops,
			serverSpec: *mixServers,
			recover:    *recoverOn || *mixServers != "",
			inj:        inj,
		})
	case "mix":
		runMix(*addr, *certOut, inj)
	default:
		log.Fatalf("unknown role %q (want gateway or mix)", *role)
	}
}

// runMix hosts one chain position behind the hop transport and waits.
func runMix(addr, certOut string, inj *faults.Injector) {
	hs, err := rpc.NewHopServer(addr, nil)
	if err != nil {
		log.Fatalf("starting hop endpoint: %v", err)
	}
	defer hs.Close()
	if inj != nil {
		hs.SetConnWrapper(inj.Wrapper("accept@" + addr))
	}
	if err := writeCert(hs.CertificatePEM, certOut); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xrd-server[mix]: hop endpoint on %s (certificate in %s), waiting for gateway binding\n", hs.Addr(), certOut)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("\nxrd-server[mix]: shutting down")
}

type gatewayOpts struct {
	addr, certOut   string
	servers, chains int
	k               int
	f               float64
	seed            string
	boxes           int
	interval        time.Duration
	hopSpec         string // chain:pos-keyed remotes
	serverSpec      string // server-identity-keyed remotes
	recover         bool
	inj             *faults.Injector
}

// runGateway assembles the deployment (dialing remote hops first) and
// serves users.
func runGateway(o gatewayOpts) {
	remotes, err := parseHopSpecs(o.hopSpec)
	if err != nil {
		log.Fatalf("parsing -hops: %v", err)
	}
	byServer, err := parseServerSpecs(o.serverSpec)
	if err != nil {
		log.Fatalf("parsing -mix-servers: %v", err)
	}
	if len(remotes) > 0 && len(byServer) > 0 {
		log.Fatal("-hops and -mix-servers are mutually exclusive")
	}
	for id := range byServer {
		if id < 0 || id >= o.servers {
			log.Fatalf("-mix-servers entry %d is outside the server set 0..%d", id, o.servers-1)
		}
	}

	used := make(map[[2]int]bool)
	cfg := core.Config{
		NumServers:          o.servers,
		NumChains:           o.chains,
		ChainLengthOverride: o.k,
		F:                   o.f,
		Seed:                []byte(o.seed),
		MailboxServers:      o.boxes,
		Recover:             o.recover,
	}
	if len(remotes) > 0 {
		cfg.RemoteHops = func(chain, pos int, base group.Point) (mix.Hop, error) {
			spec, ok := remotes[[2]int{chain, pos}]
			if !ok {
				return nil, nil
			}
			hc, err := dialSpec(spec, fmt.Sprintf("hop%d:%d", chain, pos), o.inj)
			if err != nil {
				return nil, err
			}
			if _, err := hc.Init(chain, pos, base); err != nil {
				return nil, fmt.Errorf("binding %s to %d:%d: %w", spec.addr, chain, pos, err)
			}
			used[[2]int{chain, pos}] = true
			return hc, nil
		}
	}
	usedServers := make(map[int]bool)
	if len(byServer) > 0 {
		// One client per process, reused across epochs: after a
		// re-form the surviving process is re-bound in place via
		// InitEpoch, keeping its connection pool.
		var mu sync.Mutex
		clients := make(map[int]*rpc.HopClient)
		cfg.HopForServer = func(epoch uint64, server, chain, pos int, base group.Point) (mix.Hop, error) {
			spec, ok := byServer[server]
			if !ok {
				return nil, nil
			}
			mu.Lock()
			hc, ok := clients[server]
			if !ok {
				var err error
				hc, err = dialSpec(spec, fmt.Sprintf("srv%d", server), o.inj)
				if err != nil {
					mu.Unlock()
					return nil, err
				}
				clients[server] = hc
			}
			usedServers[server] = true
			mu.Unlock()
			if _, err := hc.InitEpoch(epoch, chain, pos, base); err != nil {
				return nil, fmt.Errorf("binding server %d (%s) to %d:%d at epoch %d: %w",
					server, spec.addr, chain, pos, epoch, err)
			}
			return hc, nil
		}
	}

	net, err := core.NewNetwork(cfg)
	if err != nil {
		log.Fatalf("assembling network: %v", err)
	}
	for key := range remotes {
		if !used[key] {
			log.Fatalf("-hops entry %d:%d matches no chain position of this topology", key[0], key[1])
		}
	}
	for id := range byServer {
		if !usedServers[id] {
			log.Fatalf("-mix-servers entry %d holds no chain position of this topology", id)
		}
	}

	gw, err := rpc.NewServer(net, o.addr)
	if err != nil {
		log.Fatalf("starting gateway: %v", err)
	}
	defer gw.Close()
	if err := writeCert(gw.CertificatePEM, o.certOut); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("xrd-server: %d chains of %d servers, l=%d chains per user, %d remote positions, recover=%v\n",
		net.NumChains(), net.Topology().ChainLength, net.Plan().L, len(remotes)+len(byServer), o.recover)
	fmt.Printf("xrd-server: listening on %s (certificate in %s)\n", gw.Addr(), o.certOut)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	if o.interval <= 0 {
		fmt.Println("xrd-server: rounds run on client trigger only")
		<-stop
		return
	}
	ticker := time.NewTicker(o.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\nxrd-server: shutting down")
			return
		case <-ticker.C:
			rep, err := net.RunRound()
			if err != nil {
				// A non-nil report alongside the error means the
				// round itself completed (announcing the next one
				// failed — typically a dead remote hop, whose chain
				// halted); its attribution is still worth printing.
				log.Printf("round failed: %v", err)
				if rep == nil {
					continue
				}
			}
			fmt.Printf("round %d: epoch=%d delivered=%d halted=%v failed=%v dead=%v stranded=%d blamed-users=%v covered=%d\n",
				rep.Round, rep.Epoch, rep.Delivered, rep.HaltedChains, rep.FailedChains,
				rep.DeadChains, len(rep.Stranded), rep.BlamedUsers, rep.OfflineCovered)
			if rep.Reformed {
				fmt.Printf("round %d: re-formed chains at epoch %d after evicting servers %v\n",
					rep.Round, rep.Epoch, rep.Evicted)
			}
			net.PruneBefore(rep.Round - 4)
		}
	}
}

type hopSpec struct {
	addr     string
	certFile string
}

// dialSpec opens a hop client for one remote process, pinning its
// certificate and installing the fault-injection wrapper when one is
// configured.
func dialSpec(spec hopSpec, label string, inj *faults.Injector) (*rpc.HopClient, error) {
	pem, err := os.ReadFile(spec.certFile)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", spec.certFile, err)
	}
	tlsCfg, err := rpc.ClientTLSFromPEM(pem)
	if err != nil {
		return nil, err
	}
	hc := rpc.DialHop(spec.addr, tlsCfg)
	if inj != nil {
		hc.SetConnWrapper(inj.Wrapper(label))
	}
	return hc, nil
}

// parseHopSpecs parses "chain:pos=addr=certfile,..." into a position
// map.
func parseHopSpecs(s string) (map[[2]int]hopSpec, error) {
	out := make(map[[2]int]hopSpec)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		parts := strings.Split(entry, "=")
		if len(parts) != 3 {
			return nil, fmt.Errorf("entry %q: want chain:pos=addr=certfile", entry)
		}
		chainPos := strings.Split(parts[0], ":")
		if len(chainPos) != 2 {
			return nil, fmt.Errorf("entry %q: position %q is not chain:pos", entry, parts[0])
		}
		chain, err := strconv.Atoi(chainPos[0])
		if err != nil {
			return nil, fmt.Errorf("entry %q: chain: %w", entry, err)
		}
		pos, err := strconv.Atoi(chainPos[1])
		if err != nil {
			return nil, fmt.Errorf("entry %q: position: %w", entry, err)
		}
		key := [2]int{chain, pos}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("position %d:%d listed twice", chain, pos)
		}
		out[key] = hopSpec{addr: parts[1], certFile: parts[2]}
	}
	return out, nil
}

// parseServerSpecs parses "id=addr=certfile,..." into a server
// identity map.
func parseServerSpecs(s string) (map[int]hopSpec, error) {
	out := make(map[int]hopSpec)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		parts := strings.Split(entry, "=")
		if len(parts) != 3 {
			return nil, fmt.Errorf("entry %q: want id=addr=certfile", entry)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("entry %q: server id: %w", entry, err)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("server %d listed twice", id)
		}
		out[id] = hopSpec{addr: parts[1], certFile: parts[2]}
	}
	return out, nil
}

func writeCert(pemOf func() ([]byte, error), path string) error {
	pem, err := pemOf()
	if err != nil {
		return fmt.Errorf("exporting certificate: %w", err)
	}
	if err := os.WriteFile(path, pem, 0o644); err != nil {
		return fmt.Errorf("writing certificate: %w", err)
	}
	return nil
}

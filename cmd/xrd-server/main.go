// Command xrd-server runs one process of an XRD deployment. Three
// roles:
//
// Role "coordinator" (default) assembles the deployment — mix chains,
// chain-selection plan, round driver (Figure 1) — and drives one
// logical round per interval (or per client trigger). With no
// -gateways it also hosts the entire user base in-process: the
// single-machine monolith. With -gateways the user base lives in
// separate gateway-shard processes, each owning a contiguous slice of
// the 64-shard registry, and the coordinator fans each round out to
// them (begin/batch/deliver/finish; see internal/core/shard.go).
//
// Role "gateway" hosts one gateway shard: registration, submission
// intake, cover banking and mailbox storage for the users whose
// mailbox identifiers hash into its -shard-range. It serves users
// (xrd-client, xrd-loadgen) and its coordinator on one TLS listener,
// and learns the epoch/round/parameters from the coordinator.
//
// Role "mix" hosts a single mix server at one chain position. It
// starts keyless and unbound; the coordinator binds it to its
// position (and supplies the base its keys chain off) during setup.
// Which position it serves is decided by the coordinator's -hops or
// -mix-servers flag.
//
// -hops keys remote processes by chain coordinate ("chain:pos=...").
// -mix-servers keys them by server identity ("id=...") instead, which
// is what epoch recovery needs: after a halt the coordinator evicts
// the blamed server, re-forms the chains from the survivors and
// re-binds each surviving process at its new coordinate — only a
// stable identity survives that re-shuffle. -mix-servers therefore
// enables recovery (-recover) by default.
//
// Every process writes its pinned TLS certificate to -cert-out (the
// paper's assumed PKI distributes server identities; the files play
// that role here): clients pin the gateways', the coordinator pins
// each mix and gateway process's.
//
//	xrd-server -role mix -addr 127.0.0.1:7901 -cert-out mix1.pem
//	xrd-server -role mix -addr 127.0.0.1:7902 -cert-out mix2.pem
//	xrd-server -role mix -addr 127.0.0.1:7903 -cert-out mix3.pem
//	xrd-server -role gateway -addr 127.0.0.1:7911 -shard-range 0:32 -cert-out gw1.pem
//	xrd-server -role gateway -addr 127.0.0.1:7912 -shard-range 32:64 -cert-out gw2.pem
//	xrd-server -addr 127.0.0.1:7900 -servers 3 -chains 1 -k 3 \
//	    -mix-servers "0=127.0.0.1:7901=mix1.pem,1=127.0.0.1:7902=mix2.pem,2=127.0.0.1:7903=mix3.pem" \
//	    -gateways "0:32=127.0.0.1:7911=gw1.pem,32:64=127.0.0.1:7912=gw2.pem"
//
// -faults injects deterministic connection faults (drops, delays,
// corruption, partitions — see internal/faults) into the hop
// transport: on the coordinator it wraps every hop connection it
// dials, on a mix it wraps every connection it accepts. The chaos
// end-to-end suite drives a live deployment through halts and
// recovery with it.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/store"
)

func main() {
	var (
		role       = flag.String("role", "coordinator", "process role: coordinator (chains + round driver), gateway (one user-base shard) or mix (one remote chain position)")
		addr       = flag.String("addr", "127.0.0.1:7900", "TLS listen address")
		certOut    = flag.String("cert-out", "xrd-gateway.pem", "file to write the pinned TLS certificate to")
		servers    = flag.Int("servers", 20, "number of mix servers N (coordinator)")
		chains     = flag.Int("chains", 0, "number of chains n (0 means n = N as in the paper)")
		k          = flag.Int("k", 6, "chain length override (0 derives k from -f)")
		f          = flag.Float64("f", 0.2, "assumed fraction of malicious servers")
		seed       = flag.String("seed", "public-beacon", "public randomness seed for chain formation")
		boxes      = flag.Int("mailboxes", 2, "mailbox server count (coordinator monolith or gateway shard)")
		workers    = flag.Int("workers", 0, "build worker pool size (0 = GOMAXPROCS)")
		interval   = flag.Duration("interval", 10*time.Second, "round interval (0 = rounds only via client trigger)")
		hops       = flag.String("hops", "", `remote chain positions as "chain:pos=addr=certfile,..." (coordinator role)`)
		mixServers = flag.String("mix-servers", "", `remote mix processes as "id=addr=certfile,..." keyed by server identity (coordinator role; enables -recover)`)
		gateways   = flag.String("gateways", "", `remote gateway shards as "lo:hi=addr=certfile,..." partitioning the 64 registry shards (coordinator role)`)
		shardRange = flag.String("shard-range", "0:64", `registry-shard range this gateway owns, as "lo:hi" (gateway role)`)
		dataDir    = flag.String("data-dir", "", "directory for durable WAL+snapshot state; restart with the same directory to recover (gateway role; empty = in-memory only)")
		recoverOn  = flag.Bool("recover", false, "evict blamed servers and re-form chains after a halt (on by default with -mix-servers)")
		pipeline   = flag.Int("pipeline", 1, "round pipeline depth: 2 overlaps the next round's build with the current mix (coordinator role)")
		faultSpec  = flag.String("faults", "", `fault-injection spec, e.g. "delay,target=srv1,delay=2s,after=3;drop,target=srv2" (see internal/faults)`)
		faultSeed  = flag.Int64("fault-seed", 1, "deterministic seed for -faults probability coins")
		adminAddr  = flag.String("admin-addr", "", "plain-HTTP admin listen address serving /metrics, /healthz and /debug/pprof (empty = disabled; bind to loopback or a management network)")
	)
	flag.Parse()

	var inj *faults.Injector
	if *faultSpec != "" {
		var err error
		inj, err = faults.Parse(*faultSpec, *faultSeed)
		if err != nil {
			log.Fatalf("parsing -faults: %v", err)
		}
	}

	switch *role {
	case "coordinator":
		runCoordinator(coordinatorOpts{
			addr:        *addr,
			certOut:     *certOut,
			servers:     *servers,
			chains:      *chains,
			k:           *k,
			f:           *f,
			seed:        *seed,
			boxes:       *boxes,
			workers:     *workers,
			interval:    *interval,
			hopSpec:     *hops,
			serverSpec:  *mixServers,
			gatewaySpec: *gateways,
			recover:     *recoverOn || *mixServers != "",
			pipeline:    *pipeline,
			inj:         inj,
			adminAddr:   *adminAddr,
		})
	case "gateway":
		runGatewayShard(*addr, *certOut, *shardRange, *dataDir, *adminAddr, *boxes, *workers)
	case "mix":
		runMix(*addr, *certOut, *adminAddr, inj)
	default:
		log.Fatalf("unknown role %q (want coordinator, gateway or mix)", *role)
	}
}

// startAdmin starts the observability endpoint when -admin-addr is
// set; it returns a closer (a no-op when disabled).
func startAdmin(addr, role string, health func() obs.Health) func() {
	if addr == "" {
		return func() {}
	}
	as, err := obs.ServeAdmin(addr, obs.AdminConfig{Health: health})
	if err != nil {
		log.Fatalf("starting admin endpoint: %v", err)
	}
	fmt.Printf("xrd-server[%s]: admin endpoint on http://%s (/metrics, /healthz, /debug/pprof)\n", role, as.Addr())
	return func() { as.Close() }
}

// runMix hosts one chain position behind the hop transport and waits.
func runMix(addr, certOut, adminAddr string, inj *faults.Injector) {
	hs, err := rpc.NewHopServer(addr, nil)
	if err != nil {
		log.Fatalf("starting hop endpoint: %v", err)
	}
	defer hs.Close()
	closeAdmin := startAdmin(adminAddr, "mix", func() obs.Health {
		bound, epoch, chain, index, round := hs.HealthInfo()
		h := obs.Health{Role: "mix", Epoch: epoch, Round: round}
		if bound {
			h.Chain, h.Position = chain, index
		}
		return h
	})
	defer closeAdmin()
	if inj != nil {
		hs.SetConnWrapper(inj.Wrapper("accept@" + addr))
	}
	if err := writeCert(hs.CertificatePEM, certOut); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xrd-server[mix]: hop endpoint on %s (certificate in %s), waiting for coordinator binding\n", hs.Addr(), certOut)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("\nxrd-server[mix]: shutting down")
}

// runGatewayShard hosts one gateway front-end shard and waits for its
// coordinator (shard.init pushes epoch/round/parameters) and users.
// With -data-dir the shard's registry, mailboxes and pending
// submissions live in a WAL+snapshot store there: a SIGKILLed process
// restarted over the same directory replays to its pre-crash
// watermark and resumes serving (the coordinator re-adopts it through
// the ordinary rebalance path).
func runGatewayShard(addr, certOut, shardRange, dataDir, adminAddr string, boxes, workers int) {
	lo, hi, err := parseIntPair(shardRange, "lo:hi")
	if err != nil {
		log.Fatalf("parsing -shard-range: %v", err)
	}
	cfg := core.FrontendConfig{
		Range:          core.ShardRange{Lo: lo, Hi: hi},
		MailboxServers: boxes,
		Workers:        workers,
	}
	var serverTLS, clientTLS *tls.Config
	if dataDir != "" {
		st, rec, err := store.Open(dataDir, store.Options{})
		if err != nil {
			log.Fatalf("opening -data-dir %s: %v", dataDir, err)
		}
		cfg.Store, cfg.Recovered = st, rec
		fmt.Printf("xrd-server[gateway]: recovered %d records over %d snapshot bytes from %s (torn tail: %v)\n",
			len(rec.Records), len(rec.Snapshot), dataDir, rec.Truncated)
		// The TLS identity persists beside the WAL: peers pinned this
		// shard's certificate at deployment time, so a restart must
		// present the same one or be refused as an impostor.
		host, _, err := net.SplitHostPort(addr)
		if err != nil || host == "" {
			host = "127.0.0.1"
		}
		serverTLS, clientTLS, err = rpc.LoadOrCreateTLSIdentity(filepath.Join(dataDir, "identity.pem"), host)
		if err != nil {
			log.Fatalf("loading TLS identity: %v", err)
		}
	}
	fe, err := core.NewFrontend(cfg)
	if err != nil {
		log.Fatalf("building gateway shard: %v", err)
	}
	closeAdmin := startAdmin(adminAddr, "gateway", func() obs.Health {
		rng := fe.Range()
		return obs.Health{
			Role:    "gateway",
			Epoch:   fe.Epoch(),
			Round:   fe.Round(),
			ShardLo: rng.Lo,
			ShardHi: rng.Hi,
			Users:   fe.NumUsers(),
		}
	})
	defer closeAdmin()
	var ss *rpc.ShardServer
	if serverTLS != nil {
		ss, err = rpc.NewShardServerTLS(fe, addr, serverTLS, clientTLS)
	} else {
		ss, err = rpc.NewShardServer(fe, addr)
	}
	if err != nil {
		log.Fatalf("starting gateway shard: %v", err)
	}
	defer ss.Close()
	if err := writeCert(ss.CertificatePEM, certOut); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xrd-server[gateway]: shard %d:%d on %s (certificate in %s), waiting for coordinator\n",
		lo, hi, ss.Addr(), certOut)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("\nxrd-server[gateway]: shutting down")
	if err := fe.Close(); err != nil {
		log.Printf("closing durable store: %v", err)
	}
}

type coordinatorOpts struct {
	addr, certOut   string
	servers, chains int
	k               int
	f               float64
	seed            string
	boxes           int
	workers         int
	interval        time.Duration
	hopSpec         string // chain:pos-keyed remote mixes
	serverSpec      string // server-identity-keyed remote mixes
	gatewaySpec     string // shard-range-keyed remote gateways
	recover         bool
	pipeline        int
	inj             *faults.Injector
	adminAddr       string
}

// runCoordinator assembles the deployment (dialing remote gateways
// and hops first), serves users (directly when monolithic), and
// drives rounds.
func runCoordinator(o coordinatorOpts) {
	remotes, err := parseHopSpecs(o.hopSpec)
	if err != nil {
		log.Fatalf("parsing -hops: %v", err)
	}
	byServer, err := parseServerSpecs(o.serverSpec)
	if err != nil {
		log.Fatalf("parsing -mix-servers: %v", err)
	}
	if len(remotes) > 0 && len(byServer) > 0 {
		log.Fatal("-hops and -mix-servers are mutually exclusive")
	}
	for id := range byServer {
		if id < 0 || id >= o.servers {
			log.Fatalf("-mix-servers entry %d is outside the server set 0..%d", id, o.servers-1)
		}
	}
	gwSpecs, err := parseGatewaySpecs(o.gatewaySpec)
	if err != nil {
		log.Fatalf("parsing -gateways: %v", err)
	}

	used := make(map[[2]int]bool)
	cfg := core.Config{
		NumServers:          o.servers,
		NumChains:           o.chains,
		ChainLengthOverride: o.k,
		F:                   o.f,
		Seed:                []byte(o.seed),
		MailboxServers:      o.boxes,
		Workers:             o.workers,
		Recover:             o.recover,
		PipelineDepth:       o.pipeline,
	}
	var shardClients []*rpc.ShardClient
	for _, gs := range gwSpecs {
		tlsCfg, err := loadClientTLS(gs.certFile)
		if err != nil {
			log.Fatalf("-gateways %d:%d: %v", gs.lo, gs.hi, err)
		}
		sc, err := rpc.NewShardClient(gs.lo, gs.hi, gs.addr, tlsCfg)
		if err != nil {
			log.Fatalf("-gateways %d:%d: %v", gs.lo, gs.hi, err)
		}
		shardClients = append(shardClients, sc)
		cfg.Shards = append(cfg.Shards, sc)
	}
	if len(remotes) > 0 {
		cfg.RemoteHops = func(chain, pos int, base group.Point) (mix.Hop, error) {
			spec, ok := remotes[[2]int{chain, pos}]
			if !ok {
				return nil, nil
			}
			hc, err := dialSpec(spec, fmt.Sprintf("hop%d:%d", chain, pos), o.inj)
			if err != nil {
				return nil, err
			}
			if _, err := hc.Init(chain, pos, base); err != nil {
				return nil, fmt.Errorf("binding %s to %d:%d: %w", spec.addr, chain, pos, err)
			}
			used[[2]int{chain, pos}] = true
			return hc, nil
		}
	}
	usedServers := make(map[int]bool)
	if len(byServer) > 0 {
		// One client per process, reused across epochs: after a
		// re-form the surviving process is re-bound in place via
		// InitEpoch, keeping its connection pool.
		var mu sync.Mutex
		clients := make(map[int]*rpc.HopClient)
		cfg.HopForServer = func(epoch uint64, server, chain, pos int, base group.Point) (mix.Hop, error) {
			spec, ok := byServer[server]
			if !ok {
				return nil, nil
			}
			mu.Lock()
			hc, ok := clients[server]
			if !ok {
				var err error
				hc, err = dialSpec(spec, fmt.Sprintf("srv%d", server), o.inj)
				if err != nil {
					mu.Unlock()
					return nil, err
				}
				clients[server] = hc
			}
			usedServers[server] = true
			mu.Unlock()
			if _, err := hc.InitEpoch(epoch, chain, pos, base); err != nil {
				return nil, fmt.Errorf("binding server %d (%s) to %d:%d at epoch %d: %w",
					server, spec.addr, chain, pos, epoch, err)
			}
			return hc, nil
		}
	}

	net, err := core.NewNetwork(cfg)
	if err != nil {
		log.Fatalf("assembling network: %v", err)
	}
	closeAdmin := startAdmin(o.adminAddr, "coordinator", func() obs.Health {
		return obs.Health{
			Role:   "coordinator",
			Epoch:  net.Epoch(),
			Round:  net.Round(),
			Users:  net.NumUsers(),
			Chains: net.NumChains(),
		}
	})
	defer closeAdmin()
	for key := range remotes {
		if !used[key] {
			log.Fatalf("-hops entry %d:%d matches no chain position of this topology", key[0], key[1])
		}
	}
	for id := range byServer {
		if !usedServers[id] {
			log.Fatalf("-mix-servers entry %d holds no chain position of this topology", id)
		}
	}
	// Push the founding round/parameter state to every gateway shard
	// so they can serve clients before the first round.
	for _, sc := range shardClients {
		if err := sc.Init(net); err != nil {
			log.Fatal(err)
		}
	}

	gw, err := rpc.NewServer(net, o.addr)
	if err != nil {
		log.Fatalf("starting coordinator endpoint: %v", err)
	}
	defer gw.Close()
	if err := writeCert(gw.CertificatePEM, o.certOut); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("xrd-server: %d chains of %d servers, l=%d chains per user, %d remote positions, %d gateway shards, recover=%v\n",
		net.NumChains(), net.Topology().ChainLength, net.Plan().L, len(remotes)+len(byServer), len(shardClients), o.recover)
	fmt.Printf("xrd-server: listening on %s (certificate in %s)\n", gw.Addr(), o.certOut)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	if o.interval <= 0 {
		fmt.Println("xrd-server: rounds run on client trigger only")
		<-stop
		return
	}
	ticker := time.NewTicker(o.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\nxrd-server: shutting down")
			return
		case <-ticker.C:
			rep, err := net.RunRound()
			if err != nil {
				// A non-nil report alongside the error means the
				// round itself completed (announcing the next one
				// failed — typically a dead remote hop, whose chain
				// halted); its attribution is still worth printing.
				log.Printf("round failed: %v", err)
				if rep == nil {
					continue
				}
			}
			fmt.Printf("round %d: epoch=%d delivered=%d halted=%v failed=%v dead=%v dead-shards=%v stranded=%d blamed-users=%v covered=%d\n",
				rep.Round, rep.Epoch, rep.Delivered, rep.HaltedChains, rep.FailedChains,
				rep.DeadChains, rep.DeadShards, len(rep.Stranded), rep.BlamedUsers, rep.OfflineCovered)
			if rep.Reformed {
				fmt.Printf("round %d: re-formed chains at epoch %d after evicting servers %v\n",
					rep.Round, rep.Epoch, rep.Evicted)
			}
			net.PruneBefore(rep.Round - 4)
		}
	}
}

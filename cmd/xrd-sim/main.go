// Command xrd-sim drives an in-process XRD deployment with a
// synthetic workload (internal/trace): paired conversations, user
// churn and optional attacks, printing per-round reports and timing —
// the laptop-scale counterpart of the paper's testbed runs.
//
//	xrd-sim -users 200 -servers 20 -k 6 -rounds 5 -paired 1.0 -user-churn 0.05
//
// -workers sizes the round pipeline's build worker pool (0 = one per
// CPU); -workers 1 reproduces the serial build for comparisons.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/mix"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	var (
		users     = flag.Int("users", 100, "number of users")
		servers   = flag.Int("servers", 20, "number of mix servers N")
		k         = flag.Int("k", 6, "chain length override")
		rounds    = flag.Int("rounds", 3, "rounds to run")
		paired    = flag.Float64("paired", 1.0, "fraction of users in conversations")
		userChurn = flag.Float64("user-churn", 0, "per-round probability a user goes offline")
		attack    = flag.Bool("attack", false, "corrupt one server with a product-preserving tamper")
		seed      = flag.Int64("seed", 1, "workload seed")
		workers   = flag.Int("workers", 0, "build worker pool size (0 = GOMAXPROCS)")
		pipeline  = flag.Int("pipeline", 1, "round pipeline depth: 2 overlaps the next round's build with the current mix")
		adminAddr = flag.String("admin-addr", "", "plain-HTTP admin listen address serving /metrics, /healthz and /debug/pprof (empty = disabled)")
	)
	flag.Parse()

	net, err := core.NewNetwork(core.Config{
		NumServers:          *servers,
		ChainLengthOverride: *k,
		Seed:                []byte("xrd-sim"),
		Workers:             *workers,
		PipelineDepth:       *pipeline,
	})
	if err != nil {
		log.Fatalf("assembling network: %v", err)
	}
	if *adminAddr != "" {
		as, err := obs.ServeAdmin(*adminAddr, obs.AdminConfig{Health: func() obs.Health {
			return obs.Health{
				Role:   "sim",
				Epoch:  net.Epoch(),
				Round:  net.Round(),
				Users:  net.NumUsers(),
				Chains: net.NumChains(),
			}
		}})
		if err != nil {
			log.Fatalf("starting admin endpoint: %v", err)
		}
		defer as.Close()
		fmt.Printf("xrd-sim: admin endpoint on http://%s (/metrics, /healthz, /debug/pprof)\n", as.Addr())
	}
	w, err := trace.Generate(trace.Config{
		NumUsers:       *users,
		PairedFraction: *paired,
		BodySize:       64,
		Seed:           *seed,
	})
	if err != nil {
		log.Fatalf("generating workload: %v", err)
	}
	population := make([]*client.User, *users)
	for i := range population {
		population[i] = net.NewUser()
	}
	for i, p := range w.Pairs {
		a, b := population[p[0]], population[p[1]]
		if err := a.StartConversation(b.PublicKey()); err != nil {
			log.Fatal(err)
		}
		if err := b.StartConversation(a.PublicKey()); err != nil {
			log.Fatal(err)
		}
		if err := a.QueueMessage(w.Bodies[i]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("xrd-sim: %d users (%d conversing, %d idle) on %d chains of %d, l=%d, %d build workers\n",
		*users, w.PairedUsers(), w.IdleUsers(), net.NumChains(), net.Topology().ChainLength, net.Plan().L, net.Workers())

	if *attack {
		if err := net.CorruptServer(0, 1, &mix.Corruption{TamperPairs: [][2]int{{0, 1}}}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("xrd-sim: server (chain 0, position 1) is tampering")
	}

	sched, err := trace.GenerateChurn(*users, *rounds, *userChurn, *seed)
	if err != nil {
		log.Fatal(err)
	}

	for r := 0; r < *rounds; r++ {
		for _, u := range sched[r] {
			net.SetOnline(population[u], false)
		}
		start := time.Now()
		rep, err := net.RunRound()
		if err != nil {
			log.Fatalf("round: %v", err)
		}
		elapsed := time.Since(start)

		received, undecryptable := 0, 0
		for _, u := range population {
			recv, bad := u.OpenMailbox(rep.Round, net.Fetch(u, rep.Round))
			received += len(recv)
			undecryptable += bad
		}
		fmt.Printf("round %d: %.3fs delivered=%d received=%d undecryptable=%d halted=%v blamed-servers=%v covered=%d\n",
			rep.Round, elapsed.Seconds(), rep.Delivered, received, undecryptable,
			rep.HaltedChains, rep.BlamedServers, rep.OfflineCovered)

		for _, u := range sched[r] {
			net.SetOnline(population[u], true)
		}
		net.PruneBefore(rep.Round)
	}
}

// Command xrd-experiments regenerates every table and figure of the
// paper's evaluation section (§8) as text tables: user costs
// (Figures 2-3), end-to-end latency (Figures 4-6), the blame
// protocol (Figure 7) and availability under churn (Figure 8), plus
// the headline comparison of §1.
//
// Large-scale latency points come from the calibrated cost models in
// internal/model; pass -measure to recalibrate the XRD constants from
// this machine's real crypto instead of the paper's fitted values.
// Figure 8 is a Monte-Carlo simulation over the real topology, and
// -e2e runs a real end-to-end deployment at laptop scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/churn"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/topology"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2-8, headline, or all")
	measure := flag.Bool("measure", false, "calibrate XRD constants from this machine's real crypto")
	iters := flag.Int("iters", 50, "measurement iterations for -measure")
	e2e := flag.Bool("e2e", false, "also run a real end-to-end round at laptop scale")
	flag.Parse()

	cal := model.PaperCalibration()
	calName := "paper-calibrated"
	if *measure {
		fmt.Fprintln(os.Stderr, "measuring local crypto costs...")
		cal = model.Measure(*iters)
		calName = "measured-on-this-machine"
		fmt.Fprintf(os.Stderr, "per-message mix %.0f µs, wrap %.2f ms, blame layer %.0f µs (single core)\n",
			cal.PerMsgServerSeconds*1e6, cal.PerMsgWrapSeconds*1e3, cal.PerUserLayerBlameSeconds*1e6)
	}
	fmt.Printf("XRD reproduction experiments (calibration: %s)\n\n", calName)

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("headline") {
		headline(cal)
	}
	if want("2") {
		fig2(cal)
	}
	if want("3") {
		fig3(cal)
	}
	if want("4") {
		fig4(cal)
	}
	if want("5") {
		fig5(cal)
	}
	if want("6") {
		fig6(cal)
	}
	if want("7") {
		fig7(cal)
	}
	if want("8") {
		fig8()
	}
	if *e2e {
		endToEnd()
	}
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

func headline(cal model.Calibration) {
	header("Headline (§1, §8.2): 2M users, 100 servers")
	x := cal.XRDLatency(2_000_000, 100)
	fmt.Printf("  %-22s %8.0f s   (paper: 251 s)\n", "XRD", x)
	fmt.Printf("  %-22s %8.0f s   (paper: >50 min; 12x XRD at 1M)\n", "Atom", cal.AtomLatency(2_000_000, 100))
	fmt.Printf("  %-22s %8.0f s   (paper: ~15 min; 3.7x XRD)\n", "Pung (XPIR)", cal.PungLatency(2_000_000, 100))
	fmt.Printf("  %-22s %8.0f s   (paper: ~2x faster than XRD)\n", "Stadium", cal.StadiumLatency(2_000_000, 100))
	fmt.Printf("  %-22s %8.0f s   (paper: ~25x faster than XRD)\n", "Karaoke (est.)", cal.KaraokeLatency(2_000_000, 100))
	fmt.Printf("  crossover vs Atom  at ~%d servers (paper: ~3000)\n",
		cal.CrossoverServers(2_000_000, cal.AtomLatency, 20000))
	fmt.Printf("  crossover vs Pung  at ~%d servers (paper: ~1000)\n\n",
		cal.CrossoverServers(2_000_000, cal.PungLatency, 20000))
}

func fig2(cal model.Calibration) {
	header("Figure 2: user bandwidth per round vs servers (bytes)")
	fmt.Printf("  %8s %12s %14s %14s %14s %10s\n", "servers", "XRD", "Pung-XPIR-1M", "Pung-XPIR-4M", "Pung-SealPIR", "Stadium")
	for _, n := range []int{100, 250, 500, 1000, 1500, 2000} {
		fmt.Printf("  %8d %12d %14d %14d %14d %10d\n",
			n, cal.XRDUserBandwidth(n),
			model.PungXPIRBandwidth(1_000_000), model.PungXPIRBandwidth(4_000_000),
			model.PungSealPIRBandwidth(), model.StadiumBandwidth())
	}
	kbps := float64(cal.XRDUserBandwidth(2000)) * 8 / 60 / 1000
	fmt.Printf("  => XRD at 2000 servers with 1-minute rounds: %.1f Kbps (paper: ~40)\n\n", kbps)
}

func fig3(cal model.Calibration) {
	header("Figure 3: user computation per round vs servers (single core, s)")
	fmt.Printf("  %8s %10s %12s %10s\n", "servers", "XRD", "Pung-1M", "Stadium")
	for _, n := range []int{100, 500, 1000, 2000} {
		fmt.Printf("  %8d %10.3f %12.3f %10.3f\n",
			n, cal.XRDUserCompute(n), model.PungUserCompute(1_000_000), model.StadiumUserCompute())
	}
	fmt.Println()
}

func fig4(cal model.Calibration) {
	header("Figure 4: end-to-end latency vs users, 100 servers (s)")
	fmt.Printf("  %8s %8s %8s %8s %8s\n", "users", "XRD", "Atom", "Pung", "Stadium")
	for _, m := range []int{1_000_000, 2_000_000, 4_000_000, 6_000_000, 8_000_000} {
		fmt.Printf("  %7dM %8.0f %8.0f %8.0f %8.0f\n", m/1_000_000,
			cal.XRDLatency(m, 100), cal.AtomLatency(m, 100),
			cal.PungLatency(m, 100), cal.StadiumLatency(m, 100))
	}
	fmt.Println("  (paper XRD points: 128, 251, 508, 793, 1009 s)")
	fmt.Println()
}

func fig5(cal model.Calibration) {
	header("Figure 5: end-to-end latency vs servers, 2M users (s)")
	fmt.Printf("  %8s %8s %8s %8s %8s\n", "servers", "XRD", "Atom", "Pung", "Stadium")
	for _, n := range []int{50, 100, 150, 200, 1000, 3000} {
		fmt.Printf("  %8d %8.0f %8.0f %8.0f %8.0f\n", n,
			cal.XRDLatency(2_000_000, n), cal.AtomLatency(2_000_000, n),
			cal.PungLatency(2_000_000, n), cal.StadiumLatency(2_000_000, n))
	}
	fmt.Println("  (XRD falls as √2/√N; Atom/Pung/Stadium as 1/N — crossovers appear at right)")
	fmt.Println()
}

func fig6(cal model.Calibration) {
	header("Figure 6: latency vs fraction of malicious servers f (2M users, 100 servers)")
	fmt.Printf("  %6s %6s %10s\n", "f", "k", "latency-s")
	for _, f := range []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45} {
		fmt.Printf("  %6.2f %6d %10.0f\n", f,
			topology.ChainLength(f, 100, 64), cal.XRDLatencyWithF(2_000_000, 100, f))
	}
	fmt.Println()
}

func fig7(cal model.Calibration) {
	header("Figure 7: blame protocol latency vs malicious users in a chain (f=0.2, 100 servers)")
	fmt.Printf("  %10s %10s\n", "malicious", "latency-s")
	for _, u := range []int{5_000, 20_000, 50_000, 80_000, 100_000} {
		fmt.Printf("  %10d %10.1f\n", u, cal.BlameLatency(u, 100))
	}
	fmt.Println("  (paper: ~13 s at 5k, ~150 s at 100k)")
	fmt.Println()
}

func fig8() {
	header("Figure 8: conversation failure rate vs server churn (Monte Carlo over real topology)")
	rates := []float64{0.005, 0.01, 0.02, 0.03, 0.04}
	fmt.Printf("  %8s", "churn")
	for _, n := range []int{100, 500, 1000} {
		fmt.Printf(" %12s", fmt.Sprintf("N=%d", n))
	}
	fmt.Printf(" %12s\n", "closed-form")
	for _, rate := range rates {
		fmt.Printf("  %7.1f%%", rate*100)
		k := 0
		for _, n := range []int{100, 500, 1000} {
			res, err := churn.Simulate(churn.Config{
				NumServers: n, F: 0.2, ChurnRate: rate,
				Pairs: 4000, Trials: 120, Seed: 42,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "churn simulation: %v\n", err)
				os.Exit(1)
			}
			k = res.ChainLength
			fmt.Printf(" %12.3f", res.FailureRate)
		}
		fmt.Printf(" %12.3f\n", model.ConversationFailureRate(rate, k))
	}
	fmt.Println("  (paper: ~27% at 1% churn, ~70% at 4%)")
	fmt.Println()
}

// endToEnd runs one real round at laptop scale and reports wall time.
func endToEnd() {
	header("Real end-to-end round (laptop scale: 12 servers, k=8, 60 users, all conversing)")
	net, err := core.NewNetwork(core.Config{
		NumServers:          12,
		ChainLengthOverride: 8,
		Seed:                []byte("e2e"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	users := make([]*client.User, 60)
	for i := range users {
		users[i] = net.NewUser()
	}
	for i := 0; i+1 < len(users); i += 2 {
		if err := users[i].StartConversation(users[i+1].PublicKey()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := users[i+1].StartConversation(users[i].PublicKey()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := users[i].QueueMessage([]byte(fmt.Sprintf("hello from %d", i))); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	start := time.Now()
	rep, err := net.RunRound()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	delivered := 0
	for _, u := range users {
		recv, bad := u.OpenMailbox(rep.Round, net.Fetch(u, rep.Round))
		if bad != 0 {
			fmt.Fprintf(os.Stderr, "undecryptable messages: %d\n", bad)
			os.Exit(1)
		}
		for _, r := range recv {
			if r.FromPartner {
				delivered++
			}
		}
	}
	fmt.Printf("  round %d: %d mailbox messages, %d conversation deliveries, %.2f s wall time\n\n",
		rep.Round, rep.Delivered, delivered, elapsed.Seconds())
}

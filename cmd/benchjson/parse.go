package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads `go test -bench` text output and extracts every
// benchmark result line. Header lines (goos/goarch/pkg/cpu) annotate
// subsequent results; anything else — PASS, ok, test log noise — is
// ignored. A benchmark line has the shape
//
//	BenchmarkName-8   	      10	 123456 ns/op	 12 B/op	 3 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %w", err)
			}
			if b == nil {
				continue // e.g. "BenchmarkFoo 	--- SKIP" or stray prefix
			}
			b.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, *b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading input: %w", err)
	}
	return rep, nil
}

// parseBenchLine parses one result line, returning (nil, nil) for
// Benchmark-prefixed lines that are not results (skips, failures).
func parseBenchLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil // "--- SKIP" and friends
	}
	b := &Benchmark{
		Name:       strings.TrimPrefix(fields[0], "Benchmark"),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return nil, fmt.Errorf("odd metric fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return nil, fmt.Errorf("metric value %q in %q: %w", rest[i], line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}

package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/mix
cpu: AMD EPYC 7B13
BenchmarkChainRound32Servers100Msgs-8   	       1	 123456789 ns/op
BenchmarkSubmissionVerify/serial-1024-8 	       2	   5000000 ns/op	  204.8 proofs/ms
--- SKIP: BenchmarkFlaky
PASS
ok  	repro/internal/mix	1.234s
pkg: repro
BenchmarkRoundPipeline/users=64/workers=4-8 	       1	  42000000 ns/op	      1523 users/s	  100 B/op	  3 allocs/op
PASS
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	first := rep.Benchmarks[0]
	if first.Pkg != "repro/internal/mix" || first.Name != "ChainRound32Servers100Msgs-8" || first.Iterations != 1 {
		t.Fatalf("first: %+v", first)
	}
	if first.Metrics["ns/op"] != 123456789 {
		t.Fatalf("first metrics: %+v", first.Metrics)
	}
	second := rep.Benchmarks[1]
	if second.Metrics["proofs/ms"] != 204.8 {
		t.Fatalf("custom metric lost: %+v", second.Metrics)
	}
	third := rep.Benchmarks[2]
	if third.Pkg != "repro" || third.Metrics["users/s"] != 1523 || third.Metrics["allocs/op"] != 3 {
		t.Fatalf("third: %+v", third)
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks from empty input: %+v", rep.Benchmarks)
	}
}

func TestParseMalformedMetricValue(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-8 1 abc ns/op\n")); err == nil {
		t.Fatal("malformed metric value accepted")
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
)

// compareOpts selects what Compare watches and how strictly.
type compareOpts struct {
	// metric is the unit to compare, e.g. "users/s" or "ns/op".
	metric string
	// threshold is the relative change (fraction, e.g. 0.20) past
	// which a benchmark counts as regressed.
	threshold float64
	// lowerBetter flips the regression direction: for ns/op-shaped
	// metrics an increase is the regression, not a drop.
	lowerBetter bool
	// match, when non-nil, restricts the comparison to benchmarks
	// whose (suffix-normalised) name matches.
	match *regexp.Regexp
	// hard emits ::error annotations instead of ::warning ones; the
	// caller is expected to turn a non-zero regression count into a
	// failing exit.
	hard bool
}

// compareResult reports what Compare saw.
type compareResult struct {
	// regressions is the number of benchmarks past the threshold.
	regressions int
	// compared is the number of benchmarks present on both sides (a
	// hard gate that compared nothing is a misconfigured gate).
	compared int
}

// gomaxprocsSuffix is the "-8" style suffix `go test -bench` appends
// to every benchmark name. It varies with the runner's core count, so
// names are normalised before baseline lookup — otherwise an archive
// written on one machine silently fails to match a run on another.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalizeName(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// Compare checks a fresh benchmark report against a baseline and
// writes one line per shared benchmark carrying the watched metric.
// A change worse than opts.threshold (in the direction selected by
// opts.lowerBetter) is flagged with a "::warning::" — or, under
// opts.hard, "::error::" — prefix, the GitHub Actions annotation
// syntax. The default warn-only mode exists because the bench job
// runs on shared runners whose absolute numbers are too noisy for a
// hard gate on throughput; the hard mode is for crypto
// microbenchmarks whose ns/op is stable enough to gate on.
//
// Benchmarks present on only one side are reported informationally.
//
// The baseline may span several archives (given oldest first): each
// benchmark's reference value comes from the newest archive that
// carries it, so a loadgen-only archive does not eclipse the
// microbenchmark lineage in an older one.
func Compare(w io.Writer, oldPaths []string, newPath string, opts compareOpts) (compareResult, error) {
	var res compareResult
	keep := func(name string) bool {
		return opts.match == nil || opts.match.MatchString(name)
	}
	base := make(map[string]float64)
	var baseOrder []string
	for _, p := range oldPaths {
		oldRep, err := loadReport(p)
		if err != nil {
			return res, err
		}
		for _, b := range oldRep.Benchmarks {
			name := normalizeName(b.Name)
			if !keep(name) {
				continue
			}
			if v, ok := b.Metrics[opts.metric]; ok && v > 0 {
				if _, dup := base[name]; !dup {
					baseOrder = append(baseOrder, name)
				}
				base[name] = v
			}
		}
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return res, err
	}
	annotation := "warning"
	if opts.hard {
		annotation = "error"
	}
	seen := make(map[string]bool)
	for _, b := range newRep.Benchmarks {
		name := normalizeName(b.Name)
		if !keep(name) {
			continue
		}
		v, ok := b.Metrics[opts.metric]
		if !ok {
			continue
		}
		seen[name] = true
		old, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "benchjson: %s: %s=%.1f (no baseline)\n", name, opts.metric, v)
			continue
		}
		res.compared++
		change := (v - old) / old
		regressed := change < -opts.threshold
		if opts.lowerBetter {
			regressed = change > opts.threshold
		}
		line := fmt.Sprintf("%s: %s %.1f -> %.1f (%+.1f%%)", name, opts.metric, old, v, 100*change)
		if regressed {
			res.regressions++
			fmt.Fprintf(w, "::%s title=bench regression::%s exceeds the %.0f%% threshold\n", annotation, line, 100*opts.threshold)
		} else {
			fmt.Fprintf(w, "benchjson: %s\n", line)
		}
	}
	for _, name := range baseOrder {
		if !seen[name] {
			fmt.Fprintf(w, "benchjson: %s: dropped from this run (baseline %s=%.1f)\n", name, opts.metric, base[name])
		}
	}
	return res, nil
}

func loadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	return &rep, nil
}

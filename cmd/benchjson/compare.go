package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Compare checks a fresh benchmark report against a baseline and
// writes one line per shared benchmark carrying the watched metric.
// A drop of more than threshold (fraction, e.g. 0.20) is flagged with
// a "::warning::" prefix — the GitHub Actions annotation syntax — so
// CI surfaces regressions on the run page without failing the build:
// the bench job runs on shared runners whose absolute numbers are too
// noisy for a hard gate, but a 20% drop in users/s is worth a human
// look.
//
// Benchmarks present on only one side are reported informationally;
// higher is assumed better for the watched metric (throughput-shaped,
// like users/s or subs/s).
//
// The baseline may span several archives (given oldest first): each
// benchmark's reference value comes from the newest archive that
// carries it, so a loadgen-only archive does not eclipse the
// microbenchmark lineage in an older one.
func Compare(w io.Writer, oldPaths []string, newPath, metric string, threshold float64) (regressions int, err error) {
	base := make(map[string]float64)
	var baseOrder []string
	for _, p := range oldPaths {
		oldRep, err := loadReport(p)
		if err != nil {
			return 0, err
		}
		for _, b := range oldRep.Benchmarks {
			if v, ok := b.Metrics[metric]; ok && v > 0 {
				if _, dup := base[b.Name]; !dup {
					baseOrder = append(baseOrder, b.Name)
				}
				base[b.Name] = v
			}
		}
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 0, err
	}
	seen := make(map[string]bool)
	for _, b := range newRep.Benchmarks {
		v, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		seen[b.Name] = true
		old, ok := base[b.Name]
		if !ok {
			fmt.Fprintf(w, "benchjson: %s: %s=%.1f (no baseline)\n", b.Name, metric, v)
			continue
		}
		change := (v - old) / old
		line := fmt.Sprintf("%s: %s %.1f -> %.1f (%+.1f%%)", b.Name, metric, old, v, 100*change)
		if change < -threshold {
			regressions++
			fmt.Fprintf(w, "::warning title=bench regression::%s exceeds the %.0f%% threshold\n", line, 100*threshold)
		} else {
			fmt.Fprintf(w, "benchjson: %s\n", line)
		}
	}
	for _, name := range baseOrder {
		if !seen[name] {
			fmt.Fprintf(w, "benchjson: %s: dropped from this run (baseline %s=%.1f)\n", name, metric, base[name])
		}
	}
	return regressions, nil
}

func loadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	return &rep, nil
}

// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON, so CI can archive every run's numbers as an
// artifact (BENCH_ci.json) and the performance trajectory accumulates
// instead of scrolling away in build logs.
//
//	go test -run '^$' -bench . -benchtime=1x ./... | benchjson -o BENCH_ci.json
//
// With -compare it instead diffs a fresh report (the last argument)
// against one or more baseline archives (oldest first; per benchmark
// the newest baseline carrying it wins) and warns (in GitHub Actions
// annotation syntax) when the watched throughput metric regressed
// past -threshold:
//
//	benchjson -compare -metric users/s -threshold 0.20 BENCH_0001.json BENCH_0002.json BENCH_ci.json
//
// For latency-shaped metrics, -lower-better flips the regression
// direction, -match restricts the gate to a benchmark subset, and
// -fail turns regressions into a failing exit (with ::error
// annotations) — the shape the CI crypto-bench gate uses:
//
//	benchjson -compare -metric ns/op -lower-better -fail \
//	    -match '^(ScalarBaseMult|MultiScalarMult)' -threshold 0.25 \
//	    BENCH_0001.json BENCH_ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare archived reports: benchjson -compare OLD.json [OLD2.json ...] NEW.json")
	metric := flag.String("metric", "users/s", "metric to watch in -compare mode")
	threshold := flag.Float64("threshold", 0.20, "relative change in -compare mode that counts as a regression")
	lowerBetter := flag.Bool("lower-better", false, "treat an increase in the watched metric as the regression (ns/op-shaped metrics)")
	match := flag.String("match", "", "regexp restricting -compare to matching benchmark names (after -N suffix normalisation)")
	failOnRegress := flag.Bool("fail", false, "exit non-zero on regressions (and when -match selects no shared benchmarks)")
	flag.Parse()

	if *compare {
		if flag.NArg() < 2 {
			log.Fatal("benchjson: -compare wants baseline(s) then the fresh report: OLD.json [OLD2.json ...] NEW.json")
		}
		var matchRe *regexp.Regexp
		if *match != "" {
			var err error
			if matchRe, err = regexp.Compile(*match); err != nil {
				log.Fatalf("benchjson: -match: %v", err)
			}
		}
		args := flag.Args()
		res, err := Compare(os.Stdout, args[:len(args)-1], args[len(args)-1], compareOpts{
			metric:      *metric,
			threshold:   *threshold,
			lowerBetter: *lowerBetter,
			match:       matchRe,
			hard:        *failOnRegress,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) past the %.0f%% threshold\n", res.regressions, 100**threshold)
		}
		if *failOnRegress {
			// A gate that compared nothing is a misconfigured gate
			// (renamed benchmarks, wrong -match) — fail loudly rather
			// than pass vacuously.
			if res.compared == 0 {
				log.Fatal("benchjson: -fail with no shared benchmarks to compare")
			}
			if res.regressions > 0 {
				os.Exit(1)
			}
		}
		return
	}

	report, err := Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// Report is the archived shape of one benchmark run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line: the benchmark name (with its -N
// GOMAXPROCS suffix intact), the iteration count, and every reported
// metric keyed by unit (ns/op, B/op, allocs/op, custom units like
// users/s).
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

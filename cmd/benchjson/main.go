// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON, so CI can archive every run's numbers as an
// artifact (BENCH_ci.json) and the performance trajectory accumulates
// instead of scrolling away in build logs.
//
//	go test -run '^$' -bench . -benchtime=1x ./... | benchjson -o BENCH_ci.json
//
// With -compare it instead diffs a fresh report (the last argument)
// against one or more baseline archives (oldest first; per benchmark
// the newest baseline carrying it wins) and warns (in GitHub Actions
// annotation syntax) when the watched throughput metric regressed
// past -threshold:
//
//	benchjson -compare -metric users/s -threshold 0.20 BENCH_0001.json BENCH_0002.json BENCH_ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare archived reports: benchjson -compare OLD.json [OLD2.json ...] NEW.json")
	metric := flag.String("metric", "users/s", "metric to watch in -compare mode")
	threshold := flag.Float64("threshold", 0.20, "relative drop in -compare mode that triggers a warning")
	flag.Parse()

	if *compare {
		if flag.NArg() < 2 {
			log.Fatal("benchjson: -compare wants baseline(s) then the fresh report: OLD.json [OLD2.json ...] NEW.json")
		}
		args := flag.Args()
		n, err := Compare(os.Stdout, args[:len(args)-1], args[len(args)-1], *metric, *threshold)
		if err != nil {
			log.Fatal(err)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) past the %.0f%% threshold\n", n, 100**threshold)
		}
		return
	}

	report, err := Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// Report is the archived shape of one benchmark run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line: the benchmark name (with its -N
// GOMAXPROCS suffix intact), the iteration count, and every reported
// metric keyed by unit (ns/op, B/op, allocs/op, custom units like
// users/s).
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		{Name: "LoadgenRound/a", Metrics: map[string]float64{"users/s": 1000}},
		{Name: "LoadgenRegister/a", Metrics: map[string]float64{"users/s": 500}},
		{Name: "Gone/x", Metrics: map[string]float64{"users/s": 42}},
		{Name: "NoMetric", Metrics: map[string]float64{"ns/op": 9}},
	}})
	fresh := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		{Name: "LoadgenRound/a", Metrics: map[string]float64{"users/s": 700}},    // -30%: regression
		{Name: "LoadgenRegister/a", Metrics: map[string]float64{"users/s": 450}}, // -10%: fine
		{Name: "New/y", Metrics: map[string]float64{"users/s": 5}},               // no baseline
	}})

	var out strings.Builder
	res, err := Compare(&out, []string{old}, fresh, compareOpts{metric: "users/s", threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if res.regressions != 1 {
		t.Fatalf("got %d regressions, want 1:\n%s", res.regressions, out.String())
	}
	if res.compared != 2 {
		t.Fatalf("got %d compared, want 2:\n%s", res.compared, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"::warning title=bench regression::LoadgenRound/a",
		"LoadgenRegister/a: users/s 500.0 -> 450.0 (-10.0%)",
		"New/y: users/s=5.0 (no baseline)",
		"Gone/x: dropped from this run",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "NoMetric") {
		t.Errorf("benchmarks without the watched metric should be ignored:\n%s", got)
	}
}

func TestCompareLayeredBaselines(t *testing.T) {
	dir := t.TempDir()
	old1 := writeReport(t, dir, "old1.json", &Report{Benchmarks: []Benchmark{
		{Name: "A", Metrics: map[string]float64{"users/s": 1000}},
		{Name: "B", Metrics: map[string]float64{"users/s": 200}},
	}})
	old2 := writeReport(t, dir, "old2.json", &Report{Benchmarks: []Benchmark{
		{Name: "B", Metrics: map[string]float64{"users/s": 100}}, // newer archive wins for B
	}})
	fresh := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		{Name: "A", Metrics: map[string]float64{"users/s": 900}}, // -10% vs old1: fine
		{Name: "B", Metrics: map[string]float64{"users/s": 50}},  // -50% vs old2: regression
	}})
	var out strings.Builder
	res, err := Compare(&out, []string{old1, old2}, fresh, compareOpts{metric: "users/s", threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if res.regressions != 1 {
		t.Fatalf("got %d regressions, want 1:\n%s", res.regressions, out.String())
	}
	if !strings.Contains(out.String(), "B: users/s 100.0 -> 50.0") {
		t.Errorf("B should compare against the newest baseline:\n%s", out.String())
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		{Name: "B", Metrics: map[string]float64{"users/s": 100}},
	}})
	fresh := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		{Name: "B", Metrics: map[string]float64{"users/s": 81}},
	}})
	var out strings.Builder
	res, err := Compare(&out, []string{old}, fresh, compareOpts{metric: "users/s", threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if res.regressions != 0 {
		t.Fatalf("19%% drop should be within a 20%% threshold:\n%s", out.String())
	}
}

// TestCompareLowerBetter gates an ns/op-shaped metric: an increase is
// the regression and a decrease is an improvement, never flagged.
func TestCompareLowerBetter(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		{Name: "ScalarBaseMult", Metrics: map[string]float64{"ns/op": 8000}},
		{Name: "MultiScalarMult/n=256", Metrics: map[string]float64{"ns/op": 1000}},
	}})
	fresh := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		{Name: "ScalarBaseMult", Metrics: map[string]float64{"ns/op": 11000}},      // +37.5%: regression
		{Name: "MultiScalarMult/n=256", Metrics: map[string]float64{"ns/op": 500}}, // -50%: improvement
	}})
	var out strings.Builder
	res, err := Compare(&out, []string{old}, fresh, compareOpts{
		metric: "ns/op", threshold: 0.25, lowerBetter: true, hard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.regressions != 1 {
		t.Fatalf("got %d regressions, want 1:\n%s", res.regressions, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "::error title=bench regression::ScalarBaseMult") {
		t.Errorf("hard mode should emit ::error annotations:\n%s", got)
	}
	if strings.Contains(got, "::error title=bench regression::MultiScalarMult") {
		t.Errorf("a latency improvement must not be flagged:\n%s", got)
	}
}

// TestCompareMatchAndSuffix restricts the gate with -match and checks
// that the runner's -N GOMAXPROCS suffix does not break the baseline
// lookup: an archive written on one machine must match a fresh run on
// a machine with a different core count.
func TestCompareMatchAndSuffix(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		{Name: "ScalarBaseMult", Metrics: map[string]float64{"ns/op": 8000}},
		{Name: "LoadgenRound/a", Metrics: map[string]float64{"ns/op": 100}},
	}})
	fresh := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		{Name: "ScalarBaseMult-16", Metrics: map[string]float64{"ns/op": 99000}}, // regression, behind a -16 suffix
		{Name: "LoadgenRound/a", Metrics: map[string]float64{"ns/op": 99000}},    // excluded by -match
	}})
	var out strings.Builder
	res, err := Compare(&out, []string{old}, fresh, compareOpts{
		metric: "ns/op", threshold: 0.25, lowerBetter: true,
		match: regexp.MustCompile(`^ScalarBaseMult`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.compared != 1 || res.regressions != 1 {
		t.Fatalf("got compared=%d regressions=%d, want 1/1:\n%s", res.compared, res.regressions, out.String())
	}
	if strings.Contains(out.String(), "LoadgenRound") {
		t.Errorf("-match should exclude non-matching benchmarks entirely:\n%s", out.String())
	}
}

package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The -admin scrape step: after the round, pull each process's
// /healthz (for its role) and /metrics, reduce the round-phase and
// storage histograms to quantiles, and merge them into the benchjson
// report. The loadgen's own numbers measure the client side of the
// deployment; these are the server side of the same round, so one
// report file carries both.

// scrapedHistograms names the server-side latency histograms worth
// archiving next to the loadgen's client-side numbers. Everything
// else on /metrics stays scrape-only.
var scrapedHistograms = map[string]bool{
	"xrd_round_seconds":        true,
	"xrd_round_phase_seconds":  true,
	"xrd_shard_build_seconds":  true,
	"xrd_shard_finish_seconds": true,
	"xrd_wal_fsync_seconds":    true,
}

func scrapeAdmin(report *benchReport, adminList string) {
	httpc := &http.Client{Timeout: 10 * time.Second}
	for _, addr := range strings.Split(adminList, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		role, err := fetchRole(httpc, addr)
		if err != nil {
			log.Printf("xrd-loadgen: scraping %s: %v", addr, err)
			continue
		}
		hists, err := fetchHistograms(httpc, addr)
		if err != nil {
			log.Printf("xrd-loadgen: scraping %s: %v", addr, err)
			continue
		}
		names := make([]string, 0, len(hists))
		for name := range hists {
			names = append(names, name)
		}
		sort.Strings(names)
		merged := 0
		for _, name := range names {
			h := hists[name]
			if h.count == 0 {
				continue
			}
			report.add(fmt.Sprintf("LoadgenServer/%s@%s/%s", role, addr, name), int64(h.count), map[string]float64{
				"ns/op":   h.sum / h.count * 1e9,
				"p50-ms":  h.quantile(0.50) * 1e3,
				"p90-ms":  h.quantile(0.90) * 1e3,
				"p99-ms":  h.quantile(0.99) * 1e3,
				"count":   h.count,
				"total-s": h.sum,
			})
			merged++
		}
		fmt.Printf("xrd-loadgen: scraped %s (%s): merged %d server-side histograms\n", addr, role, merged)
	}
}

func fetchRole(httpc *http.Client, addr string) (string, error) {
	resp, err := httpc.Get("http://" + addr + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var h struct {
		Role string `json:"role"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return "", fmt.Errorf("decoding /healthz: %w", err)
	}
	if h.Role == "" {
		h.Role = "unknown"
	}
	return h.Role, nil
}

// scrapedHist is one histogram series reassembled from Prometheus
// text exposition: cumulative bucket counts keyed by upper bound,
// plus the _sum/_count pair.
type scrapedHist struct {
	sum    float64
	count  float64
	les    []float64 // finite upper bounds, sorted at quantile time
	cums   map[float64]float64
	sorted bool
}

// quantile returns the upper bound (seconds) of the first bucket
// whose cumulative count reaches q of the total — the same
// bucket-resolution answer obs.Histogram.Quantile gives in-process.
func (h *scrapedHist) quantile(q float64) float64 {
	if h.count == 0 || len(h.les) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.les)
		h.sorted = true
	}
	target := q * h.count
	for _, le := range h.les {
		if h.cums[le] >= target {
			return le
		}
	}
	return h.les[len(h.les)-1]
}

// fetchHistograms parses /metrics and returns the scraped histograms
// keyed by series name (base name plus any non-le labels). Label
// values in this repo's metric names never contain commas or escaped
// quotes, so the flat split below is safe for what it parses.
func fetchHistograms(httpc *http.Client, addr string) (map[string]*scrapedHist, error) {
	resp, err := httpc.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	hists := make(map[string]*scrapedHist)
	get := func(series string) *scrapedHist {
		h := hists[series]
		if h == nil {
			h = &scrapedHist{cums: make(map[float64]float64)}
			hists[series] = h
		}
		return h
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		name, labels := series, ""
		if br := strings.IndexByte(series, '{'); br >= 0 {
			name, labels = series[:br], strings.Trim(series[br:], "{}")
		}
		base, kind, ok := splitHistSuffix(name)
		if !ok || !scrapedHistograms[base] {
			continue
		}
		var le string
		if kind == "bucket" {
			rest := make([]string, 0, 2)
			for _, l := range strings.Split(labels, ",") {
				if v, found := strings.CutPrefix(l, `le="`); found {
					le = strings.TrimSuffix(v, `"`)
				} else if l != "" {
					rest = append(rest, l)
				}
			}
			labels = strings.Join(rest, ",")
		}
		key := base
		if labels != "" {
			key = base + "{" + labels + "}"
		}
		h := get(key)
		switch kind {
		case "sum":
			h.sum = val
		case "count":
			h.count = val
		case "bucket":
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue // +Inf: the _count line already carries the total
			}
			if _, seen := h.cums[bound]; !seen {
				h.les = append(h.les, bound)
			}
			h.cums[bound] = val
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading /metrics: %w", err)
	}
	return hists, nil
}

// splitHistSuffix strips the Prometheus histogram suffix from a
// sample name: "xrd_round_seconds_bucket" -> ("xrd_round_seconds",
// "bucket", true).
func splitHistSuffix(name string) (base, kind string, ok bool) {
	for _, k := range []string{"bucket", "sum", "count"} {
		if b, found := strings.CutSuffix(name, "_"+k); found {
			return b, k, true
		}
	}
	return "", "", false
}

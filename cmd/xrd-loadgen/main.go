// Command xrd-loadgen drives open-loop load against a running XRD
// deployment and reports latency/throughput numbers in the same JSON
// shape benchjson archives (BENCH_*.json), so load-harness runs sit
// next to microbenchmark runs in the repo's performance trajectory.
//
// The harness models the paper's user population split: a large
// registered base (mailbox identifiers known to the gateway shards,
// §5.2 — they cost registry space and offline-cover bookkeeping but
// no per-round work) and a smaller active set that actually submits
// each round. Active users are real client.User instances arranged in
// conversation pairs, so every delivered message is decryptable and a
// sample is verified end to end after the round.
//
// Phases, each timed and reported as one benchmark entry:
//
//  1. register: push (registered - active) synthetic mailbox
//     identifiers plus every active user's real mailbox to the owning
//     gateway shards, in chunks (metric users/s).
//
//  2. build: every active user builds its round locally — onion
//     encryption for current + cover lanes (metric users/s).
//
//  3. submit: upload every active user's round output, open-loop at
//     -rate arrivals/s (0 = closed-loop as fast as the connections
//     go), recording per-submission latency from scheduled arrival to
//     acknowledgement (metrics subs/s, p50/p90/p99/max ms).
//
//  4. round: trigger one mixing round on the coordinator and wait for
//     delivery (metrics round-s, users/s, delivered).
//
//     xrd-loadgen -addr 127.0.0.1:7900 -cert xrd-gateway.pem \
//     -gateways "127.0.0.1:7911=gw1.pem,127.0.0.1:7912=gw2.pem" \
//     -registered 1000000 -active 100000 -out BENCH_load.json
package main

import (
	"crypto/sha256"
	"crypto/tls"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chainsel"
	"repro/internal/client"
	"repro/internal/mix"
	"repro/internal/onion"
	"repro/internal/rpc"
	"repro/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7900", "coordinator address")
		cert       = flag.String("cert", "xrd-gateway.pem", "coordinator certificate")
		gateways   = flag.String("gateways", "", `gateway shards as "addr=certfile,..." (empty: users talk to -addr directly)`)
		registered = flag.Int("registered", 1_000_000, "total registered user population")
		active     = flag.Int("active", 100_000, "users that submit this round (must be even; <= registered)")
		rate       = flag.Float64("rate", 0, "open-loop submission arrival rate per second (0 = closed loop)")
		workers    = flag.Int("workers", 4*runtime.GOMAXPROCS(0), "concurrent submission connections")
		sample     = flag.Int("sample", 64, "receivers to verify end to end after the round")
		out        = flag.String("out", "", "write the benchjson report here (default stdout)")
		seed       = flag.Int64("seed", 1, "workload seed: pairing, message bodies and the synthetic registered population are reproducible for a given seed (keys stay random)")
		admin      = flag.String("admin", "", `comma-separated admin endpoints ("host:port,...") to scrape after the round, merging server-side phase timings into the report`)
	)
	flag.Parse()
	if *active%2 != 0 {
		*active++ // conversation pairs
	}
	if *registered < *active {
		*registered = *active
	}

	endpoints, err := parseEndpoints(*addr, *cert, *gateways)
	if err != nil {
		log.Fatal(err)
	}
	front, err := rpc.NewMultiClient(endpoints)
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	if err := front.Refresh(); err != nil {
		log.Fatalf("discovering gateways: %v", err)
	}
	st, err := front.Status()
	if err != nil {
		log.Fatalf("status: %v", err)
	}
	fmt.Printf("xrd-loadgen: deployment at round %d, %d chains of %d, l=%d, %d gateway(s)\n",
		st.Round, st.NumChains, st.ChainLength, st.L, len(endpoints))
	plan, err := chainsel.NewPlan(st.NumChains)
	if err != nil {
		log.Fatal(err)
	}

	report := &benchReport{Goos: runtime.GOOS, Goarch: runtime.GOARCH}
	label := fmt.Sprintf("registered=%d,active=%d", *registered, *active)

	// Phase 1: active users (real keys) + synthetic registered base.
	fmt.Printf("xrd-loadgen: creating %d active users (seed %d)...\n", *active, *seed)
	users := makeUsers(plan, *active, *seed)
	regStart := time.Now()
	count := registerAll(front, users, *registered-*active, *seed)
	regDur := time.Since(regStart)
	fmt.Printf("xrd-loadgen: registered %d users in %s (%.0f users/s)\n",
		count, regDur.Round(time.Millisecond), float64(count)/regDur.Seconds())
	report.add("LoadgenRegister/"+label, int64(count), map[string]float64{
		"ns/op":   float64(regDur.Nanoseconds()) / float64(count),
		"users/s": float64(count) / regDur.Seconds(),
	})

	// Phase 2: build every active user's round output locally.
	round := st.Round
	fmt.Printf("xrd-loadgen: building round %d for %d users...\n", round, len(users))
	buildStart := time.Now()
	outs := buildAll(users, round, front)
	buildDur := time.Since(buildStart)
	fmt.Printf("xrd-loadgen: built %d round outputs in %s (%.0f users/s)\n",
		len(outs), buildDur.Round(time.Millisecond), float64(len(outs))/buildDur.Seconds())
	report.add("LoadgenBuild/"+label, int64(len(outs)), map[string]float64{
		"ns/op":   float64(buildDur.Nanoseconds()) / float64(len(outs)),
		"users/s": float64(len(outs)) / buildDur.Seconds(),
	})

	// Phase 3: open-loop submission.
	fmt.Printf("xrd-loadgen: submitting %d round outputs (rate=%v/s, %d workers)...\n",
		len(outs), *rate, *workers)
	subDur, lats := submitAll(endpoints, users, outs, *rate, *workers)
	h := histogram(lats)
	fmt.Printf("xrd-loadgen: %d submissions in %s (%.0f subs/s) latency p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms\n",
		len(outs), subDur.Round(time.Millisecond), float64(len(outs))/subDur.Seconds(),
		h["p50-ms"], h["p90-ms"], h["p99-ms"], h["max-ms"])
	metrics := map[string]float64{
		"ns/op":  float64(subDur.Nanoseconds()) / float64(len(outs)),
		"subs/s": float64(len(outs)) / subDur.Seconds(),
	}
	for k, v := range h {
		metrics[k] = v
	}
	report.add("LoadgenSubmit/"+label, int64(len(outs)), metrics)

	// Phase 4: the mixing round itself.
	driver := dialCoordinator(*addr, *cert)
	driver.Timeout = 60 * time.Minute
	defer driver.Close()
	fmt.Println("xrd-loadgen: triggering round...")
	roundStart := time.Now()
	rep, err := driver.RunRound()
	if err != nil {
		log.Fatalf("round: %v", err)
	}
	roundDur := time.Since(roundStart)
	fmt.Printf("xrd-loadgen: round %d done in %s: delivered=%d halted=%v failed=%v\n",
		rep.Round, roundDur.Round(time.Millisecond), rep.Delivered, rep.HaltedChains, rep.FailedChains)
	if rep.Delivered < len(outs) {
		log.Fatalf("round delivered %d messages for %d submissions", rep.Delivered, len(outs))
	}
	report.add("LoadgenRound/"+label, 1, map[string]float64{
		"ns/op":     float64(roundDur.Nanoseconds()),
		"round-s":   roundDur.Seconds(),
		"users/s":   float64(len(outs)) / roundDur.Seconds(),
		"delivered": float64(rep.Delivered),
	})

	verifySample(front, users, rep.Round, *sample)

	if *admin != "" {
		scrapeAdmin(report, *admin)
	}

	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xrd-loadgen: wrote %s\n", *out)
}

// makeUsers creates n client users and arranges them into the
// conversation pairing the seeded workload generator produces, each
// direction with one queued message from the workload's bodies. The
// pairing and bodies are reproducible for a given seed; the users'
// cryptographic keys are not (client keygen draws from crypto/rand),
// so a seed fixes the workload shape, not the wire bytes.
func makeUsers(plan *chainsel.Plan, n int, seed int64) []*client.User {
	w, err := trace.Generate(trace.Config{
		NumUsers:       n,
		PairedFraction: 1.0,
		BodySize:       64,
		Seed:           seed,
	})
	if err != nil {
		log.Fatalf("generating workload: %v", err)
	}
	users := make([]*client.User, n)
	par(len(users), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			users[i] = client.NewUser(nil, plan)
		}
	})
	for i, p := range w.Pairs {
		a, b := users[p[0]], users[p[1]]
		if err := a.StartConversation(b.PublicKey()); err != nil {
			log.Fatal(err)
		}
		if err := b.StartConversation(a.PublicKey()); err != nil {
			log.Fatal(err)
		}
		if err := a.QueueMessage(w.Bodies[i]); err != nil {
			log.Fatal(err)
		}
		if err := b.QueueMessage(w.Bodies[i]); err != nil {
			log.Fatal(err)
		}
	}
	return users
}

// syntheticRNG derives the deterministic stream the synthetic
// registered population's mailbox identifiers are drawn from.
func syntheticRNG(seed int64) *rand.ChaCha8 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	key := sha256.Sum256(buf[:])
	return rand.NewChaCha8(key)
}

// registerAll registers every active user's mailbox plus `synthetic`
// seeded identifiers, in chunks, and returns how many registered.
func registerAll(front *rpc.MultiClient, users []*client.User, synthetic int, seed int64) int {
	const chunk = 50_000
	total := 0
	push := func(batch [][]byte) {
		n, err := front.Register(batch)
		total += n
		if err != nil {
			log.Fatalf("register: after %d: %v", total, err)
		}
	}
	batch := make([][]byte, 0, chunk)
	for _, u := range users {
		batch = append(batch, u.Mailbox())
		if len(batch) == chunk {
			push(batch)
			batch = batch[:0]
		}
	}
	mbLen := 33
	if len(users) > 0 {
		mbLen = len(users[0].Mailbox())
	}
	rng := syntheticRNG(seed)
	for i := 0; i < synthetic; i++ {
		mb := make([]byte, mbLen)
		if _, err := rng.Read(mb); err != nil {
			log.Fatal(err)
		}
		batch = append(batch, mb)
		if len(batch) == chunk {
			push(batch)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		push(batch)
	}
	return total
}

// buildAll builds every user's round output. Parameters are fetched
// once and served from memory: every user needs the same per-chain
// values, and 100k RPCs for identical bytes would measure the
// parameter cache, not the build.
func buildAll(users []*client.User, round uint64, src client.ParamsSource) []*client.RoundOutput {
	cache, err := newParamsCache(src, round)
	if err != nil {
		log.Fatalf("fetching chain parameters: %v", err)
	}
	outs := make([]*client.RoundOutput, len(users))
	par(len(users), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out, err := users[i].BuildRound(round, cache)
			if err != nil {
				log.Fatalf("user %d build: %v", i, err)
			}
			outs[i] = out
		}
	})
	return outs
}

// submitAll uploads every round output, open-loop when rate > 0:
// submission i is scheduled at start + i/rate and its latency runs
// from that scheduled arrival (so queueing delay counts, as it should
// in an open-loop harness). Each worker keeps its own connections.
func submitAll(endpoints []rpc.Endpoint, users []*client.User, outs []*client.RoundOutput, rate float64, workers int) (time.Duration, []time.Duration) {
	if workers < 1 {
		workers = 1
	}
	lats := make([]time.Duration, len(outs))
	var idx int64
	var mu sync.Mutex
	next := func() int {
		mu.Lock()
		defer mu.Unlock()
		if idx >= int64(len(outs)) {
			return -1
		}
		i := idx
		idx++
		return int(i)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			front, err := rpc.NewMultiClient(endpoints)
			if err != nil {
				log.Fatal(err)
			}
			defer front.Close()
			if err := front.Refresh(); err != nil {
				log.Fatalf("worker refresh: %v", err)
			}
			for {
				i := next()
				if i < 0 {
					return
				}
				scheduled := start
				if rate > 0 {
					scheduled = start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
					if d := time.Until(scheduled); d > 0 {
						time.Sleep(d)
					}
				} else {
					scheduled = time.Now()
				}
				if err := front.Submit(users[i].Mailbox(), outs[i]); err != nil {
					log.Fatalf("submit %d: %v", i, err)
				}
				lats[i] = time.Since(scheduled)
			}
		}()
	}
	wg.Wait()
	return time.Since(start), lats
}

// verifySample fetches and decrypts a sample of receivers' mailboxes.
func verifySample(front *rpc.MultiClient, users []*client.User, round uint64, sample int) {
	if sample > len(users) {
		sample = len(users)
	}
	stride := 1
	if sample > 0 {
		stride = len(users) / sample
	}
	checked, got := 0, 0
	for i := 0; i < len(users) && checked < sample; i += stride {
		u := users[i]
		msgs, err := front.Fetch(round, u.Mailbox())
		if err != nil {
			log.Fatalf("fetch user %d: %v", i, err)
		}
		recv, bad := u.OpenMailbox(round, msgs)
		if bad != 0 {
			log.Fatalf("user %d: %d undecryptable messages", i, bad)
		}
		checked++
		for _, r := range recv {
			if r.FromPartner && r.Kind == onion.KindConversation {
				got++
				break
			}
		}
	}
	if got < checked {
		log.Fatalf("verification: only %d of %d sampled users received their partner's message", got, checked)
	}
	fmt.Printf("xrd-loadgen: verified %d sampled mailboxes end to end\n", checked)
}

// paramsCache snapshots every chain's parameters for one round and
// the next, serving BuildRound from memory.
type paramsCache struct {
	round uint64
	cur   []mix.Params
	next  []mix.Params
}

func newParamsCache(src client.ParamsSource, round uint64) (*paramsCache, error) {
	st, err := src.(*rpc.MultiClient).Status()
	if err != nil {
		return nil, err
	}
	pc := &paramsCache{round: round, cur: make([]mix.Params, st.NumChains), next: make([]mix.Params, st.NumChains)}
	for c := 0; c < st.NumChains; c++ {
		if pc.cur[c], err = src.ChainParams(c, round); err != nil {
			return nil, err
		}
		if pc.next[c], err = src.ChainParams(c, round+1); err != nil {
			return nil, err
		}
	}
	return pc, nil
}

func (p *paramsCache) ChainParams(chain int, round uint64) (mix.Params, error) {
	if chain < 0 || chain >= len(p.cur) {
		return mix.Params{}, fmt.Errorf("loadgen: chain %d out of range", chain)
	}
	switch round {
	case p.round:
		return p.cur[chain], nil
	case p.round + 1:
		return p.next[chain], nil
	}
	return mix.Params{}, fmt.Errorf("loadgen: parameters for round %d not cached", round)
}

// par splits [0, n) across GOMAXPROCS goroutines.
func par(n int, f func(lo, hi int)) {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	per := (n + w - 1) / w
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// histogram reduces latencies to percentile metrics in milliseconds.
func histogram(lats []time.Duration) map[string]float64 {
	if len(lats) == 0 {
		return nil
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i].Microseconds()) / 1000
	}
	return map[string]float64{
		"p50-ms": at(0.50),
		"p90-ms": at(0.90),
		"p95-ms": at(0.95),
		"p99-ms": at(0.99),
		"max-ms": at(1.0),
	}
}

// benchReport mirrors cmd/benchjson's archived Report shape.
type benchReport struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func (r *benchReport) add(name string, iters int64, metrics map[string]float64) {
	r.Benchmarks = append(r.Benchmarks, benchmark{
		Pkg: "repro/cmd/xrd-loadgen", Name: name, Iterations: iters, Metrics: metrics,
	})
}

// parseEndpoints builds the user-facing gateway set: the -gateways
// list when given, else the coordinator itself (monolith).
func parseEndpoints(coordAddr, coordCert, gateways string) ([]rpc.Endpoint, error) {
	specs := [][2]string{}
	if strings.TrimSpace(gateways) == "" {
		specs = append(specs, [2]string{coordAddr, coordCert})
	} else {
		for _, entry := range strings.Split(gateways, ",") {
			parts := strings.Split(strings.TrimSpace(entry), "=")
			if len(parts) != 2 {
				return nil, fmt.Errorf(`-gateways entry %q: want "addr=certfile"`, entry)
			}
			specs = append(specs, [2]string{parts[0], parts[1]})
		}
	}
	var eps []rpc.Endpoint
	for _, s := range specs {
		tlsCfg, err := loadTLS(s[1])
		if err != nil {
			return nil, err
		}
		eps = append(eps, rpc.Endpoint{Addr: s[0], TLS: tlsCfg})
	}
	return eps, nil
}

func loadTLS(certFile string) (*tls.Config, error) {
	pem, err := os.ReadFile(certFile)
	if err != nil {
		return nil, fmt.Errorf("reading certificate %s: %w", certFile, err)
	}
	return rpc.ClientTLSFromPEM(pem)
}

func dialCoordinator(addr, certFile string) *rpc.Client {
	tlsCfg, err := loadTLS(certFile)
	if err != nil {
		log.Fatal(err)
	}
	c, err := rpc.Dial(addr, tlsCfg)
	if err != nil {
		log.Fatalf("dialing coordinator: %v", err)
	}
	return c
}
